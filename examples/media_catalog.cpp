// Genre analytics over a file-sharing network — the paper's running data
// model: "if the P2P database contained listings of, say movies, the movies
// stored on a specific peer are likely to be of the same genre", and real
// Gnutella-scale workloads cluster by music genre (Le Fessant et al.,
// IPTPS 2004).
//
// The attribute is a genre/catalog bucket in [1, 100]; popularity is
// Zipf-distributed (hits dominate) and peers hold genre-coherent libraries
// (CL = 0). The example contrasts the adaptive walk against the naive
// BFS/DFS sampling a lazy client might try, and shows the distinct-values
// extension ("how many genres circulate at all?").
#include <cstdio>

#include "core/aqp.h"

using namespace p2paqp;  // Example code only.

int main() {
  util::Rng rng(1984);

  std::puts("== p2paqp: genre analytics on a file-sharing overlay ==\n");

  // Gnutella-like overlay at 2001 crawl proportions (scaled to 1/4).
  topology::GnutellaParams topo;
  topo.num_nodes = 5639;
  topo.num_edges = 13080;
  auto overlay = topology::MakeGnutellaSnapshot(topo, rng);
  if (!overlay.ok()) return 1;

  data::DatasetParams dataset;
  dataset.num_tuples = 550000;  // ~97 files per peer, like the crawl.
  dataset.skew = 1.0;           // Hit-dominated popularity.
  auto files = data::GenerateDataset(dataset, rng);
  data::PartitionParams placement;
  placement.cluster_level = 0.0;  // Genre-coherent libraries.
  auto libraries =
      data::PartitionAcrossPeers(*files, *overlay, placement, rng);

  auto network = net::SimulatedNetwork::Make(
      std::move(*overlay), std::move(*libraries), net::NetworkParams{}, 3);

  core::SystemCatalog catalog = core::Preprocess(network->graph(), 0.05, rng);
  core::EngineParams params;
  params.phase1_peers = 100;

  // The question: what share of the network's files are "top-10" genres?
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = {1, 10};
  query.required_error = 0.10;
  double truth = static_cast<double>(network->ExactCount(1, 10));
  auto total = static_cast<double>(network->TotalTuples());
  std::printf("query: %s\n", query.ToSql().c_str());
  std::printf("truth: %.0f of %.0f files (%.1f%%)\n\n", truth, total,
              100.0 * truth / total);

  std::printf("%-22s %12s %9s %9s %10s\n", "sampling strategy", "estimate",
              "err/ans", "messages", "latency");
  auto report = [&](const char* name, const core::ApproximateAnswer& a) {
    std::printf("%-22s %12.0f %8.2f%% %9llu %8.0fms\n", name, a.estimate,
                100.0 * std::fabs(a.estimate - truth) / truth,
                static_cast<unsigned long long>(a.cost.messages),
                a.cost.latency_ms);
  };

  graph::NodeId sink = 99;
  {
    core::TwoPhaseEngine engine(&*network, catalog, params);
    auto answer = engine.Execute(query, sink, rng);
    if (answer.ok()) report("adaptive random walk", *answer);
  }
  {
    auto engine = core::MakeBaselineEngine(&*network, catalog, params,
                                           core::BaselineKind::kBfs);
    auto answer = engine->Execute(query, sink, rng);
    if (answer.ok()) report("BFS neighborhood", *answer);
  }
  {
    auto engine = core::MakeBaselineEngine(&*network, catalog, params,
                                           core::BaselineKind::kDfs);
    auto answer = engine->Execute(query, sink, rng);
    if (answer.ok()) report("DFS (jump-less walk)", *answer);
  }

  // Extension: how many distinct genre buckets circulate at all?
  {
    core::TwoPhaseEngine engine(&*network, catalog, params);
    query::AggregateQuery distinct;
    distinct.op = query::AggregateOp::kDistinct;
    distinct.predicate = {1, 100};
    distinct.required_error = 0.10;
    auto answer = engine.Execute(distinct, sink, rng);
    if (answer.ok()) {
      std::printf("\ndistinct genre buckets: >= ~%.0f (Chao lower-bound "
                  "estimate from %llu shipped tuples; genre-clustered "
                  "libraries hide rare genres from small peer samples)\n",
                  answer->estimate,
                  static_cast<unsigned long long>(answer->sample_tuples));
    }
  }

  std::puts("\nBFS sees only the sink's genre cluster; the jump-less DFS");
  std::puts("walk double-counts whatever cluster it wanders through. The");
  std::puts("adaptive walk pays a few thousand messages to stay honest.");
  return 0;
}

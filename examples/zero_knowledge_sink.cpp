// A sink that starts with zero global knowledge.
//
// The paper assumes every peer already knows the network constants (M, |E|,
// walk tuning) from an offline preprocessing step whose details it omits.
// This example runs the entire pipeline without that assumption:
//
//   1. estimate |E| from walker return times (E[T_return] = 2|E|/deg(sink)),
//   2. estimate M from birthday collisions among Metropolis-Hastings
//      uniform samples,
//   3. answer a COUNT query through the event-driven session with 8
//      parallel walkers, using only the estimated catalog.
//
// The oracle lines show what the sink could never see — and how much
// accuracy the estimated catalog costs compared to the oracle one.
#include <cstdio>

#include "core/aqp.h"

using namespace p2paqp;  // Example code only.

int main() {
  util::Rng rng(7);

  // The world (the sink knows none of these numbers).
  auto graph = topology::MakePowerLawWithEdgeCount(4000, 32000, rng);
  if (!graph.ok()) return 1;
  data::DatasetParams dataset;
  dataset.num_tuples = 400000;
  dataset.skew = 0.2;
  auto table = data::GenerateDataset(dataset, rng);
  data::PartitionParams placement;
  placement.cluster_level = 0.25;
  auto shards = data::PartitionAcrossPeers(*table, *graph, placement, rng);
  auto network = net::SimulatedNetwork::Make(std::move(*graph),
                                             std::move(*shards),
                                             net::NetworkParams{}, 8);

  std::puts("== p2paqp: a sink with zero global knowledge ==\n");
  const graph::NodeId sink = 17;

  // --- Step 1+2: decentralized preprocessing. ---
  core::DecentralizedConfig config;
  config.return_walks = 48;
  config.birthday_samples = 800;
  util::Rng preprocess_rng(9);
  auto estimates =
      core::DecentralizedPreprocess(*network, sink, config, preprocess_rng);
  if (!estimates.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 estimates.status().ToString().c_str());
    return 1;
  }
  std::printf("estimated catalog : %s\n",
              estimates->catalog.ToString().c_str());
  std::printf("oracle catalog    : M=%zu |E|=%zu\n",
              network->graph().num_nodes(), network->graph().num_edges());
  std::printf("estimation spent  : %s\n\n",
              estimates->cost.ToString().c_str());

  // --- Step 3: event-driven adaptive query with the estimated catalog. ---
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.10;
  std::printf("query: %s\n\n", q.ToSql().c_str());

  core::AsyncParams async;
  async.engine.phase1_peers = 80;
  async.engine.include_phase1_observations = true;
  async.walkers = 8;
  async.walk.jump = estimates->catalog.suggested_jump;
  async.walk.burn_in = estimates->catalog.suggested_burn_in;

  // Average over a few runs so the comparison shows the systematic effect
  // rather than single-walk luck.
  auto run = [&](const core::SystemCatalog& catalog, const char* label) {
    double truth = static_cast<double>(network->ExactCount(1, 30));
    double err_sum = 0.0;
    double makespan_sum = 0.0;
    const int kRuns = 5;
    int ok_runs = 0;
    for (int r = 0; r < kRuns; ++r) {
      core::AsyncQuerySession session(&*network, catalog, async);
      util::Rng query_rng(11 + r);
      auto report = session.Execute(q, sink, query_rng);
      if (!report.ok()) continue;
      err_sum += std::fabs(report->answer.estimate - truth) / truth;
      makespan_sum += report->makespan_ms;
      ++ok_runs;
    }
    if (ok_runs == 0) {
      std::printf("%-18s all runs failed\n", label);
      return;
    }
    std::printf("%-18s mean err %5.2f%%   mean makespan %5.1fs   "
                "(%d runs, 8 walkers)\n",
                label, 100.0 * err_sum / ok_runs,
                makespan_sum / ok_runs / 1000.0, ok_runs);
  };
  run(estimates->catalog, "estimated catalog:");
  core::SystemCatalog oracle = core::MakeCatalog(
      network->graph(), estimates->catalog.suggested_jump,
      estimates->catalog.suggested_burn_in);
  run(oracle, "oracle catalog:");

  std::puts("\nAny systematic gap between the two rows is the bias the");
  std::puts("|E|-estimate carries into the Horvitz-Thompson normalizer —");
  std::puts("the price of not assuming the paper's preprocessed constants.");
  return 0;
}

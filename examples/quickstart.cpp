// Quickstart: build a small unstructured P2P network, distribute a table
// across it, and answer an approximate COUNT query with the two-phase
// engine. This is the ~60-line tour of the public API.
#include <cstdio>

#include "core/aqp.h"

using namespace p2paqp;  // Example code only; library code never does this.

int main() {
  util::Rng rng(42);

  // 1. An unstructured overlay: 2,000 peers in a power-law topology.
  auto graph = topology::MakePowerLawWithEdgeCount(/*num_nodes=*/2000,
                                                   /*num_edges=*/20000, rng);
  if (!graph.ok()) {
    std::fprintf(stderr, "topology: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  // 2. A 200,000-tuple table with Zipf-skewed values in [1, 100],
  //    distributed breadth-first so neighboring peers hold similar data —
  //    the clustering real P2P content exhibits.
  data::DatasetParams dataset;
  dataset.num_tuples = 200000;
  dataset.skew = 0.2;
  auto table = data::GenerateDataset(dataset, rng);
  data::PartitionParams placement;
  placement.cluster_level = 0.25;
  auto databases = data::PartitionAcrossPeers(*table, *graph, placement, rng);

  // 3. The simulated network (message routing + cost accounting).
  auto network = net::SimulatedNetwork::Make(
      std::move(*graph), std::move(*databases), net::NetworkParams{}, 7);

  // 4. Offline preprocessing: estimate the topology constants every peer is
  //    assumed to know (peer/edge counts, mixing behaviour, walk tuning).
  core::SystemCatalog catalog = core::Preprocess(network->graph(), 0.05, rng);
  std::printf("catalog: %s\n", catalog.ToString().c_str());

  // 5. Ask: how many tuples have values between 1 and 30, within 10%?
  core::EngineParams params;
  params.phase1_peers = 80;  // m: peers sniffed in phase I.
  // Library extension over the paper's plan (which answers from phase II
  // alone): fold the already-collected phase-I observations into the final
  // estimate — same cost, roughly half the error. See
  // bench/ablation_combined_estimate.cc for the measurement.
  params.include_phase1_observations = true;
  core::TwoPhaseEngine engine(&*network, catalog, params);
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = {1, 30};
  query.required_error = 0.10;
  std::printf("query:   %s\n", query.ToSql().c_str());

  auto answer = engine.Execute(query, /*sink=*/0, rng);
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answer.status().ToString().c_str());
    return 1;
  }

  double truth = static_cast<double>(network->ExactCount(1, 30));
  std::printf("answer:  %s\n", answer->ToString().c_str());
  std::printf("truth:   %.0f (oracle; a real sink never sees this)\n", truth);
  std::printf("error:   %.2f%% of the answer, %.2f%% of the table\n",
              100.0 * std::fabs(answer->estimate - truth) / truth,
              100.0 * std::fabs(answer->estimate - truth) /
                  static_cast<double>(network->TotalTuples()));
  return 0;
}

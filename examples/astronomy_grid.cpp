// Decision support over a scientific P2P grid — the paper's motivating
// scenario: "millions of peers across the world may be cooperating on a
// grand experiment in astronomy, and astronomers may be interested in asking
// decision support queries that require the aggregation of vast amounts of
// data covering thousands of peers."
//
// Here, observatories share sky-survey detections (the single attribute is
// an apparent-magnitude bucket, 1 = brightest .. 100 = faintest; faint
// detections are far more common, i.e. skewed). Detections cluster by sky
// region, and observatories scanning nearby regions peer with each other —
// strong data clustering across the overlay. An astronomer at one
// observatory runs a sequence of decision-support aggregates without any
// central catalog server.
#include <cstdio>

#include "core/aqp.h"

using namespace p2paqp;  // Example code only.

namespace {

void Report(const char* label, const core::ApproximateAnswer& answer,
            double truth) {
  std::printf("%-38s %12.0f   truth %12.0f   err %5.2f%%   peers %4llu   "
              "tuples %6llu\n",
              label, answer.estimate, truth,
              truth == 0.0 ? 0.0
                           : 100.0 * std::fabs(answer.estimate - truth) /
                                 truth,
              static_cast<unsigned long long>(answer.cost.peers_visited),
              static_cast<unsigned long long>(answer.sample_tuples));
}

}  // namespace

int main() {
  util::Rng rng(1054);  // Crab supernova vintage.

  std::puts("== p2paqp: decision support on an astronomy P2P grid ==\n");

  // 5,000 observatories; regional peering yields four loose communities.
  topology::ClusteredParams topo;
  topo.num_nodes = 5000;
  topo.num_edges = 40000;
  topo.num_subgraphs = 4;
  topo.cut_edges = 900;
  auto overlay = topology::MakeClustered(topo, rng);
  if (!overlay.ok()) return 1;

  // 1.5M detections, magnitude-bucket values, heavy faint-end skew, and
  // near-perfect clustering: each observatory archives one sky region.
  data::DatasetParams dataset;
  dataset.num_tuples = 1500000;
  dataset.skew = 0.8;
  auto detections = data::GenerateDataset(dataset, rng);
  data::PartitionParams placement;
  placement.cluster_level = 0.1;
  placement.size_policy =
      data::PartitionParams::SizePolicy::kDegreeProportional;
  auto archives =
      data::PartitionAcrossPeers(*detections, overlay->graph, placement, rng);

  auto network = net::SimulatedNetwork::Make(
      std::move(overlay->graph), std::move(*archives), net::NetworkParams{},
      1054);

  core::SystemCatalog catalog = core::Preprocess(network->graph(), 0.05, rng);
  std::printf("preprocessed catalog: %s\n\n", catalog.ToString().c_str());

  core::EngineParams params;
  params.phase1_peers = 100;
  params.include_phase1_observations = true;  // Combined estimator.
  core::TwoPhaseEngine engine(&*network, catalog, params);
  graph::NodeId my_observatory = 137;

  std::printf("%-38s %12s   %18s   %10s\n\n", "decision-support query",
              "estimate", "", "cost");

  // Q1: how many bright detections (candidate transients) network-wide?
  query::AggregateQuery bright;
  bright.op = query::AggregateOp::kCount;
  bright.predicate = {1, 10};
  bright.required_error = 0.10;
  auto a1 = engine.Execute(bright, my_observatory, rng);
  if (a1.ok()) {
    Report("COUNT bright detections (mag<=10)", *a1,
           static_cast<double>(network->ExactCount(1, 10)));
  }

  // Q2: total integrated signal (SUM over every detection).
  query::AggregateQuery total;
  total.op = query::AggregateOp::kSum;
  total.predicate = query::RangePredicate{1, 100};
  total.required_error = 0.10;
  auto a2 = engine.Execute(total, my_observatory, rng);
  if (a2.ok()) {
    Report("SUM magnitude buckets (all sky)", *a2,
           static_cast<double>(network->ExactSum(1, 100)));
  }

  // Q3: the median magnitude — where does the survey's sensitivity sit?
  // (Median accuracy is judged in rank space: how far from the 50th
  // percentile does the returned value actually sit?)
  query::AggregateQuery median;
  median.op = query::AggregateOp::kMedian;
  median.required_error = 0.10;
  auto a3 = engine.Execute(median, my_observatory, rng);
  if (a3.ok()) {
    int64_t below = network->ExactCount(
        std::numeric_limits<data::Value>::min(),
        static_cast<data::Value>(a3->estimate) - 1);
    double rank = static_cast<double>(below) /
                  static_cast<double>(network->TotalTuples());
    std::printf("%-38s %12.0f   true median %7.0f   rank %.3f (target "
                "0.500)   peers %4llu\n",
                "MEDIAN magnitude bucket", a3->estimate,
                network->ExactMedian(), rank,
                static_cast<unsigned long long>(a3->cost.peers_visited));
  }

  // Q4: average magnitude of the bright population only.
  query::AggregateQuery avg;
  avg.op = query::AggregateOp::kAvg;
  avg.predicate = {1, 20};
  avg.required_error = 0.10;
  auto a4 = engine.Execute(avg, my_observatory, rng);
  if (a4.ok()) {
    double truth = static_cast<double>(network->ExactSum(1, 20)) /
                   static_cast<double>(network->ExactCount(1, 20));
    Report("AVG magnitude (mag<=20)", *a4, truth);
  }

  std::puts("\nNo observatory scanned more than a few thousand of the 1.5M");
  std::puts("detections, and no central index was consulted.");
  return 0;
}

// Continuous monitoring under churn: a peer repeatedly measures the size and
// content of a dynamic network where peers leave and rejoin between queries.
//
// Demonstrates the operational pieces around the core algorithm: the churn
// model, the periodic catalog refresh (the paper's "slowly changing"
// preprocessed parameters), the hybrid result cache (future-work extension)
// and per-query cost accounting.
#include <cstdio>

#include "core/aqp.h"

using namespace p2paqp;  // Example code only.

int main() {
  util::Rng rng(2006);

  std::puts("== p2paqp: monitoring a churning overlay ==\n");

  topology::ClusteredParams topo;
  topo.num_nodes = 3000;
  topo.num_edges = 24000;
  topo.num_subgraphs = 2;
  topo.cut_edges = 600;
  auto overlay = topology::MakeClustered(topo, rng);
  if (!overlay.ok()) return 1;

  data::DatasetParams dataset;
  dataset.num_tuples = 300000;
  dataset.skew = 0.2;
  auto table = data::GenerateDataset(dataset, rng);
  data::PartitionParams placement;
  placement.cluster_level = 0.25;
  auto databases =
      data::PartitionAcrossPeers(*table, overlay->graph, placement, rng);

  auto network = net::SimulatedNetwork::Make(
      std::move(overlay->graph), std::move(*databases), net::NetworkParams{},
      11);

  // The monitoring sink never goes down; everyone else churns.
  const graph::NodeId kSink = 0;
  net::ChurnParams churn_params;
  churn_params.leave_probability = 0.08;
  churn_params.rejoin_probability = 0.25;
  churn_params.pinned = {kSink};
  net::ChurnModel churn(churn_params, 17);

  core::SystemCatalog base = core::Preprocess(network->graph(), 0.05, rng);
  core::EngineParams params;
  params.phase1_peers = 80;

  core::FreshnessCache cache(/*ttl_epochs=*/2);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = {1, 30};
  query.required_error = 0.10;

  std::printf("epoch  live_peers  live_edges  estimate     truth     "
              "err/total  cache_hits\n");
  for (int epoch = 0; epoch < 8; ++epoch) {
    churn.Step(*network);
    cache.AdvanceEpoch();  // Data may have changed; age cached replies.

    // Periodic re-estimation of the slow-changing catalog so the
    // Horvitz-Thompson normalizer 2|E| tracks the live overlay.
    core::SystemCatalog live = core::MakeLiveCatalog(
        *network, base.suggested_jump, base.suggested_burn_in);

    core::TwoPhaseEngine engine(&*network, live, params);
    engine.set_cache(&cache);
    auto answer = engine.Execute(query, kSink, rng);
    if (!answer.ok()) {
      std::printf("%5d  query failed: %s\n", epoch,
                  answer.status().ToString().c_str());
      continue;
    }
    double truth = static_cast<double>(network->ExactCount(1, 30));
    std::printf("%5d  %10zu  %10zu  %9.0f  %9.0f  %8.2f%%  %10llu\n", epoch,
                network->num_alive(), live.num_edges, answer->estimate,
                truth,
                100.0 * std::fabs(answer->estimate - truth) /
                    static_cast<double>(network->TotalTuples()),
                static_cast<unsigned long long>(cache.hits()));
  }

  std::puts("\nWalkers route around departed peers, the refreshed catalog");
  std::puts("keeps estimates anchored to the live edge set, and the cache");
  std::puts("absorbs repeat visits within its freshness window.");
  return 0;
}

#!/usr/bin/env python3
"""Perf-regression gate over the repo's BENCH_*.json telemetry.

Compares freshly generated BENCH_<name>.json files (written by the figure
binaries when --json / P2PAQP_BENCH_JSON is set, see bench/harness.cc)
against the committed reference files in bench/baselines/ and fails when a
benchmark regressed:

  * wall_time_s       > baseline * (1 + --wall-tolerance), default +25%,
                        with an absolute noise floor (--wall-floor, default
                        0.5 s) so sub-second figures on noisy CI runners do
                        not flap;
  * mean_messages     > baseline * (1 + --messages-tolerance), default +10%.
                        Message counts come out of the deterministic
                        simulation, so any growth is a real cost change,
                        not noise.
  * messages_per_query  same rule, for scheduler binaries (their per-query
                        cost is batch-amortized, so mean_messages is 0 and
                        this field carries the real message signal). Only
                        checked when the baseline recorded a nonzero value.
  * bytes_per_peer    > baseline * (1 + --bytes-tolerance), default +10%.
                        The scale world's resident footprint per peer
                        (bench/scale_world.cc) is a deterministic layout
                        property, so it is gated regardless of threads.
                        Only checked when the baseline recorded it.
  * events_per_sec    < baseline * (1 - --events-tolerance), default -25%.
                        The event core's drain rate — a LOWER bound, and a
                        wall-clock quantity, so only compared when
                        `threads` matches the baseline. Only checked when
                        the baseline recorded it.
  * world_build_peak_rss_mb
                        > baseline * (1 + --rss-tolerance), default +15%.
                        The process peak RSS right after world construction
                        (bench/scale_world.cc): the high-water mark the
                        out-of-core graph builder bounds. Dominated by
                        deterministic allocation layout, so it is gated
                        regardless of threads. Only checked when the
                        baseline recorded a nonzero value. The 10M series
                        (bench/baselines/scale/10m, run at P2PAQP_SCALE=10
                        with P2PAQP_BUILD_SPILL_EDGES set) exists mostly
                        for this bound: it proves a ten-million-peer world
                        builds inside the spilling builder's memory budget.
  * steady_state_allocs_per_event
                        must be EXACTLY 0 whenever the baseline carries the
                        field. The warm event-loop drain performs no heap
                        allocation by contract (slot arenas + inline event
                        closures, see docs/PERFORMANCE.md); any nonzero
                        value is a leak of the zero-allocation path, not
                        noise, so there is no tolerance knob. Checked
                        regardless of thread count (the drain is
                        bit-deterministic across P2PAQP_THREADS).
  * p99_query_wall_ms > baseline * (1 + --p99-tolerance), default +10%.
                        The straggler tier's tail latency: the 99th
                        percentile *simulated* query makespan under the
                        Pareto-tail regime (bench/scale_world.cc,
                        bench/ablation_straggler.cc). A deterministic
                        event-clock quantity, so it is checked regardless
                        of threads; growth means Walk-Not-Wait/hedging got
                        worse at routing around stragglers. Only checked
                        when the baseline recorded a nonzero value.
  * deadline_hit_rate > baseline + --deadline-hit-slack, default +0.02
                        absolute. The fraction of straggler-tier queries
                        forced into a deadline-degraded anytime answer —
                        deterministic like p99, and a regression means more
                        queries blow their budget. Only checked when the
                        baseline recorded a nonzero value.

Comparison rules:

  * A fresh file is only compared when its `scale` matches the baseline's —
    telemetry at a different P2PAQP_SCALE measures a different world.
  * `mean_messages` is compared regardless of thread count (the parallel
    layer is bit-deterministic across P2PAQP_THREADS); `wall_time_s` is
    only compared when `threads` matches too.
  * google-benchmark report files (e.g. BENCH_micro_benchmarks.json, which
    have a top-level "context" key) use a different schema and are skipped.
  * A baseline with no matching fresh file fails the gate: a deleted or
    silently-not-run benchmark must be an explicit baseline change.

Usage:
  python3 tools/bench_gate.py --fresh <dir> [--baselines bench/baselines]
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def is_google_benchmark(doc):
    return "context" in doc and "benchmarks" in doc


def compare(name, base, fresh, args):
    """Returns a list of failure strings and a list of info strings."""
    failures, notes = [], []
    if base.get("scale") != fresh.get("scale"):
        notes.append(
            f"{name}: SKIP (scale {fresh.get('scale')} != baseline "
            f"{base.get('scale')})")
        return failures, notes

    message_fields = ["mean_messages"]
    if base.get("messages_per_query", 0.0) > 0.0:
        message_fields.append("messages_per_query")
    for field in message_fields:
        base_msgs = base.get(field, 0.0)
        fresh_msgs = fresh.get(field, 0.0)
        msg_limit = base_msgs * (1.0 + args.messages_tolerance) + 1.0
        if fresh_msgs > msg_limit:
            failures.append(
                f"{name}: {field} {fresh_msgs:.1f} > {msg_limit:.1f} "
                f"(baseline {base_msgs:.1f} +{args.messages_tolerance:.0%})")
        else:
            notes.append(
                f"{name}: {field} {fresh_msgs:.1f} vs baseline "
                f"{base_msgs:.1f} OK")

    base_bpp = base.get("bytes_per_peer", 0.0)
    if base_bpp > 0.0:
        fresh_bpp = fresh.get("bytes_per_peer", 0.0)
        bpp_limit = base_bpp * (1.0 + args.bytes_tolerance)
        if fresh_bpp > bpp_limit:
            failures.append(
                f"{name}: bytes_per_peer {fresh_bpp:.1f} > {bpp_limit:.1f} "
                f"(baseline {base_bpp:.1f} +{args.bytes_tolerance:.0%})")
        else:
            notes.append(
                f"{name}: bytes_per_peer {fresh_bpp:.1f} vs baseline "
                f"{base_bpp:.1f} OK")

    base_rss = base.get("world_build_peak_rss_mb", 0.0)
    if base_rss > 0.0:
        fresh_rss = fresh.get("world_build_peak_rss_mb", 0.0)
        rss_limit = base_rss * (1.0 + args.rss_tolerance)
        if fresh_rss > rss_limit:
            failures.append(
                f"{name}: world_build_peak_rss_mb {fresh_rss:.1f} > "
                f"{rss_limit:.1f} (baseline {base_rss:.1f} "
                f"+{args.rss_tolerance:.0%})")
        else:
            notes.append(
                f"{name}: world_build_peak_rss_mb {fresh_rss:.1f} vs "
                f"baseline {base_rss:.1f} OK")

    if "steady_state_allocs_per_event" in base:
        fresh_allocs = fresh.get("steady_state_allocs_per_event", 0.0)
        if fresh_allocs > 0.0:
            failures.append(
                f"{name}: steady_state_allocs_per_event {fresh_allocs:.3f} "
                f"> 0 (the warm drain must not allocate)")
        else:
            notes.append(
                f"{name}: steady_state_allocs_per_event 0 OK")

    base_p99 = base.get("p99_query_wall_ms", 0.0)
    if base_p99 > 0.0:
        fresh_p99 = fresh.get("p99_query_wall_ms", 0.0)
        p99_limit = base_p99 * (1.0 + args.p99_tolerance)
        if fresh_p99 > p99_limit:
            failures.append(
                f"{name}: p99_query_wall_ms {fresh_p99:.1f} > "
                f"{p99_limit:.1f} (baseline {base_p99:.1f} "
                f"+{args.p99_tolerance:.0%})")
        else:
            notes.append(
                f"{name}: p99_query_wall_ms {fresh_p99:.1f} vs baseline "
                f"{base_p99:.1f} OK")

    base_hit = base.get("deadline_hit_rate", 0.0)
    if base_hit > 0.0:
        fresh_hit = fresh.get("deadline_hit_rate", 0.0)
        hit_limit = base_hit + args.deadline_hit_slack
        if fresh_hit > hit_limit:
            failures.append(
                f"{name}: deadline_hit_rate {fresh_hit:.4f} > "
                f"{hit_limit:.4f} (baseline {base_hit:.4f} "
                f"+{args.deadline_hit_slack} absolute)")
        else:
            notes.append(
                f"{name}: deadline_hit_rate {fresh_hit:.4f} vs baseline "
                f"{base_hit:.4f} OK")

    if base.get("threads") != fresh.get("threads"):
        notes.append(
            f"{name}: wall-time SKIP (threads {fresh.get('threads')} != "
            f"baseline {base.get('threads')})")
        return failures, notes

    base_eps = base.get("events_per_sec", 0.0)
    if base_eps > 0.0:
        fresh_eps = fresh.get("events_per_sec", 0.0)
        eps_floor = base_eps * (1.0 - args.events_tolerance)
        if fresh_eps < eps_floor:
            failures.append(
                f"{name}: events_per_sec {fresh_eps:.0f} < {eps_floor:.0f} "
                f"(baseline {base_eps:.0f} -{args.events_tolerance:.0%})")
        else:
            notes.append(
                f"{name}: events_per_sec {fresh_eps:.0f} vs baseline "
                f"{base_eps:.0f} OK")
    base_wall = base.get("wall_time_s", 0.0)
    fresh_wall = fresh.get("wall_time_s", 0.0)
    wall_limit = base_wall * (1.0 + args.wall_tolerance) + args.wall_floor
    if fresh_wall > wall_limit:
        failures.append(
            f"{name}: wall_time_s {fresh_wall:.2f} > {wall_limit:.2f} "
            f"(baseline {base_wall:.2f} +{args.wall_tolerance:.0%} "
            f"+{args.wall_floor}s floor)")
    else:
        notes.append(
            f"{name}: wall_time_s {fresh_wall:.2f} vs baseline "
            f"{base_wall:.2f} OK")
    return failures, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly generated "
                             "BENCH_*.json files")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory holding reference BENCH_*.json files")
    parser.add_argument("--wall-tolerance", type=float, default=0.25,
                        help="allowed fractional wall-time growth")
    parser.add_argument("--wall-floor", type=float, default=0.5,
                        help="absolute wall-time slack in seconds")
    parser.add_argument("--messages-tolerance", type=float, default=0.10,
                        help="allowed fractional message-count growth")
    parser.add_argument("--bytes-tolerance", type=float, default=0.10,
                        help="allowed fractional bytes_per_peer growth")
    parser.add_argument("--events-tolerance", type=float, default=0.25,
                        help="allowed fractional events_per_sec drop")
    parser.add_argument("--rss-tolerance", type=float, default=0.15,
                        help="allowed fractional world_build_peak_rss_mb "
                             "growth")
    parser.add_argument("--p99-tolerance", type=float, default=0.10,
                        help="allowed fractional p99_query_wall_ms growth")
    parser.add_argument("--deadline-hit-slack", type=float, default=0.02,
                        help="allowed absolute deadline_hit_rate growth")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baselines)
    fresh_dir = pathlib.Path(args.fresh)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench_gate: no baselines under {baseline_dir}",
              file=sys.stderr)
        return 2

    all_failures = []
    for baseline_path in baselines:
        name = baseline_path.name
        base = load(baseline_path)
        if is_google_benchmark(base):
            print(f"{name}: SKIP (google-benchmark report schema)")
            continue
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            all_failures.append(
                f"{name}: fresh telemetry missing under {fresh_dir} "
                f"(benchmark not run?)")
            continue
        fresh = load(fresh_path)
        if is_google_benchmark(fresh):
            print(f"{name}: SKIP (fresh file is a google-benchmark report)")
            continue
        failures, notes = compare(name, base, fresh, args)
        for note in notes:
            print(note)
        all_failures.extend(failures)

    if all_failures:
        print("\nbench_gate: PERF REGRESSION", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench_gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Property-based protocol fuzzer: generate seed-derived chaos plans, run
// each through every invariant oracle and the black-box history checker,
// shrink any failure to a minimal counterexample and print its one-line
// serialized form (paste it back with --replay to reproduce).
//
//   chaos_fuzz --plans=200 --start-seed=1            # fuzz a seed range
//   chaos_fuzz --replay="seed=7 peers=64 ..."        # re-run one plan line
//   chaos_fuzz --plans=5000 --out=failures.plans     # long fuzz, save fails
//
// Exit status: 0 when every plan passed, 1 on any oracle violation, 2 on
// usage errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "verify/protocol/chaos_plan.h"
#include "verify/protocol/runner.h"
#include "verify/protocol/shrink.h"

namespace p2paqp {
namespace {

struct Options {
  uint64_t plans = 200;
  uint64_t start_seed = 1;
  std::string replay;   // One-line plan to re-run instead of fuzzing.
  std::string out;      // Append failing (shrunk) plan lines here.
  bool shrink = true;   // Minimize failures before reporting.
  bool verbose = false; // Per-plan progress lines.
};

void PrintHelp() {
  std::puts(
      "chaos_fuzz — property-based protocol chaos harness\n\n"
      "  --plans=N        number of generated plans to run (default 200)\n"
      "  --start-seed=N   first seed of the range (default 1)\n"
      "  --replay=LINE    re-run one serialized plan line and exit\n"
      "  --out=FILE       append failing shrunk plan lines to FILE\n"
      "  --no-shrink      report raw failures without minimizing\n"
      "  --verbose        per-plan progress\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

void ReportFailure(const verify::ChaosRunReport& report, const Options& opt) {
  std::printf("FAIL seed=%llu violations=%zu\n",
              static_cast<unsigned long long>(report.plan.seed),
              report.violations.size());
  for (const std::string& v : report.violations) {
    std::printf("  - %s\n", v.c_str());
  }
  verify::ChaosPlan minimal = report.plan;
  if (opt.shrink) {
    verify::ShrinkOutcome shrunk = verify::ShrinkChaosPlan(report.plan);
    minimal = shrunk.plan;
    std::printf("  shrunk in %zu runs (%zu accepted) to complexity %zu\n",
                shrunk.runs, shrunk.accepted,
                verify::PlanComplexity(minimal));
  }
  std::string line = verify::SerializeChaosPlan(minimal);
  std::printf("  counterexample: %s\n", line.c_str());
  if (!opt.out.empty()) {
    std::ofstream f(opt.out, std::ios::app);
    f << line << "\n";
  }
}

int Run(const Options& opt) {
  if (!opt.replay.empty()) {
    auto plan = verify::ParseChaosPlan(opt.replay);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad plan line: %s\n",
                   plan.status().message().c_str());
      return 2;
    }
    verify::ChaosRunReport report = verify::RunChaosPlan(*plan);
    std::printf("replay seed=%llu digest=%016llx events=%zu answers=%zu/%zu\n",
                static_cast<unsigned long long>(report.plan.seed),
                static_cast<unsigned long long>(report.digest),
                report.history_events, report.answers_ok,
                report.answers_ok + report.answers_failed);
    if (!report.failed()) {
      std::puts("PASS");
      return 0;
    }
    ReportFailure(report, opt);
    return 1;
  }

  uint64_t failures = 0;
  for (uint64_t i = 0; i < opt.plans; ++i) {
    uint64_t seed = opt.start_seed + i;
    verify::ChaosPlan plan = verify::GenerateChaosPlan(seed);
    verify::ChaosRunReport report = verify::RunChaosPlan(plan);
    if (opt.verbose || report.failed()) {
      std::printf("plan %llu/%llu seed=%llu engine=%u complexity=%zu %s\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(opt.plans),
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned>(plan.engine),
                  verify::PlanComplexity(plan),
                  report.failed() ? "FAIL" : "ok");
    }
    if (report.failed()) {
      ++failures;
      ReportFailure(report, opt);
    }
  }
  std::printf("%llu/%llu plans passed\n",
              static_cast<unsigned long long>(opt.plans - failures),
              static_cast<unsigned long long>(opt.plans));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace p2paqp

int main(int argc, char** argv) {
  p2paqp::Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (p2paqp::ParseFlag(argv[i], "--plans", &value)) {
      opt.plans = std::strtoull(value.c_str(), nullptr, 10);
    } else if (p2paqp::ParseFlag(argv[i], "--start-seed", &value)) {
      opt.start_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (p2paqp::ParseFlag(argv[i], "--replay", &value)) {
      opt.replay = value;
    } else if (p2paqp::ParseFlag(argv[i], "--out", &value)) {
      opt.out = value;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      opt.shrink = false;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      p2paqp::PrintHelp();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      p2paqp::PrintHelp();
      return 2;
    }
  }
  return p2paqp::Run(opt);
}

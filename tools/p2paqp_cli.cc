// p2paqp command-line driver: build a simulated P2P world from flags, then
// answer SQL-ish aggregation queries against it — one-shot or as a REPL.
//
//   p2paqp_cli --peers=2000 --edges=20000 --query="SELECT COUNT(A) ..."
//
//   p2paqp_cli --topology=gnutella --repl
//   p2paqp> SELECT MEDIAN(A) FROM T WITHIN 10%
//   p2paqp> \churn 0.1 0.3
//   p2paqp> \catalog
//   p2paqp> \quit
//
// Run with --help for the full flag list.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/aqp.h"
#include "io/world_io.h"
#include "query/parser.h"
#include "util/statistics.h"

namespace p2paqp {
namespace {

struct CliOptions {
  std::string topology = "power_law";
  size_t peers = 2000;
  size_t edges = 20000;
  size_t subgraphs = 2;
  size_t cut = 200;
  size_t tuples_per_peer = 100;
  double cluster_level = 0.25;
  double skew = 0.2;
  bool fill_b = false;
  uint64_t seed = 42;
  size_t phase1_peers = 80;
  uint64_t t = 25;
  size_t walkers = 1;
  bool combined = true;  // Fold phase-I observations into the answer.
  bool oracle = true;    // Print exact answers next to estimates.
  bool repl = false;
  std::string query;
  std::string save_world;  // Write the built world to this path.
  std::string load_world;  // Load the world from this path instead of
                           // generating one.
};

void PrintHelp() {
  std::puts(
      "p2paqp_cli — approximate aggregation queries over a simulated "
      "unstructured P2P network\n\n"
      "World flags:\n"
      "  --topology=power_law|clustered|erdos_renyi|gnutella\n"
      "  --peers=N --edges=N --subgraphs=N --cut=N\n"
      "  --tuples-per-peer=N --cl=F --skew=F --fill-b --seed=N\n"
      "Engine flags:\n"
      "  --phase1=N --t=N --walkers=N --no-combined --no-oracle\n"
      "Modes:\n"
      "  --query=\"SELECT ...\"   answer one query and exit\n"
      "  --repl                  interactive prompt\n"
      "  --save-world=F / --load-world=F   persist/restore the exact world\n\n"
      "Query syntax:\n"
      "  SELECT COUNT|SUM|AVG|MEDIAN|QUANTILE|DISTINCT(A|B|A+B|A*B|*)\n"
      "  FROM T [WHERE A BETWEEN x AND y [AND B BETWEEN u AND v]]\n"
      "  [WITHIN e%] [AT phi]\n\n"
      "REPL commands: \\catalog \\cost \\churn <leave> <rejoin> \\help "
      "\\quit");
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

util::Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      std::exit(0);
    } else if (ParseFlag(arg, "topology", &value)) {
      options.topology = value;
    } else if (ParseFlag(arg, "peers", &value)) {
      options.peers = std::stoul(value);
    } else if (ParseFlag(arg, "edges", &value)) {
      options.edges = std::stoul(value);
    } else if (ParseFlag(arg, "subgraphs", &value)) {
      options.subgraphs = std::stoul(value);
    } else if (ParseFlag(arg, "cut", &value)) {
      options.cut = std::stoul(value);
    } else if (ParseFlag(arg, "tuples-per-peer", &value)) {
      options.tuples_per_peer = std::stoul(value);
    } else if (ParseFlag(arg, "cl", &value)) {
      options.cluster_level = std::stod(value);
    } else if (ParseFlag(arg, "skew", &value)) {
      options.skew = std::stod(value);
    } else if (arg == "--fill-b") {
      options.fill_b = true;
    } else if (ParseFlag(arg, "seed", &value)) {
      options.seed = std::stoull(value);
    } else if (ParseFlag(arg, "phase1", &value)) {
      options.phase1_peers = std::stoul(value);
    } else if (ParseFlag(arg, "t", &value)) {
      options.t = std::stoull(value);
    } else if (ParseFlag(arg, "walkers", &value)) {
      options.walkers = std::stoul(value);
    } else if (arg == "--no-combined") {
      options.combined = false;
    } else if (arg == "--no-oracle") {
      options.oracle = false;
    } else if (arg == "--repl") {
      options.repl = true;
    } else if (ParseFlag(arg, "query", &value)) {
      options.query = value;
    } else if (ParseFlag(arg, "save-world", &value)) {
      options.save_world = value;
    } else if (ParseFlag(arg, "load-world", &value)) {
      options.load_world = value;
    } else {
      return util::Status::InvalidArgument("unknown flag: " + arg +
                                           " (try --help)");
    }
  }
  if (options.query.empty() && !options.repl) {
    options.repl = true;  // No one-shot query: drop into the REPL.
  }
  return options;
}

util::Result<topology::TopologyKind> KindFromName(const std::string& name) {
  if (name == "power_law") return topology::TopologyKind::kPowerLaw;
  if (name == "clustered") return topology::TopologyKind::kClustered;
  if (name == "erdos_renyi") return topology::TopologyKind::kErdosRenyi;
  if (name == "gnutella") return topology::TopologyKind::kGnutella;
  return util::Status::InvalidArgument("unknown topology '" + name + "'");
}

struct Session {
  net::SimulatedNetwork network;
  core::SystemCatalog catalog;
  CliOptions options;
  util::Rng rng;

  double OracleAnswer(const query::AggregateQuery& q) const {
    double count = 0.0;
    double sum = 0.0;
    std::vector<double> values;
    bool need_values = q.op == query::AggregateOp::kMedian ||
                       q.op == query::AggregateOp::kQuantile;
    std::map<data::Value, bool> distinct;
    for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
      if (!network.IsAlive(p)) continue;
      for (const data::Tuple& t : network.peer(p).database().tuples()) {
        if (!q.Matches(t)) continue;
        double measure = query::EvaluateExpression(q.expr, t);
        count += 1.0;
        sum += measure;
        if (need_values) values.push_back(measure);
        if (q.op == query::AggregateOp::kDistinct) distinct[t.value] = true;
      }
    }
    switch (q.op) {
      case query::AggregateOp::kCount:
        return count;
      case query::AggregateOp::kSum:
        return sum;
      case query::AggregateOp::kAvg:
        return count == 0.0 ? 0.0 : sum / count;
      case query::AggregateOp::kMedian:
        return values.empty() ? 0.0 : util::Median(values);
      case query::AggregateOp::kQuantile:
        return values.empty() ? 0.0
                              : util::Percentile(values, q.quantile_phi);
      case query::AggregateOp::kDistinct:
        return static_cast<double>(distinct.size());
    }
    return 0.0;
  }

  void RunQuery(const std::string& text) {
    auto parsed = query::ParseQuery(text);
    if (!parsed.ok()) {
      std::printf("parse error: %s\n", parsed.status().ToString().c_str());
      return;
    }
    core::EngineParams params;
    params.phase1_peers = options.phase1_peers;
    params.tuples_per_peer = options.t;
    params.include_phase1_observations = options.combined;
    std::unique_ptr<core::TwoPhaseEngine> engine;
    if (options.walkers > 1) {
      engine = std::make_unique<core::TwoPhaseEngine>(
          &network, catalog, params,
          std::make_unique<sampling::ParallelWalkSampler>(
              &network,
              sampling::WalkParams{.jump = catalog.suggested_jump,
                                   .burn_in = catalog.suggested_burn_in},
              options.walkers),
          catalog.total_degree_weight());
    } else {
      engine =
          std::make_unique<core::TwoPhaseEngine>(&network, catalog, params);
    }
    graph::NodeId sink = 0;
    while (!network.IsAlive(sink)) ++sink;
    auto answer = engine->Execute(*parsed, sink, rng);
    if (!answer.ok()) {
      std::printf("query failed: %s\n", answer.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", parsed->ToSql().c_str());
    std::printf("  estimate : %.2f (+/- %.2f @95%%)\n", answer->estimate,
                answer->ci_half_width_95);
    if (options.oracle) {
      double truth = OracleAnswer(*parsed);
      std::printf("  oracle   : %.2f (error %.2f%% of answer)\n", truth,
                  truth == 0.0 ? 0.0
                               : 100.0 * std::fabs(answer->estimate - truth) /
                                     std::fabs(truth));
    }
    std::printf("  plan     : m=%zu m'=%zu cv=%.4f sample=%llu tuples\n",
                answer->phase1_peers, answer->phase2_peers,
                answer->cv_error_relative,
                static_cast<unsigned long long>(answer->sample_tuples));
    std::printf("  cost     : %s\n", answer->cost.ToString().c_str());
  }

  void Repl() {
    std::printf("p2paqp REPL — \\help for commands, \\quit to exit\n");
    std::string line;
    while (true) {
      std::printf("p2paqp> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (line.empty()) continue;
      if (line[0] == '\\') {
        if (line == "\\quit" || line == "\\q") break;
        if (line == "\\help") {
          PrintHelp();
        } else if (line == "\\catalog") {
          std::printf("%s\n", catalog.ToString().c_str());
        } else if (line == "\\cost") {
          std::printf("%s\n", network.cost_snapshot().ToString().c_str());
        } else if (line.rfind("\\churn", 0) == 0) {
          double leave = 0.05;
          double rejoin = 0.2;
          std::sscanf(line.c_str(), "\\churn %lf %lf", &leave, &rejoin);
          net::ChurnParams churn_params;
          churn_params.leave_probability = leave;
          churn_params.rejoin_probability = rejoin;
          net::ChurnModel churn(churn_params, rng.Next64());
          size_t changes = churn.Step(network);
          catalog = core::MakeLiveCatalog(network, catalog.suggested_jump,
                                          catalog.suggested_burn_in);
          std::printf("churn: %zu peers changed state; %zu live; "
                      "catalog refreshed (%s)\n",
                      changes, network.num_alive(),
                      catalog.ToString().c_str());
        } else {
          std::printf("unknown command %s (\\help)\n", line.c_str());
        }
        continue;
      }
      RunQuery(line);
    }
  }
};

int Run(int argc, char** argv) {
  auto options = ParseArgs(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 2;
  }
  auto kind = KindFromName(options->topology);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }

  util::Rng rng(options->seed);
  if (!options->load_world.empty()) {
    std::fprintf(stderr, "loading world from %s...\n",
                 options->load_world.c_str());
    auto loaded = io::LoadWorld(options->load_world, net::NetworkParams{},
                                options->seed + 1);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "preprocessing (spectral walk tuning)...\n");
    core::SystemCatalog catalog =
        core::Preprocess(loaded->graph(), 0.05, rng);
    std::fprintf(stderr, "catalog: %s\n", catalog.ToString().c_str());
    Session session{std::move(*loaded), catalog, *options,
                    util::Rng(options->seed + 2)};
    if (!session.options.query.empty()) session.RunQuery(session.options.query);
    if (session.options.repl) session.Repl();
    return 0;
  }
  topology::TopologyConfig config;
  config.kind = *kind;
  config.num_nodes = options->peers;
  config.num_edges = options->edges;
  config.num_subgraphs = options->subgraphs;
  config.cut_edges = options->cut;
  std::fprintf(stderr, "building %s overlay: %zu peers / %zu edges...\n",
               options->topology.c_str(), options->peers, options->edges);
  auto topo = topology::MakeTopology(config, rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.status().ToString().c_str());
    return 1;
  }

  data::DatasetParams dataset;
  dataset.num_tuples = options->peers * options->tuples_per_peer;
  dataset.skew = options->skew;
  dataset.fill_b = options->fill_b;
  dataset.b_correlation = options->fill_b ? 0.5 : 0.0;
  auto table = data::GenerateDataset(dataset, rng);
  if (!table.ok()) {
    std::fprintf(stderr, "data: %s\n", table.status().ToString().c_str());
    return 1;
  }
  data::PartitionParams placement;
  placement.cluster_level = options->cluster_level;
  auto databases =
      data::PartitionAcrossPeers(*table, topo->graph, placement, rng);
  if (!databases.ok()) {
    std::fprintf(stderr, "placement: %s\n",
                 databases.status().ToString().c_str());
    return 1;
  }
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph),
                                             std::move(*databases),
                                             net::NetworkParams{},
                                             options->seed + 1);
  if (!network.ok()) {
    std::fprintf(stderr, "network: %s\n",
                 network.status().ToString().c_str());
    return 1;
  }
  if (!options->save_world.empty()) {
    util::Status saved = io::SaveWorld(options->save_world, *network);
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "world saved to %s\n",
                 options->save_world.c_str());
  }
  std::fprintf(stderr, "preprocessing (spectral walk tuning)...\n");
  core::SystemCatalog catalog = core::Preprocess(network->graph(), 0.05, rng);
  std::fprintf(stderr, "catalog: %s\n", catalog.ToString().c_str());

  Session session{std::move(*network), catalog, *options,
                  util::Rng(options->seed + 2)};
  if (!session.options.query.empty()) {
    session.RunQuery(session.options.query);
  }
  if (session.options.repl) session.Repl();
  return 0;
}

}  // namespace
}  // namespace p2paqp

int main(int argc, char** argv) { return p2paqp::Run(argc, argv); }

#include "graph/metrics.h"

#include <numeric>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "topology/power_law.h"
#include "topology/random.h"

namespace p2paqp::graph {
namespace {

Graph MakeTriangle() {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  return builder.Build();
}

Graph MakeStar(size_t leaves) {
  GraphBuilder builder(leaves + 1);
  for (NodeId v = 1; v <= leaves; ++v) builder.AddEdge(0, v);
  return builder.Build();
}

TEST(DegreeHistogramTest, CountsNodesPerDegree) {
  Graph g = MakeStar(4);
  auto hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 5u);  // Degrees 0..4.
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), size_t{0}),
            g.num_nodes());
}

TEST(PowerLawFitTest, BaGraphExponentInPlausibleRange) {
  util::Rng rng(3);
  auto graph = topology::MakeBarabasiAlbert(3000, 3, rng);
  ASSERT_TRUE(graph.ok());
  double alpha = FitPowerLawExponent(*graph, 3);
  // BA attachment yields alpha ~= 3 asymptotically; finite graphs drift.
  EXPECT_GT(alpha, 1.8);
  EXPECT_LT(alpha, 4.5);
}

TEST(PowerLawFitTest, UniformRandomGraphFitsSteeper) {
  // ER degree tails decay much faster than a power law; the MLE "alpha"
  // comes out larger than for a genuinely heavy-tailed graph.
  util::Rng rng(5);
  auto ba = topology::MakeBarabasiAlbert(2000, 3, rng);
  auto er = topology::MakeErdosRenyi(2000, 6000, rng);
  ASSERT_TRUE(ba.ok());
  ASSERT_TRUE(er.ok());
  EXPECT_LT(FitPowerLawExponent(*ba, 4), FitPowerLawExponent(*er, 4));
}

TEST(PowerLawFitTest, NoQualifyingNodesReturnsZero) {
  Graph g = MakeStar(2);
  EXPECT_DOUBLE_EQ(FitPowerLawExponent(g, 10), 0.0);
}

TEST(ClusteringCoefficientTest, TriangleIsOne) {
  util::Rng rng(7);
  EXPECT_DOUBLE_EQ(EstimateClusteringCoefficient(MakeTriangle(), 10, rng),
                   1.0);
}

TEST(ClusteringCoefficientTest, StarIsZero) {
  util::Rng rng(9);
  EXPECT_DOUBLE_EQ(EstimateClusteringCoefficient(MakeStar(5), 10, rng), 0.0);
}

TEST(ConductanceTest, KnownSplit) {
  // Two triangles joined by one edge: cut = 1, vol(S) = 7 (triangle plus
  // bridge endpoint degree 3).
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  builder.AddEdge(2, 3);
  Graph g = builder.Build();
  std::vector<bool> side = {true, true, true, false, false, false};
  EXPECT_NEAR(Conductance(g, side), 1.0 / 7.0, 1e-12);
}

TEST(ConductanceTest, EmptySideIsZero) {
  Graph g = MakeTriangle();
  std::vector<bool> side(3, false);
  EXPECT_DOUBLE_EQ(Conductance(g, side), 0.0);
}

TEST(ConductanceTest, WellMixedSplitHasHighConductance) {
  util::Rng rng(11);
  auto graph = topology::MakeErdosRenyi(400, 2400, rng);
  ASSERT_TRUE(graph.ok());
  std::vector<bool> side(400);
  for (size_t v = 0; v < 400; ++v) side[v] = (v % 2 == 0);
  // A random split of a random graph cuts ~half the edges.
  EXPECT_GT(Conductance(*graph, side), 0.3);
}

}  // namespace
}  // namespace p2paqp::graph

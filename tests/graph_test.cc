// Graph representation + builder tests.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace p2paqp::graph {
namespace {

// Triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
Graph MakeDiamond() {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_TRUE(builder.AddEdge(1, 2));
  EXPECT_TRUE(builder.AddEdge(2, 0));
  EXPECT_TRUE(builder.AddEdge(2, 3));
  return builder.Build();
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(1, 1));
  EXPECT_EQ(builder.num_edges(), 0u);
}

TEST(GraphBuilderTest, RejectsDuplicatesBothDirections) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(1, 0));
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(0, 3));
  EXPECT_FALSE(builder.AddEdge(7, 1));
}

TEST(GraphBuilderTest, HasEdgeTracksInsertions) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 2);
  EXPECT_TRUE(builder.HasEdge(0, 2));
  EXPECT_TRUE(builder.HasEdge(2, 0));
  EXPECT_FALSE(builder.HasEdge(1, 3));
}

TEST(GraphTest, DegreesAndCounts) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = MakeDiamond();
  auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, HasEdgeSymmetric) {
  Graph g = MakeDiamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(GraphTest, StationaryProbabilitiesSumToOne) {
  Graph g = MakeDiamond();
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    total += g.StationaryProbability(v);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // prob(v) = deg(v) / 2|E| = deg(v) / 8.
  EXPECT_DOUBLE_EQ(g.StationaryProbability(2), 3.0 / 8.0);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(GraphTest, IsolatedNodesAllowed) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
  EXPECT_EQ(g.min_degree(), 0u);
}

TEST(GraphBuilderTest, BuildDrainsBuilder) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(builder.num_edges(), 0u);
}

}  // namespace
}  // namespace p2paqp::graph

// Graph representation + builder tests.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace p2paqp::graph {
namespace {

// Triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
Graph MakeDiamond() {
  GraphBuilder builder(4);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_TRUE(builder.AddEdge(1, 2));
  EXPECT_TRUE(builder.AddEdge(2, 0));
  EXPECT_TRUE(builder.AddEdge(2, 3));
  return builder.Build();
}

TEST(GraphBuilderTest, RejectsSelfLoops) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(1, 1));
  EXPECT_EQ(builder.num_edges(), 0u);
}

TEST(GraphBuilderTest, RejectsDuplicatesBothDirections) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(0, 1));
  EXPECT_FALSE(builder.AddEdge(1, 0));
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(GraphBuilderTest, RejectsOutOfRange) {
  GraphBuilder builder(3);
  EXPECT_FALSE(builder.AddEdge(0, 3));
  EXPECT_FALSE(builder.AddEdge(7, 1));
}

TEST(GraphBuilderTest, HasEdgeTracksInsertions) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 2);
  EXPECT_TRUE(builder.HasEdge(0, 2));
  EXPECT_TRUE(builder.HasEdge(2, 0));
  EXPECT_FALSE(builder.HasEdge(1, 3));
}

TEST(GraphTest, DegreesAndCounts) {
  Graph g = MakeDiamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = MakeDiamond();
  auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
}

TEST(GraphTest, HasEdgeSymmetric) {
  Graph g = MakeDiamond();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(0, 99));
}

TEST(GraphTest, StationaryProbabilitiesSumToOne) {
  Graph g = MakeDiamond();
  double total = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    total += g.StationaryProbability(v);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // prob(v) = deg(v) / 2|E| = deg(v) / 8.
  EXPECT_DOUBLE_EQ(g.StationaryProbability(2), 3.0 / 8.0);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(GraphTest, IsolatedNodesAllowed) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.degree(4), 0u);
  EXPECT_TRUE(g.neighbors(4).empty());
  EXPECT_EQ(g.min_degree(), 0u);
}

TEST(GraphBuilderTest, BuildDrainsBuilder) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(builder.num_edges(), 0u);
}

// The pre-PR-7 builder held a std::vector per node plus an unordered_set
// bucket per edge — >100 bytes/edge of overhead at high node counts. The
// streaming builder stores flat arrays only; its exact accounting must stay
// under 4 bytes/node + ~30 bytes/edge (8B log entry + <=13.4B table slot at
// the 60% load ceiling, doubled transiently by growth headroom).
TEST(GraphBuilderTest, BoundedMemoryAtHighNodeCounts) {
  constexpr size_t kNodes = 100000;
  constexpr size_t kEdges = 400000;
  GraphBuilder builder(kNodes, kEdges);
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  size_t peak = builder.MemoryBytes();
  while (builder.num_edges() < kEdges) {
    auto a = static_cast<NodeId>(next() % kNodes);
    auto b = static_cast<NodeId>(next() % kNodes);
    builder.AddEdge(a, b);
    peak = std::max(peak, builder.MemoryBytes());
  }
  EXPECT_LE(peak, 4 * kNodes + 60 * kEdges)
      << "builder peak " << peak << " bytes for " << kEdges << " edges";
  Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), kEdges);
  // The compressed graph itself beats the uncompressed CSR it replaced
  // (8-byte offsets + 4 bytes per directed edge).
  EXPECT_LT(g.MemoryBytes(), 8 * kNodes + 8 * kEdges);
}

// Delta gaps above 127 exercise the multi-byte varint path.
TEST(GraphTest, WideIdGapsRoundTrip) {
  constexpr size_t kNodes = 3000000;
  GraphBuilder builder(kNodes);
  ASSERT_TRUE(builder.AddEdge(0, 2999999));
  ASSERT_TRUE(builder.AddEdge(0, 150));
  ASSERT_TRUE(builder.AddEdge(0, 70000));
  ASSERT_TRUE(builder.AddEdge(5, 6));
  Graph g = builder.Build();
  std::vector<NodeId> nbrs;
  g.CopyNeighbors(0, &nbrs);
  EXPECT_EQ(nbrs, (std::vector<NodeId>{150, 70000, 2999999}));
  EXPECT_TRUE(g.HasEdge(2999999, 0));
  EXPECT_TRUE(g.HasEdge(0, 70000));
  EXPECT_FALSE(g.HasEdge(0, 70001));
  EXPECT_EQ(g.neighbors(0)[2], 2999999u);
  EXPECT_EQ(g.neighbors(0).front(), 150u);
  EXPECT_TRUE(g.neighbors(0).contains(70000u));
  EXPECT_FALSE(g.neighbors(0).contains(71000u));
}

}  // namespace
}  // namespace p2paqp::graph

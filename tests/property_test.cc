// Cross-module property tests: parameterized sweeps asserting structural
// and statistical invariants that must hold for *every* configuration, not
// just the defaults the unit tests pin down.
#include <map>
#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "core/aqp.h"
#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp {
namespace {

// ---------------------------------------------------------------------------
// Graph generators: handshake lemma, symmetry, simplicity, connectivity.
// ---------------------------------------------------------------------------

using GraphGenParam = std::tuple<topology::TopologyKind, size_t, size_t>;

class GraphGeneratorProperties
    : public ::testing::TestWithParam<GraphGenParam> {};

TEST_P(GraphGeneratorProperties, StructuralInvariants) {
  auto [kind, nodes, edges] = GetParam();
  util::Rng rng(31337);
  topology::TopologyConfig config;
  config.kind = kind;
  config.num_nodes = nodes;
  config.num_edges = edges;
  config.num_subgraphs = 2;
  config.cut_edges = std::max<size_t>(2, edges / 50);
  auto topo = topology::MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok()) << topo.status().ToString();
  const graph::Graph& g = topo->graph;

  EXPECT_EQ(g.num_nodes(), nodes);

  // Handshake lemma: degree sum equals twice the edge count.
  size_t degree_sum = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());

  // Symmetry + simplicity.
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::NodeId prev = graph::kInvalidNode;
    for (graph::NodeId v : g.neighbors(u)) {
      EXPECT_NE(v, u) << "self loop at " << u;
      EXPECT_NE(v, prev) << "parallel edge " << u << "-" << v;
      EXPECT_TRUE(g.HasEdge(v, u)) << "asymmetric edge " << u << "-" << v;
      prev = v;
    }
  }

  // Single component: every generator must produce a usable overlay.
  EXPECT_TRUE(graph::IsConnected(g));

  // Stationary probabilities form a distribution.
  double total_prob = 0.0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    total_prob += g.StationaryProbability(v);
  }
  EXPECT_NEAR(total_prob, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GraphGeneratorProperties,
    ::testing::Combine(
        ::testing::Values(topology::TopologyKind::kPowerLaw,
                          topology::TopologyKind::kClustered,
                          topology::TopologyKind::kErdosRenyi,
                          topology::TopologyKind::kGnutella),
        ::testing::Values(size_t{200}, size_t{997}),
        ::testing::Values(size_t{1500}, size_t{4000})),
    [](const auto& info) {
      return std::string(
                 topology::TopologyKindToString(std::get<0>(info.param))) +
             "_n" + std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Partitioner: tuple conservation under every (CL, sizing) combination.
// ---------------------------------------------------------------------------

using PartitionParam = std::tuple<double, data::PartitionParams::SizePolicy>;

class PartitionerProperties
    : public ::testing::TestWithParam<PartitionParam> {};

TEST_P(PartitionerProperties, ConservesTuplesExactly) {
  auto [cluster_level, policy] = GetParam();
  util::Rng rng(17);
  auto graph = topology::MakeBarabasiAlbert(150, 3, rng);
  ASSERT_TRUE(graph.ok());
  data::DatasetParams dataset;
  dataset.num_tuples = 7321;  // Deliberately not divisible by peers.
  auto table = data::GenerateDataset(dataset, rng);
  ASSERT_TRUE(table.ok());

  data::PartitionParams params;
  params.cluster_level = cluster_level;
  params.size_policy = policy;
  auto dbs = data::PartitionAcrossPeers(*table, *graph, params, rng);
  ASSERT_TRUE(dbs.ok());

  std::map<data::Value, int64_t> expected;
  for (const data::Tuple& t : *table) ++expected[t.value];
  std::map<data::Value, int64_t> actual;
  size_t total = 0;
  for (const data::LocalDatabase& db : *dbs) {
    total += db.size();
    for (const data::Tuple& t : db.tuples()) ++actual[t.value];
  }
  EXPECT_EQ(total, table->size());
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Placements, PartitionerProperties,
    ::testing::Combine(
        ::testing::Values(0.0, 0.25, 0.5, 1.0),
        ::testing::Values(data::PartitionParams::SizePolicy::kUniform,
                          data::PartitionParams::SizePolicy::
                              kDegreeProportional)));

// ---------------------------------------------------------------------------
// Random walk: selection frequencies track the stationary distribution on
// every topology kind.
// ---------------------------------------------------------------------------

class WalkStationarityProperty
    : public ::testing::TestWithParam<topology::TopologyKind> {};

TEST_P(WalkStationarityProperty, SelectionFrequencyMatchesDegreeLaw) {
  util::Rng rng(23);
  topology::TopologyConfig config;
  config.kind = GetParam();
  config.num_nodes = 60;
  config.num_edges = 240;
  config.num_subgraphs = 2;
  config.cut_edges = 12;
  auto topo = topology::MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok());
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph), {},
                                             net::NetworkParams{}, 1);
  ASSERT_TRUE(network.ok());
  sampling::RandomWalk walk(
      &*network, sampling::WalkParams{.jump = 8, .burn_in = 60});
  util::Rng walk_rng(29);
  const size_t kSelections = 40000;
  auto visits = walk.Collect(0, kSelections, walk_rng);
  ASSERT_TRUE(visits.ok());
  std::vector<double> observed(network->num_peers(), 0.0);
  for (const sampling::PeerVisit& v : *visits) {
    observed[v.peer] += 1.0 / static_cast<double>(kSelections);
  }
  // Total variation between empirical and stationary distribution.
  double tv = 0.0;
  for (graph::NodeId p = 0; p < network->num_peers(); ++p) {
    tv += std::fabs(observed[p] - network->graph().StationaryProbability(p));
  }
  EXPECT_LT(tv / 2.0, 0.05)
      << topology::TopologyKindToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WalkStationarityProperty,
                         ::testing::Values(topology::TopologyKind::kPowerLaw,
                                           topology::TopologyKind::kClustered,
                                           topology::TopologyKind::kErdosRenyi,
                                           topology::TopologyKind::kGnutella),
                         [](const auto& info) {
                           return topology::TopologyKindToString(info.param);
                         });

// ---------------------------------------------------------------------------
// Local executor: the scaled count is an unbiased estimate of the local
// count for every sub-sampling budget.
// ---------------------------------------------------------------------------

class ExecutorScalingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorScalingProperty, ScaledCountIsUnbiased) {
  uint64_t t = GetParam();
  // 200 tuples, 60 of which match.
  data::Table table;
  for (int i = 0; i < 200; ++i) table.push_back({i < 60 ? 10 : 90});
  data::LocalDatabase db(std::move(table));
  query::AggregateQuery q;
  q.predicate = {1, 50};
  util::Rng rng(t + 1);
  util::RunningStat stat;
  const int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    stat.Add(query::ExecuteLocal(db, q, t, rng).count_value);
  }
  double se = stat.stddev() / std::sqrt(static_cast<double>(kTrials));
  EXPECT_NEAR(stat.mean(), 60.0, std::max(4.0 * se, 1e-9)) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Budgets, ExecutorScalingProperty,
                         ::testing::Values(0, 10, 25, 100, 199, 200, 500));

// ---------------------------------------------------------------------------
// Engine: every aggregate op returns positive estimates with coherent cost
// accounting on every topology kind.
// ---------------------------------------------------------------------------

using EngineParam = std::tuple<topology::TopologyKind, query::AggregateOp>;

class EngineCoverageProperty : public ::testing::TestWithParam<EngineParam> {
};

TEST_P(EngineCoverageProperty, AnswersWithCoherentCosts) {
  auto [kind, op] = GetParam();
  util::Rng rng(41);
  topology::TopologyConfig config;
  config.kind = kind;
  config.num_nodes = 600;
  config.num_edges = 3000;
  config.num_subgraphs = 2;
  config.cut_edges = 100;
  auto topo = topology::MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok());
  data::DatasetParams dataset;
  dataset.num_tuples = 30000;
  auto table = data::GenerateDataset(dataset, rng);
  ASSERT_TRUE(table.ok());
  auto dbs = data::PartitionAcrossPeers(*table, topo->graph,
                                        data::PartitionParams{}, rng);
  ASSERT_TRUE(dbs.ok());
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph),
                                             std::move(*dbs),
                                             net::NetworkParams{}, 2);
  ASSERT_TRUE(network.ok());
  core::SystemCatalog catalog = core::MakeCatalog(network->graph(), 10, 30);
  core::EngineParams params;
  params.phase1_peers = 30;
  core::TwoPhaseEngine engine(&*network, catalog, params);

  query::AggregateQuery q;
  q.op = op;
  q.predicate = {1, 100};
  q.required_error = 0.2;
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GT(answer->estimate, 0.0);
  EXPECT_EQ(answer->phase1_peers, 30u);
  EXPECT_GE(answer->phase2_peers, params.min_phase2_peers);
  EXPECT_GT(answer->cost.messages, 0u);
  EXPECT_GT(answer->cost.tuples_scanned, 0u);
  EXPECT_GT(answer->cost.latency_ms, 0.0);
  EXPECT_GE(answer->cost.bytes_shipped, 23 * answer->cost.messages);
}

INSTANTIATE_TEST_SUITE_P(
    OpsByTopology, EngineCoverageProperty,
    ::testing::Combine(
        ::testing::Values(topology::TopologyKind::kPowerLaw,
                          topology::TopologyKind::kClustered,
                          topology::TopologyKind::kGnutella),
        ::testing::Values(query::AggregateOp::kCount, query::AggregateOp::kSum,
                          query::AggregateOp::kAvg,
                          query::AggregateOp::kMedian,
                          query::AggregateOp::kDistinct)),
    [](const auto& info) {
      return std::string(
                 topology::TopologyKindToString(std::get<0>(info.param))) +
             "_" + query::AggregateOpToString(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Overlay evolution end-to-end: grow/shrink the overlay, re-snapshot, and
// verify queries remain accurate against the surviving data.
// ---------------------------------------------------------------------------

TEST(OverlayEvolutionProperty, QueriesTrackTheEvolvedOverlay) {
  util::Rng rng(53);
  auto seed_graph = topology::MakeBarabasiAlbert(800, 5, rng);
  ASSERT_TRUE(seed_graph.ok());
  data::DatasetParams dataset;
  dataset.num_tuples = 40000;
  auto table = data::GenerateDataset(dataset, rng);
  ASSERT_TRUE(table.ok());
  auto dbs = data::PartitionAcrossPeers(*table, *seed_graph,
                                        data::PartitionParams{}, rng);
  ASSERT_TRUE(dbs.ok());

  // Evolve: 150 departures, 200 joins (new peers bring fresh data).
  net::OverlayManager overlay(*seed_graph);
  std::vector<data::LocalDatabase> databases = std::move(*dbs);
  for (int i = 0; i < 150; ++i) {
    auto victim =
        static_cast<graph::NodeId>(rng.UniformIndex(overlay.num_nodes()));
    if (overlay.IsActive(victim) && overlay.Degree(victim) > 0) {
      overlay.Leave(victim);
      databases[victim].Clear();  // Its data departs with it.
    }
  }
  auto zipf = util::ZipfGenerator::Make(100, 0.2);
  for (int i = 0; i < 200; ++i) {
    auto id = overlay.Join(5, rng);
    ASSERT_TRUE(id.ok());
    data::Table fresh;
    for (int k = 0; k < 50; ++k) {
      fresh.push_back({static_cast<data::Value>(zipf->Sample(rng))});
    }
    databases.emplace_back(std::move(fresh));
  }
  ASSERT_EQ(databases.size(), overlay.num_nodes());

  // Rebuild the simulated network from the evolved snapshot.
  graph::Graph evolved = overlay.Snapshot();
  auto network = net::SimulatedNetwork::Make(std::move(evolved),
                                             std::move(databases),
                                             net::NetworkParams{}, 3);
  ASSERT_TRUE(network.ok());
  // Departed peers are isolated in the snapshot; mark them down.
  for (graph::NodeId v = 0; v < network->num_peers(); ++v) {
    if (!overlay.IsActive(v)) network->SetAlive(v, false);
  }

  core::SystemCatalog catalog =
      core::MakeLiveCatalog(*network, /*jump=*/10, /*burn_in=*/40);
  core::EngineParams params;
  params.phase1_peers = 60;
  params.include_phase1_observations = true;
  core::TwoPhaseEngine engine(&*network, catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  graph::NodeId sink = 0;
  ASSERT_TRUE(network->IsAlive(sink));
  util::Rng query_rng(59);
  auto answer = engine.Execute(q, sink, query_rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  double truth = static_cast<double>(network->ExactCount(1, 30));
  double total = static_cast<double>(network->TotalTuples());
  EXPECT_LT(std::fabs(answer->estimate - truth) / total, 0.12);
}

}  // namespace
}  // namespace p2paqp

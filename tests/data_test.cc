#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/local_database.h"
#include "data/partitioner.h"
#include "topology/clustered.h"
#include "topology/power_law.h"

namespace p2paqp::data {
namespace {

std::map<Value, size_t> ValueCounts(const Table& table) {
  std::map<Value, size_t> counts;
  for (const Tuple& t : table) ++counts[t.value];
  return counts;
}

TEST(GeneratorTest, ProducesRequestedTuplesInDomain) {
  util::Rng rng(1);
  DatasetParams params;
  params.num_tuples = 10000;
  auto table = GenerateDataset(params, rng);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->size(), 10000u);
  for (const Tuple& t : *table) {
    EXPECT_GE(t.value, 1);
    EXPECT_LE(t.value, 100);
  }
}

TEST(GeneratorTest, SkewSlantsFrequencies) {
  util::Rng rng(2);
  DatasetParams flat;
  flat.num_tuples = 50000;
  flat.skew = 0.0;
  DatasetParams steep = flat;
  steep.skew = 2.0;
  auto flat_table = GenerateDataset(flat, rng);
  auto steep_table = GenerateDataset(steep, rng);
  ASSERT_TRUE(flat_table.ok());
  ASSERT_TRUE(steep_table.ok());
  auto flat_counts = ValueCounts(*flat_table);
  auto steep_counts = ValueCounts(*steep_table);
  // Under heavy skew the most frequent value dominates; under zero skew it
  // holds ~1% of the mass.
  EXPECT_GT(steep_counts[1], flat_counts[1] * 10);
}

TEST(GeneratorTest, CustomDomain) {
  util::Rng rng(3);
  DatasetParams params;
  params.num_tuples = 1000;
  params.min_value = -10;
  params.max_value = 10;
  params.skew = 0.5;
  auto table = GenerateDataset(params, rng);
  ASSERT_TRUE(table.ok());
  for (const Tuple& t : *table) {
    EXPECT_GE(t.value, -10);
    EXPECT_LE(t.value, 10);
  }
}

TEST(GeneratorTest, ColumnBDefaultsToZero) {
  util::Rng rng(30);
  DatasetParams params;
  params.num_tuples = 500;
  auto table = GenerateDataset(params, rng);
  ASSERT_TRUE(table.ok());
  for (const Tuple& t : *table) EXPECT_EQ(t.b, 0);
}

TEST(GeneratorTest, ColumnBCorrelationKnob) {
  util::Rng rng(31);
  DatasetParams params;
  params.num_tuples = 20000;
  params.fill_b = true;
  params.b_correlation = 0.0;
  auto independent = GenerateDataset(params, rng);
  ASSERT_TRUE(independent.ok());
  params.b_correlation = 1.0;
  auto copied = GenerateDataset(params, rng);
  ASSERT_TRUE(copied.ok());
  size_t equal_independent = 0;
  for (const Tuple& t : *independent) {
    EXPECT_GE(t.b, 1);
    EXPECT_LE(t.b, 100);
    if (t.b == t.value) ++equal_independent;
  }
  for (const Tuple& t : *copied) EXPECT_EQ(t.b, t.value);
  // Independent draws coincide with A only occasionally.
  EXPECT_LT(equal_independent, independent->size() / 2);
}

TEST(GeneratorTest, RejectsBadBCorrelation) {
  util::Rng rng(32);
  DatasetParams params;
  params.fill_b = true;
  params.b_correlation = 1.5;
  EXPECT_FALSE(GenerateDataset(params, rng).ok());
}

TEST(GeneratorTest, RejectsEmptyDomain) {
  util::Rng rng(4);
  DatasetParams params;
  params.min_value = 5;
  params.max_value = 4;
  EXPECT_FALSE(GenerateDataset(params, rng).ok());
}

TEST(GeneratorTest, ExactAggregatesAgree) {
  Table table = {{1}, {5}, {5}, {30}, {99}};
  EXPECT_EQ(ExactCount(table, 1, 10), 3);
  EXPECT_EQ(ExactSum(table, 1, 10), 11);
  EXPECT_EQ(ExactCount(table, 50, 100), 1);
  EXPECT_EQ(ExactSum(table, 50, 100), 99);
  EXPECT_EQ(ExactCount(table, 200, 300), 0);
}

TEST(LocalDatabaseTest, CountSumMedian) {
  LocalDatabase db(Table{{2}, {4}, {6}, {8}, {10}});
  EXPECT_EQ(db.Count(4, 8), 3);
  EXPECT_EQ(db.Sum(4, 8), 18);
  EXPECT_DOUBLE_EQ(db.MedianValue(), 6.0);
  LocalDatabase even(Table{{1}, {3}, {5}, {7}});
  EXPECT_DOUBLE_EQ(even.MedianValue(), 4.0);
}

TEST(LocalDatabaseTest, SampleSizesAndMembership) {
  LocalDatabase db(Table{{1}, {2}, {3}, {4}, {5}});
  util::Rng rng(5);
  Table sample = db.Sample(3, rng);
  EXPECT_EQ(sample.size(), 3u);
  for (const Tuple& t : sample) {
    EXPECT_GE(t.value, 1);
    EXPECT_LE(t.value, 5);
  }
  // Requesting more than available returns everything.
  EXPECT_EQ(db.Sample(10, rng).size(), 5u);
}

TEST(LocalDatabaseTest, AppendAndClear) {
  LocalDatabase db;
  EXPECT_TRUE(db.empty());
  db.Append(Tuple{7});
  db.Append(Table{{8}, {9}});
  EXPECT_EQ(db.size(), 3u);
  db.Clear();
  EXPECT_TRUE(db.empty());
}

class PartitionerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(7);
    auto graph = topology::MakeBarabasiAlbert(200, 3, rng);
    ASSERT_TRUE(graph.ok());
    graph_ = std::move(*graph);
    DatasetParams params;
    params.num_tuples = 10000;
    auto table = GenerateDataset(params, rng);
    ASSERT_TRUE(table.ok());
    table_ = std::move(*table);
  }

  graph::Graph graph_;
  Table table_;
};

TEST_F(PartitionerTest, PreservesTupleMultiset) {
  util::Rng rng(8);
  PartitionParams params;
  params.cluster_level = 0.3;
  auto dbs = PartitionAcrossPeers(table_, graph_, params, rng);
  ASSERT_TRUE(dbs.ok());
  Table reassembled;
  for (const LocalDatabase& db : *dbs) {
    reassembled.insert(reassembled.end(), db.tuples().begin(),
                       db.tuples().end());
  }
  EXPECT_EQ(ValueCounts(reassembled), ValueCounts(table_));
}

TEST_F(PartitionerTest, UniformQuotas) {
  util::Rng rng(9);
  PartitionParams params;
  auto dbs = PartitionAcrossPeers(table_, graph_, params, rng);
  ASSERT_TRUE(dbs.ok());
  for (const LocalDatabase& db : *dbs) {
    EXPECT_EQ(db.size(), 50u);  // 10000 tuples / 200 peers.
  }
}

TEST_F(PartitionerTest, DegreeProportionalQuotas) {
  util::Rng rng(10);
  PartitionParams params;
  params.size_policy = PartitionParams::SizePolicy::kDegreeProportional;
  auto dbs = PartitionAcrossPeers(table_, graph_, params, rng);
  ASSERT_TRUE(dbs.ok());
  size_t total = 0;
  for (const LocalDatabase& db : *dbs) total += db.size();
  EXPECT_EQ(total, table_.size());
  // The highest-degree peer holds more than the lowest-degree peer.
  graph::NodeId hub = 0;
  graph::NodeId leaf = 0;
  for (graph::NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (graph_.degree(v) > graph_.degree(hub)) hub = v;
    if (graph_.degree(v) < graph_.degree(leaf)) leaf = v;
  }
  EXPECT_GT((*dbs)[hub].size(), (*dbs)[leaf].size());
}

// The key clustering property: at CL=0 each peer sees a narrow slice of the
// sorted value space; at CL=1 each peer sees a cross-section of everything.
TEST_F(PartitionerTest, ClusterLevelControlsPerPeerSpread) {
  auto average_spread = [&](double cl) {
    util::Rng rng(11);
    PartitionParams params;
    params.cluster_level = cl;
    params.bfs_root = 0;
    auto dbs = PartitionAcrossPeers(table_, graph_, params, rng);
    EXPECT_TRUE(dbs.ok());
    double total = 0.0;
    for (const LocalDatabase& db : *dbs) {
      Value lo = 1000;
      Value hi = -1000;
      for (const Tuple& t : db.tuples()) {
        lo = std::min(lo, t.value);
        hi = std::max(hi, t.value);
      }
      total += static_cast<double>(hi - lo);
    }
    return total / static_cast<double>(dbs->size());
  };
  double spread_clustered = average_spread(0.0);
  double spread_mixed = average_spread(0.5);
  double spread_random = average_spread(1.0);
  EXPECT_LT(spread_clustered, spread_mixed);
  EXPECT_LT(spread_mixed, spread_random);
  // Perfectly clustered peers hold essentially one value run.
  EXPECT_LT(spread_clustered, 3.0);
}

TEST(PartitionerClusteringTest, AdjacentPeersGetSimilarDataWhenClustered) {
  // On a community-structured overlay with CL=0 and breadth-first handout,
  // peers connected in the overlay must hold more similar data than random
  // peer pairs ("when loading a peer, the adjacent peers are also loaded
  // with similarly clustered data").
  util::Rng rng(12);
  topology::ClusteredParams topo_params;
  topo_params.num_nodes = 400;
  topo_params.num_edges = 2000;
  topo_params.num_subgraphs = 4;
  topo_params.cut_edges = 12;
  auto topo = topology::MakeClustered(topo_params, rng);
  ASSERT_TRUE(topo.ok());
  DatasetParams data_params;
  data_params.num_tuples = 20000;
  auto table = GenerateDataset(data_params, rng);
  ASSERT_TRUE(table.ok());
  PartitionParams params;
  params.cluster_level = 0.0;
  params.bfs_root = 0;
  auto dbs = PartitionAcrossPeers(*table, topo->graph, params, rng);
  ASSERT_TRUE(dbs.ok());

  double neighbor_gap = 0.0;
  size_t neighbor_pairs = 0;
  for (graph::NodeId u = 0; u < topo->graph.num_nodes(); ++u) {
    for (graph::NodeId v : topo->graph.neighbors(u)) {
      if (u < v) {
        neighbor_gap +=
            std::abs((*dbs)[u].MedianValue() - (*dbs)[v].MedianValue());
        ++neighbor_pairs;
      }
    }
  }
  neighbor_gap /= static_cast<double>(neighbor_pairs);

  double random_gap = 0.0;
  const size_t kRandomPairs = 4000;
  for (size_t i = 0; i < kRandomPairs; ++i) {
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(400));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(400));
    random_gap += std::abs((*dbs)[a].MedianValue() - (*dbs)[b].MedianValue());
  }
  random_gap /= static_cast<double>(kRandomPairs);

  EXPECT_LT(neighbor_gap, 0.8 * random_gap);
}

TEST_F(PartitionerTest, RejectsBadClusterLevel) {
  util::Rng rng(13);
  PartitionParams params;
  params.cluster_level = 1.5;
  EXPECT_FALSE(PartitionAcrossPeers(table_, graph_, params, rng).ok());
}

TEST_F(PartitionerTest, RejectsBadRoot) {
  util::Rng rng(14);
  PartitionParams params;
  params.bfs_root = 9999;
  EXPECT_FALSE(PartitionAcrossPeers(table_, graph_, params, rng).ok());
}

TEST(BlockSamplingTest, ReturnsWholeBlocks) {
  data::Table table;
  for (int i = 0; i < 64; ++i) table.push_back({i});
  LocalDatabase db(std::move(table));
  util::Rng rng(21);
  Table sample = db.SampleBlockLevel(20, 8, rng);
  // ceil(20/8) = 3 blocks of 8.
  ASSERT_EQ(sample.size(), 24u);
  // Values arrive in runs of 8 consecutive integers (block structure).
  for (size_t i = 0; i < sample.size(); i += 8) {
    for (size_t j = 1; j < 8; ++j) {
      EXPECT_EQ(sample[i + j].value, sample[i].value + static_cast<int>(j));
    }
    EXPECT_EQ(sample[i].value % 8, 0);  // Aligned block start.
  }
}

TEST(BlockSamplingTest, OversizedRequestReturnsEverything) {
  LocalDatabase db(Table{{1}, {2}, {3}});
  util::Rng rng(22);
  EXPECT_EQ(db.SampleBlockLevel(10, 4, rng).size(), 3u);
}

TEST(BlockSamplingTest, TailBlockMayBeShort) {
  data::Table table;
  for (int i = 0; i < 10; ++i) table.push_back({i});
  LocalDatabase db(std::move(table));
  util::Rng rng(23);
  // 3 blocks: [0..3], [4..7], [8..9]. Ask for enough to need all blocks
  // minus one; sizes are 4, 4 and 2 in some order.
  Table sample = db.SampleBlockLevel(8, 4, rng);
  EXPECT_GE(sample.size(), 6u);
  EXPECT_LE(sample.size(), 8u);
}

TEST(BlockSamplingTest, BlocksAreDrawnUniformly) {
  data::Table table;
  for (int i = 0; i < 100; ++i) table.push_back({i});
  LocalDatabase db(std::move(table));
  util::Rng rng(24);
  std::vector<int> block_hits(10, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (const Tuple& t : db.SampleBlockLevel(10, 10, rng)) {
      if (t.value % 10 == 0) ++block_hits[t.value / 10];
    }
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(block_hits[b] / 5000.0, 0.1, 0.02) << "block " << b;
  }
}

TEST(PartitionerEdgeTest, EmptyTableGivesEmptyDatabases) {
  util::Rng rng(15);
  auto graph = topology::MakeBarabasiAlbert(10, 2, rng);
  ASSERT_TRUE(graph.ok());
  auto dbs = PartitionAcrossPeers(Table{}, *graph, PartitionParams{}, rng);
  ASSERT_TRUE(dbs.ok());
  for (const LocalDatabase& db : *dbs) EXPECT_TRUE(db.empty());
}

}  // namespace
}  // namespace p2paqp::data

#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/zipf.h"

namespace p2paqp::util {
namespace {

TEST(HistogramTest, RejectsBadShapes) {
  EXPECT_FALSE(Histogram::Make(10, 9, 4).ok());
  EXPECT_FALSE(Histogram::Make(1, 100, 0).ok());
}

TEST(HistogramTest, ClampsBucketCountToDomain) {
  auto h = Histogram::Make(1, 4, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->num_buckets(), 4u);
}

TEST(HistogramTest, BucketAssignment) {
  auto h = Histogram::Make(1, 100, 10);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->BucketFor(1), 0u);
  EXPECT_EQ(h->BucketFor(10), 0u);
  EXPECT_EQ(h->BucketFor(11), 1u);
  EXPECT_EQ(h->BucketFor(100), 9u);
  // Out-of-domain values clamp.
  EXPECT_EQ(h->BucketFor(-5), 0u);
  EXPECT_EQ(h->BucketFor(1000), 9u);
}

TEST(HistogramTest, BucketRangesTileTheDomain) {
  auto h = Histogram::Make(1, 100, 7);
  ASSERT_TRUE(h.ok());
  int64_t expected_lo = 1;
  for (size_t b = 0; b < h->num_buckets(); ++b) {
    auto [lo, hi] = h->BucketRange(b);
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GE(hi, lo);
    expected_lo = hi + 1;
  }
  EXPECT_EQ(expected_lo, 101);
}

TEST(HistogramTest, AddAndTotal) {
  auto h = Histogram::Make(1, 10, 2);
  ASSERT_TRUE(h.ok());
  h->Add(1);
  h->Add(3, 2.5);
  h->Add(9);
  EXPECT_DOUBLE_EQ(h->count(0), 3.5);
  EXPECT_DOUBLE_EQ(h->count(1), 1.0);
  EXPECT_DOUBLE_EQ(h->total(), 4.5);
}

TEST(HistogramTest, MergeAndScale) {
  auto a = Histogram::Make(1, 10, 2);
  auto b = Histogram::Make(1, 10, 2);
  a->Add(2);
  b->Add(2);
  b->Add(8, 4.0);
  a->Merge(*b);
  EXPECT_DOUBLE_EQ(a->count(0), 2.0);
  EXPECT_DOUBLE_EQ(a->count(1), 4.0);
  a->Scale(0.5);
  EXPECT_DOUBLE_EQ(a->total(), 3.0);
}

TEST(HistogramTest, L1DistanceIdenticalShapesIsZero) {
  auto a = Histogram::Make(1, 100, 10);
  auto b = Histogram::Make(1, 100, 10);
  for (int v = 1; v <= 100; ++v) {
    a->Add(v);
    b->Add(v, 7.0);  // Same shape, different mass: normalized distance 0.
  }
  EXPECT_NEAR(a->NormalizedL1Distance(*b), 0.0, 1e-12);
}

TEST(HistogramTest, L1DistanceDisjointIsTwo) {
  auto a = Histogram::Make(1, 100, 10);
  auto b = Histogram::Make(1, 100, 10);
  a->Add(5);
  b->Add(95);
  EXPECT_DOUBLE_EQ(a->NormalizedL1Distance(*b), 2.0);
}

TEST(HistogramTest, L1DistanceEmptyCases) {
  auto a = Histogram::Make(1, 10, 2);
  auto b = Histogram::Make(1, 10, 2);
  EXPECT_DOUBLE_EQ(a->NormalizedL1Distance(*b), 0.0);
  b->Add(3);
  EXPECT_DOUBLE_EQ(a->NormalizedL1Distance(*b), 2.0);
}

TEST(HistogramTest, EmpiricalZipfShapeConverges) {
  // Two independent large samples from the same distribution must be close
  // in normalized L1 — the property the histogram CV step relies on.
  auto zipf = ZipfGenerator::Make(100, 1.0);
  ASSERT_TRUE(zipf.ok());
  auto a = Histogram::Make(1, 100, 10);
  auto b = Histogram::Make(1, 100, 10);
  Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    a->Add(zipf->Sample(rng));
    b->Add(zipf->Sample(rng));
  }
  EXPECT_LT(a->NormalizedL1Distance(*b), 0.03);
}

TEST(HistogramTest, ToStringListsBuckets) {
  auto h = Histogram::Make(1, 10, 2);
  h->Add(1);
  std::string s = h->ToString();
  EXPECT_NE(s.find("[1,5]"), std::string::npos);
  EXPECT_NE(s.find("[6,10]"), std::string::npos);
}

TEST(HistogramDeathTest, MergeRejectsMismatchedShapes) {
  auto a = Histogram::Make(1, 10, 2);
  auto b = Histogram::Make(1, 20, 2);
  EXPECT_DEATH(a->Merge(*b), "CHECK failed");
}

}  // namespace
}  // namespace p2paqp::util

// Scale-tier smoke test (ctest label: scale): a one-million-peer super-peer
// world must construct inside a hard per-peer memory budget and answer a
// COUNT end-to-end through the event-driven engine — bit-identically for
// any P2PAQP_THREADS.
//
// The budget is the tentpole contract of the compressed-CSR graph, the
// streaming GraphBuilder and the blocked PeerStore: roughly
//   ~sizeof(Peer) resident state + ~16 B of tuple storage (2 tuples)
//   + ~20 B of compressed adjacency per peer,
// with a ceiling of 192 B/peer leaving headroom without hiding regressions
// (the uncompressed vector-of-vectors layout alone blew past 300 B/peer).
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/async_engine.h"
#include "core/catalog.h"
#include "data/generator.h"
#include "data/partitioner.h"
#include "net/network.h"
#include "query/query.h"
#include "topology/super_peer.h"
#include "util/rng.h"

namespace p2paqp {
namespace {

constexpr size_t kPeers = 1000000;
constexpr size_t kTuplesPerPeer = 2;
constexpr size_t kBytesPerPeerCeiling = 192;
constexpr graph::NodeId kSink = 0;  // A super-peer: well-connected sink.

// RAII override of P2PAQP_THREADS; restores the previous value on exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("P2PAQP_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv("P2PAQP_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("P2PAQP_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("P2PAQP_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

// Builds the 1M-peer world once; both tests below share it.
net::SimulatedNetwork BuildMillionPeerWorld() {
  topology::SuperPeerParams topo;
  topo.num_nodes = kPeers;
  topo.super_fraction = 0.02;
  topo.core_edges_per_super = 4;
  topo.leaf_connections = 2;
  util::Rng topo_rng(20060403);
  auto topology = topology::MakeSuperPeer(topo, topo_rng);
  EXPECT_TRUE(topology.ok());

  data::DatasetParams dataset;
  dataset.num_tuples = kPeers * kTuplesPerPeer;
  dataset.skew = 0.2;
  util::Rng data_rng(271828);
  auto table = data::GenerateDataset(dataset, data_rng);
  EXPECT_TRUE(table.ok());
  data::PartitionParams partition;
  partition.cluster_level = 0.25;
  partition.bfs_root = kSink;
  auto databases = data::PartitionAcrossPeers(*table, topology->graph,
                                              partition, data_rng);
  EXPECT_TRUE(databases.ok());

  net::NetworkParams params;
  params.parallel_peer_init = true;  // Thread-invariant block init.
  auto network = net::SimulatedNetwork::Make(
      std::move(topology->graph), std::move(*databases), params, 314159);
  EXPECT_TRUE(network.ok());
  return std::move(*network);
}

TEST(ScaleTest, MillionPeerWorldAnswersCountUnderMemoryBudget) {
  net::SimulatedNetwork network = BuildMillionPeerWorld();
  ASSERT_EQ(network.num_peers(), kPeers);

  // The gated metric: resident bytes per peer across graph + peer state +
  // tuple storage. This is the same accounting bench/scale_world.cc ships
  // to the bench gate.
  size_t bytes_per_peer = network.MemoryBytes() / kPeers;
  EXPECT_LE(bytes_per_peer, kBytesPerPeerCeiling)
      << "world resident size regressed: " << bytes_per_peer << " B/peer";

  // One COUNT over the full domain, end-to-end through the event core.
  core::SystemCatalog catalog =
      core::MakeCatalog(network.graph(), /*jump=*/4, /*burn_in=*/24);
  core::AsyncParams params;
  params.engine.phase1_peers = 48;
  params.engine.tuples_per_peer = kTuplesPerPeer;
  params.engine.cv_repeats = 4;
  params.walkers = 4;
  params.walk.jump = 4;
  params.walk.burn_in = 24;
  core::AsyncQuerySession session(&network, catalog, params);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 100};
  query.required_error = 0.5;
  util::Rng rng(999331);
  auto report = session.Execute(query, kSink, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->events, 0u);
  EXPECT_GT(report->makespan_ms, 0.0);

  // Sanity band, not an accuracy claim: the full-domain COUNT truth is the
  // total tuple population; a handful of stationary samples on the
  // super-peer topology must land within a generous multiplicative band.
  double truth = static_cast<double>(network.TotalTuples());
  EXPECT_EQ(truth, static_cast<double>(kPeers * kTuplesPerPeer));
  EXPECT_GT(report->answer.estimate, truth / 10.0);
  EXPECT_LT(report->answer.estimate, truth * 10.0);
}

TEST(ScaleTest, MillionPeerCountIsBitIdenticalAcrossThreadCounts) {
  net::SimulatedNetwork network = BuildMillionPeerWorld();
  core::SystemCatalog catalog =
      core::MakeCatalog(network.graph(), /*jump=*/4, /*burn_in=*/24);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 60};
  query.required_error = 0.5;

  auto run = [&](net::SimulatedNetwork& world) {
    core::AsyncParams params;
    params.engine.phase1_peers = 32;
    params.engine.tuples_per_peer = kTuplesPerPeer;
    params.engine.cv_repeats = 4;
    params.walkers = 4;
    params.walk.jump = 4;
    params.walk.burn_in = 24;
    core::AsyncQuerySession session(&world, catalog, params);
    util::Rng rng(424243);
    auto report = session.Execute(query, kSink, rng);
    EXPECT_TRUE(report.ok());
    return std::move(*report);
  };

  core::AsyncQueryReport serial_report;
  core::AsyncQueryReport sharded_report;
  {
    ScopedThreads one("1");
    net::SimulatedNetwork world = network.Clone(777);
    serial_report = run(world);
  }
  {
    ScopedThreads four("4");
    net::SimulatedNetwork world = network.Clone(777);
    sharded_report = run(world);
  }
  // The sharded event core and blocked oracles must not perturb a single
  // bit of the execution: identical estimate, clock and event count.
  EXPECT_EQ(serial_report.answer.estimate, sharded_report.answer.estimate);
  EXPECT_EQ(serial_report.answer.ci_half_width_95,
            sharded_report.answer.ci_half_width_95);
  EXPECT_EQ(serial_report.makespan_ms, sharded_report.makespan_ms);
  EXPECT_EQ(serial_report.events, sharded_report.events);
}

}  // namespace
}  // namespace p2paqp

// Unit tests for the straggler-resilience primitives: the retry backoff
// schedule and the per-peer health scoreboard / circuit breaker
// (src/net/health.h). Statistical consequences (unbiasedness under skips,
// makespan wins from hedging) live in tests/statistical/stat_straggler_test.
#include "net/health.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace p2paqp::net {
namespace {

TEST(RetryBackoffTest, FixedTimerConsumesNoRng) {
  StragglerPolicy policy;
  policy.retransmit_timeout_ms = 2000.0;
  util::Rng drawn(9);
  util::Rng untouched(9);
  // The PR 1 fixed timer: every attempt waits the same, and the query's RNG
  // stream is untouched so legacy plans replay bit-identically.
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 1, drawn), 2000.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 5, drawn), 2000.0);
  EXPECT_EQ(drawn.Next64(), untouched.Next64());
}

TEST(RetryBackoffTest, ExponentialDoublesInsideJitterEnvelope) {
  StragglerPolicy policy;
  policy.exponential_backoff = true;
  policy.backoff_base_ms = 120.0;
  policy.backoff_jitter = 0.25;
  util::Rng rng(10);
  for (size_t attempt = 1; attempt <= 5; ++attempt) {
    const double nominal = 120.0 * std::pow(2.0, attempt - 1.0);
    const double wait = RetryBackoffMs(policy, attempt, rng);
    EXPECT_GE(wait, nominal * 0.75) << "attempt " << attempt;
    EXPECT_LE(wait, nominal * 1.25) << "attempt " << attempt;
  }
  // Deterministic: the jitter comes from the seeded query stream.
  util::Rng a(11);
  util::Rng b(11);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 3, a), RetryBackoffMs(policy, 3, b));
}

TEST(RetryBackoffTest, ZeroJitterIsExactAndRngFree) {
  StragglerPolicy policy;
  policy.exponential_backoff = true;
  policy.backoff_base_ms = 100.0;
  policy.backoff_jitter = 0.0;
  util::Rng drawn(12);
  util::Rng untouched(12);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 1, drawn), 100.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 2, drawn), 200.0);
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 4, drawn), 800.0);
  EXPECT_EQ(drawn.Next64(), untouched.Next64());
}

StragglerPolicy HealthPolicy() {
  StragglerPolicy policy;
  policy.health_tracking = true;
  policy.ewma_alpha = 0.2;
  policy.breaker_failure_threshold = 0.6;
  policy.breaker_latency_factor = 8.0;
  policy.breaker_min_samples = 4;
  return policy;
}

TEST(HealthBoardTest, EwmaTracksLatencyAndFailures) {
  PeerHealthBoard board;
  board.Configure(HealthPolicy());
  board.Reset(4);
  board.Record(0, 100.0, /*ok=*/true);
  EXPECT_FLOAT_EQ(board.LatencyEwma(0), 100.0f);  // First sample seeds it.
  board.Record(0, 200.0, /*ok=*/true);
  EXPECT_NEAR(board.LatencyEwma(0), 0.8 * 100.0 + 0.2 * 200.0, 1e-3);
  EXPECT_FLOAT_EQ(board.FailureEwma(0), 0.0f);
  board.Record(0, 0.0, /*ok=*/false);
  EXPECT_NEAR(board.FailureEwma(0), 0.2, 1e-6);
  board.Record(0, 100.0, /*ok=*/true);  // A success decays the failure rate.
  EXPECT_NEAR(board.FailureEwma(0), 0.16, 1e-6);
  EXPECT_EQ(board.Samples(0), 4u);
  EXPECT_EQ(board.TouchedPeers(), 1u);
}

TEST(HealthBoardTest, WinsorizesTailMonsters) {
  PeerHealthBoard board;
  board.Configure(HealthPolicy());
  board.Reset(2);
  board.Record(0, 10.0, /*ok=*/true);
  board.Record(0, 10000.0, /*ok=*/true);  // One Pareto monster...
  // ...is clamped to 8x the current EWMA before folding: the board nudges
  // toward "slow", it does not hand the whole scoreboard to one draw.
  EXPECT_NEAR(board.LatencyEwma(0), 0.8 * 10.0 + 0.2 * 80.0, 1e-3);
}

TEST(HealthBoardTest, BreakerNeedsMinSamplesThenTripsOnFailures) {
  PeerHealthBoard board;
  board.Configure(HealthPolicy());
  board.Reset(4);
  for (int i = 0; i < 3; ++i) board.Record(1, 0.0, /*ok=*/false);
  // Three straight failures, but below breaker_min_samples: no verdict yet.
  EXPECT_FALSE(board.Tripped(1));
  for (int i = 0; i < 3; ++i) board.Record(1, 0.0, /*ok=*/false);
  // Six failures: EWMA = 1 - 0.8^6 ~ 0.74, past the 0.6 threshold.
  EXPECT_TRUE(board.Tripped(1));
  EXPECT_EQ(board.TrippedCount(), 1u);
  // Successes decay the failure EWMA back under the threshold: the breaker
  // recovers instead of blacklisting forever.
  board.Record(1, 10.0, /*ok=*/true);
  board.Record(1, 10.0, /*ok=*/true);
  EXPECT_FALSE(board.Tripped(1));
  EXPECT_EQ(board.TrippedCount(), 0u);
}

TEST(HealthBoardTest, BreakerTripsOnLatencyOutlier) {
  PeerHealthBoard board;
  board.Configure(HealthPolicy());
  board.Reset(16);
  // Peer 1 answers, but consistently ~50x slower than everyone else.
  for (int i = 0; i < 4; ++i) board.Record(1, 500.0, /*ok=*/true);
  for (graph::NodeId peer = 2; peer < 12; ++peer) {
    for (int i = 0; i < 4; ++i) board.Record(peer, 10.0, /*ok=*/true);
  }
  EXPECT_TRUE(board.Tripped(1));
  EXPECT_FALSE(board.Tripped(2));
  EXPECT_EQ(board.TrippedCount(), 1u);
}

TEST(HealthBoardTest, ResetClearsEverything) {
  PeerHealthBoard board;
  board.Configure(HealthPolicy());
  board.Reset(4);
  for (int i = 0; i < 6; ++i) board.Record(2, 0.0, /*ok=*/false);
  ASSERT_TRUE(board.Tripped(2));
  board.Reset(4);
  EXPECT_FALSE(board.Tripped(2));
  EXPECT_EQ(board.TouchedPeers(), 0u);
  EXPECT_EQ(board.Samples(2), 0u);
  EXPECT_DOUBLE_EQ(board.GlobalLatencyEwma(), 0.0);
  // Out-of-range peers are inert, not UB: the engines size the board once
  // per query in the reserve-before-drain block.
  board.Record(99, 10.0, /*ok=*/true);
  EXPECT_FALSE(board.Tripped(99));
}

}  // namespace
}  // namespace p2paqp::net

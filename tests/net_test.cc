#include <gtest/gtest.h>

#include "graph/builder.h"
#include "net/churn.h"
#include "net/history.h"
#include "net/network.h"
#include "net/protocol.h"
#include "verify/protocol/history_checker.h"

namespace p2paqp::net {
namespace {

graph::Graph MakePath(size_t n) {
  graph::GraphBuilder builder(n);
  for (graph::NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

SimulatedNetwork MakePathNetwork(size_t n, uint64_t seed = 1) {
  auto network = SimulatedNetwork::Make(MakePath(n), {}, NetworkParams{}, seed);
  EXPECT_TRUE(network.ok());
  return std::move(*network);
}

TEST(NetworkTest, RejectsEmptyOverlay) {
  EXPECT_FALSE(SimulatedNetwork::Make(graph::Graph{}, {}, NetworkParams{}, 1)
                   .ok());
}

TEST(NetworkTest, RejectsMismatchedDatabases) {
  std::vector<data::LocalDatabase> dbs(3);
  EXPECT_FALSE(
      SimulatedNetwork::Make(MakePath(5), std::move(dbs), NetworkParams{}, 1)
          .ok());
}

TEST(NetworkTest, RejectsBadLatencyParams) {
  NetworkParams params;
  params.hop_latency_ms = -1.0;
  EXPECT_FALSE(SimulatedNetwork::Make(MakePath(3), {}, params, 1).ok());
}

TEST(NetworkTest, PeersHaveDistinctAddresses) {
  SimulatedNetwork network = MakePathNetwork(10);
  EXPECT_NE(network.peer(0).address(), network.peer(1).address());
  EXPECT_EQ(network.peer(3).id(), 3u);
}

TEST(NetworkTest, AliveBookkeeping) {
  SimulatedNetwork network = MakePathNetwork(5);
  EXPECT_EQ(network.num_alive(), 5u);
  network.SetAlive(2, false);
  EXPECT_EQ(network.num_alive(), 4u);
  EXPECT_FALSE(network.IsAlive(2));
  network.SetAlive(2, false);  // Idempotent.
  EXPECT_EQ(network.num_alive(), 4u);
  network.SetAlive(2, true);
  EXPECT_EQ(network.num_alive(), 5u);
}

TEST(NetworkTest, AliveNeighborsSkipDeparted) {
  SimulatedNetwork network = MakePathNetwork(5);
  network.SetAlive(1, false);
  auto nbrs = network.AliveNeighbors(2);
  ASSERT_EQ(nbrs.size(), 1u);
  EXPECT_EQ(nbrs[0], 3u);
  EXPECT_EQ(network.AliveDegree(2), 1u);
  EXPECT_EQ(network.AliveDegree(0), 0u);
}

TEST(MessageTest, BatchedPayloadSharesExactlyOneHeader) {
  // A K-wide batch carries K payload bodies behind ONE Gnutella header:
  // batched == K * per_query - (K - 1) * header.
  for (MessageType type : {MessageType::kWalker, MessageType::kAggregateReply,
                           MessageType::kQuery}) {
    uint32_t per_query = DefaultPayloadBytes(type);
    EXPECT_EQ(BatchedPayloadBytes(type, 0), per_query);
    EXPECT_EQ(BatchedPayloadBytes(type, 1), per_query);
    for (uint32_t k : {2u, 4u, 8u}) {
      EXPECT_EQ(BatchedPayloadBytes(type, k),
                k * per_query - (k - 1) * kGnutellaHeaderBytes)
          << "type=" << static_cast<int>(type) << " k=" << k;
    }
  }
}

TEST(CostTrackerTest, BatchedMessageCountsOnceOnTheWire) {
  CostTracker cost;
  uint32_t per_query = DefaultPayloadBytes(MessageType::kWalker);
  cost.RecordBatchedMessage(BatchedPayloadBytes(MessageType::kWalker, 8),
                            per_query, 8, kGnutellaHeaderBytes);
  EXPECT_EQ(cost.snapshot().messages, 1u);
  EXPECT_EQ(cost.snapshot().bytes_shipped,
            BatchedPayloadBytes(MessageType::kWalker, 8));
}

TEST(CostTrackerDeathTest, DoubleCountedHeaderAborts) {
  CostTracker cost;
  uint32_t per_query = DefaultPayloadBytes(MessageType::kWalker);
  // Naive K * per_query double-counts K-1 headers; the tracker refuses it.
  EXPECT_DEATH(cost.RecordBatchedMessage(uint64_t{8} * per_query, per_query,
                                         8, kGnutellaHeaderBytes),
               "one shared header");
}

TEST(NetworkTest, BatchedWalkerHopChargesSharedHeader) {
  SimulatedNetwork network = MakePathNetwork(5);
  CostSnapshot before = network.cost_snapshot();
  ASSERT_TRUE(network.SendAlongEdge(MessageType::kWalker, 0, 1, /*batch=*/4)
                  .ok());
  CostSnapshot delta = CostDelta(network.cost_snapshot(), before);
  EXPECT_EQ(delta.messages, 1u);  // One token on the wire, K queries served.
  EXPECT_EQ(delta.bytes_shipped, BatchedPayloadBytes(MessageType::kWalker, 4));
  EXPECT_EQ(delta.walker_hops, 1u);
}

TEST(NetworkTest, BatchedReplyMultipliesPerQueryRiders) {
  SimulatedNetwork network = MakePathNetwork(5);
  constexpr uint64_t kRider = 16;  // Per-query extra payload bytes.
  CostSnapshot before = network.cost_snapshot();
  ASSERT_TRUE(network
                  .SendDirect(MessageType::kAggregateReply, 2, 0, kRider,
                              /*batch=*/3)
                  .ok());
  CostSnapshot delta = CostDelta(network.cost_snapshot(), before);
  EXPECT_EQ(delta.messages, 1u);
  EXPECT_EQ(delta.bytes_shipped,
            BatchedPayloadBytes(MessageType::kAggregateReply, 3) + 3 * kRider);
}

TEST(NetworkTest, SendAlongEdgeValidation) {
  SimulatedNetwork network = MakePathNetwork(5);
  EXPECT_TRUE(network.SendAlongEdge(MessageType::kWalker, 0, 1).ok());
  EXPECT_FALSE(network.SendAlongEdge(MessageType::kWalker, 0, 2).ok());
  EXPECT_FALSE(network.SendAlongEdge(MessageType::kWalker, 0, 99).ok());
  network.SetAlive(1, false);
  auto status = network.SendAlongEdge(MessageType::kWalker, 0, 1);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
}

TEST(NetworkTest, CostAccountingAccumulates) {
  SimulatedNetwork network = MakePathNetwork(5);
  network.SendAlongEdge(MessageType::kWalker, 0, 1).ok();
  network.SendAlongEdge(MessageType::kWalker, 1, 2).ok();
  network.SendDirect(MessageType::kAggregateReply, 2, 0).ok();
  network.RecordLocalExecution(2, 100, 25);
  const CostSnapshot& cost = network.cost_snapshot();
  EXPECT_EQ(cost.walker_hops, 2u);
  EXPECT_EQ(cost.messages, 3u);
  EXPECT_EQ(cost.peers_visited, 1u);
  EXPECT_EQ(cost.tuples_scanned, 100u);
  EXPECT_EQ(cost.tuples_sampled, 25u);
  EXPECT_GT(cost.bytes_shipped, 0u);
  EXPECT_GT(cost.latency_ms, 0.0);
  network.ResetCost();
  EXPECT_EQ(network.cost_snapshot().messages, 0u);
}

TEST(NetworkTest, CostDeltaSubtracts) {
  CostSnapshot before;
  before.messages = 5;
  before.latency_ms = 10.0;
  CostSnapshot after;
  after.messages = 9;
  after.latency_ms = 25.0;
  CostSnapshot delta = CostDelta(after, before);
  EXPECT_EQ(delta.messages, 4u);
  EXPECT_DOUBLE_EQ(delta.latency_ms, 15.0);
}

TEST(NetworkTest, ExactOracleAggregates) {
  std::vector<data::LocalDatabase> dbs;
  dbs.emplace_back(data::Table{{1}, {2}});
  dbs.emplace_back(data::Table{{3}});
  dbs.emplace_back(data::Table{{4}, {5}});
  auto network =
      SimulatedNetwork::Make(MakePath(3), std::move(dbs), NetworkParams{}, 2);
  ASSERT_TRUE(network.ok());
  EXPECT_EQ(network->TotalTuples(), 5);
  EXPECT_EQ(network->ExactCount(2, 4), 3);
  EXPECT_EQ(network->ExactSum(2, 4), 9);
  EXPECT_DOUBLE_EQ(network->ExactMedian(), 3.0);
  // Departed peers drop out of the oracle view.
  network->SetAlive(2, false);
  EXPECT_EQ(network->TotalTuples(), 3);
  EXPECT_EQ(network->ExactCount(2, 4), 2);
}

TEST(NetworkTest, InstallDatabasesReplacesData) {
  SimulatedNetwork network = MakePathNetwork(3);
  EXPECT_EQ(network.TotalTuples(), 0);
  std::vector<data::LocalDatabase> dbs(3);
  dbs[1] = data::LocalDatabase(data::Table{{10}, {20}});
  EXPECT_TRUE(network.InstallDatabases(std::move(dbs)).ok());
  EXPECT_EQ(network.TotalTuples(), 2);
  EXPECT_FALSE(network.InstallDatabases({}).ok());
}

TEST(MessageTest, TypeNamesAndSizes) {
  EXPECT_STREQ(MessageTypeToString(MessageType::kWalker), "WALKER");
  EXPECT_STREQ(MessageTypeToString(MessageType::kPong), "PONG");
  // Every type carries at least the Gnutella header.
  for (auto type : {MessageType::kPing, MessageType::kPong,
                    MessageType::kQuery, MessageType::kQueryHit,
                    MessageType::kWalker, MessageType::kAggregateReply,
                    MessageType::kSampleRequest, MessageType::kSampleReply}) {
    EXPECT_GE(DefaultPayloadBytes(type), 23u);
  }
}

TEST(ProtocolTest, PingReachesTtlNeighborhood) {
  SimulatedNetwork network = MakePathNetwork(10);
  GnutellaProtocol protocol(&network);
  FloodResult result = protocol.Ping(5, 2);
  // Path graph: within 2 hops of node 5 live nodes 3,4,6,7.
  EXPECT_EQ(result.reached.size(), 4u);
  EXPECT_EQ(result.max_depth, 2u);
}

TEST(ProtocolTest, FloodQueryChargesMessages) {
  SimulatedNetwork network = MakePathNetwork(10);
  GnutellaProtocol protocol(&network);
  uint64_t before = network.cost_snapshot().messages;
  protocol.FloodQuery(0, 3);
  EXPECT_GT(network.cost_snapshot().messages, before + 3);
}

TEST(ProtocolTest, FloodCollectGathersRequestedPeers) {
  SimulatedNetwork network = MakePathNetwork(20);
  GnutellaProtocol protocol(&network);
  auto reached = protocol.FloodCollect(10, 6);
  EXPECT_EQ(reached.size(), 6u);
  // Nearest-first: all within 3 hops of the origin.
  for (graph::NodeId peer : reached) {
    EXPECT_LE(std::abs(static_cast<int>(peer) - 10), 3);
  }
}

TEST(ProtocolTest, FloodRepliesRecordPerHopHistory) {
  SimulatedNetwork network = MakePathNetwork(8);
  HistoryRecorder history;
  network.set_history(&history);
  GnutellaProtocol protocol(&network);
  FloodResult result = protocol.FloodQuery(0, 3);
  network.set_history(nullptr);
  ASSERT_EQ(result.reached.size(), 3u);
  // Path graph from node 0: peer at depth d sends its QueryHit through d
  // reverse hops, every one a first-class history event in lockstep with
  // the ledger (3 requests + 1+2+3 reply hops).
  EXPECT_EQ(history.Count(HistoryEventKind::kSend),
            network.cost_snapshot().messages);
  EXPECT_EQ(history.Count(HistoryEventKind::kDeliver),
            network.cost_snapshot().messages_delivered);
  EXPECT_EQ(history.Count(HistoryEventKind::kSend), 9u);
  // Reverse hops carry real per-hop endpoints: node 2 forwards node 3's
  // hit, so a QueryHit send from an intermediate relay must appear.
  bool forwarded_hit = false;
  for (const HistoryEvent& e : history.events()) {
    if (e.kind == HistoryEventKind::kSend &&
        e.type == MessageType::kQueryHit && e.from == 2 && e.to == 1) {
      forwarded_hit = true;
    }
  }
  EXPECT_TRUE(forwarded_hit);
  auto violations = verify::CheckHistory(history.events());
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ProtocolTest, FloodReplyDiesSilentlyAtCrashedRelay) {
  SimulatedNetwork network = MakePathNetwork(8);
  HistoryRecorder history;
  network.set_history(&history);
  GnutellaProtocol protocol(&network);
  // Crash relay 3 when the injector sees the fifth request hop (4 -> 5):
  // by then 3 already answered, but every deeper reply must route through
  // its corpse.
  FaultPlan plan;
  plan.scheduled_crashes = {ScheduledCrash{/*at_message=*/4, /*peer=*/3}};
  network.InstallFaultPlan(plan, 99);
  FloodResult result = protocol.FloodQuery(0, 7);
  network.set_history(nullptr);
  // Peers behind the dead relay answered but their hits never reached the
  // origin, so they are not reported reached.
  EXPECT_EQ(result.reached, (std::vector<graph::NodeId>{1, 2, 3, 4}));
  // No send may involve the dead peer after its crash, and the ledger must
  // still conserve: the lost replies were never charged.
  auto violations = verify::CheckHistory(history.events());
  EXPECT_TRUE(violations.empty()) << violations.front();
  const CostSnapshot& cost = network.cost_snapshot();
  EXPECT_EQ(cost.messages, cost.messages_delivered + cost.messages_dropped);
  EXPECT_EQ(history.Count(HistoryEventKind::kSend), cost.messages);
}

TEST(ProtocolTest, FloodSkipsDeadRegions) {
  SimulatedNetwork network = MakePathNetwork(10);
  network.SetAlive(3, false);
  GnutellaProtocol protocol(&network);
  FloodResult result = protocol.Ping(5, 5);
  for (graph::NodeId peer : result.reached) {
    EXPECT_GT(peer, 3u);  // Dead node 3 blocks everything to its left.
  }
}

TEST(ChurnTest, StepTogglesStates) {
  SimulatedNetwork network = MakePathNetwork(200, 3);
  ChurnParams params;
  params.leave_probability = 0.5;
  params.rejoin_probability = 0.0;
  params.pinned = {0};
  ChurnModel churn(params, 7);
  size_t changes = churn.Step(network);
  EXPECT_GT(changes, 50u);
  EXPECT_TRUE(network.IsAlive(0));  // Pinned sink survives.
  EXPECT_LT(network.num_alive(), 200u);
}

TEST(ChurnTest, RejoinRecovers) {
  SimulatedNetwork network = MakePathNetwork(100, 4);
  for (graph::NodeId v = 0; v < 100; ++v) network.SetAlive(v, false);
  ChurnParams params;
  params.leave_probability = 0.0;
  params.rejoin_probability = 1.0;
  ChurnModel churn(params, 9);
  churn.Step(network);
  EXPECT_EQ(network.num_alive(), 100u);
}

TEST(ChurnTest, NumAliveMatchesManualCount) {
  SimulatedNetwork network = MakePathNetwork(150, 5);
  ChurnParams params;
  params.leave_probability = 0.3;
  params.rejoin_probability = 0.3;
  params.pinned = {0, 75};
  ChurnModel churn(params, 11);
  for (int epoch = 0; epoch < 10; ++epoch) {
    churn.Step(network);
    size_t manual = 0;
    for (graph::NodeId v = 0; v < 150; ++v) {
      if (network.IsAlive(v)) ++manual;
    }
    ASSERT_EQ(network.num_alive(), manual) << "epoch " << epoch;
    EXPECT_TRUE(network.IsAlive(0));
    EXPECT_TRUE(network.IsAlive(75));
  }
}

TEST(ChurnTest, RunOnEventQueueTicksWhileWorkIsPending) {
  SimulatedNetwork network = MakePathNetwork(100, 6);
  ChurnParams params;
  params.leave_probability = 0.1;
  params.rejoin_probability = 0.0;
  params.pinned = {0};
  ChurnModel churn(params, 13);
  EventQueue events;
  // Simulated "query": pending work for 100ms of virtual time.
  double deadline_ms = 100.0;
  bool work_done = false;
  events.ScheduleAfter(deadline_ms, [&work_done]() { work_done = true; });
  int epochs_seen = 0;
  churn.RunOnEventQueue(events, &network, /*interval_ms=*/10.0,
                        [&work_done, &epochs_seen]() {
                          if (work_done) return false;
                          ++epochs_seen;
                          return true;
                        });
  events.RunUntilEmpty();
  // One tick every 10ms until the 100ms deadline, then the chain stops and
  // the queue drains (RunUntilEmpty returned, proving termination).
  EXPECT_GE(epochs_seen, 9);
  EXPECT_LE(epochs_seen, 11);
  EXPECT_TRUE(work_done);
  EXPECT_LT(network.num_alive(), 100u);
  EXPECT_TRUE(network.IsAlive(0));
}

}  // namespace
}  // namespace p2paqp::net

// Statistical validation of the Horvitz-Thompson estimator against the
// paper's Theorems 1 (unbiasedness) and 2 (variance = C/m).
//
// The statistical assertions route through the sigma-threshold verdicts in
// src/verify (5.5-sigma significance, see src/verify/thresholds.h) instead
// of hand-tuned EXPECT_NEAR tolerances, and test against *exact* closed
// forms of the synthetic population rather than a second noisy measurement.
#include "core/estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_common.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

TEST(HorvitzThompsonTest, ExactWhenSamplingWholePopulationOnce) {
  // Population of 4 "peers" with weights equal to their degrees; sampling
  // each exactly once with the right weight reproduces y exactly when
  // values are proportional to weights.
  std::vector<WeightedObservation> obs = {
      {2.0, 2.0}, {3.0, 3.0}, {1.0, 1.0}, {4.0, 4.0}};
  double total_weight = 10.0;
  // Each term: value/ (w/W) = value*W/w = W when value == w. Mean = W = 10
  // = sum of values.
  EXPECT_DOUBLE_EQ(HorvitzThompson(obs, total_weight), 10.0);
}

TEST(HorvitzThompsonTest, SingleObservationScalesInverseProbability) {
  std::vector<WeightedObservation> obs = {{5.0, 2.0}};
  EXPECT_DOUBLE_EQ(HorvitzThompson(obs, 20.0), 50.0);
}

TEST(HorvitzThompsonTest, ZeroWeightObservationsContributeZero) {
  std::vector<WeightedObservation> obs = {{5.0, 0.0}, {5.0, 5.0}};
  EXPECT_DOUBLE_EQ(HorvitzThompson(obs, 10.0), 5.0);
}

// Theorem 1: E[y''] = y over the randomness of degree-proportional sampling.
TEST(HorvitzThompsonTest, UnbiasedUnderDegreeProportionalSampling) {
  // Synthetic population: 50 peers, value y(p) and weight deg(p) arbitrary.
  util::Rng rng(1);
  std::vector<double> values(50);
  std::vector<double> weights(50);
  double truth = 0.0;
  double total_weight = 0.0;
  for (int p = 0; p < 50; ++p) {
    values[p] = rng.UniformDouble(0.0, 100.0);
    weights[p] = static_cast<double>(rng.UniformInt(1, 20));
    truth += values[p];
    total_weight += weights[p];
  }
  // Empirical mean of y'' over many independent m=10 samples, z-tested
  // against the exact truth at the harness' 5.5-sigma threshold.
  util::RunningStat stat;
  const int kTrials = 20000;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<WeightedObservation> obs;
    for (int i = 0; i < 10; ++i) {
      size_t p = rng.WeightedIndex(weights);
      obs.push_back({values[p], weights[p]});
    }
    stat.Add(HorvitzThompson(obs, total_weight));
  }
  EXPECT_STAT_PASS(verify::MeanZTest(stat, truth, verify::DefaultAlpha()));
}

// Theorem 2: Var[y''] = C/m — the log-log slope of variance against m is -1
// (verified by the sigma-thresholded slope fit instead of a two-point ratio
// with a hand-tuned tolerance).
TEST(HorvitzThompsonTest, VarianceScalesInverselyWithSampleSize) {
  util::Rng rng(2);
  std::vector<double> values(40);
  std::vector<double> weights(40);
  for (int p = 0; p < 40; ++p) {
    values[p] = rng.UniformDouble(0.0, 50.0);
    weights[p] = static_cast<double>(rng.UniformInt(1, 10));
  }
  double total_weight = 0.0;
  for (double w : weights) total_weight += w;
  const int kTrials = 12000;
  auto empirical_variance = [&](size_t m) {
    util::RunningStat stat;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<WeightedObservation> obs;
      for (size_t i = 0; i < m; ++i) {
        size_t p = rng.WeightedIndex(weights);
        obs.push_back({values[p], weights[p]});
      }
      stat.Add(HorvitzThompson(obs, total_weight));
    }
    return stat.variance();
  };
  std::vector<double> sample_sizes = {8, 16, 32, 64};
  std::vector<double> variances;
  for (double m : sample_sizes) {
    variances.push_back(empirical_variance(static_cast<size_t>(m)));
  }
  EXPECT_STAT_PASS(verify::InverseVarianceSlopeTest(
      sample_sizes, variances, kTrials, verify::DefaultAlpha()));
}

// The estimator's internal variance estimate is unbiased for the *exact*
// Theorem 2 constant C/m = (sum_s y_s^2 W / w_s - Y^2) / m — z-tested
// against the closed form instead of a second noisy empirical variance.
TEST(HorvitzThompsonTest, VarianceEstimateMatchesExactTheorem2Constant) {
  util::Rng rng(3);
  std::vector<double> values(30);
  std::vector<double> weights(30);
  for (int p = 0; p < 30; ++p) {
    values[p] = rng.UniformDouble(0.0, 10.0);
    weights[p] = static_cast<double>(rng.UniformInt(1, 6));
  }
  double total_weight = 0.0;
  double truth = 0.0;
  for (double w : weights) total_weight += w;
  for (double v : values) truth += v;
  double exact_c = 0.0;
  for (int p = 0; p < 30; ++p) {
    exact_c += values[p] * values[p] * total_weight / weights[p];
  }
  exact_c -= truth * truth;
  const size_t kM = 25;
  util::RunningStat estimated;
  for (int trial = 0; trial < 8000; ++trial) {
    std::vector<WeightedObservation> obs;
    for (size_t i = 0; i < kM; ++i) {
      size_t p = rng.WeightedIndex(weights);
      obs.push_back({values[p], weights[p]});
    }
    estimated.Add(HorvitzThompsonVariance(obs, total_weight));
  }
  EXPECT_STAT_PASS(verify::MeanZTest(
      estimated, exact_c / static_cast<double>(kM), verify::DefaultAlpha()));
}

TEST(HorvitzThompsonTest, BadnessCIsVarianceTimesM) {
  std::vector<WeightedObservation> obs = {
      {1.0, 1.0}, {2.0, 1.0}, {3.0, 1.0}, {10.0, 1.0}};
  double var = HorvitzThompsonVariance(obs, 4.0);
  EXPECT_DOUBLE_EQ(EstimateBadnessC(obs, 4.0), 4.0 * var);
}

TEST(HorvitzThompsonTest, FewerThanTwoObservationsHaveZeroVariance) {
  std::vector<WeightedObservation> obs = {{5.0, 1.0}};
  EXPECT_DOUBLE_EQ(HorvitzThompsonVariance(obs, 2.0), 0.0);
}

}  // namespace
}  // namespace p2paqp::core

// Tests for the discrete-event scheduler and the event-driven query session.
#include "core/async_engine.h"

#include <gtest/gtest.h>

#include "net/fault.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

TEST(EventQueueTest, RunsInTimeOrder) {
  net::EventQueue events;
  std::vector<int> order;
  events.ScheduleAt(30.0, [&] { order.push_back(3); });
  events.ScheduleAt(10.0, [&] { order.push_back(1); });
  events.ScheduleAt(20.0, [&] { order.push_back(2); });
  events.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(events.now(), 30.0);
  EXPECT_EQ(events.executed(), 3u);
}

TEST(EventQueueTest, SimultaneousEventsAreFifo) {
  net::EventQueue events;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    events.ScheduleAt(7.0, [&order, i] { order.push_back(i); });
  }
  events.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  net::EventQueue events;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 10) events.ScheduleAfter(5.0, chain);
  };
  events.ScheduleAfter(5.0, chain);
  events.RunUntilEmpty();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(events.now(), 50.0);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  net::EventQueue events;
  double observed = -1.0;
  events.ScheduleAt(100.0, [&] {
    events.ScheduleAfter(2.5, [&] { observed = events.now(); });
  });
  events.RunUntilEmpty();
  EXPECT_DOUBLE_EQ(observed, 102.5);
}

TEST(EventQueueDeathTest, RefusesToScheduleInThePast) {
  net::EventQueue events;
  events.ScheduleAt(10.0, [] {});
  events.RunUntilEmpty();
  EXPECT_DEATH(events.ScheduleAt(5.0, [] {}), "CHECK failed");
}

class AsyncSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tn_ = std::make_unique<TestNetwork>(MakeTestNetwork(TestNetworkParams{}));
  }

  core::AsyncParams MakeParams(size_t walkers) {
    core::AsyncParams params;
    params.engine.phase1_peers = 60;
    params.engine.include_phase1_observations = true;  // Combined estimate.
    params.walkers = walkers;
    params.walk.jump = tn_->catalog.suggested_jump;
    params.walk.burn_in = tn_->catalog.suggested_burn_in;
    return params;
  }

  query::AggregateQuery CountQuery() {
    query::AggregateQuery q;
    q.op = query::AggregateOp::kCount;
    q.predicate = {1, 30};
    q.required_error = 0.1;
    return q;
  }

  std::unique_ptr<TestNetwork> tn_;
};

TEST_F(AsyncSessionTest, MatchesSynchronousAccuracy) {
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, MakeParams(4));
  util::Rng rng(1);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  double err = p2paqp::testing::NormalizedCountError(
      tn_->network, report->answer.estimate, 1, 30);
  EXPECT_LT(err, 0.12);
  EXPECT_EQ(report->answer.phase1_peers, 60u);
  EXPECT_GT(report->events, 0u);
}

TEST_F(AsyncSessionTest, MakespanShrinksWithWalkers) {
  util::Rng rng_a(2);
  util::Rng rng_b(2);
  core::AsyncQuerySession one(&tn_->network, tn_->catalog, MakeParams(1));
  core::AsyncQuerySession eight(&tn_->network, tn_->catalog, MakeParams(8));
  auto slow = one.Execute(CountQuery(), 0, rng_a);
  auto fast = eight.Execute(CountQuery(), 0, rng_b);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_LT(fast->makespan_ms, slow->makespan_ms / 3.0);
  // Same statistical work: peer visits are of the same order.
  EXPECT_NEAR(static_cast<double>(fast->answer.cost.peers_visited),
              static_cast<double>(slow->answer.cost.peers_visited),
              0.5 * static_cast<double>(slow->answer.cost.peers_visited));
}

TEST_F(AsyncSessionTest, PhaseOneCompletesBeforeQueryEnds) {
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, MakeParams(4));
  util::Rng rng(3);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->phase1_done_ms, 0.0);
  EXPECT_GT(report->makespan_ms, report->phase1_done_ms);
  EXPECT_DOUBLE_EQ(report->answer.cost.latency_ms, report->makespan_ms);
}

TEST_F(AsyncSessionTest, MakespanIsFarBelowSequentialSum) {
  // The sequential engine's latency is the sum of every hop and scan; the
  // event-driven makespan with 8 walkers must be a small fraction of it.
  core::EngineParams engine_params;
  engine_params.phase1_peers = 60;
  core::TwoPhaseEngine sync_engine(&tn_->network, tn_->catalog,
                                   engine_params);
  util::Rng rng_a(4);
  auto sync_answer = sync_engine.Execute(CountQuery(), 0, rng_a);
  ASSERT_TRUE(sync_answer.ok());

  core::AsyncQuerySession session(&tn_->network, tn_->catalog, MakeParams(8));
  util::Rng rng_b(4);
  auto report = session.Execute(CountQuery(), 0, rng_b);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->makespan_ms, sync_answer->cost.latency_ms / 2.0);
}

TEST_F(AsyncSessionTest, RejectsUnsupportedOps) {
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, MakeParams(2));
  util::Rng rng(5);
  query::AggregateQuery q = CountQuery();
  q.op = query::AggregateOp::kMedian;
  EXPECT_FALSE(session.Execute(q, 0, rng).ok());
}

TEST_F(AsyncSessionTest, RejectsDeadSink) {
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, MakeParams(2));
  tn_->network.SetAlive(0, false);
  util::Rng rng(6);
  EXPECT_FALSE(session.Execute(CountQuery(), 0, rng).ok());
}

TEST_F(AsyncSessionTest, FullQuorumPassesFaultFree) {
  // Boundary from the passing side: a 100% observation quorum on a
  // fault-free network means delivered == requested exactly at the quorum.
  core::AsyncParams params = MakeParams(4);
  params.engine.min_observation_quorum = 1.0;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng(8);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->answer.degraded);
  EXPECT_EQ(report->answer.observations_lost, 0u);
}

TEST_F(AsyncSessionTest, FullQuorumFailsUnderAnyLoss) {
  // With a 50% drop rate, no retransmits and a 100% quorum, some reply is
  // lost (seeded, hence reproducible) and the session must hard-fail
  // instead of degrading.
  net::FaultPlan plan;
  plan.drop_probability = 0.5;
  tn_->network.InstallFaultPlan(plan, 99);
  core::AsyncParams params = MakeParams(4);
  params.engine.min_observation_quorum = 1.0;
  params.engine.reply_retransmits = 0;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng(9);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kUnavailable);
}

TEST_F(AsyncSessionTest, FailsBelowDefaultQuorumUnderHeavyLoss) {
  // 95% loss leaves ~5% of replies: far below the default 25% quorum.
  net::FaultPlan plan;
  plan.drop_probability = 0.95;
  tn_->network.InstallFaultPlan(plan, 100);
  core::AsyncParams params = MakeParams(4);
  params.engine.reply_retransmits = 0;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng(10);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), util::StatusCode::kUnavailable);
}

TEST_F(AsyncSessionTest, DeadlineExactlyAtMakespanChangesNothing) {
  // Probe on a twin network: the transport's latency stream is stateful, so
  // the deadline run needs a fresh-but-identical world to replay against.
  core::AsyncParams params = MakeParams(4);
  TestNetwork twin = MakeTestNetwork(TestNetworkParams{});
  core::AsyncQuerySession probe(&twin.network, twin.catalog, params);
  util::Rng rng_a(21);
  auto baseline = probe.Execute(CountQuery(), 0, rng_a);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // A reply arriving exactly at the deadline is still taken, so a deadline
  // equal to the free-running makespan curtails nothing: same estimate, no
  // anytime degradation, bit-identical clock.
  params.engine.deadline_ms = baseline->makespan_ms;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng_b(21);
  auto report = session.Execute(CountQuery(), 0, rng_b);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->answer.deadline_hit);
  EXPECT_FALSE(report->answer.degraded);
  EXPECT_EQ(report->answer.estimate, baseline->answer.estimate);
  EXPECT_EQ(report->makespan_ms, baseline->makespan_ms);
  EXPECT_EQ(report->events, baseline->events);
}

TEST_F(AsyncSessionTest, TightDeadlineProducesAnytimeAnswer) {
  core::AsyncParams params = MakeParams(4);
  TestNetwork twin = MakeTestNetwork(TestNetworkParams{});
  core::AsyncQuerySession probe(&twin.network, twin.catalog, params);
  util::Rng rng_a(22);
  auto full = probe.Execute(CountQuery(), 0, rng_a);
  ASSERT_TRUE(full.ok());

  // A third of the free-running makespan: collection cannot finish, so the
  // session must answer *at* the deadline from whatever arrived, widening
  // the CI instead of failing the quorum.
  params.engine.deadline_ms = full->makespan_ms / 3.0;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng_b(22);
  auto report = session.Execute(CountQuery(), 0, rng_b);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->answer.deadline_hit);
  EXPECT_TRUE(report->answer.degraded);
  EXPECT_GT(report->answer.observations_lost, 0u);
  EXPECT_GT(report->answer.achieved_error, 0.0);
  EXPECT_DOUBLE_EQ(report->makespan_ms, params.engine.deadline_ms);
  EXPECT_DOUBLE_EQ(report->answer.cost.latency_ms, report->makespan_ms);
}

TEST_F(AsyncSessionTest, DeadlineBeforeFirstReplyAnswersWithNothing) {
  // 1ms is shorter than a single hop: the deadline fires before burn-in
  // completes, no observation ever reaches the sink, and the contract is a
  // maximally degraded anytime answer — never an error.
  core::AsyncParams params = MakeParams(4);
  params.engine.deadline_ms = 1.0;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng(23);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->answer.deadline_hit);
  EXPECT_TRUE(report->answer.degraded);
  EXPECT_EQ(report->answer.estimate, 0.0);
  // Everything phase I requested counts as lost; phase II never launches.
  EXPECT_EQ(report->answer.observations_lost, params.engine.phase1_peers);
  EXPECT_EQ(report->answer.phase2_peers, 0u);
  EXPECT_DOUBLE_EQ(report->answer.achieved_error, 1.0);
  EXPECT_DOUBLE_EQ(report->makespan_ms, 1.0);
}

TEST_F(AsyncSessionTest, StragglerPolicyKeepsClockAndArenaHonest) {
  net::FaultPlan plan;
  plan.tail = net::LatencyTail::kPareto;
  plan.tail_scale_ms = 10.0;
  plan.tail_alpha = 1.1;
  plan.slow_fraction = 0.1;
  plan.slow_factor = 20.0;
  plan.crash_immune = {0};
  tn_->network.InstallFaultPlan(plan, 77);
  core::AsyncParams params = MakeParams(4);
  params.engine.straggler.walk_not_wait = true;
  params.engine.straggler.health_tracking = true;
  params.engine.straggler.hedged_replies = true;
  params.engine.straggler.exponential_backoff = true;
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, params);
  util::Rng rng(24);
  auto report = session.Execute(CountQuery(), 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // The resilience layer actually engaged under this tail regime...
  EXPECT_GT(report->answer.hedges_sent + report->answer.stragglers_skipped,
            0u);
  // ...and a hedge's losing copy drains after the answer is ready: it
  // balances the reply arena without ever inflating the measured makespan.
  EXPECT_DOUBLE_EQ(report->answer.cost.latency_ms, report->makespan_ms);
  const net::ArenaStats& arena = session.reply_arena_stats();
  EXPECT_GT(arena.acquired, 0u);
  EXPECT_EQ(arena.live, 0u);
  EXPECT_EQ(arena.acquired, arena.released);
}

TEST_F(AsyncSessionTest, SumQueriesWork) {
  core::AsyncQuerySession session(&tn_->network, tn_->catalog, MakeParams(4));
  util::Rng rng(7);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kSum;
  q.predicate = query::RangePredicate{1, 100};
  q.required_error = 0.1;
  auto report = session.Execute(q, 0, rng);
  ASSERT_TRUE(report.ok());
  double err = p2paqp::testing::NormalizedSumError(
      tn_->network, report->answer.estimate, 1, 100);
  EXPECT_LT(err, 0.12);
}

}  // namespace
}  // namespace p2paqp

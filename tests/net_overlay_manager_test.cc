#include "net/overlay_manager.h"

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/builder.h"
#include "net/history.h"
#include "topology/power_law.h"
#include "verify/protocol/history_checker.h"

namespace p2paqp::net {
namespace {

graph::Graph MakeTriangle() {
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  return builder.Build();
}

TEST(OverlayManagerTest, SeedsFromGraph) {
  OverlayManager overlay(MakeTriangle());
  EXPECT_EQ(overlay.num_nodes(), 3u);
  EXPECT_EQ(overlay.num_active(), 3u);
  EXPECT_EQ(overlay.num_edges(), 3u);
  EXPECT_EQ(overlay.Degree(0), 2u);
  EXPECT_TRUE(overlay.IsActive(2));
  EXPECT_TRUE(overlay.ActiveIsConnected());
}

TEST(OverlayManagerTest, JoinAttachesRequestedConnections) {
  OverlayManager overlay(MakeTriangle());
  util::Rng rng(1);
  auto id = overlay.Join(2, rng);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 3u);
  EXPECT_EQ(overlay.Degree(*id), 2u);
  EXPECT_EQ(overlay.num_active(), 4u);
  EXPECT_EQ(overlay.num_edges(), 5u);
  EXPECT_TRUE(overlay.ActiveIsConnected());
}

TEST(OverlayManagerTest, JoinClampsToAvailablePeers) {
  OverlayManager overlay(MakeTriangle());
  util::Rng rng(2);
  auto id = overlay.Join(50, rng);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(overlay.Degree(*id), 3u);  // Only 3 existing peers.
}

TEST(OverlayManagerTest, LeaveDetachesEdges) {
  OverlayManager overlay(MakeTriangle());
  overlay.Leave(1);
  EXPECT_FALSE(overlay.IsActive(1));
  EXPECT_EQ(overlay.num_active(), 2u);
  EXPECT_EQ(overlay.num_edges(), 1u);  // Only 0-2 remains.
  EXPECT_EQ(overlay.Degree(1), 0u);
  EXPECT_EQ(overlay.Degree(0), 1u);
  overlay.Leave(1);  // Idempotent.
  EXPECT_EQ(overlay.num_active(), 2u);
}

TEST(OverlayManagerTest, RejoinBootstrapsFreshConnections) {
  OverlayManager overlay(MakeTriangle());
  overlay.Leave(1);
  util::Rng rng(3);
  EXPECT_FALSE(overlay.Rejoin(0, 2, rng).ok());  // Already active.
  ASSERT_TRUE(overlay.Rejoin(1, 2, rng).ok());
  EXPECT_TRUE(overlay.IsActive(1));
  EXPECT_EQ(overlay.Degree(1), 2u);
  EXPECT_TRUE(overlay.ActiveIsConnected());
}

TEST(OverlayManagerTest, EdgeEditsRespectActivation) {
  OverlayManager overlay(MakeTriangle());
  overlay.Leave(2);
  EXPECT_FALSE(overlay.AddEdge(0, 2));  // Dead endpoint.
  EXPECT_FALSE(overlay.AddEdge(0, 1));  // Duplicate.
  EXPECT_TRUE(overlay.RemoveEdge(0, 1));
  EXPECT_FALSE(overlay.RemoveEdge(0, 1));
  EXPECT_EQ(overlay.num_edges(), 0u);
}

TEST(OverlayManagerTest, SnapshotMatchesState) {
  OverlayManager overlay(MakeTriangle());
  util::Rng rng(4);
  overlay.Join(2, rng).ok();
  overlay.Leave(0);
  graph::Graph snapshot = overlay.Snapshot();
  EXPECT_EQ(snapshot.num_nodes(), overlay.num_nodes());
  EXPECT_EQ(snapshot.num_edges(), overlay.num_edges());
  EXPECT_EQ(snapshot.degree(0), 0u);  // Departed node is isolated.
}

TEST(OverlayManagerTest, GrowthPreservesHeavyTail) {
  // Degree-biased bootstrap should keep the overlay power-law-ish as it
  // doubles in size.
  util::Rng rng(5);
  auto seed = topology::MakeBarabasiAlbert(500, 3, rng);
  ASSERT_TRUE(seed.ok());
  OverlayManager overlay(*seed);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(overlay.Join(3, rng).ok());
  }
  graph::Graph grown = overlay.Snapshot();
  EXPECT_EQ(grown.num_nodes(), 1000u);
  EXPECT_GT(grown.max_degree(), 5 * grown.average_degree());
  EXPECT_TRUE(overlay.ActiveIsConnected());
}

TEST(OverlayManagerTest, SustainedChurnKeepsOverlayUsable) {
  util::Rng rng(6);
  auto seed = topology::MakeBarabasiAlbert(300, 4, rng);
  ASSERT_TRUE(seed.ok());
  OverlayManager overlay(*seed);
  for (int round = 0; round < 200; ++round) {
    auto victim =
        static_cast<graph::NodeId>(rng.UniformIndex(overlay.num_nodes()));
    if (overlay.IsActive(victim) && overlay.num_active() > 10) {
      overlay.Leave(victim);
    }
    if (rng.Bernoulli(0.7)) {
      ASSERT_TRUE(overlay.Join(4, rng).ok());
    }
  }
  EXPECT_GT(overlay.num_active(), 100u);
  // Every active node kept at least one connection (bootstrap guarantees).
  size_t isolated = 0;
  for (graph::NodeId v = 0; v < overlay.num_nodes(); ++v) {
    if (overlay.IsActive(v) && overlay.Degree(v) == 0) ++isolated;
  }
  // Leaves can orphan nodes whose only neighbor departed; they should be
  // rare relative to the population.
  EXPECT_LT(isolated, overlay.num_active() / 10);
}

TEST(OverlayManagerTest, JoinFailsOnEmptyOverlay) {
  OverlayManager overlay(MakeTriangle());
  overlay.Leave(0);
  overlay.Leave(1);
  overlay.Leave(2);
  util::Rng rng(7);
  EXPECT_FALSE(overlay.Join(2, rng).ok());
}

TEST(OverlayManagerTest, HistoryRecordsBootstrapHandshakes) {
  OverlayManager overlay(MakeTriangle());
  HistoryRecorder history;
  overlay.set_history(&history);
  util::Rng rng(11);
  auto id = overlay.Join(2, rng);
  ASSERT_TRUE(id.ok());
  size_t join_edges = overlay.Degree(*id);
  overlay.Leave(1);
  ASSERT_TRUE(overlay.Rejoin(1, 2, rng).ok());
  size_t rejoin_edges = overlay.Degree(1);
  overlay.set_history(nullptr);
  // Join: one kPeerUp + a Ping/Pong pair per accepted edge. Leave/Rejoin:
  // kPeerDown, then kPeerUp + fresh handshakes.
  EXPECT_EQ(history.Count(HistoryEventKind::kPeerUp), 2u);
  EXPECT_EQ(history.Count(HistoryEventKind::kPeerDown), 1u);
  size_t handshakes = join_edges + rejoin_edges;
  EXPECT_EQ(history.Count(HistoryEventKind::kSend), 2 * handshakes);
  EXPECT_EQ(history.Count(HistoryEventKind::kDeliver), 2 * handshakes);
  // The black-box checker accepts the whole evolution: every Pong follows a
  // Ping delivered to its sender in the current incarnation, no traffic
  // touches a departed node, sends and outcomes conserve.
  auto violations = verify::CheckHistory(history.events());
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(OverlayManagerTest, HistoryFlagsHandshakeFromStaleIncarnation) {
  // Regression oracle for the rule itself: replaying a pre-death handshake
  // (Pong from a contact that never re-heard a Ping) must be flagged.
  HistoryRecorder history;
  history.Record(HistoryEventKind::kSend, MessageType::kPing, 3, 1);
  history.Record(HistoryEventKind::kDeliver, MessageType::kPing, 3, 1);
  history.Record(HistoryEventKind::kPeerDown, MessageType::kPing, 1, 1);
  history.Record(HistoryEventKind::kPeerUp, MessageType::kPing, 1, 1);
  history.Record(HistoryEventKind::kSend, MessageType::kPong, 1, 3);
  history.Record(HistoryEventKind::kDeliver, MessageType::kPong, 1, 3);
  auto violations = verify::CheckHistory(history.events());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("no ping reached"), std::string::npos);
}

}  // namespace
}  // namespace p2paqp::net

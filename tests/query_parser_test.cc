#include "query/parser.h"

#include <gtest/gtest.h>

namespace p2paqp::query {
namespace {

TEST(ParserTest, MinimalCount) {
  auto q = ParseQuery("SELECT COUNT(*) FROM T");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->op, AggregateOp::kCount);
  EXPECT_TRUE(q->Matches({-999999, 0}));
  EXPECT_DOUBLE_EQ(q->required_error, 0.1);
}

TEST(ParserTest, PaperQueryForm) {
  auto q = ParseQuery("SELECT COUNT(A) FROM T WHERE A BETWEEN 1 AND 30");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicate.lo, 1);
  EXPECT_EQ(q->predicate.hi, 30);
  EXPECT_FALSE(q->predicate_b.has_value());
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery("select sum(a) from t where a between 5 and 9");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kSum);
  EXPECT_EQ(q->predicate.lo, 5);
}

TEST(ParserTest, ExpressionForms) {
  EXPECT_EQ(ParseQuery("SELECT SUM(A) FROM T")->expr, Expression::kColA);
  EXPECT_EQ(ParseQuery("SELECT SUM(B) FROM T")->expr, Expression::kColB);
  EXPECT_EQ(ParseQuery("SELECT SUM(A+B) FROM T")->expr, Expression::kAPlusB);
  EXPECT_EQ(ParseQuery("SELECT SUM(A*B) FROM T")->expr,
            Expression::kATimesB);
}

TEST(ParserTest, ConjunctiveWhere) {
  auto q = ParseQuery(
      "SELECT AVG(A*B) FROM T WHERE A BETWEEN 1 AND 50 "
      "AND B BETWEEN 2 AND 20");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->predicate_b.has_value());
  EXPECT_EQ(q->predicate_b->lo, 2);
  EXPECT_EQ(q->predicate_b->hi, 20);
}

TEST(ParserTest, WithinPercentAndFraction) {
  auto pct = ParseQuery("SELECT COUNT(*) FROM T WITHIN 5%");
  ASSERT_TRUE(pct.ok());
  EXPECT_DOUBLE_EQ(pct->required_error, 0.05);
  auto fraction = ParseQuery("SELECT COUNT(*) FROM T WITHIN 0.15");
  ASSERT_TRUE(fraction.ok());
  EXPECT_DOUBLE_EQ(fraction->required_error, 0.15);
}

TEST(ParserTest, QuantileWithPhi) {
  auto q = ParseQuery("SELECT QUANTILE(A) FROM T AT 0.75 WITHIN 5%");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, AggregateOp::kQuantile);
  EXPECT_DOUBLE_EQ(q->quantile_phi, 0.75);
  EXPECT_DOUBLE_EQ(q->required_error, 0.05);
}

TEST(ParserTest, NegativeBoundsParse) {
  auto q = ParseQuery("SELECT COUNT(A) FROM T WHERE A BETWEEN -10 AND -1");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicate.lo, -10);
  EXPECT_EQ(q->predicate.hi, -1);
}

TEST(ParserTest, RoundTripsWithToSql) {
  const std::string sql =
      "SELECT SUM(A*B) FROM T WHERE A BETWEEN 1 AND 10 "
      "AND B BETWEEN 2 AND 20";
  auto q = ParseQuery(sql);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ToSql(), sql);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("COUNT(*) FROM T").ok());
  EXPECT_FALSE(ParseQuery("SELECT FROB(A) FROM T").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(A FROM T").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(A) FROM U").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(A) FROM T WHERE A BETWEEN 1").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(A) FROM T WHERE A BETWEEN 9 AND 1").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(A) FROM T WHERE C BETWEEN 1 AND 2")
                   .ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(*) FROM T").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM T WITHIN 150%").ok());
  EXPECT_FALSE(ParseQuery("SELECT QUANTILE(A) FROM T AT 2").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM T GARBAGE").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM T WITHIN x").ok());
}

TEST(ParserTest, ErrorsAreReadable) {
  auto q = ParseQuery("SELECT COUNT(A) FRUM T");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("FROM"), std::string::npos);
}

}  // namespace
}  // namespace p2paqp::query

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/metrics.h"
#include "topology/clustered.h"
#include "topology/factory.h"
#include "topology/gnutella.h"
#include "topology/power_law.h"
#include "topology/random.h"
#include "topology/super_peer.h"

namespace p2paqp::topology {
namespace {

TEST(BarabasiAlbertTest, NodeCountAndConnectivity) {
  util::Rng rng(1);
  auto graph = MakeBarabasiAlbert(1000, 4, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 1000u);
  EXPECT_TRUE(graph::IsConnected(*graph));
  // Roughly 4 edges per attached node.
  EXPECT_NEAR(static_cast<double>(graph->num_edges()), 4.0 * 1000, 120.0);
}

TEST(BarabasiAlbertTest, HasHeavyTail) {
  util::Rng rng(2);
  auto graph = MakeBarabasiAlbert(2000, 3, rng);
  ASSERT_TRUE(graph.ok());
  // Hubs exist: max degree far above the average.
  EXPECT_GT(graph->max_degree(), 5 * graph->average_degree());
}

TEST(BarabasiAlbertTest, RejectsBadParams) {
  util::Rng rng(3);
  EXPECT_FALSE(MakeBarabasiAlbert(5, 0, rng).ok());
  EXPECT_FALSE(MakeBarabasiAlbert(3, 3, rng).ok());
}

TEST(PowerLawEdgeCountTest, HitsExactEdgeCount) {
  util::Rng rng(4);
  for (size_t edges : {999u, 5000u, 12345u}) {
    auto graph = MakePowerLawWithEdgeCount(1000, edges, rng);
    ASSERT_TRUE(graph.ok()) << edges;
    EXPECT_EQ(graph->num_edges(), edges);
    EXPECT_EQ(graph->num_nodes(), 1000u);
  }
}

TEST(PowerLawEdgeCountTest, PaperScaleTopology) {
  util::Rng rng(5);
  auto graph = MakePowerLawWithEdgeCount(10000, 100000, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 10000u);
  EXPECT_EQ(graph->num_edges(), 100000u);
  EXPECT_TRUE(graph::IsConnected(*graph));
}

TEST(PowerLawEdgeCountTest, RejectsUnachievableCounts) {
  util::Rng rng(6);
  EXPECT_FALSE(MakePowerLawWithEdgeCount(10, 8, rng).ok());   // < n-1.
  EXPECT_FALSE(MakePowerLawWithEdgeCount(10, 46, rng).ok());  // > n(n-1)/2.
  EXPECT_FALSE(MakePowerLawWithEdgeCount(1, 0, rng).ok());
}

TEST(ErdosRenyiTest, ExactEdgesAndConnected) {
  util::Rng rng(7);
  auto graph = MakeErdosRenyi(500, 2000, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2000u);
  EXPECT_TRUE(graph::IsConnected(*graph));
}

TEST(ErdosRenyiTest, SpanningTreeCorner) {
  util::Rng rng(8);
  auto graph = MakeErdosRenyi(100, 99, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 99u);
  EXPECT_TRUE(graph::IsConnected(*graph));
}

TEST(ClusteredTest, PartitionAndCutSize) {
  util::Rng rng(9);
  ClusteredParams params;
  params.num_nodes = 1000;
  params.num_edges = 6000;
  params.num_subgraphs = 2;
  params.cut_edges = 100;
  auto topo = MakeClustered(params, rng);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->graph.num_nodes(), 1000u);
  EXPECT_TRUE(graph::IsConnected(topo->graph));
  // Partition blocks are near-even.
  size_t block0 = 0;
  for (uint32_t b : topo->partition) block0 += (b == 0);
  EXPECT_EQ(block0, 500u);
  // The materialized cut matches the requested cut size exactly.
  EXPECT_EQ(graph::CutSize(topo->graph, topo->partition), 100u);
}

TEST(ClusteredTest, ManySubgraphs) {
  util::Rng rng(10);
  ClusteredParams params;
  params.num_nodes = 900;
  params.num_edges = 5000;
  params.num_subgraphs = 6;
  params.cut_edges = 60;
  auto topo = MakeClustered(params, rng);
  ASSERT_TRUE(topo.ok());
  EXPECT_TRUE(graph::IsConnected(topo->graph));
  EXPECT_EQ(graph::CutSize(topo->graph, topo->partition), 60u);
  EXPECT_EQ(*std::max_element(topo->partition.begin(), topo->partition.end()),
            5u);
}

TEST(ClusteredTest, RejectsInsufficientCutEdges) {
  util::Rng rng(11);
  ClusteredParams params;
  params.num_nodes = 100;
  params.num_edges = 600;
  params.num_subgraphs = 4;
  params.cut_edges = 2;  // Needs >= 3 for a connected chain.
  EXPECT_FALSE(MakeClustered(params, rng).ok());
}

TEST(ClusteredTest, RejectsCutEdgesWithSingleSubgraph) {
  util::Rng rng(12);
  ClusteredParams params;
  params.num_nodes = 100;
  params.num_edges = 600;
  params.num_subgraphs = 1;
  params.cut_edges = 10;
  EXPECT_FALSE(MakeClustered(params, rng).ok());
}

TEST(GnutellaTest, ExactCrawlScaleCounts) {
  util::Rng rng(13);
  GnutellaParams params;  // Defaults = 2001 crawl sizes.
  auto graph = MakeGnutellaSnapshot(params, rng);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), kGnutella2001Peers);
  EXPECT_EQ(graph->num_edges(), kGnutella2001Edges);
  EXPECT_TRUE(graph::IsConnected(*graph));
}

TEST(GnutellaTest, TwoRegimeDegreeShape) {
  util::Rng rng(14);
  GnutellaParams params;
  params.num_nodes = 5000;
  params.num_edges = 11600;  // Crawl-like average degree ~4.6.
  auto graph = MakeGnutellaSnapshot(params, rng);
  ASSERT_TRUE(graph.ok());
  // Heavy tail present...
  EXPECT_GT(graph->max_degree(), 8 * graph->average_degree());
  // ...while most nodes are low degree.
  auto hist = graph::DegreeHistogram(*graph);
  size_t low = 0;
  for (size_t d = 0; d <= 5 && d < hist.size(); ++d) low += hist[d];
  EXPECT_GT(low, graph->num_nodes() / 2);
}

TEST(GnutellaTest, RejectsBadParams) {
  util::Rng rng(15);
  GnutellaParams params;
  params.num_nodes = 10;
  params.num_edges = 5;  // < n-1.
  EXPECT_FALSE(MakeGnutellaSnapshot(params, rng).ok());
  params = GnutellaParams{};
  params.tail_exponent = 0.5;
  EXPECT_FALSE(MakeGnutellaSnapshot(params, rng).ok());
}

// Factory sweep: every kind builds a connected overlay at modest scale.
class TopologyFactoryTest : public ::testing::TestWithParam<TopologyKind> {};

TEST_P(TopologyFactoryTest, BuildsConnectedOverlay) {
  util::Rng rng(16);
  TopologyConfig config;
  config.kind = GetParam();
  config.num_nodes = 800;
  config.num_edges = 4000;
  config.num_subgraphs = 2;
  config.cut_edges = 50;
  auto topo = MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->graph.num_nodes(), 800u);
  EXPECT_TRUE(graph::IsConnected(topo->graph));
  EXPECT_EQ(topo->partition.size(), 800u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TopologyFactoryTest,
                         ::testing::Values(TopologyKind::kPowerLaw,
                                           TopologyKind::kClustered,
                                           TopologyKind::kErdosRenyi,
                                           TopologyKind::kGnutella,
                                           TopologyKind::kSuperPeer),
                         [](const auto& info) {
                           return TopologyKindToString(info.param);
                         });

TEST(TopologyFactoryTest, KindNames) {
  EXPECT_STREQ(TopologyKindToString(TopologyKind::kGnutella), "gnutella");
  EXPECT_STREQ(TopologyKindToString(TopologyKind::kClustered), "clustered");
  EXPECT_STREQ(TopologyKindToString(TopologyKind::kSuperPeer), "super_peer");
}

TEST(SuperPeerTest, TwoTierStructure) {
  util::Rng rng(2024);
  SuperPeerParams params;
  params.num_nodes = 5000;
  params.super_fraction = 0.02;
  params.core_edges_per_super = 4;
  params.leaf_connections = 2;
  auto topo = MakeSuperPeer(params, rng);
  ASSERT_TRUE(topo.ok());
  const auto& g = topo->graph;
  ASSERT_EQ(g.num_nodes(), 5000u);
  EXPECT_TRUE(graph::IsConnected(g));
  ASSERT_EQ(topo->super_peers.size(), 100u);
  // Leaves connect ONLY into the core, with at most leaf_connections links;
  // their home super is recorded in the partition.
  for (graph::NodeId leaf = 100; leaf < 5000; ++leaf) {
    auto deg = g.degree(leaf);
    ASSERT_GE(deg, 1u);
    ASSERT_LE(deg, params.leaf_connections);
    bool home_adjacent = false;
    for (graph::NodeId v : g.neighbors(leaf)) {
      ASSERT_LT(v, 100u) << "leaf " << leaf << " connected to leaf " << v;
      if (v == topo->partition[leaf]) home_adjacent = true;
    }
    ASSERT_TRUE(home_adjacent);
  }
  // The stationary mass concentrates on the core: the busiest super should
  // dwarf any leaf.
  EXPECT_GT(g.max_degree(), 10 * params.leaf_connections);
}

TEST(SuperPeerTest, RejectsBadParams) {
  util::Rng rng(1);
  SuperPeerParams params;
  params.num_nodes = 2;
  EXPECT_FALSE(MakeSuperPeer(params, rng).ok());
  params = SuperPeerParams{};
  params.super_fraction = 1.5;
  EXPECT_FALSE(MakeSuperPeer(params, rng).ok());
  params = SuperPeerParams{};
  params.num_nodes = 1000;
  params.leaf_connections = 0;
  EXPECT_FALSE(MakeSuperPeer(params, rng).ok());
}

TEST(SuperPeerTest, DeterministicForSeed) {
  SuperPeerParams params;
  params.num_nodes = 2000;
  util::Rng rng1(7);
  util::Rng rng2(7);
  auto a = MakeSuperPeer(params, rng1);
  auto b = MakeSuperPeer(params, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->graph.num_edges(), b->graph.num_edges());
  EXPECT_EQ(a->partition, b->partition);
}

}  // namespace
}  // namespace p2paqp::topology

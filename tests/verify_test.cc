// Unit tests for the statistical verification library itself: distribution
// tail functions against known values, threshold derivation, higher moments
// of RunningStat, and pass/fail canaries for every verdict function (a
// harness that cannot fail is worse than no harness).
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "test_common.h"
#include "util/rng.h"

namespace p2paqp {
namespace {

constexpr double kTol = 1e-9;

// ---------------------------------------------------------------------------
// Distribution tail functions
// ---------------------------------------------------------------------------

TEST(VerifyDistributionsTest, NormalSfKnownValues) {
  EXPECT_NEAR(verify::NormalSf(0.0), 0.5, kTol);
  EXPECT_NEAR(verify::NormalSf(1.959963984540054), 0.025, 1e-12);
  EXPECT_NEAR(verify::NormalSf(-1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(verify::NormalTwoSidedP(1.959963984540054), 0.05, 1e-12);
}

TEST(VerifyDistributionsTest, ChiSquareSfKnownValues) {
  // P(X > 0) = 1 for any dof.
  EXPECT_NEAR(verify::ChiSquareSf(0.0, 5), 1.0, kTol);
  // dof = 2 is exponential(1/2): sf(x) = exp(-x/2).
  EXPECT_NEAR(verify::ChiSquareSf(4.0, 2), std::exp(-2.0), 1e-12);
  // Classic table value: chi^2_{0.95, 3} = 7.8147...
  EXPECT_NEAR(verify::ChiSquareSf(7.814727903251179, 3), 0.05, 1e-9);
}

TEST(VerifyDistributionsTest, RegularizedGammaComplementarity) {
  for (double a : {0.5, 1.0, 3.7, 12.0}) {
    for (double x : {0.1, 1.0, 5.0, 25.0}) {
      EXPECT_NEAR(verify::RegularizedGammaP(a, x) +
                      verify::RegularizedGammaQ(a, x),
                  1.0, 1e-12);
    }
  }
  // a = 1 is exponential: P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(verify::RegularizedGammaP(1.0, 2.0), 1.0 - std::exp(-2.0),
              1e-12);
}

TEST(VerifyDistributionsTest, StudentTKnownValues) {
  EXPECT_NEAR(verify::StudentTTwoSidedP(0.0, 7), 1.0, kTol);
  // t_{0.975, 10} = 2.228138...: two-sided p = 0.05.
  EXPECT_NEAR(verify::StudentTTwoSidedP(2.2281388519649385, 10), 0.05, 1e-9);
  // dof = 1 is Cauchy: P(|T| > 1) = 0.5.
  EXPECT_NEAR(verify::StudentTTwoSidedP(1.0, 1), 0.5, 1e-9);
}

TEST(VerifyDistributionsTest, KolmogorovSfKnownValues) {
  // Q(1.36) = 2*sum (-1)^{k-1} exp(-2 k^2 1.36^2) = 0.0494868... (1.36 is
  // the classic ~5% critical value of the Kolmogorov distribution).
  EXPECT_NEAR(verify::KolmogorovSf(1.36), 0.0494868, 5e-5);
  EXPECT_NEAR(verify::KolmogorovSf(0.1), 1.0, kTol);
  EXPECT_LT(verify::KolmogorovSf(2.5), 1e-4);
}

TEST(VerifyDistributionsTest, BinomialLowerTailExactSmallCase) {
  // X ~ Bin(3, 0.5): P(X <= 1) = 4/8.
  EXPECT_NEAR(verify::BinomialLowerTailP(1, 3, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(verify::BinomialLowerTailP(3, 3, 0.5), 1.0, 1e-12);
  EXPECT_NEAR(verify::BinomialLowerTailP(0, 4, 0.5), 1.0 / 16.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Thresholds
// ---------------------------------------------------------------------------

TEST(VerifyThresholdsTest, DefaultAlphaMatchesSuiteBudget) {
  double alpha = verify::DefaultAlpha();
  EXPECT_NEAR(alpha * verify::kMaxChecksPerSuite,
              verify::kSuiteFalsePositiveRate,
              verify::kSuiteFalsePositiveRate * 1e-9);
  // The per-check level corresponds to roughly 5.5 sigma two-sided.
  double sigma = verify::SigmaForAlpha(alpha);
  EXPECT_GT(sigma, 5.0);
  EXPECT_LT(sigma, 6.0);
  EXPECT_NEAR(verify::AlphaForSigma(sigma), alpha, alpha * 1e-6);
}

// ---------------------------------------------------------------------------
// RunningStat higher moments
// ---------------------------------------------------------------------------

TEST(VerifyRunningStatTest, MomentsOnKnownData) {
  util::RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.Add(x);
  EXPECT_NEAR(stat.mean(), 5.0, kTol);
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, kTol);
  EXPECT_NEAR(stat.standard_error(), std::sqrt(32.0 / 7.0 / 8.0), kTol);
  // Batch-computed central moments as the reference.
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) {
    m2 += (x - 5) * (x - 5);
    m3 += (x - 5) * (x - 5) * (x - 5);
    m4 += (x - 5) * (x - 5) * (x - 5) * (x - 5);
  }
  double n = 8.0;
  EXPECT_NEAR(stat.skewness(), std::sqrt(n) * m3 / std::pow(m2, 1.5), 1e-9);
  EXPECT_NEAR(stat.excess_kurtosis(), n * m4 / (m2 * m2) - 3.0, 1e-9);
}

TEST(VerifyRunningStatTest, GaussianMomentsConverge) {
  util::Rng rng(11);
  util::RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.Gaussian(3.0, 2.0));
  EXPECT_NEAR(stat.mean(), 3.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
  EXPECT_NEAR(stat.skewness(), 0.0, 0.1);
  EXPECT_NEAR(stat.excess_kurtosis(), 0.0, 0.2);
}

// ---------------------------------------------------------------------------
// Verdict functions: each must pass on a true null and fail on a planted
// effect (pass/fail canaries for the harness itself).
// ---------------------------------------------------------------------------

TEST(VerifyVerdictTest, MeanZTestPassAndFail) {
  util::Rng rng(21);
  util::RunningStat centered, shifted;
  for (int i = 0; i < 4000; ++i) {
    double x = rng.Gaussian(10.0, 1.0);
    centered.Add(x);
    shifted.Add(x + 0.5);  // 0.5 sigma shift: ~31 sigma on the mean.
  }
  EXPECT_STAT_PASS(verify::MeanZTest(centered, 10.0, verify::DefaultAlpha()));
  EXPECT_STAT_FAIL(verify::MeanZTest(shifted, 10.0, verify::DefaultAlpha()));
  // The guard band turns the failure back into a pass.
  EXPECT_STAT_PASS(verify::MeanZTest(shifted, 10.0, verify::DefaultAlpha(),
                                     /*bias_tolerance=*/0.6));
  EXPECT_STAT_PASS(verify::MeanTTest(centered, 10.0, verify::DefaultAlpha()));
  EXPECT_STAT_FAIL(verify::MeanTTest(shifted, 10.0, verify::DefaultAlpha()));
}

TEST(VerifyVerdictTest, ChiSquareGofPassAndFail) {
  util::Rng rng(22);
  std::vector<double> expected = {100, 200, 300, 400};
  std::vector<double> weights = {1, 2, 3, 4};
  std::vector<double> observed(4, 0.0);
  std::vector<double> skewed(4, 0.0);
  for (int i = 0; i < 10000; ++i) {
    observed[rng.WeightedIndex(weights)] += 1.0;
    skewed[rng.UniformIndex(4)] += 1.0;  // Uniform draws vs 1:2:3:4 null.
  }
  EXPECT_STAT_PASS(verify::ChiSquareGofTest(observed, expected,
                                            verify::DefaultAlpha()));
  EXPECT_STAT_FAIL(verify::ChiSquareGofTest(skewed, expected,
                                            verify::DefaultAlpha()));
}

TEST(VerifyVerdictTest, ChiSquarePoolsSparseBins) {
  // 60 tiny-expectation bins must be pooled, not produce spurious power.
  std::vector<double> expected(60, 1.0);
  std::vector<double> observed(60, 0.0);
  util::Rng rng(23);
  for (int i = 0; i < 60; ++i) observed[rng.UniformIndex(60)] += 1.0;
  auto verdict = verify::ChiSquareGofTest(observed, expected,
                                          verify::DefaultAlpha(),
                                          /*min_expected=*/8.0);
  EXPECT_STAT_PASS(verdict);
}

TEST(VerifyVerdictTest, KsTwoSamplePassAndFail) {
  util::Rng rng(24);
  std::vector<double> a, b, c;
  for (int i = 0; i < 3000; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(0.0, 1.0));
    c.push_back(rng.Gaussian(0.8, 1.0));
  }
  EXPECT_STAT_PASS(verify::KsTwoSampleTest(a, b, verify::DefaultAlpha()));
  EXPECT_STAT_FAIL(verify::KsTwoSampleTest(a, c, verify::DefaultAlpha()));
}

TEST(VerifyVerdictTest, CoverageAtLeastPassAndFail) {
  // 940 / 1000 covered at nominal 0.95: within binomial noise at 5.5 sigma.
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(940, 1000, 0.95,
                                               verify::DefaultAlpha()));
  // Over-coverage always passes (conservative CIs are by design).
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(1000, 1000, 0.95,
                                               verify::DefaultAlpha()));
  // 700 / 1000 at nominal 0.95 is a calibration failure.
  EXPECT_STAT_FAIL(verify::CoverageAtLeastTest(700, 1000, 0.95,
                                               verify::DefaultAlpha()));
}

TEST(VerifyVerdictTest, InverseVarianceSlopePassAndFail) {
  std::vector<double> sizes = {8, 16, 32, 64, 128};
  std::vector<double> decaying, constant;
  for (double m : sizes) {
    decaying.push_back(100.0 / m);  // Exact 1/m decay.
    constant.push_back(100.0);      // No decay at all.
  }
  EXPECT_STAT_PASS(verify::InverseVarianceSlopeTest(
      sizes, decaying, /*replicates_per_point=*/500, verify::DefaultAlpha()));
  EXPECT_STAT_FAIL(verify::InverseVarianceSlopeTest(
      sizes, constant, /*replicates_per_point=*/500, verify::DefaultAlpha()));
}

TEST(VerifyVerdictTest, VerdictToStringCarriesContext) {
  util::RunningStat stat;
  for (int i = 0; i < 10; ++i) stat.Add(static_cast<double>(i));
  auto verdict = verify::MeanZTest(stat, 4.5, verify::DefaultAlpha());
  EXPECT_NE(verdict.ToString().find(verdict.name), std::string::npos);
  EXPECT_FALSE(verdict.detail.empty());
}

// ---------------------------------------------------------------------------
// Replicate plumbing
// ---------------------------------------------------------------------------

TEST(VerifyReplicateTest, SeedsAreDistinctAndStable) {
  EXPECT_EQ(verify::ReplicateSeed(7, 0), verify::ReplicateSeed(7, 0));
  EXPECT_NE(verify::ReplicateSeed(7, 0), verify::ReplicateSeed(7, 1));
  EXPECT_NE(verify::ReplicateSeed(7, 0), verify::ReplicateSeed(8, 0));
}

TEST(VerifyReplicateTest, CalibrationAccumulatorCountsCoverage) {
  verify::CalibrationAccumulator acc;
  acc.Add(verify::EstimateSample{10.0, 9.0, 2.0});   // Covered.
  acc.Add(verify::EstimateSample{10.0, 9.0, 0.5});   // Not covered.
  acc.Add(verify::EstimateSample{9.0, 9.0, 0.0});    // Exact hit, covered.
  EXPECT_EQ(acc.total(), 3u);
  EXPECT_EQ(acc.covered(), 2u);
  EXPECT_NEAR(acc.errors().mean(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(acc.squared_errors().mean(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace p2paqp

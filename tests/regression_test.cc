// Assorted regression and edge-case tests that close remaining coverage
// gaps across modules.
#include <gtest/gtest.h>

#include "core/aqp.h"
#include "graph/builder.h"
#include "graph/spectral.h"
#include "io/world_io.h"
#include "query/parser.h"
#include "util/ascii_table.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp {
namespace {

// --- Non-lazy walk distribution ------------------------------------------

TEST(WalkDistributionRegression, NonLazyConservesMass) {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  graph::Graph g = builder.Build();
  auto dist = graph::WalkDistribution(g, 0, 7, /*lazy=*/false);
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Even cycle + odd steps: all mass sits on the odd bipartition class.
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[2], 0.0);
  EXPECT_NEAR(dist[1] + dist[3], 1.0, 1e-12);
}

TEST(WalkDistributionRegression, IsolatedNodeKeepsItsMass) {
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  graph::Graph g = builder.Build();
  auto dist = graph::WalkDistribution(g, 2, 5, /*lazy=*/true);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
}

// --- Flooding on clustered overlays --------------------------------------

TEST(ProtocolRegression, FloodCrossesSmallCuts) {
  util::Rng rng(1);
  topology::ClusteredParams params;
  params.num_nodes = 200;
  params.num_edges = 1200;
  params.num_subgraphs = 2;
  params.cut_edges = 1;  // Single bridge.
  auto topo = topology::MakeClustered(params, rng);
  ASSERT_TRUE(topo.ok());
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph), {},
                                             net::NetworkParams{}, 2);
  ASSERT_TRUE(network.ok());
  net::GnutellaProtocol protocol(&*network);
  // Unlimited TTL reaches every other peer despite the 1-edge cut.
  net::FloodResult result = protocol.Ping(0, 1000);
  EXPECT_EQ(result.reached.size(), network->num_peers() - 1);
  EXPECT_GE(result.max_depth, 2u);
}

// --- World IO across topology kinds --------------------------------------

class WorldIoKindSweep
    : public ::testing::TestWithParam<topology::TopologyKind> {};

TEST_P(WorldIoKindSweep, RoundTripsEveryTopologyKind) {
  util::Rng rng(3);
  topology::TopologyConfig config;
  config.kind = GetParam();
  config.num_nodes = 150;
  config.num_edges = 700;
  config.num_subgraphs = 2;
  config.cut_edges = 20;
  auto topo = topology::MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok());
  data::DatasetParams dataset;
  dataset.num_tuples = 3000;
  dataset.fill_b = true;
  dataset.b_correlation = 0.3;
  auto table = data::GenerateDataset(dataset, rng);
  ASSERT_TRUE(table.ok());
  auto dbs = data::PartitionAcrossPeers(*table, topo->graph,
                                        data::PartitionParams{}, rng);
  ASSERT_TRUE(dbs.ok());
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph),
                                             std::move(*dbs),
                                             net::NetworkParams{}, 4);
  ASSERT_TRUE(network.ok());

  std::string path = ::testing::TempDir() + "/roundtrip_" +
                     topology::TopologyKindToString(GetParam()) + ".p2pw";
  ASSERT_TRUE(io::SaveWorld(path, *network).ok());
  auto loaded = io::LoadWorld(path, net::NetworkParams{}, 5);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->graph().num_edges(), network->graph().num_edges());
  EXPECT_EQ(loaded->TotalTuples(), network->TotalTuples());
  // Column B survives the round trip.
  EXPECT_EQ(loaded->peer(3).database().tuples(),
            network->peer(3).database().tuples());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WorldIoKindSweep,
                         ::testing::Values(topology::TopologyKind::kPowerLaw,
                                           topology::TopologyKind::kClustered,
                                           topology::TopologyKind::kErdosRenyi,
                                           topology::TopologyKind::kGnutella),
                         [](const auto& info) {
                           return topology::TopologyKindToString(info.param);
                         });

TEST(WorldIoRegression, UnwritablePathFailsCleanly) {
  testing::TestNetworkParams params;
  params.num_peers = 50;
  params.num_edges = 200;
  params.cut_edges = 10;
  params.tuples_per_peer = 5;
  testing::TestNetwork tn = testing::MakeTestNetwork(params);
  util::Status status =
      io::SaveWorld("/nonexistent_dir/world.p2pw", tn.network);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
}

// --- Parser robustness ----------------------------------------------------

TEST(ParserRegression, ToleratesMessyWhitespaceAndCase) {
  auto q = query::ParseQuery(
      "   sElEcT   sum( a * b )FROM    t WHERE a BETWEEN 1 AND 9   ");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->expr, query::Expression::kATimesB);
  EXPECT_EQ(q->predicate.hi, 9);
}

TEST(ParserRegression, ClausesComposeInAnyTrailerOrder) {
  auto q = query::ParseQuery(
      "SELECT QUANTILE(B) FROM T WHERE B BETWEEN 2 AND 7 WITHIN 5% AT 0.9");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->quantile_phi, 0.9);
  EXPECT_DOUBLE_EQ(q->required_error, 0.05);
  auto q2 = query::ParseQuery("SELECT QUANTILE(B) FROM T AT 0.9 WITHIN 5%");
  ASSERT_TRUE(q2.ok());
  EXPECT_DOUBLE_EQ(q2->quantile_phi, 0.9);
}

// --- Engine with a predicate on column B ----------------------------------

TEST(EngineRegression, CountWithConjunctiveBPredicate) {
  util::Rng rng(6);
  auto graph = topology::MakeBarabasiAlbert(600, 4, rng);
  ASSERT_TRUE(graph.ok());
  data::DatasetParams dataset;
  dataset.num_tuples = 30000;
  dataset.fill_b = true;
  dataset.b_skew = 0.5;
  auto table = data::GenerateDataset(dataset, rng);
  ASSERT_TRUE(table.ok());
  int64_t truth = 0;
  for (const data::Tuple& t : *table) {
    if (t.value >= 1 && t.value <= 40 && t.b >= 1 && t.b <= 20) ++truth;
  }
  ASSERT_GT(truth, 0);
  auto dbs = data::PartitionAcrossPeers(*table, *graph,
                                        data::PartitionParams{}, rng);
  ASSERT_TRUE(dbs.ok());
  auto network = net::SimulatedNetwork::Make(std::move(*graph),
                                             std::move(*dbs),
                                             net::NetworkParams{}, 7);
  ASSERT_TRUE(network.ok());
  core::SystemCatalog catalog = core::MakeCatalog(network->graph(), 8, 30);
  core::EngineParams params;
  params.phase1_peers = 60;
  params.include_phase1_observations = true;
  core::TwoPhaseEngine engine(&*network, catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 40};
  q.predicate_b = query::RangePredicate{1, 20};
  q.required_error = 0.1;
  util::Rng query_rng(8);
  auto answer = engine.Execute(q, 0, query_rng);
  ASSERT_TRUE(answer.ok());
  double total = static_cast<double>(network->TotalTuples());
  EXPECT_LT(std::fabs(answer->estimate - static_cast<double>(truth)) / total,
            0.1);
}

// --- ASCII table formatter corners ----------------------------------------

TEST(FormatterRegression, NegativeAndZeroValues) {
  EXPECT_EQ(util::AsciiTable::FormatDouble(-2.5, 1), "-2.5");
  EXPECT_EQ(util::AsciiTable::FormatPercent(0.0), "0.00%");
  EXPECT_EQ(util::AsciiTable::FormatInt(0), "0");
}

// --- CostSnapshot arithmetic ----------------------------------------------

TEST(CostRegression, AccumulateThenDiffIsConsistent) {
  net::CostSnapshot a;
  a.messages = 10;
  a.bytes_shipped = 100;
  net::CostSnapshot b;
  b.messages = 3;
  b.bytes_shipped = 30;
  net::CostSnapshot sum = a;
  sum += b;
  net::CostSnapshot back = net::CostDelta(sum, b);
  EXPECT_EQ(back.messages, a.messages);
  EXPECT_EQ(back.bytes_shipped, a.bytes_shipped);
  EXPECT_FALSE(sum.ToString().empty());
}

}  // namespace
}  // namespace p2paqp

// Tests for decentralized catalog estimation (return-time and birthday
// estimators).
#include "core/decentralized_catalog.h"

#include <gtest/gtest.h>

#include "core/two_phase.h"
#include "graph/builder.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

net::SimulatedNetwork MakeBaNetwork(size_t n, size_t m, uint64_t seed) {
  util::Rng rng(seed);
  auto graph = topology::MakeBarabasiAlbert(n, m, rng);
  EXPECT_TRUE(graph.ok());
  auto network = net::SimulatedNetwork::Make(std::move(*graph), {},
                                             net::NetworkParams{}, seed);
  EXPECT_TRUE(network.ok());
  return std::move(*network);
}

TEST(DecentralizedCatalogTest, ReturnTimeEstimatesEdges) {
  net::SimulatedNetwork network = MakeBaNetwork(600, 5, 1);
  double truth = static_cast<double>(network.graph().num_edges());
  DecentralizedConfig config;
  config.return_walks = 48;
  util::Rng rng(2);
  auto estimate = EstimateEdgesViaReturnTimes(network, 0, config, rng);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_NEAR(*estimate, truth, 0.35 * truth);
}

TEST(DecentralizedCatalogTest, BirthdayEstimatesPeers) {
  net::SimulatedNetwork network = MakeBaNetwork(800, 4, 3);
  DecentralizedConfig config;
  config.birthday_samples = 400;  // ~100 expected collisions at M=800.
  config.birthday_jump = 8;
  util::Rng rng(4);
  auto estimate = EstimatePeersViaCollisions(network, 0, config, rng);
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_NEAR(*estimate, 800.0, 0.35 * 800.0);
}

TEST(DecentralizedCatalogTest, PreprocessAssemblesUsableCatalog) {
  TestNetworkParams net_params;
  net_params.num_peers = 600;
  net_params.num_edges = 3600;
  net_params.cut_edges = 300;  // Keep the overlay well mixed.
  TestNetwork tn = MakeTestNetwork(net_params);
  DecentralizedConfig config;
  config.return_walks = 48;
  config.birthday_samples = 400;
  config.suggested_jump = tn.catalog.suggested_jump;
  config.suggested_burn_in = tn.catalog.suggested_burn_in;
  util::Rng rng(5);
  auto estimates = DecentralizedPreprocess(tn.network, 0, config, rng);
  ASSERT_TRUE(estimates.ok()) << estimates.status().ToString();
  EXPECT_NEAR(static_cast<double>(estimates->catalog.num_edges), 3600.0,
              0.4 * 3600.0);
  EXPECT_NEAR(static_cast<double>(estimates->catalog.num_peers), 600.0,
              0.4 * 600.0);
  EXPECT_GT(estimates->cost.walker_hops, 0u);
  EXPECT_GT(estimates->collisions, 0u);

  // The estimated catalog drives the engine end-to-end; the residual error
  // includes the |E|-estimate bias, so the band is wider than with the
  // oracle catalog.
  EngineParams params;
  params.phase1_peers = 60;
  params.include_phase1_observations = true;
  TwoPhaseEngine engine(&tn.network, estimates->catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  util::Rng query_rng(6);
  auto answer = engine.Execute(q, 0, query_rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(p2paqp::testing::NormalizedCountError(tn.network,
                                                  answer->estimate, 1, 30),
            0.45);
}

TEST(DecentralizedCatalogTest, BiasTracksEdgeError) {
  // The Horvitz-Thompson normalizer is 2|E|: feeding the engine a catalog
  // whose edge count is off by +25% must inflate COUNT estimates by ~25%.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  SystemCatalog inflated = tn.catalog;
  inflated.num_edges =
      static_cast<size_t>(1.25 * static_cast<double>(inflated.num_edges));
  EngineParams params;
  params.phase1_peers = 80;
  params.include_phase1_observations = true;
  TwoPhaseEngine honest(&tn.network, tn.catalog, params);
  TwoPhaseEngine biased(&tn.network, inflated, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  auto honest_answer = honest.Execute(q, 0, rng_a);
  auto biased_answer = biased.Execute(q, 0, rng_b);
  ASSERT_TRUE(honest_answer.ok());
  ASSERT_TRUE(biased_answer.ok());
  EXPECT_NEAR(biased_answer->estimate / honest_answer->estimate, 1.25, 0.02);
}

TEST(DecentralizedCatalogTest, FailureModes) {
  net::SimulatedNetwork network = MakeBaNetwork(50, 3, 8);
  DecentralizedConfig config;
  util::Rng rng(9);
  // Dead sink.
  network.SetAlive(0, false);
  EXPECT_FALSE(EstimateEdgesViaReturnTimes(network, 0, config, rng).ok());
  network.SetAlive(0, true);
  // Degenerate sample size.
  config.birthday_samples = 1;
  EXPECT_FALSE(EstimatePeersViaCollisions(network, 0, config, rng).ok());
  // Impossible hop cap: every walk dies.
  config = DecentralizedConfig{};
  config.max_hops_per_walk = 1;
  EXPECT_FALSE(EstimateEdgesViaReturnTimes(network, 0, config, rng).ok());
}

TEST(DecentralizedCatalogTest, IsolatedSinkIsRejected) {
  graph::GraphBuilder builder(3);
  builder.AddEdge(1, 2);
  auto network = net::SimulatedNetwork::Make(builder.Build(), {},
                                             net::NetworkParams{}, 10);
  ASSERT_TRUE(network.ok());
  DecentralizedConfig config;
  util::Rng rng(11);
  EXPECT_FALSE(EstimateEdgesViaReturnTimes(*network, 0, config, rng).ok());
}

}  // namespace
}  // namespace p2paqp::core

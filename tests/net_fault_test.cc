#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/async_engine.h"
#include "graph/builder.h"
#include "net/churn.h"
#include "net/fault.h"
#include "net/network.h"
#include "test_common.h"

namespace p2paqp::net {
namespace {

graph::Graph MakeRing(size_t n) {
  graph::GraphBuilder builder(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    builder.AddEdge(v, (v + 1) % n);
  }
  return builder.Build();
}

SimulatedNetwork MakeRingNetwork(size_t n, uint64_t seed = 1) {
  auto network = SimulatedNetwork::Make(MakeRing(n), {}, NetworkParams{}, seed);
  EXPECT_TRUE(network.ok());
  return std::move(*network);
}

TEST(FaultPlanTest, DefaultPlanIsDisabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.spike_mean_ms = 500.0;  // A mean alone cannot fire anything.
  EXPECT_FALSE(plan.enabled());
  plan.drop_probability = 0.01;
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanTest, EachKnobEnables) {
  for (int knob = 0; knob < 4; ++knob) {
    FaultPlan plan;
    switch (knob) {
      case 0: plan.drop_probability = 0.1; break;
      case 1: plan.spike_probability = 0.1; break;
      case 2: plan.crash_probability = 0.1; break;
      case 3: plan.scheduled_crashes.push_back({5, 2}); break;
    }
    EXPECT_TRUE(plan.enabled()) << "knob " << knob;
  }
}

TEST(FaultInjectorTest, DisabledPlanInstallsNoInjector) {
  SimulatedNetwork network = MakeRingNetwork(8);
  EXPECT_EQ(network.fault_injector(), nullptr);
  network.InstallFaultPlan(FaultPlan{}, 42);
  EXPECT_EQ(network.fault_injector(), nullptr);
  FaultPlan lossy;
  lossy.drop_probability = 0.5;
  network.InstallFaultPlan(lossy, 42);
  ASSERT_NE(network.fault_injector(), nullptr);
  // Re-installing a disabled plan removes the injector again.
  network.InstallFaultPlan(FaultPlan{}, 42);
  EXPECT_EQ(network.fault_injector(), nullptr);
}

TEST(FaultInjectorTest, DropRateIsHonoredAndChargesCost) {
  SimulatedNetwork network = MakeRingNetwork(8);
  FaultPlan plan;
  plan.drop_probability = 0.3;
  network.InstallFaultPlan(plan, 99);
  const size_t kSends = 4000;
  size_t delivered = 0;
  for (size_t i = 0; i < kSends; ++i) {
    if (network.SendAlongEdge(MessageType::kWalker, 0, 1).ok()) ++delivered;
  }
  const FaultInjector* injector = network.fault_injector();
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(injector->messages_seen(), kSends);
  EXPECT_EQ(injector->dropped(), kSends - delivered);
  double rate = static_cast<double>(kSends - delivered) / kSends;
  EXPECT_NEAR(rate, 0.3, 0.03);
  // Dropped messages still consumed bandwidth and hop latency: the cost
  // ledger charges every send, delivered or not.
  EXPECT_EQ(network.cost_snapshot().messages, kSends);
  EXPECT_EQ(network.cost_snapshot().walker_hops, kSends);
}

TEST(FaultInjectorTest, ProbabilisticCrashKillsReceiver) {
  SimulatedNetwork network = MakeRingNetwork(8);
  FaultPlan plan;
  plan.crash_probability = 1.0;  // First overlay hop must kill its receiver.
  network.InstallFaultPlan(plan, 7);
  EXPECT_EQ(network.num_alive(), 8u);
  auto status = network.SendAlongEdge(MessageType::kWalker, 0, 1);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_FALSE(network.IsAlive(1));
  EXPECT_TRUE(network.IsAlive(0));
  EXPECT_EQ(network.num_alive(), 7u);
  ASSERT_EQ(network.fault_injector()->crashes(), 1u);
  EXPECT_EQ(network.fault_injector()->trace()[0].crashed, 1u);
}

TEST(FaultInjectorTest, ReplyCrashKillsSenderNotSink) {
  SimulatedNetwork network = MakeRingNetwork(8);
  FaultPlan plan;
  plan.crash_probability = 1.0;
  network.InstallFaultPlan(plan, 7);
  // Direct replies lose the *replying* peer, never the sink collecting them.
  auto status = network.SendDirect(MessageType::kAggregateReply, 3, 0);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_FALSE(network.IsAlive(3));
  EXPECT_TRUE(network.IsAlive(0));
}

TEST(FaultInjectorTest, ScheduledCrashFiresAtIndex) {
  SimulatedNetwork network = MakeRingNetwork(8);
  FaultPlan plan;
  plan.scheduled_crashes.push_back({2, 5});
  network.InstallFaultPlan(plan, 11);
  // Messages 0 and 1 pass untouched; peer 5 departs at message index 2.
  EXPECT_TRUE(network.SendAlongEdge(MessageType::kWalker, 0, 1).ok());
  EXPECT_TRUE(network.SendAlongEdge(MessageType::kWalker, 1, 2).ok());
  EXPECT_TRUE(network.IsAlive(5));
  EXPECT_TRUE(network.SendAlongEdge(MessageType::kWalker, 2, 3).ok());
  EXPECT_FALSE(network.IsAlive(5));
  const auto& trace = network.fault_injector()->trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, FaultKind::kScheduledCrash);
  EXPECT_EQ(trace[0].message_index, 2u);
  EXPECT_EQ(trace[0].crashed, 5u);
}

TEST(FaultInjectorTest, ScheduledCrashOfEndpointLosesMessage) {
  SimulatedNetwork network = MakeRingNetwork(8);
  FaultPlan plan;
  plan.scheduled_crashes.push_back({0, 1});
  network.InstallFaultPlan(plan, 11);
  // The crash applies before delivery: the message into the crashing peer
  // goes down with it.
  auto status = network.SendAlongEdge(MessageType::kWalker, 0, 1);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_FALSE(network.IsAlive(1));
}

TEST(FaultInjectorTest, ImmunePeersNeverCrash) {
  SimulatedNetwork network = MakeRingNetwork(8);
  FaultPlan plan;
  plan.crash_probability = 1.0;
  plan.scheduled_crashes.push_back({0, 0});
  plan.crash_immune = {0, 1};
  network.InstallFaultPlan(plan, 13);
  for (int i = 0; i < 20; ++i) {
    (void)network.SendAlongEdge(MessageType::kWalker, 0, 1);
  }
  EXPECT_TRUE(network.IsAlive(0));
  EXPECT_TRUE(network.IsAlive(1));
  EXPECT_EQ(network.num_alive(), 8u);
}

TEST(FaultInjectorTest, SpikesAddLatency) {
  SimulatedNetwork clean = MakeRingNetwork(8, 5);
  SimulatedNetwork spiky = MakeRingNetwork(8, 5);
  FaultPlan plan;
  plan.spike_probability = 1.0;
  plan.spike_mean_ms = 1000.0;
  spiky.InstallFaultPlan(plan, 21);
  const size_t kSends = 50;
  for (size_t i = 0; i < kSends; ++i) {
    EXPECT_TRUE(clean.SendAlongEdge(MessageType::kWalker, 0, 1).ok());
    // Spikes delay but never drop: every send still arrives.
    EXPECT_TRUE(spiky.SendAlongEdge(MessageType::kWalker, 0, 1).ok());
  }
  EXPECT_EQ(spiky.fault_injector()->spikes(), kSends);
  EXPECT_GT(spiky.cost_snapshot().latency_ms,
            clean.cost_snapshot().latency_ms + 1000.0);
  for (const FaultEvent& event : spiky.fault_injector()->trace()) {
    EXPECT_EQ(event.kind, FaultKind::kLatencySpike);
    EXPECT_GT(event.spike_ms, 0.0);
  }
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalTrace) {
  FaultPlan plan;
  plan.drop_probability = 0.25;
  plan.spike_probability = 0.1;
  plan.crash_probability = 0.02;
  plan.scheduled_crashes.push_back({7, 3});
  FaultInjector a(plan, 1234);
  FaultInjector b(plan, 1234);
  for (uint64_t i = 0; i < 300; ++i) {
    graph::NodeId from = static_cast<graph::NodeId>(i % 6);
    graph::NodeId to = static_cast<graph::NodeId>((i + 1) % 6);
    FaultDecision da = a.OnMessage(MessageType::kWalker, from, to, to);
    FaultDecision db = b.OnMessage(MessageType::kWalker, from, to, to);
    EXPECT_EQ(da.deliver, db.deliver);
    EXPECT_DOUBLE_EQ(da.extra_latency_ms, db.extra_latency_ms);
    EXPECT_EQ(da.crashed, db.crashed);
  }
  ASSERT_EQ(a.trace().size(), b.trace().size());
  EXPECT_GT(a.trace().size(), 0u);
  for (size_t i = 0; i < a.trace().size(); ++i) {
    EXPECT_EQ(a.trace()[i], b.trace()[i]);
  }
  // A different seed must diverge somewhere over 300 messages.
  FaultInjector c(plan, 4321);
  bool diverged = false;
  for (uint64_t i = 0; i < 300 && !diverged; ++i) {
    graph::NodeId from = static_cast<graph::NodeId>(i % 6);
    graph::NodeId to = static_cast<graph::NodeId>((i + 1) % 6);
    FaultDecision dc = c.OnMessage(MessageType::kWalker, from, to, to);
    if (i < a.trace().size() || dc.deliver != true) diverged = true;
  }
  EXPECT_NE(c.dropped() + c.spikes() + c.crashes(),
            a.dropped() + a.spikes() + a.crashes());
}

TEST(FaultInjectorTest, KindNamesAreDistinct) {
  EXPECT_STRNE(FaultKindToString(FaultKind::kDrop),
               FaultKindToString(FaultKind::kLatencySpike));
  EXPECT_STRNE(FaultKindToString(FaultKind::kCrash),
               FaultKindToString(FaultKind::kScheduledCrash));
}

TEST(FaultInjectorTest, AllZeroPlanIsBitIdentical) {
  // Same topology seed, same traffic; one network has a disabled plan
  // "installed". Every cost counter — including the RNG-drawn latency
  // ledger — must match bit for bit.
  SimulatedNetwork plain = MakeRingNetwork(16, 77);
  SimulatedNetwork planned = MakeRingNetwork(16, 77);
  planned.InstallFaultPlan(FaultPlan{}, 123);
  for (size_t i = 0; i < 200; ++i) {
    graph::NodeId from = static_cast<graph::NodeId>(i % 16);
    graph::NodeId to = static_cast<graph::NodeId>((i + 1) % 16);
    EXPECT_TRUE(plain.SendAlongEdge(MessageType::kWalker, from, to).ok());
    EXPECT_TRUE(planned.SendAlongEdge(MessageType::kWalker, from, to).ok());
    EXPECT_TRUE(
        plain.SendDirect(MessageType::kAggregateReply, to, 0).ok());
    EXPECT_TRUE(
        planned.SendDirect(MessageType::kAggregateReply, to, 0).ok());
  }
  const CostSnapshot& a = plain.cost_snapshot();
  const CostSnapshot& b = planned.cost_snapshot();
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.walker_hops, b.walker_hops);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
}

// Straggler regime: heavy-tailed latency + the slow coalition. A straggler
// is alive and answers eventually — the plan models it as extra delay, not
// loss, and every piece of it is a pure function of (plan, seed, num_peers).

TEST(StragglerPlanTest, TailOrCoalitionEnablesPlan) {
  FaultPlan plan;
  EXPECT_FALSE(plan.straggler_enabled());
  // The scale/alpha defaults alone fire nothing.
  plan.tail_scale_ms = 500.0;
  EXPECT_FALSE(plan.enabled());
  plan.tail = LatencyTail::kPareto;
  EXPECT_TRUE(plan.straggler_enabled());
  EXPECT_TRUE(plan.enabled());

  FaultPlan coalition;
  coalition.slow_fraction = 0.1;
  EXPECT_TRUE(coalition.straggler_enabled());
  coalition.slow_factor = 0.0;  // A factor of 0 is a no-op coalition.
  EXPECT_FALSE(coalition.straggler_enabled());
}

TEST(StragglerTest, ParetoDrawsMatchClosedFormMean) {
  FaultPlan plan;
  plan.tail = LatencyTail::kPareto;
  plan.tail_scale_ms = 50.0;
  plan.tail_alpha = 3.0;  // Finite variance, so the sample mean converges.
  FaultInjector injector(plan, 21, /*num_peers=*/16);
  util::Rng rng(22);
  const size_t kDraws = 20000;
  double sum = 0.0;
  double min_draw = 1e18;
  for (size_t i = 0; i < kDraws; ++i) {
    double d = injector.DrawTailDelay(3, rng);
    ASSERT_GE(d, 0.0);
    sum += d;
    min_draw = std::min(min_draw, d);
  }
  // The shifted Pareto's floor is 0 (typical messages pay nothing) and
  // E[extra] = scale / (alpha - 1) = 25ms.
  EXPECT_LT(min_draw, 1.0);
  EXPECT_NEAR(sum / kDraws, 25.0, 2.0);
  EXPECT_DOUBLE_EQ(injector.ExpectedTailDelayMs(3), 25.0);
}

TEST(StragglerTest, LognormalDrawsMatchMedian) {
  FaultPlan plan;
  plan.tail = LatencyTail::kLognormal;
  plan.tail_scale_ms = 40.0;  // The lognormal's median by construction.
  plan.tail_sigma = 1.0;
  FaultInjector injector(plan, 31, /*num_peers=*/16);
  util::Rng rng(32);
  std::vector<double> draws(20001);
  for (double& d : draws) {
    d = injector.DrawTailDelay(5, rng);
    ASSERT_GT(d, 0.0);
  }
  std::nth_element(draws.begin(), draws.begin() + draws.size() / 2,
                   draws.end());
  EXPECT_NEAR(draws[draws.size() / 2], 40.0, 4.0);
  EXPECT_DOUBLE_EQ(injector.ExpectedTailDelayMs(5),
                   40.0 * std::exp(0.5));  // scale * e^{sigma^2/2}.
}

TEST(StragglerTest, CoalitionDraftIsSeedDeterministicAndImmuneAware) {
  FaultPlan plan;
  plan.slow_fraction = 0.25;
  plan.crash_immune = {0, 1};
  FaultInjector a(plan, 99, /*num_peers=*/400);
  FaultInjector b(plan, 99, /*num_peers=*/400);
  FaultInjector other_seed(plan, 100, /*num_peers=*/400);
  EXPECT_EQ(a.slow_peers(), b.slow_peers());
  size_t differs = 0;
  for (graph::NodeId peer = 0; peer < 400; ++peer) {
    EXPECT_EQ(a.IsSlow(peer), b.IsSlow(peer)) << "peer " << peer;
    if (a.IsSlow(peer) != other_seed.IsSlow(peer)) ++differs;
  }
  // Immune peers (the sink) are never drafted; another seed redraws the
  // coalition, so the determinism check above is not vacuous.
  EXPECT_FALSE(a.IsSlow(0));
  EXPECT_FALSE(a.IsSlow(1));
  EXPECT_GT(differs, 0u);
  EXPECT_NEAR(static_cast<double>(a.slow_peers()) / 400.0, 0.25, 0.07);
}

TEST(StragglerTest, CoalitionScalingConsumesNoRngWithoutATail) {
  // The engine-side draw must leave the caller's stream untouched under
  // tail == kNone: coalition scaling is deterministic, so legacy query
  // streams replay bit-identically when only the coalition is configured.
  FaultPlan plan;
  plan.slow_fraction = 1.0;
  plan.slow_factor = 20.0;
  FaultInjector injector(plan, 5, /*num_peers=*/8);
  ASSERT_TRUE(injector.IsSlow(2));
  util::Rng drawn(77);
  util::Rng untouched(77);
  double d = injector.DrawTailDelay(2, drawn);
  // With no tail the coalition pays exactly slow_factor * tail_scale_ms.
  EXPECT_DOUBLE_EQ(d, 20.0 * plan.tail_scale_ms);
  EXPECT_EQ(drawn.Next64(), untouched.Next64());
}

TEST(StragglerTest, CoalitionScalesExpectedDelay) {
  FaultPlan plan;
  plan.tail = LatencyTail::kPareto;
  plan.tail_scale_ms = 10.0;
  plan.tail_alpha = 2.0;  // E[extra] = 10ms.
  plan.slow_fraction = 1.0;
  plan.slow_factor = 20.0;
  plan.crash_immune = {0};
  FaultInjector injector(plan, 7, /*num_peers=*/4);
  EXPECT_DOUBLE_EQ(injector.ExpectedTailDelayMs(0), 10.0);  // Immune: fast.
  EXPECT_DOUBLE_EQ(injector.ExpectedTailDelayMs(1), 20.0 * (10.0 + 10.0));
}

TEST(StragglerTest, TransportChargesTailDelayToLedger) {
  SimulatedNetwork plain = MakeRingNetwork(16, /*seed=*/3);
  SimulatedNetwork tailed = MakeRingNetwork(16, /*seed=*/3);
  FaultPlan plan;
  plan.tail = LatencyTail::kPareto;
  plan.tail_scale_ms = 10.0;
  plan.tail_alpha = 1.1;
  tailed.InstallFaultPlan(plan, 404);
  const size_t kSends = 500;
  for (size_t i = 0; i < kSends; ++i) {
    graph::NodeId from = static_cast<graph::NodeId>(i % 16);
    graph::NodeId to = static_cast<graph::NodeId>((i + 1) % 16);
    EXPECT_TRUE(plain.SendAlongEdge(MessageType::kWalker, from, to).ok());
    EXPECT_TRUE(tailed.SendAlongEdge(MessageType::kWalker, from, to).ok());
  }
  const FaultInjector* injector = tailed.fault_injector();
  ASSERT_NE(injector, nullptr);
  // Straggler delay is latency, never loss: everything delivered, every
  // extra millisecond accounted in both the injector and the cost ledger.
  EXPECT_EQ(injector->dropped(), 0u);
  EXPECT_GT(injector->tail_messages(), 0u);
  EXPECT_LE(injector->tail_messages(), kSends);
  EXPECT_GT(injector->tail_delay_ms(), 0.0);
  EXPECT_NEAR(tailed.cost_snapshot().latency_ms,
              plain.cost_snapshot().latency_ms + injector->tail_delay_ms(),
              1e-6);
  EXPECT_EQ(tailed.cost_snapshot().messages, plain.cost_snapshot().messages);
}

// Arena recycling under adverse conditions (docs/PERFORMANCE.md,
// "Zero-allocation message path"): every reply payload the async engine
// parks in its slot arena has exactly one arrival event holding its handle,
// and that event releases the slot whether the reply is accepted, deduped,
// or was doomed at send time — so once the query's event queue drains, no
// slot can still be live, no matter which peers crashed mid-flight.

core::AsyncParams ChurnyAsyncParams(const core::SystemCatalog& catalog) {
  core::AsyncParams params;
  params.engine.phase1_peers = 40;
  params.engine.tuples_per_peer = 10;
  params.engine.reply_retransmits = 2;
  params.engine.min_observation_quorum = 0.2;  // Survive heavy loss.
  params.walkers = 4;
  params.walk.jump = catalog.suggested_jump;
  params.walk.burn_in = catalog.suggested_burn_in;
  return params;
}

query::AggregateQuery SmallCountQuery() {
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.3;
  return q;
}

TEST(ArenaRecyclingTest, DrainedQueryLeavesNoLiveSlots) {
  auto tn = p2paqp::testing::MakeTestNetwork({});
  core::AsyncQuerySession session(&tn.network, tn.catalog,
                                  ChurnyAsyncParams(tn.catalog));
  util::Rng rng(11);
  auto report = session.Execute(SmallCountQuery(), 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ArenaStats& arena = session.reply_arena_stats();
  EXPECT_GT(arena.acquired, 0u);
  EXPECT_EQ(arena.live, 0u);
  EXPECT_EQ(arena.acquired, arena.released);
}

TEST(ArenaRecyclingTest, LossAndCrashesStillReleaseEverySlot) {
  auto tn = p2paqp::testing::MakeTestNetwork({});
  FaultPlan plan;
  plan.drop_probability = 0.25;
  plan.crash_probability = 0.01;
  plan.crash_immune = {0};  // Keep the sink up so phases can complete.
  tn.network.InstallFaultPlan(plan, 555);
  core::AsyncQuerySession session(&tn.network, tn.catalog,
                                  ChurnyAsyncParams(tn.catalog));
  util::Rng rng(12);
  auto report = session.Execute(SmallCountQuery(), 0, rng);
  // Heavy loss may refuse the answer below quorum; the recycling invariant
  // holds either way.
  (void)report;
  const ArenaStats& arena = session.reply_arena_stats();
  EXPECT_GT(arena.acquired, 0u);
  EXPECT_EQ(arena.live, 0u);
  EXPECT_EQ(arena.acquired, arena.released);
}

TEST(ArenaRecyclingTest, MidQueryChurnRecyclesAcrossQueries) {
  auto tn = p2paqp::testing::MakeTestNetwork({});
  ChurnParams churn_params;
  churn_params.leave_probability = 0.01;
  churn_params.rejoin_probability = 0.3;
  churn_params.pinned = {0};
  ChurnModel churn(churn_params, 777);
  core::AsyncParams params = ChurnyAsyncParams(tn.catalog);
  params.churn = &churn;
  params.churn_interval_ms = 120.0;
  core::AsyncQuerySession session(&tn.network, tn.catalog, params);
  uint64_t acquired_after_first = 0;
  for (int q = 0; q < 3; ++q) {
    util::Rng rng(100 + q);
    auto report = session.Execute(SmallCountQuery(), 0, rng);
    (void)report;  // Quorum may fail under churn; recycling must not.
    const ArenaStats& arena = session.reply_arena_stats();
    EXPECT_EQ(arena.live, 0u) << "query " << q;
    EXPECT_EQ(arena.acquired, arena.released) << "query " << q;
    if (q == 0) {
      acquired_after_first = arena.acquired;
      EXPECT_GT(acquired_after_first, 0u);
    }
  }
  // The arena's chunk spine kept being reused: capacity plateaued at the
  // first query's high-water mark instead of growing per query.
  const ArenaStats& arena = session.reply_arena_stats();
  EXPECT_GT(arena.acquired, acquired_after_first);
  EXPECT_LE(arena.high_water, arena.capacity);
}

}  // namespace
}  // namespace p2paqp::net

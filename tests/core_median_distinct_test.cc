// Median/quantile (Sec. 5.6) and distinct-value estimation tests.
#include <set>

#include <gtest/gtest.h>

#include "core/distinct.h"
#include "core/median.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

// Rank error of `estimate` as a fraction of N: |rank(est) - phi*N| / N.
double RankError(const net::SimulatedNetwork& network, double estimate,
                 double phi) {
  int64_t below = 0;
  int64_t total = 0;
  for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
    if (!network.IsAlive(p)) continue;
    for (const data::Tuple& t : network.peer(p).database().tuples()) {
      ++total;
      if (static_cast<double>(t.value) < estimate) ++below;
    }
  }
  double rank = static_cast<double>(below) / static_cast<double>(total);
  return std::fabs(rank - phi);
}

TEST(WeightedRankTest, FractionBasics) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> weights = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(WeightedRankFraction(values, weights, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(WeightedRankFraction(values, weights, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(WeightedRankFraction(values, weights, 99.0), 1.0);
}

TEST(WeightedRankTest, WeightsShiftRank) {
  std::vector<double> values = {1.0, 10.0};
  std::vector<double> weights = {3.0, 1.0};
  EXPECT_DOUBLE_EQ(WeightedRankFraction(values, weights, 5.0), 0.75);
}

TEST(MedianTest, EstimatesTrueMedianWithinRequiredRankError) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kMedian;
  q.required_error = 0.1;
  util::RunningStat errors;
  int violations = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    double err = RankError(tn.network, answer->estimate, 0.5);
    errors.Add(err);
    if (err > 0.1) ++violations;
  }
  // Per-run tails allowed (sigma-targeted sizing); the average must comply.
  EXPECT_LE(violations, 2);
  EXPECT_LE(errors.mean(), 0.1);
}

TEST(MedianTest, WorksOnPerfectlyClusteredData) {
  // CL = 0 is the hard case: local medians span the whole domain.
  TestNetworkParams net_params;
  net_params.cluster_level = 0.0;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 80;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kMedian;
  q.required_error = 0.1;
  util::Rng rng(7);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(RankError(tn.network, answer->estimate, 0.5), 0.12);
}

TEST(QuantileTest, ArbitraryPhi) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  for (double phi : {0.25, 0.75}) {
    query::AggregateQuery q;
    q.op = query::AggregateOp::kQuantile;
    q.quantile_phi = phi;
    q.required_error = 0.1;
    util::Rng rng(11);
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok());
    EXPECT_LT(RankError(tn.network, answer->estimate, phi), 0.12)
        << "phi " << phi;
  }
}

TEST(QuantileTest, RejectsDegeneratePhi) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  TwoPhaseEngine engine(&tn.network, tn.catalog, EngineParams{});
  query::AggregateQuery q;
  q.op = query::AggregateOp::kQuantile;
  q.quantile_phi = 0.0;
  util::Rng rng(13);
  EXPECT_FALSE(engine.Execute(q, 0, rng).ok());
}

TEST(ChaoTest, ExactWhenEverythingSeenTwice) {
  std::vector<data::Value> sample = {1, 1, 2, 2, 3, 3};
  EXPECT_DOUBLE_EQ(ChaoDistinctEstimate(sample), 3.0);
}

TEST(ChaoTest, SingletonsInflateEstimate) {
  std::vector<data::Value> sample = {1, 2, 3, 4, 5};  // All singletons.
  EXPECT_GT(ChaoDistinctEstimate(sample), 5.0);
}

TEST(ChaoTest, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(ChaoDistinctEstimate({}), 0.0);
}

TEST(ChaoTest, MixedFrequencies) {
  // d_obs = 3, f1 = 1 ({3}), f2 = 1 ({2}): 3 + 1/2 = 3.5.
  std::vector<data::Value> sample = {1, 1, 1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(ChaoDistinctEstimate(sample), 3.5);
}

TEST(DistinctTest, RecoversDomainSize) {
  // Domain [1, 100] well covered: the estimate lands near 100.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kDistinct;
  q.predicate = {1, 100};
  q.required_error = 0.1;
  util::Rng rng(17);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  // Ground truth: distinct values actually present.
  std::set<data::Value> truth;
  for (graph::NodeId p = 0; p < tn.network.num_peers(); ++p) {
    for (const data::Tuple& t : tn.network.peer(p).database().tuples()) {
      truth.insert(t.value);
    }
  }
  // Chao is a biased (typically upward with Zipf tails) richness
  // estimator; 30% is its realistic envelope at this sample size.
  EXPECT_NEAR(answer->estimate, static_cast<double>(truth.size()),
              static_cast<double>(truth.size()) * 0.3);
}

TEST(DistinctTest, SelectivePredicateShrinksEstimate) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kDistinct;
  q.predicate = {1, 10};
  q.required_error = 0.1;
  util::Rng rng(19);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LE(answer->estimate, 15.0);
  EXPECT_GE(answer->estimate, 5.0);
}

TEST(DistinctTest, ShipsRawTupleBytes) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 40;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery count_q;
  count_q.op = query::AggregateOp::kCount;
  count_q.predicate = {1, 100};
  count_q.required_error = 0.15;
  query::AggregateQuery distinct_q = count_q;
  distinct_q.op = query::AggregateOp::kDistinct;
  util::Rng rng_a(23);
  util::Rng rng_b(23);
  auto count_answer = engine.Execute(count_q, 0, rng_a);
  auto distinct_answer = engine.Execute(distinct_q, 0, rng_b);
  ASSERT_TRUE(count_answer.ok());
  ASSERT_TRUE(distinct_answer.ok());
  // Distinct must ship more bytes per visited peer (raw samples vs scalar).
  double count_bpp = static_cast<double>(count_answer->cost.bytes_shipped) /
                     static_cast<double>(count_answer->cost.peers_visited);
  double distinct_bpp =
      static_cast<double>(distinct_answer->cost.bytes_shipped) /
      static_cast<double>(distinct_answer->cost.peers_visited);
  EXPECT_GT(distinct_bpp, count_bpp + 20.0);
}

}  // namespace
}  // namespace p2paqp::core

// Fig. 7 at test scale: the random walk beats BFS/DFS on clustered data.
#include "core/baselines.h"

#include <gtest/gtest.h>

#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

TEST(BaselinesTest, KindNames) {
  EXPECT_STREQ(BaselineKindToString(BaselineKind::kBfs), "bfs");
  EXPECT_STREQ(BaselineKindToString(BaselineKind::kDfs), "dfs");
}

TEST(BaselinesTest, EnginesExecuteSuccessfully) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 40;
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  for (BaselineKind kind : {BaselineKind::kBfs, BaselineKind::kDfs}) {
    auto engine = MakeBaselineEngine(&tn.network, tn.catalog, params, kind);
    ASSERT_NE(engine, nullptr);
    util::Rng rng(1);
    auto answer = engine->Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok()) << BaselineKindToString(kind);
    EXPECT_GT(answer->estimate, 0.0);
  }
}

// The headline comparison: on strongly clustered data (two sub-graphs, small
// cut, CL = 0) the random walk's mean error stays near the requirement
// while BFS — which only sees the sink's data cluster — blows far past it.
TEST(BaselinesTest, RandomWalkBeatsBfsOnClusteredData) {
  TestNetworkParams net_params;
  net_params.cluster_level = 0.0;
  net_params.cut_edges = 50;  // Small cut: strong clustering.
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 60;
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  auto mean_error = [&](TwoPhaseEngine& engine) {
    util::RunningStat stat;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      util::Rng rng(seed);
      auto answer = engine.Execute(q, /*sink=*/0, rng);
      EXPECT_TRUE(answer.ok());
      stat.Add(p2paqp::testing::NormalizedCountError(tn.network,
                                                     answer->estimate, 1, 30));
    }
    return stat.mean();
  };

  TwoPhaseEngine walk_engine(&tn.network, tn.catalog, params);
  auto bfs_engine =
      MakeBaselineEngine(&tn.network, tn.catalog, params, BaselineKind::kBfs);
  double walk_error = mean_error(walk_engine);
  double bfs_error = mean_error(*bfs_engine);
  EXPECT_LT(walk_error, 0.1);
  EXPECT_GT(bfs_error, walk_error);
  // BFS sits inside one value cluster: with selectivity 30% and CL=0 its
  // neighborhood either massively over- or under-represents the predicate.
  EXPECT_GT(bfs_error, 0.15);
}

TEST(BaselinesTest, DfsErrorExceedsRandomWalkOnAverage) {
  TestNetworkParams net_params;
  net_params.cluster_level = 0.0;
  net_params.cut_edges = 50;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 60;
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  auto mean_error = [&](TwoPhaseEngine& engine) {
    util::RunningStat stat;
    for (uint64_t seed = 50; seed < 58; ++seed) {
      util::Rng rng(seed);
      auto answer = engine.Execute(q, 0, rng);
      EXPECT_TRUE(answer.ok());
      stat.Add(p2paqp::testing::NormalizedCountError(tn.network,
                                                     answer->estimate, 1, 30));
    }
    return stat.mean();
  };

  TwoPhaseEngine walk_engine(&tn.network, tn.catalog, params);
  auto dfs_engine =
      MakeBaselineEngine(&tn.network, tn.catalog, params, BaselineKind::kDfs);
  // DFS takes correlated consecutive peers; on clustered data its effective
  // sample is far smaller, so its average error is worse.
  EXPECT_GT(mean_error(*dfs_engine), mean_error(walk_engine));
}

TEST(BaselinesTest, BfsIsCheaperPerPeerButWrong) {
  // Sanity on the cost ledger: BFS flooding spends no walker hops.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 30;
  auto engine =
      MakeBaselineEngine(&tn.network, tn.catalog, params, BaselineKind::kBfs);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.2;
  util::Rng rng(3);
  tn.network.ResetCost();
  auto answer = engine->Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  // Flood requests traverse edges too, but far fewer than jump * peers.
  EXPECT_LT(answer->cost.walker_hops,
            tn.catalog.suggested_jump *
                (answer->phase1_peers + answer->phase2_peers));
}

}  // namespace
}  // namespace p2paqp::core

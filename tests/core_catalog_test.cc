// Tests for the preprocessed system catalog (offline + live refresh).
#include "core/catalog.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "net/network.h"
#include "topology/clustered.h"
#include "topology/power_law.h"

namespace p2paqp::core {
namespace {

TEST(CatalogTest, MakeCatalogCopiesGraphConstants) {
  util::Rng rng(1);
  auto graph = topology::MakeBarabasiAlbert(500, 4, rng);
  ASSERT_TRUE(graph.ok());
  SystemCatalog catalog = MakeCatalog(*graph, /*jump=*/7, /*burn_in=*/33);
  EXPECT_EQ(catalog.num_peers, 500u);
  EXPECT_EQ(catalog.num_edges, graph->num_edges());
  EXPECT_DOUBLE_EQ(catalog.average_degree, graph->average_degree());
  EXPECT_EQ(catalog.suggested_jump, 7u);
  EXPECT_EQ(catalog.suggested_burn_in, 33u);
  EXPECT_DOUBLE_EQ(catalog.total_degree_weight(),
                   2.0 * static_cast<double>(graph->num_edges()));
}

TEST(CatalogTest, PreprocessFillsSpectralFields) {
  util::Rng rng(2);
  auto graph = topology::MakeBarabasiAlbert(400, 4, rng);
  ASSERT_TRUE(graph.ok());
  SystemCatalog catalog = Preprocess(*graph, 0.05, rng);
  EXPECT_GT(catalog.lambda2, 0.0);
  EXPECT_LT(catalog.lambda2, 1.0);
  EXPECT_GE(catalog.suggested_jump, 1u);
  EXPECT_GE(catalog.suggested_burn_in, catalog.suggested_jump);
  EXPECT_NE(catalog.ToString().find("lambda2"), std::string::npos);
}

TEST(CatalogTest, PreprocessSuggestsLongerWalksForSmallCuts) {
  util::Rng rng(3);
  topology::ClusteredParams tight;
  tight.num_nodes = 400;
  tight.num_edges = 2400;
  tight.num_subgraphs = 2;
  tight.cut_edges = 2;
  auto tight_topo = topology::MakeClustered(tight, rng);
  ASSERT_TRUE(tight_topo.ok());
  auto expander = topology::MakeBarabasiAlbert(400, 6, rng);
  ASSERT_TRUE(expander.ok());
  util::Rng rng2(4);
  SystemCatalog tight_catalog = Preprocess(tight_topo->graph, 0.05, rng2);
  SystemCatalog loose_catalog = Preprocess(*expander, 0.05, rng2);
  EXPECT_GT(tight_catalog.suggested_jump, loose_catalog.suggested_jump);
  EXPECT_GT(tight_catalog.suggested_burn_in, loose_catalog.suggested_burn_in);
}

TEST(CatalogTest, LiveCatalogTracksDepartures) {
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 0);
  auto network = net::SimulatedNetwork::Make(builder.Build(), {},
                                             net::NetworkParams{}, 5);
  ASSERT_TRUE(network.ok());

  SystemCatalog full = MakeLiveCatalog(*network, 10, 20);
  EXPECT_EQ(full.num_peers, 4u);
  EXPECT_EQ(full.num_edges, 4u);
  EXPECT_DOUBLE_EQ(full.average_degree, 2.0);

  network->SetAlive(0, false);
  SystemCatalog live = MakeLiveCatalog(*network, 10, 20);
  EXPECT_EQ(live.num_peers, 3u);
  // Edges 0-1 and 3-0 died with peer 0.
  EXPECT_EQ(live.num_edges, 2u);
  EXPECT_EQ(live.suggested_jump, 10u);
  EXPECT_EQ(live.suggested_burn_in, 20u);
}

TEST(CatalogTest, LiveCatalogOnEmptyNetworkIsZero) {
  graph::GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  auto network = net::SimulatedNetwork::Make(builder.Build(), {},
                                             net::NetworkParams{}, 6);
  ASSERT_TRUE(network.ok());
  network->SetAlive(0, false);
  network->SetAlive(1, false);
  SystemCatalog live = MakeLiveCatalog(*network, 1, 1);
  EXPECT_EQ(live.num_peers, 0u);
  EXPECT_EQ(live.num_edges, 0u);
  EXPECT_DOUBLE_EQ(live.average_degree, 0.0);
}

}  // namespace
}  // namespace p2paqp::core

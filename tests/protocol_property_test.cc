// Property-based protocol chaos harness (see docs/TESTING.md, "Property
// layer"): generated plans must pass every invariant oracle and the
// black-box history checker; seeded bugs must be caught AND shrink to tiny
// reproducible counterexamples; replay must be bit-identical.
//
// Quick tier runs P2PAQP_PROP_QUICK_PLANS generated plans; the scheduled
// long-fuzz CI job sets P2PAQP_PROP_MODE=long for a 10x budget.
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/churn.h"
#include "net/history.h"
#include "net/network.h"
#include "topology/factory.h"
#include "util/bug_injection.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "verify/protocol/chaos_plan.h"
#include "verify/protocol/history_checker.h"
#include "verify/protocol/runner.h"
#include "verify/protocol/shrink.h"

namespace p2paqp {
namespace {

using verify::ChaosEngineKind;
using verify::ChaosPlan;
using verify::ChaosRunReport;
using verify::GenerateChaosPlan;
using verify::ParseChaosPlan;
using verify::PlanComplexity;
using verify::RunChaosPlan;
using verify::SerializeChaosPlan;
using verify::ShrinkChaosPlan;
using verify::ShrinkOutcome;

bool LongMode() {
  const char* mode = std::getenv("P2PAQP_PROP_MODE");
  return mode != nullptr && std::strcmp(mode, "long") == 0;
}

size_t PlanBudget() { return LongMode() ? 2000 : 200; }

std::string FailureDump(const ChaosRunReport& report) {
  std::string out = "plan: " + SerializeChaosPlan(report.plan);
  for (const std::string& v : report.violations) out += "\n  " + v;
  return out;
}

// --- Generation & serialization -------------------------------------------

TEST(ChaosPlanTest, SerializationRoundTripsExactly) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    ChaosPlan plan = GenerateChaosPlan(seed);
    std::string line = SerializeChaosPlan(plan);
    auto parsed = ParseChaosPlan(line);
    ASSERT_TRUE(parsed.ok()) << line << " : " << parsed.status().message();
    EXPECT_EQ(SerializeChaosPlan(*parsed), line);
    EXPECT_EQ(parsed->seed, plan.seed);
    EXPECT_EQ(parsed->scheduled_crashes, plan.scheduled_crashes);
    EXPECT_EQ(parsed->behavior_mask, plan.behavior_mask);
  }
}

TEST(ChaosPlanTest, GenerationIsDeterministic) {
  for (uint64_t seed : {1ULL, 77ULL, 0xDEADBEEFULL}) {
    EXPECT_EQ(SerializeChaosPlan(GenerateChaosPlan(seed)),
              SerializeChaosPlan(GenerateChaosPlan(seed)));
  }
}

TEST(ChaosPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseChaosPlan("").ok());
  EXPECT_FALSE(ParseChaosPlan("seed=banana").ok());
  EXPECT_FALSE(ParseChaosPlan("seed=1 peers=0").ok());
}

TEST(ChaosPlanTest, GeneratorCoversEveryEngineAndStressor) {
  std::set<uint32_t> engines;
  bool saw_faults = false, saw_churn = false, saw_adversary = false;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    ChaosPlan plan = GenerateChaosPlan(seed);
    engines.insert(static_cast<uint32_t>(plan.engine));
    saw_faults |= plan.faults_enabled();
    saw_churn |= plan.churn_enabled();
    saw_adversary |= plan.adversary_enabled();
  }
  EXPECT_EQ(engines.size(), 4u);
  EXPECT_TRUE(saw_faults);
  EXPECT_TRUE(saw_churn);
  EXPECT_TRUE(saw_adversary);
}

// --- The main property: generated plans pass every oracle -----------------

TEST(ProtocolPropertyTest, GeneratedPlansPassAllOracles) {
  const size_t budget = PlanBudget();
  // Each plan is an independent serial simulation; the sweep itself is safe
  // to parallelize (runner state is all run-local).
  std::vector<ChaosRunReport> reports = util::ParallelMap(
      budget, [](size_t i) { return RunChaosPlan(GenerateChaosPlan(i + 1)); });
  size_t failed_queries = 0;
  for (const ChaosRunReport& report : reports) {
    EXPECT_TRUE(report.violations.empty()) << FailureDump(report);
    failed_queries += report.answers_failed;
  }
  // Sanity: the sweep actually stresses the protocol — some queries must
  // fail under faults (else the fault knobs are dead) while the oracles
  // still hold.
  EXPECT_GT(failed_queries, 0u);
}

TEST(ProtocolPropertyTest, ReplayIsBitIdentical) {
  // Digest equality across (a) a re-run in the same process and (b) a run
  // inside a parallel region vs. a serial one: the runner must be a pure
  // function of the plan, independent of P2PAQP_THREADS.
  std::vector<uint64_t> seeds = {3, 8, 15, 24, 55, 101};
  std::vector<ChaosRunReport> parallel_reports = util::ParallelMap(
      seeds.size(),
      [&](size_t i) { return RunChaosPlan(GenerateChaosPlan(seeds[i])); });
  for (size_t i = 0; i < seeds.size(); ++i) {
    ChaosRunReport serial = RunChaosPlan(GenerateChaosPlan(seeds[i]));
    EXPECT_EQ(serial.digest, parallel_reports[i].digest)
        << "seed " << seeds[i] << " digest differs across execution contexts";
    EXPECT_EQ(serial.history_events, parallel_reports[i].history_events);
  }
}

// --- Seeded-bug detection + shrinking -------------------------------------

// A replay-heavy adversary plan on the synchronous engine: with reply dedup
// disabled the sink counts duplicated replies, which the history checker
// sees as a tag accepted twice.
ChaosPlan DedupBugPlan() {
  ChaosPlan plan;
  plan.seed = 4242;
  plan.num_peers = 64;
  plan.avg_degree = 6;
  plan.tuples_per_peer = 20;
  plan.engine = ChaosEngineKind::kTwoPhase;
  plan.num_queries = 2;
  plan.num_batches = 2;
  plan.phase1_peers = 16;
  plan.quorum_pct = 25;
  plan.retransmits = 2;
  plan.drop_pm = 50;
  plan.churn_leave_pm = 20;
  plan.churn_rejoin_pm = 300;
  plan.churn_steps = 1;
  plan.adversary_pm = 400;
  plan.behavior_mask = 1u << 5;  // kReplay.
  return plan;
}

TEST(SeededBugTest, DisabledReplyDedupIsCaughtAndShrinks) {
  util::ScopedInjectedBug armed(util::InjectedBug::kDisableReplyDedup);
  ChaosPlan plan = DedupBugPlan();
  ChaosRunReport report = RunChaosPlan(plan);
  ASSERT_TRUE(report.failed())
      << "armed dedup bug not detected: " << SerializeChaosPlan(plan);
  bool dedup_violation = false;
  for (const std::string& v : report.violations) {
    dedup_violation |= v.find("accepted more than once") != std::string::npos;
  }
  EXPECT_TRUE(dedup_violation) << FailureDump(report);

  // Shrink to a minimal still-failing counterexample (the bug stays armed
  // through the predicate runs).
  ShrinkOutcome shrunk = ShrinkChaosPlan(plan);
  EXPECT_LE(PlanComplexity(shrunk.plan), 5u)
      << "shrunk counterexample too complex: "
      << SerializeChaosPlan(shrunk.plan);
  EXPECT_LT(PlanComplexity(shrunk.plan), PlanComplexity(plan));

  // The one-line form reproduces the identical failing run.
  std::string line = SerializeChaosPlan(shrunk.plan);
  auto parsed = ParseChaosPlan(line);
  ASSERT_TRUE(parsed.ok());
  ChaosRunReport replay1 = RunChaosPlan(*parsed);
  ChaosRunReport replay2 = RunChaosPlan(*parsed);
  EXPECT_TRUE(replay1.failed()) << line;
  EXPECT_EQ(replay1.digest, replay2.digest);
  EXPECT_EQ(replay1.violations, replay2.violations);
}

TEST(SeededBugTest, SkippedQuorumCheckIsCaught) {
  // Loss so heavy the engine must refuse the answer; with the quorum check
  // skipped it answers anyway, and the per-answer oracle flags the
  // below-quorum delivery count.
  ChaosPlan plan;
  plan.seed = 9001;
  plan.engine = ChaosEngineKind::kTwoPhase;
  plan.num_queries = 2;
  plan.phase1_peers = 16;
  plan.quorum_pct = 40;
  plan.retransmits = 0;
  plan.drop_pm = 700;

  ChaosRunReport honest = RunChaosPlan(plan);
  EXPECT_TRUE(honest.violations.empty()) << FailureDump(honest);

  util::ScopedInjectedBug armed(util::InjectedBug::kSkipQuorumCheck);
  ChaosRunReport buggy = RunChaosPlan(plan);
  ASSERT_TRUE(buggy.failed()) << "armed quorum bug not detected";
  bool quorum_violation = false;
  for (const std::string& v : buggy.violations) {
    quorum_violation |= v.find("below observation quorum") != std::string::npos;
  }
  EXPECT_TRUE(quorum_violation) << FailureDump(buggy);
}

TEST(SeededBugTest, DoubleCountedFrameHitsAreCaught) {
  // Two scheduler batches over a reused frame: batch 2's legitimate hits
  // exceed half the carry, so double counting breaks hits <= carry.
  ChaosPlan plan;
  plan.seed = 512;
  plan.engine = ChaosEngineKind::kScheduler;
  plan.num_queries = 3;
  plan.num_batches = 2;
  plan.phase1_peers = 24;
  plan.frame_ttl = 4;
  plan.reuse_frame = true;

  ChaosRunReport honest = RunChaosPlan(plan);
  EXPECT_TRUE(honest.violations.empty()) << FailureDump(honest);

  util::ScopedInjectedBug armed(util::InjectedBug::kDoubleCountFrameHits);
  ChaosRunReport buggy = RunChaosPlan(plan);
  ASSERT_TRUE(buggy.failed()) << "armed frame-hit bug not detected";
  bool frame_violation = false;
  for (const std::string& v : buggy.violations) {
    frame_violation |= v.find("frame hits exceed") != std::string::npos;
  }
  EXPECT_TRUE(frame_violation) << FailureDump(buggy);
}

TEST(SeededBugTest, ShrinkIsDeterministic) {
  util::ScopedInjectedBug armed(util::InjectedBug::kDisableReplyDedup);
  ChaosPlan plan = DedupBugPlan();
  ShrinkOutcome a = ShrinkChaosPlan(plan);
  ShrinkOutcome b = ShrinkChaosPlan(plan);
  EXPECT_EQ(SerializeChaosPlan(a.plan), SerializeChaosPlan(b.plan));
  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.accepted, b.accepted);
}

// --- Satellite regressions -------------------------------------------------

// Death-and-rebirth during an in-flight async walk: a reborn peer must never
// resume the walker session that died with its previous incarnation. The
// history checker's walker-continuity rule flags any regression black-box.
TEST(ProtocolRegressionTest, AsyncChurnRejoinCannotResumeStaleSession) {
  ChaosPlan plan;
  plan.seed = 777;
  plan.num_peers = 96;
  plan.engine = ChaosEngineKind::kAsync;
  plan.num_queries = 3;
  plan.num_batches = 2;
  plan.phase1_peers = 16;
  plan.retransmits = 2;
  plan.crash_pm = 12;
  plan.churn_leave_pm = 150;   // Heavy mid-query churn...
  plan.churn_rejoin_pm = 600;  // ...with fast rebirth.
  plan.churn_steps = 2;
  ChaosRunReport report = RunChaosPlan(plan);
  EXPECT_TRUE(report.violations.empty()) << FailureDump(report);
  EXPECT_GT(report.history_events, 0u);
}

TEST(ProtocolRegressionTest, IncarnationBumpsOnRebirthOnly) {
  util::Rng rng(7);
  topology::TopologyConfig config;
  config.kind = topology::TopologyKind::kErdosRenyi;
  config.num_nodes = 16;
  config.num_edges = 48;
  auto topo = topology::MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok());
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph), {},
                                             net::NetworkParams{}, 11);
  ASSERT_TRUE(network.ok());
  uint64_t base = network->peer(3).incarnation();
  network->SetAlive(3, true);  // Already alive: no bump.
  EXPECT_EQ(network->peer(3).incarnation(), base);
  network->SetAlive(3, false);
  EXPECT_EQ(network->peer(3).incarnation(), base);
  network->SetAlive(3, true);  // Rebirth: exactly one bump.
  EXPECT_EQ(network->peer(3).incarnation(), base + 1);
}

// The reply-causality rule: a Pong or QueryHit may only leave a peer the
// paired request reached in its current incarnation. Hand-built histories
// pin the rule from both sides.
TEST(ProtocolRegressionTest, ReplyWithoutRequestIsFlagged) {
  net::HistoryRecorder history;
  // Peer 5 emits a QueryHit although no kQuery was ever delivered to it.
  history.Record(net::HistoryEventKind::kSend, net::MessageType::kQueryHit, 5,
                 0);
  history.Record(net::HistoryEventKind::kDeliver, net::MessageType::kQueryHit,
                 5, 0);
  auto violations = verify::CheckHistory(history.events());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("no query reached"), std::string::npos);
}

TEST(ProtocolRegressionTest, ReplyAfterRebirthIsFlagged) {
  net::HistoryRecorder history;
  // Peer 7 hears a Ping, dies, rejoins — its pre-death license to Pong died
  // with the old incarnation.
  history.Record(net::HistoryEventKind::kSend, net::MessageType::kPing, 0, 7);
  history.Record(net::HistoryEventKind::kDeliver, net::MessageType::kPing, 0,
                 7);
  history.Record(net::HistoryEventKind::kPeerDown, net::MessageType::kPing, 7,
                 7);
  history.Record(net::HistoryEventKind::kPeerUp, net::MessageType::kPing, 7,
                 7);
  history.Record(net::HistoryEventKind::kSend, net::MessageType::kPong, 7, 0);
  history.Record(net::HistoryEventKind::kDeliver, net::MessageType::kPong, 7,
                 0);
  auto violations = verify::CheckHistory(history.events());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("no ping reached"), std::string::npos);
}

TEST(ProtocolRegressionTest, RequestThenReplyIsClean) {
  net::HistoryRecorder history;
  history.Record(net::HistoryEventKind::kSend, net::MessageType::kQuery, 0, 5);
  history.Record(net::HistoryEventKind::kDeliver, net::MessageType::kQuery, 0,
                 5);
  history.Record(net::HistoryEventKind::kSend, net::MessageType::kQueryHit, 5,
                 0);
  history.Record(net::HistoryEventKind::kDeliver, net::MessageType::kQueryHit,
                 5, 0);
  auto violations = verify::CheckHistory(history.events());
  EXPECT_TRUE(violations.empty()) << violations.front();
}

TEST(ProtocolRegressionTest, TransportConservesUnderFaultsAndRecordsHistory) {
  util::Rng rng(19);
  topology::TopologyConfig config;
  config.kind = topology::TopologyKind::kErdosRenyi;
  config.num_nodes = 32;
  config.num_edges = 128;
  auto topo = topology::MakeTopology(config, rng);
  ASSERT_TRUE(topo.ok());
  auto network = net::SimulatedNetwork::Make(std::move(topo->graph), {},
                                             net::NetworkParams{}, 23);
  ASSERT_TRUE(network.ok());
  net::HistoryRecorder history;
  network->set_history(&history);
  net::FaultPlan faults;
  faults.drop_probability = 0.3;
  faults.crash_probability = 0.05;
  faults.crash_immune = {0};
  network->InstallFaultPlan(faults, 31);
  for (graph::NodeId n = 0; n < 32; ++n) {
    for (graph::NodeId m : network->graph().neighbors(n)) {
      (void)network->SendAlongEdge(net::MessageType::kWalker, n, m);
      (void)network->SendDirect(net::MessageType::kAggregateReply, m, 0, 16);
    }
  }
  network->VerifyCostConservation();
  const net::CostSnapshot& cost = network->cost_snapshot();
  EXPECT_EQ(history.Count(net::HistoryEventKind::kSend), cost.messages);
  EXPECT_EQ(history.Count(net::HistoryEventKind::kDeliver),
            cost.messages_delivered);
  EXPECT_EQ(history.Count(net::HistoryEventKind::kDrop),
            cost.messages_dropped);
  EXPECT_GT(cost.messages_dropped, 0u);  // Faults actually fired.
  auto violations = verify::CheckHistory(history.events());
  EXPECT_TRUE(violations.empty()) << violations.front();
  network->set_history(nullptr);
}

}  // namespace
}  // namespace p2paqp

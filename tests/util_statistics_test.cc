#include "util/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace p2paqp::util {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
}

TEST(RunningStatTest, MatchesBatchFormulas) {
  RunningStat stat;
  std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) stat.Add(v);
  EXPECT_EQ(stat.count(), values.size());
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat stat;
  stat.Add(42.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 42.0);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(-90.0, -100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 100.0), 0.0);
}

TEST(RelativeErrorTest, ZeroTruthReportsMagnitude) {
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 5.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> values = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Median(values), 25.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.3), 7.0);
}

TEST(WeightedMedianTest, EqualWeightsMatchPlainMedian) {
  std::vector<double> values = {5.0, 1.0, 9.0, 3.0, 7.0};
  std::vector<double> weights(5, 1.0);
  EXPECT_DOUBLE_EQ(WeightedMedian(values, weights), 5.0);
}

TEST(WeightedMedianTest, DominantWeightWins) {
  std::vector<double> values = {1.0, 2.0, 100.0};
  std::vector<double> weights = {0.1, 0.1, 10.0};
  EXPECT_DOUBLE_EQ(WeightedMedian(values, weights), 100.0);
}

TEST(WeightedMedianTest, IgnoresZeroWeightEntries) {
  std::vector<double> values = {1.0, 50.0, 2.0, 3.0};
  std::vector<double> weights = {1.0, 0.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(WeightedMedian(values, weights), 2.0);
}

TEST(WeightedQuantileTest, MonotoneInPhi) {
  std::vector<double> values = {4.0, 8.0, 15.0, 16.0, 23.0, 42.0};
  std::vector<double> weights = {1.0, 2.0, 1.0, 3.0, 1.0, 2.0};
  double prev = -1e300;
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    double q = WeightedQuantile(values, weights, phi);
    EXPECT_GE(q, prev) << "phi " << phi;
    prev = q;
  }
}

TEST(WeightedQuantileTest, MatchesExpandedMultiset) {
  // Integer weights == multiset repetition.
  std::vector<double> values = {1.0, 2.0, 3.0};
  std::vector<double> weights = {1.0, 2.0, 1.0};
  // Expanded multiset {1, 2, 2, 3}: half the weight is reached at 2.
  EXPECT_DOUBLE_EQ(WeightedMedian(values, weights), 2.0);
}

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.999), 3.090232306, 1e-5);
  EXPECT_NEAR(InverseNormalCdf(0.001), -3.090232306, 1e-5);
}

TEST(InverseNormalCdfTest, SymmetricAboutHalf) {
  for (double p : {0.01, 0.1, 0.3, 0.45}) {
    EXPECT_NEAR(InverseNormalCdf(p), -InverseNormalCdf(1.0 - p), 1e-7);
  }
}

TEST(ConfidenceHalfWidthTest, ShrinksWithSqrtN) {
  double w100 = ConfidenceHalfWidth(10.0, 100, 0.95);
  double w400 = ConfidenceHalfWidth(10.0, 400, 0.95);
  EXPECT_NEAR(w100 / w400, 2.0, 1e-9);
  EXPECT_NEAR(w100, 1.96 * 10.0 / 10.0, 0.01);
}

TEST(ConfidenceHalfWidthTest, WiderForHigherConfidence) {
  EXPECT_LT(ConfidenceHalfWidth(1.0, 50, 0.90),
            ConfidenceHalfWidth(1.0, 50, 0.99));
}

TEST(ConfidenceHalfWidthTest, ZeroSamplesGiveZero) {
  EXPECT_DOUBLE_EQ(ConfidenceHalfWidth(5.0, 0, 0.95), 0.0);
}

// Property sweep: weighted quantile of i.i.d. uniform data approaches phi.
class WeightedQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(WeightedQuantileSweep, ApproachesPopulationQuantile) {
  double phi = GetParam();
  Rng rng(99);
  std::vector<double> values;
  std::vector<double> weights;
  for (int i = 0; i < 20000; ++i) {
    values.push_back(rng.UniformDouble(0.0, 1.0));
    weights.push_back(1.0);
  }
  EXPECT_NEAR(WeightedQuantile(values, weights, phi), phi, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Phis, WeightedQuantileSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace p2paqp::util

#include "util/zipf.h"

#include <vector>

#include <gtest/gtest.h>

namespace p2paqp::util {
namespace {

TEST(ZipfTest, RejectsEmptyRange) {
  EXPECT_FALSE(ZipfGenerator::Make(0, 1.0).ok());
}

TEST(ZipfTest, RejectsNegativeSkew) {
  EXPECT_FALSE(ZipfGenerator::Make(100, -0.5).ok());
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  for (double skew : {0.0, 0.2, 1.0, 2.0}) {
    auto zipf = ZipfGenerator::Make(100, skew);
    ASSERT_TRUE(zipf.ok());
    double total = 0.0;
    for (uint32_t v = 1; v <= 100; ++v) total += zipf->Probability(v);
    EXPECT_NEAR(total, 1.0, 1e-9) << "skew " << skew;
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  auto zipf = ZipfGenerator::Make(50, 0.0);
  ASSERT_TRUE(zipf.ok());
  for (uint32_t v = 1; v <= 50; ++v) {
    EXPECT_NEAR(zipf->Probability(v), 0.02, 1e-9);
  }
}

TEST(ZipfTest, ProbabilityDecreasesWithValue) {
  auto zipf = ZipfGenerator::Make(100, 1.0);
  ASSERT_TRUE(zipf.ok());
  for (uint32_t v = 1; v < 100; ++v) {
    EXPECT_GT(zipf->Probability(v), zipf->Probability(v + 1));
  }
}

TEST(ZipfTest, HigherSkewConcentratesOnHead) {
  auto mild = ZipfGenerator::Make(100, 0.5);
  auto heavy = ZipfGenerator::Make(100, 2.0);
  ASSERT_TRUE(mild.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_GT(heavy->Probability(1), mild->Probability(1));
  EXPECT_LT(heavy->Probability(100), mild->Probability(100));
}

TEST(ZipfTest, SamplesStayInRange) {
  auto zipf = ZipfGenerator::Make(10, 1.2);
  ASSERT_TRUE(zipf.ok());
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    uint32_t v = zipf->Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 10u);
  }
}

TEST(ZipfTest, EmpiricalFrequenciesMatchProbabilities) {
  auto zipf = ZipfGenerator::Make(20, 1.0);
  ASSERT_TRUE(zipf.ok());
  Rng rng(11);
  std::vector<int> counts(21, 0);
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[zipf->Sample(rng)];
  for (uint32_t v = 1; v <= 20; ++v) {
    double empirical = static_cast<double>(counts[v]) / kTrials;
    EXPECT_NEAR(empirical, zipf->Probability(v), 0.01) << "value " << v;
  }
}

TEST(ZipfTest, MeanMatchesEmpiricalMean) {
  auto zipf = ZipfGenerator::Make(100, 0.8);
  ASSERT_TRUE(zipf.ok());
  Rng rng(13);
  double sum = 0.0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(zipf->Sample(rng));
  }
  EXPECT_NEAR(sum / kTrials, zipf->Mean(), zipf->Mean() * 0.02);
}

TEST(ZipfTest, SingleValueDomain) {
  auto zipf = ZipfGenerator::Make(1, 1.5);
  ASSERT_TRUE(zipf.ok());
  Rng rng(17);
  EXPECT_EQ(zipf->Sample(rng), 1u);
  EXPECT_DOUBLE_EQ(zipf->Probability(1), 1.0);
  EXPECT_DOUBLE_EQ(zipf->Mean(), 1.0);
}

// Parameterized sweep: the CDF must be valid for every (n, skew) corner.
class ZipfSweepTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(ZipfSweepTest, CdfIsMonotoneAndComplete) {
  auto [n, skew] = GetParam();
  auto zipf = ZipfGenerator::Make(n, skew);
  ASSERT_TRUE(zipf.ok());
  double acc = 0.0;
  for (uint32_t v = 1; v <= n; ++v) {
    double p = zipf->Probability(v);
    EXPECT_GE(p, 0.0);
    acc += p;
  }
  EXPECT_NEAR(acc, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, ZipfSweepTest,
    ::testing::Combine(::testing::Values(1u, 2u, 10u, 100u, 1000u),
                       ::testing::Values(0.0, 0.2, 0.5, 1.0, 1.5, 2.0)));

}  // namespace
}  // namespace p2paqp::util

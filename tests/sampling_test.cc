#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.h"
#include "graph/builder.h"
#include "net/fault.h"
#include "sampling/convergence.h"
#include "sampling/random_walk.h"
#include "sampling/samplers.h"
#include "test_common.h"
#include "topology/clustered.h"
#include "topology/power_law.h"

namespace p2paqp::sampling {
namespace {

// Kish design effect for chi-square tests fed with serially correlated walk
// selections: effective sample size shrinks by (1+rho)/(1-rho), padded 25%
// for estimation error in rho itself (see tests/statistical/stat_walk_test.cc
// for the same correction at scale).
double WalkDesignEffect(double rho) {
  rho = std::max(0.0, std::min(rho, 0.9));
  return std::max(1.0, 1.25 * (1.0 + rho) / (1.0 - rho));
}

net::SimulatedNetwork MakeNetwork(graph::Graph graph, uint64_t seed = 1) {
  auto network =
      net::SimulatedNetwork::Make(std::move(graph), {}, net::NetworkParams{},
                                  seed);
  EXPECT_TRUE(network.ok());
  return std::move(*network);
}

net::SimulatedNetwork MakeBaNetwork(size_t n, size_t m, uint64_t seed = 1) {
  util::Rng rng(seed);
  auto graph = topology::MakeBarabasiAlbert(n, m, rng);
  EXPECT_TRUE(graph.ok());
  return MakeNetwork(std::move(*graph), seed);
}

TEST(RandomWalkTest, CollectsRequestedSelections) {
  net::SimulatedNetwork network = MakeBaNetwork(300, 3);
  RandomWalk walk(&network, WalkParams{.jump = 5});
  util::Rng rng(2);
  auto visits = walk.Collect(0, 40, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 40u);
  for (const PeerVisit& v : *visits) {
    EXPECT_LT(v.peer, 300u);
    EXPECT_EQ(v.degree, network.graph().degree(v.peer));
  }
}

TEST(RandomWalkTest, HopAccountingMatchesJumpTimesSelections) {
  net::SimulatedNetwork network = MakeBaNetwork(300, 3);
  RandomWalk walk(&network, WalkParams{.jump = 7});
  util::Rng rng(3);
  network.ResetCost();
  auto visits = walk.Collect(0, 20, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(network.cost_snapshot().walker_hops, 7u * 20u);
}

TEST(RandomWalkTest, BurnInAddsHopsBeforeFirstSelection) {
  net::SimulatedNetwork network = MakeBaNetwork(300, 3);
  RandomWalk walk(&network, WalkParams{.jump = 1, .burn_in = 50});
  util::Rng rng(4);
  network.ResetCost();
  auto visits = walk.Collect(0, 10, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(network.cost_snapshot().walker_hops, 60u);
}

TEST(RandomWalkTest, FailsOnDeadSink) {
  net::SimulatedNetwork network = MakeBaNetwork(100, 3);
  network.SetAlive(0, false);
  RandomWalk walk(&network, WalkParams{});
  util::Rng rng(5);
  EXPECT_FALSE(walk.Collect(0, 5, rng).ok());
}

TEST(RandomWalkTest, RestartsWhenStranded) {
  // Star: kill all leaves but one; the walk must still make progress by
  // restarting from the sink when it strands on the live leaf... the live
  // leaf's only neighbor is the hub, so it never strands. Instead, strand by
  // making an isolated live pocket unreachable: path 0-1-2 with 2's far side
  // dead.
  graph::GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  net::SimulatedNetwork network = MakeNetwork(builder.Build());
  network.SetAlive(3, false);
  RandomWalk walk(&network, WalkParams{.jump = 2});
  util::Rng rng(6);
  auto visits = walk.Collect(0, 10, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 10u);
  for (const PeerVisit& v : *visits) EXPECT_NE(v.peer, 3u);
}

TEST(RandomWalkTest, HopBudgetGuardsInfiniteWalks) {
  // Sink whose only neighbor is dead: every step fails, the sink restart
  // loop burns hops until the budget trips.
  graph::GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  net::SimulatedNetwork network = MakeNetwork(builder.Build());
  network.SetAlive(1, false);
  RandomWalk walk(&network, WalkParams{.jump = 1, .max_hops = 100});
  util::Rng rng(7);
  auto visits = walk.Collect(0, 5, rng);
  EXPECT_FALSE(visits.ok());
}

// The statistical heart: selection frequency must track the stationary
// distribution deg(p)/2|E|, chi-square tested at the harness' 5.5-sigma
// threshold with a design-effect correction for the walk's serial
// correlation.
TEST(RandomWalkTest, SelectionFrequencyMatchesStationaryDistribution) {
  // Lollipop-ish graph with strongly uneven degrees.
  graph::GraphBuilder builder(6);
  // Clique on {0,1,2,3} plus path 3-4-5.
  for (graph::NodeId a = 0; a < 4; ++a) {
    for (graph::NodeId b = a + 1; b < 4; ++b) builder.AddEdge(a, b);
  }
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  net::SimulatedNetwork network = MakeNetwork(builder.Build());
  RandomWalk walk(&network, WalkParams{.jump = 4, .burn_in = 30});
  util::Rng rng(8);
  const size_t kSelections = 60000;
  auto visits = walk.Collect(0, kSelections, rng);
  ASSERT_TRUE(visits.ok());
  std::vector<double> observed(6, 0.0);
  for (const PeerVisit& v : *visits) observed[v.peer] += 1.0;
  std::vector<double> expected(6, 0.0);
  for (graph::NodeId p = 0; p < 6; ++p) {
    expected[p] = network.graph().StationaryProbability(p) *
                  static_cast<double>(kSelections);
  }
  util::Rng rho_rng(88);
  double rho =
      MeasureDegreeAutocorrelation(network.graph(), 4, 20000, rho_rng);
  EXPECT_STAT_PASS(verify::ChiSquareGofTest(observed, expected,
                                            verify::DefaultAlpha(),
                                            /*min_expected=*/8.0,
                                            WalkDesignEffect(rho)));
}

TEST(RandomWalkTest, MetropolisHastingsIsUniform) {
  graph::GraphBuilder builder(6);
  for (graph::NodeId a = 0; a < 4; ++a) {
    for (graph::NodeId b = a + 1; b < 4; ++b) builder.AddEdge(a, b);
  }
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  net::SimulatedNetwork network = MakeNetwork(builder.Build());
  RandomWalk walk(&network,
                  WalkParams{.jump = 6,
                             .burn_in = 30,
                             .variant = WalkVariant::kMetropolisHastings});
  util::Rng rng(9);
  const size_t kSelections = 60000;
  auto visits = walk.Collect(0, kSelections, rng);
  ASSERT_TRUE(visits.ok());
  std::vector<double> observed(6, 0.0);
  for (const PeerVisit& v : *visits) observed[v.peer] += 1.0;
  std::vector<double> expected(6, static_cast<double>(kSelections) / 6.0);
  // The MH proposal chain mixes no faster than the simple walk, so the
  // simple-walk autocorrelation (doubled, as in stat_walk_test.cc) is the
  // conservative design effect.
  util::Rng rho_rng(99);
  double rho =
      MeasureDegreeAutocorrelation(network.graph(), 6, 20000, rho_rng);
  EXPECT_STAT_PASS(verify::ChiSquareGofTest(observed, expected,
                                            verify::DefaultAlpha(),
                                            /*min_expected=*/8.0,
                                            2.0 * WalkDesignEffect(rho)));
  EXPECT_DOUBLE_EQ(walk.StationaryWeight(0), 1.0);
}

TEST(RandomWalkTest, LazyVariantStillCollects) {
  net::SimulatedNetwork network = MakeBaNetwork(200, 3);
  RandomWalk walk(&network,
                  WalkParams{.jump = 3, .variant = WalkVariant::kLazy});
  util::Rng rng(10);
  auto visits = walk.Collect(0, 25, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 25u);
}

TEST(RandomWalkTest, StationaryWeightIsAliveDegree) {
  net::SimulatedNetwork network = MakeBaNetwork(50, 2);
  RandomWalk walk(&network, WalkParams{});
  EXPECT_DOUBLE_EQ(walk.StationaryWeight(7),
                   static_cast<double>(network.graph().degree(7)));
}

TEST(SamplersTest, BfsSamplerReturnsSinkNeighborhood) {
  util::Rng seed_rng(11);
  auto graph = topology::MakeBarabasiAlbert(500, 3, seed_rng);
  ASSERT_TRUE(graph.ok());
  auto distances = graph::BfsDistances(*graph, 0);
  net::SimulatedNetwork network = MakeNetwork(std::move(*graph));
  BfsSampler sampler(&network);
  util::Rng rng(12);
  auto visits = sampler.SamplePeers(0, 30, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 30u);
  for (const PeerVisit& v : *visits) {
    EXPECT_LE(distances[v.peer], 4u);  // Collected near the sink.
  }
}

TEST(SamplersTest, BfsSamplerRepeatsWhenNeighborhoodExhausted) {
  graph::GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  net::SimulatedNetwork network = MakeNetwork(builder.Build());
  BfsSampler sampler(&network);
  util::Rng rng(13);
  auto visits = sampler.SamplePeers(0, 10, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 10u);
}

TEST(SamplersTest, DfsSamplerSelectsEveryHop) {
  net::SimulatedNetwork network = MakeBaNetwork(200, 3, 14);
  DfsSampler sampler(&network);
  util::Rng rng(14);
  network.ResetCost();
  auto visits = sampler.SamplePeers(0, 25, rng);
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 25u);
  EXPECT_EQ(network.cost_snapshot().walker_hops, 25u);
}

TEST(SamplersTest, UniformOracleIsUniform) {
  net::SimulatedNetwork network = MakeBaNetwork(50, 2, 15);
  UniformOracleSampler sampler(&network);
  util::Rng rng(15);
  const size_t kDraws = 50000;
  auto visits = sampler.SamplePeers(0, kDraws, rng);
  ASSERT_TRUE(visits.ok());
  std::vector<double> observed(50, 0.0);
  for (const PeerVisit& v : *visits) observed[v.peer] += 1.0;
  std::vector<double> expected(50, static_cast<double>(kDraws) / 50.0);
  // Oracle draws are iid, so no design-effect correction is needed.
  EXPECT_STAT_PASS(
      verify::ChiSquareGofTest(observed, expected, verify::DefaultAlpha()));
}

TEST(SamplersTest, NamesAreStable) {
  net::SimulatedNetwork network = MakeBaNetwork(50, 2, 16);
  EXPECT_EQ(RandomWalkSampler(&network, WalkParams{}).name(), "random_walk");
  EXPECT_EQ(BfsSampler(&network).name(), "bfs");
  EXPECT_EQ(DfsSampler(&network).name(), "dfs");
  EXPECT_EQ(UniformOracleSampler(&network).name(), "uniform_oracle");
}

TEST(ParallelWalkTest, CollectsFullCountAcrossWalkers) {
  net::SimulatedNetwork network = MakeBaNetwork(300, 3, 30);
  ParallelWalkSampler sampler(&network, WalkParams{.jump = 5},
                              /*num_walkers=*/7);
  util::Rng rng(31);
  auto visits = sampler.SamplePeers(0, 50, rng);  // 50 not divisible by 7.
  ASSERT_TRUE(visits.ok());
  EXPECT_EQ(visits->size(), 50u);
  EXPECT_EQ(sampler.name(), "parallel_walk");
}

TEST(ParallelWalkTest, CutsLatencyButNotMessages) {
  net::SimulatedNetwork network = MakeBaNetwork(300, 3, 32);
  util::Rng rng_a(33);
  util::Rng rng_b(33);
  const size_t kCount = 64;

  network.ResetCost();
  RandomWalkSampler single(&network, WalkParams{.jump = 5});
  ASSERT_TRUE(single.SamplePeers(0, kCount, rng_a).ok());
  net::CostSnapshot sequential = network.cost_snapshot();

  network.ResetCost();
  ParallelWalkSampler parallel(&network, WalkParams{.jump = 5},
                               /*num_walkers=*/8);
  ASSERT_TRUE(parallel.SamplePeers(0, kCount, rng_b).ok());
  net::CostSnapshot fanned = network.cost_snapshot();

  // Same total work...
  EXPECT_EQ(fanned.walker_hops, sequential.walker_hops);
  EXPECT_EQ(fanned.messages, sequential.messages);
  // ...but the critical path shrinks by roughly the walker count.
  EXPECT_LT(fanned.latency_ms, sequential.latency_ms / 4.0);
  EXPECT_GT(fanned.latency_ms, 0.0);
}

TEST(ParallelWalkTest, SingleWalkerMatchesPlainWalkLatency) {
  net::SimulatedNetwork network = MakeBaNetwork(200, 3, 34);
  util::Rng rng(35);
  network.ResetCost();
  ParallelWalkSampler sampler(&network, WalkParams{.jump = 3}, 1);
  ASSERT_TRUE(sampler.SamplePeers(0, 20, rng).ok());
  // With one walker the max == sum correction is a no-op.
  EXPECT_GT(network.cost_snapshot().latency_ms, 0.0);
  EXPECT_EQ(network.cost_snapshot().walker_hops, 60u);
}

TEST(AutoBudgetTest, AutoMaxHopsFollowsNominalLength) {
  WalkParams params{.jump = 10, .burn_in = 50};
  // nominal = 50 + 20*10 = 250; budget = 100x + 1000.
  EXPECT_EQ(AutoMaxHops(params, 20), 26000u);
  params.variant = WalkVariant::kLazy;  // Self-loops double the room.
  EXPECT_EQ(AutoMaxHops(params, 20), 51000u);
}

TEST(AutoBudgetTest, AutoMaxHopsSaturatesInsteadOfWrapping) {
  WalkParams params{.jump = SIZE_MAX / 2};
  EXPECT_EQ(AutoMaxHops(params, 1000), SIZE_MAX);
  params = WalkParams{.jump = 3, .burn_in = SIZE_MAX - 1};
  EXPECT_EQ(AutoMaxHops(params, 5), SIZE_MAX);
  EXPECT_EQ(AutoMaxRestarts(SIZE_MAX), SIZE_MAX);
  EXPECT_EQ(AutoMaxRestarts(10), 36u);
}

TEST(ResilientWalkTest, RestartRedoesBurnIn) {
  // Diamond 0-1, 0-2, 1-3, 2-3: the walk is bipartite between {0,3} and
  // {1,2}, so after an even number of hops the walker sits on 0 or 3. A
  // scheduled crash of peer 3 therefore has a ~50% chance per seed of
  // hitting the token holder, forcing a sink re-issue. The re-issued token
  // must redo the full burn-in — the buggy alternative (keep walking warm
  // from the sink) finishes in ~70 hops instead of ~120.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    graph::GraphBuilder builder(4);
    builder.AddEdge(0, 1);
    builder.AddEdge(0, 2);
    builder.AddEdge(1, 3);
    builder.AddEdge(2, 3);
    net::SimulatedNetwork network = MakeNetwork(builder.Build(), seed);
    net::FaultPlan plan;
    plan.scheduled_crashes.push_back({60, 3});
    network.InstallFaultPlan(plan, seed);
    RandomWalk walk(&network, WalkParams{.jump = 2, .burn_in = 50});
    util::Rng rng(seed);
    auto outcome = walk.CollectResilient(0, 10, rng);
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->truncated);
    EXPECT_EQ(outcome->visits.size(), 10u);
    if (outcome->stats.restarts == 0) continue;  // Crash missed the holder.
    EXPECT_EQ(outcome->stats.restarts, 1u);
    // 60 pre-crash hops + a fresh 50-hop burn-in + the remaining selections.
    EXPECT_GE(outcome->stats.hops, 110u);
    for (const PeerVisit& v : outcome->visits) EXPECT_LT(v.peer, 4u);
    return;  // Found a seed that exercised the restart path.
  }
  FAIL() << "no seed produced a walker restart";
}

TEST(ResilientWalkTest, TruncatesWithPartialSampleWhenSinkIsolated) {
  // Path 0-1 with 1 scheduled to crash: once 1 departs, the sink has no
  // live route left. The resilient walk hands back what it collected
  // instead of discarding the whole sample.
  graph::GraphBuilder builder(2);
  builder.AddEdge(0, 1);
  net::SimulatedNetwork network = MakeNetwork(builder.Build());
  net::FaultPlan plan;
  plan.scheduled_crashes.push_back({5, 1});
  network.InstallFaultPlan(plan, 3);
  RandomWalk walk(&network, WalkParams{.jump = 1});
  util::Rng rng(3);
  auto outcome = walk.CollectResilient(0, 20, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->truncated);
  EXPECT_EQ(outcome->truncation.code(), util::StatusCode::kUnavailable);
  EXPECT_GE(outcome->visits.size(), 1u);
  EXPECT_LT(outcome->visits.size(), 20u);
  // The strict wrapper surfaces the same situation as a hard error.
  graph::GraphBuilder builder2(2);
  builder2.AddEdge(0, 1);
  net::SimulatedNetwork network2 = MakeNetwork(builder2.Build());
  network2.SetAlive(1, false);
  RandomWalk walk2(&network2, WalkParams{.jump = 1});
  util::Rng rng2(3);
  EXPECT_FALSE(walk2.Collect(0, 20, rng2).ok());
}

TEST(ResilientWalkTest, SurvivesThirtyPercentMidWalkChurn) {
  // 90 of 300 peers crash *during* the walk, one every other message. The
  // resilient walk routes around them (retransmit in place, sink re-issue)
  // and still delivers the full sample.
  net::SimulatedNetwork network = MakeBaNetwork(300, 3, 40);
  net::FaultPlan plan;
  for (uint64_t i = 0; i < 90; ++i) {
    plan.scheduled_crashes.push_back(
        {2 * i, static_cast<graph::NodeId>(10 + i)});
  }
  plan.crash_immune = {0};
  network.InstallFaultPlan(plan, 41);
  RandomWalk walk(&network, WalkParams{.jump = 5, .burn_in = 20});
  util::Rng rng(42);
  auto outcome = walk.CollectResilient(0, 40, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->truncated);
  EXPECT_EQ(outcome->visits.size(), 40u);
  // All scheduled departures fired while the walk was still running.
  EXPECT_EQ(network.num_alive(), 210u);
  for (const PeerVisit& v : outcome->visits) {
    EXPECT_LT(v.peer, 300u);
    EXPECT_GT(v.degree, 0u);
  }
}

TEST(ResilientWalkTest, LossyTransportRetransmitsInPlace) {
  // Pure message loss (no crashes): every lost hop is retried by its
  // holder, so the walk completes with zero sink restarts and extra hops.
  net::SimulatedNetwork network = MakeBaNetwork(200, 3, 50);
  net::FaultPlan plan;
  plan.drop_probability = 0.3;
  network.InstallFaultPlan(plan, 51);
  RandomWalk walk(&network, WalkParams{.jump = 5, .burn_in = 20});
  util::Rng rng(52);
  auto outcome = walk.CollectResilient(0, 30, rng);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->truncated);
  EXPECT_EQ(outcome->visits.size(), 30u);
  EXPECT_EQ(outcome->stats.restarts, 0u);
  // ~30% of hops were retried: strictly more chain work than the nominal
  // 20 + 30*5 = 170 transitions.
  EXPECT_GT(outcome->stats.hops, 170u);
}

TEST(ConvergenceTest, TuneWalkProducesUsableParameters) {
  util::Rng rng(17);
  auto graph = topology::MakeBarabasiAlbert(500, 4, rng);
  ASSERT_TRUE(graph.ok());
  WalkTuning tuning = TuneWalk(*graph, 0.05, 1, rng);
  EXPECT_GT(tuning.lambda2, 0.0);
  EXPECT_LT(tuning.lambda2, 1.0);
  EXPECT_GE(tuning.jump, 1u);
  EXPECT_GT(tuning.burn_in, 0u);
  EXPECT_LE(tuning.jump, tuning.burn_in);
}

TEST(ConvergenceTest, ClusteredGraphsNeedLongerWalks) {
  util::Rng rng(18);
  topology::ClusteredParams tight;
  tight.num_nodes = 400;
  tight.num_edges = 2000;
  tight.num_subgraphs = 2;
  tight.cut_edges = 1;
  auto tight_topo = topology::MakeClustered(tight, rng);
  ASSERT_TRUE(tight_topo.ok());
  auto loose_graph = topology::MakeBarabasiAlbert(400, 5, rng);
  ASSERT_TRUE(loose_graph.ok());
  util::Rng rng2(19);
  WalkTuning tight_tuning = TuneWalk(tight_topo->graph, 0.05, 1, rng2);
  WalkTuning loose_tuning = TuneWalk(*loose_graph, 0.05, 1, rng2);
  EXPECT_GT(tight_tuning.burn_in, loose_tuning.burn_in);
}

TEST(ConvergenceTest, JumpKillsDegreeAutocorrelation) {
  util::Rng rng(20);
  topology::ClusteredParams params;
  params.num_nodes = 400;
  params.num_edges = 2400;
  params.num_subgraphs = 2;
  params.cut_edges = 10;
  auto topo = topology::MakeClustered(params, rng);
  ASSERT_TRUE(topo.ok());
  util::Rng rng_a(21);
  util::Rng rng_b(21);
  double rho1 = MeasureDegreeAutocorrelation(topo->graph, 1, 20000, rng_a);
  double rho20 = MeasureDegreeAutocorrelation(topo->graph, 20, 20000, rng_b);
  EXPECT_LT(std::fabs(rho20), std::fabs(rho1) + 0.02);
  EXPECT_LT(std::fabs(rho20), 0.05);
}

}  // namespace
}  // namespace p2paqp::sampling

// Tests for Status/Result and the ASCII table printer.
#include <gtest/gtest.h>

#include "util/ascii_table.h"
#include "util/status.h"

namespace p2paqp::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  Status status = Status::InvalidArgument("bad jump");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad jump");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad jump");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> result(Status::OutOfRange("too big"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(AsciiTableTest, AlignsColumns) {
  AsciiTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Every line has the same column start for "value" data.
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(AsciiTableTest, CsvOutput) {
  AsciiTable table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n3,4\n");
}

TEST(AsciiTableTest, Formatters) {
  EXPECT_EQ(AsciiTable::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::FormatPercent(0.1234, 1), "12.3%");
  EXPECT_EQ(AsciiTable::FormatInt(-42), "-42");
}

TEST(AsciiTableDeathTest, RejectsWrongArity) {
  AsciiTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

}  // namespace
}  // namespace p2paqp::util

// End-to-end tests of the adaptive two-phase engine on clustered networks.
#include "core/two_phase.h"

#include <cmath>

#include <gtest/gtest.h>

#include "net/fault.h"
#include "test_common.h"
#include "topology/power_law.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

query::AggregateQuery CountQuery(double required_error = 0.1) {
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = required_error;
  return q;
}

TEST(TwoPhaseEngineTest, CountMeetsRequiredErrorAcrossSeeds) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q = CountQuery(0.1);
  // The paper's error metric is normalized against the total database size
  // and its figures report the average over five runs staying within the
  // requirement; per-run values should essentially always comply too.
  int violations = 0;
  util::RunningStat errors;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    auto answer = engine.Execute(q, /*sink=*/0, rng);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    double err = p2paqp::testing::NormalizedCountError(
        tn.network, answer->estimate, q.predicate.lo, q.predicate.hi);
    errors.Add(err);
    if (err > q.required_error) ++violations;
  }
  // Sizing targets sigma ~= delta/sqrt(2), so individual runs exceed the
  // bound ~16% of the time; the paper's "always within" claim is about the
  // 5-run average, which we assert strictly.
  EXPECT_LE(violations, 2);
  EXPECT_LE(errors.mean(), q.required_error);
}

TEST(TwoPhaseEngineTest, SumMeetsRequiredError) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kSum;
  q.predicate = query::RangePredicate{1, 100};
  q.required_error = 0.1;
  int violations = 0;
  util::RunningStat errors;
  for (uint64_t seed = 10; seed < 15; ++seed) {
    util::Rng rng(seed);
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok());
    double err = p2paqp::testing::NormalizedSumError(tn.network,
                                                     answer->estimate, 1, 100);
    errors.Add(err);
    if (err > 0.1) ++violations;
  }
  EXPECT_LE(violations, 2);
  EXPECT_LE(errors.mean(), 0.1);
}

TEST(TwoPhaseEngineTest, AvgIsAccurate) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kAvg;
  q.predicate = query::RangePredicate{1, 100};
  q.required_error = 0.1;
  double truth = static_cast<double>(tn.network.ExactSum(1, 100)) /
                 static_cast<double>(tn.network.ExactCount(1, 100));
  // AVG is normalized against itself (it does not scale with selectivity,
  // so self-normalization is *stricter* than the paper's N-normalized
  // metric; the paper does not evaluate AVG). Allow modest slack.
  util::RunningStat errors;
  for (uint64_t seed = 3; seed < 8; ++seed) {
    util::Rng rng(seed);
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok());
    errors.Add(util::RelativeError(answer->estimate, truth));
  }
  EXPECT_LT(errors.mean(), 0.15);
}

TEST(TwoPhaseEngineTest, TighterAccuracyCostsMoreSamples) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  auto loose = engine.Execute(CountQuery(0.25), 0, rng_a);
  auto tight = engine.Execute(CountQuery(0.05), 0, rng_b);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GT(tight->phase2_peers, loose->phase2_peers);
  EXPECT_GT(tight->sample_tuples, loose->sample_tuples);
}

TEST(TwoPhaseEngineTest, AnswerCarriesCostVector) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 40;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(11);
  auto answer = engine.Execute(CountQuery(), 0, rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->phase1_peers, 40u);
  EXPECT_GE(answer->phase2_peers, params.min_phase2_peers);
  EXPECT_EQ(answer->cost.peers_visited,
            answer->phase1_peers + answer->phase2_peers);
  // Walker hops = jump * selections + one burn-in per phase walk.
  EXPECT_EQ(answer->cost.walker_hops,
            tn.catalog.suggested_jump *
                    (answer->phase1_peers + answer->phase2_peers) +
                2 * tn.catalog.suggested_burn_in);
  EXPECT_GT(answer->cost.messages, answer->cost.walker_hops);
  EXPECT_GT(answer->cost.latency_ms, 0.0);
  EXPECT_EQ(answer->sample_tuples, answer->cost.tuples_sampled);
  EXPECT_FALSE(answer->ToString().empty());
}

TEST(TwoPhaseEngineTest, RespectsMaxPhase2Clamp) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 30;
  params.max_phase2_peers = 35;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(13);
  auto answer = engine.Execute(CountQuery(0.01), 0, rng);  // Very tight.
  ASSERT_TRUE(answer.ok());
  EXPECT_LE(answer->phase2_peers, 35u);
}

TEST(TwoPhaseEngineTest, IncludePhase1ReusesObservations) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 50;
  params.include_phase1_observations = true;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q = CountQuery(0.1);
  util::Rng rng(17);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(p2paqp::testing::NormalizedCountError(tn.network,
                                                  answer->estimate, 1, 30),
            0.15);
}

TEST(TwoPhaseEngineTest, RejectsDeadSink) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  TwoPhaseEngine engine(&tn.network, tn.catalog, EngineParams{});
  tn.network.SetAlive(0, false);
  util::Rng rng(19);
  EXPECT_FALSE(engine.Execute(CountQuery(), 0, rng).ok());
  EXPECT_FALSE(engine.Execute(CountQuery(), 99999, rng).ok());
}

TEST(TwoPhaseEngineTest, UniformDataNeedsFewPhase2Peers) {
  // CL = 1: every peer is a microcosm, CV error collapses, the plan stays
  // near the minimum.
  TestNetworkParams net_params;
  net_params.cluster_level = 1.0;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(23);
  auto uniform_answer = engine.Execute(CountQuery(0.1), 0, rng);
  ASSERT_TRUE(uniform_answer.ok());

  TestNetworkParams clustered_params;
  clustered_params.cluster_level = 0.0;
  TestNetwork tn2 = MakeTestNetwork(clustered_params);
  TwoPhaseEngine engine2(&tn2.network, tn2.catalog, params);
  util::Rng rng2(23);
  auto clustered_answer = engine2.Execute(CountQuery(0.1), 0, rng2);
  ASSERT_TRUE(clustered_answer.ok());

  EXPECT_LT(uniform_answer->phase2_peers, clustered_answer->phase2_peers);
}

TEST(TwoPhaseEngineTest, SelectivityOneIsEasy) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = query::RangePredicate{1, 100};
  q.required_error = 0.1;
  util::Rng rng(29);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  double truth = static_cast<double>(tn.network.TotalTuples());
  EXPECT_LT(util::RelativeError(answer->estimate, truth), 0.05);
}

TEST(TwoPhaseEngineTest, ExpressionSumOverTwoColumns) {
  // SUM(A*B) with B filled and correlated: the engine must estimate an
  // expression aggregate end-to-end, not just single-column sums.
  util::Rng rng(61);
  auto graph = topology::MakeBarabasiAlbert(800, 5, rng);
  ASSERT_TRUE(graph.ok());
  data::DatasetParams dataset;
  dataset.num_tuples = 40000;
  dataset.fill_b = true;
  dataset.b_correlation = 0.5;
  auto table = data::GenerateDataset(dataset, rng);
  ASSERT_TRUE(table.ok());
  double truth = 0.0;
  for (const data::Tuple& t : *table) {
    truth += static_cast<double>(t.value) * static_cast<double>(t.b);
  }
  auto dbs = data::PartitionAcrossPeers(*table, *graph,
                                        data::PartitionParams{}, rng);
  ASSERT_TRUE(dbs.ok());
  auto network = net::SimulatedNetwork::Make(std::move(*graph),
                                             std::move(*dbs),
                                             net::NetworkParams{}, 62);
  ASSERT_TRUE(network.ok());
  core::SystemCatalog catalog = core::MakeCatalog(network->graph(), 10, 40);
  EngineParams params;
  params.phase1_peers = 60;
  params.include_phase1_observations = true;
  TwoPhaseEngine engine(&*network, catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kSum;
  q.expr = query::Expression::kATimesB;
  q.predicate = query::RangePredicate{1, 100};
  q.required_error = 0.1;
  util::Rng query_rng(63);
  auto answer = engine.Execute(q, 0, query_rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(util::RelativeError(answer->estimate, truth), 0.12);
}

TEST(TwoPhaseEngineTest, BlockSamplingCostsMorePeersOnClusteredData) {
  // Sec. 4: "If the data in the disk blocks are highly correlated, it will
  // simply mean that the number of peers to be visited will increase, as
  // determined by our cross-validation approach."
  // Globally shuffled content (each peer sees the whole value domain) laid
  // out in a *sorted* local table — the clustered-index physical layout
  // where whole blocks are value runs. Tuple-level sampling is unaffected;
  // block-level sampling gets correlated blocks.
  TestNetworkParams net_params;
  net_params.cluster_level = 1.0;
  net_params.tuples_per_peer = 100;
  net_params.sort_local_tables = true;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams uniform_params;
  uniform_params.phase1_peers = 60;
  EngineParams block_params = uniform_params;
  block_params.subsample_mode = query::SubSampleMode::kBlockLevel;
  block_params.block_size = 25;  // 25-tuple blocks: one value run each.
  TwoPhaseEngine uniform_engine(&tn.network, tn.catalog, uniform_params);
  TwoPhaseEngine block_engine(&tn.network, tn.catalog, block_params);
  query::AggregateQuery q = CountQuery(0.1);
  double uniform_m2 = 0.0;
  double block_m2 = 0.0;
  for (uint64_t seed = 80; seed < 85; ++seed) {
    util::Rng rng_a(seed);
    util::Rng rng_b(seed);
    auto ua = uniform_engine.Execute(q, 0, rng_a);
    auto ba = block_engine.Execute(q, 0, rng_b);
    ASSERT_TRUE(ua.ok());
    ASSERT_TRUE(ba.ok());
    uniform_m2 += static_cast<double>(ua->phase2_peers);
    block_m2 += static_cast<double>(ba->phase2_peers);
  }
  EXPECT_GT(block_m2, uniform_m2);
}

TEST(TwoPhaseEngineTest, AnswerNormalizationTightensLowSelectivityPlans) {
  // Under kTotalAggregate a 5%-selectivity COUNT gets a loose absolute
  // target (0.1 * N); under kQueryAnswer the target is 0.1 * y — twenty
  // times tighter in absolute terms — so the phase-II plan must grow.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 3};  // Small prefix: low selectivity.
  q.required_error = 0.1;
  EngineParams total_params;
  total_params.phase1_peers = 60;
  EngineParams answer_params = total_params;
  answer_params.normalization = ErrorNormalization::kQueryAnswer;
  TwoPhaseEngine total_engine(&tn.network, tn.catalog, total_params);
  TwoPhaseEngine answer_engine(&tn.network, tn.catalog, answer_params);
  util::Rng rng_a(71);
  util::Rng rng_b(71);
  auto total_answer = total_engine.Execute(q, 0, rng_a);
  auto answer_answer = answer_engine.Execute(q, 0, rng_b);
  ASSERT_TRUE(total_answer.ok());
  ASSERT_TRUE(answer_answer.ok());
  EXPECT_GT(answer_answer->phase2_peers, 2 * total_answer->phase2_peers);
  // And the answer-relative run should indeed deliver a tighter relative
  // error on average (single-seed check kept loose).
  double truth = static_cast<double>(
      tn.network.ExactCount(q.predicate.lo, q.predicate.hi));
  ASSERT_GT(truth, 0.0);
  EXPECT_LT(util::RelativeError(answer_answer->estimate, truth), 0.3);
}

TEST(TwoPhaseEngineTest, DegradesGracefullyUnderReplyLoss) {
  // 20% message loss with retransmission disabled: about a fifth of the
  // (y(p), deg(p)) replies never reach the sink. The engine must reweight
  // over the survivors, widen the CI, and flag the answer as degraded —
  // not fail, and not return garbage.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  net::FaultPlan plan;
  plan.drop_probability = 0.2;
  tn.network.InstallFaultPlan(plan, 5);
  EngineParams params;
  params.phase1_peers = 60;
  params.reply_retransmits = 0;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(31);
  auto answer = engine.Execute(CountQuery(0.1), 0, rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer->degraded);
  EXPECT_GT(answer->observations_lost, 0u);
  EXPECT_TRUE(std::isfinite(answer->estimate));
  EXPECT_GT(answer->estimate, 0.0);
  EXPECT_GT(answer->ci_half_width_95, 0.0);
  EXPECT_GT(answer->achieved_error, 0.0);
  EXPECT_NE(answer->ToString().find("DEGRADED"), std::string::npos);
  // MCAR reply loss keeps the HT estimator unbiased: the reweighted
  // estimate still lands near the truth (loose single-seed bound).
  EXPECT_LT(p2paqp::testing::NormalizedCountError(tn.network,
                                                  answer->estimate, 1, 30),
            0.2);
}

TEST(TwoPhaseEngineTest, RetransmitsRecoverMostReplies) {
  // Same 20% loss, but with the default 2 retransmits the per-observation
  // loss collapses to 0.2^3 = 0.8%; the answer is near-complete.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  net::FaultPlan plan;
  plan.drop_probability = 0.2;
  tn.network.InstallFaultPlan(plan, 5);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::RunningStat errors;
  for (uint64_t seed = 31; seed < 36; ++seed) {
    util::Rng rng(seed);
    auto answer = engine.Execute(CountQuery(0.1), 0, rng);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_LE(answer->observations_lost, 3u);
    errors.Add(p2paqp::testing::NormalizedCountError(tn.network,
                                                     answer->estimate, 1, 30));
  }
  EXPECT_LT(errors.mean(), 0.12);
}

TEST(TwoPhaseEngineTest, FailsBelowObservationQuorum) {
  // 95% loss with no retransmits: ~5% of replies arrive, far below the
  // default 25% quorum. A best-effort answer from that little data would
  // be statistically meaningless — the engine must refuse.
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  net::FaultPlan plan;
  plan.drop_probability = 0.95;
  tn.network.InstallFaultPlan(plan, 9);
  EngineParams params;
  params.phase1_peers = 60;
  params.reply_retransmits = 0;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(37);
  auto answer = engine.Execute(CountQuery(0.1), 0, rng);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), util::StatusCode::kUnavailable);
}

// Deterministic quorum edge cases need exact control over how many
// observations can possibly arrive; a scripted sampler returns a fixed
// visit list (some of which may point at dead peers, which the engine
// skips) so the delivered count is known in advance.
class ScriptedSampler : public sampling::PeerSampler {
 public:
  ScriptedSampler(const net::SimulatedNetwork* network,
                  std::vector<graph::NodeId> peers)
      : network_(network), peers_(std::move(peers)) {}

  util::Result<std::vector<sampling::PeerVisit>> SamplePeers(
      graph::NodeId, size_t, util::Rng&) override {
    std::vector<sampling::PeerVisit> visits;
    visits.reserve(peers_.size());
    for (graph::NodeId peer : peers_) {
      visits.push_back(sampling::PeerVisit{
          peer, network_->graph().degree(peer)});
    }
    return visits;
  }

  double StationaryWeight(graph::NodeId node) const override {
    return static_cast<double>(network_->graph().degree(node));
  }

  std::string name() const override { return "scripted"; }

 private:
  const net::SimulatedNetwork* network_;
  std::vector<graph::NodeId> peers_;
};

// Requesting 8 observations at a 50% quorum (= 4 after ceil): exactly 4
// deliverable observations is a pass, not a failure — the quorum is
// inclusive.
TEST(TwoPhaseEngineTest, CollectionSucceedsExactlyAtQuorum) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  std::vector<graph::NodeId> script = {10, 11, 12, 13, 14, 15, 16, 17};
  for (graph::NodeId dead : {14, 15, 16, 17}) {
    tn.network.SetAlive(dead, false);
  }
  EngineParams params;
  params.min_observation_quorum = 0.5;
  TwoPhaseEngine engine(
      &tn.network, tn.catalog, params,
      std::make_unique<ScriptedSampler>(&tn.network, script),
      tn.catalog.total_degree_weight());
  util::Rng rng(1);
  TwoPhaseEngine::CollectionStats stats;
  auto obs = engine.CollectObservations(CountQuery(0.1), /*sink=*/0,
                                        /*count=*/8, rng, &stats);
  ASSERT_TRUE(obs.ok()) << obs.status().ToString();
  EXPECT_EQ(obs->size(), 4u);
  EXPECT_EQ(stats.requested, 8u);
  EXPECT_EQ(stats.delivered, 4u);
  EXPECT_EQ(stats.lost, 4u);
}

// One observation below the quorum is a hard Unavailable, not a degraded
// answer.
TEST(TwoPhaseEngineTest, CollectionFailsOneBelowQuorum) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  std::vector<graph::NodeId> script = {10, 11, 12, 13, 14, 15, 16, 17};
  for (graph::NodeId dead : {13, 14, 15, 16, 17}) {
    tn.network.SetAlive(dead, false);
  }
  EngineParams params;
  params.min_observation_quorum = 0.5;
  TwoPhaseEngine engine(
      &tn.network, tn.catalog, params,
      std::make_unique<ScriptedSampler>(&tn.network, script),
      tn.catalog.total_degree_weight());
  util::Rng rng(1);
  auto obs = engine.CollectObservations(CountQuery(0.1), /*sink=*/0,
                                        /*count=*/8, rng);
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.status().code(), util::StatusCode::kUnavailable);
}

// All replies lost (every scripted peer departed): Unavailable even with a
// permissive quorum, because zero observations can never satisfy a positive
// request.
TEST(TwoPhaseEngineTest, CollectionFailsWhenAllRepliesLost) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  std::vector<graph::NodeId> script = {10, 11, 12, 13};
  for (graph::NodeId dead : script) tn.network.SetAlive(dead, false);
  EngineParams params;
  params.min_observation_quorum = 0.25;
  TwoPhaseEngine engine(
      &tn.network, tn.catalog, params,
      std::make_unique<ScriptedSampler>(&tn.network, script),
      tn.catalog.total_degree_weight());
  util::Rng rng(1);
  auto obs = engine.CollectObservations(CountQuery(0.1), /*sink=*/0,
                                        /*count=*/4, rng);
  ASSERT_FALSE(obs.ok());
  EXPECT_EQ(obs.status().code(), util::StatusCode::kUnavailable);
}

// A 100% quorum on a fault-free network is the boundary case from the
// other side: every observation arrives, delivered == requested == quorum.
TEST(TwoPhaseEngineTest, FullQuorumPassesWhenNothingIsLost) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 30;
  params.min_observation_quorum = 1.0;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(17);
  auto answer = engine.Execute(CountQuery(0.1), 0, rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_FALSE(answer->degraded);
  EXPECT_EQ(answer->observations_lost, 0u);
}

TEST(TwoPhaseEngineTest, DisabledFaultPlanIsBitIdentical) {
  // Acceptance gate for the fault subsystem: installing an all-zero
  // FaultPlan must leave every result bit-identical to a network that
  // never heard of fault injection.
  TestNetwork plain = MakeTestNetwork(TestNetworkParams{});
  TestNetwork planned = MakeTestNetwork(TestNetworkParams{});
  planned.network.InstallFaultPlan(net::FaultPlan{}, 12345);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine_a(&plain.network, plain.catalog, params);
  TwoPhaseEngine engine_b(&planned.network, planned.catalog, params);
  util::Rng rng_a(41);
  util::Rng rng_b(41);
  auto a = engine_a.Execute(CountQuery(0.1), 0, rng_a);
  auto b = engine_b.Execute(CountQuery(0.1), 0, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->estimate, b->estimate);  // Bitwise, not approximate.
  EXPECT_EQ(a->ci_half_width_95, b->ci_half_width_95);
  EXPECT_EQ(a->phase2_peers, b->phase2_peers);
  EXPECT_EQ(a->cost.messages, b->cost.messages);
  EXPECT_EQ(a->cost.latency_ms, b->cost.latency_ms);
  EXPECT_FALSE(a->degraded);
  EXPECT_FALSE(b->degraded);
  EXPECT_EQ(a->ToString(), b->ToString());
}

// Parameterized sweep over the paper's clustering and skew axes: the engine
// must meet the error bound everywhere (Figs. 8 and 10 at test scale).
class TwoPhaseSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TwoPhaseSweep, MeetsErrorBoundAcrossDataShapes) {
  auto [cluster_level, skew] = GetParam();
  TestNetworkParams net_params;
  net_params.cluster_level = cluster_level;
  net_params.skew = skew;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery q = CountQuery(0.15);
  int violations = 0;
  for (uint64_t seed = 100; seed < 103; ++seed) {
    util::Rng rng(seed);
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok());
    if (p2paqp::testing::NormalizedCountError(tn.network, answer->estimate,
                                              1, 30) > 0.15) {
      ++violations;
    }
  }
  EXPECT_LE(violations, 1);
}

INSTANTIATE_TEST_SUITE_P(
    DataShapes, TwoPhaseSweep,
    ::testing::Combine(::testing::Values(0.0, 0.5, 1.0),
                       ::testing::Values(0.2, 1.0, 2.0)));

}  // namespace
}  // namespace p2paqp::core

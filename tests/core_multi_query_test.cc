// Tests for the multi-query scheduler: batch execution over a shared sample
// frame, frame reuse/top-up/epoch-expiry, the walker-batching and
// frame-reuse ablation switches, and per-query failure isolation.
#include <gtest/gtest.h>

#include <vector>

#include "core/multi_query.h"
#include "test_common.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

query::AggregateQuery CountQuery(int hi) {
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, hi};
  q.required_error = 0.15;
  return q;
}

std::vector<query::AggregateQuery> QueryMix() {
  return {CountQuery(20), CountQuery(40), CountQuery(60), CountQuery(80)};
}

SchedulerParams DefaultParams(const TestNetwork& tn) {
  SchedulerParams params;
  params.engine.phase1_peers = 40;
  params.walk.jump = tn.catalog.suggested_jump;
  params.walk.burn_in = tn.catalog.suggested_burn_in;
  return params;
}

TEST(QuerySchedulerTest, AnswersEveryQueryInBatch) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(/*ttl_epochs=*/10, /*max_entries=*/1 << 12);
  QueryScheduler scheduler(&tn.network, tn.catalog, DefaultParams(tn),
                           &cache);
  std::vector<query::AggregateQuery> queries = QueryMix();
  util::Rng rng(7);
  BatchResult result = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_EQ(result.answers.size(), queries.size());
  for (size_t i = 0; i < result.answers.size(); ++i) {
    ASSERT_TRUE(result.answers[i].ok()) << "query " << i;
    EXPECT_GT(result.answers[i]->estimate, 0.0);
    EXPECT_GT(result.answers[i]->phase1_peers, 0u);
  }
  // The batch paid for real network work, attributed batch-wide.
  EXPECT_GT(result.cost.messages, 0u);
  EXPECT_GT(result.cost.peers_visited, 0u);
  // Estimates are in a sane range (within a factor 2 of truth — the
  // statistical tier checks tight unbiasedness, this is a smoke bound).
  double truth = 0.0;
  for (graph::NodeId p = 0; p < tn.network.num_peers(); ++p) {
    for (const auto& t : tn.network.peer(p).database().tuples()) {
      if (t.value >= 1 && t.value <= 40) truth += 1.0;
    }
  }
  double est = result.answers[1]->estimate;
  EXPECT_GT(est, truth * 0.5);
  EXPECT_LT(est, truth * 2.0);
}

TEST(QuerySchedulerTest, SecondBatchReusesFrame) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(10, 1 << 12);
  QueryScheduler scheduler(&tn.network, tn.catalog, DefaultParams(tn),
                           &cache);
  std::vector<query::AggregateQuery> queries = QueryMix();
  util::Rng rng(8);
  BatchResult first = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_TRUE(first.answers[0].ok());
  EXPECT_EQ(first.frame.frame_hits, 0u);  // Cold start: all walked.
  EXPECT_GT(first.frame.frame_misses, 0u);
  size_t frame_after_first = scheduler.frame_size();
  EXPECT_GT(frame_after_first, 0u);

  BatchResult second = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_TRUE(second.answers[0].ok());
  EXPECT_GT(second.frame.frame_hits, 0u);  // Warm: selections reused.
  // Walking only happens if the second batch needed a deeper frame.
  EXPECT_LE(second.frame.frame_misses, first.frame.frame_misses);
  // Reuse means the warm batch ships fewer bytes than the cold one.
  EXPECT_LT(second.cost.bytes_shipped, first.cost.bytes_shipped);
}

TEST(QuerySchedulerTest, EpochExpiryForcesRebuild) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(10, 1 << 12);
  SchedulerParams params = DefaultParams(tn);
  params.frame_ttl_epochs = 2;
  QueryScheduler scheduler(&tn.network, tn.catalog, params, &cache);
  std::vector<query::AggregateQuery> queries = QueryMix();
  util::Rng rng(9);
  BatchResult first = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_TRUE(first.answers[0].ok());
  EXPECT_EQ(first.frame.rebuilds, 0u);  // Cold start is not a rebuild.

  // Simulated data churn: tick past the frame TTL.
  for (int i = 0; i < 3; ++i) cache.AdvanceEpoch();
  BatchResult second = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_TRUE(second.answers[0].ok());
  EXPECT_EQ(second.frame.rebuilds, 1u);
  EXPECT_EQ(second.frame.frame_hits, 0u);  // Expired frame serves nothing.
  EXPECT_EQ(second.frame.frame_epoch, cache.epoch());
}

TEST(QuerySchedulerTest, InvalidateFrameDropsReuse) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(10, 1 << 12);
  QueryScheduler scheduler(&tn.network, tn.catalog, DefaultParams(tn),
                           &cache);
  std::vector<query::AggregateQuery> queries = QueryMix();
  util::Rng rng(10);
  ASSERT_TRUE(scheduler.ExecuteBatch(queries, 0, rng).answers[0].ok());
  scheduler.InvalidateFrame();
  EXPECT_EQ(scheduler.frame_size(), 0u);
  BatchResult second = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_TRUE(second.answers[0].ok());
  EXPECT_EQ(second.frame.frame_hits, 0u);  // Cold again.
}

TEST(QuerySchedulerTest, BatchingReducesMessagesPerQuery) {
  // The amortization claim itself: two batches of K=4 queries through the
  // scheduler (shared frame + batched walkers) must ship under half the
  // messages of the same eight queries run as independent two-phase
  // executions. Also checks the ablation ordering: stripping frame reuse
  // must cost strictly more messages than the full scheduler.
  TestNetworkParams net_params;
  net_params.seed = 77;
  std::vector<query::AggregateQuery> queries = QueryMix();

  auto run_scheduler = [&](bool reuse_frame) {
    TestNetwork tn = MakeTestNetwork(net_params);
    FreshnessCache cache(10, 1 << 12);
    SchedulerParams params = DefaultParams(tn);
    params.reuse_frame = reuse_frame;
    QueryScheduler scheduler(&tn.network, tn.catalog, params, &cache);
    util::Rng rng(11);
    uint64_t messages = 0;
    for (int b = 0; b < 2; ++b) {
      BatchResult result = scheduler.ExecuteBatch(queries, 0, rng);
      for (const auto& answer : result.answers) {
        EXPECT_TRUE(answer.ok());
      }
      messages += result.cost.messages;
    }
    return messages;
  };

  auto run_independent = [&] {
    TestNetwork tn = MakeTestNetwork(net_params);
    TwoPhaseEngine engine(&tn.network, tn.catalog, DefaultParams(tn).engine);
    util::Rng rng(11);
    net::CostSnapshot before = tn.network.cost_snapshot();
    for (int b = 0; b < 2; ++b) {
      for (const auto& q : queries) {
        EXPECT_TRUE(engine.Execute(q, 0, rng).ok());
      }
    }
    return net::CostDelta(tn.network.cost_snapshot(), before).messages;
  };

  uint64_t full = run_scheduler(/*reuse_frame=*/true);
  uint64_t no_reuse = run_scheduler(/*reuse_frame=*/false);
  uint64_t independent = run_independent();
  EXPECT_LT(full * 2, independent)
      << "scheduler=" << full << " independent=" << independent;
  EXPECT_LT(full, no_reuse) << "frame reuse must save messages";
}

TEST(QuerySchedulerTest, RejectsUnsupportedOperators) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(10, 1 << 12);
  QueryScheduler scheduler(&tn.network, tn.catalog, DefaultParams(tn),
                           &cache);
  query::AggregateQuery avg = CountQuery(40);
  avg.op = query::AggregateOp::kAvg;
  std::vector<query::AggregateQuery> queries = {CountQuery(40), avg};
  util::Rng rng(12);
  BatchResult result = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_TRUE(result.answers[0].ok());  // Sibling unaffected.
  ASSERT_FALSE(result.answers[1].ok());
  EXPECT_EQ(result.answers[1].status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(QuerySchedulerTest, DeadSinkFailsWholeBatch) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(10, 1 << 12);
  QueryScheduler scheduler(&tn.network, tn.catalog, DefaultParams(tn),
                           &cache);
  tn.network.SetAlive(0, false);
  std::vector<query::AggregateQuery> queries = QueryMix();
  util::Rng rng(13);
  BatchResult result = scheduler.ExecuteBatch(queries, 0, rng);
  for (const auto& answer : result.answers) {
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), util::StatusCode::kFailedPrecondition);
  }
}

TEST(QuerySchedulerTest, SumQueriesEstimateTotals) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  FreshnessCache cache(10, 1 << 12);
  QueryScheduler scheduler(&tn.network, tn.catalog, DefaultParams(tn),
                           &cache);
  query::AggregateQuery sum_query = CountQuery(60);
  sum_query.op = query::AggregateOp::kSum;
  std::vector<query::AggregateQuery> queries = {sum_query, CountQuery(60)};
  util::Rng rng(14);
  BatchResult result = scheduler.ExecuteBatch(queries, 0, rng);
  ASSERT_TRUE(result.answers[0].ok());
  ASSERT_TRUE(result.answers[1].ok());
  // SUM over values in [1,60] must exceed COUNT of the same predicate
  // (every matching tuple has value >= 1).
  EXPECT_GE(result.answers[0]->estimate, result.answers[1]->estimate);
}

}  // namespace
}  // namespace p2paqp::core

// Shared fixtures for p2paqp tests: small deterministic networks with
// clustered data, mirroring the paper's setup at test-friendly scale.
#ifndef P2PAQP_TESTS_TEST_COMMON_H_
#define P2PAQP_TESTS_TEST_COMMON_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/aqp.h"
#include "util/logging.h"
#include "verify/verify.h"

// Assert on a verify::TestVerdict, printing the full verdict (statistic,
// p-value, alpha, detail) on failure. EXPECT_STAT_FAIL is for canary tests
// that prove the harness detects deliberately injected bias.
#define EXPECT_STAT_PASS(verdict_expr)                 \
  do {                                                 \
    const auto& v = (verdict_expr);                    \
    EXPECT_TRUE(v.pass) << v.ToString();               \
  } while (0)

#define EXPECT_STAT_FAIL(verdict_expr)                 \
  do {                                                 \
    const auto& v = (verdict_expr);                    \
    EXPECT_FALSE(v.pass) << v.ToString();              \
  } while (0)

namespace p2paqp::testing {

struct TestNetworkParams {
  size_t num_peers = 1000;
  size_t num_edges = 5000;
  size_t num_subgraphs = 2;
  size_t cut_edges = 200;
  size_t tuples_per_peer = 50;
  double cluster_level = 0.25;
  double skew = 0.2;
  bool sort_local_tables = false;
  uint64_t seed = 42;
};

struct TestNetwork {
  net::SimulatedNetwork network;
  core::SystemCatalog catalog;
  std::vector<uint32_t> partition;
};

// Builds a clustered two-sub-graph overlay with Zipf data distributed
// breadth-first, like Sec. 5.2. Aborts on any setup failure (tests only).
inline TestNetwork MakeTestNetwork(const TestNetworkParams& params) {
  util::Rng rng(params.seed);
  topology::TopologyConfig config;
  config.kind = topology::TopologyKind::kClustered;
  config.num_nodes = params.num_peers;
  config.num_edges = params.num_edges;
  config.num_subgraphs = params.num_subgraphs;
  config.cut_edges = params.cut_edges;
  auto topo = topology::MakeTopology(config, rng);
  P2PAQP_CHECK(topo.ok()) << topo.status().ToString();

  data::DatasetParams dataset_params;
  dataset_params.num_tuples = params.num_peers * params.tuples_per_peer;
  dataset_params.skew = params.skew;
  auto table = data::GenerateDataset(dataset_params, rng);
  P2PAQP_CHECK(table.ok()) << table.status().ToString();

  data::PartitionParams partition_params;
  partition_params.cluster_level = params.cluster_level;
  partition_params.bfs_root = 0;
  partition_params.sort_local_tables = params.sort_local_tables;
  auto databases = data::PartitionAcrossPeers(*table, topo->graph,
                                              partition_params, rng);
  P2PAQP_CHECK(databases.ok()) << databases.status().ToString();

  // The paper determines walk parameters in a preprocessing step from the
  // topology's connectivity; do the same here (spectral tuning), capping the
  // burn-in so tests stay fast.
  core::SystemCatalog catalog = core::Preprocess(topo->graph, 0.05, rng);
  catalog.suggested_burn_in = std::min<size_t>(catalog.suggested_burn_in, 400);
  catalog.suggested_jump = std::min<size_t>(catalog.suggested_jump, 300);
  auto network =
      net::SimulatedNetwork::Make(std::move(topo->graph),
                                  std::move(*databases), net::NetworkParams{},
                                  params.seed + 1);
  P2PAQP_CHECK(network.ok()) << network.status().ToString();
  return TestNetwork{std::move(*network), catalog, std::move(topo->partition)};
}

// The paper's error metric (Sec. 5.5, "errors are normalized between 0 and
// 1"): |estimate - truth| / total, where total is the exact aggregate at
// selectivity 1 (N for COUNT, the all-tuples sum for SUM).
inline double NormalizedCountError(const net::SimulatedNetwork& network,
                                   double estimate, data::Value lo,
                                   data::Value hi) {
  double truth = static_cast<double>(network.ExactCount(lo, hi));
  double total = static_cast<double>(network.TotalTuples());
  P2PAQP_CHECK_GT(total, 0.0);
  return std::fabs(estimate - truth) / total;
}

inline double NormalizedSumError(const net::SimulatedNetwork& network,
                                 double estimate, data::Value lo,
                                 data::Value hi) {
  double truth = static_cast<double>(network.ExactSum(lo, hi));
  auto total = static_cast<double>(
      network.ExactSum(std::numeric_limits<data::Value>::min(),
                       std::numeric_limits<data::Value>::max()));
  P2PAQP_CHECK_GT(total, 0.0);
  return std::fabs(estimate - truth) / total;
}

}  // namespace p2paqp::testing

#endif  // P2PAQP_TESTS_TEST_COMMON_H_

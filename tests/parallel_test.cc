// Tests for the deterministic parallel execution layer (util/parallel.h):
// pool lifecycle and exception propagation, and the headline contract —
// ParallelMap, bench::RunExperiment and verify::RunReplicates produce
// bit-identical results for any thread count (P2PAQP_THREADS=1/2/8).
#include "util/parallel.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "harness.h"
#include "verify/verify.h"

namespace p2paqp {
namespace {

// RAII override of P2PAQP_THREADS; restores the previous value on exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("P2PAQP_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv("P2PAQP_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("P2PAQP_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("P2PAQP_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ParallelThreadsTest, EnvKnobWins) {
  ScopedThreads guard("3");
  EXPECT_EQ(util::ParallelThreads(), 3u);
}

TEST(ParallelThreadsTest, ZeroAndGarbageFallBackToHardware) {
  {
    ScopedThreads guard("0");
    EXPECT_GE(util::ParallelThreads(), 1u);
  }
  {
    ScopedThreads guard("banana");
    EXPECT_GE(util::ParallelThreads(), 1u);
  }
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.Run(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const std::atomic<int>& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  util::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.Run(10, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPoolTest, CleanShutdownWithoutWork) {
  // Destructor must join workers that never saw a batch.
  util::ThreadPool pool(8);
}

TEST(ThreadPoolTest, EmptyBatchIsANoOp) {
  util::ThreadPool pool(2);
  pool.Run(0, [&](size_t) { FAIL() << "no tasks expected"; });
}

TEST(ParallelForTest, PropagatesLowestIndexException) {
  // Multiple tasks throw; the caller must always see the lowest index's
  // exception so failures are as deterministic as results.
  for (size_t threads : {1u, 2u, 8u}) {
    try {
      util::ParallelFor(
          64,
          [](size_t i) {
            if (i % 7 == 3) {
              throw std::runtime_error("boom " + std::to_string(i));
            }
          },
          {.threads = threads});
      FAIL() << "expected an exception at threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 3") << "threads=" << threads;
    }
  }
}

TEST(ParallelForTest, PoolSurvivesThrowingBatch) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.Run(16, [](size_t i) {
        if (i == 5) throw std::runtime_error("bad");
      }),
      std::runtime_error);
  // The pool must still execute a subsequent clean batch.
  std::atomic<int> total{0};
  pool.Run(16, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 16);
}

TEST(TaskRngTest, DeterministicPerIndexAndDecorrelated) {
  util::Rng a0 = util::TaskRng(42, 0);
  util::Rng a0_again = util::TaskRng(42, 0);
  util::Rng a1 = util::TaskRng(42, 1);
  EXPECT_EQ(a0.Next64(), a0_again.Next64());
  EXPECT_NE(util::TaskRng(42, 0).Next64(), a1.Next64());
  EXPECT_NE(util::TaskRng(42, 0).Next64(), util::TaskRng(43, 0).Next64());
}

TEST(ParallelMapTest, BitIdenticalAcrossThreadCounts) {
  auto run = [](size_t threads) {
    return util::ParallelMap(
        50,
        [](size_t i) {
          util::Rng rng = util::TaskRng(123, i);
          double x = 0.0;
          for (int k = 0; k < 100; ++k) x += rng.UniformDouble(0.0, 1.0);
          return x;
        },
        {.threads = threads});
  };
  std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

// --- End-to-end invariance: the replicate loops this PR parallelized ------

bench::World TinyWorld() {
  bench::WorldConfig config;
  config.num_peers = 80;
  config.num_edges = 400;
  config.tuples_per_peer = 20;
  return bench::BuildWorld(config);
}

bench::RunConfig TinyRunConfig() {
  bench::RunConfig config;
  config.repetitions = 5;
  config.initial_sample_tuples = 200;
  return config;
}

void ExpectSameStats(const bench::RunStats& a, const bench::RunStats& b,
                     const char* label) {
  EXPECT_EQ(a.mean_error, b.mean_error) << label;
  EXPECT_EQ(a.max_error, b.max_error) << label;
  EXPECT_EQ(a.mean_sample_tuples, b.mean_sample_tuples) << label;
  EXPECT_EQ(a.mean_phase2_peers, b.mean_phase2_peers) << label;
  EXPECT_EQ(a.mean_peers_visited, b.mean_peers_visited) << label;
  EXPECT_EQ(a.mean_messages, b.mean_messages) << label;
  EXPECT_EQ(a.mean_bytes, b.mean_bytes) << label;
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms) << label;
  EXPECT_EQ(a.failures, b.failures) << label;
}

TEST(ParallelInvarianceTest, RunExperimentBitIdenticalAcrossThreadCounts) {
  bench::World world = TinyWorld();
  bench::RunConfig config = TinyRunConfig();
  bench::RunStats serial;
  {
    ScopedThreads guard("1");
    serial = bench::RunExperiment(world, config);
  }
  {
    ScopedThreads guard("2");
    ExpectSameStats(serial, bench::RunExperiment(world, config), "threads=2");
  }
  {
    ScopedThreads guard("8");
    ExpectSameStats(serial, bench::RunExperiment(world, config), "threads=8");
  }
}

TEST(ParallelInvarianceTest, RunReplicatesBitIdenticalAcrossThreadCounts) {
  auto replicate = [](uint64_t seed, size_t) {
    util::Rng rng(seed);
    double x = 0.0;
    for (int k = 0; k < 1000; ++k) x += rng.UniformDouble(-1.0, 1.0);
    return x;
  };
  util::RunningStat serial;
  {
    ScopedThreads guard("1");
    serial = verify::RunReplicates(64, 0xabcdef, replicate);
  }
  for (const char* threads : {"2", "8"}) {
    ScopedThreads guard(threads);
    util::RunningStat stat = verify::RunReplicates(64, 0xabcdef, replicate);
    EXPECT_EQ(serial.count(), stat.count()) << "threads=" << threads;
    EXPECT_EQ(serial.mean(), stat.mean()) << "threads=" << threads;
    EXPECT_EQ(serial.variance(), stat.variance()) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace p2paqp

// Tests for peer identity/capabilities and the remaining net details.
#include "net/peer.h"

#include <regex>
#include <set>

#include <gtest/gtest.h>

#include "net/message.h"

namespace p2paqp::net {
namespace {

TEST(PeerTest, AddressFormatsAsDottedQuad) {
  Peer peer(3, /*ipv4=*/0x7f000001, /*port=*/6346, PeerCapabilities{});
  EXPECT_EQ(peer.address(), "127.0.0.1:6346");
  EXPECT_EQ(peer.id(), 3u);
  EXPECT_EQ(peer.ipv4(), 0x7f000001u);
  EXPECT_EQ(peer.port(), 6346);
}

TEST(PeerTest, AddressAlwaysParsesAsIpPort) {
  util::Rng rng(1);
  std::regex pattern(
      R"(^\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}:\d{1,5}$)");
  for (int i = 0; i < 50; ++i) {
    Peer peer(static_cast<graph::NodeId>(i),
              static_cast<uint32_t>(rng.Next64()),
              static_cast<uint16_t>(rng.UniformInt(1024, 65535)),
              RandomCapabilities(rng));
    EXPECT_TRUE(std::regex_match(peer.address(), pattern)) << peer.address();
  }
}

TEST(PeerTest, DefaultPeerIsAliveWithEmptyDatabase) {
  Peer peer;
  EXPECT_TRUE(peer.alive());
  EXPECT_TRUE(peer.database().empty());
  EXPECT_EQ(peer.id(), graph::kInvalidNode);
}

TEST(PeerTest, LivenessToggle) {
  Peer peer(1, 0, 1024, PeerCapabilities{});
  peer.set_alive(false);
  EXPECT_FALSE(peer.alive());
  peer.set_alive(true);
  EXPECT_TRUE(peer.alive());
}

TEST(PeerTest, DatabaseInstallAndMutate) {
  Peer peer(1, 0, 1024, PeerCapabilities{});
  peer.set_database(data::LocalDatabase(data::Table{{5}, {6}}));
  EXPECT_EQ(peer.database().size(), 2u);
  peer.mutable_database().Append(data::Tuple{7});
  EXPECT_EQ(peer.database().size(), 3u);
  EXPECT_EQ(peer.database().Count(5, 7), 3);
}

TEST(PeerCapabilitiesTest, RandomCapabilitiesStayInEnvelope) {
  util::Rng rng(2);
  std::set<uint32_t> bandwidth_tiers;
  for (int i = 0; i < 200; ++i) {
    PeerCapabilities caps = RandomCapabilities(rng);
    EXPECT_GE(caps.cpu_ghz, 0.3);
    EXPECT_LE(caps.cpu_ghz, 3.2);
    EXPECT_GE(caps.memory_mb, 64u);
    EXPECT_LE(caps.memory_mb, 2048u);
    EXPECT_GE(caps.disk_gb, 4u);
    EXPECT_LE(caps.disk_gb, 250u);
    EXPECT_GE(caps.max_connections, 4u);
    EXPECT_LE(caps.max_connections, 32u);
    bandwidth_tiers.insert(caps.bandwidth_kbps);
  }
  // All five connection tiers (dial-up .. LAN) should show up.
  EXPECT_EQ(bandwidth_tiers.size(), 5u);
}

TEST(MessageSizesTest, PayloadOrderingIsSensible) {
  // Walker (query + bookkeeping) outweighs a bare ping; aggregate replies
  // outweigh pongs.
  EXPECT_GT(DefaultPayloadBytes(MessageType::kWalker),
            DefaultPayloadBytes(MessageType::kPing));
  EXPECT_GT(DefaultPayloadBytes(MessageType::kAggregateReply),
            DefaultPayloadBytes(MessageType::kPong));
  EXPECT_GT(DefaultPayloadBytes(MessageType::kQuery),
            DefaultPayloadBytes(MessageType::kQueryHit));
}

TEST(MessageSizesTest, EveryTypeHasAName) {
  for (auto type : {MessageType::kPing, MessageType::kPong,
                    MessageType::kQuery, MessageType::kQueryHit,
                    MessageType::kWalker, MessageType::kAggregateReply,
                    MessageType::kSampleRequest, MessageType::kSampleReply}) {
    EXPECT_STRNE(MessageTypeToString(type), "UNKNOWN");
  }
}

}  // namespace
}  // namespace p2paqp::net

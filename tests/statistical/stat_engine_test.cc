// End-to-end statistical verification of the two-phase engine: COUNT, SUM,
// AVG and MEDIAN answers on both evaluation topologies are unbiased (within
// documented guard bands for the ratio/rank estimators), and the reported
// 95% confidence intervals are not over-confident.
//
// The engine-level canary runs the walk sampler with a deliberately wrong
// normalizer — the estimator-level "dropped reweighting" canary lives in
// stat_estimator_test.cc — and must fail, proving the harness would catch a
// mis-scaled estimator wired through the full engine.
#include "statistical_test_util.h"

#include <memory>

#include "gtest/gtest.h"

namespace p2paqp {
namespace {

using testing::EngineStatConfig;
using testing::RunEngineReplicates;

TEST(StatEngineTest, CountUnbiasedOnSynthetic) {
  EngineStatConfig config;
  config.op = query::AggregateOp::kCount;
  config.replicates = verify::Replicates(12, 48);
  config.base_seed = 0xc001;
  auto acc = RunEngineReplicates(testing::SyntheticStatWorld(), config);
  EXPECT_STAT_PASS(verify::MeanZTest(acc.errors(), 0.0,
                                     verify::DefaultAlpha()));
}

TEST(StatEngineTest, SumUnbiasedOnSynthetic) {
  EngineStatConfig config;
  config.op = query::AggregateOp::kSum;
  config.replicates = verify::Replicates(12, 48);
  config.base_seed = 0xc002;
  auto acc = RunEngineReplicates(testing::SyntheticStatWorld(), config);
  EXPECT_STAT_PASS(verify::MeanZTest(acc.errors(), 0.0,
                                     verify::DefaultAlpha()));
}

// AVG is a ratio estimator with O(1/m) small-sample bias; the guard band
// (0.5% of the truth) absorbs it while still catching real breakage.
TEST(StatEngineTest, AvgUnbiasedOnSyntheticWithinGuardBand) {
  auto& world = testing::SyntheticStatWorld();
  EngineStatConfig config;
  config.op = query::AggregateOp::kAvg;
  config.replicates = verify::Replicates(12, 48);
  config.base_seed = 0xc003;
  query::AggregateQuery query;
  query.op = config.op;
  query.predicate = config.predicate;
  double truth = testing::EngineTruth(world, query);
  auto acc = RunEngineReplicates(world, config);
  EXPECT_STAT_PASS(verify::MeanZTest(acc.errors(), 0.0,
                                     verify::DefaultAlpha(),
                                     /*bias_tolerance=*/0.005 * truth));
}

TEST(StatEngineTest, CountUnbiasedOnGnutella) {
  EngineStatConfig config;
  config.op = query::AggregateOp::kCount;
  config.replicates = verify::Replicates(12, 48);
  config.base_seed = 0xc004;
  auto acc = RunEngineReplicates(testing::GnutellaStatWorld(), config);
  EXPECT_STAT_PASS(verify::MeanZTest(acc.errors(), 0.0,
                                     verify::DefaultAlpha()));
}

// Reported 95% intervals: empirical coverage must not fall implausibly
// below nominal. 0.85 leaves room for the variance being itself estimated
// from a finite phase-II sample; over-coverage passes by design.
TEST(StatEngineTest, ConfidenceIntervalCoverageOnBothTopologies) {
  EngineStatConfig config;
  config.op = query::AggregateOp::kCount;
  config.replicates = verify::Replicates(24, 80);
  config.base_seed = 0xc005;
  auto synthetic = RunEngineReplicates(testing::SyntheticStatWorld(), config);
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(
      synthetic.covered(), synthetic.total(), 0.85, verify::DefaultAlpha()));

  config.base_seed = 0xc006;
  auto gnutella = RunEngineReplicates(testing::GnutellaStatWorld(), config);
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(
      gnutella.covered(), gnutella.total(), 0.85, verify::DefaultAlpha()));
}

// MEDIAN answers are checked on the rank scale (the paper's Sec. 5.6
// metric): the signed rank deviation of the returned value from 0.5 stays
// inside a guard band of 3 rank points, and its replicate mean shows no
// systematic drift beyond it.
TEST(StatEngineTest, MedianRankCenteredOnSynthetic) {
  auto& world = testing::SyntheticStatWorld();
  query::AggregateQuery query;
  query.op = query::AggregateOp::kMedian;
  query.predicate = query::RangePredicate::All();
  query.required_error = 0.08;

  size_t replicates = verify::Replicates(12, 48);
  util::RunningStat signed_ranks;
  for (size_t r = 0; r < replicates; ++r) {
    util::Rng rng(verify::ReplicateSeed(0xc007, r));
    core::EngineParams params;
    params.phase1_peers = 40;
    params.max_phase2_peers = 250;
    core::TwoPhaseEngine engine(&world.network, world.catalog, params);
    auto sink = testing::RandomLiveSink(world.network, rng);
    auto answer = engine.Execute(query, sink, rng);
    P2PAQP_CHECK(answer.ok()) << answer.status().ToString();
    // Signed rank of the returned value among all tuples, minus 0.5.
    int64_t below = 0;
    const auto& network = world.network;
    for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
      if (!network.IsAlive(p)) continue;
      for (const data::Tuple& t : network.peer(p).database().tuples()) {
        if (static_cast<double>(t.value) < answer->estimate) ++below;
      }
    }
    signed_ranks.Add(static_cast<double>(below) /
                         static_cast<double>(world.total_tuples) -
                     0.5);
  }
  // The sample median of a discrete value domain carries quantization bias;
  // the band is 3 rank points.
  EXPECT_STAT_PASS(verify::MeanZTest(signed_ranks, 0.0,
                                     verify::DefaultAlpha(),
                                     /*bias_tolerance=*/0.03));
  EXPECT_LT(signed_ranks.max(), 0.25);
  EXPECT_GT(signed_ranks.min(), -0.25);
}

// Engine-level canary: a uniform-weight sampler normalized as if it were
// degree-weighted scales every estimate by ~2|E|/M (the average degree).
// The z-test must reject this even at the fixed smoke replicate budget.
TEST(StatEngineTest, CanaryWrongNormalizerFails) {
  auto& world = testing::SyntheticStatWorld();
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  query.required_error = 0.08;
  double truth = testing::EngineTruth(world, query);

  const size_t replicates = 8;  // Mode-independent: must fail even in smoke.
  util::RunningStat estimates;
  for (size_t r = 0; r < replicates; ++r) {
    util::Rng rng(verify::ReplicateSeed(0xc008, r));
    core::EngineParams params;
    params.phase1_peers = 40;
    params.max_phase2_peers = 250;
    // Uniform oracle draws (weight 1 each) but normalized by 2|E| as if
    // they were degree weights: every observation inflated by avg degree.
    auto sampler = std::make_unique<sampling::UniformOracleSampler>(
        &world.network);
    core::TwoPhaseEngine engine(&world.network, world.catalog, params,
                                std::move(sampler),
                                world.catalog.total_degree_weight());
    auto sink = testing::RandomLiveSink(world.network, rng);
    auto answer = engine.Execute(query, sink, rng);
    P2PAQP_CHECK(answer.ok()) << answer.status().ToString();
    estimates.Add(answer->estimate);
  }
  EXPECT_STAT_FAIL(verify::MeanZTest(estimates, truth,
                                     verify::DefaultAlpha()));
}

}  // namespace
}  // namespace p2paqp

// Statistical verification of Theorems 1 and 2 at the estimator level.
//
// Sampling happens directly from the exact stationary distribution of a
// synthetic population with closed-form moments, so every null hypothesis is
// an exact constant: Y for unbiasedness, C/m for the variance, slope -1 for
// the decay law. The bias canaries prove the harness has the power to catch
// a broken estimator: they run the same pipeline with the 1/prob(s)
// reweighting dropped and must FAIL the z-test deterministically.
#include "statistical_test_util.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace p2paqp {
namespace {

using testing::SyntheticPopulation;

constexpr uint64_t kPopulationSeed = 977;

// Theorem 1: E[y''] = Y. Exactly unbiased, so no guard band.
TEST(StatEstimatorTest, Theorem1HorvitzThompsonUnbiased) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 32;
  size_t replicates = verify::Replicates(200, 4000);
  util::RunningStat estimates =
      verify::RunReplicates(replicates, 0x7e01, [&](uint64_t seed, size_t) {
        util::Rng rng(seed);
        return core::HorvitzThompson(pop.Draw(m, rng), pop.total_weight);
      });
  EXPECT_STAT_PASS(verify::MeanZTest(estimates, pop.truth,
                                     verify::DefaultAlpha()));
}

// Canary: the same pipeline with the 1/prob(s) reweighting dropped (the
// plain mean of sampled values scaled by M) is biased toward high-degree
// peers; on a degree-correlated population the z-test must catch it even at
// the canary's fixed small replicate budget. A pass here would mean the
// harness cannot detect a broken estimator.
TEST(StatEstimatorTest, Theorem1CanaryDroppedReweightingFails) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 32;
  const size_t replicates = 64;  // Mode-independent: must fail even in smoke.
  const double num_peers = static_cast<double>(pop.values.size());
  util::RunningStat estimates =
      verify::RunReplicates(replicates, 0x7e02, [&](uint64_t seed, size_t) {
        util::Rng rng(seed);
        auto draws = pop.Draw(m, rng);
        double sum = 0.0;
        for (const auto& obs : draws) sum += obs.value;  // No 1/prob(s).
        return num_peers * sum / static_cast<double>(draws.size());
      });
  EXPECT_STAT_FAIL(verify::MeanZTest(estimates, pop.truth,
                                     verify::DefaultAlpha()));
}

// Theorem 2: Var[y''] = C/m, i.e. log-variance against log-m has slope -1.
TEST(StatEstimatorTest, Theorem2VarianceDecaysInverselyWithM) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  std::vector<double> sample_sizes = {8, 16, 32, 64};
  size_t replicates = verify::Replicates(150, 1500);
  std::vector<double> variances;
  for (double m : sample_sizes) {
    auto draws_per_replicate = static_cast<size_t>(m);
    util::RunningStat estimates = verify::RunReplicates(
        replicates, 0x7e03 + draws_per_replicate,
        [&](uint64_t seed, size_t) {
          util::Rng rng(seed);
          return core::HorvitzThompson(pop.Draw(draws_per_replicate, rng),
                                       pop.total_weight);
        });
    variances.push_back(estimates.variance());
  }
  EXPECT_STAT_PASS(verify::InverseVarianceSlopeTest(
      sample_sizes, variances, replicates, verify::DefaultAlpha()));
}

// Theorem 2's estimator: HorvitzThompsonVariance is itself unbiased for
// C/m (it is the sample variance of iid per-peer estimates divided by m).
TEST(StatEstimatorTest, Theorem2VarianceEstimatorUnbiased) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 32;
  size_t replicates = verify::Replicates(200, 4000);
  util::RunningStat variance_estimates =
      verify::RunReplicates(replicates, 0x7e04, [&](uint64_t seed, size_t) {
        util::Rng rng(seed);
        return core::HorvitzThompsonVariance(pop.Draw(m, rng),
                                             pop.total_weight);
      });
  EXPECT_STAT_PASS(verify::MeanZTest(variance_estimates,
                                     pop.badness_c / static_cast<double>(m),
                                     verify::DefaultAlpha()));
}

// Calibration: the normal 95% interval built from the estimated variance
// must not cover implausibly below nominal. The population's weights are
// deliberately heavy-tailed (~25% of peers at w=1 carry large y*W/w terms),
// so the CLT bites slowly: measured coverage is ~0.77 at m=64, ~0.89 at
// m=256, ~0.94 at m=1024. The test runs at m=256 against a nominal of 0.80
// — enough to catch any real mis-calibration (the shrunk-interval canary
// sits near 0.30) without flaking on the known small-m skew deficit.
// Over-coverage passes by design.
TEST(StatEstimatorTest, ConfidenceIntervalCoverageCalibrated) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 256;
  size_t replicates = verify::Replicates(300, 2000);
  verify::CalibrationAccumulator acc;
  for (size_t r = 0; r < replicates; ++r) {
    util::Rng rng(verify::ReplicateSeed(0x7e05, r));
    auto draws = pop.Draw(m, rng);
    double estimate = core::HorvitzThompson(draws, pop.total_weight);
    double variance = core::HorvitzThompsonVariance(draws, pop.total_weight);
    acc.Add(verify::EstimateSample{estimate, pop.truth,
                                   1.96 * std::sqrt(variance)});
  }
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(acc.covered(), acc.total(),
                                               0.80, verify::DefaultAlpha()));
}

// Canary: intervals half as wide as they claim must fail calibration.
TEST(StatEstimatorTest, CoverageCanaryShrunkIntervalsFail) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 64;
  const size_t replicates = 400;  // Mode-independent.
  verify::CalibrationAccumulator acc;
  for (size_t r = 0; r < replicates; ++r) {
    util::Rng rng(verify::ReplicateSeed(0x7e06, r));
    auto draws = pop.Draw(m, rng);
    double estimate = core::HorvitzThompson(draws, pop.total_weight);
    double variance = core::HorvitzThompsonVariance(draws, pop.total_weight);
    acc.Add(verify::EstimateSample{estimate, pop.truth,
                                   0.4 * std::sqrt(variance)});
  }
  EXPECT_STAT_FAIL(verify::CoverageAtLeastTest(acc.covered(), acc.total(),
                                               0.92, verify::DefaultAlpha()));
}

}  // namespace
}  // namespace p2paqp

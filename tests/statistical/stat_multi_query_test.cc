// Statistical verification of the multi-query scheduler: answers computed
// from a REUSED sample frame (the warm second batch, where most selections
// are served from the sink-side frame instead of fresh walks) are as
// unbiased as cold-start answers, for both COUNT and SUM, and their
// reported 95% intervals keep honest coverage. Frame reuse recycles the
// randomness of earlier walks across queries — the Horvitz-Thompson
// reweighting must make that legitimate, and this suite machine-checks it
// at the 5.5-sigma default alpha.
#include "statistical_test_util.h"

#include <vector>

#include "core/multi_query.h"
#include "gtest/gtest.h"

namespace p2paqp {
namespace {

struct SchedulerReplicate {
  verify::EstimateSample warm;   // Measured query, frame-reuse batch.
  uint64_t warm_frame_hits = 0;  // Reuse must actually have happened.
};

struct SchedulerStatResult {
  verify::CalibrationAccumulator acc;
  uint64_t total_warm_hits = 0;
};

// Runs `replicates` independent scheduler sessions. Each session executes a
// cold batch (builds the shared frame) and then a warm batch of the same
// query mix against its own cloned world; the measured query's WARM answer
// is what feeds the accumulator, so the z-test sees only frame-reuse
// estimates. The reduction is serial in replicate order (thread-invariant).
SchedulerStatResult RunSchedulerReplicates(const bench::World& world,
                                           query::AggregateOp op,
                                           uint64_t base_seed,
                                           size_t replicates) {
  query::AggregateQuery measured;
  measured.op = op;
  measured.predicate = {1, 40};
  measured.required_error = 0.08;
  const double truth = testing::EngineTruth(world, measured);

  // Sibling queries riding in the same batch: the frame is genuinely shared
  // across a mix, not rebuilt per predicate.
  std::vector<query::AggregateQuery> queries = {measured, measured, measured};
  queries[1].predicate = {1, 20};
  queries[2].predicate = {20, 60};

  std::vector<SchedulerReplicate> samples = util::ParallelMap(
      replicates, [&](size_t r) {
        util::Rng rng(verify::ReplicateSeed(base_seed, r));
        bench::World rep_world = bench::CloneWorld(
            world, testing::ReplicateNetworkSeed(base_seed, r));
        core::FreshnessCache cache(/*ttl_epochs=*/10, /*max_entries=*/1 << 14);
        core::SchedulerParams params;
        params.engine.phase1_peers = 40;
        params.engine.max_phase2_peers = 250;
        params.walk.jump = rep_world.catalog.suggested_jump;
        params.walk.burn_in = rep_world.catalog.suggested_burn_in;
        core::QueryScheduler scheduler(&rep_world.network, rep_world.catalog,
                                       params, &cache);
        graph::NodeId sink =
            testing::RandomLiveSink(rep_world.network, rng);
        core::BatchResult cold = scheduler.ExecuteBatch(queries, sink, rng);
        P2PAQP_CHECK(cold.answers[0].ok())
            << cold.answers[0].status().ToString();
        core::BatchResult warm = scheduler.ExecuteBatch(queries, sink, rng);
        P2PAQP_CHECK(warm.answers[0].ok())
            << warm.answers[0].status().ToString();
        SchedulerReplicate rep;
        rep.warm = verify::EstimateSample{warm.answers[0]->estimate, truth,
                                          warm.answers[0]->ci_half_width_95};
        rep.warm_frame_hits = warm.frame.frame_hits;
        return rep;
      });

  SchedulerStatResult result;
  for (const SchedulerReplicate& rep : samples) {
    result.acc.Add(rep.warm);
    result.total_warm_hits += rep.warm_frame_hits;
  }
  return result;
}

TEST(StatMultiQueryTest, ReusedFrameCountUnbiasedOnSynthetic) {
  auto result = RunSchedulerReplicates(testing::SyntheticStatWorld(),
                                       query::AggregateOp::kCount, 0xd001,
                                       verify::Replicates(12, 48));
  // Every warm batch must actually have reused the frame, or this test
  // silently degenerates into a second cold-start check.
  ASSERT_GT(result.total_warm_hits, 0u);
  EXPECT_STAT_PASS(verify::MeanZTest(result.acc.errors(), 0.0,
                                     verify::DefaultAlpha()));
}

TEST(StatMultiQueryTest, ReusedFrameSumUnbiasedOnSynthetic) {
  auto result = RunSchedulerReplicates(testing::SyntheticStatWorld(),
                                       query::AggregateOp::kSum, 0xd002,
                                       verify::Replicates(12, 48));
  ASSERT_GT(result.total_warm_hits, 0u);
  EXPECT_STAT_PASS(verify::MeanZTest(result.acc.errors(), 0.0,
                                     verify::DefaultAlpha()));
}

TEST(StatMultiQueryTest, ReusedFrameCountUnbiasedOnGnutella) {
  auto result = RunSchedulerReplicates(testing::GnutellaStatWorld(),
                                       query::AggregateOp::kCount, 0xd003,
                                       verify::Replicates(12, 48));
  ASSERT_GT(result.total_warm_hits, 0u);
  EXPECT_STAT_PASS(verify::MeanZTest(result.acc.errors(), 0.0,
                                     verify::DefaultAlpha()));
}

// Reported intervals on warm answers: frame reuse induces cross-query
// correlation but must not make the per-query CI over-confident.
TEST(StatMultiQueryTest, ReusedFrameCoverageStaysHonest) {
  auto result = RunSchedulerReplicates(testing::SyntheticStatWorld(),
                                       query::AggregateOp::kCount, 0xd004,
                                       verify::Replicates(24, 80));
  ASSERT_GT(result.total_warm_hits, 0u);
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(
      result.acc.covered(), result.acc.total(), 0.85,
      verify::DefaultAlpha()));
}

}  // namespace
}  // namespace p2paqp

// Statistical verification of the random-walk sampling layer: selections
// follow the degree-proportional stationary distribution (the premise of
// Theorems 1-3), the jump parameter j controls serial correlation, and the
// Metropolis-Hastings variant is uniform.
//
// Chi-square checks apply a Kish design-effect correction derived from the
// *measured* lag-1 autocorrelation, so the suite both tolerates the residual
// correlation of finite jumps and quantifies its decay.
#include "statistical_test_util.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "sampling/convergence.h"

namespace p2paqp {
namespace {

testing::TestNetwork& WalkNet() {
  static testing::TestNetwork net = [] {
    testing::TestNetworkParams params;
    params.num_peers = 240;
    params.num_edges = 1440;
    params.num_subgraphs = 1;
    params.cut_edges = 0;
    params.tuples_per_peer = 4;  // Data is irrelevant to walk tests.
    params.seed = 9090;
    return testing::MakeTestNetwork(params);
  }();
  return net;
}

// Collects `total` selections in independent batches (fresh burn-in each),
// so long-range correlation is bounded by the batch length.
std::vector<sampling::PeerVisit> CollectSelections(sampling::RandomWalk& walk,
                                                   size_t total,
                                                   size_t batch_size,
                                                   uint64_t base_seed) {
  auto& net = WalkNet();
  std::vector<sampling::PeerVisit> visits;
  visits.reserve(total);
  size_t batch = 0;
  while (visits.size() < total) {
    util::Rng rng(verify::ReplicateSeed(base_seed, batch++));
    auto sink = testing::RandomLiveSink(net.network, rng);
    size_t want = std::min(batch_size, total - visits.size());
    auto got = walk.Collect(sink, want, rng);
    P2PAQP_CHECK(got.ok()) << got.status().ToString();
    visits.insert(visits.end(), got->begin(), got->end());
  }
  return visits;
}

// Kish effective-sample-size correction for positively correlated draws:
// sum of the geometric autocorrelation series (1 + rho) / (1 - rho), with a
// 25% margin on top. Never below 1.
double DesignEffect(double rho) {
  rho = std::clamp(rho, 0.0, 0.9);
  return std::max(1.0, 1.25 * (1.0 + rho) / (1.0 - rho));
}

// The stationary premise: per-node visit frequencies are chi-square
// consistent with deg(p)/2|E| for every tested jump.
TEST(StatWalkTest, VisitFrequenciesMatchDegreeStationaryAcrossJumps) {
  auto& net = WalkNet();
  const graph::Graph& graph = net.network.graph();
  size_t total = verify::Replicates(8000, 60000);
  for (size_t jump : {size_t{2}, size_t{5}, size_t{10}}) {
    sampling::WalkParams params;
    params.jump = jump;
    params.burn_in = 2 * net.catalog.suggested_burn_in;
    sampling::RandomWalk walk(&net.network, params);
    auto visits = CollectSelections(walk, total, 500, 0xa100 + jump);

    std::vector<double> observed(graph.num_nodes(), 0.0);
    for (const auto& v : visits) observed[v.peer] += 1.0;
    std::vector<double> expected(graph.num_nodes(), 0.0);
    for (graph::NodeId n = 0; n < graph.num_nodes(); ++n) {
      expected[n] = static_cast<double>(graph.degree(n));
    }

    util::Rng rho_rng(0xa200 + jump);
    double rho = sampling::MeasureDegreeAutocorrelation(graph, jump, 4000,
                                                        rho_rng);
    auto verdict = verify::ChiSquareGofTest(observed, expected,
                                            verify::DefaultAlpha(),
                                            /*min_expected=*/8.0,
                                            DesignEffect(rho));
    EXPECT_STAT_PASS(verdict);
  }
}

// Canary: the same frequencies tested against a *uniform* expectation must
// fail — on a power-law graph degree-proportional visits are far from
// uniform, and a pass would mean the chi-square lacks power.
TEST(StatWalkTest, VisitFrequencyCanaryUniformNullFails) {
  auto& net = WalkNet();
  const graph::Graph& graph = net.network.graph();
  sampling::WalkParams params;
  params.jump = 10;
  params.burn_in = 2 * net.catalog.suggested_burn_in;
  sampling::RandomWalk walk(&net.network, params);
  auto visits = CollectSelections(walk, 8000, 500, 0xa300);

  std::vector<double> observed(graph.num_nodes(), 0.0);
  for (const auto& v : visits) observed[v.peer] += 1.0;
  std::vector<double> uniform(graph.num_nodes(), 1.0);
  util::Rng rho_rng(0xa301);
  double rho =
      sampling::MeasureDegreeAutocorrelation(graph, 10, 4000, rho_rng);
  EXPECT_STAT_FAIL(verify::ChiSquareGofTest(observed, uniform,
                                            verify::DefaultAlpha(), 8.0,
                                            DesignEffect(rho)));
}

// Degrees of walk-selected peers are KS-indistinguishable from exact draws
// out of the degree-proportional distribution (an oracle with global
// knowledge). Heavy ties only make the KS conservative.
TEST(StatWalkTest, SelectionDegreesMatchStationaryOracle) {
  auto& net = WalkNet();
  const graph::Graph& graph = net.network.graph();
  size_t n = verify::Replicates(2000, 20000);

  sampling::WalkParams params;
  params.jump = net.catalog.suggested_jump;
  params.burn_in = 2 * net.catalog.suggested_burn_in;
  sampling::RandomWalk walk(&net.network, params);
  auto visits = CollectSelections(walk, n, 500, 0xa400);
  std::vector<double> walk_degrees;
  walk_degrees.reserve(n);
  for (const auto& v : visits) {
    walk_degrees.push_back(static_cast<double>(v.degree));
  }

  std::vector<double> weights(graph.num_nodes());
  for (graph::NodeId node = 0; node < graph.num_nodes(); ++node) {
    weights[node] = static_cast<double>(graph.degree(node));
  }
  util::Rng oracle_rng(0xa401);
  std::vector<double> oracle_degrees;
  oracle_degrees.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    oracle_degrees.push_back(weights[oracle_rng.WeightedIndex(weights)]);
  }

  EXPECT_STAT_PASS(verify::KsTwoSampleTest(walk_degrees, oracle_degrees,
                                           verify::DefaultAlpha()));
}

// Metropolis-Hastings neutralizes the degree bias: per-node frequencies are
// chi-square consistent with uniform.
TEST(StatWalkTest, MetropolisHastingsIsUniform) {
  auto& net = WalkNet();
  const graph::Graph& graph = net.network.graph();
  sampling::WalkParams params;
  params.jump = 10;
  params.burn_in = 2 * net.catalog.suggested_burn_in;
  params.variant = sampling::WalkVariant::kMetropolisHastings;
  sampling::RandomWalk walk(&net.network, params);
  size_t total = verify::Replicates(8000, 60000);
  auto visits = CollectSelections(walk, total, 500, 0xa500);

  std::vector<double> observed(graph.num_nodes(), 0.0);
  for (const auto& v : visits) observed[v.peer] += 1.0;
  std::vector<double> uniform(graph.num_nodes(), 1.0);
  // MH mixes more slowly (rejections); reuse the simple-walk correlation
  // probe as a proxy and double the margin.
  util::Rng rho_rng(0xa501);
  double rho =
      sampling::MeasureDegreeAutocorrelation(graph, 10, 4000, rho_rng);
  EXPECT_STAT_PASS(verify::ChiSquareGofTest(observed, uniform,
                                            verify::DefaultAlpha(), 8.0,
                                            2.0 * DesignEffect(rho)));
}

// The jump dial: consecutive selections at j = 1 are always graph-neighbors
// (or lazy repeats); growing j drives the adjacent-pair fraction down to the
// independence baseline, and the measured lag-1 degree autocorrelation drops
// alongside. Quantifies the satellite claim that j decorrelates selections.
TEST(StatWalkTest, SerialCorrelationDropsAsJumpGrows) {
  auto& net = WalkNet();
  const graph::Graph& graph = net.network.graph();
  size_t total = verify::Replicates(4000, 20000);

  auto adjacent_fraction = [&](size_t jump) {
    sampling::WalkParams params;
    params.jump = jump;
    params.burn_in = net.catalog.suggested_burn_in;
    sampling::RandomWalk walk(&net.network, params);
    auto visits = CollectSelections(walk, total, 500, 0xa600 + jump);
    size_t adjacent = 0;
    size_t pairs = 0;
    for (size_t i = 1; i < visits.size(); ++i) {
      graph::NodeId a = visits[i - 1].peer;
      graph::NodeId b = visits[i].peer;
      ++pairs;
      if (a == b) {
        ++adjacent;
        continue;
      }
      auto nbrs = graph.neighbors(a);
      if (std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end()) ++adjacent;
    }
    return static_cast<double>(adjacent) / static_cast<double>(pairs);
  };

  double frac1 = adjacent_fraction(1);
  double frac4 = adjacent_fraction(4);
  double frac16 = adjacent_fraction(16);
  // j = 1 selects every hop: consecutive selections are adjacent by
  // construction (modulo batch boundaries).
  EXPECT_GT(frac1, 0.9);
  EXPECT_LT(frac4, frac1);
  EXPECT_LT(frac16, frac4 + 0.02);
  // Independence baseline: P(adjacent) under iid stationary draws is
  // sum_a pi_a * (deg(a) + 1) * max_deg / 2|E| at most; bound loosely.
  EXPECT_LT(frac16, 0.25);

  util::Rng rng1(0xa700);
  util::Rng rng16(0xa701);
  double rho1 =
      sampling::MeasureDegreeAutocorrelation(graph, 1, total, rng1);
  double rho16 =
      sampling::MeasureDegreeAutocorrelation(graph, 16, total, rng16);
  EXPECT_LT(rho16, rho1 + 0.05);
  EXPECT_LT(rho16, 0.15);
}

}  // namespace
}  // namespace p2paqp

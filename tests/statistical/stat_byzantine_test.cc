// Statistical verification of the Byzantine-tolerance layer (PR 4): with a
// coalition of lying peers (degree inflation + aggregate corruption), the
// robust sink (MAD screening + winsorized HT + degree audit + reply dedup)
// must keep the paper's normalized error within the required envelope, while
// the plain Horvitz-Thompson sink — fed the identical tampered replies —
// visibly fails. The plain-HT run is the negative control proving the test
// can detect the attack it claims to defend against.
//
// The chaos-matrix entries (ctest -L chaos) re-run the bounded-error check
// across adversary fraction x behavior via the P2PAQP_CHAOS_FRACTION and
// P2PAQP_CHAOS_BEHAVIOR environment variables.
#include "statistical_test_util.h"

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "net/adversary.h"

namespace p2paqp {
namespace {

// The combined attack the acceptance criterion names: adversaries claim 4x
// their degree (shrinking their HT weight 4x) and ship 20x their true local
// aggregates. Net effect on plain HT: each adversarial observation lands
// ~5x too high — the two lies partially cancel, which is exactly why the
// degree audit and the value screen are separate defenses.
net::AdversaryPlan CombinedAttack(double fraction) {
  net::AdversaryPlan plan;
  plan.adversary_fraction = fraction;
  plan.degree_factor = 4.0;
  plan.value_scale = 20.0;
  return plan;
}

core::RobustnessPolicy DefensePolicy() {
  core::RobustnessPolicy policy;
  policy.estimator = core::RobustEstimatorKind::kWinsorized;
  policy.trim_fraction = 0.05;
  policy.mad_cutoff = 6.0;
  policy.degree_audit_probes = 3;
  return policy;
}

struct ByzantineRun {
  verify::CalibrationAccumulator acc;
  util::RunningStat normalized_errors;
  size_t suspected_peers = 0;
  size_t duplicate_replies = 0;
  double trimmed_mass_sum = 0.0;
  size_t failures = 0;  // Replicates the engine refused to answer.
};

struct ByzantineOutcome {
  verify::EstimateSample sample;
  double normalized_error = 0.0;
  size_t suspected_peers = 0;
  size_t duplicate_replies = 0;
  double trimmed_mass = 0.0;
  bool failed = false;
};

// Installs `plan` on the shared synthetic world (CloneWorld re-seeds the
// injector per replicate, so coalitions are redrawn independently) and runs
// replicated queries under `policy`.
ByzantineRun RunByzantineReplicates(const net::AdversaryPlan& plan,
                                    const core::RobustnessPolicy& policy,
                                    size_t replicates, uint64_t base_seed) {
  bench::World& world = testing::SyntheticStatWorld();
  world.network.InstallAdversaryPlan(plan, base_seed ^ 0xB1Bu);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  query.required_error = 0.08;
  const double truth = testing::EngineTruth(world, query);

  std::vector<ByzantineOutcome> outcomes = util::ParallelMap(
      replicates, [&](size_t r) {
        util::Rng rng(verify::ReplicateSeed(base_seed, r));
        bench::World rep_world = bench::CloneWorld(
            world, testing::ReplicateNetworkSeed(base_seed, r));
        core::EngineParams params;
        params.phase1_peers = 40;
        params.max_phase2_peers = 250;
        params.robustness = policy;
        core::TwoPhaseEngine engine(&rep_world.network, rep_world.catalog,
                                    params);
        graph::NodeId sink = testing::RandomLiveSink(rep_world.network, rng);
        auto answer = engine.Execute(query, sink, rng);
        ByzantineOutcome out;
        if (!answer.ok()) {
          // A hostile regime may legitimately starve the quorum (e.g. the
          // audit rejecting a captured sample); count it, don't crash.
          out.failed = true;
          return out;
        }
        out.sample = verify::EstimateSample{answer->estimate, truth,
                                            answer->ci_half_width_95};
        out.normalized_error =
            bench::NormalizedError(world, query, answer->estimate);
        out.suspected_peers = answer->suspected_peers;
        out.duplicate_replies = answer->duplicate_replies;
        out.trimmed_mass = answer->trimmed_mass;
        return out;
      });
  world.network.InstallAdversaryPlan(net::AdversaryPlan{}, 0);

  ByzantineRun run;
  for (const ByzantineOutcome& out : outcomes) {
    if (out.failed) {
      ++run.failures;
      continue;
    }
    run.acc.Add(out.sample);
    run.normalized_errors.Add(out.normalized_error);
    run.suspected_peers += out.suspected_peers;
    run.duplicate_replies += out.duplicate_replies;
    run.trimmed_mass_sum += out.trimmed_mass;
  }
  return run;
}

// --- Acceptance: 10% combined attack ---------------------------------------

// The robust sink keeps the normalized error within the required envelope
// under the acceptance regime (10% adversaries, degree inflation + 10x
// aggregate corruption).
TEST(StatByzantineTest, RobustWithinEnvelopeAtTenPercent) {
  auto run = RunByzantineReplicates(CombinedAttack(0.10), DefensePolicy(),
                                    verify::Replicates(12, 48), 0xb001);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_LT(run.normalized_errors.mean(), 0.08);
  // The defenses visibly worked: audits caught inflators or the estimator
  // clipped corrupted mass.
  EXPECT_GT(run.suspected_peers + static_cast<size_t>(
                run.trimmed_mass_sum > 0.0 ? 1 : 0), 0u);
}

// Stated tolerance ceiling: the robust error envelope still holds (with a
// looser bound) at a 20% coalition.
TEST(StatByzantineTest, RobustDegradesGracefullyAtTwentyPercent) {
  auto run = RunByzantineReplicates(CombinedAttack(0.20), DefensePolicy(),
                                    verify::Replicates(12, 48), 0xb002);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_LT(run.normalized_errors.mean(), 0.12);
}

// Negative control: the plain Horvitz-Thompson sink fed the identical
// tampered replies must MISS the envelope the robust sink meets — otherwise
// the test above proves nothing about the defenses.
TEST(StatByzantineTest, PlainHTCanaryFailsUnderAttack) {
  auto run = RunByzantineReplicates(CombinedAttack(0.10),
                                    core::RobustnessPolicy{},
                                    verify::Replicates(12, 48), 0xb003);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_GT(run.normalized_errors.mean(), 0.08);
}

// --- Zero-adversary agreement -----------------------------------------------

// With every peer honest, the robust sink stays unbiased and agrees with the
// plain sink: the robustness tax on honest data is bounded.
TEST(StatByzantineTest, ZeroAdversariesRobustAgreesWithPlain) {
  auto robust = RunByzantineReplicates(net::AdversaryPlan{}, DefensePolicy(),
                                       verify::Replicates(12, 48), 0xb004);
  auto plain = RunByzantineReplicates(net::AdversaryPlan{},
                                      core::RobustnessPolicy{},
                                      verify::Replicates(12, 48), 0xb004);
  ASSERT_GT(robust.acc.total(), 0u);
  EXPECT_EQ(robust.suspected_peers, 0u);
  EXPECT_LT(robust.normalized_errors.mean(), 0.08);
  EXPECT_LT(std::fabs(robust.normalized_errors.mean() -
                      plain.normalized_errors.mean()),
            0.03);
}

// Robust estimates stay unbiased on honest data (the winsorization bias is
// inside the z-test's tolerance band).
TEST(StatByzantineTest, ZeroAdversariesRobustUnbiased) {
  bench::World& world = testing::SyntheticStatWorld();
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  double truth = testing::EngineTruth(world, query);
  auto run = RunByzantineReplicates(net::AdversaryPlan{}, DefensePolicy(),
                                    verify::Replicates(16, 64), 0xb005);
  EXPECT_STAT_PASS(verify::MeanZTest(run.acc.errors(), 0.0,
                                     verify::DefaultAlpha(),
                                     /*bias_tolerance=*/0.02 * truth));
}

// --- Chaos matrix -----------------------------------------------------------

// One cell of the CI chaos matrix: P2PAQP_CHAOS_FRACTION x
// P2PAQP_CHAOS_BEHAVIOR select the regime; the robust sink must answer with
// bounded error in every cell. Unset variables default to the acceptance
// regime's fraction with the scale behavior.
TEST(StatByzantineTest, ChaosMatrixCellStaysBounded) {
  double fraction = 0.10;
  if (const char* env = std::getenv("P2PAQP_CHAOS_FRACTION")) {
    fraction = std::atof(env);
  }
  net::AdversaryBehavior behavior = net::AdversaryBehavior::kScale;
  if (const char* env = std::getenv("P2PAQP_CHAOS_BEHAVIOR")) {
    ASSERT_TRUE(net::ParseAdversaryBehavior(env, &behavior)) << env;
  }
  net::AdversaryPlan plan = net::MakeBehaviorPlan(behavior, fraction);
  auto run = RunByzantineReplicates(plan, DefensePolicy(),
                                    verify::Replicates(8, 24), 0xc000);
  ASSERT_GT(run.acc.total(), 0u);
  // Hostile regimes may starve individual replicates; most must answer.
  EXPECT_LE(run.failures * 4, run.acc.total());
  // Regime-aware envelope. Hijack is a sampling-capture attack: trapped
  // walks over-sample colluders whose *values* are honest, so the sink-side
  // value/degree screens only partially mitigate it (documented gap in
  // docs/ALGORITHM.md; the walk-level mitigation is independent parallel
  // walkers). A 20% coalition sits near the winsorized screen's effective
  // breakdown point, so its bound is looser too.
  double bound = 0.15;
  if (behavior == net::AdversaryBehavior::kHijack) {
    bound = 0.35;
  } else if (fraction >= 0.2) {
    bound = 0.30;
  }
  EXPECT_LT(run.normalized_errors.mean(), bound);
  if (behavior == net::AdversaryBehavior::kReplay && fraction > 0.0) {
    EXPECT_GT(run.duplicate_replies, 0u);
  }
}

}  // namespace
}  // namespace p2paqp

// Statistical verification of the graceful-degradation path added in PR 1:
// under a lossy transport with retransmissions disabled, the engine must
// answer with `degraded` set, stay unbiased (Horvitz-Thompson reweighting
// over the surviving replies, loss being selection-independent), and report
// confidence intervals that still cover the truth after widening.
//
// The whole binary shares one synthetic world with an installed FaultPlan;
// every replicate runs against its own CloneWorld (which re-seeds the fault
// injector from the replicate seed), so replicates are independent of each
// other and of test execution order, and safe to run in parallel.
#include "statistical_test_util.h"

#include "gtest/gtest.h"
#include "net/fault.h"

namespace p2paqp {
namespace {

bench::World& LossyWorld() {
  static bench::World& world = [&]() -> bench::World& {
    bench::World& w = testing::SyntheticStatWorld();
    net::FaultPlan plan;
    plan.drop_probability = 0.25;
    w.network.InstallFaultPlan(plan, /*seed=*/4242);
    return w;
  }();
  return world;
}

struct DegradedRun {
  verify::CalibrationAccumulator acc;
  util::RunningStat normalized_errors;
  size_t degraded_count = 0;
  size_t observations_lost = 0;
};

// One replicate's outputs, filled into its own slot by the parallel run.
struct LossyOutcome {
  verify::EstimateSample sample;
  double normalized_error = 0.0;
  bool degraded = false;
  size_t observations_lost = 0;
};

DegradedRun RunLossyReplicates(size_t replicates, uint64_t base_seed) {
  const bench::World& world = LossyWorld();
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  query.required_error = 0.08;
  double truth = testing::EngineTruth(world, query);

  std::vector<LossyOutcome> outcomes = util::ParallelMap(
      replicates, [&](size_t r) {
        util::Rng rng(verify::ReplicateSeed(base_seed, r));
        // CloneWorld re-seeds the installed fault plan from the clone seed,
        // so each replicate sees its own independent loss pattern.
        bench::World rep_world = bench::CloneWorld(
            world, testing::ReplicateNetworkSeed(base_seed, r));
        core::EngineParams params;
        params.phase1_peers = 40;
        params.max_phase2_peers = 250;
        params.reply_retransmits = 0;  // Force visible loss.
        core::TwoPhaseEngine engine(&rep_world.network, rep_world.catalog,
                                    params);
        auto sink = testing::RandomLiveSink(rep_world.network, rng);
        auto answer = engine.Execute(query, sink, rng);
        P2PAQP_CHECK(answer.ok()) << answer.status().ToString();
        LossyOutcome out;
        out.sample = verify::EstimateSample{answer->estimate, truth,
                                            answer->ci_half_width_95};
        out.normalized_error =
            bench::NormalizedError(world, query, answer->estimate);
        out.degraded = answer->degraded;
        out.observations_lost = answer->observations_lost;
        return out;
      });

  DegradedRun run;
  for (const LossyOutcome& out : outcomes) {
    run.acc.Add(out.sample);
    run.normalized_errors.Add(out.normalized_error);
    if (out.degraded) ++run.degraded_count;
    run.observations_lost += out.observations_lost;
  }
  return run;
}

// The lossy path actually exercises degradation: with a 25% per-message
// drop rate and no retransmits, most replicates lose observations.
TEST(StatDegradedTest, LossActuallyHappens) {
  auto run = RunLossyReplicates(verify::Replicates(12, 48), 0xd001);
  EXPECT_GE(run.degraded_count * 2, run.acc.total());
  EXPECT_GT(run.observations_lost, 0u);
}

// Unbiasedness survives selection-independent loss. The guard band (0.5% of
// the truth) absorbs the second-order effect of walks occasionally being
// truncated mid-collection.
TEST(StatDegradedTest, DegradedEstimatesUnbiased) {
  bench::World& world = LossyWorld();
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  double truth = testing::EngineTruth(world, query);
  auto run = RunLossyReplicates(verify::Replicates(16, 64), 0xd002);
  EXPECT_STAT_PASS(verify::MeanZTest(run.acc.errors(), 0.0,
                                     verify::DefaultAlpha(),
                                     /*bias_tolerance=*/0.005 * truth));
}

// The widened interval (ci * sqrt(requested / arrived)) must still cover.
TEST(StatDegradedTest, WidenedIntervalsCoverTruth) {
  auto run = RunLossyReplicates(verify::Replicates(24, 80), 0xd003);
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(
      run.acc.covered(), run.acc.total(), 0.85, verify::DefaultAlpha()));
}

// The paper's [0,1]-normalized error metric stays small on the degraded
// path: losing a quarter of the replies costs variance, not validity. The
// engine is tuned for required_error = 0.08, so the replicate mean must sit
// at or below that target even with a quarter of the replies dropped.
TEST(StatDegradedTest, NormalizedErrorStaysSmall) {
  auto run = RunLossyReplicates(verify::Replicates(12, 48), 0xd004);
  EXPECT_LT(run.normalized_errors.mean(), 0.08);
  EXPECT_LT(run.normalized_errors.max(), 0.30);
}

}  // namespace
}  // namespace p2paqp

// Statistical verification of Theorem 3: for half-sample cross-validation
// over m iid stationary draws, E[CVError^2] = 2 E[err^2] — with disjoint
// halves of size m/2 this is exactly 4C/m, a closed-form constant of the
// synthetic population. Also checks the paper's phase-II sizing rule built
// on it: plans sized by m' = (m/2)(CVError/delta)^2 meet the requested error
// with high probability.
#include "statistical_test_util.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"

namespace p2paqp {
namespace {

using testing::SyntheticPopulation;

constexpr uint64_t kPopulationSeed = 977;

// Theorem 3: the replicate mean of CVError^2 matches 4C/m exactly.
TEST(StatCrossValidationTest, CvSquaredErrorMatchesTheorem3Constant) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 32;
  size_t replicates = verify::Replicates(200, 2000);
  util::RunningStat cv_squared =
      verify::RunReplicates(replicates, 0xcb01, [&](uint64_t seed, size_t) {
        util::Rng rng(seed);
        auto draws = pop.Draw(m, rng);
        auto cv = core::CrossValidate(draws, pop.total_weight,
                                      /*repeats=*/10, rng);
        return cv.cv_error * cv.cv_error;
      });
  EXPECT_STAT_PASS(verify::MeanZTest(
      cv_squared, 4.0 * pop.badness_c / static_cast<double>(m),
      verify::DefaultAlpha()));
}

// Canary: the common misreading — "CVError^2 estimates the full-sample
// error E[err^2] = C/m directly" — is off by 4x and must be rejected even
// at the canary's fixed replicate budget.
TEST(StatCrossValidationTest, CanaryFullSampleNullFails) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t m = 32;
  // Mode-independent: must fail even in smoke. CVError^2 replicates are
  // noisy (relative sd of a squared half-split difference is large), so the
  // 3x gap between 4C/m and C/m needs ~1024 replicates to clear 5.5 sigma
  // with a 2x margin; each replicate costs only m draws + 10 splits.
  const size_t replicates = 1024;
  util::RunningStat cv_squared =
      verify::RunReplicates(replicates, 0xdead, [&](uint64_t seed, size_t) {
        util::Rng rng(seed);
        auto draws = pop.Draw(m, rng);
        auto cv = core::CrossValidate(draws, pop.total_weight,
                                      /*repeats=*/10, rng);
        return cv.cv_error * cv.cv_error;
      });
  EXPECT_STAT_FAIL(verify::MeanZTest(cv_squared,
                                     pop.badness_c / static_cast<double>(m),
                                     verify::DefaultAlpha()));
}

// The sizing rule end to end: measure CVError on a phase-I sample, size
// phase II with PhaseTwoSampleSize, draw the phase-II sample, and check the
// fraction of replicates meeting the requested relative error. Theorem 3
// puts the per-replicate success probability near P(|Z| <= sqrt(2)) ~ 0.84;
// the calibration check uses 0.75 as the floor.
TEST(StatCrossValidationTest, PhaseTwoSizingMeetsRequestedError) {
  SyntheticPopulation pop =
      SyntheticPopulation::Make(400, /*correlated=*/true, kPopulationSeed);
  const size_t phase1_m = 24;
  const double required_error = 0.05;  // Relative to the truth.
  size_t replicates = verify::Replicates(40, 300);
  size_t successes = 0;
  for (size_t r = 0; r < replicates; ++r) {
    util::Rng rng(verify::ReplicateSeed(0xcb07, r));
    auto phase1 = pop.Draw(phase1_m, rng);
    auto cv = core::CrossValidate(phase1, pop.total_weight, 10, rng);
    double cv_relative =
        cv.estimate == 0.0 ? 0.0 : cv.cv_error / std::fabs(cv.estimate);
    size_t phase2_m = core::PhaseTwoSampleSize(phase1_m, cv_relative,
                                               required_error,
                                               /*min_peers=*/4,
                                               /*max_peers=*/100000);
    double estimate =
        core::HorvitzThompson(pop.Draw(phase2_m, rng), pop.total_weight);
    if (std::fabs(estimate - pop.truth) <= required_error * pop.truth) {
      ++successes;
    }
  }
  EXPECT_STAT_PASS(verify::CoverageAtLeastTest(successes, replicates, 0.75,
                                               verify::DefaultAlpha()));
}

}  // namespace
}  // namespace p2paqp

// Shared plumbing for the tier-2 statistical suite (`ctest -L statistical`).
//
// Provides (a) lazily built, cached benchmark worlds at test-friendly scale,
// (b) a replicated engine runner feeding verify::CalibrationAccumulator, and
// (c) a synthetic degree-correlated population with closed-form moments so
// Theorems 1-3 can be checked against exact constants instead of a second
// noisy measurement.
#ifndef P2PAQP_TESTS_STATISTICAL_STATISTICAL_TEST_UTIL_H_
#define P2PAQP_TESTS_STATISTICAL_STATISTICAL_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "harness.h"
#include "test_common.h"
#include "util/parallel.h"
#include "verify/verify.h"

namespace p2paqp::testing {

// ---------------------------------------------------------------------------
// Cached worlds (building one is the dominant cost; every test in a binary
// shares the same immutable world and independence comes from seeds).
// ---------------------------------------------------------------------------

inline bench::World& SyntheticStatWorld() {
  static bench::World world = [] {
    bench::WorldConfig config;
    config.kind = bench::WorldKind::kSynthetic;
    config.num_peers = 600;
    config.num_edges = 3000;
    config.tuples_per_peer = 40;
    return bench::BuildWorld(config);
  }();
  return world;
}

inline bench::World& GnutellaStatWorld() {
  static bench::World world = [] {
    bench::WorldConfig config;
    config.kind = bench::WorldKind::kGnutella;
    config.num_peers = 800;
    config.num_edges = 2400;
    config.tuples_per_peer = 40;
    return bench::BuildWorld(config);
  }();
  return world;
}

// ---------------------------------------------------------------------------
// Replicated engine runs
// ---------------------------------------------------------------------------

struct EngineStatConfig {
  query::AggregateOp op = query::AggregateOp::kCount;
  query::RangePredicate predicate{1, 40};
  double required_error = 0.08;
  size_t replicates = 24;
  uint64_t base_seed = 0x57a7;
  core::EngineParams params;  // phase sizes tuned below.

  EngineStatConfig() {
    params.phase1_peers = 40;
    params.max_phase2_peers = 250;
  }
};

inline double EngineTruth(const bench::World& world,
                          const query::AggregateQuery& query) {
  const net::SimulatedNetwork& network = world.network;
  double count = static_cast<double>(
      network.ExactCount(query.predicate.lo, query.predicate.hi));
  switch (query.op) {
    case query::AggregateOp::kCount:
      return count;
    case query::AggregateOp::kSum:
      return static_cast<double>(
          network.ExactSum(query.predicate.lo, query.predicate.hi));
    case query::AggregateOp::kAvg:
      return count == 0.0
                 ? 0.0
                 : static_cast<double>(network.ExactSum(
                       query.predicate.lo, query.predicate.hi)) /
                       count;
    default:
      P2PAQP_CHECK(false) << "EngineTruth: unsupported op";
      return 0.0;
  }
}

inline graph::NodeId RandomLiveSink(const net::SimulatedNetwork& network,
                                    util::Rng& rng) {
  auto sink = static_cast<graph::NodeId>(rng.UniformIndex(network.num_peers()));
  while (!network.IsAlive(sink)) {
    sink = static_cast<graph::NodeId>(rng.UniformIndex(network.num_peers()));
  }
  return sink;
}

// Network-clone seed for replicate `r`: derived only from (base_seed, r) so
// replicates are independent of each other and of execution order.
inline uint64_t ReplicateNetworkSeed(uint64_t base_seed, size_t r) {
  return util::MixSeed(base_seed ^
                       (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(r) + 1)));
}

// Runs `replicates` independent engine executions (fresh seed + random live
// sink each time, against that replicate's own CloneWorld) and accumulates
// estimate/truth/CI into the calibration accumulator. Failed executions
// abort the test: this helper is for fault-free and graceful-degradation
// paths that must answer.
//
// Replicates run through util::ParallelMap (the P2PAQP_THREADS knob); the
// accumulator reduction is serial in replicate order, so the result is
// bit-identical for any thread count.
inline verify::CalibrationAccumulator RunEngineReplicates(
    const bench::World& world, const EngineStatConfig& config) {
  query::AggregateQuery query;
  query.op = config.op;
  query.predicate = config.predicate;
  query.required_error = config.required_error;
  const double truth = EngineTruth(world, query);

  std::vector<verify::EstimateSample> samples = util::ParallelMap(
      config.replicates, [&](size_t r) {
        util::Rng rng(verify::ReplicateSeed(config.base_seed, r));
        bench::World rep_world = bench::CloneWorld(
            world, ReplicateNetworkSeed(config.base_seed, r));
        core::TwoPhaseEngine engine(&rep_world.network, rep_world.catalog,
                                    config.params);
        graph::NodeId sink = RandomLiveSink(rep_world.network, rng);
        auto answer = engine.Execute(query, sink, rng);
        P2PAQP_CHECK(answer.ok()) << answer.status().ToString();
        return verify::EstimateSample{answer->estimate, truth,
                                      answer->ci_half_width_95};
      });
  verify::CalibrationAccumulator acc;
  for (const verify::EstimateSample& sample : samples) acc.Add(sample);
  return acc;
}

// ---------------------------------------------------------------------------
// Synthetic degree-correlated population with exact moments
// ---------------------------------------------------------------------------

// A stand-alone population of M "peers" with power-law-ish stationary
// weights w_s and per-peer values y_s correlated with w_s. Because sampling
// is done directly from the exact stationary distribution, Theorems 1-3 can
// be verified against closed forms:
//   Y       = sum y_s                  (the true aggregate)
//   C       = sum y_s^2 W / w_s - Y^2  (Theorem 2's clustering constant)
//   Var[y''] = C / m, E[CVError^2] = 4C/m for half-sample cross-validation.
struct SyntheticPopulation {
  std::vector<double> values;   // y_s.
  std::vector<double> weights;  // w_s (unnormalized).
  double total_weight = 0.0;    // W.
  double truth = 0.0;           // Y.
  double badness_c = 0.0;       // C.

  // Deterministic construction; `correlated` couples y_s to w_s (the regime
  // where dropping the 1/prob(s) reweighting is maximally wrong).
  static SyntheticPopulation Make(size_t num_peers, bool correlated,
                                  uint64_t seed) {
    SyntheticPopulation pop;
    util::Rng rng(seed);
    pop.values.reserve(num_peers);
    pop.weights.reserve(num_peers);
    for (size_t s = 0; s < num_peers; ++s) {
      // Discrete power-law-ish degrees in [1, 64].
      double u = rng.UniformDouble(0.0, 1.0);
      double w = std::floor(1.0 + 63.0 * u * u * u);
      double y = correlated ? w + rng.UniformDouble(0.0, 2.0)
                            : 10.0 + rng.UniformDouble(0.0, 5.0);
      pop.weights.push_back(w);
      pop.values.push_back(y);
      pop.total_weight += w;
      pop.truth += y;
    }
    for (size_t s = 0; s < num_peers; ++s) {
      pop.badness_c +=
          pop.values[s] * pop.values[s] * pop.total_weight / pop.weights[s];
    }
    pop.badness_c -= pop.truth * pop.truth;
    return pop;
  }

  // m iid draws from the stationary distribution prob(s) = w_s / W.
  std::vector<core::WeightedObservation> Draw(size_t m, util::Rng& rng) const {
    std::vector<core::WeightedObservation> out;
    out.reserve(m);
    for (size_t i = 0; i < m; ++i) {
      size_t s = rng.WeightedIndex(weights);
      out.push_back(core::WeightedObservation{values[s], weights[s]});
    }
    return out;
  }
};

}  // namespace p2paqp::testing

#endif  // P2PAQP_TESTS_STATISTICAL_STATISTICAL_TEST_UTIL_H_

// Statistical verification of the straggler-resilience layer: under
// heavy-tailed per-peer latency the full stack (Walk-Not-Wait forking,
// hedged replies, jittered backoff, health breaker) must leave the
// Horvitz-Thompson estimate unbiased at the suite's 5.5-sigma bar. A
// Walk-Not-Wait fork is a lazy self-loop and tail draws are peer-iid, so
// forking thins hops without reweighting the stationary distribution;
// hedged duplicates are deduped by (peer, selection_seq). A slow
// *coalition* breaks the iid premise — forks then steer away from a fixed
// set of peers — but the perturbation is value-independent and bounded by
// the coalition fraction, which the guard-banded z-test pins down.
//
// The chaos-matrix entries (ctest -L chaos) re-run the bounded-error cell
// across tail shape x hedging x deadline via the P2PAQP_STRAGGLER_TAIL,
// P2PAQP_STRAGGLER_HEDGE and P2PAQP_STRAGGLER_DEADLINE environment
// variables, on the async engine (the only one honoring deadlines).
#include "statistical_test_util.h"

#include <cmath>
#include <cstdlib>
#include <string>

#include "core/async_engine.h"
#include "gtest/gtest.h"
#include "net/fault.h"

namespace p2paqp {
namespace {

// The acceptance regime's tail: Pareto with infinite variance (alpha < 2),
// so a fixed timeout has no sane setting — exactly the regime the
// resilience stack exists for.
net::FaultPlan ParetoTailPlan() {
  net::FaultPlan plan;
  plan.tail = net::LatencyTail::kPareto;
  plan.tail_scale_ms = 10.0;
  plan.tail_alpha = 1.1;
  return plan;
}

net::FaultPlan LognormalTailPlan() {
  net::FaultPlan plan;
  plan.tail = net::LatencyTail::kLognormal;
  plan.tail_scale_ms = 10.0;
  plan.tail_sigma = 1.5;
  return plan;
}

// Tail plus the acceptance coalition: 10% of peers consistently 20x tardy.
net::FaultPlan CoalitionPlan(double fraction) {
  net::FaultPlan plan = ParetoTailPlan();
  plan.slow_fraction = fraction;
  plan.slow_factor = 20.0;
  return plan;
}

// Everything on — mirrors the protocol runner's wnw/hedge/backoff wiring.
net::StragglerPolicy FullResilience() {
  net::StragglerPolicy policy;
  policy.walk_not_wait = true;
  policy.health_tracking = true;
  policy.hedged_replies = true;
  policy.exponential_backoff = true;
  return policy;
}

struct StragglerOutcome {
  verify::EstimateSample sample;
  double normalized_error = 0.0;
  double latency_ms = 0.0;
  size_t hedges = 0;
  size_t skips = 0;
  bool deadline_hit = false;
  bool failed = false;
};

struct StragglerRun {
  verify::CalibrationAccumulator acc;
  util::RunningStat normalized_errors;
  util::RunningStat latencies_ms;
  size_t hedges = 0;
  size_t skips = 0;
  size_t deadline_hits = 0;
  size_t failures = 0;
};

enum class EngineKind { kSync, kAsync };

// Installs `fault` on the shared synthetic world (CloneWorld re-seeds the
// injector per replicate, so tails and coalitions are redrawn
// independently) and runs replicated queries under `policy`.
StragglerRun RunStragglerReplicates(const net::FaultPlan& fault,
                                    const net::StragglerPolicy& policy,
                                    EngineKind kind, double deadline_ms,
                                    size_t replicates, uint64_t base_seed) {
  bench::World& world = testing::SyntheticStatWorld();
  world.network.InstallFaultPlan(fault, base_seed ^ 0x57A6u);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  query.required_error = 0.08;
  const double truth = testing::EngineTruth(world, query);

  std::vector<StragglerOutcome> outcomes = util::ParallelMap(
      replicates, [&](size_t r) {
        util::Rng rng(verify::ReplicateSeed(base_seed, r));
        bench::World rep_world = bench::CloneWorld(
            world, testing::ReplicateNetworkSeed(base_seed, r));
        core::EngineParams params;
        params.phase1_peers = 40;
        params.max_phase2_peers = 250;
        params.straggler = policy;
        params.deadline_ms = deadline_ms;
        graph::NodeId sink = testing::RandomLiveSink(rep_world.network, rng);
        StragglerOutcome out;
        core::ApproximateAnswer answer;
        if (kind == EngineKind::kAsync) {
          core::AsyncParams aparams;
          aparams.engine = params;
          aparams.walkers = 4;
          aparams.walk.jump = rep_world.catalog.suggested_jump;
          aparams.walk.burn_in = rep_world.catalog.suggested_burn_in;
          core::AsyncQuerySession session(&rep_world.network,
                                          rep_world.catalog, aparams);
          auto report = session.Execute(query, sink, rng);
          if (!report.ok()) {
            out.failed = true;
            return out;
          }
          answer = report->answer;
          out.latency_ms = report->makespan_ms;
        } else {
          core::TwoPhaseEngine engine(&rep_world.network, rep_world.catalog,
                                      params);
          auto result = engine.Execute(query, sink, rng);
          if (!result.ok()) {
            out.failed = true;
            return out;
          }
          answer = *result;
          out.latency_ms = answer.cost.latency_ms;
        }
        out.sample = verify::EstimateSample{answer.estimate, truth,
                                            answer.ci_half_width_95};
        out.normalized_error =
            bench::NormalizedError(world, query, answer.estimate);
        out.hedges = answer.hedges_sent;
        out.skips = answer.stragglers_skipped;
        out.deadline_hit = answer.deadline_hit;
        return out;
      });
  world.network.InstallFaultPlan(net::FaultPlan{}, 0);

  StragglerRun run;
  for (const StragglerOutcome& out : outcomes) {
    if (out.failed) {
      ++run.failures;
      continue;
    }
    run.acc.Add(out.sample);
    run.normalized_errors.Add(out.normalized_error);
    run.latencies_ms.Add(out.latency_ms);
    run.hedges += out.hedges;
    run.skips += out.skips;
    if (out.deadline_hit) ++run.deadline_hits;
  }
  return run;
}

// --- Unbiasedness under iid tails (the tentpole's 5.5-sigma claim) ----------

// The full resilience stack under a peer-iid Pareto tail: every fork and
// hedge decision is identity-blind, so the estimator must stay unbiased —
// no guard band, the plain z-test at the suite's alpha.
TEST(StatStragglerTest, ParetoTailFullStackUnbiased) {
  auto run = RunStragglerReplicates(ParetoTailPlan(), FullResilience(),
                                    EngineKind::kSync, /*deadline_ms=*/0.0,
                                    verify::Replicates(16, 64), 0x57a1);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_STAT_PASS(
      verify::MeanZTest(run.acc.errors(), 0.0, verify::DefaultAlpha()));
  // The stack visibly engaged — otherwise this proves nothing about it.
  // (Hedges stay at zero here by design: under an iid tail no peer is
  // *predictably* tardy, and the hedge trigger keys on the per-peer
  // expectation. The coalition test below covers the hedge path.)
  EXPECT_GT(run.skips, 0u);
  EXPECT_EQ(run.hedges, 0u);
}

// Same claim on the event-driven engine, whose Walk-Not-Wait fork lives in
// the walker scheduler rather than the synchronous hop loop.
TEST(StatStragglerTest, ParetoTailAsyncEngineUnbiased) {
  auto run = RunStragglerReplicates(ParetoTailPlan(), FullResilience(),
                                    EngineKind::kAsync, /*deadline_ms=*/0.0,
                                    verify::Replicates(12, 48), 0x57a2);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_STAT_PASS(
      verify::MeanZTest(run.acc.errors(), 0.0, verify::DefaultAlpha()));
  EXPECT_GT(run.skips, 0u);
}

// --- Slow coalition: bounded, value-independent bias ------------------------

// With 10% of peers consistently tardy, Walk-Not-Wait forks are no longer
// identity-blind: transit edges into the coalition fork more often, tilting
// selection mass toward the fast majority. The tilt is value-independent
// and bounded by the coalition fraction, so the z-test with a
// fraction-sized guard band must pass and the normalized error stays
// within the paper's envelope.
TEST(StatStragglerTest, SlowCoalitionBiasBounded) {
  bench::World& world = testing::SyntheticStatWorld();
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  const double truth = testing::EngineTruth(world, query);
  auto run = RunStragglerReplicates(CoalitionPlan(0.10), FullResilience(),
                                    EngineKind::kSync, /*deadline_ms=*/0.0,
                                    verify::Replicates(16, 64), 0x57a3);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_STAT_PASS(verify::MeanZTest(run.acc.errors(), 0.0,
                                     verify::DefaultAlpha(),
                                     /*bias_tolerance=*/0.10 * truth));
  EXPECT_LT(run.normalized_errors.mean(), 0.10);
  // Coalition members are predictably tardy, so both interventions fire.
  EXPECT_GT(run.skips, 0u);
  EXPECT_GT(run.hedges, 0u);
}

// --- The stack earns its keep: latency under a coalition --------------------

// Against the same coalition regime, the resilient configuration must beat
// the wait-on-everything legacy configuration on mean query makespan — on
// the async engine, whose event clock is where hedging's min-of-two race
// and Walk-Not-Wait's bounded fork wait actually pay off (the synchronous
// ledger is a straight sum, so a hedge there *adds* its transit). The
// legacy run doubles as the control that straggling alone (without the
// stack's interventions) never biased the estimate in the first place.
TEST(StatStragglerTest, ResilienceCutsCoalitionMakespan) {
  auto resilient = RunStragglerReplicates(
      CoalitionPlan(0.10), FullResilience(), EngineKind::kAsync,
      /*deadline_ms=*/0.0, verify::Replicates(10, 32), 0x57a4);
  auto legacy = RunStragglerReplicates(
      CoalitionPlan(0.10), net::StragglerPolicy{}, EngineKind::kAsync,
      /*deadline_ms=*/0.0, verify::Replicates(10, 32), 0x57a4);
  ASSERT_GT(resilient.acc.total(), 0u);
  ASSERT_GT(legacy.acc.total(), 0u);
  EXPECT_LT(resilient.latencies_ms.mean(), 0.9 * legacy.latencies_ms.mean());
  EXPECT_EQ(legacy.skips + legacy.hedges, 0u);
  EXPECT_STAT_PASS(
      verify::MeanZTest(legacy.acc.errors(), 0.0, verify::DefaultAlpha()));
}

// --- Deadline: anytime answers ----------------------------------------------

// A deadline shorter than the typical makespan must produce anytime
// answers — deadline_hit set, query still answered — without the estimate
// drifting beyond a loose envelope (the early cutoff favors fast replies,
// which under an iid tail is value-independent).
TEST(StatStragglerTest, DeadlineProducesAnytimeAnswers) {
  auto run = RunStragglerReplicates(ParetoTailPlan(), FullResilience(),
                                    EngineKind::kAsync,
                                    /*deadline_ms=*/12000.0,
                                    verify::Replicates(10, 32), 0x57a5);
  ASSERT_GT(run.acc.total(), 0u);
  EXPECT_EQ(run.failures, 0u);
  EXPECT_GT(run.deadline_hits, 0u);
  EXPECT_LT(run.normalized_errors.mean(), 0.30);
}

// --- Chaos matrix -----------------------------------------------------------

// One cell of the straggler chaos matrix: P2PAQP_STRAGGLER_TAIL x
// P2PAQP_STRAGGLER_HEDGE x P2PAQP_STRAGGLER_DEADLINE select the regime;
// every cell must answer with bounded error on the async engine. Unset
// variables default to the acceptance regime (Pareto, hedging on, no
// deadline).
TEST(StatStragglerTest, ChaosMatrixCellStaysBounded) {
  net::FaultPlan fault = ParetoTailPlan();
  if (const char* env = std::getenv("P2PAQP_STRAGGLER_TAIL")) {
    std::string tail = env;
    if (tail == "lognormal") {
      fault = LognormalTailPlan();
    } else if (tail == "coalition") {
      fault = CoalitionPlan(0.10);
    } else {
      ASSERT_EQ(tail, "pareto") << "unknown tail regime: " << tail;
    }
  }
  net::StragglerPolicy policy = FullResilience();
  if (const char* env = std::getenv("P2PAQP_STRAGGLER_HEDGE")) {
    if (std::atoi(env) == 0) {
      policy.hedged_replies = false;
      policy.exponential_backoff = false;
    }
  }
  double deadline_ms = 0.0;
  bool tight = false;
  if (const char* env = std::getenv("P2PAQP_STRAGGLER_DEADLINE")) {
    std::string regime = env;
    if (regime == "tight") {
      deadline_ms = 12000.0;
      tight = true;
    } else if (regime == "loose") {
      deadline_ms = 120000.0;
    } else {
      ASSERT_EQ(regime, "0") << "unknown deadline regime: " << regime;
    }
  }
  auto run = RunStragglerReplicates(fault, policy, EngineKind::kAsync,
                                    deadline_ms, verify::Replicates(8, 24),
                                    0x57c0);
  ASSERT_GT(run.acc.total(), 0u);
  // Tails delay but never destroy messages: every replicate must answer.
  EXPECT_EQ(run.failures, 0u);
  // Regime-aware envelope: a tight deadline legitimately rests the anytime
  // estimate on a truncated sample, so its honest noise band is wider.
  EXPECT_LT(run.normalized_errors.mean(), tight ? 0.35 : 0.15);
  if (tight) {
    EXPECT_GT(run.deadline_hits, 0u);
  }
}

}  // namespace
}  // namespace p2paqp

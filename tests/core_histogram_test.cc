// Tests for the approximate-histogram estimator.
#include "core/histogram_estimator.h"

#include <gtest/gtest.h>

#include "test_common.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

// Exact histogram oracle over the live network.
util::Histogram ExactHistogram(const net::SimulatedNetwork& network,
                               const HistogramRequest& request) {
  auto histogram =
      util::Histogram::Make(request.lo, request.hi, request.num_buckets);
  for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
    if (!network.IsAlive(p)) continue;
    for (const data::Tuple& t : network.peer(p).database().tuples()) {
      histogram->Add(t.value);
    }
  }
  return std::move(*histogram);
}

TEST(HistogramEstimatorTest, RejectsBadRequests) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  TwoPhaseEngine engine(&tn.network, tn.catalog, EngineParams{});
  util::Rng rng(1);
  HistogramRequest bad;
  bad.required_l1 = 0.0;
  EXPECT_FALSE(EstimateHistogramTwoPhase(engine, bad, 0, rng).ok());
  bad = HistogramRequest{};
  bad.num_buckets = 0;
  EXPECT_FALSE(EstimateHistogramTwoPhase(engine, bad, 0, rng).ok());
  bad = HistogramRequest{};
  bad.lo = 50;
  bad.hi = 10;
  EXPECT_FALSE(EstimateHistogramTwoPhase(engine, bad, 0, rng).ok());
}

TEST(HistogramEstimatorTest, ApproximatesValueDistribution) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  HistogramRequest request;
  request.num_buckets = 10;
  request.required_l1 = 0.10;
  util::Rng rng(2);
  auto answer = EstimateHistogramTwoPhase(engine, request, 0, rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  util::Histogram truth = ExactHistogram(tn.network, request);
  EXPECT_LT(answer->histogram.NormalizedL1Distance(truth), 0.15);
  // Total mass should approximate the table size (HT-weighted counts).
  EXPECT_NEAR(answer->histogram.total(),
              static_cast<double>(tn.network.TotalTuples()),
              0.25 * static_cast<double>(tn.network.TotalTuples()));
}

TEST(HistogramEstimatorTest, SkewShowsUpInBuckets) {
  TestNetworkParams net_params;
  net_params.skew = 1.5;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  HistogramRequest request;
  request.num_buckets = 10;
  util::Rng rng(3);
  auto answer = EstimateHistogramTwoPhase(engine, request, 0, rng);
  ASSERT_TRUE(answer.ok());
  // Heavy skew: the first bucket dominates every later bucket.
  for (size_t b = 1; b < answer->histogram.num_buckets(); ++b) {
    EXPECT_GT(answer->histogram.count(0), answer->histogram.count(b))
        << "bucket " << b;
  }
}

TEST(HistogramEstimatorTest, TighterL1CostsMorePeers) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  HistogramRequest loose;
  loose.required_l1 = 0.30;
  HistogramRequest tight = loose;
  tight.required_l1 = 0.05;
  util::Rng rng_a(4);
  util::Rng rng_b(4);
  auto loose_answer = EstimateHistogramTwoPhase(engine, loose, 0, rng_a);
  auto tight_answer = EstimateHistogramTwoPhase(engine, tight, 0, rng_b);
  ASSERT_TRUE(loose_answer.ok());
  ASSERT_TRUE(tight_answer.ok());
  EXPECT_GE(tight_answer->phase2_peers, loose_answer->phase2_peers);
}

TEST(HistogramEstimatorTest, ShipsRawBytes) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 40;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  HistogramRequest request;
  util::Rng rng(5);
  auto answer = EstimateHistogramTwoPhase(engine, request, 0, rng);
  ASSERT_TRUE(answer.ok());
  // Every visited peer ships ~t raw values of 4 bytes on top of headers.
  EXPECT_GT(answer->cost.bytes_shipped,
            answer->cost.peers_visited * 4 * 20);
  EXPECT_GT(answer->sample_tuples, 0u);
}

TEST(HistogramEstimatorTest, ClusteredDataRaisesCvDistance) {
  TestNetworkParams clustered;
  clustered.cluster_level = 0.0;
  TestNetworkParams shuffled;
  shuffled.cluster_level = 1.0;
  TestNetwork tn_clustered = MakeTestNetwork(clustered);
  TestNetwork tn_shuffled = MakeTestNetwork(shuffled);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine_c(&tn_clustered.network, tn_clustered.catalog, params);
  TwoPhaseEngine engine_s(&tn_shuffled.network, tn_shuffled.catalog, params);
  HistogramRequest request;
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  auto clustered_answer =
      EstimateHistogramTwoPhase(engine_c, request, 0, rng_a);
  auto shuffled_answer =
      EstimateHistogramTwoPhase(engine_s, request, 0, rng_b);
  ASSERT_TRUE(clustered_answer.ok());
  ASSERT_TRUE(shuffled_answer.ok());
  // Perfectly clustered peers give wildly different half-sample histograms;
  // shuffled peers are microcosms with near-zero CV distance.
  EXPECT_GT(clustered_answer->cv_l1, 3.0 * shuffled_answer->cv_l1);
}

}  // namespace
}  // namespace p2paqp::core

// Golden-digest regression tests for the topology generators.
//
// Every generator consumes its RNG stream *through* GraphBuilder feedback
// (stub pairing retries on rejected duplicates, preferential attachment
// reads builder degrees), so any change to the builder's accept/reject
// semantics or to the graph's edge ordering silently reshuffles every
// topology in the repo. These digests were captured from the pre-PR-7
// vector-of-vectors builder and uncompressed CSR; the streaming builder and
// the delta/varint-compressed Graph must reproduce them bit for bit.
//
// The A/B tests additionally drive the retained LegacyGraphBuilder against
// the streaming GraphBuilder edge-by-edge on shared random sequences,
// asserting decision parity — the stronger property the digests sample.
#include "graph/builder.h"
#include "graph/graph.h"
#include "topology/clustered.h"
#include "topology/gnutella.h"
#include "topology/power_law.h"
#include "topology/random.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace p2paqp {
namespace {

// RAII env override; restores the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// FNV-1a over (num_nodes, num_edges, then each edge (u, v) with u < v in
// CSR order), every value mixed as 8 little-endian bytes.
uint64_t EdgeDigest(const graph::Graph& g) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((value >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
    }
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v : g.neighbors(u)) {
      if (u < v) {
        mix(u);
        mix(v);
      }
    }
  }
  return h;
}

TEST(TopologyGolden, GnutellaSnapshot) {
  util::Rng rng(20060403);
  topology::GnutellaParams params;
  params.num_nodes = 2256;
  params.num_edges = 5232;
  auto g = topology::MakeGnutellaSnapshot(params, rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(EdgeDigest(*g), 0xAE315F1510E0814EULL);
}

TEST(TopologyGolden, PowerLawWithEdgeCount) {
  util::Rng rng(42);
  auto g = topology::MakePowerLawWithEdgeCount(2000, 8000, rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(EdgeDigest(*g), 0x0E5523A430F079AEULL);
}

TEST(TopologyGolden, BarabasiAlbert) {
  util::Rng rng(7);
  auto g = topology::MakeBarabasiAlbert(1500, 3, rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(EdgeDigest(*g), 0x6058F0C96056607CULL);
}

TEST(TopologyGolden, Clustered) {
  util::Rng rng(99);
  topology::ClusteredParams params;
  params.num_nodes = 2000;
  params.num_edges = 9000;
  params.num_subgraphs = 3;
  params.cut_edges = 120;
  auto t = topology::MakeClustered(params, rng);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(EdgeDigest(t->graph), 0xCA2E08AE737529ACULL);
}

TEST(TopologyGolden, ErdosRenyi) {
  util::Rng rng(1234);
  auto g = topology::MakeErdosRenyi(2000, 6000, rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(EdgeDigest(*g), 0xDDA47CFC74133F3DULL);
}

// Every golden again, with the out-of-core builder forced through the env
// knobs every generator's internal GraphBuilder reads: a tiny run size (so
// thousands of runs spill) and the minimum fan-in (so the merge collapses
// through multiple passes). The digests must not move — the spilling
// builder is bit-identical to the in-memory one, accept/reject feedback
// included, which is exactly what lets a 10M world build out of core
// without re-deriving a single topology.
TEST(TopologyGoldenSpilled, AllGeneratorsMatchInMemoryGoldens) {
  ScopedEnv spill("P2PAQP_BUILD_SPILL_EDGES", "2048");
  ScopedEnv fan_in("P2PAQP_BUILD_MERGE_FAN_IN", "2");
  {
    util::Rng rng(20060403);
    topology::GnutellaParams params;
    params.num_nodes = 2256;
    params.num_edges = 5232;
    auto g = topology::MakeGnutellaSnapshot(params, rng);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(EdgeDigest(*g), 0xAE315F1510E0814EULL);
  }
  {
    util::Rng rng(42);
    auto g = topology::MakePowerLawWithEdgeCount(2000, 8000, rng);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(EdgeDigest(*g), 0x0E5523A430F079AEULL);
  }
  {
    util::Rng rng(7);
    auto g = topology::MakeBarabasiAlbert(1500, 3, rng);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(EdgeDigest(*g), 0x6058F0C96056607CULL);
  }
  {
    util::Rng rng(99);
    topology::ClusteredParams params;
    params.num_nodes = 2000;
    params.num_edges = 9000;
    params.num_subgraphs = 3;
    params.cut_edges = 120;
    auto t = topology::MakeClustered(params, rng);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_EQ(EdgeDigest(t->graph), 0xCA2E08AE737529ACULL);
  }
  {
    util::Rng rng(1234);
    auto g = topology::MakeErdosRenyi(2000, 6000, rng);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_EQ(EdgeDigest(*g), 0xDDA47CFC74133F3DULL);
  }
}

// Streaming vs legacy builder: identical accept/reject decisions and an
// identical final graph on a dense random edge sequence (with deliberate
// self loops, duplicates, and out-of-range endpoints mixed in).
TEST(BuilderParity, DecisionAndDigestMatchLegacy) {
  constexpr size_t kNodes = 500;
  constexpr size_t kAttempts = 20000;
  util::Rng rng(0xB11DE2);
  graph::GraphBuilder fresh(kNodes, 4000);
  graph::LegacyGraphBuilder legacy(kNodes, 4000);
  for (size_t i = 0; i < kAttempts; ++i) {
    // ~2% out-of-range endpoints, self loops arise naturally.
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(kNodes + 10));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(kNodes + 10));
    ASSERT_EQ(fresh.AddEdge(a, b), legacy.AddEdge(a, b))
        << "decision diverged at attempt " << i << " on {" << a << "," << b
        << "}";
    if (i % 997 == 0 && a < kNodes && b < kNodes) {
      ASSERT_EQ(fresh.HasEdge(a, b), legacy.HasEdge(a, b));
      ASSERT_EQ(fresh.degree(a), legacy.degree(a));
    }
  }
  ASSERT_EQ(fresh.num_edges(), legacy.num_edges());
  graph::Graph g1 = fresh.Build();
  graph::Graph g2 = legacy.Build();
  EXPECT_EQ(EdgeDigest(g1), EdgeDigest(g2));
}

// The digest must see identical neighbor *order*, not just the edge set:
// compare full adjacency between the two builds.
TEST(BuilderParity, NeighborListsMatchLegacy) {
  constexpr size_t kNodes = 200;
  util::Rng rng(77);
  graph::GraphBuilder fresh(kNodes);
  graph::LegacyGraphBuilder legacy(kNodes);
  for (size_t i = 0; i < 3000; ++i) {
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
    ASSERT_EQ(fresh.AddEdge(a, b), legacy.AddEdge(a, b));
  }
  graph::Graph g1 = fresh.Build();
  graph::Graph g2 = legacy.Build();
  ASSERT_EQ(g1.num_nodes(), g2.num_nodes());
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  std::vector<graph::NodeId> n1, n2;
  for (graph::NodeId u = 0; u < g1.num_nodes(); ++u) {
    g1.CopyNeighbors(u, &n1);
    g2.CopyNeighbors(u, &n2);
    ASSERT_EQ(n1, n2) << "adjacency diverged at node " << u;
  }
}

}  // namespace
}  // namespace p2paqp

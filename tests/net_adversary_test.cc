// Unit tests for the Byzantine adversary layer (net/adversary.h): plan
// gating, deterministic coalition draws, per-behavior tampering hooks, and
// the network install/clone plumbing — including composition with the PR-1
// fault layer.
#include "net/adversary.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_common.h"

namespace p2paqp::net {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

TEST(AdversaryPlanTest, AllZeroPlanIsDisabled) {
  AdversaryPlan plan;
  EXPECT_FALSE(plan.enabled());
}

TEST(AdversaryPlanTest, PeersWithoutBehaviorAreDisabled) {
  AdversaryPlan plan;
  plan.adversary_fraction = 0.5;  // Marked peers that behave honestly.
  EXPECT_FALSE(plan.enabled());
}

TEST(AdversaryPlanTest, BehaviorWithoutPeersIsDisabled) {
  AdversaryPlan plan;
  plan.value_scale = -1.0;  // A lie nobody tells.
  EXPECT_FALSE(plan.enabled());
}

TEST(AdversaryPlanTest, EachBehaviorKnobEnables) {
  for (AdversaryBehavior behavior :
       {AdversaryBehavior::kDegreeInflate, AdversaryBehavior::kDegreeDeflate,
        AdversaryBehavior::kSignFlip, AdversaryBehavior::kScale,
        AdversaryBehavior::kOutlier, AdversaryBehavior::kReplay,
        AdversaryBehavior::kHijack}) {
    AdversaryPlan plan = MakeBehaviorPlan(behavior, 0.1);
    EXPECT_TRUE(plan.enabled()) << AdversaryBehaviorToString(behavior);
  }
}

TEST(AdversaryPlanTest, BehaviorNamesRoundTrip) {
  for (AdversaryBehavior behavior :
       {AdversaryBehavior::kDegreeInflate, AdversaryBehavior::kDegreeDeflate,
        AdversaryBehavior::kSignFlip, AdversaryBehavior::kScale,
        AdversaryBehavior::kOutlier, AdversaryBehavior::kReplay,
        AdversaryBehavior::kHijack}) {
    AdversaryBehavior parsed;
    ASSERT_TRUE(
        ParseAdversaryBehavior(AdversaryBehaviorToString(behavior), &parsed));
    EXPECT_EQ(parsed, behavior);
  }
  AdversaryBehavior parsed;
  EXPECT_FALSE(ParseAdversaryBehavior("no_such_behavior", &parsed));
}

TEST(AdversaryInjectorTest, CoalitionDrawIsDeterministicAndSized) {
  AdversaryPlan plan = MakeBehaviorPlan(AdversaryBehavior::kScale, 0.2);
  AdversaryInjector a(plan, 42, 1000);
  AdversaryInjector b(plan, 42, 1000);
  AdversaryInjector c(plan, 43, 1000);
  EXPECT_EQ(a.Adversaries(), b.Adversaries());
  EXPECT_NE(a.Adversaries(), c.Adversaries());
  EXPECT_EQ(a.Adversaries().size(), 200u);
}

TEST(AdversaryInjectorTest, ImmunePeersAreNeverMarked) {
  AdversaryPlan plan = MakeBehaviorPlan(AdversaryBehavior::kScale, 1.0);
  plan.immune = {0, 7};
  plan.adversaries = {7};  // Immunity beats an explicit listing.
  AdversaryInjector injector(plan, 42, 50);
  EXPECT_FALSE(injector.IsAdversarial(0));
  EXPECT_FALSE(injector.IsAdversarial(7));
  EXPECT_EQ(injector.Adversaries().size(), 48u);
}

TEST(AdversaryInjectorTest, ExplicitAdversariesAreMarked) {
  AdversaryPlan plan;
  plan.adversaries = {3, 5};
  plan.value_scale = 2.0;
  AdversaryInjector injector(plan, 42, 10);
  EXPECT_TRUE(injector.IsAdversarial(3));
  EXPECT_TRUE(injector.IsAdversarial(5));
  EXPECT_FALSE(injector.IsAdversarial(4));
}

TEST(AdversaryInjectorTest, ClaimedDegreeInflatesAndDeflates) {
  AdversaryPlan plan;
  plan.adversaries = {1};
  plan.degree_factor = 4.0;
  AdversaryInjector inflate(plan, 42, 10);
  EXPECT_EQ(inflate.ClaimedDegree(1, 5), 20u);
  EXPECT_EQ(inflate.ClaimedDegree(2, 5), 5u);  // Honest peer.
  EXPECT_EQ(inflate.degrees_misreported(), 1u);

  plan.degree_factor = 0.1;
  AdversaryInjector deflate(plan, 42, 10);
  EXPECT_EQ(deflate.ClaimedDegree(1, 5), 1u);  // Clamped to >= 1.
}

TEST(AdversaryInjectorTest, OnReplyScalesAndReplays) {
  AdversaryPlan plan;
  plan.adversaries = {1};
  plan.value_scale = -1.0;
  plan.replay_copies = 3;
  AdversaryInjector injector(plan, 42, 10);
  ReplyTampering honest = injector.OnReply(2);
  EXPECT_EQ(honest.value_scale, 1.0);
  EXPECT_EQ(honest.replays, 0u);
  ReplyTampering evil = injector.OnReply(1);
  EXPECT_EQ(evil.value_scale, -1.0);
  EXPECT_EQ(evil.replays, 3u);
  EXPECT_EQ(injector.replies_tampered(), 1u);
  EXPECT_EQ(injector.replays_injected(), 3u);
}

TEST(AdversaryInjectorTest, OutlierDrawFiresAtProbabilityOne) {
  AdversaryPlan plan;
  plan.adversaries = {1};
  plan.outlier_probability = 1.0;
  plan.outlier_magnitude = 100.0;
  AdversaryInjector injector(plan, 42, 10);
  ReplyTampering tampering = injector.OnReply(1);
  EXPECT_TRUE(tampering.outlier);
  EXPECT_EQ(tampering.value_scale, 100.0);
}

TEST(AdversaryInjectorTest, HijackRestrictsToColluders) {
  AdversaryPlan plan;
  plan.adversaries = {1, 2};
  plan.hijack_walk = true;
  AdversaryInjector injector(plan, 42, 10);
  std::vector<graph::NodeId> neighbors = {2, 3, 4};
  injector.RestrictForwarding(1, &neighbors);
  EXPECT_EQ(neighbors, (std::vector<graph::NodeId>{2}));
  EXPECT_EQ(injector.hops_hijacked(), 1u);
}

TEST(AdversaryInjectorTest, HijackerWithoutColludersForwardsHonestly) {
  AdversaryPlan plan;
  plan.adversaries = {1};
  plan.hijack_walk = true;
  AdversaryInjector injector(plan, 42, 10);
  std::vector<graph::NodeId> neighbors = {3, 4};
  injector.RestrictForwarding(1, &neighbors);
  EXPECT_EQ(neighbors, (std::vector<graph::NodeId>{3, 4}));
  EXPECT_EQ(injector.hops_hijacked(), 0u);
}

TEST(AdversaryInjectorTest, HonestHolderIsNeverRestricted) {
  AdversaryPlan plan;
  plan.adversaries = {1, 2};
  plan.hijack_walk = true;
  AdversaryInjector injector(plan, 42, 10);
  std::vector<graph::NodeId> neighbors = {1, 2, 3};
  injector.RestrictForwarding(5, &neighbors);
  EXPECT_EQ(neighbors.size(), 3u);
}

TestNetworkParams SmallParams() {
  TestNetworkParams params;
  params.num_peers = 300;
  params.num_edges = 1500;
  params.cut_edges = 80;
  params.tuples_per_peer = 20;
  params.seed = 99;
  return params;
}

TEST(AdversaryNetworkTest, InstallAndUninstall) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  EXPECT_EQ(tn.network.adversary(), nullptr);
  tn.network.InstallAdversaryPlan(
      MakeBehaviorPlan(AdversaryBehavior::kScale, 0.1), 7);
  ASSERT_NE(tn.network.adversary(), nullptr);
  EXPECT_FALSE(tn.network.adversary()->Adversaries().empty());
  tn.network.InstallAdversaryPlan(AdversaryPlan{}, 7);
  EXPECT_EQ(tn.network.adversary(), nullptr);
}

TEST(AdversaryNetworkTest, CloneCarriesPlanWithFreshSeed) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  tn.network.InstallAdversaryPlan(
      MakeBehaviorPlan(AdversaryBehavior::kScale, 0.1), 7);
  SimulatedNetwork clone_a = tn.network.Clone(1);
  SimulatedNetwork clone_b = tn.network.Clone(1);
  SimulatedNetwork clone_c = tn.network.Clone(2);
  ASSERT_NE(clone_a.adversary(), nullptr);
  // Same clone seed -> same coalition; different seed -> an independent
  // redraw (same size, almost surely different membership).
  EXPECT_EQ(clone_a.adversary()->Adversaries(),
            clone_b.adversary()->Adversaries());
  EXPECT_EQ(clone_a.adversary()->Adversaries().size(),
            clone_c.adversary()->Adversaries().size());
  EXPECT_NE(clone_a.adversary()->Adversaries(),
            clone_c.adversary()->Adversaries());
}

TEST(AdversaryNetworkTest, ComposesWithFaultPlanInEngineRun) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  FaultPlan faults;
  faults.drop_probability = 0.1;
  tn.network.InstallFaultPlan(faults, 11);
  AdversaryPlan plan = MakeBehaviorPlan(AdversaryBehavior::kScale, 0.15);
  plan.replay_copies = 2;
  plan.immune = {0};
  tn.network.InstallAdversaryPlan(plan, 13);

  core::EngineParams params;
  params.phase1_peers = 20;
  params.max_phase2_peers = 80;
  core::TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = {1, 30};
  query.required_error = 0.15;
  util::Rng rng(5);
  auto answer = engine.Execute(query, /*sink=*/0, rng);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  // Both layers must have bitten: faults lost replies AND the coalition
  // tampered with some.
  EXPECT_GT(tn.network.fault_injector()->dropped(), 0u);
  EXPECT_GT(tn.network.adversary()->replies_tampered(), 0u);
}

}  // namespace
}  // namespace p2paqp::net

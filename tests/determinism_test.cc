// Seed-determinism: the whole pipeline — world construction, walks, local
// sub-sampling, fault injection, estimation — is a pure function of its
// seeds. Two runs against identically constructed networks with the same
// seed must produce bit-identical answers, with and without an installed
// FaultPlan. This is what makes the statistical suite reproducible: a red
// verdict can always be replayed exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/async_engine.h"
#include "core/multi_query.h"
#include "net/adversary.h"
#include "net/fault.h"
#include "test_common.h"
#include "util/parallel.h"

namespace p2paqp {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

TestNetworkParams SmallParams() {
  TestNetworkParams params;
  params.num_peers = 400;
  params.num_edges = 2000;
  params.cut_edges = 100;
  params.tuples_per_peer = 30;
  params.seed = 616;
  return params;
}

query::AggregateQuery CountQuery() {
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  return q;
}

// EXPECT_EQ on doubles is exact (bitwise for non-NaN values), which is the
// point: identical seeds must replay identical arithmetic.
void ExpectIdentical(const core::ApproximateAnswer& a,
                     const core::ApproximateAnswer& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.variance, b.variance);
  EXPECT_EQ(a.ci_half_width_95, b.ci_half_width_95);
  EXPECT_EQ(a.estimated_total, b.estimated_total);
  EXPECT_EQ(a.cv_error_relative, b.cv_error_relative);
  EXPECT_EQ(a.phase1_peers, b.phase1_peers);
  EXPECT_EQ(a.phase2_peers, b.phase2_peers);
  EXPECT_EQ(a.sample_tuples, b.sample_tuples);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.observations_lost, b.observations_lost);
  EXPECT_EQ(a.walk_restarts, b.walk_restarts);
  EXPECT_EQ(a.achieved_error, b.achieved_error);
  EXPECT_EQ(a.suspected_peers, b.suspected_peers);
  EXPECT_EQ(a.trimmed_mass, b.trimmed_mass);
  EXPECT_EQ(a.duplicate_replies, b.duplicate_replies);
  EXPECT_EQ(a.deadline_hit, b.deadline_hit);
  EXPECT_EQ(a.hedges_sent, b.hedges_sent);
  EXPECT_EQ(a.stragglers_skipped, b.stragglers_skipped);
  EXPECT_EQ(a.cost.peers_visited, b.cost.peers_visited);
  EXPECT_EQ(a.cost.walker_hops, b.cost.walker_hops);
  EXPECT_EQ(a.cost.messages, b.cost.messages);
  EXPECT_EQ(a.cost.bytes_shipped, b.cost.bytes_shipped);
  EXPECT_EQ(a.cost.tuples_scanned, b.cost.tuples_scanned);
  EXPECT_EQ(a.cost.tuples_sampled, b.cost.tuples_sampled);
  EXPECT_EQ(a.cost.latency_ms, b.cost.latency_ms);
}

core::ApproximateAnswer RunOnce(TestNetwork& tn, uint64_t seed,
                                const net::FaultPlan* plan,
                                uint64_t plan_seed) {
  if (plan != nullptr) tn.network.InstallFaultPlan(*plan, plan_seed);
  core::EngineParams params;
  params.phase1_peers = 30;
  params.max_phase2_peers = 120;
  core::TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  util::Rng rng(seed);
  auto answer = engine.Execute(CountQuery(), /*sink=*/0, rng);
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  return *answer;
}

TEST(DeterminismTest, FaultFreeRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  auto first = RunOnce(a, 99, nullptr, 0);
  auto second = RunOnce(b, 99, nullptr, 0);
  ExpectIdentical(first, second);
}

TEST(DeterminismTest, DifferentSeedsActuallyDiffer) {
  // Guards against ExpectIdentical trivially passing because the pipeline
  // ignores its seed.
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  auto first = RunOnce(a, 99, nullptr, 0);
  auto second = RunOnce(b, 100, nullptr, 0);
  EXPECT_NE(first.estimate, second.estimate);
}

TEST(DeterminismTest, AllZeroFaultPlanIsAStrictNoOp) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  net::FaultPlan zero;
  auto bare = RunOnce(a, 99, nullptr, 0);
  auto with_zero_plan = RunOnce(b, 99, &zero, 31337);
  ExpectIdentical(bare, with_zero_plan);
}

TEST(DeterminismTest, LossyRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  net::FaultPlan plan;
  plan.drop_probability = 0.2;
  auto first = RunOnce(a, 99, &plan, 777);
  auto second = RunOnce(b, 99, &plan, 777);
  ExpectIdentical(first, second);
  // The plan must actually bite for this test to mean anything.
  EXPECT_GT(first.cost.messages, 0u);
}

TEST(DeterminismTest, AsyncSessionRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  auto run = [](TestNetwork& tn) {
    core::AsyncParams params;
    params.engine.phase1_peers = 30;
    params.engine.max_phase2_peers = 120;
    params.walkers = 4;
    params.walk.jump = tn.catalog.suggested_jump;
    params.walk.burn_in = tn.catalog.suggested_burn_in;
    core::AsyncQuerySession session(&tn.network, tn.catalog, params);
    util::Rng rng(55);
    auto q = CountQuery();
    auto report = session.Execute(q, /*sink=*/0, rng);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : core::AsyncQueryReport{};
  };
  auto first = run(a);
  auto second = run(b);
  ExpectIdentical(first.answer, second.answer);
  EXPECT_EQ(first.makespan_ms, second.makespan_ms);
  EXPECT_EQ(first.phase1_done_ms, second.phase1_done_ms);
  EXPECT_EQ(first.events, second.events);
}

TEST(DeterminismTest, AsyncLossyRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  net::FaultPlan plan;
  plan.drop_probability = 0.15;
  auto run = [&](TestNetwork& tn) {
    tn.network.InstallFaultPlan(plan, 4040);
    core::AsyncParams params;
    params.engine.phase1_peers = 30;
    params.engine.max_phase2_peers = 120;
    params.walkers = 4;
    params.walk.jump = tn.catalog.suggested_jump;
    params.walk.burn_in = tn.catalog.suggested_burn_in;
    core::AsyncQuerySession session(&tn.network, tn.catalog, params);
    util::Rng rng(56);
    auto q = CountQuery();
    auto report = session.Execute(q, /*sink=*/0, rng);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : core::AsyncQueryReport{};
  };
  auto first = run(a);
  auto second = run(b);
  ExpectIdentical(first.answer, second.answer);
  EXPECT_EQ(first.makespan_ms, second.makespan_ms);
}

// The straggler regime a resilient anytime query runs against: a heavy
// Pareto tail plus a 10% slow coalition, answered under a deadline with the
// full StragglerPolicy (Walk-Not-Wait, health breaker, hedging, backoff).
net::FaultPlan StragglerFaultPlan() {
  net::FaultPlan plan;
  plan.tail = net::LatencyTail::kPareto;
  plan.tail_scale_ms = 10.0;
  plan.tail_alpha = 1.1;
  plan.slow_fraction = 0.1;
  plan.slow_factor = 20.0;
  plan.crash_immune = {0};  // The sink.
  return plan;
}

core::AsyncParams ResilientAnytimeParams(const core::SystemCatalog& catalog,
                                         double deadline_ms) {
  core::AsyncParams params;
  params.engine.phase1_peers = 30;
  params.engine.max_phase2_peers = 120;
  params.engine.straggler.walk_not_wait = true;
  params.engine.straggler.health_tracking = true;
  params.engine.straggler.hedged_replies = true;
  params.engine.straggler.exponential_backoff = true;
  params.engine.deadline_ms = deadline_ms;
  params.walkers = 4;
  params.walk.jump = catalog.suggested_jump;
  params.walk.burn_in = catalog.suggested_burn_in;
  return params;
}

TEST(DeterminismTest, StragglerAnytimeRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  auto run = [](TestNetwork& tn) {
    tn.network.InstallFaultPlan(StragglerFaultPlan(), 4242);
    core::AsyncQuerySession session(
        &tn.network, tn.catalog,
        ResilientAnytimeParams(tn.catalog, /*deadline_ms=*/20000.0));
    util::Rng rng(57);
    auto q = CountQuery();
    auto report = session.Execute(q, /*sink=*/0, rng);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : core::AsyncQueryReport{};
  };
  auto first = run(a);
  auto second = run(b);
  ExpectIdentical(first.answer, second.answer);
  EXPECT_EQ(first.makespan_ms, second.makespan_ms);
  EXPECT_EQ(first.phase1_done_ms, second.phase1_done_ms);
  EXPECT_EQ(first.events, second.events);
  // The rerun exercised the resilience machinery, not a quiet fallback.
  EXPECT_GT(first.answer.hedges_sent + first.answer.stragglers_skipped, 0u);
}

// A non-trivial adversary regime: 15% of peers inflating degree, scaling
// aggregates, replaying replies and hijacking walks at once, composed with a
// lossy fault plan, defended by the full RobustnessPolicy.
net::AdversaryPlan NastyAdversaryPlan() {
  net::AdversaryPlan plan;
  plan.adversary_fraction = 0.15;
  plan.immune = {0};  // The sink.
  plan.degree_factor = 3.0;
  plan.value_scale = 5.0;
  plan.outlier_probability = 0.2;
  plan.replay_copies = 2;
  // Hijack is deliberately off here: combined with degree inflation it traps
  // the walk inside the coalition, the audit then (correctly) rejects the
  // entire sample, and the query fails Unavailable. Hijack determinism has
  // its own test below.
  plan.hijack_walk = false;
  return plan;
}

core::RobustnessPolicy FullDefensePolicy() {
  core::RobustnessPolicy policy;
  policy.estimator = core::RobustEstimatorKind::kWinsorized;
  policy.trim_fraction = 0.05;
  policy.mad_cutoff = 6.0;
  policy.degree_audit_probes = 3;
  return policy;
}

TEST(DeterminismTest, AllZeroAdversaryPlanIsAStrictNoOp) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  auto bare = RunOnce(a, 99, nullptr, 0);
  b.network.InstallAdversaryPlan(net::AdversaryPlan{}, 31337);
  EXPECT_EQ(b.network.adversary(), nullptr);
  auto with_zero_plan = RunOnce(b, 99, nullptr, 0);
  ExpectIdentical(bare, with_zero_plan);
}

TEST(DeterminismTest, AdversarialRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  net::FaultPlan faults;
  faults.drop_probability = 0.1;
  auto run = [&](TestNetwork& tn) {
    tn.network.InstallFaultPlan(faults, 777);
    tn.network.InstallAdversaryPlan(NastyAdversaryPlan(), 888);
    core::EngineParams params;
    params.phase1_peers = 30;
    params.max_phase2_peers = 120;
    params.robustness = FullDefensePolicy();
    core::TwoPhaseEngine engine(&tn.network, tn.catalog, params);
    util::Rng rng(99);
    auto answer = engine.Execute(CountQuery(), /*sink=*/0, rng);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return answer.ok() ? *answer : core::ApproximateAnswer{};
  };
  auto first = run(a);
  auto second = run(b);
  ExpectIdentical(first, second);
  // The regime must actually bite for the replay to mean anything.
  EXPECT_GT(a.network.adversary()->replays_injected(), 0u);
}

TEST(DeterminismTest, HijackedWalkRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  net::AdversaryPlan plan;
  plan.adversary_fraction = 0.15;
  plan.immune = {0};
  plan.hijack_walk = true;
  plan.value_scale = 5.0;  // Honest degrees: the audit passes everybody.
  auto run = [&](TestNetwork& tn) {
    tn.network.InstallAdversaryPlan(plan, 555);
    core::EngineParams params;
    params.phase1_peers = 30;
    params.max_phase2_peers = 120;
    params.robustness = FullDefensePolicy();
    core::TwoPhaseEngine engine(&tn.network, tn.catalog, params);
    util::Rng rng(99);
    auto answer = engine.Execute(CountQuery(), /*sink=*/0, rng);
    EXPECT_TRUE(answer.ok()) << answer.status().ToString();
    return answer.ok() ? *answer : core::ApproximateAnswer{};
  };
  auto first = run(a);
  auto second = run(b);
  ExpectIdentical(first, second);
  EXPECT_GT(a.network.adversary()->hops_hijacked(), 0u);
}

TEST(DeterminismTest, AsyncAdversarialRerunIsBitIdentical) {
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  net::FaultPlan faults;
  faults.drop_probability = 0.1;
  auto run = [&](TestNetwork& tn) {
    tn.network.InstallFaultPlan(faults, 4040);
    tn.network.InstallAdversaryPlan(NastyAdversaryPlan(), 888);
    core::AsyncParams params;
    params.engine.phase1_peers = 30;
    params.engine.max_phase2_peers = 120;
    params.engine.robustness = FullDefensePolicy();
    params.walkers = 4;
    params.walk.jump = tn.catalog.suggested_jump;
    params.walk.burn_in = tn.catalog.suggested_burn_in;
    core::AsyncQuerySession session(&tn.network, tn.catalog, params);
    util::Rng rng(56);
    auto q = CountQuery();
    auto report = session.Execute(q, /*sink=*/0, rng);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : core::AsyncQueryReport{};
  };
  auto first = run(a);
  auto second = run(b);
  ExpectIdentical(first.answer, second.answer);
  EXPECT_EQ(first.makespan_ms, second.makespan_ms);
  EXPECT_EQ(first.events, second.events);
}

// PR-3 contract composed with the adversary layer: parallel replicates over
// per-replicate clones (each carrying the adversary + fault plans, re-seeded
// from the clone seed) are bit-identical for any P2PAQP_THREADS.
class ScopedThreads {
 public:
  explicit ScopedThreads(const char* value) {
    const char* old = std::getenv("P2PAQP_THREADS");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv("P2PAQP_THREADS", value, 1);
  }
  ~ScopedThreads() {
    if (had_old_) {
      ::setenv("P2PAQP_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("P2PAQP_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

// PR-5 contract: the multi-query scheduler (shared sample frame, batched
// walkers, cached local results) replays bit-identically — across batches,
// so frame reuse and top-ups are covered, not just the cold path.
TEST(DeterminismTest, SchedulerRerunIsBitIdentical) {
  auto run = [](TestNetwork& tn) {
    core::FreshnessCache cache(/*ttl_epochs=*/10, /*max_entries=*/1 << 12);
    core::SchedulerParams params;
    params.engine.phase1_peers = 30;
    params.engine.max_phase2_peers = 120;
    params.walk.jump = tn.catalog.suggested_jump;
    params.walk.burn_in = tn.catalog.suggested_burn_in;
    core::QueryScheduler scheduler(&tn.network, tn.catalog, params, &cache);
    std::vector<query::AggregateQuery> queries;
    for (int hi : {20, 40, 60}) {
      query::AggregateQuery q = CountQuery();
      q.predicate = {1, hi};
      queries.push_back(q);
    }
    util::Rng rng(321);
    std::vector<core::BatchResult> batches;
    batches.push_back(scheduler.ExecuteBatch(queries, /*sink=*/0, rng));
    batches.push_back(scheduler.ExecuteBatch(queries, /*sink=*/0, rng));
    return batches;
  };
  TestNetwork a = MakeTestNetwork(SmallParams());
  TestNetwork b = MakeTestNetwork(SmallParams());
  auto first = run(a);
  auto second = run(b);
  ASSERT_EQ(first.size(), second.size());
  for (size_t batch = 0; batch < first.size(); ++batch) {
    ASSERT_EQ(first[batch].answers.size(), second[batch].answers.size());
    for (size_t i = 0; i < first[batch].answers.size(); ++i) {
      ASSERT_TRUE(first[batch].answers[i].ok());
      ASSERT_TRUE(second[batch].answers[i].ok());
      ExpectIdentical(*first[batch].answers[i], *second[batch].answers[i]);
    }
    EXPECT_EQ(first[batch].cost.messages, second[batch].cost.messages);
    EXPECT_EQ(first[batch].cost.bytes_shipped,
              second[batch].cost.bytes_shipped);
    EXPECT_EQ(first[batch].cost.latency_ms, second[batch].cost.latency_ms);
    EXPECT_EQ(first[batch].frame.frame_hits, second[batch].frame.frame_hits);
    EXPECT_EQ(first[batch].frame.frame_misses,
              second[batch].frame.frame_misses);
  }
  // The warm batch must actually reuse the frame, or the replay check
  // never exercises the reuse path.
  EXPECT_GT(first[1].frame.frame_hits, 0u);
}

TEST(DeterminismTest, AdversarialReplicatesAreThreadCountInvariant) {
  TestNetwork base = MakeTestNetwork(SmallParams());
  net::FaultPlan faults;
  faults.drop_probability = 0.05;
  base.network.InstallFaultPlan(faults, 777);
  base.network.InstallAdversaryPlan(NastyAdversaryPlan(), 888);

  auto run_replicates = [&base](const char* threads) {
    ScopedThreads scoped(threads);
    return util::ParallelMap(8, [&base](size_t rep) {
      net::SimulatedNetwork network = base.network.Clone(5000 + rep);
      core::EngineParams params;
      params.phase1_peers = 30;
      params.max_phase2_peers = 120;
      params.robustness = FullDefensePolicy();
      core::TwoPhaseEngine engine(&network, base.catalog, params);
      util::Rng rng(100 + rep);
      auto answer = engine.Execute(CountQuery(), /*sink=*/0, rng);
      return answer.ok() ? answer->estimate : -1.0;
    });
  };
  std::vector<double> one = run_replicates("1");
  std::vector<double> two = run_replicates("2");
  std::vector<double> eight = run_replicates("8");
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  // Replicates with different clone seeds must differ (the adversary set is
  // redrawn per clone), or the comparison above is vacuous.
  EXPECT_NE(one[0], one[1]);
}

// Scheduler batches replicated under ParallelMap must be invariant to
// P2PAQP_THREADS: the batch result (all estimates plus the shared frame's
// hit count) may depend only on the replicate seed, never on how replicates
// are packed onto worker threads.
TEST(DeterminismTest, SchedulerReplicatesAreThreadCountInvariant) {
  TestNetwork base = MakeTestNetwork(SmallParams());

  auto run_replicates = [&base](const char* threads) {
    ScopedThreads scoped(threads);
    return util::ParallelMap(8, [&base](size_t rep) {
      net::SimulatedNetwork network = base.network.Clone(6000 + rep);
      core::FreshnessCache cache(/*ttl_epochs=*/10, /*max_entries=*/1 << 12);
      core::SchedulerParams params;
      params.engine.phase1_peers = 30;
      params.engine.max_phase2_peers = 120;
      params.walk.jump = base.catalog.suggested_jump;
      params.walk.burn_in = base.catalog.suggested_burn_in;
      core::QueryScheduler scheduler(&network, base.catalog, params, &cache);
      std::vector<query::AggregateQuery> queries;
      for (int hi : {20, 40, 60}) {
        query::AggregateQuery q = CountQuery();
        q.predicate = {1, hi};
        queries.push_back(q);
      }
      util::Rng rng(200 + rep);
      // Two batches so the warm frame-reuse path is in the fingerprint too.
      core::BatchResult cold = scheduler.ExecuteBatch(queries, /*sink=*/0, rng);
      core::BatchResult warm = scheduler.ExecuteBatch(queries, /*sink=*/0, rng);
      double fingerprint = static_cast<double>(warm.frame.frame_hits);
      for (const auto& batch : {cold, warm}) {
        for (const auto& answer : batch.answers) {
          fingerprint = fingerprint * 1e-3 +
                        (answer.ok() ? answer->estimate : -1.0);
        }
      }
      return fingerprint;
    });
  };
  std::vector<double> one = run_replicates("1");
  std::vector<double> two = run_replicates("2");
  std::vector<double> eight = run_replicates("8");
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one[0], one[1]);  // Distinct clone seeds: non-vacuous check.
}

// Anytime answers under the full straggler stack must be invariant to
// P2PAQP_THREADS: per-replicate clones redraw the coalition and the tail
// stream from the clone seed, so the deadline verdict, the hedge/skip
// counts and the estimate may depend only on that seed — never on how the
// replicates are packed onto worker threads.
TEST(DeterminismTest, AnytimeReplicatesAreThreadCountInvariant) {
  TestNetwork base = MakeTestNetwork(SmallParams());
  base.network.InstallFaultPlan(StragglerFaultPlan(), 4242);

  auto run_replicates = [&base](const char* threads) {
    ScopedThreads scoped(threads);
    return util::ParallelMap(8, [&base](size_t rep) {
      net::SimulatedNetwork network = base.network.Clone(7000 + rep);
      core::AsyncQuerySession session(
          &network, base.catalog,
          ResilientAnytimeParams(base.catalog, /*deadline_ms=*/12000.0));
      util::Rng rng(300 + rep);
      auto q = CountQuery();
      auto report = session.Execute(q, /*sink=*/0, rng);
      if (!report.ok()) return -1.0;
      // Fingerprint the whole anytime outcome, not just the estimate.
      return report->answer.estimate + report->makespan_ms * 1e-9 +
             (report->answer.deadline_hit ? 1e6 : 0.0) +
             static_cast<double>(report->answer.hedges_sent +
                                 report->answer.stragglers_skipped);
    });
  };
  std::vector<double> one = run_replicates("1");
  std::vector<double> two = run_replicates("2");
  std::vector<double> eight = run_replicates("8");
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_NE(one[0], one[1]);  // Distinct clone seeds: non-vacuous check.
}

}  // namespace
}  // namespace p2paqp

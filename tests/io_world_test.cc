// Round-trip and corruption tests for world serialization.
#include "io/world_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "test_common.h"

namespace p2paqp::io {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir().empty() ? "/tmp"
                                                  : ::testing::TempDir()) +
         "/" + name;
}

class WorldIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TestNetworkParams params;
    params.num_peers = 300;
    params.num_edges = 1500;
    params.tuples_per_peer = 20;
    tn_ = std::make_unique<TestNetwork>(MakeTestNetwork(params));
    path_ = TempPath("world_io_test.p2pw");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<TestNetwork> tn_;
  std::string path_;
};

TEST_F(WorldIoTest, RoundTripPreservesEverything) {
  tn_->network.SetAlive(7, false);
  tn_->network.SetAlive(123, false);
  ASSERT_TRUE(SaveWorld(path_, tn_->network).ok());

  auto loaded = LoadWorld(path_, net::NetworkParams{}, 99);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Topology identical.
  EXPECT_EQ(loaded->graph().num_nodes(), tn_->network.graph().num_nodes());
  EXPECT_EQ(loaded->graph().num_edges(), tn_->network.graph().num_edges());
  for (graph::NodeId u = 0; u < loaded->graph().num_nodes(); ++u) {
    EXPECT_EQ(loaded->graph().degree(u), tn_->network.graph().degree(u));
  }
  // Liveness identical.
  EXPECT_FALSE(loaded->IsAlive(7));
  EXPECT_FALSE(loaded->IsAlive(123));
  EXPECT_EQ(loaded->num_alive(), tn_->network.num_alive());
  // Data identical, tuple for tuple.
  for (graph::NodeId p = 0; p < loaded->num_peers(); ++p) {
    EXPECT_EQ(loaded->peer(p).database().tuples(),
              tn_->network.peer(p).database().tuples());
  }
  // Aggregates therefore agree exactly.
  EXPECT_EQ(loaded->ExactCount(1, 30), tn_->network.ExactCount(1, 30));
  EXPECT_EQ(loaded->ExactSum(1, 100), tn_->network.ExactSum(1, 100));
}

TEST_F(WorldIoTest, LoadedWorldAnswersQueries) {
  ASSERT_TRUE(SaveWorld(path_, tn_->network).ok());
  auto loaded = LoadWorld(path_, net::NetworkParams{}, 5);
  ASSERT_TRUE(loaded.ok());
  core::SystemCatalog catalog = core::MakeCatalog(loaded->graph(), 10, 30);
  core::EngineParams params;
  params.phase1_peers = 40;
  params.include_phase1_observations = true;
  core::TwoPhaseEngine engine(&*loaded, catalog, params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.15;
  util::Rng rng(6);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  double truth = static_cast<double>(loaded->ExactCount(1, 30));
  double total = static_cast<double>(loaded->TotalTuples());
  EXPECT_LT(std::fabs(answer->estimate - truth) / total, 0.2);
}

TEST_F(WorldIoTest, MissingFileIsNotFound) {
  auto loaded = LoadWorld(TempPath("does_not_exist.p2pw"),
                          net::NetworkParams{}, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST_F(WorldIoTest, RejectsForeignFiles) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::fputs("definitely not a world file", f);
  std::fclose(f);
  auto loaded = LoadWorld(path_, net::NetworkParams{}, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(WorldIoTest, RejectsTruncatedFiles) {
  ASSERT_TRUE(SaveWorld(path_, tn_->network).ok());
  // Truncate the file to half: must fail cleanly, not crash.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 0);
  ASSERT_EQ(truncate(path_.c_str(), size / 2), 0);
  auto loaded = LoadWorld(path_, net::NetworkParams{}, 1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace p2paqp::io

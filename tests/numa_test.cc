// NUMA topology probing, lane placement math, and the placement-neutrality
// contract: NUMA placement on or off must not change a single bit of any
// result, for any P2PAQP_THREADS.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "topology/super_peer.h"
#include "util/numa.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace p2paqp {
namespace {

// RAII env override; restores the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(NumaTopology, SingleNodeFallbackCoversAllCpus) {
  util::NumaTopology topo = util::NumaTopology::SingleNode(8);
  EXPECT_EQ(topo.num_nodes(), 1u);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.num_cpus(), 8u);
  ASSERT_EQ(topo.nodes()[0].cpus.size(), 8u);
  // Lane placement degenerates to lane % ncpu — the pre-NUMA behavior.
  for (size_t lane = 0; lane < 20; ++lane) {
    EXPECT_EQ(topo.NodeOfLane(lane, 20), 0u);
    EXPECT_EQ(topo.CpuOfLane(lane, 20), static_cast<int>(lane % 8));
  }
}

TEST(NumaTopology, TwoNodeLaneGroupsAreContiguousAndExhaustive) {
  std::vector<util::NumaTopology::Node> nodes(2);
  nodes[0].id = 0;
  nodes[0].cpus = {0, 1, 2, 3};
  nodes[1].id = 1;
  nodes[1].cpus = {4, 5, 6, 7};
  util::NumaTopology topo = util::NumaTopology::FromNodes(std::move(nodes));
  ASSERT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.num_cpus(), 8u);

  for (size_t lanes : {1u, 2u, 3u, 7u, 8u, 16u, 33u}) {
    size_t prev = 0;
    for (size_t lane = 0; lane < lanes; ++lane) {
      size_t node = topo.NodeOfLane(lane, lanes);
      ASSERT_LT(node, 2u);
      // Contiguous non-decreasing groups: lane l's node never precedes
      // lane l-1's.
      ASSERT_GE(node, prev) << "lane " << lane << " of " << lanes;
      prev = node;
      // The CPU must belong to the lane's node.
      int cpu = topo.CpuOfLane(lane, lanes);
      const auto& cpus = topo.nodes()[node].cpus;
      EXPECT_NE(std::find(cpus.begin(), cpus.end(), cpu), cpus.end());
    }
    // Both nodes get lanes once there are at least two.
    if (lanes >= 2) {
      EXPECT_EQ(topo.NodeOfLane(0, lanes), 0u);
      EXPECT_EQ(topo.NodeOfLane(lanes - 1, lanes), 1u);
    }
  }
}

TEST(NumaTopology, KnobForcesSingleNodeFallback) {
  ScopedEnv off("P2PAQP_NUMA", "0");
  EXPECT_FALSE(util::NumaPlacementEnabled());
  EXPECT_FALSE(util::NumaTopology::Effective().multi_node());
}

TEST(NumaTopology, ProbedTopologyIsSane) {
  const util::NumaTopology& topo = util::NumaTopology::Probed();
  ASSERT_GE(topo.num_nodes(), 1u);
  ASSERT_GE(topo.num_cpus(), 1u);
  size_t cpus = 0;
  for (const auto& node : topo.nodes()) {
    EXPECT_FALSE(node.cpus.empty());
    cpus += node.cpus.size();
  }
  EXPECT_EQ(cpus, topo.num_cpus());
}

// RunStaticRanges must cover [0, n) exactly once with contiguous,
// ascending, per-lane ranges — the hoisted partition formula.
TEST(RunStaticRanges, CoversIndexSpaceExactlyOnce) {
  ScopedEnv threads("P2PAQP_THREADS", "4");
  for (size_t n : {0u, 1u, 5u, 64u, 1000u}) {
    util::ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.RunStaticRanges(n, [&](size_t lane, size_t begin, size_t end) {
      EXPECT_LE(begin, end);
      EXPECT_EQ(begin, lane * n / 4);
      EXPECT_EQ(end, (lane + 1) * n / 4);
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

// The placement-neutrality contract end-to-end: the same world built with
// NUMA placement enabled, disabled, and under different thread counts is
// bit-identical (peer identities drawn through the parallel first-touch
// init path).
TEST(NumaDeterminism, WorldBuildIsBitIdenticalWithPlacementOnOrOff) {
  constexpr size_t kPeers = 60000;
  auto build_fingerprint = []() {
    topology::SuperPeerParams topo;
    topo.num_nodes = kPeers;
    topo.super_fraction = 0.02;
    topo.core_edges_per_super = 4;
    topo.leaf_connections = 2;
    util::Rng topo_rng(20060403);
    auto topology = topology::MakeSuperPeer(topo, topo_rng);
    EXPECT_TRUE(topology.ok());
    net::NetworkParams params;
    params.parallel_peer_init = true;
    auto network = net::SimulatedNetwork::Make(std::move(topology->graph), {},
                                               params, 314159);
    EXPECT_TRUE(network.ok());
    // FNV-1a over every peer's identity draws: any placement-induced
    // change to the init order or RNG streams shows up here.
    uint64_t h = 0xCBF29CE484222325ULL;
    auto mix = [&h](uint64_t value) {
      for (int i = 0; i < 8; ++i) {
        h = (h ^ ((value >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
      }
    };
    for (size_t i = 0; i < network->num_peers(); ++i) {
      const net::Peer& p = network->peer(static_cast<graph::NodeId>(i));
      mix(p.ipv4());
      mix(p.port());
    }
    return h;
  };

  uint64_t reference;
  {
    ScopedEnv numa_off("P2PAQP_NUMA", "0");
    ScopedEnv threads("P2PAQP_THREADS", "1");
    reference = build_fingerprint();
  }
  {
    ScopedEnv numa_off("P2PAQP_NUMA", "0");
    ScopedEnv threads("P2PAQP_THREADS", "4");
    EXPECT_EQ(build_fingerprint(), reference);
  }
  {
    ScopedEnv numa_on("P2PAQP_NUMA", "1");
    ScopedEnv threads("P2PAQP_THREADS", "4");
    ScopedEnv pin("P2PAQP_PIN_THREADS", "1");
    EXPECT_EQ(build_fingerprint(), reference);
  }
  {
    ScopedEnv numa_on("P2PAQP_NUMA", "1");
    ScopedEnv threads("P2PAQP_THREADS", "3");
    EXPECT_EQ(build_fingerprint(), reference);
  }
}

}  // namespace
}  // namespace p2paqp

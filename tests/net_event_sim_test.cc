// Edge-case tests for the two-tier event core: FIFO ordering of
// simultaneous events, reentrant scheduling from callbacks, the
// executed()/pending() counters, and ordering across the near-heap ->
// sorted-far flush boundary.
#include <gtest/gtest.h>

#include <vector>

#include "net/event_sim.h"
#include "util/rng.h"

namespace p2paqp::net {
namespace {

TEST(EventQueueTest, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(30.0, [&order] { order.push_back(3); });
  queue.ScheduleAt(10.0, [&order] { order.push_back(1); });
  queue.ScheduleAt(20.0, [&order] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(queue.RunUntilEmpty(), 30.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimestampRunsFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 32; ++i) {
    queue.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  queue.RunUntilEmpty();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CallbackMaySchedule) {
  // An event scheduling follow-ups mid-RunOne must interleave correctly
  // with already-pending events, including one at the exact current time
  // (which runs after, FIFO) and one between two pending events.
  EventQueue queue;
  std::vector<int> order;
  queue.ScheduleAt(10.0, [&] {
    order.push_back(1);
    queue.ScheduleAt(10.0, [&order] { order.push_back(2); });
    queue.ScheduleAt(15.0, [&order] { order.push_back(3); });
  });
  queue.ScheduleAt(20.0, [&order] { order.push_back(4); });
  EXPECT_DOUBLE_EQ(queue.RunUntilEmpty(), 20.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, RunOneAdvancesCountersAndClock) {
  EventQueue queue;
  queue.ScheduleAt(1.0, [] {});
  queue.ScheduleAfter(5.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_EQ(queue.executed(), 0u);
  EXPECT_TRUE(queue.RunOne());
  EXPECT_DOUBLE_EQ(queue.now(), 1.0);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.executed(), 1u);
  EXPECT_TRUE(queue.RunOne());
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_EQ(queue.executed(), 2u);
  EXPECT_FALSE(queue.RunOne());
  EXPECT_EQ(queue.executed(), 2u);  // An idle RunOne executes nothing.
}

TEST(EventQueueTest, ChainedEventsCountEachExecution) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) queue.ScheduleAfter(1.0, chain);
  };
  queue.ScheduleAt(0.0, chain);
  EXPECT_DOUBLE_EQ(queue.RunUntilEmpty(), 4.0);
  EXPECT_EQ(queue.executed(), 5u);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueueTest, ReserveDoesNotDisturbSemantics) {
  EventQueue queue;
  queue.Reserve(1000);
  std::vector<int> order;
  queue.ScheduleAt(2.0, [&order] { order.push_back(2); });
  queue.ScheduleAt(1.0, [&order] { order.push_back(1); });
  EXPECT_EQ(queue.pending(), 2u);
  queue.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// A backlog deeper than the internal flush threshold (64k) exercises the
// near-heap -> sorted-far merge path; the global pop order must still be
// exactly (time, FIFO) regardless of which tier each event sits in.
TEST(EventQueueTest, DeepBacklogKeepsGlobalOrderAcrossFlushes) {
  EventQueue queue;
  constexpr int kEvents = 100000;  // > 64k flush threshold.
  util::Rng rng(99);
  std::vector<double> popped;
  popped.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    // Coarse times force plenty of FIFO ties on top of the ordering.
    double at = static_cast<double>(rng.UniformInt(0, 999));
    queue.ScheduleAt(at, [&popped, &queue] { popped.push_back(queue.now()); });
  }
  EXPECT_EQ(queue.pending(), static_cast<size_t>(kEvents));
  queue.RunUntilEmpty();
  ASSERT_EQ(popped.size(), static_cast<size_t>(kEvents));
  for (int i = 1; i < kEvents; ++i) {
    ASSERT_LE(popped[i - 1], popped[i]) << "out of order at " << i;
  }
  EXPECT_EQ(queue.executed(), static_cast<uint64_t>(kEvents));
}

// Ties that straddle the flush boundary still run FIFO: events scheduled
// before and after a flush at the same timestamp must run in schedule order.
TEST(EventQueueTest, FifoTiesSurviveFlushBoundary) {
  EventQueue queue;
  constexpr int kFiller = 70000;  // Forces at least one flush.
  std::vector<int> order;
  queue.ScheduleAt(1.0, [&order] { order.push_back(0); });
  for (int i = 0; i < kFiller; ++i) queue.ScheduleAt(2.0, [] {});
  queue.ScheduleAt(1.0, [&order] { order.push_back(1); });
  queue.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(queue.executed(), static_cast<uint64_t>(kFiller + 2));
}

// The sharded core must pop in an order that is bit-identical for ANY
// shard count: replay one adversarial workload (reentrant scheduling,
// FIFO ties, flush-boundary straddles) on 1/2/4/16 shards and compare the
// full execution traces.
TEST(EventQueueTest, PopOrderIdenticalForAnyShardCount) {
  auto run = [](size_t shards) {
    EventQueue queue(shards);
    EXPECT_EQ(queue.num_shards(), shards);
    util::Rng rng(0x5EED);
    std::vector<uint64_t> trace;
    uint64_t id = 0;
    std::function<void(int)> spawn = [&](int depth) {
      uint64_t me = id++;
      trace.push_back(me);
      if (depth > 0) {
        int children = static_cast<int>(rng.UniformInt(0, 2));
        for (int c = 0; c < children; ++c) {
          queue.ScheduleAfter(static_cast<double>(rng.UniformInt(0, 9)),
                              [&spawn, depth] { spawn(depth - 1); });
        }
      }
    };
    for (int i = 0; i < 2000; ++i) {
      queue.ScheduleAt(static_cast<double>(rng.UniformInt(0, 49)),
                       [&spawn] { spawn(3); });
    }
    queue.RunUntilEmpty();
    trace.push_back(queue.executed());
    return trace;
  };
  std::vector<uint64_t> base = run(1);
  EXPECT_EQ(run(2), base);
  EXPECT_EQ(run(4), base);
  EXPECT_EQ(run(16), base);
}

// Deep-backlog ordering with shards: the 100k-event merge-path test above
// runs on the default shard count; pin a multi-shard queue explicitly so
// CI machines with P2PAQP_THREADS=1 still cover cross-shard popping.
TEST(EventQueueTest, DeepBacklogOrderedAcrossShards) {
  EventQueue queue(4);
  constexpr int kEvents = 100000;
  util::Rng rng(99);
  std::vector<double> popped;
  popped.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    double at = static_cast<double>(rng.UniformInt(0, 999));
    queue.ScheduleAt(at, [&popped, &queue] { popped.push_back(queue.now()); });
  }
  EXPECT_EQ(queue.pending(), static_cast<size_t>(kEvents));
  queue.RunUntilEmpty();
  ASSERT_EQ(popped.size(), static_cast<size_t>(kEvents));
  for (int i = 1; i < kEvents; ++i) {
    ASSERT_LE(popped[i - 1], popped[i]) << "out of order at " << i;
  }
}

// Collects every RunSteps call: which args arrived together and in what
// order, so the batching tests can assert both the grouping and the FIFO
// contract.
struct RecordingHandler final : public StepHandler {
  std::vector<std::vector<uint32_t>> batches;
  void RunSteps(const uint32_t* args, size_t n) override {
    batches.emplace_back(args, args + n);
  }
};

TEST(EventQueueStepTest, SimultaneousStepsBatchInScheduleOrder) {
  EventQueue queue;
  RecordingHandler handler;
  for (uint32_t i = 0; i < 5; ++i) queue.ScheduleStepAt(10.0, &handler, i);
  queue.RunUntilEmpty();
  ASSERT_EQ(handler.batches.size(), 1u);
  EXPECT_EQ(handler.batches[0], (std::vector<uint32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.executed(), 5u);  // Each step counts as one event.
}

TEST(EventQueueStepTest, DistinctTimesDoNotBatch) {
  EventQueue queue;
  RecordingHandler handler;
  queue.ScheduleStepAt(10.0, &handler, 0);
  queue.ScheduleStepAt(20.0, &handler, 1);
  queue.RunUntilEmpty();
  ASSERT_EQ(handler.batches.size(), 2u);
  EXPECT_EQ(handler.batches[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(handler.batches[1], (std::vector<uint32_t>{1}));
}

TEST(EventQueueStepTest, DistinctHandlersSplitASharedTick) {
  // A batch is maximal over CONSECUTIVE pops with the same handler: an
  // interleaved schedule for two handlers at one tick yields one batch per
  // handler run, preserving global FIFO.
  EventQueue queue;
  RecordingHandler a;
  RecordingHandler b;
  queue.ScheduleStepAt(5.0, &a, 0);
  queue.ScheduleStepAt(5.0, &a, 1);
  queue.ScheduleStepAt(5.0, &b, 2);
  queue.ScheduleStepAt(5.0, &a, 3);
  queue.RunUntilEmpty();
  ASSERT_EQ(a.batches.size(), 2u);
  EXPECT_EQ(a.batches[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(a.batches[1], (std::vector<uint32_t>{3}));
  ASSERT_EQ(b.batches.size(), 1u);
  EXPECT_EQ(b.batches[0], (std::vector<uint32_t>{2}));
}

TEST(EventQueueStepTest, CallbackAtSameTickSplitsTheBatch) {
  // A plain callback scheduled between two step runs executes in its FIFO
  // slot — the gather never hops over it.
  EventQueue queue;
  RecordingHandler handler;
  std::vector<int> callback_at;
  queue.ScheduleStepAt(5.0, &handler, 0);
  queue.ScheduleAt(5.0, [&] {
    callback_at.push_back(static_cast<int>(handler.batches.size()));
  });
  queue.ScheduleStepAt(5.0, &handler, 1);
  queue.RunUntilEmpty();
  ASSERT_EQ(handler.batches.size(), 2u);
  EXPECT_EQ(handler.batches[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(handler.batches[1], (std::vector<uint32_t>{1}));
  // The callback saw exactly one batch done: it ran between them.
  EXPECT_EQ(callback_at, (std::vector<int>{1}));
}

TEST(EventQueueStepTest, StepsScheduledInsideABatchRunAfterIt) {
  // Anything a step schedules carries a later sequence than every member of
  // its batch — even at the same timestamp it lands in a later batch.
  EventQueue queue;
  struct Chaining final : public StepHandler {
    EventQueue* queue = nullptr;
    std::vector<std::vector<uint32_t>> batches;
    void RunSteps(const uint32_t* args, size_t n) override {
      batches.emplace_back(args, args + n);
      for (size_t i = 0; i < n; ++i) {
        if (args[i] < 10) {
          queue->ScheduleStepAfter(0.0, this, args[i] + 10);
        }
      }
    }
  };
  Chaining handler;
  handler.queue = &queue;
  queue.ScheduleStepAt(1.0, &handler, 0);
  queue.ScheduleStepAt(1.0, &handler, 1);
  queue.RunUntilEmpty();
  ASSERT_EQ(handler.batches.size(), 2u);
  EXPECT_EQ(handler.batches[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(handler.batches[1], (std::vector<uint32_t>{10, 11}));
}

TEST(EventQueueStepTest, BatchingIsIdenticalForAnyShardCount) {
  // The batch boundaries derive from the (time, sequence) pop order alone,
  // so every shard count produces the same RunSteps grouping.
  std::vector<std::vector<std::vector<uint32_t>>> per_shard_batches;
  for (size_t shards : {1u, 2u, 8u}) {
    EventQueue queue(shards);
    RecordingHandler handler;
    util::Rng rng(321);
    for (uint32_t i = 0; i < 500; ++i) {
      queue.ScheduleStepAt(static_cast<double>(rng.UniformInt(0, 19)),
                           &handler, i);
    }
    queue.RunUntilEmpty();
    per_shard_batches.push_back(handler.batches);
  }
  EXPECT_EQ(per_shard_batches[0], per_shard_batches[1]);
  EXPECT_EQ(per_shard_batches[0], per_shard_batches[2]);
}

TEST(EventQueueStepTest, StepsAndCallbacksShareSlabsAcrossReuse) {
  // Steady-state recycling: a bounded pending set of mixed step/callback
  // events keeps slab capacity flat while sequences keep climbing.
  EventQueue queue;
  struct SelfStepper final : public StepHandler {
    EventQueue* queue = nullptr;
    uint64_t steps = 0;
    void RunSteps(const uint32_t* args, size_t n) override {
      for (size_t i = 0; i < n; ++i) {
        steps += 1;
        if (steps + n - i <= 2000) queue->ScheduleStepAfter(1.0, this, args[i]);
      }
    }
  };
  SelfStepper stepper;
  stepper.queue = &queue;
  queue.Reserve(8);
  for (uint32_t w = 0; w < 4; ++w) queue.ScheduleStepAt(0.0, &stepper, w);
  queue.RunUntilEmpty();
  EXPECT_GE(stepper.steps, 1996u);
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueueDeathTest, NonPowerOfTwoShardCountAborts) {
  EXPECT_DEATH(EventQueue queue(3), "power of two");
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue queue;
  queue.ScheduleAt(10.0, [] {});
  queue.RunUntilEmpty();
  EXPECT_DEATH(queue.ScheduleAt(5.0, [] {}), "cannot schedule in the past");
}

}  // namespace
}  // namespace p2paqp::net

// Persisted-CSR round-trip and out-of-core builder coverage.
//
// The contracts under test:
//   * SaveGraph + OpenMappedGraph reproduce a built graph bit for bit —
//     same edge digest, same adjacency, same header stats — with the mapped
//     Graph reading straight out of the file mapping (is_mapped());
//   * the spilling GraphBuilder (P2PAQP_BUILD_SPILL_EDGES) produces a graph
//     byte-identical to the in-memory counting-sort path, including through
//     multi-pass merges (fan-in smaller than the run count);
//   * PrefaultGraph returns a deterministic checksum (so the page touches
//     cannot be optimized away) on owned and mapped graphs alike.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"
#include "io/graph_io.h"
#include "topology/random.h"
#include "util/rng.h"

namespace p2paqp {
namespace {

// FNV-1a over (num_nodes, num_edges, then each edge (u, v) with u < v in
// CSR order) — the same digest tests/topology_golden_test.cc pins.
uint64_t EdgeDigest(const graph::Graph& g) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((value >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
    }
  };
  mix(g.num_nodes());
  mix(g.num_edges());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (graph::NodeId v : g.neighbors(u)) {
      if (u < v) {
        mix(u);
        mix(v);
      }
    }
  }
  return h;
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

graph::Graph BuildTestGraph() {
  util::Rng rng(1234);
  auto g = topology::MakeErdosRenyi(2000, 6000, rng);
  EXPECT_TRUE(g.ok());
  return std::move(*g);
}

TEST(GraphIo, RoundTripPreservesGoldenDigest) {
  graph::Graph built = BuildTestGraph();
  // The ErdosRenyi(2000, 6000, seed 1234) golden from
  // tests/topology_golden_test.cc: the round trip must preserve it.
  ASSERT_EQ(EdgeDigest(built), 0xDDA47CFC74133F3DULL);

  const std::string path = TempPath("round_trip.p2pg");
  auto saved = io::SaveGraph(path, built);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  auto mapped = io::OpenMappedGraph(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_FALSE(built.is_mapped());
  EXPECT_EQ(mapped->num_nodes(), built.num_nodes());
  EXPECT_EQ(mapped->num_edges(), built.num_edges());
  EXPECT_EQ(mapped->min_degree(), built.min_degree());
  EXPECT_EQ(mapped->max_degree(), built.max_degree());
  EXPECT_EQ(EdgeDigest(*mapped), EdgeDigest(built));

  // Full adjacency, not just the digest.
  std::vector<graph::NodeId> a, b;
  for (graph::NodeId u = 0; u < built.num_nodes(); ++u) {
    built.CopyNeighbors(u, &a);
    mapped->CopyNeighbors(u, &b);
    ASSERT_EQ(a, b) << "adjacency diverged at node " << u;
  }
  std::remove(path.c_str());
}

TEST(GraphIo, CopiesOfMappedGraphShareTheMapping) {
  graph::Graph built = BuildTestGraph();
  const std::string path = TempPath("shared_mapping.p2pg");
  ASSERT_TRUE(io::SaveGraph(path, built).ok());
  auto mapped = io::OpenMappedGraph(path);
  ASSERT_TRUE(mapped.ok());

  graph::Graph copy = *mapped;  // Copy shares the mapping, no byte copy.
  EXPECT_TRUE(copy.is_mapped());
  EXPECT_EQ(copy.encoded_bytes(), mapped->encoded_bytes());
  EXPECT_EQ(copy.offsets(), mapped->offsets());
  EXPECT_EQ(EdgeDigest(copy), EdgeDigest(built));

  graph::Graph moved = std::move(*mapped);  // Move keeps the views valid.
  EXPECT_TRUE(moved.is_mapped());
  EXPECT_EQ(EdgeDigest(moved), EdgeDigest(built));
  std::remove(path.c_str());
}

TEST(GraphIo, RejectsMissingTruncatedAndForeignFiles) {
  EXPECT_FALSE(io::OpenMappedGraph(TempPath("does_not_exist.p2pg")).ok());

  // A foreign file: right size ballpark, wrong magic.
  const std::string foreign = TempPath("foreign.p2pg");
  {
    std::FILE* f = std::fopen(foreign.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::vector<uint8_t> junk(128, 0x5A);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  EXPECT_FALSE(io::OpenMappedGraph(foreign).ok());
  std::remove(foreign.c_str());

  // A truncated save: header intact, stream cut short.
  graph::Graph built = BuildTestGraph();
  const std::string truncated = TempPath("truncated.p2pg");
  ASSERT_TRUE(io::SaveGraph(truncated, built).ok());
  {
    std::FILE* f = std::fopen(truncated.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(truncated.c_str(), size - 100), 0);
  }
  EXPECT_FALSE(io::OpenMappedGraph(truncated).ok());
  std::remove(truncated.c_str());
}

TEST(GraphIo, PrefaultChecksumIsDeterministicOwnedAndMapped) {
  graph::Graph built = BuildTestGraph();
  const uint64_t owned_sum = io::PrefaultGraph(built);
  EXPECT_EQ(io::PrefaultGraph(built), owned_sum);

  const std::string path = TempPath("prefault.p2pg");
  ASSERT_TRUE(io::SaveGraph(path, built).ok());
  auto mapped = io::OpenMappedGraph(path);
  ASSERT_TRUE(mapped.ok());
  // Same bytes, same pages, same checksum.
  EXPECT_EQ(io::PrefaultGraph(*mapped), owned_sum);
  std::remove(path.c_str());
}

// The spilling builder must be byte-identical to the in-memory path. This
// drives both directly (set_spill) on one shared edge sequence, with a run
// size and fan-in small enough to force multiple runs AND a multi-pass
// collapse (runs > fan_in).
TEST(SpillBuilder, BitIdenticalToInMemoryThroughMultiPassMerge) {
  constexpr size_t kNodes = 3000;
  constexpr size_t kAttempts = 30000;

  auto feed = [](graph::GraphBuilder& builder) {
    util::Rng rng(0x5B111);  // Same stream for both builders.
    for (size_t i = 0; i < kAttempts; ++i) {
      auto a = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
      auto b = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
      builder.AddEdge(a, b);
    }
  };

  graph::GraphBuilder in_memory(kNodes);
  feed(in_memory);
  const size_t num_edges = in_memory.num_edges();
  graph::Graph reference = in_memory.Build();

  graph::GraphBuilder spilling(kNodes);
  graph::SpillOptions spill;
  spill.run_edges = 1000;   // ~28 runs for ~28k accepted edges.
  spill.merge_fan_in = 4;   // Forces two collapse passes before the merge.
  spilling.set_spill(spill);
  feed(spilling);
  ASSERT_EQ(spilling.num_edges(), num_edges);
  EXPECT_GT(spilling.SpilledRuns(), spill.merge_fan_in)
      << "test must exercise the multi-pass collapse";
  EXPECT_GT(spilling.SpilledBytes(), 0u);
  graph::Graph spilled = spilling.Build();

  ASSERT_EQ(spilled.num_nodes(), reference.num_nodes());
  ASSERT_EQ(spilled.num_edges(), reference.num_edges());
  EXPECT_EQ(spilled.min_degree(), reference.min_degree());
  EXPECT_EQ(spilled.max_degree(), reference.max_degree());
  EXPECT_EQ(EdgeDigest(spilled), EdgeDigest(reference));
  // Byte-identical encodings, not merely equal edge sets.
  ASSERT_EQ(spilled.MemoryBytes(), reference.MemoryBytes());
  const size_t encoded = reference.offsets()[reference.num_nodes()];
  EXPECT_EQ(std::memcmp(spilled.encoded_bytes(), reference.encoded_bytes(),
                        encoded),
            0);
}

// The builder's accept/reject feedback (the generators' RNG contract) must
// not depend on the spill mode: identical decisions edge-for-edge.
TEST(SpillBuilder, AcceptRejectDecisionsMatchInMemory) {
  constexpr size_t kNodes = 400;
  util::Rng rng(0xFEED5);
  graph::GraphBuilder in_memory(kNodes);
  graph::GraphBuilder spilling(kNodes);
  graph::SpillOptions spill;
  spill.run_edges = 64;
  spilling.set_spill(spill);
  for (size_t i = 0; i < 20000; ++i) {
    // Includes out-of-range endpoints and self loops.
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(kNodes + 8));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(kNodes + 8));
    ASSERT_EQ(in_memory.AddEdge(a, b), spilling.AddEdge(a, b))
        << "decision diverged at attempt " << i;
    if (i % 503 == 0 && a < kNodes && b < kNodes) {
      ASSERT_EQ(in_memory.HasEdge(a, b), spilling.HasEdge(a, b));
      ASSERT_EQ(in_memory.degree(a), spilling.degree(a));
    }
  }
  EXPECT_EQ(EdgeDigest(in_memory.Build()), EdgeDigest(spilling.Build()));
}

// Spill mode must keep the edge log off the heap: the builder's resident
// footprint stays O(nodes + dedup table + run buffer) while the arcs land
// on disk.
TEST(SpillBuilder, EdgeLogStaysOutOfCore) {
  constexpr size_t kNodes = 20000;
  graph::GraphBuilder builder(kNodes);
  graph::SpillOptions spill;
  spill.run_edges = 512;
  builder.set_spill(spill);
  util::Rng rng(31337);
  size_t accepted = 0;
  for (size_t i = 0; i < 120000; ++i) {
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(kNodes));
    if (builder.AddEdge(a, b)) ++accepted;
  }
  // The run buffer holds at most one run (2 arcs per edge); everything
  // beyond it must be on disk, not in MemoryBytes().
  EXPECT_LE(builder.MemoryBytes(),
            kNodes * sizeof(uint32_t)                // degrees
                + 4 * spill.run_edges * sizeof(uint64_t)  // run buffer slack
                + 4 * accepted * sizeof(uint64_t));  // dedup table (pow2)
  EXPECT_GE(builder.SpilledBytes(),
            (accepted - spill.run_edges) * 2 * sizeof(uint64_t));
  graph::Graph g = builder.Build();
  EXPECT_EQ(g.num_edges(), accepted);
}

}  // namespace
}  // namespace p2paqp

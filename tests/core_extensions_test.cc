// Tests for the future-work extensions: hybrid cached sampling and biased
// sampling.
#include <gtest/gtest.h>

#include "core/biased.h"
#include "core/hybrid.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

query::AggregateQuery CountQuery() {
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  return q;
}

TEST(FreshnessCacheTest, MissThenHit) {
  FreshnessCache cache(/*ttl_epochs=*/2);
  query::AggregateQuery q = CountQuery();
  query::LocalAggregate agg;
  agg.count_value = 7.0;
  query::LocalAggregate out;
  EXPECT_FALSE(cache.Lookup(3, q, &out));
  cache.Store(3, q, agg);
  ASSERT_TRUE(cache.Lookup(3, q, &out));
  EXPECT_DOUBLE_EQ(out.count_value, 7.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(FreshnessCacheTest, DistinguishesPeersAndQueries) {
  FreshnessCache cache(5);
  query::AggregateQuery q1 = CountQuery();
  query::AggregateQuery q2 = CountQuery();
  q2.predicate = {1, 60};
  query::LocalAggregate agg;
  cache.Store(1, q1, agg);
  query::LocalAggregate out;
  EXPECT_TRUE(cache.Lookup(1, q1, &out));
  EXPECT_FALSE(cache.Lookup(2, q1, &out));
  EXPECT_FALSE(cache.Lookup(1, q2, &out));
}

TEST(FreshnessCacheTest, EntriesExpireAfterTtl) {
  FreshnessCache cache(2);
  query::AggregateQuery q = CountQuery();
  query::LocalAggregate agg;
  cache.Store(0, q, agg);
  query::LocalAggregate out;
  cache.AdvanceEpoch();
  cache.AdvanceEpoch();
  EXPECT_TRUE(cache.Lookup(0, q, &out));  // Exactly at TTL: still fresh.
  cache.AdvanceEpoch();
  EXPECT_FALSE(cache.Lookup(0, q, &out));  // Past TTL.
}

TEST(FreshnessCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  FreshnessCache cache(/*ttl_epochs=*/10, /*max_entries=*/2);
  query::AggregateQuery q = CountQuery();
  query::LocalAggregate agg;
  query::LocalAggregate out;
  cache.Store(1, q, agg);
  cache.Store(2, q, agg);
  ASSERT_TRUE(cache.Lookup(1, q, &out));  // Refreshes 1's recency.
  cache.Store(3, q, agg);                 // Capacity 2: evicts 2, not 1.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.Lookup(1, q, &out));
  EXPECT_FALSE(cache.Lookup(2, q, &out));
  EXPECT_TRUE(cache.Lookup(3, q, &out));
}

TEST(FreshnessCacheTest, UnboundedCacheNeverEvicts) {
  FreshnessCache cache(/*ttl_epochs=*/10);  // max_entries 0 = unbounded.
  query::AggregateQuery q = CountQuery();
  query::LocalAggregate agg;
  for (graph::NodeId peer = 0; peer < 100; ++peer) cache.Store(peer, q, agg);
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.evictions(), 0u);
}

// Regression: the interaction between LRU eviction and epoch expiry. A
// stale lookup is a miss but must NOT refresh the entry's recency, so stale
// entries drain out of a full cache before fresh ones; and re-storing a
// stale key refreshes it in place without burning an eviction.
TEST(FreshnessCacheTest, StaleLookupDoesNotRefreshRecency) {
  FreshnessCache cache(/*ttl_epochs=*/1, /*max_entries=*/2);
  query::AggregateQuery q = CountQuery();
  query::LocalAggregate agg;
  query::LocalAggregate out;
  cache.Store(1, q, agg);
  cache.Store(2, q, agg);  // LRU order now: 2 (MRU), 1 (LRU).
  cache.AdvanceEpoch();
  cache.AdvanceEpoch();  // Both entries are now past the 1-epoch TTL.
  EXPECT_FALSE(cache.Lookup(1, q, &out));  // Stale miss: no recency touch.
  cache.Store(3, q, agg);                  // Evicts 1 (still the LRU).
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup(2, q, &out));  // Stale, but still resident...
  cache.Store(2, q, agg);                  // ...so this refreshes in place.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);  // No second eviction.
  EXPECT_TRUE(cache.Lookup(2, q, &out));
  EXPECT_TRUE(cache.Lookup(3, q, &out));
}

TEST(HybridEngineTest, SecondQueryScansFewerTuplesPerVisit) {
  // Small network so repeat visits are common and the cache can shine.
  TestNetworkParams net_params;
  net_params.num_peers = 150;
  net_params.num_edges = 700;
  net_params.cut_edges = 60;
  TestNetwork tn = MakeTestNetwork(net_params);
  EngineParams params;
  params.phase1_peers = 60;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  FreshnessCache cache(10);
  engine.set_cache(&cache);
  query::AggregateQuery q = CountQuery();
  util::Rng rng(1);
  auto first = engine.Execute(q, 0, rng);
  ASSERT_TRUE(first.ok());
  auto second = engine.Execute(q, 0, rng);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(cache.hits(), 0u);
  auto scans_per_visit = [](const ApproximateAnswer& a) {
    return static_cast<double>(a.cost.tuples_scanned) /
           static_cast<double>(a.cost.peers_visited);
  };
  EXPECT_LT(scans_per_visit(*second), scans_per_visit(*first));
  // Accuracy holds: cached local aggregates are real answers.
  EXPECT_LT(p2paqp::testing::NormalizedCountError(tn.network,
                                                  second->estimate, 1, 30),
            0.15);
}

TEST(HybridEngineTest, DisablingCacheRestoresFullScans) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  EngineParams params;
  params.phase1_peers = 40;
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);
  FreshnessCache cache(10);
  engine.set_cache(&cache);
  query::AggregateQuery q = CountQuery();
  util::Rng rng(2);
  ASSERT_TRUE(engine.Execute(q, 0, rng).ok());
  engine.set_cache(nullptr);
  auto before_hits = cache.hits();
  ASSERT_TRUE(engine.Execute(q, 0, rng).ok());
  EXPECT_EQ(cache.hits(), before_hits);
}

TEST(BiasedWalkTest, SynopsisWeightsAreExactStationaryWeights) {
  // Analytic check on a tiny graph: the biased walk is reversible with
  // pi(p) ~ c(p) * sum_{v in N(p)} c(v). We verify empirically.
  TestNetworkParams net_params;
  net_params.num_peers = 120;
  net_params.num_edges = 500;
  net_params.cluster_level = 0.0;
  TestNetwork tn = MakeTestNetwork(net_params);
  query::RangePredicate predicate{1, 30};
  BiasedWalkSampler sampler(&tn.network, predicate, /*jump=*/6,
                            /*floor=*/0.2);
  util::Rng rng(3);
  const size_t kSelections = 60000;
  auto visits = sampler.SamplePeers(0, kSelections, rng);
  ASSERT_TRUE(visits.ok());
  std::vector<size_t> counts(tn.network.num_peers(), 0);
  for (const auto& v : *visits) ++counts[v.peer];
  double total_weight = sampler.ExactTotalWeight();
  // Chi-square-ish check: aggregate absolute deviation small.
  double deviation = 0.0;
  for (graph::NodeId p = 0; p < tn.network.num_peers(); ++p) {
    double expected = sampler.StationaryWeight(p) / total_weight;
    double observed =
        static_cast<double>(counts[p]) / static_cast<double>(kSelections);
    deviation += std::fabs(expected - observed);
  }
  EXPECT_LT(deviation / 2.0, 0.08);  // Total variation distance.
}

TEST(BiasedWalkTest, VisitsMatchingRegionsMoreOften) {
  TestNetworkParams net_params;
  net_params.cluster_level = 0.0;
  TestNetwork tn = MakeTestNetwork(net_params);
  query::RangePredicate predicate{1, 10};
  BiasedWalkSampler sampler(&tn.network, predicate, 5, 0.05);
  util::Rng rng(4);
  auto visits = sampler.SamplePeers(0, 2000, rng);
  ASSERT_TRUE(visits.ok());
  size_t matching_visits = 0;
  for (const auto& v : *visits) {
    const auto& db = tn.network.peer(v.peer).database();
    if (!db.empty() &&
        db.Count(predicate.lo, predicate.hi) * 2 >
            static_cast<int64_t>(db.size())) {
      ++matching_visits;
    }
  }
  // Fraction of peers whose data is mostly matching ~ selectivity of the
  // predicate under unbiased walking; the biased walk must exceed it.
  double fraction =
      static_cast<double>(matching_visits) / static_cast<double>(2000);
  auto zipf = util::ZipfGenerator::Make(100, 0.2);
  double selectivity = 0.0;
  for (uint32_t v = 1; v <= 10; ++v) selectivity += zipf->Probability(v);
  EXPECT_GT(fraction, selectivity * 1.5);
}

TEST(BiasedWalkTest, SelfNormalizedEstimateIsConsistent) {
  TestNetworkParams net_params;
  net_params.cluster_level = 0.5;
  TestNetwork tn = MakeTestNetwork(net_params);
  query::AggregateQuery q = CountQuery();
  double truth = static_cast<double>(tn.network.ExactCount(1, 30));
  util::RunningStat errors;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng(seed);
    auto answer = EstimateBiased(&tn.network, tn.catalog, q, 0,
                                 /*num_peers=*/300, /*tuples_per_peer=*/25,
                                 /*floor=*/0.2, rng);
    ASSERT_TRUE(answer.ok());
    errors.Add(util::RelativeError(answer->estimate, truth));
  }
  EXPECT_LT(errors.mean(), 0.15);
}

TEST(BiasedWalkTest, ReportsCost) {
  TestNetwork tn = MakeTestNetwork(TestNetworkParams{});
  query::AggregateQuery q = CountQuery();
  util::Rng rng(9);
  auto answer = EstimateBiased(&tn.network, tn.catalog, q, 0, 50, 25, 0.2,
                               rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->peers_visited, 50u);
  EXPECT_GT(answer->cost.walker_hops, 0u);
  EXPECT_EQ(answer->cost.peers_visited, 50u);
}

}  // namespace
}  // namespace p2paqp::core

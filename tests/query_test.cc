#include <gtest/gtest.h>

#include "query/local_executor.h"
#include "query/query.h"
#include "util/statistics.h"

namespace p2paqp::query {
namespace {

TEST(PredicateTest, MatchesInclusiveRange) {
  RangePredicate p{10, 20};
  EXPECT_TRUE(p.Matches(10));
  EXPECT_TRUE(p.Matches(20));
  EXPECT_TRUE(p.Matches(15));
  EXPECT_FALSE(p.Matches(9));
  EXPECT_FALSE(p.Matches(21));
}

TEST(PredicateTest, AllMatchesEverything) {
  RangePredicate p = RangePredicate::All();
  EXPECT_TRUE(p.Matches(-1000000));
  EXPECT_TRUE(p.Matches(0));
  EXPECT_TRUE(p.Matches(1000000));
}

TEST(QueryTest, SqlRendering) {
  AggregateQuery q;
  q.op = AggregateOp::kSum;
  q.predicate = {5, 42};
  EXPECT_EQ(q.ToSql(), "SELECT SUM(A) FROM T WHERE A BETWEEN 5 AND 42");
}

TEST(QueryTest, OpNames) {
  EXPECT_STREQ(AggregateOpToString(AggregateOp::kCount), "COUNT");
  EXPECT_STREQ(AggregateOpToString(AggregateOp::kMedian), "MEDIAN");
  EXPECT_STREQ(AggregateOpToString(AggregateOp::kDistinct), "DISTINCT");
}

TEST(ExpressionTest, EvaluatesEveryForm) {
  data::Tuple t{6, 7};
  EXPECT_DOUBLE_EQ(EvaluateExpression(Expression::kColA, t), 6.0);
  EXPECT_DOUBLE_EQ(EvaluateExpression(Expression::kColB, t), 7.0);
  EXPECT_DOUBLE_EQ(EvaluateExpression(Expression::kAPlusB, t), 13.0);
  EXPECT_DOUBLE_EQ(EvaluateExpression(Expression::kATimesB, t), 42.0);
}

TEST(ExpressionTest, Names) {
  EXPECT_STREQ(ExpressionToString(Expression::kColA), "A");
  EXPECT_STREQ(ExpressionToString(Expression::kATimesB), "A*B");
}

TEST(QueryTest, ConjunctivePredicateOnBothColumns) {
  AggregateQuery q;
  q.predicate = {1, 10};
  q.predicate_b = RangePredicate{5, 5};
  EXPECT_TRUE(q.Matches({3, 5}));
  EXPECT_FALSE(q.Matches({3, 6}));
  EXPECT_FALSE(q.Matches({11, 5}));
  q.predicate_b.reset();
  EXPECT_TRUE(q.Matches({3, 999}));
}

TEST(QueryTest, SqlRenderingWithExpressionAndBPredicate) {
  AggregateQuery q;
  q.op = AggregateOp::kSum;
  q.expr = Expression::kATimesB;
  q.predicate = {1, 10};
  q.predicate_b = RangePredicate{2, 20};
  EXPECT_EQ(q.ToSql(),
            "SELECT SUM(A*B) FROM T WHERE A BETWEEN 1 AND 10 "
            "AND B BETWEEN 2 AND 20");
}

TEST(SelectivityTest, PrefixMassApproximatesTarget) {
  auto zipf = util::ZipfGenerator::Make(100, 0.2);
  ASSERT_TRUE(zipf.ok());
  for (double target : {0.025, 0.05, 0.1, 0.2, 0.3, 0.4}) {
    RangePredicate p = PredicateForSelectivity(*zipf, 1, target);
    double mass = 0.0;
    for (data::Value v = p.lo; v <= p.hi; ++v) {
      mass += zipf->Probability(static_cast<uint32_t>(v));
    }
    EXPECT_NEAR(mass, target, 0.02) << "target " << target;
    EXPECT_EQ(p.lo, 1);
  }
}

TEST(SelectivityTest, FullSelectivityCoversDomain) {
  auto zipf = util::ZipfGenerator::Make(100, 1.0);
  ASSERT_TRUE(zipf.ok());
  RangePredicate p = PredicateForSelectivity(*zipf, 1, 1.0);
  EXPECT_EQ(p.hi, 100);
}

class LocalExecutorTest : public ::testing::Test {
 protected:
  // 100 tuples: values 1..100 exactly once.
  void SetUp() override {
    data::Table table;
    for (data::Value v = 1; v <= 100; ++v) table.push_back({v});
    db_ = data::LocalDatabase(std::move(table));
  }
  data::LocalDatabase db_;
};

TEST_F(LocalExecutorTest, FullScanWhenUnderBudget) {
  AggregateQuery q;
  q.predicate = {1, 30};
  util::Rng rng(1);
  LocalAggregate agg = ExecuteLocal(db_, q, /*t=*/200, rng);
  EXPECT_EQ(agg.processed_tuples, 100u);
  EXPECT_DOUBLE_EQ(agg.count_value, 30.0);
  EXPECT_DOUBLE_EQ(agg.sum_value, 30.0 * 31.0 / 2.0);
  EXPECT_EQ(agg.local_tuples, 100u);
}

TEST_F(LocalExecutorTest, ZeroBudgetDisablesSubsampling) {
  AggregateQuery q;
  q.predicate = {1, 100};
  util::Rng rng(2);
  LocalAggregate agg = ExecuteLocal(db_, q, /*t=*/0, rng);
  EXPECT_EQ(agg.processed_tuples, 100u);
  EXPECT_DOUBLE_EQ(agg.count_value, 100.0);
}

TEST_F(LocalExecutorTest, SubsampleScalesToFullDatabase) {
  AggregateQuery q;
  q.predicate = {1, 100};  // Everything matches.
  util::Rng rng(3);
  LocalAggregate agg = ExecuteLocal(db_, q, /*t=*/25, rng);
  EXPECT_EQ(agg.processed_tuples, 25u);
  // All 25 sampled tuples match, so the scaled count is exactly 100.
  EXPECT_DOUBLE_EQ(agg.count_value, 100.0);
  EXPECT_GT(agg.sum_value, 0.0);
}

TEST_F(LocalExecutorTest, SubsampledCountIsUnbiased) {
  AggregateQuery q;
  q.predicate = {1, 40};
  double total = 0.0;
  const int kTrials = 3000;
  util::Rng rng(4);
  for (int i = 0; i < kTrials; ++i) {
    total += ExecuteLocal(db_, q, 25, rng).count_value;
  }
  EXPECT_NEAR(total / kTrials, 40.0, 1.0);
}

TEST_F(LocalExecutorTest, MedianOfFullScan) {
  AggregateQuery q;
  q.op = AggregateOp::kMedian;
  util::Rng rng(5);
  LocalAggregate agg = ExecuteLocal(db_, q, 0, rng);
  EXPECT_NEAR(agg.local_median, 50.5, 1.0);
}

TEST_F(LocalExecutorTest, QuantileUsesPhi) {
  AggregateQuery q;
  q.op = AggregateOp::kQuantile;
  q.quantile_phi = 0.9;
  util::Rng rng(6);
  LocalAggregate agg = ExecuteLocal(db_, q, 0, rng);
  EXPECT_NEAR(agg.local_median, 90.0, 2.0);
}

TEST_F(LocalExecutorTest, EmptyDatabase) {
  data::LocalDatabase empty;
  AggregateQuery q;
  util::Rng rng(7);
  LocalAggregate agg = ExecuteLocal(empty, q, 25, rng);
  EXPECT_EQ(agg.processed_tuples, 0u);
  EXPECT_DOUBLE_EQ(agg.count_value, 0.0);
  EXPECT_DOUBLE_EQ(agg.sum_value, 0.0);
}

TEST_F(LocalExecutorTest, BlockLevelSamplingIsAlsoUnbiased) {
  // db_ holds values 1..100 in sorted order, so blocks are maximally
  // correlated — the mean must still be right even if the variance is not.
  AggregateQuery q;
  q.predicate = {1, 40};
  SubSamplePolicy policy;
  policy.t = 24;
  policy.mode = SubSampleMode::kBlockLevel;
  policy.block_size = 8;
  util::Rng rng(8);
  double total = 0.0;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    total += ExecuteLocal(db_, q, policy, rng).count_value;
  }
  EXPECT_NEAR(total / kTrials, 40.0, 1.5);
}

TEST_F(LocalExecutorTest, BlockLevelHasHigherVarianceOnSortedData) {
  AggregateQuery q;
  q.predicate = {1, 40};
  SubSamplePolicy uniform;
  uniform.t = 24;
  SubSamplePolicy blocks = uniform;
  blocks.mode = SubSampleMode::kBlockLevel;
  blocks.block_size = 8;
  util::Rng rng(9);
  util::RunningStat uniform_stat;
  util::RunningStat block_stat;
  for (int i = 0; i < 3000; ++i) {
    uniform_stat.Add(ExecuteLocal(db_, q, uniform, rng).count_value);
    block_stat.Add(ExecuteLocal(db_, q, blocks, rng).count_value);
  }
  // Whole sorted blocks are all-match or no-match: variance far above the
  // hypergeometric variance of independent tuples.
  EXPECT_GT(block_stat.variance(), 2.0 * uniform_stat.variance());
}

TEST_F(LocalExecutorTest, ExpressionSumOverBothColumns) {
  // Table where b = 2*a for a in 1..10.
  data::Table table;
  for (data::Value a = 1; a <= 10; ++a) table.push_back({a, 2 * a});
  data::LocalDatabase db(std::move(table));
  AggregateQuery q;
  q.op = AggregateOp::kSum;
  q.expr = Expression::kATimesB;
  q.predicate = {1, 10};
  util::Rng rng(10);
  LocalAggregate agg = ExecuteLocal(db, q, 0, rng);
  // Sum of a * 2a = 2 * sum(a^2) for a = 1..10 = 2 * 385.
  EXPECT_DOUBLE_EQ(agg.sum_value, 770.0);
  EXPECT_DOUBLE_EQ(agg.count_value, 10.0);
}

TEST_F(LocalExecutorTest, BPredicateFiltersRows) {
  data::Table table = {{1, 1}, {2, 1}, {3, 9}, {4, 9}};
  data::LocalDatabase db(std::move(table));
  AggregateQuery q;
  q.predicate = {1, 10};
  q.predicate_b = RangePredicate{9, 9};
  util::Rng rng(11);
  LocalAggregate agg = ExecuteLocal(db, q, 0, rng);
  EXPECT_DOUBLE_EQ(agg.count_value, 2.0);
  EXPECT_DOUBLE_EQ(agg.sum_value, 7.0);  // Values 3 + 4 (expr = column A).
}

TEST_F(LocalExecutorTest, ValueForSelectsComponent) {
  LocalAggregate agg;
  agg.count_value = 3.0;
  agg.sum_value = 99.0;
  EXPECT_DOUBLE_EQ(agg.ValueFor(AggregateOp::kCount), 3.0);
  EXPECT_DOUBLE_EQ(agg.ValueFor(AggregateOp::kSum), 99.0);
  EXPECT_DOUBLE_EQ(agg.ValueFor(AggregateOp::kAvg), 3.0);
}

}  // namespace
}  // namespace p2paqp::query

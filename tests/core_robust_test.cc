// Unit tests for the robust Horvitz-Thompson sink (core/robust_estimator.h)
// and the RobustnessPolicy edge cases the engines must honor: zero
// adversaries (robust ~= plain, no extra cost), 100% trimming (degenerates
// to the median, never an empty sample), audit probes lost to the fault
// plan (inconclusive, nobody suspected), and the reply-dedup regression for
// replayed observations.
#include "core/robust_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/adversary.h"
#include "test_common.h"

namespace p2paqp::core {
namespace {

using p2paqp::testing::MakeTestNetwork;
using p2paqp::testing::TestNetwork;
using p2paqp::testing::TestNetworkParams;

// --- Building blocks -------------------------------------------------------

TEST(MedianTest, HandChecked) {
  EXPECT_EQ(MedianOf({}), 0.0);
  EXPECT_EQ(MedianOf({5.0}), 5.0);
  EXPECT_EQ(MedianOf({3.0, 1.0}), 2.0);
  EXPECT_EQ(MedianOf({9.0, 1.0, 5.0}), 5.0);
  EXPECT_EQ(MedianOf({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(MadTest, HandChecked) {
  // Deviations from median 5 of {1,5,9} are {4,0,4}; MAD = 4.
  EXPECT_EQ(MadAround({1.0, 5.0, 9.0}, 5.0), 4.0);
  EXPECT_EQ(MadAround({}, 0.0), 0.0);
  EXPECT_EQ(MadAround({7.0, 7.0, 7.0}, 7.0), 0.0);
}

TEST(MadScreenTest, DropsPlantedOutlier) {
  // Nine well-behaved values and one absurd one.
  std::vector<double> values = {10, 11, 9, 10.5, 9.5, 10, 11, 9, 10, 1e6};
  std::vector<size_t> kept = MadScreenIndices(values, 6.0);
  ASSERT_EQ(kept.size(), 9u);
  for (size_t index : kept) EXPECT_NE(index, 9u);
}

TEST(MadScreenTest, AllPassWhenDisabledOrDegenerate) {
  std::vector<double> values = {10, 11, 9, 10.5, 1e6};
  // cutoff <= 0 disables the screen.
  EXPECT_EQ(MadScreenIndices(values, 0.0).size(), values.size());
  // MAD == 0 (constant data) must not divide by zero or drop everything.
  std::vector<double> constant = {5, 5, 5, 5, 1e6};
  EXPECT_EQ(MadScreenIndices(constant, 6.0).size(), constant.size());
  // Tiny samples pass untouched.
  EXPECT_EQ(MadScreenIndices({1.0, 1e9}, 6.0).size(), 2u);
}

// --- RobustHorvitzThompson -------------------------------------------------

std::vector<WeightedObservation> UnitWeightObs(
    const std::vector<double>& values) {
  std::vector<WeightedObservation> observations;
  for (double v : values) observations.push_back({v, 1.0});
  return observations;
}

TEST(RobustHorvitzThompsonTest, DefaultPolicyEqualsPlainHT) {
  std::vector<WeightedObservation> observations = {
      {10.0, 2.0}, {20.0, 5.0}, {3.0, 1.0}, {7.0, 4.0}};
  const double total_weight = 12.0;
  RobustEstimate robust =
      RobustHorvitzThompson(observations, total_weight, RobustnessPolicy{});
  EXPECT_EQ(robust.estimate, HorvitzThompson(observations, total_weight));
  EXPECT_EQ(robust.variance,
            HorvitzThompsonVariance(observations, total_weight));
  EXPECT_EQ(robust.used, observations.size());
  EXPECT_EQ(robust.screened, 0u);
  EXPECT_EQ(robust.trimmed_mass, 0.0);
}

TEST(RobustHorvitzThompsonTest, TrimmedHandChecked) {
  // Unit weights with total_weight 1 make the per-peer estimates the values
  // themselves. Trimming 20% of n=5 drops one per tail: mean(2,3,4) = 3.
  RobustnessPolicy policy;
  policy.estimator = RobustEstimatorKind::kTrimmed;
  policy.trim_fraction = 0.2;
  RobustEstimate result =
      RobustHorvitzThompson(UnitWeightObs({1, 2, 3, 4, 100}), 1.0, policy);
  EXPECT_DOUBLE_EQ(result.estimate, 3.0);
  EXPECT_EQ(result.used, 3u);
  EXPECT_DOUBLE_EQ(result.trimmed_mass, 2.0 / 5.0);
}

TEST(RobustHorvitzThompsonTest, WinsorizedHandChecked) {
  // Winsorizing clamps the tails to the cut quantiles instead of dropping:
  // {1,2,3,4,100} -> {2,2,3,4,4}, mean 3.
  RobustnessPolicy policy;
  policy.estimator = RobustEstimatorKind::kWinsorized;
  policy.trim_fraction = 0.2;
  RobustEstimate result =
      RobustHorvitzThompson(UnitWeightObs({1, 2, 3, 4, 100}), 1.0, policy);
  EXPECT_DOUBLE_EQ(result.estimate, 3.0);
  EXPECT_EQ(result.used, 5u);  // Winsorization keeps the count.
  EXPECT_DOUBLE_EQ(result.trimmed_mass, 2.0 / 5.0);
}

TEST(RobustHorvitzThompsonTest, FullTrimDegeneratesToMedian) {
  // trim_fraction = 1.0 would trim everything; the clamp must leave the
  // middle observation, i.e. the median.
  RobustnessPolicy policy;
  policy.estimator = RobustEstimatorKind::kTrimmed;
  policy.trim_fraction = 1.0;
  RobustEstimate result =
      RobustHorvitzThompson(UnitWeightObs({1, 2, 3, 4, 100}), 1.0, policy);
  EXPECT_DOUBLE_EQ(result.estimate, 3.0);
  EXPECT_EQ(result.used, 1u);
  // Single observation also survives a full trim.
  RobustEstimate single =
      RobustHorvitzThompson(UnitWeightObs({42}), 1.0, policy);
  EXPECT_DOUBLE_EQ(single.estimate, 42.0);
  EXPECT_EQ(single.used, 1u);
}

TEST(RobustHorvitzThompsonTest, MadScreenRemovesFabricatedContribution) {
  RobustnessPolicy policy;
  policy.mad_cutoff = 6.0;
  std::vector<double> values = {10, 11, 9, 10.5, 9.5, 10, 11, 9, 10, 1e6};
  RobustEstimate result =
      RobustHorvitzThompson(UnitWeightObs(values), 1.0, policy);
  EXPECT_EQ(result.screened, 1u);
  EXPECT_EQ(result.used, 9u);
  EXPECT_LT(result.estimate, 12.0);
  EXPECT_GT(result.trimmed_mass, 0.0);
}

TEST(RobustHorvitzThompsonTest, ZeroWeightContributesZeroLikePlain) {
  // estimator.h counts weight<=0 in m with contribution 0; the robust path
  // must treat them identically so the plain policy stays bit-equal.
  std::vector<WeightedObservation> observations = {
      {10.0, 0.0}, {20.0, 5.0}, {7.0, 4.0}};
  RobustnessPolicy trimless;
  trimless.estimator = RobustEstimatorKind::kTrimmed;  // enabled, no trim
  RobustEstimate robust = RobustHorvitzThompson(observations, 12.0, trimless);
  EXPECT_EQ(robust.estimate, HorvitzThompson(observations, 12.0));
}

// --- Engine edge cases -----------------------------------------------------

TestNetworkParams SmallParams() {
  TestNetworkParams params;
  params.num_peers = 400;
  params.num_edges = 2000;
  params.cut_edges = 100;
  params.tuples_per_peer = 25;
  params.seed = 77;
  return params;
}

query::AggregateQuery CountQuery() {
  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = {1, 30};
  query.required_error = 0.15;
  return query;
}

RobustnessPolicy FullDefense() {
  RobustnessPolicy policy;
  policy.estimator = RobustEstimatorKind::kWinsorized;
  policy.trim_fraction = 0.05;
  policy.mad_cutoff = 6.0;
  policy.degree_audit_probes = 3;
  return policy;
}

TEST(RobustEngineTest, ZeroAdversariesRobustMatchesPlain) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  core::EngineParams params;
  params.phase1_peers = 30;
  params.max_phase2_peers = 120;

  // The audit consumes caller-rng draws, so plain and robust runs see
  // different samples; a single-run comparison would only measure sampling
  // noise. Average over replicates and compare both means to the truth.
  const double truth = static_cast<double>(tn.network.ExactCount(1, 30));
  const double total = static_cast<double>(tn.network.TotalTuples());
  const size_t kReps = 8;
  double plain_sum = 0.0, robust_sum = 0.0;
  uint64_t plain_tuples = 0, robust_tuples = 0;
  for (size_t rep = 0; rep < kReps; ++rep) {
    net::SimulatedNetwork clone = tn.network.Clone(100 + rep);

    core::EngineParams plain_params = params;
    util::Rng plain_rng(9 + rep);
    TwoPhaseEngine plain_engine(&clone, tn.catalog, plain_params);
    auto plain = plain_engine.Execute(CountQuery(), 0, plain_rng);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    plain_sum += plain->estimate;
    plain_tuples += plain->sample_tuples;

    core::EngineParams robust_params = params;
    robust_params.robustness = FullDefense();
    util::Rng robust_rng(9 + rep);
    TwoPhaseEngine robust_engine(&clone, tn.catalog, robust_params);
    auto robust = robust_engine.Execute(CountQuery(), 0, robust_rng);
    ASSERT_TRUE(robust.ok()) << robust.status().ToString();
    robust_sum += robust->estimate;
    robust_tuples += robust->sample_tuples;

    // With every peer honest the audit must never flag anybody.
    EXPECT_EQ(robust->suspected_peers, 0u);
  }
  const double plain_err = std::fabs(plain_sum / kReps - truth) / total;
  const double robust_err = std::fabs(robust_sum / kReps - truth) / total;
  // Both estimators hit the truth; the robustness tax on honest data
  // (winsorization bias on the skewed HT contributions) stays small.
  EXPECT_LT(plain_err, 0.06);
  EXPECT_LT(robust_err, 0.08);
  // Cost discipline: audits add O(probes) messages but must not inflate the
  // sampled-tuples budget by more than plan-sizing noise.
  EXPECT_LT(static_cast<double>(robust_tuples),
            1.5 * static_cast<double>(plain_tuples) + 1000.0);
}

TEST(RobustEngineTest, AuditProbesLostToFaultPlanAreInconclusive) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  // Degree liars present, but every direct message already delivered once
  // can be dropped: drive loss high so most audit rounds never complete.
  net::AdversaryPlan plan =
      net::MakeBehaviorPlan(net::AdversaryBehavior::kDegreeInflate, 0.1);
  plan.immune = {0};
  tn.network.InstallAdversaryPlan(plan, 3);

  core::EngineParams params;
  params.phase1_peers = 30;
  params.max_phase2_peers = 120;
  params.reply_retransmits = 6;  // Keep the collection itself above quorum.
  params.robustness = FullDefense();
  TwoPhaseEngine engine(&tn.network, tn.catalog, params);

  // Baseline: with a reliable transport the audit flags inflators.
  util::Rng rng_reliable(21);
  auto reliable = engine.Execute(CountQuery(), 0, rng_reliable);
  ASSERT_TRUE(reliable.ok()) << reliable.status().ToString();
  EXPECT_GT(reliable->suspected_peers, 0u);

  // Now lose most direct messages. Lost probes/attestations are
  // inconclusive: the audit must suspect fewer peers (usually none), and
  // must never hard-fail the query on its own.
  net::FaultPlan faults;
  faults.drop_probability = 0.95;
  tn.network.InstallFaultPlan(faults, 5);
  util::Rng rng_lossy(21);
  auto lossy = engine.Execute(CountQuery(), 0, rng_lossy);
  if (lossy.ok()) {
    EXPECT_LE(lossy->suspected_peers, reliable->suspected_peers);
  } else {
    // 95% loss may legitimately break the observation quorum; that failure
    // belongs to collection, not the audit.
    EXPECT_NE(lossy.status().ToString().find("quorum"), std::string::npos)
        << lossy.status().ToString();
  }
}

TEST(RobustEngineTest, ReplayedRepliesAreDedupedNotDoubleCounted) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  core::EngineParams params;
  params.phase1_peers = 30;
  params.max_phase2_peers = 120;

  // Honest baseline.
  util::Rng honest_rng(13);
  TwoPhaseEngine honest_engine(&tn.network, tn.catalog, params);
  auto honest = honest_engine.Execute(CountQuery(), 0, honest_rng);
  ASSERT_TRUE(honest.ok()) << honest.status().ToString();

  // Replay-only adversaries tamper with nothing; they just push duplicate
  // copies. In the synchronous engine the network RNG feeds only latency,
  // so after dedup the estimate must be *bitwise identical* to the honest
  // run — the regression for the reply double-counting bug.
  net::AdversaryPlan plan =
      net::MakeBehaviorPlan(net::AdversaryBehavior::kReplay, 0.2);
  tn.network.InstallAdversaryPlan(plan, 17);
  util::Rng replay_rng(13);
  TwoPhaseEngine replay_engine(&tn.network, tn.catalog, params);
  auto replayed = replay_engine.Execute(CountQuery(), 0, replay_rng);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();

  EXPECT_GT(replayed->duplicate_replies, 0u);
  EXPECT_EQ(replayed->estimate, honest->estimate);
  EXPECT_EQ(replayed->variance, honest->variance);
  EXPECT_EQ(replayed->phase2_peers, honest->phase2_peers);
  EXPECT_FALSE(replayed->degraded);
}

TEST(RobustEngineTest, AsyncReplayedRepliesAreDedupedNotDoubleCounted) {
  TestNetwork tn = MakeTestNetwork(SmallParams());
  net::AdversaryPlan plan =
      net::MakeBehaviorPlan(net::AdversaryBehavior::kReplay, 0.2);
  tn.network.InstallAdversaryPlan(plan, 17);
  core::AsyncParams params;
  params.engine.phase1_peers = 30;
  params.engine.max_phase2_peers = 120;
  params.walkers = 4;
  params.walk.jump = tn.catalog.suggested_jump;
  params.walk.burn_in = tn.catalog.suggested_burn_in;
  core::AsyncQuerySession session(&tn.network, tn.catalog, params);
  util::Rng rng(13);
  auto report = session.Execute(CountQuery(), /*sink=*/0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Event ordering makes the async estimate float-sensitive, so no bitwise
  // comparison against an honest run here — the contract is that replayed
  // copies are counted as duplicates, never as quorum observations.
  EXPECT_GT(report->answer.duplicate_replies, 0u);
  EXPECT_FALSE(report->answer.degraded);
  EXPECT_EQ(report->answer.observations_lost, 0u);
}

}  // namespace
}  // namespace p2paqp::core

// Replays the checked-in corpus of shrunk chaos-plan counterexamples
// (tests/corpus/*.plan) as fast tier-1 regressions: every plan that once
// exposed a bug — or that exercises a hand-picked stressor combination —
// must now pass every oracle. Each .plan file holds one serialized plan
// line per row; '#' lines are comments.
//
// The corpus directory is baked in at compile time (P2PAQP_CORPUS_DIR) so
// the test runs from any working directory.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "verify/protocol/chaos_plan.h"
#include "verify/protocol/runner.h"

#ifndef P2PAQP_CORPUS_DIR
#error "P2PAQP_CORPUS_DIR must be defined by the build"
#endif

namespace p2paqp {
namespace {

struct CorpusEntry {
  std::string file;
  std::string line;
};

std::vector<CorpusEntry> LoadCorpus() {
  std::vector<CorpusEntry> entries;
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(P2PAQP_CORPUS_DIR)) {
    if (entry.path().extension() == ".plan") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      entries.push_back({path.filename().string(), line});
    }
  }
  return entries;
}

TEST(ProtocolCorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(LoadCorpus().size(), 3u)
      << "corpus at " << P2PAQP_CORPUS_DIR << " looks empty";
}

TEST(ProtocolCorpusTest, EveryCorpusPlanPassesAllOracles) {
  for (const CorpusEntry& entry : LoadCorpus()) {
    auto plan = verify::ParseChaosPlan(entry.line);
    ASSERT_TRUE(plan.ok()) << entry.file << ": unparseable line '"
                           << entry.line
                           << "': " << plan.status().message();
    verify::ChaosRunReport report = verify::RunChaosPlan(*plan);
    std::string dump;
    for (const std::string& v : report.violations) dump += "\n  " + v;
    EXPECT_TRUE(report.violations.empty())
        << entry.file << ": " << entry.line << dump;
  }
}

TEST(ProtocolCorpusTest, CorpusLinesRoundTrip) {
  for (const CorpusEntry& entry : LoadCorpus()) {
    auto plan = verify::ParseChaosPlan(entry.line);
    ASSERT_TRUE(plan.ok()) << entry.file << ": " << entry.line;
    EXPECT_EQ(verify::SerializeChaosPlan(*plan), entry.line) << entry.file;
  }
}

}  // namespace
}  // namespace p2paqp

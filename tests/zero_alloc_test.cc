// Tier-1 guard for the zero-allocation steady state (docs/PERFORMANCE.md,
// "Zero-allocation message path"): once an AsyncQuerySession is warm, the
// event-loop drains of a query — every walker hop, local scan, reply send,
// arrival and dedup — must perform no heap allocation on the driving
// thread. The contract is what the scale tier's steady_state_allocs_per_event
// gate pins to 0 (tools/bench_gate.py); this test catches a regression at a
// small world inside the ordinary ctest pass.
//
// The world uses zero hop-latency jitter, so DrawHopLatency is constant and
// draws nothing from the network RNG: two identically-seeded queries replay
// bit-identically, which makes the "second query allocates nothing" check
// deterministic rather than dependent on which peers a jittered replay
// happens to visit. Lockstep hops also mean every walker steps at the same
// tick — the batched RunSteps path, not just the single-step fallback.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/async_engine.h"
#include "core/catalog.h"
#include "data/generator.h"
#include "data/partitioner.h"
#include "net/network.h"
#include "topology/factory.h"
#include "util/alloc_guard.h"
#include "util/rng.h"

namespace p2paqp {
namespace {

TEST(AllocGuardTest, CountsThisThreadsAllocations) {
  util::AllocGuard guard;
  EXPECT_EQ(guard.allocations(), 0u);
  {
    auto sink = std::make_unique<std::vector<int>>(1024);
    ASSERT_NE(sink, nullptr);
  }
  EXPECT_GT(guard.allocations(), 0u);
  guard.Reset();
  EXPECT_EQ(guard.allocations(), 0u);
}

net::SimulatedNetwork MakeJitterFreeNetwork() {
  util::Rng rng(4242);
  topology::TopologyConfig config;
  config.kind = topology::TopologyKind::kClustered;
  config.num_nodes = 600;
  config.num_edges = 3000;
  config.num_subgraphs = 2;
  config.cut_edges = 120;
  auto topo = topology::MakeTopology(config, rng);
  P2PAQP_CHECK(topo.ok()) << topo.status().ToString();

  data::DatasetParams dataset;
  dataset.num_tuples = 600 * 20;
  dataset.skew = 0.2;
  auto table = data::GenerateDataset(dataset, rng);
  P2PAQP_CHECK(table.ok()) << table.status().ToString();
  auto databases = data::PartitionAcrossPeers(*table, topo->graph,
                                              data::PartitionParams{}, rng);
  P2PAQP_CHECK(databases.ok()) << databases.status().ToString();

  net::NetworkParams params;
  params.hop_latency_jitter_ms = 0.0;  // Constant hops: replayable queries.
  auto network = net::SimulatedNetwork::Make(
      std::move(topo->graph), std::move(*databases), params, 4243);
  P2PAQP_CHECK(network.ok()) << network.status().ToString();
  return std::move(*network);
}

TEST(ZeroAllocTest, WarmQueryDrainsWithoutAllocating) {
  net::SimulatedNetwork network = MakeJitterFreeNetwork();
  core::SystemCatalog catalog =
      core::MakeCatalog(network.graph(), /*jump=*/4, /*burn_in=*/16);
  core::AsyncParams params;
  params.engine.phase1_peers = 40;
  params.engine.tuples_per_peer = 10;
  params.walkers = 4;
  params.walk.jump = 4;
  params.walk.burn_in = 16;
  core::AsyncQuerySession session(&network, catalog, params);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  query.required_error = 0.3;

  // Query 1 warms the session: the reply arena, the event slabs and the
  // local-scan scratch grow to their high-water marks here.
  util::Rng warm_rng(99);
  auto warm = session.Execute(query, 0, warm_rng);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_GT(warm->events, 0u);

  // Query 2 replays the identical trace (same query-RNG seed, jitter-free
  // latency) on the warm session: its drains must not allocate at all.
  util::Rng rng(99);
  auto report = session.Execute(query, 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->events, warm->events);
  EXPECT_EQ(report->answer.estimate, warm->answer.estimate);
  EXPECT_EQ(report->drain_allocs, 0u)
      << "the warm event-loop drain allocated; the zero-allocation "
         "steady-state contract is broken";

  // The reply arena recycled every payload slot it handed out.
  const net::ArenaStats& arena = session.reply_arena_stats();
  EXPECT_EQ(arena.live, 0u);
  EXPECT_EQ(arena.acquired, arena.released);
  EXPECT_GT(arena.acquired, 0u);
}

TEST(ZeroAllocTest, ColdReservesKeepDrainCleanToo) {
  // Even the FIRST query's drains stay allocation-free except for the
  // local-scan scratch warm-up: RunPhase reserves the event slabs, the
  // observation vector and the reply arena before draining. The scratch
  // plateaus with the largest visited table, so a generous bound (rather
  // than exactly zero) guards the reserve-before-drain discipline.
  net::SimulatedNetwork network = MakeJitterFreeNetwork();
  core::SystemCatalog catalog =
      core::MakeCatalog(network.graph(), /*jump=*/4, /*burn_in=*/16);
  core::AsyncParams params;
  params.engine.phase1_peers = 40;
  params.engine.tuples_per_peer = 10;
  params.walkers = 4;
  params.walk.jump = 4;
  params.walk.burn_in = 16;
  core::AsyncQuerySession session(&network, catalog, params);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 40};
  query.required_error = 0.3;
  util::Rng rng(7);
  auto report = session.Execute(query, 0, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LT(report->drain_allocs, 64u);
}

}  // namespace
}  // namespace p2paqp

// Validation of the cross-validation machinery against Theorem 3
// (E[CVError^2] = 2 E[err^2]) and of the phase-II sizing rule.
#include "core/cross_validation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/statistics.h"

namespace p2paqp::core {
namespace {

TEST(CrossValidateTest, ZeroVarianceDataHasZeroCvError) {
  // Identical peers: any halving gives identical estimates.
  std::vector<WeightedObservation> obs(20, WeightedObservation{5.0, 1.0});
  util::Rng rng(1);
  CrossValidationResult cv = CrossValidate(obs, 20.0, 5, rng);
  EXPECT_DOUBLE_EQ(cv.cv_error, 0.0);
  EXPECT_DOUBLE_EQ(cv.cv_error_relative, 0.0);
  EXPECT_DOUBLE_EQ(cv.estimate, 100.0);
}

TEST(CrossValidateTest, HeterogeneousDataHasPositiveCvError) {
  std::vector<WeightedObservation> obs;
  for (int i = 0; i < 20; ++i) {
    obs.push_back({i < 10 ? 0.0 : 10.0, 1.0});
  }
  util::Rng rng(2);
  CrossValidationResult cv = CrossValidate(obs, 20.0, 10, rng);
  EXPECT_GT(cv.cv_error, 0.0);
  EXPECT_GT(cv.cv_error_relative, 0.0);
}

// Theorem 3: E[CV^2] = 2 E[(y'' - y)^2] when the halves are independent
// stationary samples. We verify the ratio statistically.
TEST(CrossValidateTest, TheoremThreeRatioHolds) {
  util::Rng rng(3);
  std::vector<double> values(60);
  std::vector<double> weights(60);
  double truth = 0.0;
  double total_weight = 0.0;
  for (int p = 0; p < 60; ++p) {
    values[p] = rng.UniformDouble(0.0, 20.0);
    weights[p] = static_cast<double>(rng.UniformInt(1, 8));
    truth += values[p];
    total_weight += weights[p];
  }
  const size_t kHalf = 12;
  util::RunningStat cv_sq;
  util::RunningStat err_sq;
  for (int trial = 0; trial < 30000; ++trial) {
    auto draw = [&](size_t m) {
      std::vector<WeightedObservation> obs;
      for (size_t i = 0; i < m; ++i) {
        size_t p = rng.WeightedIndex(weights);
        obs.push_back({values[p], weights[p]});
      }
      return obs;
    };
    double y1 = HorvitzThompson(draw(kHalf), total_weight);
    double y2 = HorvitzThompson(draw(kHalf), total_weight);
    cv_sq.Add((y1 - y2) * (y1 - y2));
    err_sq.Add((y1 - truth) * (y1 - truth));
  }
  EXPECT_NEAR(cv_sq.mean() / err_sq.mean(), 2.0, 0.15);
}

TEST(PhaseTwoSampleSizeTest, FormulaMatchesPaper) {
  // m' = (m/2) * (cv / delta)^2: m=100, cv=0.2, delta=0.1 -> 200.
  EXPECT_EQ(PhaseTwoSampleSize(100, 0.2, 0.1, 1, 100000), 200u);
  // cv == delta -> m/2.
  EXPECT_EQ(PhaseTwoSampleSize(100, 0.1, 0.1, 1, 100000), 50u);
}

TEST(PhaseTwoSampleSizeTest, ClampsToBounds) {
  EXPECT_EQ(PhaseTwoSampleSize(100, 0.0, 0.1, 7, 1000), 7u);
  EXPECT_EQ(PhaseTwoSampleSize(100, 10.0, 0.01, 1, 500), 500u);
}

TEST(PhaseTwoSampleSizeTest, MonotoneInCvError) {
  size_t prev = 0;
  for (double cv : {0.05, 0.1, 0.2, 0.4}) {
    size_t m = PhaseTwoSampleSize(80, cv, 0.1, 1, 1000000);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(PhaseTwoSampleSizeTest, QuadraticInInverseDelta) {
  size_t m_01 = PhaseTwoSampleSize(80, 0.3, 0.1, 1, 100000000);
  size_t m_005 = PhaseTwoSampleSize(80, 0.3, 0.05, 1, 100000000);
  EXPECT_NEAR(static_cast<double>(m_005) / static_cast<double>(m_01), 4.0,
              0.1);
}

TEST(PhaseTwoSampleSizeTest, HugeRatioDoesNotOverflow) {
  EXPECT_EQ(PhaseTwoSampleSize(1000000, 1e9, 1e-9, 1, 22556), 22556u);
}

TEST(CrossValidateTest, OddSampleSizeHandled) {
  std::vector<WeightedObservation> obs;
  for (int i = 0; i < 21; ++i) {
    obs.push_back({static_cast<double>(i), 1.0});
  }
  util::Rng rng(4);
  CrossValidationResult cv = CrossValidate(obs, 21.0, 7, rng);
  EXPECT_GE(cv.cv_error, 0.0);
  EXPECT_GT(cv.estimate, 0.0);
}

TEST(CrossValidateTest, MoreRepeatsStabilizeTheEstimate) {
  util::Rng make_rng(5);
  std::vector<WeightedObservation> obs;
  for (int i = 0; i < 30; ++i) {
    obs.push_back({make_rng.UniformDouble(0.0, 10.0), 1.0});
  }
  // Variance of cv_error across re-runs should drop with repeats.
  auto spread = [&](size_t repeats) {
    util::RunningStat stat;
    for (uint64_t seed = 0; seed < 60; ++seed) {
      util::Rng rng(seed);
      stat.Add(CrossValidate(obs, 30.0, repeats, rng).cv_error);
    }
    return stat.variance();
  };
  EXPECT_LT(spread(20), spread(1));
}

}  // namespace
}  // namespace p2paqp::core

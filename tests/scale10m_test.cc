// Ten-million-peer smoke (ctest label: scale): the 10M super-peer world
// must construct THROUGH THE OUT-OF-CORE BUILDER — the spill knobs are
// forced inside the test, with a run size small enough that the edge log
// genuinely goes to disk and comes back through the k-way merge — stay
// inside the same per-peer memory budget as the 1M tier, and answer a
// COUNT end-to-end through the event engine.
//
// This is the smoke for the ten-million-peer contract
// (docs/PERFORMANCE.md, "Out-of-core graph construction"): the nightly
// scale job runs it, and the bench twin (bench/scale_world.cc at
// P2PAQP_SCALE=10) gates the same configuration's world_build_peak_rss_mb.
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/async_engine.h"
#include "core/catalog.h"
#include "data/generator.h"
#include "data/partitioner.h"
#include "net/network.h"
#include "query/query.h"
#include "topology/super_peer.h"
#include "util/rng.h"

namespace p2paqp {
namespace {

constexpr size_t kPeers = 10000000;
constexpr size_t kTuplesPerPeer = 2;
constexpr size_t kBytesPerPeerCeiling = 192;  // Same contract as the 1M tier.
constexpr graph::NodeId kSink = 0;

// RAII env override; restores the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(Scale10MTest, SpillForcedWorldAnswersCountUnderMemoryBudget) {
  // 1M accepted edges per run (~16 MB of arcs) against the world's ~21M
  // edges: the builder must spill dozens of runs and collapse them through
  // multi-pass merges (fan-in 8) — the small-knob forcing the scale CI job
  // relies on. Worlds this size read the same knobs in production.
  ScopedEnv spill("P2PAQP_BUILD_SPILL_EDGES", "1048576");
  ScopedEnv fan_in("P2PAQP_BUILD_MERGE_FAN_IN", "8");

  topology::SuperPeerParams topo;
  topo.num_nodes = kPeers;
  topo.super_fraction = 0.02;
  topo.core_edges_per_super = 4;
  topo.leaf_connections = 2;
  util::Rng topo_rng(20060403);
  auto topology = topology::MakeSuperPeer(topo, topo_rng);
  ASSERT_TRUE(topology.ok());

  data::DatasetParams dataset;
  dataset.num_tuples = kPeers * kTuplesPerPeer;
  dataset.skew = 0.2;
  util::Rng data_rng(271828);
  auto table = data::GenerateDataset(dataset, data_rng);
  ASSERT_TRUE(table.ok());
  data::PartitionParams partition;
  partition.cluster_level = 0.25;
  partition.bfs_root = kSink;
  auto databases = data::PartitionAcrossPeers(*table, topology->graph,
                                              partition, data_rng);
  ASSERT_TRUE(databases.ok());

  net::NetworkParams params;
  params.parallel_peer_init = true;  // Thread-invariant first-touch init.
  auto network = net::SimulatedNetwork::Make(
      std::move(topology->graph), std::move(*databases), params, 314159);
  ASSERT_TRUE(network.ok());
  ASSERT_EQ(network->num_peers(), kPeers);

  // Same per-peer accounting (and the same ceiling) as the 1M tier: going
  // out of core must not cost resident bytes in the final world.
  size_t bytes_per_peer = network->MemoryBytes() / kPeers;
  EXPECT_LE(bytes_per_peer, kBytesPerPeerCeiling)
      << "world resident size regressed: " << bytes_per_peer << " B/peer";

  core::SystemCatalog catalog =
      core::MakeCatalog(network->graph(), /*jump=*/4, /*burn_in=*/24);
  core::AsyncParams async;
  async.engine.phase1_peers = 48;
  async.engine.tuples_per_peer = kTuplesPerPeer;
  async.engine.cv_repeats = 4;
  async.walkers = 4;
  async.walk.jump = 4;
  async.walk.burn_in = 24;
  core::AsyncQuerySession session(&*network, catalog, async);

  query::AggregateQuery query;
  query.op = query::AggregateOp::kCount;
  query.predicate = query::RangePredicate{1, 100};
  query.required_error = 0.5;
  util::Rng rng(999331);
  auto report = session.Execute(query, kSink, rng);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->events, 0u);

  double truth = static_cast<double>(network->TotalTuples());
  EXPECT_EQ(truth, static_cast<double>(kPeers * kTuplesPerPeer));
  EXPECT_GT(report->answer.estimate, truth / 10.0);
  EXPECT_LT(report->answer.estimate, truth * 10.0);
}

}  // namespace
}  // namespace p2paqp

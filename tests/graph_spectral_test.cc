// Spectral estimation and mixing-time tests. Complete graphs and clustered
// graphs have known spectral behaviour, pinning the estimator down.
#include "graph/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/metrics.h"
#include "topology/clustered.h"
#include "topology/power_law.h"

namespace p2paqp::graph {
namespace {

Graph MakeComplete(size_t n) {
  GraphBuilder builder(n);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) builder.AddEdge(a, b);
  }
  return builder.Build();
}

Graph MakeCycle(size_t n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    builder.AddEdge(v, static_cast<NodeId>((v + 1) % n));
  }
  return builder.Build();
}

TEST(SpectralTest, CompleteGraphSecondEigenvalue) {
  // K_n walk matrix eigenvalues: 1 and -1/(n-1).
  Graph g = MakeComplete(10);
  util::Rng rng(3);
  double lambda2 = EstimateSecondEigenvalue(g, 200, rng);
  EXPECT_NEAR(lambda2, 1.0 / 9.0, 0.01);
}

TEST(SpectralTest, OddCycleSecondEigenvalueMagnitude) {
  // Cycle C_n has walk-matrix spectrum {cos(2 pi k / n)}. For odd n the
  // largest magnitude below 1 is |cos(pi (n-1) / n)| = cos(pi / n)
  // (even cycles are bipartite and would give exactly 1).
  Graph g = MakeCycle(21);
  util::Rng rng(5);
  double lambda2 = EstimateSecondEigenvalue(g, 600, rng);
  EXPECT_NEAR(lambda2, std::cos(M_PI / 21.0), 0.01);
}

TEST(SpectralTest, SmallCutRaisesLambda2) {
  util::Rng rng(7);
  topology::ClusteredParams tight;
  tight.num_nodes = 300;
  tight.num_edges = 1500;
  tight.num_subgraphs = 2;
  tight.cut_edges = 1;  // Nearly disconnected.
  auto tight_graph = topology::MakeClustered(tight, rng);
  ASSERT_TRUE(tight_graph.ok());

  topology::ClusteredParams loose = tight;
  loose.cut_edges = 300;
  auto loose_graph = topology::MakeClustered(loose, rng);
  ASSERT_TRUE(loose_graph.ok());

  util::Rng rng2(11);
  double lambda_tight =
      EstimateSecondEigenvalue(tight_graph->graph, 150, rng2);
  double lambda_loose =
      EstimateSecondEigenvalue(loose_graph->graph, 150, rng2);
  EXPECT_GT(lambda_tight, lambda_loose);
  EXPECT_GT(lambda_tight, 0.9);  // Small cut => nearly reducible chain.
}

TEST(WalkDistributionTest, ConservesProbabilityMass) {
  Graph g = MakeCycle(11);
  auto dist = WalkDistribution(g, 0, 25, /*lazy=*/true);
  double total = 0.0;
  for (double p : dist) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WalkDistributionTest, LazyWalkConvergesToStationary) {
  util::Rng rng(13);
  auto graph = topology::MakeBarabasiAlbert(200, 3, rng);
  ASSERT_TRUE(graph.ok());
  auto dist = WalkDistribution(*graph, 0, 200, /*lazy=*/true);
  EXPECT_LT(TotalVariationFromStationary(*graph, dist), 0.01);
}

TEST(WalkDistributionTest, TvDistanceDecreasesWithSteps) {
  util::Rng rng(17);
  auto graph = topology::MakeBarabasiAlbert(100, 3, rng);
  ASSERT_TRUE(graph.ok());
  double tv5 = TotalVariationFromStationary(
      *graph, WalkDistribution(*graph, 0, 5, true));
  double tv50 = TotalVariationFromStationary(
      *graph, WalkDistribution(*graph, 0, 50, true));
  EXPECT_GT(tv5, tv50);
}

TEST(MixingTimeTest, ExpanderMixesInLogSteps) {
  // The paper cites [14]: expanders mix in O(log M) steps.
  util::Rng rng(19);
  auto graph = topology::MakeBarabasiAlbert(500, 4, rng);
  ASSERT_TRUE(graph.ok());
  size_t t = MeasureMixingTime(*graph, 0, 0.05, 2000);
  EXPECT_LT(t, 120u);  // Generous constant times log2(500) ~ 9.
}

TEST(MixingTimeTest, MeasuredWithinAnalyticBound) {
  util::Rng rng(23);
  auto graph = topology::MakeBarabasiAlbert(300, 4, rng);
  ASSERT_TRUE(graph.ok());
  util::Rng rng2(29);
  double lambda2 = EstimateSecondEigenvalue(*graph, 200, rng2);
  // The lazy chain's eigenvalue is (1 + lambda2) / 2.
  double lazy_lambda2 = (1.0 + lambda2) / 2.0;
  size_t bound = MixingTimeBound(graph->num_nodes(), lazy_lambda2, 0.05);
  size_t measured = MeasureMixingTime(*graph, 0, 0.05, 5000);
  EXPECT_LE(measured, bound);
}

TEST(MixingTimeBoundTest, MonotoneInLambda) {
  EXPECT_LT(MixingTimeBound(1000, 0.5, 0.01),
            MixingTimeBound(1000, 0.9, 0.01));
  EXPECT_LT(MixingTimeBound(1000, 0.9, 0.01),
            MixingTimeBound(1000, 0.999, 0.01));
}

TEST(MixingTimeBoundTest, TinyGraphIsZero) {
  EXPECT_EQ(MixingTimeBound(1, 0.5, 0.01), 0u);
}

}  // namespace
}  // namespace p2paqp::graph

// Cross-module integration tests: full pipeline from topology generation
// through data placement, preprocessing, querying and churn.
#include <gtest/gtest.h>

#include "core/aqp.h"
#include "test_common.h"
#include "util/statistics.h"

namespace p2paqp {
namespace {

TEST(IntegrationTest, FullPipelineOnGnutellaStyleTopology) {
  util::Rng rng(1);
  topology::GnutellaParams topo_params;
  topo_params.num_nodes = 2000;
  topo_params.num_edges = 4640;  // Crawl-like average degree.
  auto graph = topology::MakeGnutellaSnapshot(topo_params, rng);
  ASSERT_TRUE(graph.ok());

  data::DatasetParams data_params;
  data_params.num_tuples = 100000;
  data_params.skew = 0.2;
  auto table = data::GenerateDataset(data_params, rng);
  ASSERT_TRUE(table.ok());

  data::PartitionParams part_params;
  part_params.cluster_level = 0.25;
  auto dbs = data::PartitionAcrossPeers(*table, *graph, part_params, rng);
  ASSERT_TRUE(dbs.ok());

  auto network = net::SimulatedNetwork::Make(std::move(*graph),
                                             std::move(*dbs),
                                             net::NetworkParams{}, 2);
  ASSERT_TRUE(network.ok());

  // Full preprocessing pass (spectral estimate included).
  util::Rng preprocess_rng(3);
  core::SystemCatalog catalog =
      core::Preprocess(network->graph(), 0.05, preprocess_rng);
  EXPECT_EQ(catalog.num_peers, 2000u);
  EXPECT_GT(catalog.lambda2, 0.0);
  EXPECT_GE(catalog.suggested_jump, 1u);
  EXPECT_FALSE(catalog.ToString().empty());

  core::EngineParams engine_params;
  engine_params.phase1_peers = 60;
  core::TwoPhaseEngine engine(&*network, catalog, engine_params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;
  double truth = static_cast<double>(network->ExactCount(1, 30));
  util::Rng query_rng(4);
  auto answer = engine.Execute(q, /*sink=*/42, query_rng);
  ASSERT_TRUE(answer.ok());
  EXPECT_LT(util::RelativeError(answer->estimate, truth), 0.15);
}

TEST(IntegrationTest, QueriesSurviveChurn) {
  testing::TestNetworkParams params;
  params.num_peers = 800;
  params.num_edges = 4000;
  testing::TestNetwork tn = testing::MakeTestNetwork(params);

  net::ChurnParams churn_params;
  churn_params.leave_probability = 0.1;
  churn_params.rejoin_probability = 0.3;
  churn_params.pinned = {0};
  net::ChurnModel churn(churn_params, 5);

  core::EngineParams engine_params;
  engine_params.phase1_peers = 60;
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.1;

  util::Rng rng(6);
  util::RunningStat errors;
  for (int epoch = 0; epoch < 5; ++epoch) {
    churn.Step(tn.network);
    ASSERT_GT(tn.network.num_alive(), tn.network.num_peers() / 2);
    // Periodic preprocessing refresh (Sec. 3.3): the slow-changing catalog
    // is re-estimated so the stationary normalizer 2|E| tracks live edges.
    core::SystemCatalog live_catalog = core::MakeLiveCatalog(
        tn.network, tn.catalog.suggested_jump, tn.catalog.suggested_burn_in);
    core::TwoPhaseEngine engine(&tn.network, live_catalog, engine_params);
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok()) << "epoch " << epoch << ": "
                             << answer.status().ToString();
    // Truth shifts with the live set; individual epochs can be noisy under
    // 25% churn, but the average must track it.
    double truth = static_cast<double>(tn.network.ExactCount(1, 30));
    errors.Add(util::RelativeError(answer->estimate, truth));
  }
  EXPECT_LT(errors.mean(), 0.3);
}

TEST(IntegrationTest, EveryAggregateOpRunsOnOneNetwork) {
  testing::TestNetwork tn =
      testing::MakeTestNetwork(testing::TestNetworkParams{});
  core::EngineParams engine_params;
  engine_params.phase1_peers = 40;
  core::TwoPhaseEngine engine(&tn.network, tn.catalog, engine_params);
  util::Rng rng(7);
  for (query::AggregateOp op :
       {query::AggregateOp::kCount, query::AggregateOp::kSum,
        query::AggregateOp::kAvg, query::AggregateOp::kMedian,
        query::AggregateOp::kQuantile, query::AggregateOp::kDistinct}) {
    query::AggregateQuery q;
    q.op = op;
    q.predicate = {1, 100};
    q.required_error = 0.15;
    q.quantile_phi = 0.5;
    auto answer = engine.Execute(q, 0, rng);
    ASSERT_TRUE(answer.ok()) << query::AggregateOpToString(op) << ": "
                             << answer.status().ToString();
    EXPECT_GT(answer->estimate, 0.0) << query::AggregateOpToString(op);
  }
}

TEST(IntegrationTest, DeterministicGivenSeeds) {
  auto run = []() {
    testing::TestNetwork tn =
        testing::MakeTestNetwork(testing::TestNetworkParams{});
    core::EngineParams engine_params;
    engine_params.phase1_peers = 40;
    core::TwoPhaseEngine engine(&tn.network, tn.catalog, engine_params);
    query::AggregateQuery q;
    q.op = query::AggregateOp::kCount;
    q.predicate = {1, 30};
    q.required_error = 0.1;
    util::Rng rng(123);
    auto answer = engine.Execute(q, 0, rng);
    EXPECT_TRUE(answer.ok());
    return answer->estimate;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(IntegrationTest, GnutellaProtocolCoexistsWithWalkQueries) {
  testing::TestNetwork tn =
      testing::MakeTestNetwork(testing::TestNetworkParams{});
  // Gnutella search floods share the same cost ledger as walk queries.
  net::GnutellaProtocol protocol(&tn.network);
  net::FloodResult flood = protocol.Ping(0, 3);
  EXPECT_GT(flood.reached.size(), 0u);
  core::EngineParams engine_params;
  engine_params.phase1_peers = 30;
  core::TwoPhaseEngine engine(&tn.network, tn.catalog, engine_params);
  query::AggregateQuery q;
  q.op = query::AggregateOp::kCount;
  q.predicate = {1, 30};
  q.required_error = 0.2;
  util::Rng rng(8);
  auto answer = engine.Execute(q, 0, rng);
  ASSERT_TRUE(answer.ok());
  // The per-query cost delta excludes the earlier flood's messages.
  EXPECT_LT(answer->cost.messages, tn.network.cost_snapshot().messages);
}

}  // namespace
}  // namespace p2paqp

#include "graph/algorithms.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace p2paqp::graph {
namespace {

// Path 0-1-2-3-4.
Graph MakePath(size_t n = 5) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return builder.Build();
}

// Two triangles {0,1,2} and {3,4,5}.
Graph MakeTwoTriangles() {
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  return builder.Build();
}

TEST(BfsTest, OrderStartsAtRootAndCoversComponent) {
  Graph g = MakePath();
  auto order = BfsOrder(g, 2);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 2u);
  std::set<NodeId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = MakePath();
  auto dist = BfsDistances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsTest, UnreachableMarked) {
  Graph g = MakeTwoTriangles();
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(BfsTest, LevelsAreNonDecreasingInOrder) {
  Graph g = MakeTwoTriangles();
  auto order = BfsOrder(g, 0);
  auto dist = BfsDistances(g, 0);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(dist[order[i]], dist[order[i - 1]]);
  }
}

TEST(DfsTest, PreorderCoversComponent) {
  Graph g = MakePath();
  auto order = DfsOrder(g, 0);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 0u);
  // On a path from an endpoint, DFS == the path itself.
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(order[v], v);
}

TEST(ComponentsTest, CountsAndLabels) {
  Graph g = MakeTwoTriangles();
  auto comp = ConnectedComponents(g);
  EXPECT_EQ(CountComponents(g), 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
}

TEST(ComponentsTest, ConnectedGraph) {
  EXPECT_TRUE(IsConnected(MakePath()));
  EXPECT_FALSE(IsConnected(MakeTwoTriangles()));
  EXPECT_TRUE(IsConnected(Graph{}));
}

TEST(ComponentsTest, IsolatedNodesAreOwnComponents) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  EXPECT_EQ(CountComponents(g), 3u);
}

TEST(DiameterTest, PathDiameter) {
  Graph g = MakePath(10);
  util::Rng rng(5);
  // With enough probes, some BFS hits an endpoint-ish node; the estimate is
  // a lower bound on the true diameter 9 and can reach it.
  uint32_t est = EstimateDiameter(g, 20, rng);
  EXPECT_GE(est, 5u);
  EXPECT_LE(est, 9u);
}

TEST(CutSizeTest, CountsCrossEdgesOnly) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);  // Inside block 0.
  builder.AddEdge(2, 3);  // Inside block 1.
  builder.AddEdge(1, 2);  // Cross.
  builder.AddEdge(0, 3);  // Cross.
  Graph g = builder.Build();
  std::vector<uint32_t> partition = {0, 0, 1, 1};
  EXPECT_EQ(CutSize(g, partition), 2u);
}

TEST(CutSizeTest, SingleBlockHasZeroCut) {
  Graph g = MakePath();
  std::vector<uint32_t> partition(5, 0);
  EXPECT_EQ(CutSize(g, partition), 0u);
}

}  // namespace
}  // namespace p2paqp::graph

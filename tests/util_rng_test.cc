#include "util/rng.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/alias_table.h"

namespace p2paqp::util {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntHitsBothEndpoints) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000 && !(saw_lo && saw_hi); ++i) {
    int64_t v = rng.UniformInt(0, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(2.0, 4.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 4.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double fraction = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) {
    double v = rng.Gaussian(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / kTrials;
  double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(RngTest, WeightedIndexFavorsHeavyWeight) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10000.0, 0.9, 0.03);
}

TEST(AliasTableTest, MatchesWeightsExactlyForZeroWeightEntries) {
  AliasTable table({1.0, 0.0, 9.0});
  Rng rng(17);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[table.Sample(rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 10000.0, 0.9, 0.03);
}

TEST(AliasTableTest, SingleEntryAlwaysDrawsIt) {
  AliasTable table({7.5});
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, AgreesWithLinearWeightedIndex) {
  // Same weight vector through the O(n) linear scan and the O(1) alias
  // table: the empirical distributions must agree within sampling noise.
  std::vector<double> weights;
  Rng make(31);
  for (int i = 0; i < 50; ++i) weights.push_back(make.UniformDouble(0.1, 5.0));
  double total = 0.0;
  for (double w : weights) total += w;

  AliasTable table(weights);
  Rng linear_rng(37);
  Rng alias_rng(41);
  const int kTrials = 60000;
  std::vector<int> linear_counts(weights.size(), 0);
  std::vector<int> alias_counts(weights.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    ++linear_counts[linear_rng.WeightedIndex(weights)];
    ++alias_counts[alias_rng.WeightedIndex(table)];
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    double expected = weights[i] / total;
    double linear = static_cast<double>(linear_counts[i]) / kTrials;
    double alias = static_cast<double>(alias_counts[i]) / kTrials;
    EXPECT_NEAR(linear, expected, 0.01) << "index " << i;
    EXPECT_NEAR(alias, expected, 0.01) << "index " << i;
  }
}

TEST(AliasTableTest, UniformWeightsStayUniform) {
  AliasTable table(std::vector<double>(16, 1.0));
  Rng rng(43);
  std::vector<int> counts(16, 0);
  const int kTrials = 32000;
  for (int t = 0; t < kTrials; ++t) ++counts[table.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 1.0 / 16.0, 0.01);
  }
}

TEST(AliasTableTest, DeterministicGivenSeed) {
  std::vector<double> weights = {0.5, 2.0, 3.5, 1.0};
  AliasTable table(weights);
  Rng a(47);
  Rng b(47);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(table.Sample(a), table.Sample(b));
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  for (size_t n : {size_t{10}, size_t{100}, size_t{1000}}) {
    for (size_t k : {size_t{0}, size_t{1}, size_t{5}, n / 2, n}) {
      auto indices = rng.SampleIndices(n, k);
      ASSERT_EQ(indices.size(), k);
      std::set<size_t> unique(indices.begin(), indices.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t index : indices) EXPECT_LT(index, n);
    }
  }
}

TEST(RngTest, SampleIndicesIsUniform) {
  Rng rng(23);
  std::map<size_t, int> counts;
  const int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    for (size_t index : rng.SampleIndices(10, 3)) ++counts[index];
  }
  // Each index should appear with probability 3/10.
  for (const auto& [index, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kTrials, 0.3, 0.02)
        << "index " << index;
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 2, 3, 5, 8, 13};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, PartialShuffleZeroIsIdentity) {
  Rng rng(31);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> copy = items;
  rng.PartialShuffle(copy, 0.0);
  EXPECT_EQ(copy, items);
}

TEST(RngTest, PartialShuffleOnePermutesMultiset) {
  Rng rng(37);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[i] = i;
  std::vector<int> copy = items;
  rng.PartialShuffle(copy, 1.0);
  EXPECT_NE(copy, items);  // Astronomically unlikely to be identity.
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(RngTest, PartialShuffleDisplacementGrowsWithFraction) {
  auto displacement = [](double fraction) {
    Rng rng(41);
    std::vector<int> items(1000);
    for (int i = 0; i < 1000; ++i) items[i] = i;
    rng.PartialShuffle(items, fraction);
    double total = 0.0;
    for (int i = 0; i < 1000; ++i) total += std::abs(items[i] - i);
    return total;
  };
  double d_small = displacement(0.1);
  double d_large = displacement(0.9);
  EXPECT_LT(d_small, d_large);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // The child stream should not replicate the parent's continuing stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next64() == child.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, GeometricMeanMatches) {
  Rng rng(47);
  double sum = 0.0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.Geometric(0.25));
  }
  // Mean of failures-before-success geometric = (1-p)/p = 3.
  EXPECT_NEAR(sum / kTrials, 3.0, 0.15);
}

TEST(RngTest, MixSeedSpreadsNearbySeeds) {
  // Consecutive seeds must land far apart after mixing.
  uint64_t a = MixSeed(1);
  uint64_t b = MixSeed(2);
  int differing_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing_bits, 10);
}

}  // namespace
}  // namespace p2paqp::util

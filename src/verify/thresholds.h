// Significance thresholds for the statistical verification harness.
//
// Every check in src/verify is a hypothesis test: it fails when the observed
// statistic would be astronomically unlikely under the theorem being
// verified. The thresholds below are chosen so that a whole suite of checks
// produces a false alarm (a red test with correct code) less than once per
// million runs:
//
//   per-suite false-positive rate  <= kSuiteFalsePositiveRate = 1e-6
//   checks budgeted per suite       = kMaxChecksPerSuite      = 32
//   per-check significance alpha    = 1e-6 / 32 ~= 3.1e-8  (Bonferroni)
//   equivalent two-sided z cutoff  ~= 5.5 sigma
//
// The trade is deliberate: at 5.5 sigma the tests have no power against
// biases much smaller than ~5 standard errors of the replicate mean, but a
// real implementation bug (a dropped 1/prob(s) reweighting, a wrong
// stationary distribution) shifts the statistic by tens of sigma and is
// caught on every run, while an unlucky seed essentially never fails CI.
// docs/TESTING.md discusses the derivation and the resulting detection
// limits.
#ifndef P2PAQP_VERIFY_THRESHOLDS_H_
#define P2PAQP_VERIFY_THRESHOLDS_H_

#include <cstddef>

namespace p2paqp::verify {

// Upper bound on the probability that a suite of up to kMaxChecksPerSuite
// statistical checks fails although the code is correct.
inline constexpr double kSuiteFalsePositiveRate = 1e-6;

// Budgeted number of statistical checks per test binary ("suite"). Suites
// exceeding this must split or tighten alpha themselves.
inline constexpr size_t kMaxChecksPerSuite = 32;

// The per-check significance level: kSuiteFalsePositiveRate divided across
// kMaxChecksPerSuite Bonferroni-style (~3.1e-8).
double DefaultAlpha();

// Two-sided z cutoff for a given significance level: the |z| above which a
// normal statistic is declared a failure (~5.54 for DefaultAlpha()).
double SigmaForAlpha(double alpha);

// Inverse of SigmaForAlpha: the two-sided tail mass beyond |z| = sigma.
double AlphaForSigma(double sigma);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_THRESHOLDS_H_

#include "verify/statistical_tests.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "util/logging.h"
#include "verify/distributions.h"

namespace p2paqp::verify {

namespace {

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

TestVerdict MakeVerdict(std::string name, double statistic, double p_value,
                        double alpha, std::string detail) {
  TestVerdict v;
  v.name = std::move(name);
  v.statistic = statistic;
  v.p_value = p_value;
  v.alpha = alpha;
  v.pass = p_value >= alpha;
  v.detail = std::move(detail);
  return v;
}

}  // namespace

std::string TestVerdict::ToString() const {
  return Format("%s: %s (statistic=%.6g p=%.3g alpha=%.3g) %s", name.c_str(),
                pass ? "PASS" : "FAIL", statistic, p_value, alpha,
                detail.c_str());
}

TestVerdict MeanZTest(const util::RunningStat& replicates,
                      double expected_mean, double alpha,
                      double bias_tolerance) {
  P2PAQP_CHECK_GE(replicates.count(), 2u);
  P2PAQP_CHECK_GE(bias_tolerance, 0.0);
  double n = static_cast<double>(replicates.count());
  double se = replicates.stddev() / std::sqrt(n);
  double deviation =
      std::max(0.0, std::fabs(replicates.mean() - expected_mean) -
                        bias_tolerance);
  std::string detail = Format(
      "mean=%.6g expected=%.6g tol=%.3g se=%.3g n=%zu", replicates.mean(),
      expected_mean, bias_tolerance, se, replicates.count());
  if (se == 0.0) {
    // Degenerate replicates (all identical): pass iff inside the band.
    return MakeVerdict("mean-z", deviation, deviation == 0.0 ? 1.0 : 0.0,
                       alpha, std::move(detail));
  }
  double z = deviation / se;
  return MakeVerdict("mean-z", z, NormalTwoSidedP(z), alpha,
                     std::move(detail));
}

TestVerdict MeanTTest(const util::RunningStat& replicates,
                      double expected_mean, double alpha) {
  P2PAQP_CHECK_GE(replicates.count(), 3u);
  double n = static_cast<double>(replicates.count());
  double se = replicates.stddev() / std::sqrt(n);
  std::string detail =
      Format("mean=%.6g expected=%.6g se=%.3g n=%zu", replicates.mean(),
             expected_mean, se, replicates.count());
  if (se == 0.0) {
    double dev = std::fabs(replicates.mean() - expected_mean);
    return MakeVerdict("mean-t", dev, dev == 0.0 ? 1.0 : 0.0, alpha,
                       std::move(detail));
  }
  double t = (replicates.mean() - expected_mean) / se;
  return MakeVerdict("mean-t", t, StudentTTwoSidedP(t, n - 1.0), alpha,
                     std::move(detail));
}

TestVerdict ChiSquareGofTest(const std::vector<double>& observed,
                             const std::vector<double>& expected, double alpha,
                             double min_expected, double design_effect) {
  P2PAQP_CHECK_EQ(observed.size(), expected.size());
  P2PAQP_CHECK_GE(observed.size(), 2u);
  P2PAQP_CHECK_GE(design_effect, 1.0);
  double observed_total = 0.0;
  double expected_total = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    P2PAQP_CHECK_GE(observed[i], 0.0);
    P2PAQP_CHECK_GE(expected[i], 0.0);
    observed_total += observed[i];
    expected_total += expected[i];
  }
  P2PAQP_CHECK_GT(observed_total, 0.0);
  P2PAQP_CHECK_GT(expected_total, 0.0);
  double rescale = observed_total / expected_total;

  // Greedy pooling: walk the bins, merging consecutive ones until each
  // pooled bin's expected count clears min_expected; fold a trailing
  // undersized pool into its predecessor.
  std::vector<double> pooled_obs;
  std::vector<double> pooled_exp;
  double acc_obs = 0.0;
  double acc_exp = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    acc_obs += observed[i];
    acc_exp += expected[i] * rescale;
    if (acc_exp >= min_expected) {
      pooled_obs.push_back(acc_obs);
      pooled_exp.push_back(acc_exp);
      acc_obs = 0.0;
      acc_exp = 0.0;
    }
  }
  if (acc_exp > 0.0) {
    if (pooled_obs.empty()) {
      pooled_obs.push_back(acc_obs);
      pooled_exp.push_back(acc_exp);
    } else {
      pooled_obs.back() += acc_obs;
      pooled_exp.back() += acc_exp;
    }
  }

  double statistic = 0.0;
  for (size_t i = 0; i < pooled_obs.size(); ++i) {
    double diff = pooled_obs[i] - pooled_exp[i];
    statistic += diff * diff / pooled_exp[i];
  }
  statistic /= design_effect;
  double dof = static_cast<double>(pooled_obs.size()) - 1.0;
  std::string detail = Format(
      "bins=%zu (pooled from %zu) dof=%.0f design_effect=%.2f n=%.0f",
      pooled_obs.size(), observed.size(), dof, design_effect, observed_total);
  if (dof < 1.0) {
    return MakeVerdict("chi2-gof", statistic, 1.0, alpha, std::move(detail));
  }
  return MakeVerdict("chi2-gof", statistic, ChiSquareSf(statistic, dof),
                     alpha, std::move(detail));
}

TestVerdict KsTwoSampleTest(std::vector<double> a, std::vector<double> b,
                            double alpha) {
  P2PAQP_CHECK_GE(a.size(), 8u);
  P2PAQP_CHECK_GE(b.size(), 8u);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0.0;
  while (ia < a.size() && ib < b.size()) {
    double va = a[ia];
    double vb = b[ib];
    double step = std::min(va, vb);
    while (ia < a.size() && a[ia] <= step) ++ia;
    while (ib < b.size() && b[ib] <= step) ++ib;
    d = std::max(d, std::fabs(static_cast<double>(ia) / na -
                              static_cast<double>(ib) / nb));
  }
  double ne = na * nb / (na + nb);
  double sqrt_ne = std::sqrt(ne);
  // Stephens' finite-sample correction before the asymptotic tail.
  double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  std::string detail =
      Format("D=%.5f n_a=%zu n_b=%zu", d, a.size(), b.size());
  return MakeVerdict("ks-2sample", d, KolmogorovSf(lambda), alpha,
                     std::move(detail));
}

TestVerdict CoverageAtLeastTest(size_t covered, size_t total, double nominal,
                                double alpha) {
  P2PAQP_CHECK_GT(total, 0u);
  P2PAQP_CHECK_LE(covered, total);
  P2PAQP_CHECK(nominal > 0.0 && nominal < 1.0) << nominal;
  double coverage = static_cast<double>(covered) / static_cast<double>(total);
  double p = BinomialLowerTailP(covered, total, nominal);
  std::string detail = Format("covered=%zu/%zu (%.3f) nominal=%.3f", covered,
                              total, coverage, nominal);
  return MakeVerdict("ci-coverage", coverage, p, alpha, std::move(detail));
}

TestVerdict InverseVarianceSlopeTest(const std::vector<double>& sample_sizes,
                                     const std::vector<double>& variances,
                                     size_t replicates_per_point, double alpha,
                                     double slope_tolerance) {
  P2PAQP_CHECK_EQ(sample_sizes.size(), variances.size());
  P2PAQP_CHECK_GE(sample_sizes.size(), 3u);
  P2PAQP_CHECK_GE(replicates_per_point, 16u);
  P2PAQP_CHECK_GE(slope_tolerance, 0.0);
  size_t k = sample_sizes.size();
  std::vector<double> x(k);
  std::vector<double> y(k);
  double x_mean = 0.0;
  double y_mean = 0.0;
  for (size_t i = 0; i < k; ++i) {
    P2PAQP_CHECK_GT(sample_sizes[i], 0.0);
    P2PAQP_CHECK_GT(variances[i], 0.0);
    x[i] = std::log(sample_sizes[i]);
    y[i] = std::log(variances[i]);
    x_mean += x[i];
    y_mean += y[i];
  }
  x_mean /= static_cast<double>(k);
  y_mean /= static_cast<double>(k);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < k; ++i) {
    sxx += (x[i] - x_mean) * (x[i] - x_mean);
    sxy += (x[i] - x_mean) * (y[i] - y_mean);
  }
  P2PAQP_CHECK_GT(sxx, 0.0);
  double slope = sxy / sxx;
  // Each log-variance point carries sampling noise var(log s^2) ~= 2/(R-1)
  // under near-normal replicate estimates; the tolerance band absorbs the
  // heavier-tailed reality.
  double var_y = 2.0 / static_cast<double>(replicates_per_point - 1);
  double se_slope = std::sqrt(var_y / sxx);
  double deviation = std::max(0.0, std::fabs(slope + 1.0) - slope_tolerance);
  double z = deviation / se_slope;
  std::string detail = Format("slope=%.4f (want -1 +/- %.3g) se=%.4f k=%zu",
                              slope, slope_tolerance, se_slope, k);
  return MakeVerdict("var-slope", z, NormalTwoSidedP(z), alpha,
                     std::move(detail));
}

}  // namespace p2paqp::verify

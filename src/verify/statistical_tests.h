// Hypothesis tests that machine-check the paper's statistical guarantees.
//
// Each function reduces a pile of replicate measurements to a TestVerdict:
// the test statistic, its p-value under the null hypothesis ("the theorem
// holds"), and a pass/fail decision at the caller's significance level
// (normally verify::DefaultAlpha(); see thresholds.h for the false-positive
// budget). Verdicts carry a human-readable detail string so a red test
// explains itself.
#ifndef P2PAQP_VERIFY_STATISTICAL_TESTS_H_
#define P2PAQP_VERIFY_STATISTICAL_TESTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/statistics.h"

namespace p2paqp::verify {

struct TestVerdict {
  std::string name;
  // The test statistic: z, t, chi-square, KS D, or empirical coverage,
  // depending on the test.
  double statistic = 0.0;
  double p_value = 1.0;
  double alpha = 0.0;
  bool pass = true;
  // Human-readable context (means, counts, thresholds) for failure output.
  std::string detail;

  std::string ToString() const;
};

// Unbiasedness check (Theorem 1): z-test of the replicate mean against
// `expected_mean`. `bias_tolerance` is a guard band for estimators with a
// known small-sample bias (ratio/median estimators): deviations inside the
// band are not counted against the z statistic. Pass 0 for exactly unbiased
// estimators.
TestVerdict MeanZTest(const util::RunningStat& replicates,
                      double expected_mean, double alpha,
                      double bias_tolerance = 0.0);

// Small-replicate variant using the Student-t tail (exact under normality).
TestVerdict MeanTTest(const util::RunningStat& replicates,
                      double expected_mean, double alpha);

// Chi-square goodness of fit of observed bin counts against expected
// counts. Bins with expected count below `min_expected` are greedily pooled
// (standard validity rule). `design_effect` >= 1 divides the statistic to
// account for positively correlated draws (Kish effective-sample-size
// correction); pass 1 for independent draws. Expected counts are rescaled
// to the observed total.
TestVerdict ChiSquareGofTest(const std::vector<double>& observed,
                             const std::vector<double>& expected, double alpha,
                             double min_expected = 8.0,
                             double design_effect = 1.0);

// Two-sample Kolmogorov-Smirnov: are `a` and `b` draws from the same
// distribution? Conservative in the presence of ties (discrete data), which
// only lowers power, never the false-positive rate.
TestVerdict KsTwoSampleTest(std::vector<double> a, std::vector<double> b,
                            double alpha);

// CI-coverage calibration: fails when the empirical coverage
// `covered / total` is implausibly *below* `nominal` (lower binomial tail).
// Over-coverage passes by design — the paper's cross-validation is
// deliberately conservative, so intervals wider than nominal are expected
// behaviour, not a bug.
TestVerdict CoverageAtLeastTest(size_t covered, size_t total, double nominal,
                                double alpha);

// Variance-decay check (Theorem 2): fits log(variance) against
// log(sample size) by least squares and tests the slope against -1
// (err^2 = C/m). `replicates_per_point` drives the noise model for the
// fitted slope (var(log s^2) ~= 2/(R-1) under near-normal replicates);
// `slope_tolerance` is a guard band absorbing that approximation.
TestVerdict InverseVarianceSlopeTest(const std::vector<double>& sample_sizes,
                                     const std::vector<double>& variances,
                                     size_t replicates_per_point, double alpha,
                                     double slope_tolerance = 0.1);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_STATISTICAL_TESTS_H_

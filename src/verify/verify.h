// Umbrella header for the statistical verification harness.
//
// src/verify machine-checks the paper's statistical guarantees:
//   Theorem 1 — the Horvitz-Thompson estimator is unbiased,
//   Theorem 2 — its error decays as C/m,
//   Theorem 3 — cross-validation calibrates the phase-II sample size,
// plus the degree-proportional stationary distribution of the random walk
// that all three rest on. The harness is a library, not a test framework:
// tests (tests/statistical/) run seeded replicates through the engines and
// feed the results to these verdict functions; thresholds.h documents the
// <1e-6 per-suite false-positive budget the significance levels come from.
#ifndef P2PAQP_VERIFY_VERIFY_H_
#define P2PAQP_VERIFY_VERIFY_H_

#include "verify/distributions.h"
#include "verify/replicate.h"
#include "verify/statistical_tests.h"
#include "verify/thresholds.h"

#endif  // P2PAQP_VERIFY_VERIFY_H_

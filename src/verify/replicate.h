// Seeded replicate plumbing for the statistical verification harness.
//
// Statistical checks need many independent reruns of the same experiment.
// The helpers here make those reruns deterministic (seeds derived from a
// fixed base, never from time) and tier-aware: the same test binary runs a
// handful of replicates as a tier-1 smoke check and the full replicate
// budget when invoked with P2PAQP_STAT_MODE=full, which is how the
// `statistical` ctest label runs it (see docs/TESTING.md).
#ifndef P2PAQP_VERIFY_REPLICATE_H_
#define P2PAQP_VERIFY_REPLICATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/parallel.h"
#include "util/statistics.h"

namespace p2paqp::verify {

enum class ReplicateMode {
  // Tier-1 default: few replicates, loose derived thresholds. Catches
  // catastrophic breakage at negligible wall-time.
  kSmoke = 0,
  // Tier-2 (`ctest -L statistical`): the full replicate budget the
  // thresholds in thresholds.h were derived for.
  kFull,
};

// Reads P2PAQP_STAT_MODE ("full" selects kFull; anything else is smoke).
ReplicateMode StatMode();

// Picks the replicate budget for the current mode.
size_t Replicates(size_t smoke, size_t full);

// Deterministic per-replicate seed stream: mixes the base seed with the
// replicate index so replicate RNGs are independent but fully reproducible.
uint64_t ReplicateSeed(uint64_t base_seed, size_t replicate);

// One replicate of an estimator run, as consumed by the calibration checks.
struct EstimateSample {
  double estimate = 0.0;
  double truth = 0.0;
  // 95% confidence half-width reported by the estimator (0 = no interval).
  double ci_half_width = 0.0;
};

// Accumulates replicate estimates into the aggregates the verdict functions
// consume: signed errors for unbiasedness, squared errors for variance, and
// interval-coverage counts for calibration.
class CalibrationAccumulator {
 public:
  void Add(const EstimateSample& sample);

  // Signed errors (estimate - truth) across replicates.
  const util::RunningStat& errors() const { return errors_; }
  // Raw estimates across replicates.
  const util::RunningStat& estimates() const { return estimates_; }
  // Squared errors (estimate - truth)^2 across replicates.
  const util::RunningStat& squared_errors() const { return squared_errors_; }
  // Replicates whose |estimate - truth| <= ci_half_width.
  size_t covered() const { return covered_; }
  size_t total() const { return static_cast<size_t>(errors_.count()); }

 private:
  util::RunningStat errors_;
  util::RunningStat estimates_;
  util::RunningStat squared_errors_;
  size_t covered_ = 0;
};

// Runs `fn(seed, replicate_index)` -> double for each replicate and returns
// the replicate statistics.
//
// Replicates execute through util::ParallelFor (the P2PAQP_THREADS knob):
// each lands in its own slot and the RunningStat reduction runs serially in
// replicate order on the caller, so the result is bit-identical for any
// thread count. `fn` must be safe to call concurrently — derive all
// randomness from the passed seed and touch only state owned by the
// replicate (every statistical test in tests/statistical/ already does).
template <typename Fn>
util::RunningStat RunReplicates(size_t replicates, uint64_t base_seed,
                                Fn&& fn) {
  std::vector<double> results = util::ParallelMap(
      replicates,
      [&](size_t r) { return fn(ReplicateSeed(base_seed, r), r); });
  util::RunningStat stat;
  for (double value : results) stat.Add(value);
  return stat;
}

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_REPLICATE_H_

// Tail probabilities of the reference distributions used by the statistical
// verification harness (src/verify). Everything here is deterministic,
// dependency-free double arithmetic: normal and Student-t tails for
// unbiasedness tests, chi-square tails for goodness-of-fit, the Kolmogorov
// limit distribution for KS tests, and exact binomial tails for CI-coverage
// calibration. Accuracy is ~1e-10 relative in the bulk and degrades
// gracefully in the far tails, which is ample for the >=1e-8 significance
// levels the harness operates at (see thresholds.h).
#ifndef P2PAQP_VERIFY_DISTRIBUTIONS_H_
#define P2PAQP_VERIFY_DISTRIBUTIONS_H_

#include <cstddef>

namespace p2paqp::verify {

// P(Z > z) for standard normal Z.
double NormalSf(double z);

// Two-sided normal p-value: P(|Z| > |z|).
double NormalTwoSidedP(double z);

// Lower regularized incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

// Upper regularized incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

// P(X > statistic) for X ~ chi-square with `dof` degrees of freedom.
double ChiSquareSf(double statistic, double dof);

// Regularized incomplete beta I_x(a, b), the CDF workhorse behind the
// Student-t tail.
double RegularizedBeta(double a, double b, double x);

// Two-sided Student-t p-value: P(|T| > |t|) with `dof` degrees of freedom.
double StudentTTwoSidedP(double t, double dof);

// P(K > statistic) for the Kolmogorov limit distribution
// (2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2)).
double KolmogorovSf(double statistic);

// Exact lower binomial tail P(X <= k) for X ~ Binomial(n, p), evaluated in
// log space so it stays finite for n in the thousands.
double BinomialLowerTailP(size_t k, size_t n, double p);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_DISTRIBUTIONS_H_

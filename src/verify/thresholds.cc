#include "verify/thresholds.h"

#include "util/logging.h"
#include "util/statistics.h"
#include "verify/distributions.h"

namespace p2paqp::verify {

double DefaultAlpha() {
  return kSuiteFalsePositiveRate / static_cast<double>(kMaxChecksPerSuite);
}

double SigmaForAlpha(double alpha) {
  P2PAQP_CHECK(alpha > 0.0 && alpha < 1.0) << alpha;
  return util::InverseNormalCdf(1.0 - alpha / 2.0);
}

double AlphaForSigma(double sigma) {
  P2PAQP_CHECK_GT(sigma, 0.0);
  return NormalTwoSidedP(sigma);
}

}  // namespace p2paqp::verify

#include "verify/distributions.h"

#include <cmath>

#include "util/logging.h"

namespace p2paqp::verify {

namespace {

constexpr double kEps = 1e-15;
constexpr double kTiny = 1e-300;
constexpr int kMaxIterations = 500;

// Series expansion of P(a, x), valid (fast-converging) for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int n = 1; n < kMaxIterations; ++n) {
    term *= x / (a + static_cast<double>(n));
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for the incomplete beta (Numerical Recipes
// betacf); converges for x < (a + 1) / (a + b + 2).
double BetaContinuedFraction(double a, double b, double x) {
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m < kMaxIterations; ++m) {
    double dm = static_cast<double>(m);
    double m2 = 2.0 * dm;
    double aa = dm * (b - dm) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + dm) * (qab + dm) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double NormalSf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double NormalTwoSidedP(double z) {
  double p = 2.0 * NormalSf(std::fabs(z));
  return p > 1.0 ? 1.0 : p;
}

double RegularizedGammaP(double a, double x) {
  P2PAQP_CHECK_GT(a, 0.0);
  P2PAQP_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  P2PAQP_CHECK_GT(a, 0.0);
  P2PAQP_CHECK_GE(x, 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSf(double statistic, double dof) {
  P2PAQP_CHECK_GT(dof, 0.0);
  if (statistic <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, statistic / 2.0);
}

double RegularizedBeta(double a, double b, double x) {
  P2PAQP_CHECK_GT(a, 0.0);
  P2PAQP_CHECK_GT(b, 0.0);
  P2PAQP_CHECK(x >= 0.0 && x <= 1.0) << x;
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                    a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedP(double t, double dof) {
  P2PAQP_CHECK_GT(dof, 0.0);
  double t2 = t * t;
  // P(|T| > t) = I_{dof/(dof+t^2)}(dof/2, 1/2).
  return RegularizedBeta(dof / 2.0, 0.5, dof / (dof + t2));
}

double KolmogorovSf(double statistic) {
  if (statistic <= 0.0) return 1.0;
  // The alternating series converges fast for statistic >~ 0.3; below that
  // the survival function is 1 to far beyond double precision.
  if (statistic < 0.2) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 200; ++k) {
    double dk = static_cast<double>(k);
    double term = std::exp(-2.0 * dk * dk * statistic * statistic);
    sum += (k % 2 == 1) ? term : -term;
    if (term < 1e-18) break;
  }
  double p = 2.0 * sum;
  if (p < 0.0) return 0.0;
  return p > 1.0 ? 1.0 : p;
}

double BinomialLowerTailP(size_t k, size_t n, double p) {
  P2PAQP_CHECK(p >= 0.0 && p <= 1.0) << p;
  P2PAQP_CHECK_GT(n, 0u);
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;
  double ln_n_fact = std::lgamma(static_cast<double>(n) + 1.0);
  double ln_p = std::log(p);
  double ln_q = std::log1p(-p);
  double sum = 0.0;
  for (size_t i = 0; i <= k; ++i) {
    double di = static_cast<double>(i);
    double dn = static_cast<double>(n);
    double ln_pmf = ln_n_fact - std::lgamma(di + 1.0) -
                    std::lgamma(dn - di + 1.0) + di * ln_p + (dn - di) * ln_q;
    sum += std::exp(ln_pmf);
  }
  return sum > 1.0 ? 1.0 : sum;
}

}  // namespace p2paqp::verify

#include "verify/protocol/history_checker.h"

#include <cstdint>
#include <map>
#include <set>
#include <utility>

namespace p2paqp::verify {

namespace {

constexpr size_t kMaxViolations = 32;

void Report(std::vector<std::string>* violations, const net::HistoryEvent& e,
            const std::string& rule) {
  if (violations->size() >= kMaxViolations) return;
  violations->push_back(rule + ": " + e.ToString());
}

}  // namespace

std::vector<std::string> CheckHistory(
    const std::vector<net::HistoryEvent>& events) {
  std::vector<std::string> violations;
  uint64_t sends = 0;
  uint64_t outcomes = 0;  // delivers + drops.
  std::set<graph::NodeId> down;
  // Pending (fired but unconsumed) timeouts per directed flow.
  std::map<std::pair<graph::NodeId, graph::NodeId>, uint64_t> pending_timeouts;
  // Pending (elapsed but unconsumed) hedge delays per directed flow, plus
  // the tags whose selection was hedged and the tags discarded at a query
  // deadline — a hedged pair must resolve to exactly one accepted
  // observation unless the deadline threw both copies away.
  std::map<std::pair<graph::NodeId, graph::NodeId>, uint64_t> pending_hedges;
  std::set<uint64_t> hedged_tags;
  std::set<uint64_t> expired_tags;
  std::set<uint64_t> accepted_tags;
  // Peers that have ever been down, and whether a walker token has been
  // delivered to them since their latest down transition.
  std::set<graph::NodeId> ever_down;
  std::set<graph::NodeId> token_since_rebirth;
  // Flood reply causality: a peer may only send (or forward) a Pong /
  // QueryHit if the paired request reached it in its current incarnation.
  std::set<graph::NodeId> ping_heard;
  std::set<graph::NodeId> query_heard;

  for (const net::HistoryEvent& e : events) {
    switch (e.kind) {
      case net::HistoryEventKind::kSend:
        ++sends;
        if (down.count(e.from) || down.count(e.to)) {
          Report(&violations, e, "send involves a down peer");
        }
        if (e.type == net::MessageType::kWalker && ever_down.count(e.from) &&
            !token_since_rebirth.count(e.from)) {
          Report(&violations, e,
                 "walker forwarded by a reborn peer that never received a "
                 "token in its current incarnation");
        }
        if (e.type == net::MessageType::kPong && !ping_heard.count(e.from)) {
          Report(&violations, e,
                 "pong sent by a peer no ping reached in its current "
                 "incarnation");
        }
        if (e.type == net::MessageType::kQueryHit &&
            !query_heard.count(e.from)) {
          Report(&violations, e,
                 "query hit sent by a peer no query reached in its current "
                 "incarnation");
        }
        break;
      case net::HistoryEventKind::kDeliver:
        ++outcomes;
        if (outcomes > sends) {
          Report(&violations, e, "delivery outcome without a matching send");
        }
        if (down.count(e.from) || down.count(e.to)) {
          Report(&violations, e, "delivery involves a down peer");
        }
        if (e.type == net::MessageType::kWalker) {
          token_since_rebirth.insert(e.to);
        }
        if (e.type == net::MessageType::kPing) ping_heard.insert(e.to);
        if (e.type == net::MessageType::kQuery) query_heard.insert(e.to);
        break;
      case net::HistoryEventKind::kDrop:
        ++outcomes;
        if (outcomes > sends) {
          Report(&violations, e, "drop outcome without a matching send");
        }
        break;
      case net::HistoryEventKind::kTimeout:
        ++pending_timeouts[{e.from, e.to}];
        break;
      case net::HistoryEventKind::kRetransmit: {
        auto it = pending_timeouts.find({e.from, e.to});
        if (it == pending_timeouts.end() || it->second == 0) {
          Report(&violations, e, "retransmit without a preceding timeout");
        } else {
          --it->second;
        }
        break;
      }
      case net::HistoryEventKind::kPeerDown:
        down.insert(e.from);
        ever_down.insert(e.from);
        token_since_rebirth.erase(e.from);
        ping_heard.erase(e.from);
        query_heard.erase(e.from);
        break;
      case net::HistoryEventKind::kPeerUp:
        down.erase(e.from);
        break;
      case net::HistoryEventKind::kExpire:
        // An aggregate reply expired at the query deadline: its tag is
        // resolved without an accept (both copies of a hedged pair may end
        // here when the deadline beats them).
        if (e.type == net::MessageType::kAggregateReply && e.tag != 0) {
          expired_tags.insert(e.tag);
        }
        break;
      case net::HistoryEventKind::kHedgeDue:
        ++pending_hedges[{e.from, e.to}];
        break;
      case net::HistoryEventKind::kHedge: {
        auto it = pending_hedges.find({e.from, e.to});
        if (it == pending_hedges.end() || it->second == 0) {
          Report(&violations, e,
                 "hedged duplicate sent before its hedge delay elapsed");
        } else {
          --it->second;
        }
        if (e.tag != 0 && !hedged_tags.insert(e.tag).second) {
          Report(&violations, e, "selection hedged more than once");
        }
        break;
      }
      case net::HistoryEventKind::kStragglerSkip:
        // Informational: a Walk-Not-Wait fork is not a send and needs no
        // outcome; conservation is untouched.
        break;
      case net::HistoryEventKind::kDedupAccept:
        if (e.tag != 0 && !accepted_tags.insert(e.tag).second) {
          Report(&violations, e, "reply tag accepted more than once");
        }
        break;
      case net::HistoryEventKind::kDedupDrop:
        if (e.tag != 0 && !accepted_tags.count(e.tag)) {
          Report(&violations, e,
                 "duplicate dropped for a tag that was never accepted");
        }
        break;
    }
  }
  if (sends != outcomes && violations.size() < kMaxViolations) {
    violations.push_back("history conservation broken: " +
                         std::to_string(sends) + " sends vs " +
                         std::to_string(outcomes) + " outcomes");
  }
  for (uint64_t tag : hedged_tags) {
    if (violations.size() >= kMaxViolations) break;
    if (!accepted_tags.count(tag) && !expired_tags.count(tag)) {
      violations.push_back(
          "hedged selection resolved to no accepted observation: tag=" +
          std::to_string(tag));
    }
  }
  return violations;
}

}  // namespace p2paqp::verify

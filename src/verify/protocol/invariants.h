// Invariant oracles evaluated after every generated chaos run.
//
// Each oracle states a property that must hold for ANY plan (or any plan in
// a guarded subclass, e.g. non-Byzantine), so the harness needs no
// per-plan expected values — the classic property-testing contract. The
// oracles deliberately read only black-box outputs (answers, cost deltas,
// frame stats, the event history), never engine internals.
#ifndef P2PAQP_VERIFY_PROTOCOL_INVARIANTS_H_
#define P2PAQP_VERIFY_PROTOCOL_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/multi_query.h"
#include "core/two_phase.h"
#include "net/cost.h"
#include "verify/protocol/chaos_plan.h"

namespace p2paqp::verify {

// One executed query as the harness observed it.
struct AnswerRecord {
  uint64_t query_index = 0;
  uint64_t batch_index = 0;
  bool ok = false;
  core::ApproximateAnswer answer;  // Valid only when ok.
  std::string error;               // Status message when !ok.
  // Exact answers at issue time and at answer time (they differ when churn
  // or crashes removed peers mid-run; the envelope accepts either vintage).
  double truth_before = 0.0;
  double truth_after = 0.0;
  // Exact total aggregate (N for COUNT, all-tuples sum for SUM) at answer
  // time — the paper's error normalizer.
  double truth_total = 0.0;
};

// Frame bookkeeping for one scheduler batch.
struct FrameBatchRecord {
  uint64_t batch_index = 0;
  size_t carry = 0;        // QueryScheduler::batch_carry() for this batch.
  size_t frame_before = 0; // Frame size entering ExecuteBatch.
  size_t frame_after = 0;  // Frame size after ExecuteBatch.
  core::SampleFrameStats stats;  // Per-batch (BatchResult::frame).
};

// Per-answer oracles: quorum honored, degraded-CI monotonicity, failure
// isolation, and (for non-Byzantine plans) the estimate envelope.
std::vector<std::string> CheckAnswerInvariants(
    const ChaosPlan& plan, const std::vector<AnswerRecord>& answers);

// Frame-hit/top-up accounting: hits never exceed the carried selections,
// and the frame grows by exactly the recorded misses (top-up conservation).
std::vector<std::string> CheckFrameAccounting(
    const ChaosPlan& plan, const std::vector<FrameBatchRecord>& batches);

// Cost-ledger conservation (messages == delivered + dropped) and agreement
// between the ledger and the recorded history (every charged message has a
// send event, every send an outcome event).
std::vector<std::string> CheckCostConservation(
    const net::CostSnapshot& delta, uint64_t history_sends,
    uint64_t history_delivers, uint64_t history_drops);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_PROTOCOL_INVARIANTS_H_

// Executes one ChaosPlan end-to-end and evaluates every oracle.
//
// The runner is a pure function of the plan: world construction, fault /
// churn / adversary installation, query workload, oracle evaluation and the
// replay digest are all derived from plan.seed, so identical plans produce
// identical ChaosRunReports — including bit-identical digests — on every
// machine and under every P2PAQP_THREADS setting (the run itself is serial;
// thread-invariance is asserted by re-running plans across configurations).
#ifndef P2PAQP_VERIFY_PROTOCOL_RUNNER_H_
#define P2PAQP_VERIFY_PROTOCOL_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "verify/protocol/chaos_plan.h"
#include "verify/protocol/invariants.h"

namespace p2paqp::verify {

struct ChaosRunReport {
  ChaosPlan plan;
  // Every oracle violation, from all checkers (empty = plan passed).
  std::vector<std::string> violations;
  // FNV-1a digest of answers, cost and the full event history: two runs of
  // the same plan must produce the same digest (replay invariance).
  uint64_t digest = 0;
  size_t history_events = 0;
  size_t answers_ok = 0;
  size_t answers_failed = 0;
  std::vector<AnswerRecord> answers;

  bool failed() const { return !violations.empty(); }
};

ChaosRunReport RunChaosPlan(const ChaosPlan& plan);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_PROTOCOL_RUNNER_H_

// Black-box protocol history checker (Maelstrom/Elle style).
//
// Validates a recorded net::HistoryRecorder log purely from the outside —
// no access to engine internals, only the externally visible event stream.
// The rules are causality invariants that no single component can check
// locally because they span components and time:
//
//   1. Conservation: every send resolves to exactly one deliver-or-drop
//      (running prefix and final equality).
//   2. Liveness: no send or deliver involves a peer that is currently down
//      (drops may — the crash that killed the message precedes them).
//   3. Timeout ordering: every retransmit on a (from, to) flow consumes a
//      prior unconsumed timeout on the same flow.
//   4. Dedup soundness: a tag is accepted at most once, and a dedup-drop
//      only happens for a tag that was previously accepted (the sink cannot
//      recognize a duplicate of something it never counted). Catches the
//      injected kDisableReplyDedup bug as a double-accept.
//   5. Walker-session continuity: a peer that has been down may only forward
//      a walker token delivered to it after its latest rebirth. Catches a
//      reborn peer resuming a walk session that died with its previous
//      incarnation (the churn-rejoin stale-token bug).
#ifndef P2PAQP_VERIFY_PROTOCOL_HISTORY_CHECKER_H_
#define P2PAQP_VERIFY_PROTOCOL_HISTORY_CHECKER_H_

#include <string>
#include <vector>

#include "net/history.h"

namespace p2paqp::verify {

// Returns human-readable violations (empty = history is valid). Reporting is
// capped at 32 violations per run to keep failing output readable.
std::vector<std::string> CheckHistory(
    const std::vector<net::HistoryEvent>& events);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_PROTOCOL_HISTORY_CHECKER_H_

#include "verify/protocol/chaos_plan.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/rng.h"

namespace p2paqp::verify {

namespace {

// Seven canonical behaviors (net::AdversaryBehavior) fit in the low bits.
constexpr uint32_t kNumBehaviors = 7;
constexpr uint32_t kBehaviorMaskAll = (1u << kNumBehaviors) - 1;

}  // namespace

ChaosPlan GenerateChaosPlan(uint64_t seed) {
  ChaosPlan plan;
  plan.seed = seed;
  util::Rng rng(util::MixSeed(seed ^ 0xC4A05ULL));

  plan.num_peers = static_cast<uint32_t>(rng.UniformInt(48, 256));
  plan.avg_degree = static_cast<uint32_t>(rng.UniformInt(4, 10));
  plan.tuples_per_peer = static_cast<uint32_t>(rng.UniformInt(10, 40));
  plan.cluster_pct = static_cast<uint32_t>(rng.UniformInt(0, 100));
  plan.skew_pct = static_cast<uint32_t>(rng.UniformInt(0, 100));

  plan.engine = static_cast<ChaosEngineKind>(rng.UniformInt(0, 3));
  plan.num_queries = static_cast<uint32_t>(rng.UniformInt(1, 8));
  plan.num_batches = static_cast<uint32_t>(rng.UniformInt(1, 3));
  plan.phase1_peers = static_cast<uint32_t>(rng.UniformInt(8, 32));
  plan.quorum_pct = static_cast<uint32_t>(rng.UniformInt(10, 40));
  plan.retransmits = static_cast<uint32_t>(rng.UniformInt(0, 3));
  plan.frame_ttl = static_cast<uint32_t>(rng.UniformInt(1, 6));
  plan.batch_walkers = rng.Bernoulli(0.75);
  plan.reuse_frame = rng.Bernoulli(0.75);

  // Each stressor class is off more often than on, so the corpus covers the
  // whole lattice from calm runs to full chaos rather than always-everything.
  if (rng.Bernoulli(0.40)) {
    plan.drop_pm = static_cast<uint32_t>(rng.UniformInt(5, 150));
  }
  if (rng.Bernoulli(0.25)) {
    plan.spike_pm = static_cast<uint32_t>(rng.UniformInt(10, 200));
  }
  if (rng.Bernoulli(0.20)) {
    plan.crash_pm = static_cast<uint32_t>(rng.UniformInt(1, 15));
  }
  if (rng.Bernoulli(0.20)) {
    size_t crashes = rng.UniformInt(1, 3);
    for (size_t i = 0; i < crashes; ++i) {
      // Peer 0 is the sink and always immune; crash among the others.
      plan.scheduled_crashes.emplace_back(
          static_cast<uint32_t>(rng.UniformInt(0, 400)),
          static_cast<uint32_t>(rng.UniformInt(1, plan.num_peers - 1)));
    }
  }
  if (rng.Bernoulli(0.30)) {
    plan.churn_leave_pm = static_cast<uint32_t>(rng.UniformInt(5, 60));
    plan.churn_rejoin_pm = static_cast<uint32_t>(rng.UniformInt(100, 600));
    plan.churn_steps = static_cast<uint32_t>(rng.UniformInt(1, 3));
  }
  if (rng.Bernoulli(0.30)) {
    plan.adversary_pm = static_cast<uint32_t>(rng.UniformInt(50, 250));
    size_t bits = rng.UniformInt(1, 2);
    for (size_t i = 0; i < bits; ++i) {
      plan.behavior_mask |= 1u << rng.UniformInt(0, kNumBehaviors - 1);
    }
  }
  // Straggler regimes, appended after all legacy draws so existing seeds
  // keep their legacy prefix (only the new suffix of the stream changes
  // which plans they denote).
  if (rng.Bernoulli(0.25)) {
    plan.tail_kind = static_cast<uint32_t>(rng.UniformInt(1, 2));
    plan.tail_scale_ms = static_cast<uint32_t>(rng.UniformInt(5, 40));
    if (rng.Bernoulli(0.50)) {
      plan.slow_pm = static_cast<uint32_t>(rng.UniformInt(20, 150));
      plan.slow_factor = static_cast<uint32_t>(rng.UniformInt(5, 25));
    }
    plan.wnw = rng.Bernoulli(0.5);
    plan.hedge = rng.Bernoulli(0.5);
    plan.backoff = rng.Bernoulli(0.5);
    if (plan.engine == ChaosEngineKind::kAsync && rng.Bernoulli(0.35)) {
      plan.deadline_ms = static_cast<uint32_t>(rng.UniformInt(200, 3000));
    }
  }
  return plan;
}

size_t PlanComplexity(const ChaosPlan& plan) {
  size_t complexity = 0;
  if (plan.drop_pm > 0) ++complexity;
  if (plan.spike_pm > 0) ++complexity;
  if (plan.crash_pm > 0) ++complexity;
  complexity += plan.scheduled_crashes.size();
  if (plan.churn_enabled()) ++complexity;
  if (plan.adversary_pm > 0) {
    for (uint32_t bit = 0; bit < kNumBehaviors; ++bit) {
      if (plan.behavior_mask & (1u << bit)) ++complexity;
    }
  }
  if (plan.tail_kind != 0) ++complexity;
  if (plan.slow_pm > 0) ++complexity;
  if (plan.wnw) ++complexity;
  if (plan.hedge) ++complexity;
  if (plan.backoff) ++complexity;
  if (plan.deadline_ms > 0) ++complexity;
  complexity += plan.num_queries - 1;
  complexity += plan.num_batches - 1;
  return complexity;
}

std::string SerializeChaosPlan(const ChaosPlan& plan) {
  std::ostringstream out;
  out << "seed=" << plan.seed << " peers=" << plan.num_peers
      << " deg=" << plan.avg_degree << " tuples=" << plan.tuples_per_peer
      << " cluster=" << plan.cluster_pct << " skew=" << plan.skew_pct
      << " engine=" << static_cast<uint32_t>(plan.engine)
      << " queries=" << plan.num_queries << " batches=" << plan.num_batches
      << " m=" << plan.phase1_peers << " quorum=" << plan.quorum_pct
      << " rtx=" << plan.retransmits << " ttl=" << plan.frame_ttl
      << " bw=" << (plan.batch_walkers ? 1 : 0)
      << " reuse=" << (plan.reuse_frame ? 1 : 0) << " drop=" << plan.drop_pm
      << " spike=" << plan.spike_pm << " crash=" << plan.crash_pm
      << " crashes=";
  if (plan.scheduled_crashes.empty()) {
    out << "-";
  } else {
    for (size_t i = 0; i < plan.scheduled_crashes.size(); ++i) {
      if (i > 0) out << ",";
      out << plan.scheduled_crashes[i].first << ":"
          << plan.scheduled_crashes[i].second;
    }
  }
  out << " leave=" << plan.churn_leave_pm << " rejoin=" << plan.churn_rejoin_pm
      << " steps=" << plan.churn_steps << " adv=" << plan.adversary_pm
      << " behaviors=" << plan.behavior_mask;
  // Straggler block is emitted only when some field is active, so legacy
  // corpus lines (and their digests) round-trip byte for byte.
  if (plan.straggler_enabled() || plan.straggler_policy_enabled()) {
    out << " tail=" << plan.tail_kind << " tscale=" << plan.tail_scale_ms
        << " slow=" << plan.slow_pm << " slowx=" << plan.slow_factor
        << " wnw=" << (plan.wnw ? 1 : 0) << " hedge=" << (plan.hedge ? 1 : 0)
        << " backoff=" << (plan.backoff ? 1 : 0)
        << " dl=" << plan.deadline_ms;
  }
  return out.str();
}

namespace {

util::Status ParseU32(const std::string& value, uint32_t* out) {
  char* end = nullptr;
  unsigned long v = std::strtoul(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || v > 0xFFFFFFFFull) {
    return util::Status::InvalidArgument("bad uint32 '" + value + "'");
  }
  *out = static_cast<uint32_t>(v);
  return util::Status::Ok();
}

util::Status ParseCrashes(
    const std::string& value,
    std::vector<std::pair<uint32_t, uint32_t>>* out) {
  out->clear();
  if (value == "-") return util::Status::Ok();
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return util::Status::InvalidArgument("bad crash entry '" + item + "'");
    }
    uint32_t at = 0;
    uint32_t peer = 0;
    auto a = ParseU32(item.substr(0, colon), &at);
    if (!a.ok()) return a;
    auto b = ParseU32(item.substr(colon + 1), &peer);
    if (!b.ok()) return b;
    out->emplace_back(at, peer);
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<ChaosPlan> ParseChaosPlan(const std::string& line) {
  ChaosPlan plan;
  std::istringstream in(line);
  std::string token;
  bool saw_seed = false;
  while (in >> token) {
    size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return util::Status::InvalidArgument("missing '=' in '" + token + "'");
    }
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    util::Status status = util::Status::Ok();
    uint32_t u = 0;
    if (key == "seed") {
      char* end = nullptr;
      plan.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        status = util::Status::InvalidArgument("bad seed '" + value + "'");
      }
      saw_seed = true;
    } else if (key == "crashes") {
      status = ParseCrashes(value, &plan.scheduled_crashes);
    } else {
      status = ParseU32(value, &u);
      if (status.ok()) {
        if (key == "peers") {
          plan.num_peers = u;
        } else if (key == "deg") {
          plan.avg_degree = u;
        } else if (key == "tuples") {
          plan.tuples_per_peer = u;
        } else if (key == "cluster") {
          plan.cluster_pct = u;
        } else if (key == "skew") {
          plan.skew_pct = u;
        } else if (key == "engine") {
          if (u > 3) {
            status = util::Status::InvalidArgument("bad engine kind");
          } else {
            plan.engine = static_cast<ChaosEngineKind>(u);
          }
        } else if (key == "queries") {
          plan.num_queries = u;
        } else if (key == "batches") {
          plan.num_batches = u;
        } else if (key == "m") {
          plan.phase1_peers = u;
        } else if (key == "quorum") {
          plan.quorum_pct = u;
        } else if (key == "rtx") {
          plan.retransmits = u;
        } else if (key == "ttl") {
          plan.frame_ttl = u;
        } else if (key == "bw") {
          plan.batch_walkers = u != 0;
        } else if (key == "reuse") {
          plan.reuse_frame = u != 0;
        } else if (key == "drop") {
          plan.drop_pm = u;
        } else if (key == "spike") {
          plan.spike_pm = u;
        } else if (key == "crash") {
          plan.crash_pm = u;
        } else if (key == "leave") {
          plan.churn_leave_pm = u;
        } else if (key == "rejoin") {
          plan.churn_rejoin_pm = u;
        } else if (key == "steps") {
          plan.churn_steps = u;
        } else if (key == "adv") {
          plan.adversary_pm = u;
        } else if (key == "behaviors") {
          if (u > kBehaviorMaskAll) {
            status = util::Status::InvalidArgument("bad behavior mask");
          } else {
            plan.behavior_mask = u;
          }
        } else if (key == "tail") {
          if (u > 2) {
            status = util::Status::InvalidArgument("bad tail kind");
          } else {
            plan.tail_kind = u;
          }
        } else if (key == "tscale") {
          plan.tail_scale_ms = u;
        } else if (key == "slow") {
          plan.slow_pm = u;
        } else if (key == "slowx") {
          plan.slow_factor = u;
        } else if (key == "wnw") {
          plan.wnw = u != 0;
        } else if (key == "hedge") {
          plan.hedge = u != 0;
        } else if (key == "backoff") {
          plan.backoff = u != 0;
        } else if (key == "dl") {
          plan.deadline_ms = u;
        } else {
          status = util::Status::InvalidArgument("unknown key '" + key + "'");
        }
      }
    }
    if (!status.ok()) return status;
  }
  if (!saw_seed) {
    return util::Status::InvalidArgument("plan line has no seed key");
  }
  if (plan.num_peers < 4 || plan.num_queries == 0 || plan.num_batches == 0 ||
      plan.phase1_peers < 2) {
    return util::Status::InvalidArgument("plan fails basic bounds");
  }
  return plan;
}

}  // namespace p2paqp::verify

#include "verify/protocol/shrink.h"

#include <algorithm>
#include <vector>

#include "verify/protocol/runner.h"

namespace p2paqp::verify {

namespace {

// One candidate simplification. Returns false when the plan is already at
// the target (no-op), so the fixpoint loop skips the predicate run.
using Mutation = std::function<bool(ChaosPlan*)>;

bool ShrinkU32(uint32_t* field, uint32_t target) {
  if (*field <= target) return false;
  *field = target;
  return true;
}

bool HalveU32Toward(uint32_t* field, uint32_t floor) {
  if (*field <= floor) return false;
  *field = std::max(floor, *field / 2);
  return true;
}

// The candidate list, ordered most-simplifying first: workload collapse and
// whole-stressor removal before rate halving and world shrinking, so the
// fixpoint reaches small complexity with few predicate runs.
std::vector<Mutation> BuildMutations(const ChaosPlan& current) {
  std::vector<Mutation> mutations;

  // Workload collapse.
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->num_batches, 1); });
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->num_queries, 1); });

  // Whole-stressor removal.
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->drop_pm, 0); });
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->spike_pm, 0); });
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->crash_pm, 0); });
  for (size_t i = 0; i < current.scheduled_crashes.size(); ++i) {
    mutations.push_back([i](ChaosPlan* p) {
      if (i >= p->scheduled_crashes.size()) return false;
      p->scheduled_crashes.erase(p->scheduled_crashes.begin() +
                                 static_cast<long>(i));
      return true;
    });
  }
  mutations.push_back([](ChaosPlan* p) {
    if (p->churn_steps == 0 && p->churn_leave_pm == 0 &&
        p->churn_rejoin_pm == 0) {
      return false;
    }
    p->churn_steps = 0;
    p->churn_leave_pm = 0;
    p->churn_rejoin_pm = 0;
    return true;
  });
  for (uint32_t bit = 0; bit < 7; ++bit) {
    mutations.push_back([bit](ChaosPlan* p) {
      if ((p->behavior_mask & (1u << bit)) == 0) return false;
      p->behavior_mask &= ~(1u << bit);
      return true;
    });
  }
  mutations.push_back([](ChaosPlan* p) {
    if (p->behavior_mask != 0 || p->adversary_pm == 0) return false;
    p->adversary_pm = 0;  // Coalition with no behavior left: delete it.
    return true;
  });
  mutations.push_back([](ChaosPlan* p) {
    if (p->tail_kind == 0 && p->tail_scale_ms == 0) return false;
    p->tail_kind = 0;
    p->tail_scale_ms = 0;
    return true;
  });
  mutations.push_back([](ChaosPlan* p) {
    if (p->slow_pm == 0 && p->slow_factor == 0) return false;
    p->slow_pm = 0;
    p->slow_factor = 0;
    return true;
  });
  mutations.push_back([](ChaosPlan* p) {
    bool changed = p->wnw;
    p->wnw = false;
    return changed;
  });
  mutations.push_back([](ChaosPlan* p) {
    bool changed = p->hedge;
    p->hedge = false;
    return changed;
  });
  mutations.push_back([](ChaosPlan* p) {
    bool changed = p->backoff;
    p->backoff = false;
    return changed;
  });
  mutations.push_back(
      [](ChaosPlan* p) { return ShrinkU32(&p->deadline_ms, 0); });

  // Rate halving (when outright removal did not preserve the failure).
  mutations.push_back([](ChaosPlan* p) { return HalveU32Toward(&p->drop_pm, 0); });
  mutations.push_back([](ChaosPlan* p) { return HalveU32Toward(&p->crash_pm, 0); });
  mutations.push_back(
      [](ChaosPlan* p) { return HalveU32Toward(&p->adversary_pm, 20); });
  mutations.push_back(
      [](ChaosPlan* p) { return HalveU32Toward(&p->churn_leave_pm, 1); });

  // Workload / world shrinking toward the generator floors.
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->retransmits, 0); });
  mutations.push_back(
      [](ChaosPlan* p) { return HalveU32Toward(&p->num_queries, 1); });
  mutations.push_back(
      [](ChaosPlan* p) { return HalveU32Toward(&p->phase1_peers, 8); });
  mutations.push_back(
      [](ChaosPlan* p) { return HalveU32Toward(&p->num_peers, 32); });
  mutations.push_back(
      [](ChaosPlan* p) { return HalveU32Toward(&p->tuples_per_peer, 5); });
  mutations.push_back([](ChaosPlan* p) { return ShrinkU32(&p->frame_ttl, 1); });
  mutations.push_back([](ChaosPlan* p) {
    bool changed = !p->batch_walkers || !p->reuse_frame;
    p->batch_walkers = true;  // Generator defaults = simplest configuration.
    p->reuse_frame = true;
    return changed;
  });

  return mutations;
}

}  // namespace

ShrinkOutcome ShrinkChaosPlan(const ChaosPlan& failing,
                              const PlanPredicate& still_fails,
                              size_t max_runs) {
  ShrinkOutcome outcome;
  outcome.plan = failing;
  // Fixpoint: sweep the whole candidate list; restart whenever a sweep
  // accepted anything (an accepted mutation can enable further ones, e.g.
  // clearing the last behavior bit unlocks deleting the coalition).
  bool progress = true;
  while (progress && outcome.runs < max_runs) {
    progress = false;
    for (const Mutation& mutate : BuildMutations(outcome.plan)) {
      if (outcome.runs >= max_runs) break;
      ChaosPlan candidate = outcome.plan;
      if (!mutate(&candidate)) continue;
      ++outcome.runs;
      if (still_fails(candidate)) {
        outcome.plan = candidate;
        ++outcome.accepted;
        progress = true;
      }
    }
  }
  return outcome;
}

ShrinkOutcome ShrinkChaosPlan(const ChaosPlan& failing, size_t max_runs) {
  return ShrinkChaosPlan(
      failing, [](const ChaosPlan& p) { return RunChaosPlan(p).failed(); },
      max_runs);
}

}  // namespace p2paqp::verify

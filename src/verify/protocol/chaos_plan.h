// Seed-deterministic chaos plans for the property-based protocol harness.
//
// A ChaosPlan is the *entire* input of one randomized protocol run: world
// shape, workload, engine choice, fault regime, churn regime and adversary
// coalition — every field derived from a single 64-bit seed, so a failing
// run is reproduced by its seed alone. Fields are kept integral (per-mille
// for probabilities) so the one-line text serialization round-trips exactly,
// bit for bit: a counterexample pasted from a CI log replays the identical
// run on any machine.
//
// The design follows the proptest layering (see SNIPPETS.md): generation,
// execution (runner.h), oracles (invariants.h, history_checker.h) and
// shrinking (shrink.h) are separate stages that all speak ChaosPlan.
#ifndef P2PAQP_VERIFY_PROTOCOL_CHAOS_PLAN_H_
#define P2PAQP_VERIFY_PROTOCOL_CHAOS_PLAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace p2paqp::verify {

// Which execution layer the plan drives.
enum class ChaosEngineKind : uint32_t {
  kScheduler = 0,  // Multi-query scheduler, shared sample frame.
  kTwoPhase = 1,   // Synchronous two-phase engine, one query at a time.
  kAsync = 2,      // Event-driven session with mid-query churn.
  kFlood = 3,      // BFS-flood baseline: reverse-path reply routing.
};

struct ChaosPlan {
  uint64_t seed = 0;

  // --- World ---------------------------------------------------------------
  uint32_t num_peers = 64;
  uint32_t avg_degree = 6;
  uint32_t tuples_per_peer = 20;
  uint32_t cluster_pct = 25;  // Partitioner cluster level, percent.
  uint32_t skew_pct = 20;     // Zipf skew, percent.

  // --- Workload ------------------------------------------------------------
  ChaosEngineKind engine = ChaosEngineKind::kScheduler;
  uint32_t num_queries = 2;
  uint32_t num_batches = 1;
  uint32_t phase1_peers = 16;
  uint32_t quorum_pct = 25;   // min_observation_quorum, percent.
  uint32_t retransmits = 2;
  uint32_t frame_ttl = 4;
  bool batch_walkers = true;
  bool reuse_frame = true;

  // --- Faults (per-mille probabilities) ------------------------------------
  uint32_t drop_pm = 0;
  uint32_t spike_pm = 0;
  uint32_t crash_pm = 0;
  // (at_message, peer) deterministic crashes; peer 0 (the sink) is invalid.
  std::vector<std::pair<uint32_t, uint32_t>> scheduled_crashes;

  // --- Churn between batches (per-mille per step) --------------------------
  uint32_t churn_leave_pm = 0;
  uint32_t churn_rejoin_pm = 0;
  uint32_t churn_steps = 0;  // Steps applied between consecutive batches.

  // --- Adversary -----------------------------------------------------------
  uint32_t adversary_pm = 0;   // Coalition fraction, per-mille.
  uint32_t behavior_mask = 0;  // Bit i = net::AdversaryBehavior(i) active.

  // --- Stragglers (heavy-tailed latency + resilience policy) ---------------
  uint32_t tail_kind = 0;      // 0=none, 1=Pareto, 2=lognormal.
  uint32_t tail_scale_ms = 0;  // Tail scale (Pareto x_m / lognormal scale).
  uint32_t slow_pm = 0;        // Slow-coalition fraction, per-mille.
  uint32_t slow_factor = 0;    // Coalition tardiness multiplier (0 = default).
  bool wnw = false;            // Walk-Not-Wait forking (+ health breaker).
  bool hedge = false;          // Hedged duplicate replies.
  bool backoff = false;        // Exponential backoff + jitter on retries.
  uint32_t deadline_ms = 0;    // Anytime-answer deadline (async engine only).

  bool straggler_enabled() const { return tail_kind != 0 || slow_pm > 0; }
  bool straggler_policy_enabled() const {
    return wnw || hedge || backoff || deadline_ms > 0;
  }
  bool faults_enabled() const {
    return drop_pm > 0 || spike_pm > 0 || crash_pm > 0 ||
           !scheduled_crashes.empty() || straggler_enabled();
  }
  bool churn_enabled() const {
    return churn_steps > 0 && (churn_leave_pm > 0 || churn_rejoin_pm > 0);
  }
  bool adversary_enabled() const {
    return adversary_pm > 0 && behavior_mask != 0;
  }
  // True when any adversarial behavior can bias the estimate (degree lies,
  // value corruption, hijacked selection, replayed quorum inflation) — such
  // plans are exempt from the unbiasedness envelope oracle.
  bool value_attack() const { return adversary_enabled(); }
};

// Derives a complete plan from one seed. Identical seeds yield identical
// plans on every platform (integer arithmetic only).
ChaosPlan GenerateChaosPlan(uint64_t seed);

// Number of active stressors: one per nonzero fault knob, one per scheduled
// crash, one for churn, one per adversary behavior bit, plus the workload
// surplus beyond the minimal one-query/one-batch run. The shrinker minimizes
// this; the seeded-bug acceptance test requires the shrunk counterexample to
// land at <= 5.
size_t PlanComplexity(const ChaosPlan& plan);

// One-line `key=value` serialization (space-separated, stable key order).
// SerializeChaosPlan(ParseChaosPlan(s)) == s for any line it produced.
std::string SerializeChaosPlan(const ChaosPlan& plan);
util::Result<ChaosPlan> ParseChaosPlan(const std::string& line);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_PROTOCOL_CHAOS_PLAN_H_

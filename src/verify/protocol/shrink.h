// Counterexample minimization for failing chaos plans.
//
// Classic property-testing shrinking, specialized to the plan structure: a
// greedy deterministic fixpoint that tries semantic simplifications (drop a
// scheduled crash, zero a fault rate, clear an adversary behavior bit,
// disable churn, collapse the workload to one query / one batch, shrink the
// world) and keeps a mutation if and only if the mutated plan STILL fails
// the predicate. The result is a locally-minimal plan: no single remaining
// simplification preserves the failure. Deterministic: same input plan +
// same predicate => same shrunk plan, always.
#ifndef P2PAQP_VERIFY_PROTOCOL_SHRINK_H_
#define P2PAQP_VERIFY_PROTOCOL_SHRINK_H_

#include <cstddef>
#include <functional>

#include "verify/protocol/chaos_plan.h"

namespace p2paqp::verify {

// True when the (mutated) plan still reproduces the failure being minimized.
using PlanPredicate = std::function<bool(const ChaosPlan&)>;

struct ShrinkOutcome {
  ChaosPlan plan;      // The minimized still-failing plan.
  size_t runs = 0;     // Predicate evaluations spent.
  size_t accepted = 0; // Mutations that preserved the failure.
};

// Minimizes `failing` under `still_fails` (which must hold for `failing`
// itself — the input is returned unchanged otherwise). `max_runs` bounds the
// total predicate evaluations; the fixpoint usually converges well before a
// couple hundred runs.
ShrinkOutcome ShrinkChaosPlan(const ChaosPlan& failing,
                              const PlanPredicate& still_fails,
                              size_t max_runs = 256);

// Convenience: minimizes under "RunChaosPlan(plan).failed()".
ShrinkOutcome ShrinkChaosPlan(const ChaosPlan& failing, size_t max_runs = 256);

}  // namespace p2paqp::verify

#endif  // P2PAQP_VERIFY_PROTOCOL_SHRINK_H_

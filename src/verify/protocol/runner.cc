#include "verify/protocol/runner.h"

#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "core/async_engine.h"
#include "core/baselines.h"
#include "core/catalog.h"
#include "core/hybrid.h"
#include "core/multi_query.h"
#include "core/two_phase.h"
#include "data/generator.h"
#include "data/partitioner.h"
#include "net/adversary.h"
#include "net/churn.h"
#include "net/fault.h"
#include "net/history.h"
#include "net/network.h"
#include "query/query.h"
#include "sampling/random_walk.h"
#include "topology/factory.h"
#include "util/rng.h"
#include "verify/protocol/history_checker.h"

namespace p2paqp::verify {

namespace {

// Distinct sub-seed domains so the topology / data / transport / fault /
// adversary / churn / query / run streams never alias each other.
constexpr uint64_t kTopoSalt = 0x746F706FULL;
constexpr uint64_t kDataSalt = 0x64617461ULL;
constexpr uint64_t kNetSalt = 0x6E657477ULL;
constexpr uint64_t kFaultSalt = 0x6661756CULL;
constexpr uint64_t kAdvSalt = 0x61647665ULL;
constexpr uint64_t kChurnSalt = 0x63687572ULL;
constexpr uint64_t kQuerySalt = 0x71756572ULL;
constexpr uint64_t kRunSalt = 0x6578656BULL;

uint64_t SubSeed(uint64_t seed, uint64_t salt) {
  return util::MixSeed(seed ^ salt);
}

// The fixed query sink; pinned against crashes, churn and the adversary so
// every failure the oracles see is a protocol property, not a dead sink.
constexpr graph::NodeId kSink = 0;

net::FaultPlan BuildFaultPlan(const ChaosPlan& plan) {
  net::FaultPlan fp;
  fp.drop_probability = plan.drop_pm / 1000.0;
  fp.spike_probability = plan.spike_pm / 1000.0;
  fp.crash_probability = plan.crash_pm / 1000.0;
  for (const auto& [at, peer] : plan.scheduled_crashes) {
    graph::NodeId id = peer % plan.num_peers;
    if (id == kSink) id = 1;
    fp.scheduled_crashes.push_back(net::ScheduledCrash{at, id});
  }
  fp.crash_immune = {kSink};
  if (plan.tail_kind == 1) fp.tail = net::LatencyTail::kPareto;
  if (plan.tail_kind == 2) fp.tail = net::LatencyTail::kLognormal;
  if (plan.tail_scale_ms > 0) fp.tail_scale_ms = plan.tail_scale_ms;
  fp.slow_fraction = plan.slow_pm / 1000.0;
  if (plan.slow_factor > 0) fp.slow_factor = plan.slow_factor;
  return fp;
}

net::AdversaryPlan BuildAdversaryPlan(const ChaosPlan& plan) {
  net::AdversaryPlan ap;
  ap.adversary_fraction = plan.adversary_pm / 1000.0;
  ap.immune = {kSink};
  // Canonical per-behavior knobs (net::AdversaryBehavior order); multiple
  // mask bits compose onto one coalition.
  if (plan.behavior_mask & (1u << 0)) ap.degree_factor = 4.0;
  if (plan.behavior_mask & (1u << 1)) ap.degree_factor = 0.25;
  if (plan.behavior_mask & (1u << 2)) ap.value_scale = -1.0;
  if (plan.behavior_mask & (1u << 3)) ap.value_scale = 10.0;
  if (plan.behavior_mask & (1u << 4)) {
    ap.outlier_probability = 0.5;
    ap.outlier_magnitude = 100.0;
  }
  if (plan.behavior_mask & (1u << 5)) ap.replay_copies = 3;
  if (plan.behavior_mask & (1u << 6)) ap.hijack_walk = true;
  return ap;
}

std::vector<query::AggregateQuery> BuildQueries(const ChaosPlan& plan) {
  util::Rng rng(SubSeed(plan.seed, kQuerySalt));
  std::vector<query::AggregateQuery> queries;
  queries.reserve(plan.num_queries);
  for (uint32_t i = 0; i < plan.num_queries; ++i) {
    query::AggregateQuery q;
    q.op = rng.Bernoulli(0.5) ? query::AggregateOp::kCount
                              : query::AggregateOp::kSum;
    data::Value lo = rng.UniformInt(1, 80);
    q.predicate = query::RangePredicate{lo, lo + rng.UniformInt(5, 20)};
    q.required_error = static_cast<double>(rng.UniformInt(15, 50)) / 100.0;
    queries.push_back(q);
  }
  return queries;
}

double ExactAnswer(const net::SimulatedNetwork& network,
                   const query::AggregateQuery& q) {
  if (q.op == query::AggregateOp::kCount) {
    return static_cast<double>(
        network.ExactCount(q.predicate.lo, q.predicate.hi));
  }
  return static_cast<double>(network.ExactSum(q.predicate.lo, q.predicate.hi));
}

double ExactTotal(const net::SimulatedNetwork& network,
                  const query::AggregateQuery& q) {
  if (q.op == query::AggregateOp::kCount) {
    return static_cast<double>(network.TotalTuples());
  }
  return static_cast<double>(
      network.ExactSum(std::numeric_limits<data::Value>::min(),
                       std::numeric_limits<data::Value>::max()));
}

// --- FNV-1a replay digest --------------------------------------------------

class Fnv1a {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
    }
  }
  void MixDouble(double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    Mix(bits);
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

uint64_t ComputeDigest(const std::vector<AnswerRecord>& answers,
                       const net::CostSnapshot& cost,
                       const std::vector<net::HistoryEvent>& events) {
  Fnv1a h;
  for (const AnswerRecord& r : answers) {
    h.Mix(r.query_index);
    h.Mix(r.batch_index);
    h.Mix(r.ok ? 1 : 0);
    if (!r.ok) continue;
    h.MixDouble(r.answer.estimate);
    h.MixDouble(r.answer.ci_half_width_95);
    h.MixDouble(r.answer.variance);
    h.Mix(r.answer.phase1_peers);
    h.Mix(r.answer.phase2_peers);
    h.Mix(r.answer.observations_lost);
    h.Mix(r.answer.degraded ? 1 : 0);
  }
  h.Mix(cost.messages);
  h.Mix(cost.messages_delivered);
  h.Mix(cost.messages_dropped);
  h.Mix(cost.bytes_shipped);
  h.Mix(cost.walker_hops);
  for (const net::HistoryEvent& e : events) {
    h.Mix(static_cast<uint64_t>(e.kind));
    h.Mix(static_cast<uint64_t>(e.type));
    h.Mix(e.from);
    h.Mix(e.to);
    h.Mix(e.batch);
    h.Mix(e.tag);
  }
  return h.hash();
}

void Fail(ChaosRunReport* report, const std::string& what) {
  report->violations.push_back(what);
}

}  // namespace

ChaosRunReport RunChaosPlan(const ChaosPlan& plan) {
  ChaosRunReport report;
  report.plan = plan;

  // --- World ---------------------------------------------------------------
  topology::TopologyConfig topo;
  topo.kind = topology::TopologyKind::kClustered;
  topo.num_nodes = plan.num_peers;
  topo.num_edges =
      static_cast<size_t>(plan.num_peers) * plan.avg_degree / 2;
  topo.num_subgraphs = 2;
  topo.cut_edges = std::max<size_t>(2, topo.num_edges / 20);
  util::Rng topo_rng(SubSeed(plan.seed, kTopoSalt));
  auto topo_result = topology::MakeTopology(topo, topo_rng);
  if (!topo_result.ok()) {
    Fail(&report, "world construction failed (topology): " +
                      topo_result.status().message());
    return report;
  }

  data::DatasetParams dataset;
  dataset.num_tuples =
      static_cast<size_t>(plan.num_peers) * plan.tuples_per_peer;
  dataset.skew = plan.skew_pct / 100.0;
  util::Rng data_rng(SubSeed(plan.seed, kDataSalt));
  auto table = data::GenerateDataset(dataset, data_rng);
  if (!table.ok()) {
    Fail(&report,
         "world construction failed (dataset): " + table.status().message());
    return report;
  }
  data::PartitionParams partition;
  partition.cluster_level = plan.cluster_pct / 100.0;
  partition.bfs_root = kSink;
  auto databases = data::PartitionAcrossPeers(*table, topo_result->graph,
                                              partition, data_rng);
  if (!databases.ok()) {
    Fail(&report, "world construction failed (partition): " +
                      databases.status().message());
    return report;
  }

  // Cheap exact-count catalog (no spectral pass): the paper pins j anyway.
  core::SystemCatalog catalog =
      core::MakeCatalog(topo_result->graph, /*jump=*/4, /*burn_in=*/24);

  auto network_result = net::SimulatedNetwork::Make(
      std::move(topo_result->graph), std::move(*databases), net::NetworkParams{},
      SubSeed(plan.seed, kNetSalt));
  if (!network_result.ok()) {
    Fail(&report, "world construction failed (network): " +
                      network_result.status().message());
    return report;
  }
  net::SimulatedNetwork network = std::move(*network_result);

  net::HistoryRecorder history;
  network.set_history(&history);
  if (plan.faults_enabled()) {
    network.InstallFaultPlan(BuildFaultPlan(plan),
                             SubSeed(plan.seed, kFaultSalt));
  }
  if (plan.adversary_enabled()) {
    network.InstallAdversaryPlan(BuildAdversaryPlan(plan),
                                 SubSeed(plan.seed, kAdvSalt));
  }
  net::ChurnParams churn_params;
  churn_params.leave_probability = plan.churn_leave_pm / 1000.0;
  churn_params.rejoin_probability = plan.churn_rejoin_pm / 1000.0;
  churn_params.pinned = {kSink};
  net::ChurnModel churn(churn_params, SubSeed(plan.seed, kChurnSalt));

  // --- Workload ------------------------------------------------------------
  std::vector<query::AggregateQuery> queries = BuildQueries(plan);

  core::EngineParams engine;
  engine.phase1_peers = plan.phase1_peers;
  engine.tuples_per_peer = plan.tuples_per_peer;
  engine.cv_repeats = 6;
  engine.reply_retransmits = plan.retransmits;
  engine.min_observation_quorum = plan.quorum_pct / 100.0;
  engine.straggler.walk_not_wait = plan.wnw;
  engine.straggler.health_tracking = plan.wnw;  // Breaker rides with WNW.
  engine.straggler.hedged_replies = plan.hedge;
  engine.straggler.exponential_backoff = plan.backoff;
  engine.deadline_ms = plan.deadline_ms;  // Async engine only; others ignore.

  sampling::WalkParams walk;
  walk.jump = 4;
  walk.burn_in = 24;

  util::Rng run_rng(SubSeed(plan.seed, kRunSalt));
  std::vector<FrameBatchRecord> frame_batches;

  // Long-lived execution state (scheduler variants keep the frame and the
  // epoch clock across batches).
  core::FreshnessCache cache(plan.frame_ttl);
  core::SchedulerParams sched_params;
  sched_params.engine = engine;
  sched_params.walk = walk;
  sched_params.frame_ttl_epochs = plan.frame_ttl;
  sched_params.batch_walkers = plan.batch_walkers;
  sched_params.reuse_frame = plan.reuse_frame;
  core::QueryScheduler scheduler(&network, catalog, sched_params, &cache);
  core::TwoPhaseEngine two_phase(&network, catalog, engine);
  core::AsyncParams async_params;
  async_params.engine = engine;
  async_params.walkers = 2;
  async_params.walk = walk;
  if (plan.churn_enabled()) {
    async_params.churn = &churn;
    async_params.churn_interval_ms = 40.0;
  }
  core::AsyncQuerySession async(&network, catalog, async_params);
  // BFS-flood baseline: the two-phase plan fed by FloodCollect samples, so
  // the chaos sweep exercises the reverse-path reply routing (per-hop
  // QueryHit sends the history checker audits for causality).
  std::unique_ptr<core::TwoPhaseEngine> flood = core::MakeBaselineEngine(
      &network, catalog, engine, core::BaselineKind::kBfs);

  for (uint32_t batch = 0; batch < plan.num_batches; ++batch) {
    std::vector<double> truth_before(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      truth_before[q] = ExactAnswer(network, queries[q]);
    }

    std::vector<util::Result<core::ApproximateAnswer>> answers;
    switch (plan.engine) {
      case ChaosEngineKind::kScheduler: {
        FrameBatchRecord fb;
        fb.batch_index = batch;
        fb.frame_before = scheduler.frame_size();
        core::BatchResult result =
            scheduler.ExecuteBatch(queries, kSink, run_rng);
        fb.carry = scheduler.batch_carry();
        fb.frame_after = scheduler.frame_size();
        fb.stats = result.frame;
        frame_batches.push_back(fb);
        answers = std::move(result.answers);
        break;
      }
      case ChaosEngineKind::kTwoPhase: {
        for (const query::AggregateQuery& q : queries) {
          answers.push_back(two_phase.Execute(q, kSink, run_rng));
        }
        break;
      }
      case ChaosEngineKind::kAsync: {
        for (const query::AggregateQuery& q : queries) {
          auto r = async.Execute(q, kSink, run_rng);
          if (r.ok()) {
            answers.push_back(std::move(r->answer));
          } else {
            answers.push_back(r.status());
          }
        }
        break;
      }
      case ChaosEngineKind::kFlood: {
        for (const query::AggregateQuery& q : queries) {
          answers.push_back(flood->Execute(q, kSink, run_rng));
        }
        break;
      }
    }

    for (size_t q = 0; q < queries.size(); ++q) {
      AnswerRecord record;
      record.query_index = q;
      record.batch_index = batch;
      record.truth_before = truth_before[q];
      record.truth_after = ExactAnswer(network, queries[q]);
      record.truth_total = ExactTotal(network, queries[q]);
      if (q < answers.size() && answers[q].ok()) {
        record.ok = true;
        record.answer = *answers[q];
        ++report.answers_ok;
      } else {
        record.ok = false;
        record.error = q < answers.size() ? answers[q].status().message()
                                          : "no answer produced";
        ++report.answers_failed;
      }
      report.answers.push_back(std::move(record));
    }

    // Inter-batch world evolution: churn epochs plus one data-churn tick on
    // the freshness clock (drives frame TTL expiry in the scheduler).
    if (batch + 1 < plan.num_batches) {
      if (plan.churn_enabled()) {
        for (uint32_t s = 0; s < plan.churn_steps; ++s) churn.Step(network);
      }
      cache.AdvanceEpoch();
    }
  }

  // --- Oracles -------------------------------------------------------------
  for (std::string& v : CheckAnswerInvariants(plan, report.answers)) {
    report.violations.push_back(std::move(v));
  }
  if (plan.engine == ChaosEngineKind::kScheduler) {
    for (std::string& v : CheckFrameAccounting(plan, frame_batches)) {
      report.violations.push_back(std::move(v));
    }
  }
  for (std::string& v : CheckCostConservation(
           network.cost_snapshot(),
           history.Count(net::HistoryEventKind::kSend),
           history.Count(net::HistoryEventKind::kDeliver),
           history.Count(net::HistoryEventKind::kDrop))) {
    report.violations.push_back(std::move(v));
  }
  for (std::string& v : CheckHistory(history.events())) {
    report.violations.push_back(std::move(v));
  }

  report.history_events = history.size();
  report.digest =
      ComputeDigest(report.answers, network.cost_snapshot(), history.events());
  network.set_history(nullptr);
  return report;
}

}  // namespace p2paqp::verify

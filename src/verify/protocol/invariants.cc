#include "verify/protocol/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace p2paqp::verify {

namespace {

constexpr double kZ95 = 1.959963984540054;

std::string Describe(const AnswerRecord& record, const std::string& rule) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: query=%llu batch=%llu", rule.c_str(),
                static_cast<unsigned long long>(record.query_index),
                static_cast<unsigned long long>(record.batch_index));
  return buf;
}

}  // namespace

std::vector<std::string> CheckAnswerInvariants(
    const ChaosPlan& plan, const std::vector<AnswerRecord>& answers) {
  std::vector<std::string> violations;
  const bool calm = !plan.faults_enabled() && !plan.churn_enabled() &&
                    !plan.adversary_enabled();
  const size_t quorum1 = static_cast<size_t>(
      std::ceil(plan.quorum_pct / 100.0 *
                static_cast<double>(plan.phase1_peers)));
  for (const AnswerRecord& record : answers) {
    if (!record.ok) {
      // Failure isolation: a plan with no stressor of any kind must answer
      // every query (any failure is a protocol bug, not bad luck).
      if (calm) {
        violations.push_back(
            Describe(record, "query failed on a stressor-free plan") + " (" +
            record.error + ")");
      }
      continue;
    }
    const core::ApproximateAnswer& a = record.answer;
    // Quorum honored: the phase-I request size is the plan's m for every
    // engine, so a successful answer must report at least the quorum floor
    // of delivered phase-I observations. Catches kSkipQuorumCheck.
    // Deadline-degraded anytime answers are exempt: returning whatever
    // arrived by the deadline is exactly their contract.
    if (a.phase1_peers < quorum1 && !a.deadline_hit) {
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    " (phase1 delivered %zu < quorum %zu of m=%u)",
                    a.phase1_peers, quorum1, plan.phase1_peers);
      violations.push_back(
          Describe(record, "answer accepted below observation quorum") + buf);
    }
    // Degraded-answer CI monotonicity: loss must never shrink the interval
    // below the plain normal CI of the reported variance.
    double base_ci = kZ95 * std::sqrt(std::max(a.variance, 0.0));
    if (a.observations_lost > 0 && a.ci_half_width_95 < base_ci * (1 - 1e-9)) {
      violations.push_back(Describe(
          record, "degraded answer narrowed its CI below the base interval"));
    }
    if (a.observations_lost > 0 && !a.degraded) {
      violations.push_back(
          Describe(record, "lost observations but degraded flag not set"));
    }
    // Unbiasedness envelope, non-Byzantine plans only: the estimate must
    // land within a generous band around the exact answer (either vintage:
    // churn legitimately moves the truth mid-run). The band is deliberately
    // loose — 10 half-widths plus 60% of the total-aggregate scale — so it
    // never flags honest sampling noise, only gross corruption such as
    // double-counted duplicate replies.
    // The BFS-flood baseline is exempt too: it is biased by design (it sees
    // only the sink's data cluster — the paper's Fig. 7 point), so its
    // estimates legitimately stray on clustered worlds while the protocol
    // itself stays sound.
    // Anytime answers are exempt as well: an estimate cut off at the
    // deadline can rest on a handful of observations, whose honest
    // sampling noise dwarfs the band.
    // So are zero-variance answers: the sample degenerated to identical
    // observations (in practice a short walk trapped in a tight
    // neighborhood, replaying one peer into the whole frame), the CI term
    // contributes no slack, and a handful of identical Horvitz-Thompson
    // observations carries no corruption signal — the envelope is
    // uninformative there, not violated. Duplicate-counting corruption is
    // still caught by the history checker's dedup-tag rules.
    if (!plan.value_attack() && plan.engine != ChaosEngineKind::kFlood &&
        !a.deadline_hit && a.variance > 0.0) {
      double err = std::min(std::fabs(a.estimate - record.truth_before),
                            std::fabs(a.estimate - record.truth_after));
      double scale = std::max({std::fabs(record.truth_total),
                               std::fabs(record.truth_before), 1.0});
      double band = 10.0 * a.ci_half_width_95 + 0.6 * scale;
      if (err > band) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      " (estimate=%.1f truth=%.1f/%.1f band=%.1f)",
                      a.estimate, record.truth_before, record.truth_after,
                      band);
        violations.push_back(
            Describe(record, "estimate outside the unbiasedness envelope") +
            buf);
      }
    }
  }
  return violations;
}

std::vector<std::string> CheckFrameAccounting(
    const ChaosPlan& plan, const std::vector<FrameBatchRecord>& batches) {
  std::vector<std::string> violations;
  for (const FrameBatchRecord& b : batches) {
    char buf[192];
    // Hits are selections reused from earlier batches; there can never be
    // more of them than the batch carried in. Catches kDoubleCountFrameHits.
    if (b.stats.frame_hits > b.carry) {
      std::snprintf(buf, sizeof(buf),
                    "frame hits exceed carried selections: batch=%llu "
                    "hits=%zu carry=%zu",
                    static_cast<unsigned long long>(b.batch_index),
                    b.stats.frame_hits, b.carry);
      violations.push_back(buf);
    }
    // Top-up conservation: the frame grows by exactly the fresh selections
    // recorded as misses (the carry after expiry plus misses is the final
    // size; nothing else may append).
    if (b.frame_after != b.carry + b.stats.frame_misses) {
      std::snprintf(buf, sizeof(buf),
                    "frame growth mismatch: batch=%llu carry=%zu misses=%zu "
                    "final=%zu",
                    static_cast<unsigned long long>(b.batch_index), b.carry,
                    b.stats.frame_misses, b.frame_after);
      violations.push_back(buf);
    }
    // A plan that discards the frame between batches must never report hits.
    if (!plan.reuse_frame && b.stats.frame_hits > 0) {
      std::snprintf(buf, sizeof(buf),
                    "frame hits on a reuse-disabled plan: batch=%llu hits=%zu",
                    static_cast<unsigned long long>(b.batch_index),
                    b.stats.frame_hits);
      violations.push_back(buf);
    }
  }
  return violations;
}

std::vector<std::string> CheckCostConservation(
    const net::CostSnapshot& delta, uint64_t history_sends,
    uint64_t history_delivers, uint64_t history_drops) {
  std::vector<std::string> violations;
  char buf[192];
  if (!delta.MessagesConserve()) {
    std::snprintf(buf, sizeof(buf),
                  "cost ledger broken: %llu messages vs %llu delivered + "
                  "%llu dropped",
                  static_cast<unsigned long long>(delta.messages),
                  static_cast<unsigned long long>(delta.messages_delivered),
                  static_cast<unsigned long long>(delta.messages_dropped));
    violations.push_back(buf);
  }
  if (history_sends != delta.messages) {
    std::snprintf(buf, sizeof(buf),
                  "history/ledger disagree on sends: %llu events vs %llu "
                  "charged messages",
                  static_cast<unsigned long long>(history_sends),
                  static_cast<unsigned long long>(delta.messages));
    violations.push_back(buf);
  }
  if (history_delivers != delta.messages_delivered ||
      history_drops != delta.messages_dropped) {
    std::snprintf(
        buf, sizeof(buf),
        "history/ledger disagree on outcomes: %llu/%llu events vs %llu/%llu",
        static_cast<unsigned long long>(history_delivers),
        static_cast<unsigned long long>(history_drops),
        static_cast<unsigned long long>(delta.messages_delivered),
        static_cast<unsigned long long>(delta.messages_dropped));
    violations.push_back(buf);
  }
  return violations;
}

}  // namespace p2paqp::verify

#include "verify/replicate.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/rng.h"

namespace p2paqp::verify {

ReplicateMode StatMode() {
  const char* env = std::getenv("P2PAQP_STAT_MODE");
  if (env != nullptr && std::strcmp(env, "full") == 0) {
    return ReplicateMode::kFull;
  }
  return ReplicateMode::kSmoke;
}

size_t Replicates(size_t smoke, size_t full) {
  return StatMode() == ReplicateMode::kFull ? full : smoke;
}

uint64_t ReplicateSeed(uint64_t base_seed, size_t replicate) {
  // Golden-ratio stride keeps the streams far apart; MixSeed decorrelates
  // the mt19937 initialization.
  return util::MixSeed(base_seed +
                       0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(replicate) + 1));
}

void CalibrationAccumulator::Add(const EstimateSample& sample) {
  double err = sample.estimate - sample.truth;
  errors_.Add(err);
  estimates_.Add(sample.estimate);
  squared_errors_.Add(err * err);
  if (std::fabs(err) <= sample.ci_half_width) ++covered_;
}

}  // namespace p2paqp::verify

#include "net/peer.h"

#include <cstdio>

namespace p2paqp::net {

PeerCapabilities RandomCapabilities(util::Rng& rng) {
  PeerCapabilities caps;
  caps.cpu_ghz = rng.UniformDouble(0.3, 3.2);
  caps.memory_mb = static_cast<uint32_t>(rng.UniformInt(64, 2048));
  caps.disk_gb = static_cast<uint32_t>(rng.UniformInt(4, 250));
  // Mix of dial-up, DSL and LAN peers, as in early-2000s Gnutella crawls.
  static constexpr uint32_t kTiers[] = {56, 128, 768, 1500, 10000};
  caps.bandwidth_kbps = kTiers[rng.UniformIndex(5)];
  caps.max_connections = static_cast<uint16_t>(rng.UniformInt(4, 32));
  return caps;
}

std::string Peer::address() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (ipv4_ >> 24) & 0xff,
                (ipv4_ >> 16) & 0xff, (ipv4_ >> 8) & 0xff, ipv4_ & 0xff,
                port_);
  return buf;
}

}  // namespace p2paqp::net

// Minimal discrete-event scheduler with a simulated clock.
//
// The synchronous SimulatedNetwork charges latency as a running sum, which
// models a single sequential walker. For concurrent activity — parallel
// walkers, overlapping local scans, replies in flight while the walk
// continues — the event queue executes callbacks in simulated-time order so
// the *makespan* falls out naturally. Used by core::AsyncQuerySession and
// core::QueryScheduler.
//
// The event core is allocation-free on the steady state and sized for deep
// pending sets:
//
//  * Callbacks live in PER-SHARD slabs of reusable slots (a freed slot is
//    recycled before its slab grows), so the ordering structures below move
//    16-byte POD handles instead of closures, and each shard's pops touch
//    only its own slab pages. A slot stores its closure inline
//    (net/inline_callback.h): steady-state scheduling performs no heap
//    allocation at all.
//  * Ordering is two-tier, LSM-style: fresh events enter a small 4-ary
//    min-heap; when the heap outgrows a cache-resident threshold it is
//    sorted and merged into a descending-sorted far array popped from the
//    back. Pop compares heap-min against sorted-back, so the earliest
//    pending event is always O(1)-visible and a million-deep backlog costs
//    sequential merges instead of a pointer-chasing sift per pop.
//  * The two tiers are SHARDED: events round-robin (by sequence number)
//    across S partitions, where S derives from the P2PAQP_THREADS knob
//    (clamped to a power of two in [1, 16]). Each shard keeps its own
//    near-heap, far array, and slab, so a flush merges into a far array
//    1/S the size — a million-peer backlog pays S-fold less merge traffic —
//    and pop takes the global minimum across the S shard heads.
//  * Homogeneous hot events can skip the closure entirely: ScheduleStep
//    stores just a (StepHandler*, uint32_t) pair, and RunOne gathers every
//    simultaneous pending step bound for the same handler into one
//    RunSteps(args, n) call — the batched walker-step kernel iterates SoA
//    walker state instead of re-entering the dispatch loop per walker.
//
// Pop order depends only on the strict (time, sequence) total order — never
// on flush timing or the shard count — so execution is bit-identical for
// any P2PAQP_THREADS setting and simultaneous events run FIFO. Step
// batching preserves this exactly: a batch is the maximal run of
// consecutive pops with equal time and equal handler, args are delivered in
// pop order, and anything a step schedules carries a later sequence than
// every member of its batch — so RunSteps(args, n) is observationally
// identical to n sequential RunOne calls. See bench/micro_benchmarks.cc
// (BM_EventQueue* vs BM_EventQueueLegacy*) for the throughput comparison
// against the previous std::priority_queue implementation, and
// docs/PERFORMANCE.md for the sharding and batching design.
#ifndef P2PAQP_NET_EVENT_SIM_H_
#define P2PAQP_NET_EVENT_SIM_H_

#include <cstdint>
#include <vector>

#include "net/inline_callback.h"
#include "util/logging.h"

namespace p2paqp::net {

// Receiver for batched homogeneous events (see ScheduleStep). One handler
// instance represents one kind of hot event — e.g. "advance walker #arg" —
// and RunSteps is handed every simultaneous pending arg in schedule order.
class StepHandler {
 public:
  virtual ~StepHandler() = default;

  // Processes `n` simultaneous events in order. `args` is only valid for
  // the duration of the call. Steps may schedule further events (including
  // more steps); those run after this batch.
  virtual void RunSteps(const uint32_t* args, size_t n) = 0;
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  // Shard count resolved from P2PAQP_THREADS at construction (see
  // ResolveShards); pass `shards` explicitly to pin it in tests.
  EventQueue();
  explicit EventQueue(size_t shards);

  // The shard count a default-constructed queue resolves right now: the
  // power-of-two clamp of P2PAQP_THREADS into [1, 16]. Exposed so bench
  // telemetry can record the worker width the measurement actually used
  // (bench/scale_world.cc's `threads` field) without constructing a queue.
  static size_t ResolvedShards() { return ResolveShards(); }

  double now() const { return now_; }
  size_t pending() const;
  uint64_t executed() const { return executed_; }
  size_t num_shards() const { return shards_.size(); }

  // Schedules `callback` at absolute simulated time `at` (>= now).
  void ScheduleAt(double at, Callback callback);

  // Schedules `callback` `delay` ms from the current simulated time.
  void ScheduleAfter(double delay, Callback callback) {
    P2PAQP_CHECK_GE(delay, 0.0);
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Schedules a typed step event: at time `at`, `handler->RunSteps` receives
  // `arg` — batched together with every other simultaneous step bound for
  // the same handler. `handler` must outlive the event.
  void ScheduleStepAt(double at, StepHandler* handler, uint32_t arg);

  void ScheduleStepAfter(double delay, StepHandler* handler, uint32_t arg) {
    P2PAQP_CHECK_GE(delay, 0.0);
    ScheduleStepAt(now_ + delay, handler, arg);
  }

  // Pops and executes the earliest event — or, for a step event, the
  // maximal batch of simultaneous same-handler steps. Returns false when
  // idle.
  bool RunOne();

  // Drains the queue (events may schedule more events); returns the final
  // simulated time. `max_events` guards against runaway cascades.
  double RunUntilEmpty(uint64_t max_events = 100000000);

  // Pre-sizes the slabs and ordering tiers for `events` simultaneous
  // pending events so not even the warm-up allocates.
  void Reserve(size_t events);

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  // The handle key packs (sequence << 24) | slot: the low bits address the
  // owning shard's callback slab (16M simultaneous events per shard), the
  // high bits are the FIFO tie-break for simultaneous events (2^40
  // scheduled events per queue). The owning shard is sequence & shard_mask_,
  // so a handle alone pins down its slab slot.
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  // Near-heap size at which a shard is merged into its sorted far array.
  // 64k 16-byte handles = 1 MiB: L2-resident, so near-term sifts stay
  // cheap. Per shard, so deep backlogs flush at the same cadence as the
  // unsharded core but merge into a far array 1/S the size.
  static constexpr size_t kFlushThreshold = size_t{1} << 16;
  static constexpr size_t kMaxShards = 16;

  // Small heap handle: ordering key only, the callback stays in its slab
  // slot. Strictly totally ordered (sequences are unique).
  struct Handle {
    double at;
    uint64_t key;
  };

  // Slab slot: a reusable callback — or, for step events, a
  // (handler, arg) pair with no closure at all — plus the free-list link.
  struct Slot {
    Callback callback;
    StepHandler* handler = nullptr;
    uint32_t arg = 0;
    uint32_t next_free = kNoSlot;
  };

  // One partition: the two-tier ordering structure plus its own slab, so a
  // shard's schedule/pop traffic stays within its own pages (and, with
  // shard-affine pool workers, its own NUMA node).
  struct Shard {
    std::vector<Handle> heap;     // Near tier: flat 4-ary min-heap.
    std::vector<Handle> sorted;   // Far tier: sorted descending.
    std::vector<Handle> scratch;  // Merge buffer, reused across flushes.
    std::vector<Slot> slab;       // Callback storage, free-list recycled.
    uint32_t free_head = kNoSlot;
  };

  static bool Earlier(const Handle& a, const Handle& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }
  // Descending order for the far array (earliest at the back).
  static bool Later(const Handle& a, const Handle& b) { return Earlier(b, a); }

  static size_t ResolveShards();

  uint32_t AcquireSlot(Shard& shard);
  void ReleaseSlot(Shard& shard, uint32_t slot);
  void Push(double at, Shard& shard, uint32_t slot);
  void SiftUp(Shard& shard, size_t index);
  void SiftDown(Shard& shard, size_t index);
  Handle PopHeap(Shard& shard);
  // Sorts the shard's near heap and merges it into its sorted far array.
  void Flush(Shard& shard);
  // Earliest event of one shard (heap-min vs sorted-back); returns false
  // when the shard is empty. `from_heap` reports which tier holds it.
  bool PeekShard(const Shard& shard, Handle* out, bool* from_heap) const;
  // Earliest event across all shards; returns false when idle.
  bool PeekGlobal(Handle* out, size_t* shard, bool* from_heap) const;
  void PopFrom(size_t shard, bool from_heap);

  std::vector<Shard> shards_;
  uint64_t shard_mask_ = 0;  // shards_.size() - 1 (power of two).
  std::vector<uint32_t> step_args_;  // Batch gather scratch, reused.
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_EVENT_SIM_H_

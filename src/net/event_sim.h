// Minimal discrete-event scheduler with a simulated clock.
//
// The synchronous SimulatedNetwork charges latency as a running sum, which
// models a single sequential walker. For concurrent activity — parallel
// walkers, overlapping local scans, replies in flight while the walk
// continues — the event queue executes callbacks in simulated-time order so
// the *makespan* falls out naturally. Used by core::AsyncQuerySession.
#ifndef P2PAQP_NET_EVENT_SIM_H_
#define P2PAQP_NET_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace p2paqp::net {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }
  size_t pending() const { return heap_.size(); }
  uint64_t executed() const { return executed_; }

  // Schedules `callback` at absolute simulated time `at` (>= now).
  void ScheduleAt(double at, Callback callback);

  // Schedules `callback` `delay` ms from the current simulated time.
  void ScheduleAfter(double delay, Callback callback) {
    P2PAQP_CHECK_GE(delay, 0.0);
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Pops and executes the earliest event; returns false when idle.
  bool RunOne();

  // Drains the queue (events may schedule more events); returns the final
  // simulated time. `max_events` guards against runaway cascades.
  double RunUntilEmpty(uint64_t max_events = 100000000);

 private:
  struct Event {
    double at;
    uint64_t sequence;  // FIFO tie-break for simultaneous events.
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_EVENT_SIM_H_

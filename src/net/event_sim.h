// Minimal discrete-event scheduler with a simulated clock.
//
// The synchronous SimulatedNetwork charges latency as a running sum, which
// models a single sequential walker. For concurrent activity — parallel
// walkers, overlapping local scans, replies in flight while the walk
// continues — the event queue executes callbacks in simulated-time order so
// the *makespan* falls out naturally. Used by core::AsyncQuerySession and
// core::QueryScheduler.
//
// The event core is allocation-free on the steady state and sized for deep
// pending sets:
//
//  * Callbacks live in a slab of reusable slots (a freed slot is recycled
//    before the slab grows), so the ordering structures below move 16-byte
//    POD handles instead of std::function objects.
//  * Ordering is two-tier, LSM-style: fresh events enter a small 4-ary
//    min-heap; when the heap outgrows a cache-resident threshold it is
//    sorted and merged into a descending-sorted far array popped from the
//    back. Pop compares heap-min against sorted-back, so the earliest
//    pending event is always O(1)-visible and a million-deep backlog costs
//    sequential merges instead of a pointer-chasing sift per pop.
//  * The two tiers are SHARDED: events round-robin (by sequence number)
//    across S partitions, where S derives from the P2PAQP_THREADS knob
//    (clamped to a power of two in [1, 16]). Each shard keeps its own
//    near-heap and far array, so a flush merges into a far array 1/S the
//    size — a million-peer backlog pays S-fold less merge traffic — and
//    pop takes the global minimum across the S shard heads.
//
// Pop order depends only on the strict (time, sequence) total order — never
// on flush timing or the shard count — so execution is bit-identical for
// any P2PAQP_THREADS setting and simultaneous events run FIFO. See
// bench/micro_benchmarks.cc (BM_EventQueue* vs BM_EventQueueLegacy*) for
// the throughput comparison against the previous std::priority_queue
// implementation, and docs/PERFORMANCE.md for the sharding design.
#ifndef P2PAQP_NET_EVENT_SIM_H_
#define P2PAQP_NET_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/logging.h"

namespace p2paqp::net {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Shard count resolved from P2PAQP_THREADS at construction (see
  // ResolveShards); pass `shards` explicitly to pin it in tests.
  EventQueue();
  explicit EventQueue(size_t shards);

  double now() const { return now_; }
  size_t pending() const;
  uint64_t executed() const { return executed_; }
  size_t num_shards() const { return shards_.size(); }

  // Schedules `callback` at absolute simulated time `at` (>= now).
  void ScheduleAt(double at, Callback callback);

  // Schedules `callback` `delay` ms from the current simulated time.
  void ScheduleAfter(double delay, Callback callback) {
    P2PAQP_CHECK_GE(delay, 0.0);
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Pops and executes the earliest event; returns false when idle.
  bool RunOne();

  // Drains the queue (events may schedule more events); returns the final
  // simulated time. `max_events` guards against runaway cascades.
  double RunUntilEmpty(uint64_t max_events = 100000000);

  // Pre-sizes the slab and ordering tiers for `events` simultaneous pending
  // events so not even the warm-up allocates.
  void Reserve(size_t events);

 private:
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  // The handle key packs (sequence << 24) | slot: the low bits address the
  // callback slab (16M simultaneous events), the high bits are the FIFO
  // tie-break for simultaneous events (2^40 scheduled events per queue).
  static constexpr uint32_t kSlotBits = 24;
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  // Near-heap size at which a shard is merged into its sorted far array.
  // 64k 16-byte handles = 1 MiB: L2-resident, so near-term sifts stay
  // cheap. Per shard, so deep backlogs flush at the same cadence as the
  // unsharded core but merge into a far array 1/S the size.
  static constexpr size_t kFlushThreshold = size_t{1} << 16;
  static constexpr size_t kMaxShards = 16;

  // Small heap handle: ordering key only, the callback stays in its slab
  // slot. Strictly totally ordered (sequences are unique).
  struct Handle {
    double at;
    uint64_t key;
  };

  // One partition of the two-tier ordering structure.
  struct Shard {
    std::vector<Handle> heap;     // Near tier: flat 4-ary min-heap.
    std::vector<Handle> sorted;   // Far tier: sorted descending.
    std::vector<Handle> scratch;  // Merge buffer, reused across flushes.
  };

  static bool Earlier(const Handle& a, const Handle& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }
  // Descending order for the far array (earliest at the back).
  static bool Later(const Handle& a, const Handle& b) { return Earlier(b, a); }

  // Slab slot: a reusable callback plus the free-list link.
  struct Slot {
    Callback callback;
    uint32_t next_free = kNoSlot;
  };

  static size_t ResolveShards();

  uint32_t AcquireSlot(Callback callback);
  void ReleaseSlot(uint32_t slot);
  void SiftUp(Shard& shard, size_t index);
  void SiftDown(Shard& shard, size_t index);
  Handle PopHeap(Shard& shard);
  // Sorts the shard's near heap and merges it into its sorted far array.
  void Flush(Shard& shard);
  // Earliest event of one shard (heap-min vs sorted-back); returns false
  // when the shard is empty. `from_heap` reports which tier holds it.
  bool PeekShard(const Shard& shard, Handle* out, bool* from_heap) const;

  std::vector<Slot> slab_;
  uint32_t free_head_ = kNoSlot;
  std::vector<Shard> shards_;
  uint64_t shard_mask_ = 0;  // shards_.size() - 1 (power of two).
  double now_ = 0.0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_EVENT_SIM_H_

#include "net/history.h"

#include <cstdio>

#include "util/rng.h"

namespace p2paqp::net {

const char* HistoryEventKindToString(HistoryEventKind kind) {
  switch (kind) {
    case HistoryEventKind::kSend:
      return "send";
    case HistoryEventKind::kDeliver:
      return "deliver";
    case HistoryEventKind::kDrop:
      return "drop";
    case HistoryEventKind::kTimeout:
      return "timeout";
    case HistoryEventKind::kRetransmit:
      return "retransmit";
    case HistoryEventKind::kPeerDown:
      return "peer_down";
    case HistoryEventKind::kPeerUp:
      return "peer_up";
    case HistoryEventKind::kExpire:
      return "expire";
    case HistoryEventKind::kDedupAccept:
      return "dedup_accept";
    case HistoryEventKind::kDedupDrop:
      return "dedup_drop";
    case HistoryEventKind::kHedgeDue:
      return "hedge_due";
    case HistoryEventKind::kHedge:
      return "hedge";
    case HistoryEventKind::kStragglerSkip:
      return "straggler_skip";
  }
  return "unknown";
}

uint64_t DedupTag(uint64_t query_index, graph::NodeId peer,
                  uint64_t selection_seq) {
  // Mix the three components so distinct identities collide with
  // vanishing probability; the checker only compares tags for equality.
  uint64_t tag = util::MixSeed(query_index + 1);
  tag ^= util::MixSeed((static_cast<uint64_t>(peer) << 1) ^ 0x9E3779B97F4A7C15ULL);
  tag ^= util::MixSeed(selection_seq ^ 0xC2B2AE3D27D4EB4FULL);
  return tag == 0 ? 1 : tag;  // 0 is reserved for "no tag".
}

std::string HistoryEvent::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "#%llu %s %s %u->%u batch=%u tag=%llx",
                static_cast<unsigned long long>(index),
                HistoryEventKindToString(kind), MessageTypeToString(type),
                from, to, batch, static_cast<unsigned long long>(tag));
  return buf;
}

uint64_t HistoryRecorder::Count(HistoryEventKind kind) const {
  uint64_t n = 0;
  for (const HistoryEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

}  // namespace p2paqp::net

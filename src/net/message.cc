#include "net/message.h"

namespace p2paqp::net {

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kPing:
      return "PING";
    case MessageType::kPong:
      return "PONG";
    case MessageType::kQuery:
      return "QUERY";
    case MessageType::kQueryHit:
      return "QUERY_HIT";
    case MessageType::kWalker:
      return "WALKER";
    case MessageType::kAggregateReply:
      return "AGGREGATE_REPLY";
    case MessageType::kSampleRequest:
      return "SAMPLE_REQUEST";
    case MessageType::kSampleReply:
      return "SAMPLE_REPLY";
    case MessageType::kAuditProbe:
      return "AUDIT_PROBE";
    case MessageType::kAuditReply:
      return "AUDIT_REPLY";
  }
  return "UNKNOWN";
}

uint32_t BatchedPayloadBytes(MessageType type, uint32_t batch) {
  if (batch <= 1) return DefaultPayloadBytes(type);
  uint32_t body = DefaultPayloadBytes(type) - kGnutellaHeaderBytes;
  return kGnutellaHeaderBytes + batch * body;
}

uint32_t DefaultPayloadBytes(MessageType type) {
  constexpr uint32_t kHeader = kGnutellaHeaderBytes;
  switch (type) {
    case MessageType::kPing:
      return kHeader;
    case MessageType::kPong:
      return kHeader + 14;  // ip, port, #files, #kb.
    case MessageType::kQuery:
      return kHeader + 64;  // Min speed + selection predicate text.
    case MessageType::kQueryHit:
      return kHeader + 32;
    case MessageType::kWalker:
      return kHeader + 80;  // Query + walk bookkeeping (sink addr, j, t).
    case MessageType::kAggregateReply:
      return kHeader + 24;  // y(p) (8) + degree (4) + local count (8) + tag.
    case MessageType::kSampleRequest:
      return kHeader + 16;
    case MessageType::kSampleReply:
      return kHeader;  // Caller adds 4 bytes per shipped tuple.
    case MessageType::kAuditProbe:
      return kHeader + 8;  // Audited peer id + queried adjacency.
    case MessageType::kAuditReply:
      return kHeader + 9;  // Echoed probe + confirm/deny bit.
  }
  return kHeader;
}

}  // namespace p2paqp::net

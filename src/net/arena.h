// Slab arena for steady-state message payloads and callback state.
//
// The event-driven engine used to copy every in-flight reply payload into a
// std::function capture — one heap allocation per reply event. SlotArena
// gives those payloads a recycled home: slots live in fixed-size chunks
// (stable addresses, no relocation on growth), a freed slot goes to the head
// of a LIFO free list so the steady state reuses the same cache-warm cells,
// and the chunk spine only grows while the pending set hits a new high-water
// mark — i.e. during warm-up, never in the steady state the
// steady_state_allocs_per_event == 0 gate measures.
//
// Slots are generation-tagged: Acquire() hands out a handle carrying the
// slot's current generation, Release() bumps it. A handle that outlives its
// slot — a reply consumed twice, a walker session resumed after its peer
// died and the slot was recycled for a new incarnation — trips a CHECK
// instead of silently aliasing another in-flight payload. Under
// AddressSanitizer the payload bytes of a free slot are additionally
// poisoned, so even raw-pointer access to a released payload reports at the
// exact faulting load (the CI sanitize job's arena pass relies on this).
#ifndef P2PAQP_NET_ARENA_H_
#define P2PAQP_NET_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.h"

#if defined(__SANITIZE_ADDRESS__)
#define P2PAQP_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define P2PAQP_ARENA_ASAN 1
#endif
#endif

#ifdef P2PAQP_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace p2paqp::net {

// Opaque reference to one acquired slot. Value-semantic and 8 bytes, so it
// rides inside an InlineCallback capture where the payload itself would not.
struct ArenaHandle {
  uint32_t index = UINT32_MAX;
  uint32_t generation = 0;

  bool valid() const { return index != UINT32_MAX; }
};

// Running totals for tests and telemetry (tests/net_fault_test.cc asserts
// full recycling under churn: live() == 0 and acquired() == released() once
// a query drains).
struct ArenaStats {
  uint64_t acquired = 0;
  uint64_t released = 0;
  size_t live = 0;
  size_t high_water = 0;
  size_t capacity = 0;
};

template <typename T>
class SlotArena {
 public:
  static constexpr size_t kChunkShift = 10;  // 1024 slots per chunk.
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;

  SlotArena() = default;
  SlotArena(SlotArena&&) = default;
  SlotArena& operator=(SlotArena&&) = default;
  SlotArena(const SlotArena&) = delete;
  SlotArena& operator=(const SlotArena&) = delete;

  ~SlotArena() {
#ifdef P2PAQP_ARENA_ASAN
    // Chunk teardown runs destructors over every slot; lift the free-slot
    // poison first so teardown itself is not reported.
    for (uint32_t index = 0; index < bump_; ++index) {
      ASAN_UNPOISON_MEMORY_REGION(&SlotAt(index).value, sizeof(T));
    }
#endif
  }

  // Pre-sizes the chunk spine for `n` simultaneous live slots so warm-up
  // does not allocate either.
  void Reserve(size_t n) {
    size_t chunks = (n + kChunkSize - 1) >> kChunkShift;
    chunks_.reserve(chunks);
    while (chunks_.size() < chunks) AppendChunk();
  }

  // Takes a free slot (LIFO reuse) or extends the bump frontier. The slot's
  // previous payload contents are unspecified; callers overwrite.
  ArenaHandle Acquire() {
    uint32_t index;
    if (free_head_ != kNone) {
      index = free_head_;
      free_head_ = SlotAt(index).next_free;
    } else {
      if ((bump_ >> kChunkShift) == chunks_.size()) AppendChunk();
      index = bump_++;
    }
    Slot& slot = SlotAt(index);
    slot.next_free = kLive;
#ifdef P2PAQP_ARENA_ASAN
    ASAN_UNPOISON_MEMORY_REGION(&slot.value, sizeof(T));
#endif
    ++stats_.acquired;
    ++stats_.live;
    if (stats_.live > stats_.high_water) stats_.high_water = stats_.live;
    return ArenaHandle{index, slot.generation};
  }

  // Payload access; the handle must be live and from the current
  // incarnation of the slot.
  T& at(ArenaHandle h) {
    Slot& slot = CheckedSlot(h);
    return slot.value;
  }

  // Returns the slot to the free list and invalidates every outstanding
  // handle to it (generation bump). Double-release and
  // release-through-a-stale-handle CHECK.
  void Release(ArenaHandle h) {
    Slot& slot = CheckedSlot(h);
    ++slot.generation;
    slot.next_free = free_head_;
    free_head_ = h.index;
#ifdef P2PAQP_ARENA_ASAN
    ASAN_POISON_MEMORY_REGION(&slot.value, sizeof(T));
#endif
    ++stats_.released;
    --stats_.live;
  }

  const ArenaStats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNone = UINT32_MAX;
  static constexpr uint32_t kLive = UINT32_MAX - 1;

  struct Slot {
    T value{};
    // Incremented on every Release; a handle is valid only while its
    // generation matches.
    uint32_t generation = 0;
    // Free-list link; kLive marks an acquired slot.
    uint32_t next_free = kNone;
  };

  Slot& SlotAt(uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  Slot& CheckedSlot(ArenaHandle h) {
    P2PAQP_CHECK(h.index < bump_) << "arena handle out of range: " << h.index;
    Slot& slot = SlotAt(h.index);
    P2PAQP_CHECK(slot.next_free == kLive)
        << "arena handle to a free slot: " << h.index;
    P2PAQP_CHECK(slot.generation == h.generation)
        << "stale arena handle: slot " << h.index << " generation "
        << slot.generation << " vs handle " << h.generation;
    return slot;
  }

  void AppendChunk() {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    stats_.capacity += kChunkSize;
#ifdef P2PAQP_ARENA_ASAN
    // Fresh slots are not live yet; keep their payload bytes poisoned until
    // Acquire() hands them out.
    for (size_t k = 0; k < kChunkSize; ++k) {
      ASAN_POISON_MEMORY_REGION(&chunks_.back()[k].value, sizeof(T));
    }
#endif
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  uint32_t free_head_ = kNone;
  uint32_t bump_ = 0;  // First never-acquired slot index.
  ArenaStats stats_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_ARENA_H_

// Blocked storage for per-peer state, sharded for deterministic parallelism.
//
// A million-peer overlay cannot afford one contiguous std::vector<Peer>
// resize on every world build, and the deterministic parallel layer
// (util/parallel.h) wants naturally partitioned work. PeerStore keeps peers
// in fixed 64Ki blocks: the block layout depends only on the peer count —
// never on P2PAQP_THREADS — so block-parallel construction and block-wise
// oracle scans (reduced serially in block order) stay bit-identical for any
// thread count, per the parallel layer's contract.
#ifndef P2PAQP_NET_PEER_STORE_H_
#define P2PAQP_NET_PEER_STORE_H_

#include <cstddef>
#include <vector>

#include "net/peer.h"
#include "util/logging.h"

namespace p2paqp::net {

class PeerStore {
 public:
  static constexpr size_t kBlockShift = 16;
  static constexpr size_t kBlockSize = size_t{1} << kBlockShift;

  // Tag for the deferred (first-touch) constructor below.
  struct DeferBlocks {};

  PeerStore() = default;
  explicit PeerStore(size_t n) : size_(n) {
    blocks_.resize((n + kBlockSize - 1) >> kBlockShift);
    for (size_t b = 0; b < blocks_.size(); ++b) InitBlock(b);
  }

  // Deferred layout: the block table exists but no block's Peer storage is
  // allocated yet. The parallel world-build path calls InitBlock(b) from
  // the static lane that owns block b, so on NUMA hosts the first touch of
  // a block's pages happens on the node whose pinned lane will keep
  // scanning it. The block layout (and therefore every result) is
  // identical to the eager constructor — only page placement differs.
  PeerStore(size_t n, DeferBlocks) : size_(n) {
    blocks_.resize((n + kBlockSize - 1) >> kBlockShift);
  }

  // Allocates (and first-touches) block b's Peer storage. Idempotent.
  void InitBlock(size_t b) {
    size_t first = b << kBlockShift;
    blocks_[b].resize(size_ - first < kBlockSize ? size_ - first : kBlockSize);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Peer& operator[](size_t i) {
    P2PAQP_DCHECK(i < size_) << i;
    return blocks_[i >> kBlockShift][i & (kBlockSize - 1)];
  }
  const Peer& operator[](size_t i) const {
    P2PAQP_DCHECK(i < size_) << i;
    return blocks_[i >> kBlockShift][i & (kBlockSize - 1)];
  }

  // Block access for parallel loops; block b covers peer ids
  // [block_first(b), block_first(b) + block(b).size()).
  size_t num_blocks() const { return blocks_.size(); }
  std::vector<Peer>& block(size_t b) { return blocks_[b]; }
  const std::vector<Peer>& block(size_t b) const { return blocks_[b]; }
  size_t block_first(size_t b) const { return b << kBlockShift; }

  // Heap footprint of peer state: the Peer structs themselves plus every
  // local database's tuple storage. Together with Graph::MemoryBytes this
  // is the numerator of the gated bytes_per_peer metric.
  size_t MemoryBytes() const {
    size_t total = blocks_.capacity() * sizeof(std::vector<Peer>);
    for (const auto& block : blocks_) {
      total += block.capacity() * sizeof(Peer);
      for (const Peer& p : block) {
        total += p.database().MemoryBytes();
      }
    }
    return total;
  }

 private:
  size_t size_ = 0;
  std::vector<std::vector<Peer>> blocks_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_PEER_STORE_H_

// Message vocabulary of the simulated overlay.
//
// Mirrors the Gnutella protocol the paper builds on (Sec. 3.1): Ping/Pong for
// membership, Query/QueryHit for flooding search — plus the paper's walker
// message and the direct aggregate replies sent back to the sink.
#ifndef P2PAQP_NET_MESSAGE_H_
#define P2PAQP_NET_MESSAGE_H_

#include <cstdint>

#include "graph/graph.h"

namespace p2paqp::net {

enum class MessageType : uint8_t {
  kPing = 0,       // Neighbor liveness / discovery probe.
  kPong,           // Reply to kPing.
  kQuery,          // Flooded query (BFS baseline & Gnutella search).
  kQueryHit,       // Reply to kQuery.
  kWalker,         // The random-walk token carrying the query.
  kAggregateReply, // (y(p), deg(p)) pushed straight to the sink.
  kSampleRequest,  // Sink asks a peer for raw sub-sampled tuples.
  kSampleReply,    // Raw tuples back to the sink (median/quantiles path).
  kAuditProbe,     // Sink asks a claimed neighbor to attest an adjacency.
  kAuditReply,     // Attestation (confirm/deny) back to the sink.
};

const char* MessageTypeToString(MessageType type);

// Gnutella 0.4 descriptor header, shared once per wire message no matter how
// many query payloads the message multiplexes.
inline constexpr uint32_t kGnutellaHeaderBytes = 23;

// Nominal wire sizes (bytes) used by the bandwidth accounting. Derived from
// the Gnutella 0.4 header (23 bytes) plus typed payloads.
uint32_t DefaultPayloadBytes(MessageType type);

// Wire size of a message carrying `batch` per-query payloads behind one
// shared header: header + batch * body. `batch == 1` is exactly
// DefaultPayloadBytes, so unbatched callers are unchanged.
uint32_t BatchedPayloadBytes(MessageType type, uint32_t batch);

struct Message {
  MessageType type = MessageType::kPing;
  graph::NodeId src = graph::kInvalidNode;
  graph::NodeId dst = graph::kInvalidNode;
  uint32_t payload_bytes = 0;
  uint32_t hops = 1;  // Overlay hops this message traversed.
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_MESSAGE_H_

// Deterministic Byzantine adversary model for the simulated overlay.
//
// The PR-1 fault layer models *honest* failures (loss, spikes, crashes); an
// AdversaryPlan models peers that *lie*. A plan marks a deterministic,
// seed-replayable subset of peers adversarial and gives them composable
// misbehaviors aimed at the Horvitz-Thompson estimator's trust assumptions:
//
//   - degree misreport: the claimed deg(p) — and with it the stationary
//     weight the sink divides by — is inflated or deflated;
//   - aggregate corruption: the shipped y(p) is sign-flipped, scaled, or
//     replaced with an injected outlier;
//   - reply replay: the peer re-sends its (y(p), deg(p)) reply so a naive
//     sink double-counts the observation (and its quorum);
//   - walk hijack: an adversarial token holder forwards the walker only to
//     colluding neighbors, biasing selection toward the coalition
//     (PeerSwap's defining threat to walk-based sampling).
//
// Like the FaultPlan, an all-zero plan is a strict no-op: the network never
// installs an injector for it, no hook draws any RNG, and adversary-free
// runs stay bit-identical with the subsystem compiled in. The injector owns
// a private seeded RNG stream, so a given (plan, seed, event sequence)
// replays to an identical trace regardless of thread count.
#ifndef P2PAQP_NET_ADVERSARY_H_
#define P2PAQP_NET_ADVERSARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::net {

struct AdversaryPlan {
  // Fraction of peers (rounded down) marked adversarial at install time,
  // drawn without replacement from the injector's private RNG. Peers listed
  // in `adversaries` are marked on top of the drawn set.
  double adversary_fraction = 0.0;
  std::vector<graph::NodeId> adversaries;
  // Peers never marked adversarial (typically the query sink).
  std::vector<graph::NodeId> immune;

  // --- Behaviors (all compose; defaults are honest) -----------------------
  // Claimed degree = max(1, round(true degree * degree_factor)). 1.0 = honest;
  // > 1 inflates (shrinking the peer's apparent contribution while defeating
  // weight-based trust), < 1 deflates (inflating its contribution).
  double degree_factor = 1.0;
  // Multiplier applied to every shipped aggregate value (count, sum, and the
  // total-sum normalizer). -1.0 is a sign flip; 1.0 is honest.
  double value_scale = 1.0;
  // Per-reply probability that the value is additionally blown up into an
  // outlier of `outlier_magnitude` times its honest size.
  double outlier_probability = 0.0;
  double outlier_magnitude = 100.0;
  // Extra duplicate copies of each reply the peer pushes at the sink.
  size_t replay_copies = 0;
  // When true, an adversarial token holder forwards the walker only to
  // colluding (adversarial) neighbors whenever it has at least one alive.
  bool hijack_walk = false;

  // True when the plan can ever change behavior. A plan with no adversarial
  // peers, or with adversarial peers but all-honest behaviors, is treated as
  // "no injector installed".
  bool enabled() const {
    bool has_peers = adversary_fraction > 0.0 || !adversaries.empty();
    bool has_behavior = degree_factor != 1.0 || value_scale != 1.0 ||
                        outlier_probability > 0.0 || replay_copies > 0 ||
                        hijack_walk;
    return has_peers && has_behavior;
  }
};

// Canonical single-behavior regimes, used by the chaos sweeps (bench and the
// CI chaos-matrix job) to name one misbehavior per run.
enum class AdversaryBehavior {
  kDegreeInflate = 0,  // degree_factor = 4
  kDegreeDeflate,      // degree_factor = 0.25
  kSignFlip,           // value_scale = -1
  kScale,              // value_scale = 10
  kOutlier,            // outlier_probability = 0.5, magnitude = 100
  kReplay,             // replay_copies = 3
  kHijack,             // hijack_walk = true
};

const char* AdversaryBehaviorToString(AdversaryBehavior behavior);

// Parses the names emitted by AdversaryBehaviorToString (used by the
// P2PAQP_CHAOS_BEHAVIOR env knob); returns true on success.
bool ParseAdversaryBehavior(const std::string& name,
                            AdversaryBehavior* behavior);

// Plan with `fraction` adversaries running exactly one named behavior.
AdversaryPlan MakeBehaviorPlan(AdversaryBehavior behavior, double fraction);

// What one adversarial peer does to one outgoing reply.
struct ReplyTampering {
  // Multiplier to apply to every aggregate value in the reply (folds the
  // plan's value_scale and, if the outlier draw fired, outlier_magnitude).
  double value_scale = 1.0;
  bool outlier = false;
  // Extra duplicate copies of the reply to push at the sink.
  size_t replays = 0;
};

class AdversaryInjector {
 public:
  // Draws the adversarial peer set deterministically from (plan, seed).
  AdversaryInjector(AdversaryPlan plan, uint64_t seed, size_t num_peers);

  const AdversaryPlan& plan() const { return plan_; }

  bool IsAdversarial(graph::NodeId peer) const {
    return peer < adversarial_.size() && adversarial_[peer];
  }
  // The adversarial set, in ascending id order.
  std::vector<graph::NodeId> Adversaries() const;

  // Degree the peer claims when selected (honest peers return true_degree;
  // no RNG is drawn either way).
  uint32_t ClaimedDegree(graph::NodeId peer, uint32_t true_degree);

  // Tampering for one outgoing reply. Draws from the injector's private RNG
  // only for adversarial peers with outlier_probability > 0, so honest peers
  // and outlier-free plans replay identically.
  ReplyTampering OnReply(graph::NodeId peer);

  // Walk hijack: if `holder` is adversarial and hijacking, restricts
  // `neighbors` to its alive colluders (when it has any). The caller then
  // picks uniformly from whatever remains, so the honest RNG stream consumes
  // exactly one draw either way.
  void RestrictForwarding(graph::NodeId holder,
                          std::vector<graph::NodeId>* neighbors);

  // --- Telemetry ----------------------------------------------------------
  uint64_t degrees_misreported() const { return degrees_misreported_; }
  uint64_t replies_tampered() const { return replies_tampered_; }
  uint64_t replays_injected() const { return replays_injected_; }
  uint64_t hops_hijacked() const { return hops_hijacked_; }

 private:
  AdversaryPlan plan_;
  util::Rng rng_;
  std::vector<bool> adversarial_;
  uint64_t degrees_misreported_ = 0;
  uint64_t replies_tampered_ = 0;
  uint64_t replays_injected_ = 0;
  uint64_t hops_hijacked_ = 0;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_ADVERSARY_H_

#include "net/health.h"

#include <cmath>

namespace p2paqp::net {

double RetryBackoffMs(const StragglerPolicy& policy, size_t attempt,
                      util::Rng& rng) {
  if (!policy.exponential_backoff) return policy.retransmit_timeout_ms;
  double wait =
      policy.backoff_base_ms * std::pow(2.0, static_cast<double>(attempt) - 1.0);
  if (policy.backoff_jitter > 0.0) {
    // Symmetric +/-jitter: deterministic because `rng` is the event-ordered
    // query stream, de-synchronized across queries because it is seeded.
    double u = rng.UniformDouble(0.0, 1.0);
    wait *= 1.0 + policy.backoff_jitter * (2.0 * u - 1.0);
  }
  return wait;
}

void PeerHealthBoard::Reset(size_t num_peers) {
  latency_.assign(num_peers, 0.0f);
  failure_.assign(num_peers, 0.0f);
  samples_.assign(num_peers, 0);
  touched_.clear();
  touched_.reserve(num_peers);
  global_latency_ = 0.0;
  global_samples_ = 0;
}

void PeerHealthBoard::Record(graph::NodeId peer, double latency_ms, bool ok) {
  if (peer >= latency_.size()) return;
  const double alpha = policy_.ewma_alpha;
  if (samples_[peer] == 0) touched_.push_back(peer);
  ++samples_[peer];
  if (ok) {
    double lat = latency_[peer];
    // Winsorize against heavy-tailed draws: one Pareto monster should nudge
    // the EWMA, not own it.
    double clamped = lat > 0.0 && latency_ms > 8.0 * lat ? 8.0 * lat
                                                         : latency_ms;
    latency_[peer] = static_cast<float>(
        lat == 0.0 ? clamped : (1.0 - alpha) * lat + alpha * clamped);
    failure_[peer] = static_cast<float>((1.0 - alpha) * failure_[peer]);
    global_latency_ = global_samples_ == 0
                          ? clamped
                          : (1.0 - alpha) * global_latency_ + alpha * clamped;
    ++global_samples_;
  } else {
    failure_[peer] =
        static_cast<float>((1.0 - alpha) * failure_[peer] + alpha);
  }
}

bool PeerHealthBoard::Tripped(graph::NodeId peer) const {
  if (peer >= samples_.size()) return false;
  if (samples_[peer] < policy_.breaker_min_samples) return false;
  if (failure_[peer] >= policy_.breaker_failure_threshold) return true;
  if (global_samples_ >= policy_.breaker_min_samples &&
      global_latency_ > 0.0 &&
      latency_[peer] >=
          policy_.breaker_latency_factor * global_latency_) {
    return true;
  }
  return false;
}

size_t PeerHealthBoard::TrippedCount() const {
  size_t tripped = 0;
  for (graph::NodeId peer : touched_) {
    if (Tripped(peer)) ++tripped;
  }
  return tripped;
}

}  // namespace p2paqp::net

#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace p2paqp::net {

namespace {

// Block-parallel regions over the PeerStore use the static partition: lane l
// always owns the same contiguous block range (and, with P2PAQP_PIN_THREADS,
// the same core), so the blocks a lane initializes are the blocks it later
// scans. Results are bit-identical to the dynamic partition — only the
// index -> thread placement changes.
constexpr util::ParallelOptions kStaticBlocks{
    .threads = 0, .partition = util::Partition::kStatic};

}  // namespace

util::Result<SimulatedNetwork> SimulatedNetwork::Make(
    graph::Graph graph, std::vector<data::LocalDatabase> databases,
    const NetworkParams& params, uint64_t seed) {
  if (graph.num_nodes() == 0) {
    return util::Status::InvalidArgument("empty overlay");
  }
  if (!databases.empty() && databases.size() != graph.num_nodes()) {
    return util::Status::InvalidArgument(
        "database count must match peer count");
  }
  if (params.hop_latency_ms < 0.0 || params.hop_latency_jitter_ms < 0.0 ||
      params.tuples_scanned_per_ms <= 0.0) {
    return util::Status::InvalidArgument("bad network parameters");
  }
  if (params.parallel_peer_init) {
    // Scale path: every block draws its identities from its own
    // index-derived RNG stream, so construction parallelizes across
    // P2PAQP_THREADS while staying bit-identical for any thread count (the
    // block layout is fixed by the peer count alone). This is a different
    // stream than the serial draw below — only opt in for new worlds.
    // Block storage is deferred to the region: the static lane that owns a
    // block allocates it (InitBlock), so its pages are first-touched — and
    // on NUMA hosts placed — on the node that later scans it.
    PeerStore peers(graph.num_nodes(), PeerStore::DeferBlocks{});
    util::ParallelFor(peers.num_blocks(), [&](size_t b) {
      peers.InitBlock(b);
      util::Rng block_rng = util::TaskRng(seed, b);
      auto& block = peers.block(b);
      auto first = static_cast<graph::NodeId>(peers.block_first(b));
      for (size_t k = 0; k < block.size(); ++k) {
        auto id = static_cast<graph::NodeId>(first + k);
        auto ipv4 = static_cast<uint32_t>(block_rng.Next64());
        auto port = static_cast<uint16_t>(block_rng.UniformInt(1024, 65535));
        block[k] = Peer(id, ipv4, port, RandomCapabilities(block_rng));
        if (!databases.empty()) {
          block[k].set_database(std::move(databases[id]));
        }
      }
    }, kStaticBlocks);
    return SimulatedNetwork(std::move(graph), std::move(peers), params,
                            util::Rng(util::MixSeed(seed ^ 0x5CA1EULL)));
  }
  // Serial path: the per-peer identity draws and the network RNG handoff
  // reproduce the pre-PeerStore stream exactly — seeded regression worlds
  // depend on it.
  PeerStore peers(graph.num_nodes());
  util::Rng rng(seed);
  for (graph::NodeId id = 0; id < peers.size(); ++id) {
    auto ipv4 = static_cast<uint32_t>(rng.Next64());
    auto port = static_cast<uint16_t>(rng.UniformInt(1024, 65535));
    peers[id] = Peer(id, ipv4, port, RandomCapabilities(rng));
    if (!databases.empty()) {
      peers[id].set_database(std::move(databases[id]));
    }
  }
  return SimulatedNetwork(std::move(graph), std::move(peers), params,
                          std::move(rng));
}

SimulatedNetwork SimulatedNetwork::Clone(uint64_t seed) const {
  SimulatedNetwork copy(graph_, peers_, params_, util::Rng(seed));
  copy.num_alive_ = num_alive_;
  if (fault_.has_value()) {
    copy.fault_.emplace(fault_->plan(), util::MixSeed(seed ^ 0xFA177ULL),
                        peers_.size());
  }
  if (adversary_.has_value()) {
    copy.adversary_.emplace(adversary_->plan(),
                            util::MixSeed(seed ^ 0xBADBEEULL), peers_.size());
  }
  return copy;
}

const Peer& SimulatedNetwork::peer(graph::NodeId id) const {
  P2PAQP_CHECK(id < peers_.size()) << id;
  return peers_[id];
}

Peer& SimulatedNetwork::mutable_peer(graph::NodeId id) {
  P2PAQP_CHECK(id < peers_.size()) << id;
  return peers_[id];
}

void SimulatedNetwork::SetAlive(graph::NodeId id, bool alive) {
  Peer& p = mutable_peer(id);
  if (p.alive() == alive) return;
  p.set_alive(alive);
  num_alive_ += alive ? 1 : -1;
  if (history_ != nullptr) {
    history_->Record(
        alive ? HistoryEventKind::kPeerUp : HistoryEventKind::kPeerDown,
        MessageType::kPing, id, id);
  }
}

std::vector<graph::NodeId> SimulatedNetwork::AliveNeighbors(
    graph::NodeId id) const {
  std::vector<graph::NodeId> out;
  AliveNeighborsInto(id, &out);
  return out;
}

void SimulatedNetwork::AliveNeighborsInto(graph::NodeId id,
                                          std::vector<graph::NodeId>* out) const {
  out->clear();
  for (graph::NodeId v : graph_.neighbors(id)) {
    if (peers_[v].alive()) out->push_back(v);
  }
}

uint32_t SimulatedNetwork::AliveDegree(graph::NodeId id) const {
  uint32_t deg = 0;
  for (graph::NodeId v : graph_.neighbors(id)) {
    if (peers_[v].alive()) ++deg;
  }
  return deg;
}

util::Status SimulatedNetwork::InstallDatabases(
    std::vector<data::LocalDatabase> databases) {
  if (databases.size() != peers_.size()) {
    return util::Status::InvalidArgument(
        "database count must match peer count");
  }
  for (size_t i = 0; i < peers_.size(); ++i) {
    peers_[i].set_database(std::move(databases[i]));
  }
  return util::Status::Ok();
}

double SimulatedNetwork::SampleHopLatency() {
  double jitter = 0.0;
  if (params_.hop_latency_jitter_ms > 0.0) {
    // Exponential jitter with the configured mean.
    double u = rng_.UniformDouble(1e-12, 1.0);
    jitter = -params_.hop_latency_jitter_ms * std::log(u);
  }
  return params_.hop_latency_ms + jitter;
}

void SimulatedNetwork::InstallFaultPlan(const FaultPlan& plan, uint64_t seed) {
  if (!plan.enabled()) {
    fault_.reset();
    return;
  }
  fault_.emplace(plan, seed, peers_.size());
}

void SimulatedNetwork::InstallAdversaryPlan(const AdversaryPlan& plan,
                                            uint64_t seed) {
  if (!plan.enabled()) {
    adversary_.reset();
    return;
  }
  adversary_.emplace(plan, seed, peers_.size());
}

FaultDecision SimulatedNetwork::ApplyFaults(MessageType type,
                                            graph::NodeId from,
                                            graph::NodeId to,
                                            graph::NodeId crash_candidate) {
  if (!fault_.has_value()) return FaultDecision{};
  FaultDecision decision = fault_->OnMessage(type, from, to, crash_candidate);
  for (graph::NodeId peer : decision.crashed) {
    if (peer < peers_.size()) SetAlive(peer, false);
  }
  return decision;
}

namespace {

// The endpoint a probabilistic crash takes down: replies lose their sender
// (the peer departs before its reply escapes), requests lose their receiver
// (the peer departs as the message reaches it).
graph::NodeId CrashCandidate(MessageType type, graph::NodeId from,
                             graph::NodeId to) {
  switch (type) {
    case MessageType::kPong:
    case MessageType::kQueryHit:
    case MessageType::kAggregateReply:
    case MessageType::kSampleReply:
    case MessageType::kAuditReply:
      return from;
    default:
      return to;
  }
}

}  // namespace

void SimulatedNetwork::RecordOutcome(bool delivered, MessageType type,
                                     graph::NodeId from, graph::NodeId to,
                                     uint32_t batch) {
  if (delivered) {
    cost_.RecordDelivered();
  } else {
    cost_.RecordDropped();
  }
  if (history_ != nullptr) {
    history_->Record(
        delivered ? HistoryEventKind::kDeliver : HistoryEventKind::kDrop, type,
        from, to, batch);
  }
}

util::Status SimulatedNetwork::SendAlongEdge(MessageType type,
                                             graph::NodeId from,
                                             graph::NodeId to, uint32_t batch) {
  if (from >= peers_.size() || to >= peers_.size()) {
    return util::Status::InvalidArgument("endpoint out of range");
  }
  if (!graph_.HasEdge(from, to)) {
    return util::Status::InvalidArgument("no overlay connection");
  }
  if (!peers_[from].alive() || !peers_[to].alive()) {
    return util::Status::Unavailable("endpoint departed");
  }
  if (batch > 1) {
    cost_.RecordBatchedMessage(BatchedPayloadBytes(type, batch),
                               DefaultPayloadBytes(type), batch,
                               kGnutellaHeaderBytes);
  } else {
    cost_.RecordMessage(DefaultPayloadBytes(type));
  }
  cost_.RecordWalkerHops(1);
  if (history_ != nullptr) {
    history_->Record(HistoryEventKind::kSend, type, from, to, batch);
  }
  double latency = SampleHopLatency();
  if (fault_.has_value()) {
    // The message is on the wire (cost already charged) when faults strike:
    // drops lose it silently, crashes take an endpoint down with it.
    FaultDecision faults = ApplyFaults(type, from, to,
                                       CrashCandidate(type, from, to));
    cost_.RecordLatency(latency + faults.extra_latency_ms);
    if (!peers_[from].alive() || !peers_[to].alive()) {
      RecordOutcome(false, type, from, to, batch);
      return util::Status::Unavailable("peer crashed mid-query");
    }
    if (!faults.deliver) {
      RecordOutcome(false, type, from, to, batch);
      return util::Status::Unavailable("message dropped in transit");
    }
    RecordOutcome(true, type, from, to, batch);
    return util::Status::Ok();
  }
  cost_.RecordLatency(latency);
  RecordOutcome(true, type, from, to, batch);
  return util::Status::Ok();
}

util::Status SimulatedNetwork::SendDirect(MessageType type,
                                          graph::NodeId from,
                                          graph::NodeId to,
                                          uint32_t extra_payload_bytes,
                                          uint32_t batch) {
  if (from >= peers_.size() || to >= peers_.size()) {
    return util::Status::InvalidArgument("endpoint out of range");
  }
  if (!peers_[from].alive() || !peers_[to].alive()) {
    return util::Status::Unavailable("endpoint departed");
  }
  if (batch > 1) {
    // extra_payload_bytes is a per-query rider, so it multiplies with the
    // batch while the header is still shared once.
    cost_.RecordBatchedMessage(
        BatchedPayloadBytes(type, batch) +
            uint64_t{batch} * extra_payload_bytes,
        DefaultPayloadBytes(type) + extra_payload_bytes, batch,
        kGnutellaHeaderBytes);
  } else {
    cost_.RecordMessage(DefaultPayloadBytes(type) + extra_payload_bytes);
  }
  if (history_ != nullptr) {
    history_->Record(HistoryEventKind::kSend, type, from, to, batch);
  }
  // Direct IP replies do not ride the overlay but still cross the Internet
  // once; replies overlap the walk, so only the message cost (not latency on
  // the critical path) is charged beyond a single hop-equivalent.
  double latency = SampleHopLatency() * 0.5;
  if (fault_.has_value()) {
    FaultDecision faults = ApplyFaults(type, from, to,
                                       CrashCandidate(type, from, to));
    cost_.RecordLatency(latency + faults.extra_latency_ms);
    if (!peers_[from].alive() || !peers_[to].alive()) {
      RecordOutcome(false, type, from, to, batch);
      return util::Status::Unavailable("peer crashed mid-query");
    }
    if (!faults.deliver) {
      RecordOutcome(false, type, from, to, batch);
      return util::Status::Unavailable("message dropped in transit");
    }
    RecordOutcome(true, type, from, to, batch);
    return util::Status::Ok();
  }
  cost_.RecordLatency(latency);
  RecordOutcome(true, type, from, to, batch);
  return util::Status::Ok();
}

double SimulatedNetwork::LocalScanLatency(graph::NodeId peer_id,
                                          uint64_t tuples) const {
  const Peer& p = peer(peer_id);
  double cpu_scale = std::max(0.1, p.capabilities().cpu_ghz);
  return static_cast<double>(tuples) /
         (params_.tuples_scanned_per_ms * cpu_scale);
}

void SimulatedNetwork::RecordLocalExecution(graph::NodeId peer_id,
                                            uint64_t tuples_scanned,
                                            uint64_t tuples_sampled) {
  cost_.RecordPeerVisit();
  cost_.RecordTuplesScanned(tuples_scanned);
  cost_.RecordTuplesSampled(tuples_sampled);
  cost_.RecordLatency(LocalScanLatency(peer_id, tuples_scanned));
}

int64_t SimulatedNetwork::TotalTuples() const {
  // Per-block partials, reduced serially in block order: exact 64-bit sums,
  // so the result is bit-identical for any thread count.
  auto partials = util::ParallelMap(peers_.num_blocks(), [this](size_t b) {
    int64_t total = 0;
    for (const Peer& p : peers_.block(b)) {
      if (p.alive()) total += static_cast<int64_t>(p.database().size());
    }
    return total;
  }, kStaticBlocks);
  int64_t total = 0;
  for (int64_t partial : partials) total += partial;
  return total;
}

int64_t SimulatedNetwork::ExactCount(data::Value lo, data::Value hi) const {
  auto partials = util::ParallelMap(peers_.num_blocks(), [&](size_t b) {
    int64_t total = 0;
    for (const Peer& p : peers_.block(b)) {
      if (p.alive()) total += p.database().Count(lo, hi);
    }
    return total;
  }, kStaticBlocks);
  int64_t total = 0;
  for (int64_t partial : partials) total += partial;
  return total;
}

int64_t SimulatedNetwork::ExactSum(data::Value lo, data::Value hi) const {
  auto partials = util::ParallelMap(peers_.num_blocks(), [&](size_t b) {
    int64_t total = 0;
    for (const Peer& p : peers_.block(b)) {
      if (p.alive()) total += p.database().Sum(lo, hi);
    }
    return total;
  }, kStaticBlocks);
  int64_t total = 0;
  for (int64_t partial : partials) total += partial;
  return total;
}

double SimulatedNetwork::ExactMedian() const {
  // Collect per block, concatenate in block order (same value order as the
  // old serial scan), then select.
  auto blocks = util::ParallelMap(peers_.num_blocks(), [this](size_t b) {
    std::vector<double> values;
    for (const Peer& p : peers_.block(b)) {
      if (!p.alive()) continue;
      for (const data::Tuple& t : p.database().tuples()) {
        values.push_back(static_cast<double>(t.value));
      }
    }
    return values;
  }, kStaticBlocks);
  std::vector<double> values;
  size_t total = 0;
  for (const auto& block : blocks) total += block.size();
  values.reserve(total);
  for (auto& block : blocks) {
    values.insert(values.end(), block.begin(), block.end());
  }
  P2PAQP_CHECK(!values.empty());
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace p2paqp::net

// Deterministic fault injection for the simulated overlay transport.
//
// Real unstructured overlays lose messages, stall links, and lose whole
// peers mid-query — Sec. 1's peers "depart without notice". A FaultPlan
// describes one fault regime (per-message drop probability, latency-spike
// distribution, probabilistic and scheduled mid-query crashes); the
// FaultInjector turns it into per-message decisions drawn from a dedicated
// seeded RNG stream and records every injected fault in a replayable trace.
//
// An all-zero plan is a strict no-op: SimulatedNetwork never installs an
// injector for it, no extra RNG is drawn anywhere, and fault-free runs stay
// bit-identical with or without this subsystem compiled in the loop.
#ifndef P2PAQP_NET_FAULT_H_
#define P2PAQP_NET_FAULT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "net/message.h"
#include "util/rng.h"

namespace p2paqp::net {

// Crash `peer` when the injector sees the `at_message`-th message (0-based,
// counted over every message the injector filters). The crash is applied
// before that message's own delivery is decided, so a message sent by or to
// the crashing peer is lost.
struct ScheduledCrash {
  uint64_t at_message = 0;
  graph::NodeId peer = graph::kInvalidNode;
};

// Heavy-tailed per-message latency regime: a straggler is a peer that is
// alive and will answer — eventually. Distinct from loss (drops) and from
// the memoryless spike model: the tail distributions below put real mass at
// multi-second delays, which is what makes fixed timeouts into wall-clock
// cliffs and hedging/Walk-Not-Wait worth their message overhead.
enum class LatencyTail {
  kNone = 0,
  // Pareto(x_m = tail_scale_ms, shape = tail_alpha): extra delay
  // tail_scale_ms * (u^{-1/alpha} - 1), so typical messages pay ~0 and the
  // tail is polynomial (alpha <= 2 has infinite variance).
  kPareto,
  // Lognormal with median tail_scale_ms and log-space sigma tail_sigma.
  kLognormal,
};

struct FaultPlan {
  // Per-message probability that the message vanishes in transit (the
  // sender learns nothing; retransmission is the caller's job).
  double drop_probability = 0.0;
  // Per-message probability of a latency spike, and the mean of the
  // exponential extra delay added when one fires.
  double spike_probability = 0.0;
  double spike_mean_ms = 200.0;
  // Per-message probability that the crash-eligible endpoint (the receiver
  // for overlay hops, the replying peer for direct replies) departs without
  // notice, taking the in-flight message down with it.
  double crash_probability = 0.0;
  // Deterministic mid-query departures, on top of the probabilistic ones.
  std::vector<ScheduledCrash> scheduled_crashes;
  // Peers the injector never crashes (typically the query sink).
  std::vector<graph::NodeId> crash_immune;

  // --- Straggler regime ----------------------------------------------------
  // Per-message heavy-tailed extra latency, drawn fresh for every message
  // whose responding endpoint is the peer in question (so a hedged duplicate
  // gets an independent draw — min-of-two is how hedging wins).
  LatencyTail tail = LatencyTail::kNone;
  double tail_scale_ms = 10.0;
  double tail_alpha = 1.1;   // Pareto shape (smaller = heavier).
  double tail_sigma = 1.0;   // Lognormal log-space sigma.
  // Slow coalition: a seed-deterministic fraction of peers that are alive
  // but *consistently* tardy — every message they answer is scaled by
  // slow_factor (plus a tail_scale_ms floor, so a coalition exists even
  // with tail == kNone). crash_immune peers are never drafted.
  double slow_fraction = 0.0;
  double slow_factor = 20.0;

  bool straggler_enabled() const {
    return tail != LatencyTail::kNone ||
           (slow_fraction > 0.0 && slow_factor > 0.0);
  }

  // True when any fault can ever fire. A default-constructed plan injects
  // nothing and is treated as "no injector installed".
  bool enabled() const {
    return drop_probability > 0.0 || spike_probability > 0.0 ||
           crash_probability > 0.0 || !scheduled_crashes.empty() ||
           straggler_enabled();
  }
};

enum class FaultKind {
  kDrop = 0,
  kLatencySpike,
  kCrash,
  kScheduledCrash,
};

const char* FaultKindToString(FaultKind kind);

// One injected fault, as recorded in the trace.
struct FaultEvent {
  uint64_t message_index = 0;  // Which message (0-based) the fault hit.
  FaultKind kind = FaultKind::kDrop;
  MessageType message_type = MessageType::kPing;
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  // The departed peer for (scheduled) crashes; kInvalidNode otherwise.
  graph::NodeId crashed = graph::kInvalidNode;
  // Extra delay for latency spikes; 0 otherwise.
  double spike_ms = 0.0;
};

bool operator==(const FaultEvent& a, const FaultEvent& b);
inline bool operator!=(const FaultEvent& a, const FaultEvent& b) {
  return !(a == b);
}

// Outcome of filtering one message through the injector. The injector only
// decides; applying `crashed` to peer liveness is the network's job.
struct FaultDecision {
  bool deliver = true;
  double extra_latency_ms = 0.0;
  // Peers that departed while this message was in flight (scheduled crashes
  // due at this index, plus at most one probabilistic crash of the eligible
  // endpoint).
  std::vector<graph::NodeId> crashed;
};

class FaultInjector {
 public:
  // `num_peers` bounds the slow-coalition draft; 0 (the default, kept for
  // direct-construction tests) means no coalition regardless of the plan.
  FaultInjector(FaultPlan plan, uint64_t seed, size_t num_peers = 0);

  const FaultPlan& plan() const { return plan_; }

  // Decides the fate of one message. `crash_candidate` is the peer that
  // departs if a probabilistic crash fires (graph::kInvalidNode for none).
  // Decisions consume the injector's private RNG in a fixed order
  // (scheduled crashes, crash draw, drop draw, spike draw), so the same
  // plan + seed + message sequence replays to an identical trace.
  FaultDecision OnMessage(MessageType type, graph::NodeId from,
                          graph::NodeId to, graph::NodeId crash_candidate);

  uint64_t messages_seen() const { return messages_seen_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t spikes() const { return spikes_; }
  uint64_t tail_messages() const { return tail_messages_; }
  double tail_delay_ms() const { return tail_delay_ms_; }
  size_t slow_peers() const { return slow_peers_; }

  // True when `peer` was drafted into the slow coalition at construction.
  bool IsSlow(graph::NodeId peer) const;

  // One straggler-delay draw for a message answered by `responder`, from the
  // *caller's* RNG — for engine-side transit modelling (Walk-Not-Wait) where
  // the draw must live on the event-deterministic query stream, not the
  // injector's transport stream. Consumes RNG only when plan().tail != kNone
  // (the coalition scaling is deterministic), so legacy streams are
  // untouched under legacy plans.
  double DrawTailDelay(graph::NodeId responder, util::Rng& rng);

  // Deterministic expectation of DrawTailDelay for `responder` — lets the
  // synchronous engine rank predictably-tardy peers without spending draws.
  double ExpectedTailDelayMs(graph::NodeId responder) const;

  // Every injected fault, in injection order.
  const std::vector<FaultEvent>& trace() const { return trace_; }

 private:
  bool IsImmune(graph::NodeId peer) const;

  FaultPlan plan_;
  util::Rng rng_;
  uint64_t messages_seen_ = 0;
  size_t next_scheduled_ = 0;
  uint64_t dropped_ = 0;
  uint64_t crashes_ = 0;
  uint64_t spikes_ = 0;
  uint64_t tail_messages_ = 0;
  double tail_delay_ms_ = 0.0;
  size_t slow_peers_ = 0;
  std::vector<uint8_t> slow_;
  std::vector<FaultEvent> trace_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_FAULT_H_

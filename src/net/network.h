// In-process simulation of the unstructured P2P overlay.
//
// Owns the topology graph plus one Peer per node, routes typed messages with
// full cost accounting (messages, bytes, hops, simulated latency) and models
// churn through per-peer liveness. All higher layers (random walks, flooding,
// the two-phase engine) speak to the overlay exclusively through this class,
// so every cost the paper discusses in Sec. 3.2 is captured in one place.
#ifndef P2PAQP_NET_NETWORK_H_
#define P2PAQP_NET_NETWORK_H_

#include <optional>
#include <vector>

#include "data/local_database.h"
#include "graph/graph.h"
#include "net/adversary.h"
#include "net/cost.h"
#include "net/fault.h"
#include "net/history.h"
#include "net/message.h"
#include "net/peer.h"
#include "net/peer_store.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::net {

struct NetworkParams {
  // Per-overlay-hop latency: base plus exponential jitter (mean `jitter`).
  double hop_latency_ms = 40.0;
  double hop_latency_jitter_ms = 20.0;
  // Local scan speed used for the CPU-cost component of latency.
  double tuples_scanned_per_ms = 5000.0;
  // Draw peer identities block-parallel from index-derived RNG streams
  // (bit-identical for any P2PAQP_THREADS, but a DIFFERENT stream than the
  // serial default — existing seeded worlds depend on the serial draw
  // order, so only new scale-tier worlds opt in).
  bool parallel_peer_init = false;
};

class SimulatedNetwork {
 public:
  // `databases` is optional; pass an empty vector for a data-less overlay
  // (databases can be installed later via InstallDatabases).
  static util::Result<SimulatedNetwork> Make(
      graph::Graph graph, std::vector<data::LocalDatabase> databases,
      const NetworkParams& params, uint64_t seed);

  SimulatedNetwork(SimulatedNetwork&&) = default;
  SimulatedNetwork& operator=(SimulatedNetwork&&) = default;

  // Teardown assertion (debug builds): every charged message must have
  // resolved to delivered or dropped — drift here means a fault/retransmit
  // path charged a message without recording its fate. Release builds skip
  // the check; the protocol harness calls VerifyCostConservation() on every
  // generated run regardless of build type.
  ~SimulatedNetwork() {
#ifndef NDEBUG
    if (!peers_.empty()) {
      P2PAQP_DCHECK(cost_.snapshot().MessagesConserve())
          << "message conservation violated at teardown: "
          << cost_.snapshot().ToString();
    }
#endif
  }

  // Aborts unless sends == delivers + drops in the cost ledger.
  void VerifyCostConservation() const {
    P2PAQP_CHECK(cost_.snapshot().MessagesConserve())
        << cost_.snapshot().ToString();
  }

  // Deep copy for parallel replicates: same overlay, peers (identities,
  // liveness, databases) and latency parameters, but a fresh cost tracker
  // and an RNG re-seeded from `seed`, so clones evolve independently of the
  // original and of each other. An installed fault plan is carried over,
  // re-seeded from a value derived from `seed` (its counters and trace
  // start empty). The original is never observable through a clone.
  SimulatedNetwork Clone(uint64_t seed) const;

  const graph::Graph& graph() const { return graph_; }
  size_t num_peers() const { return peers_.size(); }
  size_t num_alive() const { return num_alive_; }

  const Peer& peer(graph::NodeId id) const;
  Peer& mutable_peer(graph::NodeId id);

  bool IsAlive(graph::NodeId id) const { return peers_[id].alive(); }
  // Marks a peer as departed/re-joined (Gnutella-style churn: connections of
  // a dead peer are simply unusable until it returns). Updates num_alive().
  void SetAlive(graph::NodeId id, bool alive);

  // Neighbors of `id` that are currently alive.
  std::vector<graph::NodeId> AliveNeighbors(graph::NodeId id) const;

  // Scratch-reusing AliveNeighbors: decodes into `out` (cleared first), so
  // per-hop callers reuse one warmed buffer instead of allocating a fresh
  // vector every hop.
  void AliveNeighborsInto(graph::NodeId id,
                          std::vector<graph::NodeId>* out) const;

  // Degree counting only alive neighbors — what a live walker observes.
  uint32_t AliveDegree(graph::NodeId id) const;

  // Replaces all local databases (index = NodeId).
  util::Status InstallDatabases(std::vector<data::LocalDatabase> databases);

  // --- Message transport -------------------------------------------------
  // One overlay hop between adjacent live peers (walker forwarding).
  // Returns InvalidArgument for non-edges, Unavailable for dead endpoints.
  // `batch` > 1 means the token multiplexes that many per-query payloads
  // behind one shared header: still one message / one hop on the wire, with
  // bytes accounted through the batched-payload assert in net/cost.cc.
  util::Status SendAlongEdge(MessageType type, graph::NodeId from,
                             graph::NodeId to, uint32_t batch = 1);

  // Direct IP transport (no overlay routing): visited peers know the sink's
  // address from the walker and reply straight back (Sec. 3.2).
  // `extra_payload_bytes` rides on top of the type's nominal size; `batch`
  // multiplexes per-query reply bodies behind one header as above.
  util::Status SendDirect(MessageType type, graph::NodeId from,
                          graph::NodeId to, uint32_t extra_payload_bytes = 0,
                          uint32_t batch = 1);

  // --- Fault injection ----------------------------------------------------
  // Installs a fault regime for subsequent messages, replacing any previous
  // one. A disabled (all-zero) plan uninstalls the injector entirely, so the
  // transport behaves exactly as fault-free — same RNG stream, same costs.
  // Faults draw from a dedicated injector RNG seeded here, never from the
  // network's own stream.
  void InstallFaultPlan(const FaultPlan& plan, uint64_t seed);

  // Installed injector (trace/counter inspection), or nullptr.
  const FaultInjector* fault_injector() const {
    return fault_.has_value() ? &*fault_ : nullptr;
  }

  // --- Byzantine adversaries ----------------------------------------------
  // Installs (or, for a disabled plan, uninstalls) the adversarial peer
  // regime. Mirrors InstallFaultPlan: a disabled plan leaves no injector
  // behind, so honest runs stay bit-identical. The adversarial peer set is
  // drawn here from a dedicated RNG seeded by `seed`; the sink is typically
  // listed in plan.immune by the caller.
  void InstallAdversaryPlan(const AdversaryPlan& plan, uint64_t seed);

  // Installed adversary, or nullptr. Mutable: the injector's tampering hooks
  // advance its private RNG and counters.
  AdversaryInjector* adversary() {
    return adversary_.has_value() ? &*adversary_ : nullptr;
  }
  const AdversaryInjector* adversary() const {
    return adversary_.has_value() ? &*adversary_ : nullptr;
  }

  // Filters one message through the injector and applies crash side effects
  // to peer liveness. A no-op returning "deliver" when no injector is
  // installed. Exposed for event-driven consumers that account message
  // costs themselves (the async engine).
  FaultDecision ApplyFaults(MessageType type, graph::NodeId from,
                            graph::NodeId to, graph::NodeId crash_candidate);

  // Accounts a local scan of `tuples` rows at `peer` (latency scaled by the
  // peer's CPU speed) and marks the peer visited.
  void RecordLocalExecution(graph::NodeId peer, uint64_t tuples_scanned,
                            uint64_t tuples_sampled);

  // --- Latency model (exposed for event-driven execution) ----------------
  // One overlay-hop latency draw (base + jitter). Stateful: advances the
  // network's RNG.
  double DrawHopLatency() { return SampleHopLatency(); }
  // Mean per-hop latency under the configured model (base + jitter mean):
  // the yardstick for adaptive straggler budgets.
  double NominalHopLatencyMs() const {
    return params_.hop_latency_ms + params_.hop_latency_jitter_ms;
  }
  // One straggler-tail draw for a message answered by `responder`, from the
  // caller's RNG (see FaultInjector::DrawTailDelay). 0 and no RNG consumed
  // when no injector or no tail regime is installed.
  double DrawPeerTailDelay(graph::NodeId responder, util::Rng& rng) {
    return fault_.has_value() ? fault_->DrawTailDelay(responder, rng) : 0.0;
  }
  // Deterministic expectation of the above — prediction without draws.
  double ExpectedPeerTailDelayMs(graph::NodeId responder) const {
    return fault_.has_value() ? fault_->ExpectedTailDelayMs(responder) : 0.0;
  }
  // Deterministic local-scan latency for `tuples` rows at `peer` (CPU-speed
  // scaled), matching what RecordLocalExecution charges.
  double LocalScanLatency(graph::NodeId peer, uint64_t tuples) const;

  CostTracker& cost() { return cost_; }
  const CostSnapshot& cost_snapshot() const { return cost_.snapshot(); }
  void ResetCost() { cost_.Reset(); }

  // --- Protocol history (black-box checking) ------------------------------
  // Attaches an external event log; nullptr detaches. Not owned; must
  // outlive the network while attached. The transport appends
  // send/deliver/drop records, SetAlive appends liveness transitions, and
  // higher layers (engines, scheduler) append timeout/retransmit/dedup/
  // expire records through history(). Clones never inherit the recorder (a
  // recorder observes exactly one serial run).
  void set_history(HistoryRecorder* history) { history_ = history; }
  HistoryRecorder* history() { return history_; }

  // --- Ground truth (oracle access for evaluation only) -------------------
  // Block-parallel over the peer store with a serial block-order reduction,
  // so million-peer oracles scale with P2PAQP_THREADS yet stay
  // bit-identical for any thread count.
  int64_t TotalTuples() const;
  int64_t ExactCount(data::Value lo, data::Value hi) const;
  int64_t ExactSum(data::Value lo, data::Value hi) const;
  // Exact median of all tuple values across alive peers.
  double ExactMedian() const;

  // Heap footprint of the world: compressed adjacency + peer state
  // (identities, liveness, local databases). Divided by num_peers() this is
  // the gated bytes_per_peer metric (docs/PERFORMANCE.md).
  size_t MemoryBytes() const {
    return graph_.MemoryBytes() + peers_.MemoryBytes();
  }

  util::Rng& rng() { return rng_; }

 private:
  SimulatedNetwork(graph::Graph graph, PeerStore peers,
                   const NetworkParams& params, util::Rng rng)
      : graph_(std::move(graph)),
        peers_(std::move(peers)),
        params_(params),
        num_alive_(peers_.size()),
        rng_(std::move(rng)) {}

  double SampleHopLatency();

  // Resolves one charged message — delivered or dropped — in both the cost
  // ledger and the attached history, keeping the two in lockstep.
  void RecordOutcome(bool delivered, MessageType type, graph::NodeId from,
                     graph::NodeId to, uint32_t batch);

  graph::Graph graph_;
  PeerStore peers_;
  NetworkParams params_;
  size_t num_alive_;
  CostTracker cost_;
  util::Rng rng_;
  std::optional<FaultInjector> fault_;
  std::optional<AdversaryInjector> adversary_;
  HistoryRecorder* history_ = nullptr;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_NETWORK_H_

// Churn: peers departing and (re)joining between queries.
//
// Unstructured overlays explicitly tolerate nodes leaving without notice
// (Sec. 1); the walker must route around departed peers. The model keeps the
// underlying graph fixed and toggles liveness, mirroring short-lived Gnutella
// sessions where a peer's connections simply go dark until it returns.
#ifndef P2PAQP_NET_CHURN_H_
#define P2PAQP_NET_CHURN_H_

#include <cstddef>
#include <functional>

#include "net/event_sim.h"
#include "net/network.h"
#include "util/rng.h"

namespace p2paqp::net {

struct ChurnParams {
  // Per-step probability that a live peer departs / a departed peer returns.
  double leave_probability = 0.02;
  double rejoin_probability = 0.2;
  // Peers never taken down (e.g., the query sink).
  std::vector<graph::NodeId> pinned;
};

class ChurnModel {
 public:
  ChurnModel(ChurnParams params, uint64_t seed)
      : params_(std::move(params)), rng_(seed) {}

  // One churn epoch: every peer independently flips state per the params.
  // Returns the number of state changes applied.
  size_t Step(SimulatedNetwork& network);

  // Mid-query churn: schedules a self-repeating epoch every `interval_ms`
  // of simulated time, so peers depart *while* a query executes on the
  // event clock. Stops (and schedules nothing further) as soon as
  // `keep_going` returns false — typically "the query still has in-flight
  // work". `this` and `network` must outlive the event queue run.
  void RunOnEventQueue(EventQueue& events, SimulatedNetwork* network,
                       double interval_ms, std::function<bool()> keep_going);

 private:
  bool IsPinned(graph::NodeId id) const;

  ChurnParams params_;
  util::Rng rng_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_CHURN_H_

#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace p2paqp::net {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kScheduledCrash:
      return "scheduled_crash";
  }
  return "unknown";
}

bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.message_index == b.message_index && a.kind == b.kind &&
         a.message_type == b.message_type && a.from == b.from && a.to == b.to &&
         a.crashed == b.crashed && a.spike_ms == b.spike_ms;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed, size_t num_peers)
    : plan_(std::move(plan)), rng_(seed) {
  // Scheduled crashes fire in message order regardless of how the caller
  // listed them.
  std::stable_sort(plan_.scheduled_crashes.begin(),
                   plan_.scheduled_crashes.end(),
                   [](const ScheduledCrash& a, const ScheduledCrash& b) {
                     return a.at_message < b.at_message;
                   });
  // The slow coalition is drafted once at construction from a salted
  // sub-stream, so membership depends only on (plan, seed, num_peers) — not
  // on message traffic — and Clone()d networks redraw deterministically.
  if (plan_.slow_fraction > 0.0 && num_peers > 0) {
    util::Rng coalition_rng(util::MixSeed(seed ^ 0x510Cull));
    slow_.assign(num_peers, 0);
    for (size_t peer = 0; peer < num_peers; ++peer) {
      if (IsImmune(static_cast<graph::NodeId>(peer))) continue;
      if (coalition_rng.Bernoulli(plan_.slow_fraction)) {
        slow_[peer] = 1;
        ++slow_peers_;
      }
    }
  }
}

bool FaultInjector::IsSlow(graph::NodeId peer) const {
  return peer < slow_.size() && slow_[peer] != 0;
}

double FaultInjector::DrawTailDelay(graph::NodeId responder, util::Rng& rng) {
  double extra = 0.0;
  switch (plan_.tail) {
    case LatencyTail::kNone:
      break;
    case LatencyTail::kPareto: {
      // Inverse-CDF Pareto(x_m = scale, alpha), shifted so the minimum extra
      // delay is 0: the typical message pays nothing, the tail is polynomial.
      double u = rng.UniformDouble(1e-12, 1.0);
      extra = plan_.tail_scale_ms *
              (std::pow(u, -1.0 / plan_.tail_alpha) - 1.0);
      break;
    }
    case LatencyTail::kLognormal: {
      // Box-Muller normal from two uniforms (util::Rng has no normal draw).
      double u1 = rng.UniformDouble(1e-12, 1.0);
      double u2 = rng.UniformDouble(0.0, 1.0);
      double normal = std::sqrt(-2.0 * std::log(u1)) *
                      std::cos(2.0 * 3.14159265358979323846 * u2);
      extra = plan_.tail_scale_ms * std::exp(plan_.tail_sigma * normal);
      break;
    }
  }
  if (IsSlow(responder)) {
    // Coalition members are consistently tardy: every answer is scaled, with
    // a tail_scale_ms floor so the coalition bites even with tail == kNone.
    extra = plan_.slow_factor * (plan_.tail_scale_ms + extra);
  }
  return extra;
}

double FaultInjector::ExpectedTailDelayMs(graph::NodeId responder) const {
  double mean = 0.0;
  switch (plan_.tail) {
    case LatencyTail::kNone:
      break;
    case LatencyTail::kPareto:
      // E[scale * (u^{-1/a} - 1)] = scale / (alpha - 1) for alpha > 1. For
      // alpha <= 1 the mean diverges; report a large-but-finite proxy so
      // callers predicting tardiness still rank peers sensibly.
      mean = plan_.tail_alpha > 1.0
                 ? plan_.tail_scale_ms / (plan_.tail_alpha - 1.0)
                 : plan_.tail_scale_ms * 100.0;
      break;
    case LatencyTail::kLognormal:
      mean = plan_.tail_scale_ms *
             std::exp(0.5 * plan_.tail_sigma * plan_.tail_sigma);
      break;
  }
  if (IsSlow(responder)) {
    mean = plan_.slow_factor * (plan_.tail_scale_ms + mean);
  }
  return mean;
}

bool FaultInjector::IsImmune(graph::NodeId peer) const {
  return std::find(plan_.crash_immune.begin(), plan_.crash_immune.end(),
                   peer) != plan_.crash_immune.end();
}

FaultDecision FaultInjector::OnMessage(MessageType type, graph::NodeId from,
                                       graph::NodeId to,
                                       graph::NodeId crash_candidate) {
  FaultDecision decision;
  const uint64_t index = messages_seen_++;
  FaultEvent base;
  base.message_index = index;
  base.message_type = type;
  base.from = from;
  base.to = to;

  // Scheduled crashes first (no RNG): everything due at this index fires.
  while (next_scheduled_ < plan_.scheduled_crashes.size() &&
         plan_.scheduled_crashes[next_scheduled_].at_message <= index) {
    const ScheduledCrash& crash = plan_.scheduled_crashes[next_scheduled_++];
    if (crash.peer == graph::kInvalidNode || IsImmune(crash.peer)) continue;
    decision.crashed.push_back(crash.peer);
    FaultEvent event = base;
    event.kind = FaultKind::kScheduledCrash;
    event.crashed = crash.peer;
    trace_.push_back(event);
    ++crashes_;
  }
  // Probabilistic crash of the eligible endpoint: the peer is gone and its
  // in-flight message with it.
  if (plan_.crash_probability > 0.0 &&
      crash_candidate != graph::kInvalidNode && !IsImmune(crash_candidate) &&
      rng_.Bernoulli(plan_.crash_probability)) {
    decision.crashed.push_back(crash_candidate);
    decision.deliver = false;
    FaultEvent event = base;
    event.kind = FaultKind::kCrash;
    event.crashed = crash_candidate;
    trace_.push_back(event);
    ++crashes_;
  }
  if (decision.deliver && plan_.drop_probability > 0.0 &&
      rng_.Bernoulli(plan_.drop_probability)) {
    decision.deliver = false;
    FaultEvent event = base;
    event.kind = FaultKind::kDrop;
    trace_.push_back(event);
    ++dropped_;
  }
  if (decision.deliver && plan_.spike_probability > 0.0 &&
      rng_.Bernoulli(plan_.spike_probability)) {
    // Exponential spike with the configured mean.
    double u = rng_.UniformDouble(1e-12, 1.0);
    double spike = -plan_.spike_mean_ms * std::log(u);
    decision.extra_latency_ms = spike;
    FaultEvent event = base;
    event.kind = FaultKind::kLatencySpike;
    event.spike_ms = spike;
    trace_.push_back(event);
    ++spikes_;
  }
  // Heavy-tailed straggler delay, drawn last so enabling a tail regime does
  // not perturb the crash/drop/spike sub-streams of an existing plan. The
  // delay attaches to the responding endpoint (the crash candidate: the
  // replier for replies, the receiver for requests); counters only, no trace
  // entries — at per-message volume the trace would dwarf the run.
  if (decision.deliver && plan_.straggler_enabled()) {
    graph::NodeId responder =
        crash_candidate != graph::kInvalidNode ? crash_candidate : to;
    double tail = DrawTailDelay(responder, rng_);
    if (tail > 0.0) {
      decision.extra_latency_ms += tail;
      tail_delay_ms_ += tail;
      ++tail_messages_;
    }
  }
  return decision;
}

}  // namespace p2paqp::net

#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace p2paqp::net {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kScheduledCrash:
      return "scheduled_crash";
  }
  return "unknown";
}

bool operator==(const FaultEvent& a, const FaultEvent& b) {
  return a.message_index == b.message_index && a.kind == b.kind &&
         a.message_type == b.message_type && a.from == b.from && a.to == b.to &&
         a.crashed == b.crashed && a.spike_ms == b.spike_ms;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), rng_(seed) {
  // Scheduled crashes fire in message order regardless of how the caller
  // listed them.
  std::stable_sort(plan_.scheduled_crashes.begin(),
                   plan_.scheduled_crashes.end(),
                   [](const ScheduledCrash& a, const ScheduledCrash& b) {
                     return a.at_message < b.at_message;
                   });
}

bool FaultInjector::IsImmune(graph::NodeId peer) const {
  return std::find(plan_.crash_immune.begin(), plan_.crash_immune.end(),
                   peer) != plan_.crash_immune.end();
}

FaultDecision FaultInjector::OnMessage(MessageType type, graph::NodeId from,
                                       graph::NodeId to,
                                       graph::NodeId crash_candidate) {
  FaultDecision decision;
  const uint64_t index = messages_seen_++;
  FaultEvent base;
  base.message_index = index;
  base.message_type = type;
  base.from = from;
  base.to = to;

  // Scheduled crashes first (no RNG): everything due at this index fires.
  while (next_scheduled_ < plan_.scheduled_crashes.size() &&
         plan_.scheduled_crashes[next_scheduled_].at_message <= index) {
    const ScheduledCrash& crash = plan_.scheduled_crashes[next_scheduled_++];
    if (crash.peer == graph::kInvalidNode || IsImmune(crash.peer)) continue;
    decision.crashed.push_back(crash.peer);
    FaultEvent event = base;
    event.kind = FaultKind::kScheduledCrash;
    event.crashed = crash.peer;
    trace_.push_back(event);
    ++crashes_;
  }
  // Probabilistic crash of the eligible endpoint: the peer is gone and its
  // in-flight message with it.
  if (plan_.crash_probability > 0.0 &&
      crash_candidate != graph::kInvalidNode && !IsImmune(crash_candidate) &&
      rng_.Bernoulli(plan_.crash_probability)) {
    decision.crashed.push_back(crash_candidate);
    decision.deliver = false;
    FaultEvent event = base;
    event.kind = FaultKind::kCrash;
    event.crashed = crash_candidate;
    trace_.push_back(event);
    ++crashes_;
  }
  if (decision.deliver && plan_.drop_probability > 0.0 &&
      rng_.Bernoulli(plan_.drop_probability)) {
    decision.deliver = false;
    FaultEvent event = base;
    event.kind = FaultKind::kDrop;
    trace_.push_back(event);
    ++dropped_;
  }
  if (decision.deliver && plan_.spike_probability > 0.0 &&
      rng_.Bernoulli(plan_.spike_probability)) {
    // Exponential spike with the configured mean.
    double u = rng_.UniformDouble(1e-12, 1.0);
    double spike = -plan_.spike_mean_ms * std::log(u);
    decision.extra_latency_ms = spike;
    FaultEvent event = base;
    event.kind = FaultKind::kLatencySpike;
    event.spike_ms = spike;
    trace_.push_back(event);
    ++spikes_;
  }
  return decision;
}

}  // namespace p2paqp::net

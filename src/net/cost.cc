#include "net/cost.h"

#include <cstdio>

#include "util/logging.h"

namespace p2paqp::net {

void CostTracker::RecordBatchedMessage(uint64_t batched_bytes,
                                       uint64_t per_query_bytes,
                                       uint32_t batch, uint64_t header_bytes) {
  P2PAQP_CHECK_GE(batch, 1u);
  P2PAQP_CHECK_GE(per_query_bytes, header_bytes);
  // sum of per-query payloads, minus the batch-1 headers shared away.
  uint64_t expected =
      batch * per_query_bytes - (uint64_t{batch} - 1) * header_bytes;
  P2PAQP_CHECK_EQ(batched_bytes, expected)
      << "batched payload must equal sum of per-query payloads plus exactly "
         "one shared header";
  RecordMessage(batched_bytes);
}

CostSnapshot& CostSnapshot::operator+=(const CostSnapshot& other) {
  peers_visited += other.peers_visited;
  walker_hops += other.walker_hops;
  messages += other.messages;
  bytes_shipped += other.bytes_shipped;
  tuples_scanned += other.tuples_scanned;
  tuples_sampled += other.tuples_sampled;
  latency_ms += other.latency_ms;
  messages_delivered += other.messages_delivered;
  messages_dropped += other.messages_dropped;
  return *this;
}

CostSnapshot CostDelta(const CostSnapshot& after, const CostSnapshot& before) {
  CostSnapshot delta;
  delta.peers_visited = after.peers_visited - before.peers_visited;
  delta.walker_hops = after.walker_hops - before.walker_hops;
  delta.messages = after.messages - before.messages;
  delta.bytes_shipped = after.bytes_shipped - before.bytes_shipped;
  delta.tuples_scanned = after.tuples_scanned - before.tuples_scanned;
  delta.tuples_sampled = after.tuples_sampled - before.tuples_sampled;
  delta.latency_ms = after.latency_ms - before.latency_ms;
  delta.messages_delivered = after.messages_delivered - before.messages_delivered;
  delta.messages_dropped = after.messages_dropped - before.messages_dropped;
  return delta;
}

std::string CostSnapshot::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "peers=%llu hops=%llu msgs=%llu (ok=%llu lost=%llu) "
                "bytes=%llu scanned=%llu sampled=%llu latency=%.1fms",
                static_cast<unsigned long long>(peers_visited),
                static_cast<unsigned long long>(walker_hops),
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(messages_delivered),
                static_cast<unsigned long long>(messages_dropped),
                static_cast<unsigned long long>(bytes_shipped),
                static_cast<unsigned long long>(tuples_scanned),
                static_cast<unsigned long long>(tuples_sampled), latency_ms);
  return buf;
}

}  // namespace p2paqp::net

#include "net/overlay_manager.h"

#include <algorithm>
#include <deque>

namespace p2paqp::net {

OverlayManager::OverlayManager(const graph::Graph& seed)
    : adjacency_(seed.num_nodes()),
      active_(seed.num_nodes(), true),
      num_active_(seed.num_nodes()),
      num_edges_(seed.num_edges()) {
  for (graph::NodeId u = 0; u < seed.num_nodes(); ++u) {
    auto span = seed.neighbors(u);
    adjacency_[u].assign(span.begin(), span.end());
  }
}

uint32_t OverlayManager::Degree(graph::NodeId id) const {
  P2PAQP_CHECK(id < adjacency_.size()) << id;
  return static_cast<uint32_t>(adjacency_[id].size());
}

const std::vector<graph::NodeId>& OverlayManager::Neighbors(
    graph::NodeId id) const {
  P2PAQP_CHECK(id < adjacency_.size()) << id;
  return adjacency_[id];
}

graph::NodeId OverlayManager::PickContact(util::Rng& rng) const {
  P2PAQP_CHECK_GT(num_active_, 0u);
  // Rejection sampling against the max weight keeps this O(1)-ish without
  // materializing a weight vector on every join.
  size_t max_degree = 1;
  for (graph::NodeId v = 0; v < adjacency_.size(); ++v) {
    if (active_[v]) max_degree = std::max(max_degree, adjacency_[v].size() + 1);
  }
  while (true) {
    auto candidate =
        static_cast<graph::NodeId>(rng.UniformIndex(adjacency_.size()));
    if (!active_[candidate]) continue;
    double weight = static_cast<double>(adjacency_[candidate].size() + 1);
    if (rng.UniformDouble(0.0, static_cast<double>(max_degree)) < weight) {
      return candidate;
    }
  }
}

void OverlayManager::RecordBootstrapHandshake(graph::NodeId joiner,
                                              graph::NodeId contact) {
  if (history_ == nullptr) return;
  history_->Record(HistoryEventKind::kSend, MessageType::kPing, joiner,
                   contact);
  history_->Record(HistoryEventKind::kDeliver, MessageType::kPing, joiner,
                   contact);
  history_->Record(HistoryEventKind::kSend, MessageType::kPong, contact,
                   joiner);
  history_->Record(HistoryEventKind::kDeliver, MessageType::kPong, contact,
                   joiner);
}

bool OverlayManager::AddEdge(graph::NodeId a, graph::NodeId b) {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return false;
  if (!active_[a] || !active_[b]) return false;
  auto& list = adjacency_[a];
  if (std::find(list.begin(), list.end(), b) != list.end()) return false;
  list.push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
  return true;
}

bool OverlayManager::RemoveEdge(graph::NodeId a, graph::NodeId b) {
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  auto& la = adjacency_[a];
  auto it = std::find(la.begin(), la.end(), b);
  if (it == la.end()) return false;
  la.erase(it);
  auto& lb = adjacency_[b];
  lb.erase(std::find(lb.begin(), lb.end(), a));
  --num_edges_;
  return true;
}

util::Result<graph::NodeId> OverlayManager::Join(size_t connections,
                                                 util::Rng& rng) {
  if (num_active_ == 0) {
    return util::Status::FailedPrecondition("no active peers to contact");
  }
  auto id = static_cast<graph::NodeId>(adjacency_.size());
  adjacency_.emplace_back();
  active_.push_back(true);
  ++num_active_;
  if (history_ != nullptr) {
    history_->Record(HistoryEventKind::kPeerUp, MessageType::kPing, id, id);
  }
  size_t want = std::min(connections, num_active_ - 1);
  size_t attempts = 0;
  while (Degree(id) < want && attempts < 50 * want + 50) {
    ++attempts;
    graph::NodeId contact = PickContact(rng);
    if (AddEdge(id, contact)) RecordBootstrapHandshake(id, contact);
  }
  return id;
}

void OverlayManager::Leave(graph::NodeId id) {
  if (id >= adjacency_.size() || !active_[id]) return;
  // Detach all edges (copy: RemoveEdge mutates the list).
  std::vector<graph::NodeId> neighbors = adjacency_[id];
  for (graph::NodeId v : neighbors) RemoveEdge(id, v);
  active_[id] = false;
  --num_active_;
  if (history_ != nullptr) {
    history_->Record(HistoryEventKind::kPeerDown, MessageType::kPing, id, id);
  }
}

util::Status OverlayManager::Rejoin(graph::NodeId id, size_t connections,
                                    util::Rng& rng) {
  if (id >= adjacency_.size()) {
    return util::Status::InvalidArgument("unknown node");
  }
  if (active_[id]) {
    return util::Status::FailedPrecondition("node is already active");
  }
  if (num_active_ == 0) {
    return util::Status::FailedPrecondition("no active peers to contact");
  }
  active_[id] = true;
  ++num_active_;
  if (history_ != nullptr) {
    history_->Record(HistoryEventKind::kPeerUp, MessageType::kPing, id, id);
  }
  size_t want = std::min(connections, num_active_ - 1);
  size_t attempts = 0;
  while (Degree(id) < want && attempts < 50 * want + 50) {
    ++attempts;
    graph::NodeId contact = PickContact(rng);
    if (AddEdge(id, contact)) RecordBootstrapHandshake(id, contact);
  }
  return util::Status::Ok();
}

graph::Graph OverlayManager::Snapshot() const {
  return graph::Graph(adjacency_);
}

bool OverlayManager::ActiveIsConnected() const {
  if (num_active_ == 0) return true;
  graph::NodeId start = 0;
  while (start < active_.size() && !active_[start]) ++start;
  std::vector<bool> seen(adjacency_.size(), false);
  std::deque<graph::NodeId> queue = {start};
  seen[start] = true;
  size_t visited = 1;
  while (!queue.empty()) {
    graph::NodeId u = queue.front();
    queue.pop_front();
    for (graph::NodeId v : adjacency_[u]) {
      if (!seen[v] && active_[v]) {
        seen[v] = true;
        ++visited;
        queue.push_back(v);
      }
    }
  }
  return visited == num_active_;
}

}  // namespace p2paqp::net

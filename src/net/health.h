// Per-peer health scoreboard and the straggler-resilience policy knobs.
//
// The scoreboard is an EWMA latency + failure-rate tracker fed by the
// engines as replies resolve; a pure-function circuit breaker on top of it
// lets neighbor selection route around peers that have proven themselves
// tardy or flaky. Skipped peers stay *selectable* (a skip is a lazy
// self-loop that preserves the walk's stationary distribution, and
// selection-due hops are never breaker-skipped), so Horvitz-Thompson
// weights stay unbiased — the board only steers which transit edges the
// walk is willing to wait on.
//
// Everything here is flat arrays + scalars: EnsureCapacity() is called in
// the engines' reserve-before-drain block, after which Record()/Tripped()
// are allocation-free inside the event loop (the zero-allocation gate
// covers them).
#ifndef P2PAQP_NET_HEALTH_H_
#define P2PAQP_NET_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::net {

// All straggler-resilience knobs in one struct so EngineParams carries a
// single field. Default-constructed = everything off: engines behave (and
// draw RNG) exactly as before this subsystem existed.
struct StragglerPolicy {
  // --- Walk-Not-Wait ------------------------------------------------------
  // A walker whose next hop would take longer than the adaptive budget
  // (hop_budget_factor x observed hop EWMA) gives up on the transit after
  // the budget elapses instead of blocking. A fork is a lazy self-loop
  // (stationary-distribution preserving), and the tardy peer is still
  // selected in absentia on selection-due hops.
  bool walk_not_wait = false;
  double hop_budget_factor = 4.0;
  // Budget floor so a lucky streak of fast hops cannot shrink the budget
  // into hair-trigger territory (ms; 0 = derive from the nominal hop).
  double hop_budget_floor_ms = 0.0;

  // --- Hedged replies -----------------------------------------------------
  // When a primary reply's modelled delay exceeds hedge_delay_factor x the
  // reply-latency EWMA (the adaptive "slowest decile" cut), the sink sends
  // one hedged duplicate; (peer, selection_seq) dedup absorbs double
  // deliveries.
  bool hedged_replies = false;
  double hedge_delay_factor = 3.0;

  // --- Retransmit backoff -------------------------------------------------
  // Fixed sink-side wait charged to the ledger per retry (0 keeps the PR 1
  // behavior of charging nothing), or exponential backoff from
  // backoff_base_ms with deterministic seed-derived +/-jitter.
  double retransmit_timeout_ms = 0.0;
  bool exponential_backoff = false;
  double backoff_base_ms = 120.0;
  double backoff_jitter = 0.25;
  // Per-query cap on retries + hedges combined (0 = unlimited).
  size_t retry_budget = 0;

  // --- Health scoreboard / circuit breaker --------------------------------
  bool health_tracking = false;
  double ewma_alpha = 0.2;
  // Breaker trips when a peer has at least breaker_min_samples observations
  // and either its failure EWMA crosses the threshold or its latency EWMA
  // exceeds breaker_latency_factor x the global latency EWMA.
  double breaker_failure_threshold = 0.6;
  double breaker_latency_factor = 8.0;
  size_t breaker_min_samples = 4;

  bool enabled() const {
    return walk_not_wait || hedged_replies || exponential_backoff ||
           retransmit_timeout_ms > 0.0 || health_tracking || retry_budget > 0;
  }
};

// Sink-side wait before retry `attempt` (1-based) under `policy`: the fixed
// timer, or exponential backoff with jitter drawn from `rng`. Consumes RNG
// only when exponential backoff with jitter is on, so legacy query streams
// replay bit-identically under legacy policies.
double RetryBackoffMs(const StragglerPolicy& policy, size_t attempt,
                      util::Rng& rng);

// EWMA latency + failure scoreboard over the peers a query has touched.
class PeerHealthBoard {
 public:
  void Configure(const StragglerPolicy& policy) { policy_ = policy; }

  // Grows the flat per-peer arrays (allocation happens HERE, outside the
  // drain) and clears all statistics.
  void Reset(size_t num_peers);

  // Folds one resolved reply/hop into the peer's EWMAs. Failures update the
  // failure rate only (there is no meaningful latency for a lost message).
  void Record(graph::NodeId peer, double latency_ms, bool ok);

  double LatencyEwma(graph::NodeId peer) const { return latency_[peer]; }
  double FailureEwma(graph::NodeId peer) const { return failure_[peer]; }
  uint32_t Samples(graph::NodeId peer) const { return samples_[peer]; }
  double GlobalLatencyEwma() const { return global_latency_; }

  // Circuit breaker: pure function of the recorded statistics.
  bool Tripped(graph::NodeId peer) const;

  // Number of touched peers currently past the breaker (telemetry; O(touched)).
  size_t TrippedCount() const;
  size_t TouchedPeers() const { return touched_.size(); }

  bool empty() const { return latency_.empty(); }

 private:
  StragglerPolicy policy_;
  std::vector<float> latency_;
  std::vector<float> failure_;
  std::vector<uint32_t> samples_;
  std::vector<graph::NodeId> touched_;
  double global_latency_ = 0.0;
  uint64_t global_samples_ = 0;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_HEALTH_H_

// Gnutella-style control protocol over the simulated overlay.
//
// Implements the four Gnutella message flows from Sec. 3.1: Ping/Pong
// neighborhood discovery and TTL-bounded Query flooding (the "naive BFS"
// search the paper contrasts its walker against). The BFS sampling baseline
// (Fig. 7) gathers its peers with FloodCollect.
#ifndef P2PAQP_NET_PROTOCOL_H_
#define P2PAQP_NET_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "net/network.h"

namespace p2paqp::net {

struct FloodResult {
  // Peers reached (excluding the origin), in BFS discovery order.
  std::vector<graph::NodeId> reached;
  uint32_t max_depth = 0;
};

class GnutellaProtocol {
 public:
  explicit GnutellaProtocol(SimulatedNetwork* network) : network_(network) {}

  // Ping flood with the given TTL; every reached live peer answers with a
  // Pong routed back along the reverse path (costs accounted per hop).
  // Returns discovered peers.
  FloodResult Ping(graph::NodeId origin, uint32_t ttl);

  // Query flood (BFS) with TTL; reached peers send a QueryHit. This is the
  // resource-hungry baseline the paper criticizes.
  FloodResult FloodQuery(graph::NodeId origin, uint32_t ttl);

  // Floods outward from `origin` until at least `min_peers` live peers are
  // collected (or the reachable set is exhausted), charging message costs.
  // Used by the BFS sampling baseline: "collect our sample from the peers in
  // the neighborhood of the querying peer".
  std::vector<graph::NodeId> FloodCollect(graph::NodeId origin,
                                          size_t min_peers);

 private:
  FloodResult Flood(MessageType request, MessageType reply,
                    graph::NodeId origin, uint32_t ttl, size_t max_peers);

  SimulatedNetwork* network_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_PROTOCOL_H_

#include "net/churn.h"

#include <algorithm>

namespace p2paqp::net {

bool ChurnModel::IsPinned(graph::NodeId id) const {
  return std::find(params_.pinned.begin(), params_.pinned.end(), id) !=
         params_.pinned.end();
}

size_t ChurnModel::Step(SimulatedNetwork& network) {
  size_t changes = 0;
  for (graph::NodeId id = 0; id < network.num_peers(); ++id) {
    if (IsPinned(id)) continue;
    if (network.IsAlive(id)) {
      if (rng_.Bernoulli(params_.leave_probability)) {
        network.SetAlive(id, false);
        ++changes;
      }
    } else if (rng_.Bernoulli(params_.rejoin_probability)) {
      network.SetAlive(id, true);
      ++changes;
    }
  }
  return changes;
}

}  // namespace p2paqp::net

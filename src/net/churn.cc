#include "net/churn.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace p2paqp::net {

bool ChurnModel::IsPinned(graph::NodeId id) const {
  return std::find(params_.pinned.begin(), params_.pinned.end(), id) !=
         params_.pinned.end();
}

size_t ChurnModel::Step(SimulatedNetwork& network) {
  size_t changes = 0;
  for (graph::NodeId id = 0; id < network.num_peers(); ++id) {
    if (IsPinned(id)) continue;
    if (network.IsAlive(id)) {
      if (rng_.Bernoulli(params_.leave_probability)) {
        network.SetAlive(id, false);
        ++changes;
      }
    } else if (rng_.Bernoulli(params_.rejoin_probability)) {
      network.SetAlive(id, true);
      ++changes;
    }
  }
  return changes;
}

void ChurnModel::RunOnEventQueue(EventQueue& events, SimulatedNetwork* network,
                                 double interval_ms,
                                 std::function<bool()> keep_going) {
  P2PAQP_CHECK(network != nullptr);
  P2PAQP_CHECK_GT(interval_ms, 0.0);
  // Self-rescheduling tick. The closure holds only a weak self-reference
  // (the strong references live in the queued events), so the chain is
  // freed as soon as keep_going declines to reschedule. keep_going is the
  // termination guarantee: once the query has no in-flight work left, no
  // further epoch is scheduled and the queue can drain.
  auto tick = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = tick;
  *tick = [this, &events, network, interval_ms,
           keep_going = std::move(keep_going), weak]() {
    if (!keep_going()) return;
    Step(*network);
    if (auto strong = weak.lock()) {
      events.ScheduleAfter(interval_ms, [strong]() { (*strong)(); });
    }
  };
  events.ScheduleAfter(interval_ms, [tick]() { (*tick)(); });
}

}  // namespace p2paqp::net

#include "net/adversary.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace p2paqp::net {

const char* AdversaryBehaviorToString(AdversaryBehavior behavior) {
  switch (behavior) {
    case AdversaryBehavior::kDegreeInflate:
      return "degree_inflate";
    case AdversaryBehavior::kDegreeDeflate:
      return "degree_deflate";
    case AdversaryBehavior::kSignFlip:
      return "sign_flip";
    case AdversaryBehavior::kScale:
      return "scale";
    case AdversaryBehavior::kOutlier:
      return "outlier";
    case AdversaryBehavior::kReplay:
      return "replay";
    case AdversaryBehavior::kHijack:
      return "hijack";
  }
  return "unknown";
}

bool ParseAdversaryBehavior(const std::string& name,
                            AdversaryBehavior* behavior) {
  for (AdversaryBehavior b :
       {AdversaryBehavior::kDegreeInflate, AdversaryBehavior::kDegreeDeflate,
        AdversaryBehavior::kSignFlip, AdversaryBehavior::kScale,
        AdversaryBehavior::kOutlier, AdversaryBehavior::kReplay,
        AdversaryBehavior::kHijack}) {
    if (name == AdversaryBehaviorToString(b)) {
      *behavior = b;
      return true;
    }
  }
  return false;
}

AdversaryPlan MakeBehaviorPlan(AdversaryBehavior behavior, double fraction) {
  AdversaryPlan plan;
  plan.adversary_fraction = fraction;
  switch (behavior) {
    case AdversaryBehavior::kDegreeInflate:
      plan.degree_factor = 4.0;
      break;
    case AdversaryBehavior::kDegreeDeflate:
      plan.degree_factor = 0.25;
      break;
    case AdversaryBehavior::kSignFlip:
      plan.value_scale = -1.0;
      break;
    case AdversaryBehavior::kScale:
      plan.value_scale = 10.0;
      break;
    case AdversaryBehavior::kOutlier:
      plan.outlier_probability = 0.5;
      plan.outlier_magnitude = 100.0;
      break;
    case AdversaryBehavior::kReplay:
      plan.replay_copies = 3;
      break;
    case AdversaryBehavior::kHijack:
      plan.hijack_walk = true;
      break;
  }
  return plan;
}

AdversaryInjector::AdversaryInjector(AdversaryPlan plan, uint64_t seed,
                                     size_t num_peers)
    : plan_(std::move(plan)), rng_(seed), adversarial_(num_peers, false) {
  auto immune = [this](graph::NodeId peer) {
    return std::find(plan_.immune.begin(), plan_.immune.end(), peer) !=
           plan_.immune.end();
  };
  if (plan_.adversary_fraction > 0.0 && num_peers > 0) {
    auto target = static_cast<size_t>(plan_.adversary_fraction *
                                      static_cast<double>(num_peers));
    target = std::min(target, num_peers);
    // Without-replacement draw so the realized fraction is exact; the order
    // of SampleIndices is random but membership is what matters.
    for (size_t index : rng_.SampleIndices(num_peers, target)) {
      auto peer = static_cast<graph::NodeId>(index);
      if (!immune(peer)) adversarial_[peer] = true;
    }
  }
  for (graph::NodeId peer : plan_.adversaries) {
    if (peer < adversarial_.size() && !immune(peer)) {
      adversarial_[peer] = true;
    }
  }
}

std::vector<graph::NodeId> AdversaryInjector::Adversaries() const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId peer = 0; peer < adversarial_.size(); ++peer) {
    if (adversarial_[peer]) out.push_back(peer);
  }
  return out;
}

uint32_t AdversaryInjector::ClaimedDegree(graph::NodeId peer,
                                          uint32_t true_degree) {
  if (!IsAdversarial(peer) || plan_.degree_factor == 1.0) return true_degree;
  double claimed =
      std::round(static_cast<double>(true_degree) * plan_.degree_factor);
  ++degrees_misreported_;
  return static_cast<uint32_t>(std::max(1.0, claimed));
}

ReplyTampering AdversaryInjector::OnReply(graph::NodeId peer) {
  ReplyTampering tampering;
  if (!IsAdversarial(peer)) return tampering;
  tampering.value_scale = plan_.value_scale;
  if (plan_.outlier_probability > 0.0 &&
      rng_.Bernoulli(plan_.outlier_probability)) {
    tampering.outlier = true;
    tampering.value_scale *= plan_.outlier_magnitude;
  }
  tampering.replays = plan_.replay_copies;
  if (tampering.value_scale != 1.0) ++replies_tampered_;
  replays_injected_ += tampering.replays;
  return tampering;
}

void AdversaryInjector::RestrictForwarding(
    graph::NodeId holder, std::vector<graph::NodeId>* neighbors) {
  if (!plan_.hijack_walk || !IsAdversarial(holder)) return;
  std::vector<graph::NodeId> colluders;
  for (graph::NodeId neighbor : *neighbors) {
    if (IsAdversarial(neighbor)) colluders.push_back(neighbor);
  }
  // A coalition member with no colluding route forwards honestly — refusing
  // outright would strand the token and give the attack away.
  if (colluders.empty()) return;
  *neighbors = std::move(colluders);
  ++hops_hijacked_;
}

}  // namespace p2paqp::net

// A peer node: identity, capabilities and its horizontal data partition.
#ifndef P2PAQP_NET_PEER_H_
#define P2PAQP_NET_PEER_H_

#include <cstdint>
#include <string>

#include "data/local_database.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::net {

// Hardware/connection envelope from Sec. 3.1 (p_cpu, p_mem, p_disk, p_band,
// p_conn). Purely descriptive in the simulator but kept so cost models can
// scale local processing time by peer speed.
struct PeerCapabilities {
  double cpu_ghz = 1.0;
  uint32_t memory_mb = 256;
  uint32_t disk_gb = 20;
  uint32_t bandwidth_kbps = 768;
  uint16_t max_connections = 8;
};

// Generates plausible heterogeneous capabilities.
PeerCapabilities RandomCapabilities(util::Rng& rng);

class Peer {
 public:
  Peer() = default;
  Peer(graph::NodeId id, uint32_t ipv4, uint16_t port,
       PeerCapabilities capabilities)
      : id_(id), ipv4_(ipv4), port_(port), capabilities_(capabilities) {}

  graph::NodeId id() const { return id_; }
  uint32_t ipv4() const { return ipv4_; }
  uint16_t port() const { return port_; }
  // Dotted-quad "a.b.c.d:port" identity string (IP_p, port_p).
  std::string address() const;

  const PeerCapabilities& capabilities() const { return capabilities_; }

  bool alive() const { return alive_; }
  void set_alive(bool alive) {
    // A rejoin is a fresh session: the peer's previous life ended "without
    // notice" (Sec. 1), so any state another component associates with the
    // old incarnation (an in-flight walker token, a pending reply timer) is
    // gone. Holders compare the incarnation they captured at hand-off
    // against the current one to detect death-and-rebirth between events.
    if (alive && !alive_) ++incarnation_;
    alive_ = alive;
  }
  // Number of times this peer has (re)joined; starts at 0 for the first
  // life. Bumped on every dead -> alive transition.
  uint64_t incarnation() const { return incarnation_; }

  const data::LocalDatabase& database() const { return database_; }
  data::LocalDatabase& mutable_database() { return database_; }
  void set_database(data::LocalDatabase database) {
    database_ = std::move(database);
  }

 private:
  graph::NodeId id_ = graph::kInvalidNode;
  uint32_t ipv4_ = 0;
  uint16_t port_ = 0;
  PeerCapabilities capabilities_;
  bool alive_ = true;
  uint64_t incarnation_ = 0;
  data::LocalDatabase database_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_PEER_H_

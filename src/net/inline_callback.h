// Move-only small-buffer callable for the event core's slab slots.
//
// std::function heap-allocates whenever a callback's captures outgrow its
// ~16-byte small-object buffer — which, at one scheduled event per walker
// hop / reply / timeout, made the allocator the hottest function in the
// event-driven engine. InlineCallback stores up to kInlineBytes of capture
// state directly inside the slab slot: constructing, moving and destroying a
// hot-path event touches no allocator at all, which is what the
// steady_state_allocs_per_event == 0 gate measures (docs/PERFORMANCE.md).
//
// Callables larger than the buffer still work — they fall back to a single
// heap cell — so cold callers (test fixtures, large one-off closures) need
// no changes. Hot-path captures are kept small by design: a runtime pointer
// plus an arena handle (net/arena.h) instead of by-value payloads.
#ifndef P2PAQP_NET_INLINE_CALLBACK_H_
#define P2PAQP_NET_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace p2paqp::net {

class InlineCallback {
 public:
  // 48 bytes covers every steady-state capture set (a pointer-sized runtime
  // reference, an arena handle, a couple of PODs) while keeping the slab
  // slot — buffer + dispatch table pointer — within one cache line.
  static constexpr size_t kInlineBytes = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      // Cold fallback: one heap cell, owned through the dispatch table.
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) {
    Destroy();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* storage) { (*static_cast<Fn*>(storage))(); }
    static void Relocate(void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* storage) { static_cast<Fn*>(storage)->~Fn(); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn*& Cell(void* storage) {
      return *static_cast<Fn**>(storage);
    }
    static void Invoke(void* storage) { (*Cell(storage))(); }
    static void Relocate(void* dst, void* src) {
      *static_cast<Fn**>(dst) = Cell(src);
    }
    static void Destroy(void* storage) { delete Cell(storage); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  void MoveFrom(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void Destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_INLINE_CALLBACK_H_

#include "net/event_sim.h"

#include <utility>

namespace p2paqp::net {

void EventQueue::ScheduleAt(double at, Callback callback) {
  P2PAQP_CHECK_GE(at, now_) << "cannot schedule in the past";
  heap_.push(Event{at, next_sequence_++, std::move(callback)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via the
  // const_cast idiom (the element is popped immediately after).
  auto& top = const_cast<Event&>(heap_.top());
  double at = top.at;
  Callback callback = std::move(top.callback);
  heap_.pop();
  now_ = at;
  ++executed_;
  callback();
  return true;
}

double EventQueue::RunUntilEmpty(uint64_t max_events) {
  uint64_t budget = max_events;
  while (RunOne()) {
    P2PAQP_CHECK_GT(budget--, 0u) << "event cascade exceeded budget";
  }
  return now_;
}

}  // namespace p2paqp::net

#include "net/event_sim.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/parallel.h"

namespace p2paqp::net {

size_t EventQueue::ResolveShards() {
  size_t threads = util::ParallelThreads();
  size_t shards = 1;
  while (shards < threads && shards < kMaxShards) shards <<= 1;
  return shards;
}

EventQueue::EventQueue() : EventQueue(ResolveShards()) {}

EventQueue::EventQueue(size_t shards) {
  P2PAQP_CHECK_GT(shards, 0u);
  P2PAQP_CHECK_EQ(shards & (shards - 1), 0u)
      << "shard count must be a power of two";
  shards_.resize(shards);
  shard_mask_ = shards - 1;
}

size_t EventQueue::pending() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.heap.size() + shard.sorted.size();
  }
  return total;
}

uint32_t EventQueue::AcquireSlot(Shard& shard) {
  if (shard.free_head != kNoSlot) {
    uint32_t slot = shard.free_head;
    shard.free_head = shard.slab[slot].next_free;
    shard.slab[slot].next_free = kNoSlot;
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(shard.slab.size());
  P2PAQP_CHECK_LT(slot, kSlotMask) << "event slab exhausted";
  shard.slab.emplace_back();
  return slot;
}

void EventQueue::ReleaseSlot(Shard& shard, uint32_t slot) {
  // Drop the callback's captures immediately; the slot goes to the head of
  // its shard's free list so the hot loop reuses the same few slots.
  shard.slab[slot].callback = nullptr;
  shard.slab[slot].handler = nullptr;
  shard.slab[slot].next_free = shard.free_head;
  shard.free_head = slot;
}

void EventQueue::SiftUp(Shard& shard, size_t index) {
  auto& heap = shard.heap;
  Handle moving = heap[index];
  while (index > 0) {
    size_t parent = (index - 1) / 4;
    if (!Earlier(moving, heap[parent])) break;
    heap[index] = heap[parent];
    index = parent;
  }
  heap[index] = moving;
}

void EventQueue::SiftDown(Shard& shard, size_t index) {
  auto& heap = shard.heap;
  const size_t size = heap.size();
  Handle moving = heap[index];
  for (;;) {
    size_t first_child = index * 4 + 1;
    if (first_child >= size) break;
    size_t last_child = first_child + 4 < size ? first_child + 4 : size;
    size_t best = first_child;
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (Earlier(heap[child], heap[best])) best = child;
    }
    if (!Earlier(heap[best], moving)) break;
    heap[index] = heap[best];
    index = best;
  }
  heap[index] = moving;
}

EventQueue::Handle EventQueue::PopHeap(Shard& shard) {
  auto& heap = shard.heap;
  Handle top = heap[0];
  Handle last = heap.back();
  heap.pop_back();
  if (!heap.empty()) {
    heap[0] = last;
    SiftDown(shard, 0);
  }
  return top;
}

void EventQueue::Flush(Shard& shard) {
  // Both inputs are strictly totally ordered (unique sequences), so the
  // merged order — and therefore every later pop — is independent of when
  // flushes happen and of which shard an event landed in.
  std::sort(shard.heap.begin(), shard.heap.end(), Later);
  shard.scratch.clear();
  shard.scratch.reserve(shard.sorted.size() + shard.heap.size());
  std::merge(shard.sorted.begin(), shard.sorted.end(), shard.heap.begin(),
             shard.heap.end(), std::back_inserter(shard.scratch), Later);
  shard.sorted.swap(shard.scratch);
  shard.heap.clear();
}

bool EventQueue::PeekShard(const Shard& shard, Handle* out,
                           bool* from_heap) const {
  if (shard.sorted.empty()) {
    if (shard.heap.empty()) return false;
    *out = shard.heap[0];
    *from_heap = true;
    return true;
  }
  if (shard.heap.empty() || Earlier(shard.sorted.back(), shard.heap[0])) {
    *out = shard.sorted.back();
    *from_heap = false;
    return true;
  }
  *out = shard.heap[0];
  *from_heap = true;
  return true;
}

bool EventQueue::PeekGlobal(Handle* out, size_t* shard,
                            bool* from_heap) const {
  bool found = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Handle candidate;
    bool candidate_from_heap;
    if (!PeekShard(shards_[s], &candidate, &candidate_from_heap)) continue;
    if (!found || Earlier(candidate, *out)) {
      *out = candidate;
      *shard = s;
      *from_heap = candidate_from_heap;
      found = true;
    }
  }
  return found;
}

void EventQueue::PopFrom(size_t shard, bool from_heap) {
  if (from_heap) {
    PopHeap(shards_[shard]);
  } else {
    shards_[shard].sorted.pop_back();
  }
}

void EventQueue::Push(double at, Shard& shard, uint32_t slot) {
  shard.heap.push_back(Handle{at, (next_sequence_++ << kSlotBits) | slot});
  SiftUp(shard, shard.heap.size() - 1);
  if (shard.heap.size() >= kFlushThreshold) Flush(shard);
}

void EventQueue::ScheduleAt(double at, Callback callback) {
  P2PAQP_CHECK_GE(at, now_) << "cannot schedule in the past";
  P2PAQP_CHECK_LT(next_sequence_, uint64_t{1} << (64 - kSlotBits))
      << "event sequence space exhausted";
  // Round-robin by sequence: assignment balances load exactly and has no
  // effect on pop order (the (at, key) total order is global).
  Shard& shard = shards_[next_sequence_ & shard_mask_];
  uint32_t slot = AcquireSlot(shard);
  shard.slab[slot].callback = std::move(callback);
  Push(at, shard, slot);
}

void EventQueue::ScheduleStepAt(double at, StepHandler* handler,
                                uint32_t arg) {
  P2PAQP_CHECK_GE(at, now_) << "cannot schedule in the past";
  P2PAQP_CHECK_LT(next_sequence_, uint64_t{1} << (64 - kSlotBits))
      << "event sequence space exhausted";
  P2PAQP_CHECK(handler != nullptr);
  Shard& shard = shards_[next_sequence_ & shard_mask_];
  uint32_t slot = AcquireSlot(shard);
  shard.slab[slot].handler = handler;
  shard.slab[slot].arg = arg;
  Push(at, shard, slot);
}

bool EventQueue::RunOne() {
  Handle top;
  size_t best_shard;
  bool best_from_heap;
  if (!PeekGlobal(&top, &best_shard, &best_from_heap)) return false;
  PopFrom(best_shard, best_from_heap);
  now_ = top.at;
  ++executed_;
  Shard& shard = shards_[best_shard];
  // Pull the winning shard's NEXT pop candidates toward the cache while
  // this callback runs; pop order is unrelated to slab order, so these
  // accesses miss otherwise.
  if (!shard.sorted.empty()) {
    __builtin_prefetch(
        &shard.slab[static_cast<uint32_t>(shard.sorted.back().key) &
                    kSlotMask]);
  }
  if (!shard.heap.empty()) {
    __builtin_prefetch(
        &shard.slab[static_cast<uint32_t>(shard.heap[0].key) & kSlotMask]);
  }
  uint32_t slot = static_cast<uint32_t>(top.key) & kSlotMask;
  if (shard.slab[slot].handler != nullptr) {
    // Typed step: gather the maximal run of simultaneous pops bound for the
    // same handler into one batch. Pops come off in exact (time, sequence)
    // order and anything RunSteps schedules gets a later sequence than every
    // gathered member, so the batch is indistinguishable from running its
    // members one at a time — the determinism digests do not move.
    StepHandler* handler = shard.slab[slot].handler;
    step_args_.clear();
    step_args_.push_back(shard.slab[slot].arg);
    ReleaseSlot(shard, slot);
    Handle next;
    size_t next_shard;
    bool next_from_heap;
    while (PeekGlobal(&next, &next_shard, &next_from_heap) &&
           next.at == top.at) {
      Shard& other = shards_[next_shard];
      uint32_t next_slot = static_cast<uint32_t>(next.key) & kSlotMask;
      if (other.slab[next_slot].handler != handler) break;
      PopFrom(next_shard, next_from_heap);
      ++executed_;
      step_args_.push_back(other.slab[next_slot].arg);
      ReleaseSlot(other, next_slot);
    }
    handler->RunSteps(step_args_.data(), step_args_.size());
    return true;
  }
  // The callback is moved out before the slot is released, so it may safely
  // schedule new events (which can reuse the freed slot) while running.
  Callback callback = std::move(shard.slab[slot].callback);
  ReleaseSlot(shard, slot);
  callback();
  return true;
}

double EventQueue::RunUntilEmpty(uint64_t max_events) {
  uint64_t budget = max_events;
  while (RunOne()) {
    P2PAQP_CHECK_GT(budget--, 0u) << "event cascade exceeded budget";
  }
  return now_;
}

void EventQueue::Reserve(size_t events) {
  size_t per_shard = events / shards_.size() + 1;
  // Shard s is reserved from the static lane that owns index s, so each
  // shard's slab and tier pages are first-touched — and on NUMA hosts
  // placed — according to the same contiguous lane -> node map the pinned
  // pool workers use. Reservation fills no slots, so placement is the only
  // thing that changes; with P2PAQP_THREADS=1 this runs inline exactly as
  // before.
  util::ParallelFor(
      shards_.size(),
      [this, per_shard](size_t s) {
        Shard& shard = shards_[s];
        shard.slab.reserve(per_shard);
        shard.sorted.reserve(per_shard);
        shard.scratch.reserve(per_shard);
        shard.heap.reserve(per_shard < kFlushThreshold ? per_shard
                                                       : kFlushThreshold);
      },
      {.threads = 0, .partition = util::Partition::kStatic});
  if (step_args_.capacity() < events) step_args_.reserve(events);
}

}  // namespace p2paqp::net

#include "net/event_sim.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace p2paqp::net {

uint32_t EventQueue::AcquireSlot(Callback callback) {
  if (free_head_ != kNoSlot) {
    uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot].callback = std::move(callback);
    slab_[slot].next_free = kNoSlot;
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(slab_.size());
  P2PAQP_CHECK_LT(slot, kSlotMask) << "event slab exhausted";
  slab_.push_back(Slot{std::move(callback), kNoSlot});
  return slot;
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  // Drop the callback's captures immediately; the slot goes to the head of
  // the free list so the hot loop reuses the same few slots.
  slab_[slot].callback = nullptr;
  slab_[slot].next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::SiftUp(size_t index) {
  Handle moving = heap_[index];
  while (index > 0) {
    size_t parent = (index - 1) / 4;
    if (!Earlier(moving, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = moving;
}

void EventQueue::SiftDown(size_t index) {
  const size_t size = heap_.size();
  Handle moving = heap_[index];
  for (;;) {
    size_t first_child = index * 4 + 1;
    if (first_child >= size) break;
    size_t last_child = first_child + 4 < size ? first_child + 4 : size;
    size_t best = first_child;
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (Earlier(heap_[child], heap_[best])) best = child;
    }
    if (!Earlier(heap_[best], moving)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = moving;
}

EventQueue::Handle EventQueue::PopHeap() {
  Handle top = heap_[0];
  Handle last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    SiftDown(0);
  }
  return top;
}

void EventQueue::Flush() {
  // Both inputs are strictly totally ordered (unique sequences), so the
  // merged order — and therefore every later pop — is independent of when
  // flushes happen.
  std::sort(heap_.begin(), heap_.end(), Later);
  scratch_.clear();
  scratch_.reserve(sorted_.size() + heap_.size());
  std::merge(sorted_.begin(), sorted_.end(), heap_.begin(), heap_.end(),
             std::back_inserter(scratch_), Later);
  sorted_.swap(scratch_);
  heap_.clear();
}

void EventQueue::ScheduleAt(double at, Callback callback) {
  P2PAQP_CHECK_GE(at, now_) << "cannot schedule in the past";
  P2PAQP_CHECK_LT(next_sequence_, uint64_t{1} << (64 - kSlotBits))
      << "event sequence space exhausted";
  uint32_t slot = AcquireSlot(std::move(callback));
  heap_.push_back(Handle{at, (next_sequence_++ << kSlotBits) | slot});
  SiftUp(heap_.size() - 1);
  if (heap_.size() >= kFlushThreshold) Flush();
}

bool EventQueue::RunOne() {
  Handle top;
  if (sorted_.empty()) {
    if (heap_.empty()) return false;
    top = PopHeap();
  } else if (heap_.empty() || Earlier(sorted_.back(), heap_[0])) {
    top = sorted_.back();
    sorted_.pop_back();
  } else {
    top = PopHeap();
  }
  now_ = top.at;
  ++executed_;
  // Pull the NEXT pop's slab slot toward the cache while this callback runs;
  // pop order is unrelated to slab order, so this access misses otherwise.
  if (!sorted_.empty()) {
    __builtin_prefetch(&slab_[static_cast<uint32_t>(sorted_.back().key) &
                              kSlotMask]);
  }
  if (!heap_.empty()) {
    __builtin_prefetch(&slab_[static_cast<uint32_t>(heap_[0].key) &
                              kSlotMask]);
  }
  // The callback is moved out before the slot is released, so it may safely
  // schedule new events (which can reuse the freed slot) while running.
  uint32_t slot = static_cast<uint32_t>(top.key) & kSlotMask;
  Callback callback = std::move(slab_[slot].callback);
  ReleaseSlot(slot);
  callback();
  return true;
}

double EventQueue::RunUntilEmpty(uint64_t max_events) {
  uint64_t budget = max_events;
  while (RunOne()) {
    P2PAQP_CHECK_GT(budget--, 0u) << "event cascade exceeded budget";
  }
  return now_;
}

void EventQueue::Reserve(size_t events) {
  slab_.reserve(events);
  sorted_.reserve(events);
  scratch_.reserve(events);
  heap_.reserve(events < kFlushThreshold ? events : kFlushThreshold);
}

}  // namespace p2paqp::net

#include "net/protocol.h"

#include <deque>
#include <limits>

namespace p2paqp::net {

FloodResult GnutellaProtocol::Flood(MessageType request, MessageType reply,
                                    graph::NodeId origin, uint32_t ttl,
                                    size_t max_peers) {
  FloodResult result;
  if (!network_->IsAlive(origin)) return result;
  std::vector<bool> seen(network_->num_peers(), false);
  seen[origin] = true;
  // BFS tree parents: the reverse path each reply rides hop by hop.
  std::vector<graph::NodeId> parent(network_->num_peers(), origin);
  HistoryRecorder* history = network_->history();
  // Queue of (node, depth).
  std::deque<std::pair<graph::NodeId, uint32_t>> queue = {{origin, 0}};
  while (!queue.empty() && result.reached.size() < max_peers) {
    auto [u, depth] = queue.front();
    queue.pop_front();
    if (depth >= ttl) continue;
    for (graph::NodeId v : network_->graph().neighbors(u)) {
      if (seen[v]) continue;
      seen[v] = true;
      if (!network_->IsAlive(v)) continue;
      // Request hop u -> v, then the reply retraces the BFS tree back to
      // the origin (Gnutella routes replies on the reverse path), one
      // charged message per hop. A hop touching a peer that crashed after
      // forwarding the request (scheduled mid-flood crash) loses the reply
      // there without a charge, exactly like SendAlongEdge refusing a dead
      // endpoint — so the history checker never sees a send from the grave.
      if (!network_->SendAlongEdge(request, u, v).ok()) continue;
      parent[v] = u;
      bool reply_reached_origin = true;
      for (graph::NodeId hop_from = v; hop_from != origin;
           hop_from = parent[hop_from]) {
        graph::NodeId hop_to = parent[hop_from];
        if (!network_->IsAlive(hop_from) || !network_->IsAlive(hop_to)) {
          reply_reached_origin = false;
          break;
        }
        network_->cost().RecordMessage(DefaultPayloadBytes(reply));
        network_->cost().RecordDelivered();
        if (history != nullptr) {
          history->Record(HistoryEventKind::kSend, reply, hop_from, hop_to);
          history->Record(HistoryEventKind::kDeliver, reply, hop_from,
                          hop_to);
        }
      }
      if (reply_reached_origin) result.reached.push_back(v);
      result.max_depth = std::max(result.max_depth, depth + 1);
      queue.emplace_back(v, depth + 1);
      if (result.reached.size() >= max_peers) break;
    }
  }
  return result;
}

FloodResult GnutellaProtocol::Ping(graph::NodeId origin, uint32_t ttl) {
  return Flood(MessageType::kPing, MessageType::kPong, origin, ttl,
               std::numeric_limits<size_t>::max());
}

FloodResult GnutellaProtocol::FloodQuery(graph::NodeId origin, uint32_t ttl) {
  return Flood(MessageType::kQuery, MessageType::kQueryHit, origin, ttl,
               std::numeric_limits<size_t>::max());
}

std::vector<graph::NodeId> GnutellaProtocol::FloodCollect(
    graph::NodeId origin, size_t min_peers) {
  FloodResult result =
      Flood(MessageType::kQuery, MessageType::kQueryHit, origin,
            std::numeric_limits<uint32_t>::max(), min_peers);
  return std::move(result.reached);
}

}  // namespace p2paqp::net

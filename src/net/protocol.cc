#include "net/protocol.h"

#include <deque>
#include <limits>

namespace p2paqp::net {

FloodResult GnutellaProtocol::Flood(MessageType request, MessageType reply,
                                    graph::NodeId origin, uint32_t ttl,
                                    size_t max_peers) {
  FloodResult result;
  if (!network_->IsAlive(origin)) return result;
  std::vector<bool> seen(network_->num_peers(), false);
  seen[origin] = true;
  // Queue of (node, depth).
  std::deque<std::pair<graph::NodeId, uint32_t>> queue = {{origin, 0}};
  while (!queue.empty() && result.reached.size() < max_peers) {
    auto [u, depth] = queue.front();
    queue.pop_front();
    if (depth >= ttl) continue;
    for (graph::NodeId v : network_->graph().neighbors(u)) {
      if (seen[v]) continue;
      seen[v] = true;
      if (!network_->IsAlive(v)) continue;
      // Request hop u -> v, then the reply goes straight back to the origin
      // (Gnutella routes replies on the reverse path; we charge one message
      // per reverse hop in bulk as depth+1 messages).
      if (!network_->SendAlongEdge(request, u, v).ok()) continue;
      for (uint32_t h = 0; h < depth + 1; ++h) {
        network_->cost().RecordMessage(DefaultPayloadBytes(reply));
      }
      // Reverse-path replies succeed whenever the request hop did (faults
      // were already resolved on the forward hop); mark them delivered so
      // the message-conservation ledger stays balanced.
      network_->cost().RecordDelivered(depth + 1);
      result.reached.push_back(v);
      result.max_depth = std::max(result.max_depth, depth + 1);
      queue.emplace_back(v, depth + 1);
      if (result.reached.size() >= max_peers) break;
    }
  }
  return result;
}

FloodResult GnutellaProtocol::Ping(graph::NodeId origin, uint32_t ttl) {
  return Flood(MessageType::kPing, MessageType::kPong, origin, ttl,
               std::numeric_limits<size_t>::max());
}

FloodResult GnutellaProtocol::FloodQuery(graph::NodeId origin, uint32_t ttl) {
  return Flood(MessageType::kQuery, MessageType::kQueryHit, origin, ttl,
               std::numeric_limits<size_t>::max());
}

std::vector<graph::NodeId> GnutellaProtocol::FloodCollect(
    graph::NodeId origin, size_t min_peers) {
  FloodResult result =
      Flood(MessageType::kQuery, MessageType::kQueryHit, origin,
            std::numeric_limits<uint32_t>::max(), min_peers);
  return std::move(result.reached);
}

}  // namespace p2paqp::net

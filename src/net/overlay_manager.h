// Mutable unstructured overlay with node join/leave — the topology-evolution
// side of P2P dynamics (liveness churn between queries is handled separately
// by net::ChurnModel).
//
// "A node becomes a member of the network by establishing a connection with
// at least one peer currently in the network" (Sec. 3.1): Join() implements
// that bootstrap, picking contact points with degree-biased discovery (what
// Ping/Pong host caches effectively do), which preserves the power-law shape
// of long-running overlays. Snapshot() freezes the current topology into the
// immutable graph::Graph the rest of the stack consumes, mirroring the
// paper's assumption that topology changes slowly relative to data.
#ifndef P2PAQP_NET_OVERLAY_MANAGER_H_
#define P2PAQP_NET_OVERLAY_MANAGER_H_

#include <vector>

#include "graph/graph.h"
#include "net/history.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::net {

class OverlayManager {
 public:
  // Seeds the overlay from an existing topology.
  explicit OverlayManager(const graph::Graph& seed);

  // Optional protocol-history tap (not owned; may be nullptr). When set,
  // Join/Rejoin record the bootstrap as observable traffic — a Ping to each
  // contact answered by a Pong — plus the peer-liveness transition, and
  // Leave records the departure. This puts the overlay-evolution path under
  // the same black-box checker as the transport (a Pong from a peer no Ping
  // reached, or an edge to a departed node, becomes a checkable violation).
  void set_history(HistoryRecorder* history) { history_ = history; }

  // Number of node slots ever allocated (departed nodes keep their id).
  size_t num_nodes() const { return adjacency_.size(); }
  // Nodes currently in the overlay.
  size_t num_active() const { return num_active_; }
  size_t num_edges() const { return num_edges_; }

  bool IsActive(graph::NodeId id) const {
    return id < active_.size() && active_[id];
  }
  uint32_t Degree(graph::NodeId id) const;
  const std::vector<graph::NodeId>& Neighbors(graph::NodeId id) const;

  // Adds a brand-new node connected to min(connections, num_active) distinct
  // active peers chosen proportionally to their degree (+1). Returns its id.
  // Fails if the overlay has no active peers to bootstrap from.
  util::Result<graph::NodeId> Join(size_t connections, util::Rng& rng);

  // Removes a node and all its edges. Idempotent on inactive nodes.
  void Leave(graph::NodeId id);

  // Re-activates a departed node, re-bootstrapping its connections like a
  // fresh join (real peers rarely get their old neighbors back).
  util::Status Rejoin(graph::NodeId id, size_t connections, util::Rng& rng);

  // Explicit edge edits between active nodes.
  bool AddEdge(graph::NodeId a, graph::NodeId b);
  bool RemoveEdge(graph::NodeId a, graph::NodeId b);

  // Immutable snapshot over all node slots (departed nodes appear isolated).
  graph::Graph Snapshot() const;

  // True if every active node can reach every other active node.
  bool ActiveIsConnected() const;

 private:
  // Degree-biased draw over active nodes (weight deg+1 so newborn leaves
  // remain reachable targets).
  graph::NodeId PickContact(util::Rng& rng) const;

  // Records the Ping/Pong handshake behind one accepted bootstrap edge.
  void RecordBootstrapHandshake(graph::NodeId joiner, graph::NodeId contact);

  std::vector<std::vector<graph::NodeId>> adjacency_;
  std::vector<bool> active_;
  size_t num_active_ = 0;
  size_t num_edges_ = 0;
  HistoryRecorder* history_ = nullptr;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_OVERLAY_MANAGER_H_

// Query-cost accounting (Sec. 3.2).
//
// In a P2P database the cost of a query is a vector, not a scalar: peers
// visited, messages, bandwidth, latency, local I/O. The tracker accumulates
// all of them; the experiments use tuples-sampled as the latency surrogate
// (Sec. 5.4) but every component is available.
#ifndef P2PAQP_NET_COST_H_
#define P2PAQP_NET_COST_H_

#include <cstdint>
#include <string>

namespace p2paqp::net {

struct CostSnapshot {
  uint64_t peers_visited = 0;     // Peers that executed the query locally.
  uint64_t walker_hops = 0;       // Overlay hops taken by walk tokens.
  uint64_t messages = 0;          // All protocol messages.
  uint64_t bytes_shipped = 0;     // Total payload bytes.
  uint64_t tuples_scanned = 0;    // Tuples read by local executors.
  uint64_t tuples_sampled = 0;    // Tuples contributing to the sample.
  double latency_ms = 0.0;        // Simulated end-to-end latency.
  // Per-message delivery outcomes. Every charged message resolves to exactly
  // one of the two (a crash-loss counts as dropped), so
  // messages == messages_delivered + messages_dropped at all times — the
  // conservation invariant asserted by SimulatedNetwork teardown and the
  // protocol verification harness.
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;

  // True when every charged message has a recorded outcome.
  bool MessagesConserve() const {
    return messages == messages_delivered + messages_dropped;
  }

  CostSnapshot& operator+=(const CostSnapshot& other);
  std::string ToString() const;
};

// Component-wise `after - before`; used to attribute costs to one query out
// of a long-lived tracker.
CostSnapshot CostDelta(const CostSnapshot& after, const CostSnapshot& before);

// Mutable accumulator handed through the network layer.
class CostTracker {
 public:
  void RecordPeerVisit() { ++snapshot_.peers_visited; }
  void RecordWalkerHops(uint64_t hops) { snapshot_.walker_hops += hops; }
  void RecordMessage(uint64_t bytes) {
    ++snapshot_.messages;
    snapshot_.bytes_shipped += bytes;
  }
  // Records one wire message multiplexing `batch` per-query payloads behind
  // a single shared header. Asserts the batched size is exactly the sum of
  // the per-query payloads plus one header — i.e. neither the header nor a
  // payload body is charged twice. Still one message on the wire.
  void RecordBatchedMessage(uint64_t batched_bytes, uint64_t per_query_bytes,
                            uint32_t batch, uint64_t header_bytes);
  // Resolves previously charged messages: `n` of them reached their
  // destination / were lost in transit. Callers must resolve every message
  // exactly once so the conservation invariant above holds.
  void RecordDelivered(uint64_t n = 1) { snapshot_.messages_delivered += n; }
  void RecordDropped(uint64_t n = 1) { snapshot_.messages_dropped += n; }
  void RecordTuplesScanned(uint64_t n) { snapshot_.tuples_scanned += n; }
  void RecordTuplesSampled(uint64_t n) { snapshot_.tuples_sampled += n; }
  // Adds latency on the critical path (sequential operations accumulate;
  // concurrent fan-out should add only the max — callers decide).
  void RecordLatency(double ms) { snapshot_.latency_ms += ms; }

  const CostSnapshot& snapshot() const { return snapshot_; }
  void Reset() { snapshot_ = CostSnapshot{}; }

 private:
  CostSnapshot snapshot_;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_COST_H_

// In-memory protocol history for black-box checking (Maelstrom/Elle style).
//
// The simulator is the single place every protocol-visible action passes
// through, so a linear append-only log of those actions is a complete
// external observation of one run: sends, per-message delivery outcomes,
// sink-side timeouts and retransmits, dedup decisions, peer liveness
// transitions, and cache/frame expiries. The recorder only appends; all
// semantics live in the offline checker (verify/protocol/history_checker.h),
// which replays the log and validates causality rules that no single
// component can see locally — e.g. "a peer only forwards a walker token it
// received in its current incarnation" catches a reborn peer resuming a
// session that died with its previous life.
//
// Recording is opt-in (SimulatedNetwork::set_history) and costs one branch
// per message when disabled, so production/bench paths are unaffected.
#ifndef P2PAQP_NET_HISTORY_H_
#define P2PAQP_NET_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "net/message.h"

namespace p2paqp::net {

enum class HistoryEventKind : uint8_t {
  kSend = 0,     // A message was put on the wire (cost charged).
  kDeliver,      // ... and reached its destination.
  kDrop,         // ... and was lost (fault drop, or an endpoint crashed).
  kTimeout,      // A sink-side reply timer fired.
  kRetransmit,   // A reply re-attempt after a timeout.
  kPeerDown,     // Peer departed (churn or crash).
  kPeerUp,       // Peer (re)joined.
  kExpire,       // A TTL lapsed (frame epoch expiry, or a reply discarded
                 // at the query deadline — then typed kAggregateReply with
                 // its dedup tag).
  kDedupAccept,  // The sink counted a reply tag for the first time.
  kDedupDrop,    // The sink saw an already-counted tag and discarded it.
  // Straggler resilience (appended after the PR 6 kinds so existing digests
  // over kind values are untouched).
  kHedgeDue,        // The sink's hedge timer for a pending reply elapsed.
  kHedge,           // A hedged duplicate was issued (tag = the reply's dedup
                    // tag; must follow a matching kHedgeDue on the flow).
  kStragglerSkip,   // A walker forked past a tardy/tripped neighbor.
};

const char* HistoryEventKindToString(HistoryEventKind kind);

struct HistoryEvent {
  uint64_t index = 0;  // Append order: the run's causal clock.
  HistoryEventKind kind = HistoryEventKind::kSend;
  MessageType type = MessageType::kPing;
  graph::NodeId from = graph::kInvalidNode;
  graph::NodeId to = graph::kInvalidNode;
  // Per-query payloads multiplexed behind the shared header (sends only).
  uint32_t batch = 1;
  // Dedup tag for kDedupAccept/kDedupDrop: (query, peer, selection_seq)
  // folded into 64 bits by DedupTag(). 0 for other kinds.
  uint64_t tag = 0;

  std::string ToString() const;
};

// Folds a sink-side reply identity into the 64-bit history tag.
uint64_t DedupTag(uint64_t query_index, graph::NodeId peer,
                  uint64_t selection_seq);

// Append-only event log. Not thread-safe: one recorder observes one serial
// simulation (parallel replicates each attach their own).
class HistoryRecorder {
 public:
  void Record(HistoryEventKind kind, MessageType type, graph::NodeId from,
              graph::NodeId to, uint32_t batch = 1, uint64_t tag = 0) {
    events_.push_back(HistoryEvent{next_index_++, kind, type, from, to, batch,
                                   tag});
  }

  const std::vector<HistoryEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() {
    events_.clear();
    next_index_ = 0;
    round_ = 0;
  }

  // Monotone collection-round counter. Engines draw one round per reply
  // collection (per phase, per query, per batch) and fold it into DedupTag,
  // so a (peer, selection_seq) pair that legitimately recurs across rounds
  // never collides with itself in the checker's accepted-tag set.
  uint64_t NextRound() { return ++round_; }

  // Convenience tallies for conservation checks.
  uint64_t Count(HistoryEventKind kind) const;

 private:
  std::vector<HistoryEvent> events_;
  uint64_t next_index_ = 0;
  uint64_t round_ = 0;
};

}  // namespace p2paqp::net

#endif  // P2PAQP_NET_HISTORY_H_

#include "graph/metrics.h"

#include <algorithm>
#include <cmath>

namespace p2paqp::graph {

std::vector<size_t> DegreeHistogram(const Graph& graph) {
  std::vector<size_t> histogram(graph.max_degree() + 1, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    ++histogram[graph.degree(u)];
  }
  return histogram;
}

double FitPowerLawExponent(const Graph& graph, uint32_t d_min) {
  P2PAQP_CHECK_GE(d_min, 1u);
  double log_sum = 0.0;
  size_t n = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    uint32_t d = graph.degree(u);
    if (d >= d_min) {
      // Continuous approximation with the standard +0.5 offset.
      log_sum += std::log(static_cast<double>(d) /
                          (static_cast<double>(d_min) - 0.5));
      ++n;
    }
  }
  if (n == 0 || log_sum == 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

double EstimateClusteringCoefficient(const Graph& graph, size_t num_probes,
                                     util::Rng& rng) {
  if (graph.num_nodes() == 0) return 0.0;
  std::vector<NodeId> probes;
  if (num_probes >= graph.num_nodes()) {
    probes.resize(graph.num_nodes());
    for (NodeId u = 0; u < graph.num_nodes(); ++u) probes[u] = u;
  } else {
    for (size_t index : rng.SampleIndices(graph.num_nodes(), num_probes)) {
      probes.push_back(static_cast<NodeId>(index));
    }
  }
  double total = 0.0;
  size_t counted = 0;
  std::vector<NodeId> nbrs;
  for (NodeId u : probes) {
    graph.CopyNeighbors(u, &nbrs);
    if (nbrs.size() < 2) continue;
    size_t closed = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    double pairs = static_cast<double>(nbrs.size()) *
                   (static_cast<double>(nbrs.size()) - 1.0) / 2.0;
    total += static_cast<double>(closed) / pairs;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

double Conductance(const Graph& graph, const std::vector<bool>& side) {
  P2PAQP_CHECK_EQ(side.size(), graph.num_nodes());
  size_t cut = 0;
  size_t vol_s = 0;
  size_t vol_rest = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (side[u]) {
      vol_s += graph.degree(u);
    } else {
      vol_rest += graph.degree(u);
    }
    for (NodeId v : graph.neighbors(u)) {
      if (u < v && side[u] != side[v]) ++cut;
    }
  }
  size_t denom = std::min(vol_s, vol_rest);
  if (denom == 0) return 0.0;
  return static_cast<double>(cut) / static_cast<double>(denom);
}

}  // namespace p2paqp::graph

#include "graph/graph.h"

#include <algorithm>

namespace p2paqp::graph {

Graph::Graph(std::vector<std::vector<NodeId>> adjacency) {
  size_t n = adjacency.size();
  offsets_.resize(n + 1, 0);
  size_t total = 0;
  for (size_t u = 0; u < n; ++u) {
    total += adjacency[u].size();
    offsets_[u + 1] = total;
  }
  neighbors_.reserve(total);
  min_degree_ = n == 0 ? 0 : static_cast<uint32_t>(-1);
  max_degree_ = 0;
  for (size_t u = 0; u < n; ++u) {
    auto& list = adjacency[u];
    std::sort(list.begin(), list.end());
    for (NodeId v : list) {
      P2PAQP_DCHECK(v < n) << "edge endpoint out of range: " << v;
      P2PAQP_DCHECK(v != u) << "self loop at node " << u;
      neighbors_.push_back(v);
    }
    auto deg = static_cast<uint32_t>(list.size());
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
  }
  P2PAQP_CHECK_EQ(neighbors_.size() % 2, 0u)
      << "adjacency lists are not symmetric";
}

bool Graph::HasEdge(NodeId a, NodeId b) const {
  if (a >= num_nodes() || b >= num_nodes()) return false;
  auto span = neighbors(a);
  return std::binary_search(span.begin(), span.end(), b);
}

double Graph::average_degree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges()) /
         static_cast<double>(num_nodes());
}

double Graph::StationaryProbability(NodeId node) const {
  P2PAQP_CHECK_GT(num_edges(), 0u);
  return static_cast<double>(degree(node)) /
         (2.0 * static_cast<double>(num_edges()));
}

}  // namespace p2paqp::graph

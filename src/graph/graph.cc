#include "graph/graph.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace p2paqp::graph {

void Graph::AppendList(const NodeId* list, uint32_t deg) {
  offsets_.push_back(static_cast<uint32_t>(encoded_.size()));
  varint::Encode(deg, &encoded_);
  if (deg == 0) return;
  varint::Encode(list[0], &encoded_);
  for (uint32_t i = 1; i < deg; ++i) {
    P2PAQP_DCHECK(list[i] > list[i - 1])
        << "neighbor list not strictly increasing at " << list[i];
    varint::Encode(list[i] - list[i - 1] - 1, &encoded_);
  }
}

void Graph::FinishEncoding() {
  P2PAQP_CHECK_LT(encoded_.size(),
                  static_cast<size_t>(std::numeric_limits<uint32_t>::max()))
      << "encoded adjacency stream exceeds the uint32 offset range";
  offsets_.push_back(static_cast<uint32_t>(encoded_.size()));
  encoded_.shrink_to_fit();
  offsets_.shrink_to_fit();
  RebindViews();
}

void Graph::CopyFrom(const Graph& other) {
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  min_degree_ = other.min_degree_;
  max_degree_ = other.max_degree_;
  backing_ = other.backing_;
  if (backing_ != nullptr) {
    // Mapped: share the backing, drop any owned storage.
    encoded_.clear();
    offsets_.clear();
    encoded_view_ = other.encoded_view_;
    offsets_view_ = other.offsets_view_;
    encoded_size_ = other.encoded_size_;
  } else {
    encoded_ = other.encoded_;
    offsets_ = other.offsets_;
    RebindViews();
  }
}

void Graph::MoveFrom(Graph&& other) noexcept {
  num_nodes_ = other.num_nodes_;
  num_edges_ = other.num_edges_;
  min_degree_ = other.min_degree_;
  max_degree_ = other.max_degree_;
  backing_ = std::move(other.backing_);
  encoded_ = std::move(other.encoded_);
  offsets_ = std::move(other.offsets_);
  if (backing_ != nullptr) {
    encoded_view_ = other.encoded_view_;
    offsets_view_ = other.offsets_view_;
    encoded_size_ = other.encoded_size_;
  } else {
    RebindViews();
  }
  other.num_nodes_ = 0;
  other.num_edges_ = 0;
  other.encoded_view_ = nullptr;
  other.offsets_view_ = nullptr;
  other.encoded_size_ = 0;
}

Graph::Graph(size_t num_nodes, size_t num_edges, uint32_t min_degree,
             uint32_t max_degree, const uint8_t* encoded,
             const uint32_t* offsets, std::shared_ptr<const void> backing) {
  P2PAQP_CHECK(backing != nullptr);
  num_nodes_ = num_nodes;
  num_edges_ = num_edges;
  min_degree_ = min_degree;
  max_degree_ = max_degree;
  encoded_view_ = encoded;
  offsets_view_ = offsets;
  encoded_size_ = num_nodes > 0 ? offsets[num_nodes] : 0;
  backing_ = std::move(backing);
}

Graph::Graph(std::vector<std::vector<NodeId>> adjacency) {
  num_nodes_ = adjacency.size();
  size_t total = 0;
  for (const auto& list : adjacency) total += list.size();
  P2PAQP_CHECK_EQ(total % 2, 0u) << "adjacency lists are not symmetric";
  num_edges_ = total / 2;
  offsets_.reserve(num_nodes_ + 1);
  // Degree byte + first-neighbor varint + ~1 byte/gap is the common case;
  // reserve generously enough to avoid regrowth, shrink at the end.
  encoded_.reserve(2 * num_nodes_ + 3 * total);
  min_degree_ = num_nodes_ == 0 ? 0 : static_cast<uint32_t>(-1);
  max_degree_ = 0;
  for (size_t u = 0; u < num_nodes_; ++u) {
    auto& list = adjacency[u];
    std::sort(list.begin(), list.end());
    for (NodeId v : list) {
      P2PAQP_DCHECK(v < num_nodes_) << "edge endpoint out of range: " << v;
      P2PAQP_DCHECK(v != u) << "self loop at node " << u;
    }
    auto deg = static_cast<uint32_t>(list.size());
    AppendList(list.data(), deg);
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
  }
  FinishEncoding();
}

Graph::Graph(size_t num_nodes, const std::vector<size_t>& offsets,
             const std::vector<NodeId>& flat) {
  P2PAQP_CHECK_EQ(offsets.size(), num_nodes + 1);
  P2PAQP_CHECK_EQ(offsets.back(), flat.size());
  P2PAQP_CHECK_EQ(flat.size() % 2, 0u) << "flat CSR is not symmetric";
  num_nodes_ = num_nodes;
  num_edges_ = flat.size() / 2;
  offsets_.reserve(num_nodes_ + 1);
  encoded_.reserve(2 * num_nodes_ + 3 * flat.size());
  min_degree_ = num_nodes_ == 0 ? 0 : static_cast<uint32_t>(-1);
  max_degree_ = 0;
  for (size_t u = 0; u < num_nodes_; ++u) {
    auto deg = static_cast<uint32_t>(offsets[u + 1] - offsets[u]);
    AppendList(flat.data() + offsets[u], deg);
    min_degree_ = std::min(min_degree_, deg);
    max_degree_ = std::max(max_degree_, deg);
  }
  FinishEncoding();
}

void Graph::CopyNeighbors(NodeId node, std::vector<NodeId>* out) const {
  out->clear();
  auto range = neighbors(node);
  out->reserve(range.size());
  for (NodeId v : range) out->push_back(v);
}

bool Graph::HasEdge(NodeId a, NodeId b) const {
  if (a >= num_nodes_ || b >= num_nodes_) return false;
  // Scan the shorter list; it is sorted, so the scan exits early.
  if (degree(a) > degree(b)) std::swap(a, b);
  return neighbors(a).contains(b);
}

double Graph::average_degree() const {
  if (num_nodes_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_nodes_);
}

double Graph::StationaryProbability(NodeId node) const {
  P2PAQP_CHECK_GT(num_edges_, 0u);
  return static_cast<double>(degree(node)) /
         (2.0 * static_cast<double>(num_edges_));
}

GraphEncoder::GraphEncoder(size_t num_nodes, size_t expected_bytes)
    : num_nodes_(num_nodes) {
  graph_.num_nodes_ = num_nodes;
  graph_.offsets_.reserve(num_nodes + 1);
  if (expected_bytes > 0) graph_.encoded_.reserve(expected_bytes);
  graph_.min_degree_ = num_nodes == 0 ? 0 : static_cast<uint32_t>(-1);
  graph_.max_degree_ = 0;
}

void GraphEncoder::AppendList(const NodeId* list, uint32_t deg) {
  P2PAQP_DCHECK(appended_ < num_nodes_);
  graph_.AppendList(list, deg);
  graph_.min_degree_ = std::min(graph_.min_degree_, deg);
  graph_.max_degree_ = std::max(graph_.max_degree_, deg);
  ++appended_;
}

Graph GraphEncoder::Finish(size_t num_edges) {
  P2PAQP_CHECK_EQ(appended_, num_nodes_)
      << "GraphEncoder finished before every node list was appended";
  graph_.num_edges_ = num_edges;
  graph_.FinishEncoding();
  appended_ = 0;
  num_nodes_ = 0;
  return std::move(graph_);
}

}  // namespace p2paqp::graph

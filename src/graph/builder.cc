#include "graph/builder.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace p2paqp::graph {
namespace {

// UINT64_MAX is unreachable as a key: it would need a == b == 0xFFFFFFFF,
// which AddEdge rejects as a self loop before hashing.
constexpr uint64_t kEmptySlot = ~0ULL;

// Per-run read buffer during a k-way merge, in 8-byte arcs (256 KiB). With
// the default fan-in of 64 a merge pass holds at most 16 MiB of buffers.
constexpr size_t kMergeBufferArcs = size_t{1} << 15;

// Buffered sequential reader over one sorted run inside a (shared) spill
// file. Readers interleave on the same FILE*, so every refill re-seeks to
// its own cursor.
class RunReader {
 public:
  RunReader(std::FILE* file, uint64_t offset_arcs, uint64_t count_arcs)
      : file_(file), next_(offset_arcs), end_(offset_arcs + count_arcs) {
    buffer_.reserve(
        std::min<uint64_t>(kMergeBufferArcs, count_arcs > 0 ? count_arcs : 1));
  }

  // Returns false once the run is exhausted.
  bool Next(uint64_t* arc) {
    if (pos_ == buffer_.size()) {
      if (next_ == end_) return false;
      auto want = static_cast<size_t>(
          std::min<uint64_t>(buffer_.capacity(), end_ - next_));
      buffer_.resize(want);
      P2PAQP_CHECK_EQ(
          std::fseek(file_, static_cast<long>(next_ * sizeof(uint64_t)),
                     SEEK_SET),
          0);
      P2PAQP_CHECK_EQ(std::fread(buffer_.data(), sizeof(uint64_t), want, file_),
                      want)
          << "short read on spill run";
      next_ += want;
      pos_ = 0;
    }
    *arc = buffer_[pos_++];
    return true;
  }

 private:
  std::FILE* file_;
  uint64_t next_;
  uint64_t end_;
  std::vector<uint64_t> buffer_;
  size_t pos_ = 0;
};

// K-way merge of sorted runs from `file`, streaming ascending arcs into
// `consume`. Arc values are unique across runs (the dedup table rejects
// duplicate edges before they reach a run), so ordering by value alone is a
// strict total order and the merge is deterministic.
template <typename Consumer>
void MergeRuns(std::vector<RunReader>& readers, Consumer&& consume) {
  // Simple binary min-heap of (arc, reader); fan-in is small.
  struct Head {
    uint64_t arc;
    size_t reader;
  };
  std::vector<Head> heap;
  heap.reserve(readers.size());
  for (size_t r = 0; r < readers.size(); ++r) {
    uint64_t arc;
    if (readers[r].Next(&arc)) heap.push_back({arc, r});
  }
  auto later = [](const Head& a, const Head& b) { return a.arc > b.arc; };
  std::make_heap(heap.begin(), heap.end(), later);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Head head = heap.back();
    heap.pop_back();
    consume(head.arc);
    uint64_t arc;
    if (readers[head.reader].Next(&arc)) {
      heap.push_back({arc, head.reader});
      std::push_heap(heap.begin(), heap.end(), later);
    }
  }
}

// splitmix64 finalizer — full-avalanche over the packed (min, max) key.
uint64_t HashKey(uint64_t key) {
  key += 0x9E3779B97F4A7C15ULL;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

size_t CeilPow2(size_t v) {
  size_t cap = 1;
  while (cap < v) cap <<= 1;
  return cap;
}

}  // namespace

SpillOptions SpillOptionsFromEnv() {
  SpillOptions spill;
  if (const char* env = std::getenv("P2PAQP_BUILD_SPILL_EDGES")) {
    long parsed = std::atol(env);
    if (parsed > 0) spill.run_edges = static_cast<size_t>(parsed);
  }
  if (const char* env = std::getenv("P2PAQP_BUILD_MERGE_FAN_IN")) {
    long parsed = std::atol(env);
    if (parsed > 1) spill.merge_fan_in = static_cast<size_t>(parsed);
  }
  return spill;
}

GraphBuilder::GraphBuilder(size_t num_nodes, size_t expected_edges)
    : degrees_(num_nodes, 0), spill_(SpillOptionsFromEnv()) {
  if (spill_.run_edges > 0) run_buffer_.reserve(2 * spill_.run_edges);
  if (expected_edges == 0 || num_nodes == 0) return;
  if (spill_.run_edges == 0) edges_.reserve(expected_edges);
  GrowTable(expected_edges);
}

GraphBuilder::~GraphBuilder() {
  if (spill_file_ != nullptr) std::fclose(spill_file_);
  if (scratch_file_ != nullptr) std::fclose(scratch_file_);
}

GraphBuilder::GraphBuilder(GraphBuilder&& other) noexcept
    : degrees_(std::move(other.degrees_)),
      edges_(std::move(other.edges_)),
      table_(std::move(other.table_)),
      table_used_(other.table_used_),
      num_edges_(other.num_edges_),
      spill_(other.spill_),
      run_buffer_(std::move(other.run_buffer_)),
      runs_(std::move(other.runs_)),
      spill_file_(other.spill_file_),
      scratch_file_(other.scratch_file_),
      spilled_arcs_(other.spilled_arcs_) {
  other.table_used_ = 0;
  other.num_edges_ = 0;
  other.spill_file_ = nullptr;
  other.scratch_file_ = nullptr;
  other.spilled_arcs_ = 0;
}

GraphBuilder& GraphBuilder::operator=(GraphBuilder&& other) noexcept {
  if (this == &other) return *this;
  if (spill_file_ != nullptr) std::fclose(spill_file_);
  if (scratch_file_ != nullptr) std::fclose(scratch_file_);
  degrees_ = std::move(other.degrees_);
  edges_ = std::move(other.edges_);
  table_ = std::move(other.table_);
  table_used_ = other.table_used_;
  num_edges_ = other.num_edges_;
  spill_ = other.spill_;
  run_buffer_ = std::move(other.run_buffer_);
  runs_ = std::move(other.runs_);
  spill_file_ = other.spill_file_;
  scratch_file_ = other.scratch_file_;
  spilled_arcs_ = other.spilled_arcs_;
  other.table_used_ = 0;
  other.num_edges_ = 0;
  other.spill_file_ = nullptr;
  other.scratch_file_ = nullptr;
  other.spilled_arcs_ = 0;
  return *this;
}

void GraphBuilder::set_spill(const SpillOptions& spill) {
  P2PAQP_CHECK_EQ(num_edges_, 0u)
      << "set_spill must precede the first AddEdge";
  spill_ = spill;
  if (spill_.run_edges > 0) {
    std::vector<uint64_t>().swap(edges_);
    run_buffer_.reserve(2 * spill_.run_edges);
  }
}

uint64_t GraphBuilder::EdgeKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

void GraphBuilder::GrowTable(size_t min_capacity) {
  // Target < 60% load after accommodating min_capacity entries.
  size_t cap = CeilPow2(std::max<size_t>(64, min_capacity * 5 / 3 + 1));
  std::vector<uint64_t> fresh(cap, kEmptySlot);
  size_t mask = cap - 1;
  for (uint64_t key : table_) {
    if (key == kEmptySlot) continue;
    size_t slot = HashKey(key) & mask;
    while (fresh[slot] != kEmptySlot) slot = (slot + 1) & mask;
    fresh[slot] = key;
  }
  table_ = std::move(fresh);
}

bool GraphBuilder::TableInsert(uint64_t key) {
  if (table_.empty() || (table_used_ + 1) * 5 >= table_.size() * 3) {
    GrowTable(std::max<size_t>(table_used_ + 1, table_.size()));
  }
  size_t mask = table_.size() - 1;
  size_t slot = HashKey(key) & mask;
  while (table_[slot] != kEmptySlot) {
    if (table_[slot] == key) return false;
    slot = (slot + 1) & mask;
  }
  table_[slot] = key;
  ++table_used_;
  return true;
}

bool GraphBuilder::AddEdge(NodeId a, NodeId b) {
  if (a == b) return false;
  if (a >= degrees_.size() || b >= degrees_.size()) return false;
  uint64_t key = EdgeKey(a, b);
  if (!TableInsert(key)) return false;
  if (spill_.run_edges > 0) {
    // Spill mode logs both directed arcs so the merge yields every node's
    // neighbor list in one ascending (src, dst) pass.
    run_buffer_.push_back((static_cast<uint64_t>(a) << 32) | b);
    run_buffer_.push_back((static_cast<uint64_t>(b) << 32) | a);
    if (run_buffer_.size() >= 2 * spill_.run_edges) FlushRun();
  } else {
    edges_.push_back(key);
  }
  ++num_edges_;
  ++degrees_[a];
  ++degrees_[b];
  return true;
}

bool GraphBuilder::HasEdge(NodeId a, NodeId b) const {
  if (a == b || a >= degrees_.size() || b >= degrees_.size()) return false;
  if (table_.empty()) return false;
  uint64_t key = EdgeKey(a, b);
  size_t mask = table_.size() - 1;
  size_t slot = HashKey(key) & mask;
  while (table_[slot] != kEmptySlot) {
    if (table_[slot] == key) return true;
    slot = (slot + 1) & mask;
  }
  return false;
}

Graph GraphBuilder::Build() {
  Graph graph =
      spill_.run_edges > 0 ? BuildFromRuns() : BuildInMemory();
  num_edges_ = 0;
  return graph;
}

Graph GraphBuilder::BuildInMemory() {
  const size_t n = degrees_.size();
  // Counting sort of the edge log into flat CSR: prefix-sum the degrees,
  // scatter both directions of each edge, then sort each node's slice.
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + degrees_[u];
  }
  std::vector<NodeId> flat(2 * edges_.size());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (uint64_t key : edges_) {
    auto a = static_cast<NodeId>(key >> 32);
    auto b = static_cast<NodeId>(key & 0xFFFFFFFFu);
    flat[cursor[a]++] = b;
    flat[cursor[b]++] = a;
  }
  // Release the build-time state before the Graph encodes (keeps the peak
  // at log + table + CSR, not log + table + CSR + stream).
  std::vector<uint64_t>().swap(edges_);
  std::vector<uint64_t>().swap(table_);
  table_used_ = 0;
  std::vector<uint32_t>(n, 0).swap(degrees_);
  for (size_t u = 0; u < n; ++u) {
    std::sort(flat.begin() + static_cast<ptrdiff_t>(offsets[u]),
              flat.begin() + static_cast<ptrdiff_t>(offsets[u + 1]));
  }
  return Graph(n, offsets, flat);
}

void GraphBuilder::FlushRun() {
  if (run_buffer_.empty()) return;
  std::sort(run_buffer_.begin(), run_buffer_.end());
  if (spill_file_ == nullptr) {
    spill_file_ = std::tmpfile();
    P2PAQP_CHECK(spill_file_ != nullptr)
        << "cannot create spill temp file (tmpfile failed)";
  }
  P2PAQP_CHECK_EQ(std::fseek(spill_file_, 0, SEEK_END), 0);
  Run run;
  run.offset = static_cast<uint64_t>(std::ftell(spill_file_)) /
               sizeof(uint64_t);
  run.count = run_buffer_.size();
  P2PAQP_CHECK_EQ(std::fwrite(run_buffer_.data(), sizeof(uint64_t),
                              run_buffer_.size(), spill_file_),
                  run_buffer_.size())
      << "short write on spill run (disk full?)";
  runs_.push_back(run);
  spilled_arcs_ += run.count;
  run_buffer_.clear();
}

void GraphBuilder::CollapseRuns() {
  const size_t fan_in = std::max<size_t>(2, spill_.merge_fan_in);
  while (runs_.size() > fan_in) {
    // One pass: merge groups of fan_in runs from spill_file_ into
    // scratch_file_, then promote the scratch file to be the spill file.
    scratch_file_ = std::tmpfile();
    P2PAQP_CHECK(scratch_file_ != nullptr)
        << "cannot create merge temp file (tmpfile failed)";
    std::vector<Run> merged;
    merged.reserve((runs_.size() + fan_in - 1) / fan_in);
    std::vector<uint64_t> out;
    out.reserve(kMergeBufferArcs);
    uint64_t out_arcs = 0;
    for (size_t group = 0; group < runs_.size(); group += fan_in) {
      size_t group_end = std::min(runs_.size(), group + fan_in);
      std::vector<RunReader> readers;
      readers.reserve(group_end - group);
      for (size_t r = group; r < group_end; ++r) {
        readers.emplace_back(spill_file_, runs_[r].offset, runs_[r].count);
      }
      Run run;
      run.offset = out_arcs;
      auto write_out = [&] {
        P2PAQP_CHECK_EQ(std::fwrite(out.data(), sizeof(uint64_t), out.size(),
                                    scratch_file_),
                        out.size())
            << "short write on merge pass (disk full?)";
        out_arcs += out.size();
        out.clear();
      };
      MergeRuns(readers, [&](uint64_t arc) {
        out.push_back(arc);
        if (out.size() == out.capacity()) write_out();
      });
      write_out();
      run.count = out_arcs - run.offset;
      merged.push_back(run);
    }
    std::fclose(spill_file_);
    spill_file_ = scratch_file_;
    scratch_file_ = nullptr;
    runs_ = std::move(merged);
  }
}

Graph GraphBuilder::BuildFromRuns() {
  const size_t n = degrees_.size();
  FlushRun();
  // The dedup table is dead weight from here on; release it before the
  // encoder allocates so the build peak is merge buffers + stream, not
  // table + merge buffers + stream.
  std::vector<uint64_t>().swap(table_);
  table_used_ = 0;
  std::vector<uint64_t>().swap(run_buffer_);
  CollapseRuns();

  GraphEncoder encoder(n, 2 * n + 6 * num_edges_);
  std::vector<NodeId> scratch;
  NodeId current = 0;
  auto emit_through = [&](NodeId next) {
    // Seals `current`'s gathered list, then empty lists up to `next`.
    while (current < next) {
      P2PAQP_DCHECK(scratch.size() == degrees_[current])
          << "merge produced a wrong degree for node " << current;
      encoder.AppendList(scratch.data(),
                         static_cast<uint32_t>(scratch.size()));
      scratch.clear();
      ++current;
    }
  };
  {
    std::vector<RunReader> readers;
    readers.reserve(runs_.size());
    for (const Run& run : runs_) {
      readers.emplace_back(spill_file_, run.offset, run.count);
    }
    MergeRuns(readers, [&](uint64_t arc) {
      auto src = static_cast<NodeId>(arc >> 32);
      auto dst = static_cast<NodeId>(arc & 0xFFFFFFFFu);
      if (src != current) emit_through(src);
      scratch.push_back(dst);
    });
  }
  emit_through(static_cast<NodeId>(n));

  if (spill_file_ != nullptr) {
    std::fclose(spill_file_);
    spill_file_ = nullptr;
  }
  runs_.clear();
  spilled_arcs_ = 0;
  std::vector<uint32_t>(n, 0).swap(degrees_);
  return encoder.Finish(num_edges_);
}

LegacyGraphBuilder::LegacyGraphBuilder(size_t num_nodes, size_t expected_edges)
    : adjacency_(num_nodes) {
  if (expected_edges == 0 || num_nodes == 0) return;
  edges_.reserve(expected_edges);
  size_t expected_degree = (2 * expected_edges + num_nodes - 1) / num_nodes;
  for (std::vector<NodeId>& list : adjacency_) {
    list.reserve(expected_degree);
  }
}

uint64_t LegacyGraphBuilder::EdgeKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

bool LegacyGraphBuilder::AddEdge(NodeId a, NodeId b) {
  if (a == b) return false;
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  if (!edges_.insert(EdgeKey(a, b)).second) return false;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
  return true;
}

bool LegacyGraphBuilder::HasEdge(NodeId a, NodeId b) const {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return false;
  return edges_.count(EdgeKey(a, b)) > 0;
}

Graph LegacyGraphBuilder::Build() {
  edges_.clear();
  num_edges_ = 0;
  return Graph(std::exchange(adjacency_, {}));
}

}  // namespace p2paqp::graph

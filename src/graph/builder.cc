#include "graph/builder.h"

#include <algorithm>
#include <utility>

namespace p2paqp::graph {
namespace {

// UINT64_MAX is unreachable as a key: it would need a == b == 0xFFFFFFFF,
// which AddEdge rejects as a self loop before hashing.
constexpr uint64_t kEmptySlot = ~0ULL;

// splitmix64 finalizer — full-avalanche over the packed (min, max) key.
uint64_t HashKey(uint64_t key) {
  key += 0x9E3779B97F4A7C15ULL;
  key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
  key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
  return key ^ (key >> 31);
}

size_t CeilPow2(size_t v) {
  size_t cap = 1;
  while (cap < v) cap <<= 1;
  return cap;
}

}  // namespace

GraphBuilder::GraphBuilder(size_t num_nodes, size_t expected_edges)
    : degrees_(num_nodes, 0) {
  if (expected_edges == 0 || num_nodes == 0) return;
  edges_.reserve(expected_edges);
  GrowTable(expected_edges);
}

uint64_t GraphBuilder::EdgeKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

void GraphBuilder::GrowTable(size_t min_capacity) {
  // Target < 60% load after accommodating min_capacity entries.
  size_t cap = CeilPow2(std::max<size_t>(64, min_capacity * 5 / 3 + 1));
  std::vector<uint64_t> fresh(cap, kEmptySlot);
  size_t mask = cap - 1;
  for (uint64_t key : table_) {
    if (key == kEmptySlot) continue;
    size_t slot = HashKey(key) & mask;
    while (fresh[slot] != kEmptySlot) slot = (slot + 1) & mask;
    fresh[slot] = key;
  }
  table_ = std::move(fresh);
}

bool GraphBuilder::TableInsert(uint64_t key) {
  if (table_.empty() || (table_used_ + 1) * 5 >= table_.size() * 3) {
    GrowTable(std::max<size_t>(table_used_ + 1, table_.size()));
  }
  size_t mask = table_.size() - 1;
  size_t slot = HashKey(key) & mask;
  while (table_[slot] != kEmptySlot) {
    if (table_[slot] == key) return false;
    slot = (slot + 1) & mask;
  }
  table_[slot] = key;
  ++table_used_;
  return true;
}

bool GraphBuilder::AddEdge(NodeId a, NodeId b) {
  if (a == b) return false;
  if (a >= degrees_.size() || b >= degrees_.size()) return false;
  uint64_t key = EdgeKey(a, b);
  if (!TableInsert(key)) return false;
  edges_.push_back(key);
  ++degrees_[a];
  ++degrees_[b];
  return true;
}

bool GraphBuilder::HasEdge(NodeId a, NodeId b) const {
  if (a == b || a >= degrees_.size() || b >= degrees_.size()) return false;
  if (table_.empty()) return false;
  uint64_t key = EdgeKey(a, b);
  size_t mask = table_.size() - 1;
  size_t slot = HashKey(key) & mask;
  while (table_[slot] != kEmptySlot) {
    if (table_[slot] == key) return true;
    slot = (slot + 1) & mask;
  }
  return false;
}

Graph GraphBuilder::Build() {
  const size_t n = degrees_.size();
  // Counting sort of the edge log into flat CSR: prefix-sum the degrees,
  // scatter both directions of each edge, then sort each node's slice.
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + degrees_[u];
  }
  std::vector<NodeId> flat(2 * edges_.size());
  std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
  for (uint64_t key : edges_) {
    auto a = static_cast<NodeId>(key >> 32);
    auto b = static_cast<NodeId>(key & 0xFFFFFFFFu);
    flat[cursor[a]++] = b;
    flat[cursor[b]++] = a;
  }
  // Release the build-time state before the Graph encodes (keeps the peak
  // at log + table + CSR, not log + table + CSR + stream).
  std::vector<uint64_t>().swap(edges_);
  std::vector<uint64_t>().swap(table_);
  table_used_ = 0;
  std::vector<uint32_t>(n, 0).swap(degrees_);
  for (size_t u = 0; u < n; ++u) {
    std::sort(flat.begin() + static_cast<ptrdiff_t>(offsets[u]),
              flat.begin() + static_cast<ptrdiff_t>(offsets[u + 1]));
  }
  return Graph(n, offsets, flat);
}

LegacyGraphBuilder::LegacyGraphBuilder(size_t num_nodes, size_t expected_edges)
    : adjacency_(num_nodes) {
  if (expected_edges == 0 || num_nodes == 0) return;
  edges_.reserve(expected_edges);
  size_t expected_degree = (2 * expected_edges + num_nodes - 1) / num_nodes;
  for (std::vector<NodeId>& list : adjacency_) {
    list.reserve(expected_degree);
  }
}

uint64_t LegacyGraphBuilder::EdgeKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

bool LegacyGraphBuilder::AddEdge(NodeId a, NodeId b) {
  if (a == b) return false;
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  if (!edges_.insert(EdgeKey(a, b)).second) return false;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
  return true;
}

bool LegacyGraphBuilder::HasEdge(NodeId a, NodeId b) const {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return false;
  return edges_.count(EdgeKey(a, b)) > 0;
}

Graph LegacyGraphBuilder::Build() {
  edges_.clear();
  num_edges_ = 0;
  return Graph(std::exchange(adjacency_, {}));
}

}  // namespace p2paqp::graph

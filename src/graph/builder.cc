#include "graph/builder.h"

#include <utility>

namespace p2paqp::graph {

GraphBuilder::GraphBuilder(size_t num_nodes, size_t expected_edges)
    : adjacency_(num_nodes) {
  if (expected_edges == 0 || num_nodes == 0) return;
  edges_.reserve(expected_edges);
  // Each undirected edge lands in two adjacency lists; round up so the
  // expected-degree guess covers even distributions exactly.
  size_t expected_degree = (2 * expected_edges + num_nodes - 1) / num_nodes;
  for (std::vector<NodeId>& list : adjacency_) {
    list.reserve(expected_degree);
  }
}

uint64_t GraphBuilder::EdgeKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

bool GraphBuilder::AddEdge(NodeId a, NodeId b) {
  if (a == b) return false;
  if (a >= adjacency_.size() || b >= adjacency_.size()) return false;
  if (!edges_.insert(EdgeKey(a, b)).second) return false;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++num_edges_;
  return true;
}

bool GraphBuilder::HasEdge(NodeId a, NodeId b) const {
  if (a == b || a >= adjacency_.size() || b >= adjacency_.size()) return false;
  return edges_.count(EdgeKey(a, b)) > 0;
}

Graph GraphBuilder::Build() {
  edges_.clear();
  num_edges_ = 0;
  return Graph(std::exchange(adjacency_, {}));
}

}  // namespace p2paqp::graph

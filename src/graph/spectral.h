// Spectral properties of the random-walk transition matrix.
//
// The paper (Sec. 3.3) ties the convergence speed of the Markov-chain random
// walk to the second eigenvalue of the MxM transition matrix: graphs with
// small cuts have lambda_2 close to 1 and mix slowly. These routines power
// the preprocessing step that picks the walk's burn-in and jump parameters.
#ifndef P2PAQP_GRAPH_SPECTRAL_H_
#define P2PAQP_GRAPH_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::graph {

// Estimates |lambda_2| of the *simple* walk transition matrix
// P = D^-1 A via power iteration on the symmetrically normalized adjacency
// with the principal eigenvector deflated. Deterministic given `rng`.
// Returns a value in [0, 1]; graphs with small cuts return values near 1.
double EstimateSecondEigenvalue(const Graph& graph, size_t iterations,
                                util::Rng& rng);

// Walk-distribution evolution: starting from a point mass at `start`,
// applies `steps` steps of the (optionally lazy) walk and returns the
// distribution over nodes. Lazy walks stay put with probability 1/2,
// guaranteeing aperiodicity.
std::vector<double> WalkDistribution(const Graph& graph, NodeId start,
                                     size_t steps, bool lazy);

// Total variation distance between `distribution` and the walk's stationary
// distribution deg(v)/2|E|.
double TotalVariationFromStationary(const Graph& graph,
                                    const std::vector<double>& distribution);

// Number of lazy-walk steps until the distribution from `start` is within
// `epsilon` total variation of stationary (measured empirically, capped at
// `max_steps`). This is the "speed of convergence ... determined in this
// preprocessing step" from Sec. 3.3.
size_t MeasureMixingTime(const Graph& graph, NodeId start, double epsilon,
                         size_t max_steps);

// Analytic upper bound on the mixing time from the spectral gap:
// ceil(ln(M/epsilon) / (1 - lambda2)). Returns max_value-capped size_t.
size_t MixingTimeBound(size_t num_nodes, double lambda2, double epsilon);

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_SPECTRAL_H_

// Incremental construction of immutable Graphs with edge deduplication.
//
// The builder is the only mutable stage of the graph pipeline, and at
// million-peer scale it dominates peak memory, so it stores nothing but
// flat arrays: an insertion-ordered log of canonical 8-byte edge keys, an
// open-addressing dedup table over those keys, and a per-node degree
// counter. Build() counting-sorts the log into a flat CSR and hands it to
// the compressed Graph constructor. The old vector-of-vectors +
// unordered_set builder (~100+ bytes/edge of node/bucket overhead) survives
// as LegacyGraphBuilder strictly for the golden-digest A/B tests.
//
// AddEdge accept/reject semantics are bit-identical to the legacy builder
// (reject self loops, out-of-range endpoints, duplicates — in that order);
// the topology generators' RNG streams depend on this feedback, so the
// golden digests in tests/topology_golden_test.cc pin it.
#ifndef P2PAQP_GRAPH_BUILDER_H_
#define P2PAQP_GRAPH_BUILDER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace p2paqp::graph {

// Accumulates undirected edges; ignores self loops and duplicates.
class GraphBuilder {
 public:
  // `expected_edges` pre-sizes the edge log and the dedup table so bulk
  // construction avoids rehashing. 0 = no reservation.
  explicit GraphBuilder(size_t num_nodes, size_t expected_edges = 0);

  // Adds {a, b}; returns false (and does nothing) if the edge is a self loop,
  // out of range, or already present.
  bool AddEdge(NodeId a, NodeId b);

  bool HasEdge(NodeId a, NodeId b) const;

  size_t num_nodes() const { return degrees_.size(); }
  size_t num_edges() const { return edges_.size(); }
  uint32_t degree(NodeId node) const { return degrees_[node]; }

  // Finalizes into a compressed-CSR Graph. The builder is left empty.
  Graph Build();

  // Exact heap footprint of the builder's flat state (edge log + dedup
  // table + degree counters). The bounded-memory unit test asserts this
  // stays O(edges + nodes) with small constants.
  size_t MemoryBytes() const {
    return degrees_.capacity() * sizeof(uint32_t) +
           edges_.capacity() * sizeof(uint64_t) +
           table_.capacity() * sizeof(uint64_t);
  }

 private:
  static uint64_t EdgeKey(NodeId a, NodeId b);

  // Inserts `key` into the open-addressing table; returns false if it was
  // already present. Grows at 60% load.
  bool TableInsert(uint64_t key);
  void GrowTable(size_t min_capacity);

  std::vector<uint32_t> degrees_;
  std::vector<uint64_t> edges_;  // Canonical keys, insertion order.
  std::vector<uint64_t> table_;  // Power-of-two open addressing.
  size_t table_used_ = 0;
};

// The pre-PR-7 builder, kept only so tests can A/B the streaming builder
// against it (golden digests, accept/reject parity). Do not use in new
// code: its per-node vectors and hash-set buckets blow up peak memory at
// high node counts.
class LegacyGraphBuilder {
 public:
  explicit LegacyGraphBuilder(size_t num_nodes, size_t expected_edges = 0);

  bool AddEdge(NodeId a, NodeId b);
  bool HasEdge(NodeId a, NodeId b) const;

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  uint32_t degree(NodeId node) const {
    return static_cast<uint32_t>(adjacency_[node].size());
  }

  Graph Build();

 private:
  static uint64_t EdgeKey(NodeId a, NodeId b);

  std::vector<std::vector<NodeId>> adjacency_;
  std::unordered_set<uint64_t> edges_;
  size_t num_edges_ = 0;
};

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_BUILDER_H_

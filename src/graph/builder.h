// Incremental construction of immutable Graphs with edge deduplication.
//
// The builder is the only mutable stage of the graph pipeline, and at
// million-peer scale it dominates peak memory, so it stores nothing but
// flat arrays: an insertion-ordered log of canonical 8-byte edge keys, an
// open-addressing dedup table over those keys, and a per-node degree
// counter. Build() counting-sorts the log into a flat CSR and hands it to
// the compressed Graph constructor. The old vector-of-vectors +
// unordered_set builder (~100+ bytes/edge of node/bucket overhead) survives
// as LegacyGraphBuilder strictly for the golden-digest A/B tests.
//
// AddEdge accept/reject semantics are bit-identical to the legacy builder
// (reject self loops, out-of-range endpoints, duplicates — in that order);
// the topology generators' RNG streams depend on this feedback, so the
// golden digests in tests/topology_golden_test.cc pin it.
#ifndef P2PAQP_GRAPH_BUILDER_H_
#define P2PAQP_GRAPH_BUILDER_H_

#include <cstdint>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace p2paqp::graph {

// Out-of-core construction knobs (docs/PERFORMANCE.md, "Out-of-core graph
// construction"). With run_edges > 0 the builder spills its edge log to an
// unlinked temp file in fixed-size sorted runs instead of growing an
// in-memory log + flat CSR, and Build() k-way-merges the runs straight into
// the varint encoder. Peak build memory then stays
//   O(nodes + dedup table + run buffer + fan_in * read buffers)
// instead of O(nodes + edges * ~24 B) — the knob that makes a 10M-peer
// world constructible under the gated world_build_peak_rss_mb ceiling.
struct SpillOptions {
  // Accepted edges buffered between spills (each edge contributes two
  // directed arcs of 8 bytes to the run). 0 disables spilling entirely:
  // Build() uses the in-memory counting-sort path.
  size_t run_edges = 0;
  // Maximum runs merged in one pass; more runs first collapse through
  // intermediate merge passes. Clamped to >= 2.
  size_t merge_fan_in = 64;
};

// Resolves SpillOptions from the environment: P2PAQP_BUILD_SPILL_EDGES
// (edges per run; unset or 0 = in-memory) and P2PAQP_BUILD_MERGE_FAN_IN
// (default 64). Read per call so tests can flip the knobs between builds.
SpillOptions SpillOptionsFromEnv();

// Accumulates undirected edges; ignores self loops and duplicates.
class GraphBuilder {
 public:
  // `expected_edges` pre-sizes the edge log and the dedup table so bulk
  // construction avoids rehashing. 0 = no reservation. Spill behavior comes
  // from the environment (SpillOptionsFromEnv) unless overridden via
  // set_spill before the first AddEdge.
  explicit GraphBuilder(size_t num_nodes, size_t expected_edges = 0);
  ~GraphBuilder();

  GraphBuilder(const GraphBuilder&) = delete;
  GraphBuilder& operator=(const GraphBuilder&) = delete;
  GraphBuilder(GraphBuilder&& other) noexcept;
  GraphBuilder& operator=(GraphBuilder&& other) noexcept;

  // Overrides the environment-resolved spill knobs. Must be called before
  // any edge is added (the accept/reject stream and the final graph are
  // identical either way; only peak memory changes).
  void set_spill(const SpillOptions& spill);

  // Adds {a, b}; returns false (and does nothing) if the edge is a self loop,
  // out of range, or already present.
  bool AddEdge(NodeId a, NodeId b);

  bool HasEdge(NodeId a, NodeId b) const;

  size_t num_nodes() const { return degrees_.size(); }
  size_t num_edges() const { return num_edges_; }
  uint32_t degree(NodeId node) const { return degrees_[node]; }

  // Finalizes into a compressed-CSR Graph. The builder is left empty.
  // Bit-identical output for any SpillOptions (tests/topology_golden_test.cc
  // pins this with golden digests).
  Graph Build();

  // Exact heap footprint of the builder's flat state (edge log or run
  // buffer + dedup table + degree counters). The bounded-memory unit tests
  // assert this stays O(edges + nodes) in-memory and O(nodes + run size)
  // when spilling.
  size_t MemoryBytes() const {
    return degrees_.capacity() * sizeof(uint32_t) +
           edges_.capacity() * sizeof(uint64_t) +
           run_buffer_.capacity() * sizeof(uint64_t) +
           table_.capacity() * sizeof(uint64_t);
  }

  // Bytes of spilled run data currently on disk (0 unless spilling).
  size_t SpilledBytes() const { return spilled_arcs_ * sizeof(uint64_t); }

  // Number of sorted runs spilled so far (tests force > merge_fan_in of
  // them to cover the multi-pass merge).
  size_t SpilledRuns() const { return runs_.size(); }

 private:
  // One sorted run of directed arcs inside a spill file, in arc units.
  struct Run {
    uint64_t offset = 0;
    uint64_t count = 0;
  };

  static uint64_t EdgeKey(NodeId a, NodeId b);

  // Inserts `key` into the open-addressing table; returns false if it was
  // already present. Grows at 60% load.
  bool TableInsert(uint64_t key);
  void GrowTable(size_t min_capacity);

  // Sorts and appends the run buffer to the active spill file.
  void FlushRun();
  // Collapses runs_ through intermediate merge passes until at most
  // merge_fan_in remain (ping-ponging between two unlinked temp files).
  void CollapseRuns();
  // In-memory counting-sort Build path (spilling disabled).
  Graph BuildInMemory();
  // External-merge Build path: k-way merge of the sorted runs streamed
  // node-by-node into a GraphEncoder.
  Graph BuildFromRuns();

  std::vector<uint32_t> degrees_;
  std::vector<uint64_t> edges_;  // Canonical keys, insertion order (in-mem).
  std::vector<uint64_t> table_;  // Power-of-two open addressing.
  size_t table_used_ = 0;
  size_t num_edges_ = 0;

  // Out-of-core state (inert unless spill_.run_edges > 0).
  SpillOptions spill_;
  std::vector<uint64_t> run_buffer_;  // Directed arcs awaiting a spill.
  std::vector<Run> runs_;
  std::FILE* spill_file_ = nullptr;    // Unlinked (tmpfile): leak-proof.
  std::FILE* scratch_file_ = nullptr;  // Merge-pass ping-pong target.
  uint64_t spilled_arcs_ = 0;
};

// The pre-PR-7 builder, kept only so tests can A/B the streaming builder
// against it (golden digests, accept/reject parity). Do not use in new
// code: its per-node vectors and hash-set buckets blow up peak memory at
// high node counts.
class LegacyGraphBuilder {
 public:
  explicit LegacyGraphBuilder(size_t num_nodes, size_t expected_edges = 0);

  bool AddEdge(NodeId a, NodeId b);
  bool HasEdge(NodeId a, NodeId b) const;

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  uint32_t degree(NodeId node) const {
    return static_cast<uint32_t>(adjacency_[node].size());
  }

  Graph Build();

 private:
  static uint64_t EdgeKey(NodeId a, NodeId b);

  std::vector<std::vector<NodeId>> adjacency_;
  std::unordered_set<uint64_t> edges_;
  size_t num_edges_ = 0;
};

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_BUILDER_H_

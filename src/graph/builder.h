// Incremental construction of immutable Graphs with edge deduplication.
#ifndef P2PAQP_GRAPH_BUILDER_H_
#define P2PAQP_GRAPH_BUILDER_H_

#include <unordered_set>
#include <vector>

#include "graph/graph.h"

namespace p2paqp::graph {

// Accumulates undirected edges; ignores self loops and duplicates.
class GraphBuilder {
 public:
  // `expected_edges` pre-sizes the dedup index and the per-node adjacency
  // vectors (assuming roughly even degrees), so bulk construction — e.g.
  // the 22k-node Gnutella topology — avoids rehashing and per-push
  // reallocation. 0 = no reservation.
  explicit GraphBuilder(size_t num_nodes, size_t expected_edges = 0);

  // Adds {a, b}; returns false (and does nothing) if the edge is a self loop,
  // already present, or out of range.
  bool AddEdge(NodeId a, NodeId b);

  bool HasEdge(NodeId a, NodeId b) const;

  size_t num_nodes() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  uint32_t degree(NodeId node) const {
    return static_cast<uint32_t>(adjacency_[node].size());
  }

  // Finalizes into a CSR Graph. The builder is left empty.
  Graph Build();

 private:
  static uint64_t EdgeKey(NodeId a, NodeId b);

  std::vector<std::vector<NodeId>> adjacency_;
  std::unordered_set<uint64_t> edges_;
  size_t num_edges_ = 0;
};

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_BUILDER_H_

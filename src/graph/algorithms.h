// Classic graph traversals and connectivity utilities.
#ifndef P2PAQP_GRAPH_ALGORITHMS_H_
#define P2PAQP_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::graph {

// Nodes in breadth-first order from `root` (root first). Only reachable
// nodes are included. Used by the paper's BFS data-placement scheme and the
// BFS sampling baseline.
std::vector<NodeId> BfsOrder(const Graph& graph, NodeId root);

// Nodes and their hop distance from `root`; unreachable nodes get distance
// kUnreachable.
inline constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);
std::vector<uint32_t> BfsDistances(const Graph& graph, NodeId root);

// Nodes in (iterative) depth-first preorder from `root`.
std::vector<NodeId> DfsOrder(const Graph& graph, NodeId root);

// Component id per node (0-based, dense).
std::vector<uint32_t> ConnectedComponents(const Graph& graph);

// Number of connected components.
size_t CountComponents(const Graph& graph);

// True iff every node is reachable from node 0 (or the graph is empty).
bool IsConnected(const Graph& graph);

// Approximate diameter: max BFS eccentricity over `num_probes` random roots.
uint32_t EstimateDiameter(const Graph& graph, size_t num_probes,
                          util::Rng& rng);

// Number of edges with endpoints in different blocks of `partition`
// (partition[v] = block id). This is the paper's "cut size" between
// sub-graphs (Fig. 12).
size_t CutSize(const Graph& graph, const std::vector<uint32_t>& partition);

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_ALGORITHMS_H_

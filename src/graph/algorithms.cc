#include "graph/algorithms.h"

#include <algorithm>
#include <deque>

namespace p2paqp::graph {

std::vector<NodeId> BfsOrder(const Graph& graph, NodeId root) {
  P2PAQP_CHECK(root < graph.num_nodes()) << root;
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<NodeId> order;
  order.reserve(graph.num_nodes());
  std::deque<NodeId> queue = {root};
  seen[root] = true;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (NodeId v : graph.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  return order;
}

std::vector<uint32_t> BfsDistances(const Graph& graph, NodeId root) {
  P2PAQP_CHECK(root < graph.num_nodes()) << root;
  std::vector<uint32_t> dist(graph.num_nodes(), kUnreachable);
  std::deque<NodeId> queue = {root};
  dist[root] = 0;
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> DfsOrder(const Graph& graph, NodeId root) {
  P2PAQP_CHECK(root < graph.num_nodes()) << root;
  std::vector<bool> seen(graph.num_nodes(), false);
  std::vector<NodeId> order;
  std::vector<NodeId> stack = {root};
  std::vector<NodeId> scratch;
  seen[root] = true;
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    // Push in reverse so the smallest-id neighbor is expanded first (the
    // compressed neighbor view only decodes forward, so buffer one list).
    graph.CopyNeighbors(u, &scratch);
    for (auto it = scratch.rbegin(); it != scratch.rend(); ++it) {
      if (!seen[*it]) {
        seen[*it] = true;
        stack.push_back(*it);
      }
    }
  }
  return order;
}

std::vector<uint32_t> ConnectedComponents(const Graph& graph) {
  std::vector<uint32_t> component(graph.num_nodes(), kUnreachable);
  uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId root = 0; root < graph.num_nodes(); ++root) {
    if (component[root] != kUnreachable) continue;
    component[root] = next;
    queue.push_back(root);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : graph.neighbors(u)) {
        if (component[v] == kUnreachable) {
          component[v] = next;
          queue.push_back(v);
        }
      }
    }
    ++next;
  }
  return component;
}

size_t CountComponents(const Graph& graph) {
  auto component = ConnectedComponents(graph);
  if (component.empty()) return 0;
  return static_cast<size_t>(
             *std::max_element(component.begin(), component.end())) +
         1;
}

bool IsConnected(const Graph& graph) {
  return graph.num_nodes() == 0 || CountComponents(graph) == 1;
}

uint32_t EstimateDiameter(const Graph& graph, size_t num_probes,
                          util::Rng& rng) {
  if (graph.num_nodes() == 0) return 0;
  uint32_t best = 0;
  for (size_t probe = 0; probe < num_probes; ++probe) {
    auto root = static_cast<NodeId>(rng.UniformIndex(graph.num_nodes()));
    for (uint32_t d : BfsDistances(graph, root)) {
      if (d != kUnreachable) best = std::max(best, d);
    }
  }
  return best;
}

size_t CutSize(const Graph& graph, const std::vector<uint32_t>& partition) {
  P2PAQP_CHECK_EQ(partition.size(), graph.num_nodes());
  size_t cut = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.neighbors(u)) {
      if (u < v && partition[u] != partition[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace p2paqp::graph

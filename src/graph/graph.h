// Compact undirected graph in compressed-sparse-row form.
//
// Models the unstructured P2P overlay G = (P, E) from Sec. 3.1 of the paper:
// vertices are peers, edges are open connections. The representation is
// immutable once built (see graph/builder.h); topology changes from churn are
// layered on top by net::SimulatedNetwork via liveness masks rather than by
// mutating the graph.
#ifndef P2PAQP_GRAPH_GRAPH_H_
#define P2PAQP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"

namespace p2paqp::graph {

using NodeId = uint32_t;

// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// Immutable undirected simple graph (no self edges, no parallel edges).
class Graph {
 public:
  Graph() = default;

  // `adjacency[u]` lists the neighbors of u; must be symmetric and free of
  // self loops / duplicates (GraphBuilder guarantees this).
  explicit Graph(std::vector<std::vector<NodeId>> adjacency);

  size_t num_nodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t num_edges() const { return neighbors_.size() / 2; }

  uint32_t degree(NodeId node) const {
    P2PAQP_DCHECK(node < num_nodes()) << node;
    return static_cast<uint32_t>(offsets_[node + 1] - offsets_[node]);
  }

  std::span<const NodeId> neighbors(NodeId node) const {
    P2PAQP_DCHECK(node < num_nodes()) << node;
    return {neighbors_.data() + offsets_[node],
            neighbors_.data() + offsets_[node + 1]};
  }

  bool HasEdge(NodeId a, NodeId b) const;

  uint32_t min_degree() const { return min_degree_; }
  uint32_t max_degree() const { return max_degree_; }
  double average_degree() const;

  // Stationary probability of `node` under the simple random walk:
  // deg(node) / 2|E| (Sec. 3.3).
  double StationaryProbability(NodeId node) const;

 private:
  std::vector<size_t> offsets_;     // num_nodes()+1 entries.
  std::vector<NodeId> neighbors_;  // Sorted within each node's range.
  uint32_t min_degree_ = 0;
  uint32_t max_degree_ = 0;
};

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_GRAPH_H_

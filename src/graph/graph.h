// Compact undirected graph in delta/varint-compressed CSR form.
//
// Models the unstructured P2P overlay G = (P, E) from Sec. 3.1 of the paper:
// vertices are peers, edges are open connections. The representation is
// immutable once built (see graph/builder.h); topology changes from churn are
// layered on top by net::SimulatedNetwork via liveness masks rather than by
// mutating the graph.
//
// Storage layout (docs/PERFORMANCE.md has the full accounting): one byte
// stream holding, per node, `[varint degree][varint first][varint gap-1]...`
// over the sorted neighbor list, plus a uint32 byte-offset table indexed by
// node. Neighbor ids in a sorted list are strictly increasing, so every gap
// is >= 1; the expected gap is ~num_nodes/degree, i.e. 2-byte varints at
// Gnutella scale and 3-byte at 1M+ peers with uniformly spread ids (less
// for clustered/hierarchical layouts where neighbor ids are nearby). At
// Gnutella-like average degree (~4.7) that is ~12 bytes/node of adjacency +
// 4 of offset, versus 8-byte offsets + 4 bytes per directed edge (~27) for
// the uncompressed CSR it replaced.
#ifndef P2PAQP_GRAPH_GRAPH_H_
#define P2PAQP_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace p2paqp::graph {

using NodeId = uint32_t;

// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

namespace varint {

// LEB128. Decodes one value; returns the position one past it. The single
// byte fast path covers every value < 128 — at P2P degrees that is the
// degree byte and almost every gap.
inline const uint8_t* Decode(const uint8_t* p, uint32_t* out) {
  uint32_t byte = *p++;
  if (byte < 0x80) {
    *out = byte;
    return p;
  }
  uint32_t value = byte & 0x7F;
  int shift = 7;
  do {
    byte = *p++;
    value |= (byte & 0x7F) << shift;
    shift += 7;
  } while (byte >= 0x80);
  *out = value;
  return p;
}

inline void Encode(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

}  // namespace varint

// Lazily-decoded view of one node's neighbor list. Values come back in
// ascending order; the underlying bytes stay compressed, so iteration is a
// running prefix sum over gaps. Forward iteration is the native operation;
// `operator[]` decodes from the front and costs O(i).
class NeighborRange {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using pointer = const NodeId*;
    using reference = NodeId;

    iterator() = default;

    NodeId operator*() const { return current_; }

    iterator& operator++() {
      if (--remaining_ > 0) {
        uint32_t gap;
        p_ = varint::Decode(p_, &gap);
        current_ += gap + 1;
      }
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }

    // Positions within one range are uniquely identified by the count of
    // values still to come, which also makes the end sentinel trivial.
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.remaining_ == b.remaining_;
    }

   private:
    friend class NeighborRange;
    iterator(const uint8_t* p, uint32_t remaining)
        : p_(p), remaining_(remaining) {
      if (remaining_ > 0) p_ = varint::Decode(p_, &current_);
    }

    const uint8_t* p_ = nullptr;
    uint32_t remaining_ = 0;
    NodeId current_ = 0;
  };

  NeighborRange() = default;
  NeighborRange(const uint8_t* block, uint32_t degree)
      : block_(block), degree_(degree) {}

  size_t size() const { return degree_; }
  bool empty() const { return degree_ == 0; }

  iterator begin() const { return iterator(block_, degree_); }
  iterator end() const { return iterator(nullptr, 0); }

  NodeId front() const {
    P2PAQP_DCHECK(degree_ > 0);
    return *begin();
  }

  // O(i + 1) decode from the block start; meant for single random probes
  // (walk steps, audit slots), not for nested loops — copy into a vector
  // for those (see graph/metrics.cc).
  NodeId operator[](size_t i) const {
    P2PAQP_DCHECK(i < degree_) << i;
    iterator it = begin();
    for (size_t k = 0; k < i; ++k) ++it;
    return *it;
  }

  // Sorted early-exit membership scan.
  bool contains(NodeId v) const {
    for (NodeId u : *this) {
      if (u >= v) return u == v;
    }
    return false;
  }

 private:
  const uint8_t* block_ = nullptr;  // First-neighbor varint (past degree).
  uint32_t degree_ = 0;
};

// Immutable undirected simple graph (no self edges, no parallel edges).
//
// Storage is accessed exclusively through raw views (`encoded_view_`,
// `offsets_view_`) so the same read path serves two backings:
//   * owned — the vectors below, filled by the constructors / GraphEncoder;
//   * external — a read-only region owned by someone else (an mmap'd world
//     file from io::OpenMappedGraph), kept alive by `backing_` and shared
//     by every copy of the Graph.
// Copies of an owned graph deep-copy the vectors and re-point the views;
// copies of a mapped graph just bump the backing refcount, so cloning a
// 10M-peer world does not duplicate its adjacency.
class Graph {
 public:
  Graph() = default;

  // `adjacency[u]` lists the neighbors of u; must be symmetric and free of
  // self loops / duplicates (GraphBuilder guarantees this). Retained for
  // small hand-built graphs and the legacy A/B builder; large worlds come
  // through the flat-CSR constructor below.
  explicit Graph(std::vector<std::vector<NodeId>> adjacency);

  // Streaming path used by GraphBuilder: `offsets` has num_nodes+1 entries
  // and `flat[offsets[u]..offsets[u+1])` is u's sorted neighbor list.
  Graph(size_t num_nodes, const std::vector<size_t>& offsets,
        const std::vector<NodeId>& flat);

  // Externally backed graph over an already-encoded CSR (the mmap loader).
  // `offsets` must have num_nodes+1 entries and `encoded` must hold
  // offsets[num_nodes] bytes; both must stay valid for as long as `backing`
  // is alive. No validation beyond size checks — the io layer verifies the
  // file digest/format before handing the region over.
  Graph(size_t num_nodes, size_t num_edges, uint32_t min_degree,
        uint32_t max_degree, const uint8_t* encoded, const uint32_t* offsets,
        std::shared_ptr<const void> backing);

  Graph(const Graph& other) { CopyFrom(other); }
  Graph& operator=(const Graph& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Graph(Graph&& other) noexcept { MoveFrom(std::move(other)); }
  Graph& operator=(Graph&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }

  // True when the adjacency lives in externally owned (mmap) storage.
  bool is_mapped() const { return backing_ != nullptr; }

  uint32_t degree(NodeId node) const {
    P2PAQP_DCHECK(node < num_nodes_) << node;
    uint32_t deg;
    varint::Decode(encoded_view_ + offsets_view_[node], &deg);
    return deg;
  }

  NeighborRange neighbors(NodeId node) const {
    P2PAQP_DCHECK(node < num_nodes_) << node;
    const uint8_t* p = encoded_view_ + offsets_view_[node];
    uint32_t deg;
    p = varint::Decode(p, &deg);
    return NeighborRange(p, deg);
  }

  // Decodes `node`'s list into `out` (cleared first) for call sites that
  // need repeated random access or reverse iteration.
  void CopyNeighbors(NodeId node, std::vector<NodeId>* out) const;

  // Software-prefetch pair for batched walker stepping. Neighbor decode on a
  // random node is two dependent misses — the offset-table entry, then the
  // varint block it points at — so a batch kernel hides them with a two-deep
  // pipeline: PrefetchOffset(walker i+2's node) and PrefetchNeighbors
  // (walker i+1's node, whose offset the previous iteration pulled in)
  // before decoding walker i. Hints only; never changes results.
  void PrefetchOffset(NodeId node) const {
    P2PAQP_DCHECK(node < num_nodes_) << node;
    __builtin_prefetch(offsets_view_ + node);
  }
  void PrefetchNeighbors(NodeId node) const {
    P2PAQP_DCHECK(node < num_nodes_) << node;
    __builtin_prefetch(encoded_view_ + offsets_view_[node]);
  }

  bool HasEdge(NodeId a, NodeId b) const;

  uint32_t min_degree() const { return min_degree_; }
  uint32_t max_degree() const { return max_degree_; }
  double average_degree() const;

  // Stationary probability of `node` under the simple random walk:
  // deg(node) / 2|E| (Sec. 3.3).
  double StationaryProbability(NodeId node) const;

  // Resident footprint of the adjacency structure (encoded stream + offset
  // table); the numerator of the gated bytes_per_peer metric. For a mapped
  // graph this is the mapped CSR size — the pages a full scan faults in.
  size_t MemoryBytes() const {
    return encoded_size_ +
           (num_nodes_ > 0 ? (num_nodes_ + 1) * sizeof(uint32_t) : 0);
  }

  // Raw CSR views for the io layer (serialization). The encoded stream is
  // offsets()[num_nodes()] bytes long.
  const uint8_t* encoded_bytes() const { return encoded_view_; }
  const uint32_t* offsets() const { return offsets_view_; }

 private:
  friend class GraphEncoder;

  // Appends one sorted list to `encoded_` and records its offset/degree.
  void AppendList(const NodeId* list, uint32_t deg);
  void FinishEncoding();
  // Re-points the views after owned storage changed (copy/finish).
  void RebindViews() {
    if (backing_ == nullptr) {
      encoded_view_ = encoded_.data();
      offsets_view_ = offsets_.data();
      encoded_size_ = encoded_.size();
    }
  }
  void CopyFrom(const Graph& other);
  void MoveFrom(Graph&& other) noexcept;

  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  std::vector<uint8_t> encoded_;
  // Byte offsets into encoded_, num_nodes_+1 entries. uint32 keeps the
  // table at 4 bytes/node and caps the stream at 4 GiB — ~50x headroom over
  // a 10M-peer overlay at Gnutella degrees (CHECKed in FinishEncoding).
  std::vector<uint32_t> offsets_;
  // Read views: into the vectors above (owned) or into `backing_` (mapped).
  const uint8_t* encoded_view_ = nullptr;
  const uint32_t* offsets_view_ = nullptr;
  size_t encoded_size_ = 0;
  std::shared_ptr<const void> backing_;
  uint32_t min_degree_ = 0;
  uint32_t max_degree_ = 0;
};

// Incremental Graph construction for callers that stream node lists in id
// order without materializing a flat CSR first — the out-of-core
// GraphBuilder merge feeds each node's sorted neighbor run straight into
// the varint encoder, so peak memory during the final encode is one node's
// scratch list plus the growing encoded stream.
class GraphEncoder {
 public:
  // `expected_bytes` pre-sizes the encoded stream (0 = default growth).
  explicit GraphEncoder(size_t num_nodes, size_t expected_bytes = 0);

  // Appends node `appended()`'s sorted neighbor list. Must be called exactly
  // num_nodes times before Finish.
  void AppendList(const NodeId* list, uint32_t deg);

  size_t appended() const { return appended_; }

  // Seals the graph; `num_edges` is the undirected edge count (the encoder
  // saw each edge twice). The encoder is left empty.
  Graph Finish(size_t num_edges);

 private:
  Graph graph_;
  size_t num_nodes_ = 0;
  size_t appended_ = 0;
};

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_GRAPH_H_

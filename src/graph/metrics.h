// Structural metrics of P2P overlay graphs: degree statistics, power-law
// exponent fitting, clustering coefficient and conductance. Used by the
// preprocessing step (core/catalog) and by topology-generator tests.
#ifndef P2PAQP_GRAPH_METRICS_H_
#define P2PAQP_GRAPH_METRICS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::graph {

// Histogram of node degrees: result[d] = #nodes with degree d.
std::vector<size_t> DegreeHistogram(const Graph& graph);

// Maximum-likelihood estimate of the exponent alpha of a discrete power law
// P(deg = d) ~ d^-alpha for degrees >= d_min (Clauset-Shalizi-Newman
// approximation). Returns 0 when no node has degree >= d_min.
double FitPowerLawExponent(const Graph& graph, uint32_t d_min = 2);

// Average local clustering coefficient estimated from `num_probes` random
// nodes (exact if num_probes >= num_nodes).
double EstimateClusteringCoefficient(const Graph& graph, size_t num_probes,
                                     util::Rng& rng);

// Conductance of the node set `side` (true = in S):
//   cut(S, V\S) / min(vol(S), vol(V\S)).
// Small conductance <=> small cut <=> slow random-walk mixing (Sec. 3.3).
double Conductance(const Graph& graph, const std::vector<bool>& side);

}  // namespace p2paqp::graph

#endif  // P2PAQP_GRAPH_METRICS_H_

#include "graph/spectral.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace p2paqp::graph {

namespace {

// y = N x where N = D^-1/2 A D^-1/2 (same spectrum as the walk matrix).
void ApplyNormalizedAdjacency(const Graph& graph,
                              const std::vector<double>& sqrt_deg,
                              const std::vector<double>& x,
                              std::vector<double>& y) {
  std::fill(y.begin(), y.end(), 0.0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (sqrt_deg[u] == 0.0) continue;
    double xu = x[u] / sqrt_deg[u];
    for (NodeId v : graph.neighbors(u)) {
      y[v] += xu / sqrt_deg[v];
    }
  }
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

}  // namespace

double EstimateSecondEigenvalue(const Graph& graph, size_t iterations,
                                util::Rng& rng) {
  size_t n = graph.num_nodes();
  if (n < 2 || graph.num_edges() == 0) return 0.0;
  std::vector<double> sqrt_deg(n);
  for (NodeId u = 0; u < n; ++u) {
    sqrt_deg[u] = std::sqrt(static_cast<double>(graph.degree(u)));
  }
  // Principal eigenvector of N is proportional to sqrt(deg), eigenvalue 1.
  std::vector<double> principal = sqrt_deg;
  double pn = Norm(principal);
  for (double& p : principal) p /= pn;

  std::vector<double> x(n);
  for (double& v : x) v = rng.UniformDouble(-1.0, 1.0);
  std::vector<double> y(n);
  double lambda = 0.0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    // Deflate the principal component, then apply N.
    double proj = Dot(x, principal);
    for (size_t i = 0; i < n; ++i) x[i] -= proj * principal[i];
    double norm = Norm(x);
    if (norm < 1e-300) {
      // Degenerate start vector; re-randomize.
      for (double& v : x) v = rng.UniformDouble(-1.0, 1.0);
      continue;
    }
    for (double& v : x) v /= norm;
    ApplyNormalizedAdjacency(graph, sqrt_deg, x, y);
    lambda = Dot(x, y);  // Rayleigh quotient; signed.
    x.swap(y);
  }
  return std::min(1.0, std::fabs(lambda));
}

std::vector<double> WalkDistribution(const Graph& graph, NodeId start,
                                     size_t steps, bool lazy) {
  size_t n = graph.num_nodes();
  P2PAQP_CHECK(start < n) << start;
  std::vector<double> dist(n, 0.0);
  dist[start] = 1.0;
  std::vector<double> next(n, 0.0);
  for (size_t step = 0; step < steps; ++step) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      double mass = dist[u];
      if (mass == 0.0) continue;
      uint32_t deg = graph.degree(u);
      if (deg == 0) {
        next[u] += mass;
        continue;
      }
      if (lazy) {
        next[u] += mass * 0.5;
        mass *= 0.5;
      }
      double share = mass / static_cast<double>(deg);
      for (NodeId v : graph.neighbors(u)) next[v] += share;
    }
    dist.swap(next);
  }
  return dist;
}

double TotalVariationFromStationary(const Graph& graph,
                                    const std::vector<double>& distribution) {
  P2PAQP_CHECK_EQ(distribution.size(), graph.num_nodes());
  double tv = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    tv += std::fabs(distribution[u] - graph.StationaryProbability(u));
  }
  return tv / 2.0;
}

size_t MeasureMixingTime(const Graph& graph, NodeId start, double epsilon,
                         size_t max_steps) {
  size_t n = graph.num_nodes();
  P2PAQP_CHECK(start < n) << start;
  std::vector<double> dist(n, 0.0);
  dist[start] = 1.0;
  std::vector<double> next(n, 0.0);
  for (size_t step = 0; step <= max_steps; ++step) {
    if (TotalVariationFromStationary(graph, dist) <= epsilon) return step;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      double mass = dist[u];
      if (mass == 0.0) continue;
      uint32_t deg = graph.degree(u);
      if (deg == 0) {
        next[u] += mass;
        continue;
      }
      next[u] += mass * 0.5;
      double share = mass * 0.5 / static_cast<double>(deg);
      for (NodeId v : graph.neighbors(u)) next[v] += share;
    }
    dist.swap(next);
  }
  return max_steps;
}

size_t MixingTimeBound(size_t num_nodes, double lambda2, double epsilon) {
  P2PAQP_CHECK(epsilon > 0.0 && epsilon < 1.0) << epsilon;
  if (num_nodes < 2) return 0;
  double gap = 1.0 - std::clamp(lambda2, 0.0, 1.0 - 1e-12);
  double bound =
      std::log(static_cast<double>(num_nodes) / epsilon) / std::max(gap, 1e-12);
  if (bound >= static_cast<double>(std::numeric_limits<size_t>::max() / 2)) {
    return std::numeric_limits<size_t>::max() / 2;
  }
  return static_cast<size_t>(std::ceil(bound));
}

}  // namespace p2paqp::graph

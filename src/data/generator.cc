#include "data/generator.h"

#include "util/zipf.h"

namespace p2paqp::data {

util::Result<Table> GenerateDataset(const DatasetParams& params,
                                    util::Rng& rng) {
  if (params.max_value < params.min_value) {
    return util::Status::InvalidArgument("empty value domain");
  }
  auto domain =
      static_cast<uint32_t>(params.max_value - params.min_value + 1);
  auto zipf = util::ZipfGenerator::Make(domain, params.skew);
  if (!zipf.ok()) return zipf.status();
  if (params.b_correlation < 0.0 || params.b_correlation > 1.0) {
    return util::Status::InvalidArgument("b_correlation outside [0,1]");
  }
  auto zipf_b = util::ZipfGenerator::Make(domain, params.b_skew);
  if (!zipf_b.ok()) return zipf_b.status();
  Table table;
  table.reserve(params.num_tuples);
  for (size_t i = 0; i < params.num_tuples; ++i) {
    uint32_t rank = zipf->Sample(rng);
    Tuple tuple{params.min_value + static_cast<Value>(rank) - 1, 0};
    if (params.fill_b) {
      // With probability b_correlation, B copies A; otherwise independent.
      tuple.b = rng.Bernoulli(params.b_correlation)
                    ? tuple.value
                    : params.min_value +
                          static_cast<Value>(zipf_b->Sample(rng)) - 1;
    }
    table.push_back(tuple);
  }
  return table;
}

int64_t ExactCount(const Table& table, Value lo, Value hi) {
  int64_t count = 0;
  for (const Tuple& t : table) {
    if (t.value >= lo && t.value <= hi) ++count;
  }
  return count;
}

int64_t ExactSum(const Table& table, Value lo, Value hi) {
  int64_t sum = 0;
  for (const Tuple& t : table) {
    if (t.value >= lo && t.value <= hi) sum += t.value;
  }
  return sum;
}

}  // namespace p2paqp::data

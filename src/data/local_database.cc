#include "data/local_database.h"

#include <algorithm>

#include "util/logging.h"

namespace p2paqp::data {

int64_t LocalDatabase::Count(Value lo, Value hi) const {
  int64_t count = 0;
  for (const Tuple& t : tuples_) {
    if (t.value >= lo && t.value <= hi) ++count;
  }
  return count;
}

int64_t LocalDatabase::Sum(Value lo, Value hi) const {
  int64_t sum = 0;
  for (const Tuple& t : tuples_) {
    if (t.value >= lo && t.value <= hi) sum += t.value;
  }
  return sum;
}

double LocalDatabase::MedianValue() const {
  P2PAQP_CHECK(!tuples_.empty());
  std::vector<Value> values;
  values.reserve(tuples_.size());
  for (const Tuple& t : tuples_) values.push_back(t.value);
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  if (values.size() % 2 == 1) return values[mid];
  auto upper = values[mid];
  std::nth_element(values.begin(), values.begin() + mid - 1,
                   values.begin() + mid);
  return (static_cast<double>(values[mid - 1]) + upper) / 2.0;
}

void LocalDatabase::SampleBlockSpansInto(
    size_t k, size_t block_size, util::Rng& rng, util::SampleScratch* scratch,
    std::vector<std::pair<size_t, size_t>>* out) const {
  P2PAQP_CHECK_GT(block_size, 0u);
  out->clear();
  if (k >= tuples_.size()) {
    if (!tuples_.empty()) out->emplace_back(0, tuples_.size());
    return;
  }
  size_t num_blocks = (tuples_.size() + block_size - 1) / block_size;
  size_t want_blocks = std::min(num_blocks, (k + block_size - 1) / block_size);
  if (out->capacity() < want_blocks) out->reserve(want_blocks);
  rng.SampleIndicesInto(num_blocks, want_blocks, scratch, &scratch->draws);
  for (size_t block : scratch->draws) {
    size_t begin = block * block_size;
    size_t end = std::min(begin + block_size, tuples_.size());
    out->emplace_back(begin, end);
  }
}

std::vector<std::pair<size_t, size_t>> LocalDatabase::SampleBlockSpans(
    size_t k, size_t block_size, util::Rng& rng) const {
  util::SampleScratch scratch;
  std::vector<std::pair<size_t, size_t>> spans;
  SampleBlockSpansInto(k, block_size, rng, &scratch, &spans);
  return spans;
}

Table LocalDatabase::SampleBlockLevel(size_t k, size_t block_size,
                                      util::Rng& rng) const {
  P2PAQP_CHECK_GT(block_size, 0u);
  if (k >= tuples_.size()) return tuples_;
  Table out;
  out.reserve(((k + block_size - 1) / block_size) * block_size);
  for (auto [begin, end] : SampleBlockSpans(k, block_size, rng)) {
    out.insert(out.end(), tuples_.begin() + static_cast<ptrdiff_t>(begin),
               tuples_.begin() + static_cast<ptrdiff_t>(end));
  }
  return out;
}

void LocalDatabase::SampleTupleIndicesInto(size_t k, util::Rng& rng,
                                           util::SampleScratch* scratch,
                                           std::vector<size_t>* out) const {
  if (k >= tuples_.size()) {
    // Copy-everything short-circuit: identity order, no randomness consumed
    // (matches Sample() and SampleTupleIndices()).
    out->clear();
    if (out->capacity() < tuples_.size()) out->reserve(tuples_.size());
    for (size_t i = 0; i < tuples_.size(); ++i) out->push_back(i);
    return;
  }
  rng.SampleIndicesInto(tuples_.size(), k, scratch, out);
}

std::vector<size_t> LocalDatabase::SampleTupleIndices(size_t k,
                                                      util::Rng& rng) const {
  util::SampleScratch scratch;
  std::vector<size_t> out;
  SampleTupleIndicesInto(k, rng, &scratch, &out);
  return out;
}

Table LocalDatabase::Sample(size_t k, util::Rng& rng) const {
  if (k >= tuples_.size()) return tuples_;
  Table out;
  out.reserve(k);
  for (size_t index : rng.SampleIndices(tuples_.size(), k)) {
    out.push_back(tuples_[index]);
  }
  return out;
}

}  // namespace p2paqp::data

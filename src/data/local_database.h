// Per-peer horizontal partition of the global table.
#ifndef P2PAQP_DATA_LOCAL_DATABASE_H_
#define P2PAQP_DATA_LOCAL_DATABASE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/tuple.h"
#include "util/rng.h"

namespace p2paqp::data {

// Owns a peer's tuples and answers local scans. Deliberately simple: the
// paper treats each peer's database as a flat, scannable relation.
class LocalDatabase {
 public:
  LocalDatabase() = default;
  explicit LocalDatabase(Table tuples) : tuples_(std::move(tuples)) {}

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Table& tuples() const { return tuples_; }

  void Append(Tuple tuple) { tuples_.push_back(tuple); }
  void Append(const Table& tuples) {
    tuples_.insert(tuples_.end(), tuples.begin(), tuples.end());
  }
  void Clear() { tuples_.clear(); }

  // Heap bytes held by the tuple storage (memory-per-peer accounting).
  size_t MemoryBytes() const { return tuples_.capacity() * sizeof(Tuple); }

  // COUNT(*) WHERE value BETWEEN lo AND hi over all local tuples.
  int64_t Count(Value lo, Value hi) const;

  // SUM(value) WHERE value BETWEEN lo AND hi over all local tuples.
  int64_t Sum(Value lo, Value hi) const;

  // Local exact median value; requires non-empty database.
  double MedianValue() const;

  // Uniform sample of min(k, size()) tuples without replacement.
  Table Sample(size_t k, util::Rng& rng) const;

  // Index-based variant of Sample(): the positions of min(k, size()) tuples
  // chosen uniformly without replacement, for callers that scan in place
  // instead of materializing a copied Table (the per-visit hot path in
  // query::ExecuteLocal). Consumes the identical RNG stream as Sample(), so
  // swapping between the two never perturbs seeded runs. When k >= size()
  // the identity [0, size()) is returned and no randomness is consumed,
  // matching Sample()'s copy-everything short-circuit.
  std::vector<size_t> SampleTupleIndices(size_t k, util::Rng& rng) const;

  // Scratch-reusing SampleTupleIndices: identical indices from the identical
  // RNG stream, but every buffer lives in `scratch`/`out`, so the per-visit
  // hot path samples without allocating once the buffers are warm.
  void SampleTupleIndicesInto(size_t k, util::Rng& rng,
                              util::SampleScratch* scratch,
                              std::vector<size_t>* out) const;

  // Block-level sample (Sec. 4: "sub-sampling can be more efficient than
  // scanning the entire local database — e.g., by block-level sampling in
  // which only a small number of disk blocks are retrieved"): the table is
  // viewed as consecutive blocks of `block_size` tuples and whole random
  // blocks are fetched until at least min(k, size()) tuples are collected.
  // Cheaper I/O, but intra-block correlation raises estimator variance —
  // which the engine's cross-validation then pays for in extra peers.
  Table SampleBlockLevel(size_t k, size_t block_size, util::Rng& rng) const;

  // Span-based variant of SampleBlockLevel(): the sampled blocks as
  // [begin, end) index ranges into tuples(), preserving block semantics
  // (whole blocks, same draw order, same RNG stream) without copying any
  // tuples. When k >= size() a single all-covering span is returned and no
  // randomness is consumed.
  std::vector<std::pair<size_t, size_t>> SampleBlockSpans(
      size_t k, size_t block_size, util::Rng& rng) const;

  // Scratch-reusing SampleBlockSpans (same spans, same RNG stream, no fresh
  // allocations once `scratch`/`out` are warm).
  void SampleBlockSpansInto(size_t k, size_t block_size, util::Rng& rng,
                            util::SampleScratch* scratch,
                            std::vector<std::pair<size_t, size_t>>* out) const;

 private:
  Table tuples_;
};

}  // namespace p2paqp::data

#endif  // P2PAQP_DATA_LOCAL_DATABASE_H_

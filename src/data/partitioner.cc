#include "data/partitioner.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace p2paqp::data {

util::Result<std::vector<LocalDatabase>> PartitionAcrossPeers(
    const Table& table, const graph::Graph& graph,
    const PartitionParams& params, util::Rng& rng) {
  if (graph.num_nodes() == 0) {
    return util::Status::InvalidArgument("graph has no peers");
  }
  if (params.cluster_level < 0.0 || params.cluster_level > 1.0) {
    return util::Status::InvalidArgument("cluster level outside [0,1]");
  }
  size_t num_peers = graph.num_nodes();

  // 1. Sort, then destroy a CL-fraction of the order.
  Table ordered = table;
  std::sort(ordered.begin(), ordered.end(),
            [](const Tuple& a, const Tuple& b) { return a.value < b.value; });
  rng.PartialShuffle(ordered, params.cluster_level);

  // 2. Per-peer quotas.
  std::vector<size_t> quota(num_peers, 0);
  if (params.size_policy == PartitionParams::SizePolicy::kUniform) {
    size_t base = ordered.size() / num_peers;
    size_t remainder = ordered.size() % num_peers;
    for (size_t i = 0; i < num_peers; ++i) {
      quota[i] = base + (i < remainder ? 1 : 0);
    }
  } else {
    // Degree-proportional with largest-remainder rounding.
    double total_degree = 2.0 * static_cast<double>(graph.num_edges());
    if (total_degree == 0.0) {
      return util::Status::InvalidArgument(
          "degree-proportional sizing requires edges");
    }
    std::vector<std::pair<double, size_t>> remainders;
    size_t assigned = 0;
    for (size_t i = 0; i < num_peers; ++i) {
      double exact = static_cast<double>(ordered.size()) *
                     static_cast<double>(graph.degree(
                         static_cast<graph::NodeId>(i))) /
                     total_degree;
      quota[i] = static_cast<size_t>(exact);
      assigned += quota[i];
      remainders.emplace_back(exact - static_cast<double>(quota[i]), i);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t k = 0; assigned < ordered.size(); ++k) {
      ++quota[remainders[k % remainders.size()].second];
      ++assigned;
    }
  }

  // 3. Hand out contiguous chunks in breadth-first order, so peers that are
  // topology neighbors receive value-adjacent chunks ("when loading a peer,
  // the adjacent peers are also loaded with similarly clustered data").
  graph::NodeId root = params.bfs_root;
  if (root == graph::kInvalidNode) {
    root = static_cast<graph::NodeId>(rng.UniformIndex(num_peers));
  }
  if (root >= num_peers) {
    return util::Status::InvalidArgument("BFS root out of range");
  }
  std::vector<graph::NodeId> order = graph::BfsOrder(graph, root);
  if (order.size() < num_peers) {
    // Disconnected graph: append unreached peers in id order so every tuple
    // still lands somewhere.
    std::vector<bool> seen(num_peers, false);
    for (graph::NodeId v : order) seen[v] = true;
    for (graph::NodeId v = 0; v < num_peers; ++v) {
      if (!seen[v]) order.push_back(v);
    }
  }

  std::vector<LocalDatabase> databases(num_peers);
  size_t cursor = 0;
  for (graph::NodeId peer : order) {
    size_t take = std::min(quota[peer], ordered.size() - cursor);
    Table chunk(ordered.begin() + static_cast<ptrdiff_t>(cursor),
                ordered.begin() + static_cast<ptrdiff_t>(cursor + take));
    databases[peer] = LocalDatabase(std::move(chunk));
    cursor += take;
  }
  P2PAQP_CHECK_EQ(cursor, ordered.size());
  if (params.sort_local_tables) {
    for (LocalDatabase& db : databases) {
      Table sorted = db.tuples();
      std::sort(sorted.begin(), sorted.end(),
                [](const Tuple& a, const Tuple& b) {
                  return a.value < b.value;
                });
      db = LocalDatabase(std::move(sorted));
    }
  }
  return databases;
}

}  // namespace p2paqp::data

// Tuple model for the horizontally partitioned table T.
//
// The paper's experiments use single-attribute tuples with values in
// [1, 100] drawn from a Zipf distribution (Sec. 5.2.2); the general model
// allows "any numeric measure column of T, or even an expression involving
// multiple columns" (Sec. 1), so tuples carry a second measure column `b`
// (0 unless the generator is asked for it). Values are 32-bit; every
// aggregation accumulates in 64-bit/double, leaving SUM headroom.
#ifndef P2PAQP_DATA_TUPLE_H_
#define P2PAQP_DATA_TUPLE_H_

#include <cstdint>
#include <vector>

namespace p2paqp::data {

using Value = int32_t;

struct Tuple {
  Value value = 0;  // Column A: the paper's attribute.
  Value b = 0;      // Column B: secondary measure for expressions.

  friend bool operator==(const Tuple&, const Tuple&) = default;
};

using Table = std::vector<Tuple>;

}  // namespace p2paqp::data

#endif  // P2PAQP_DATA_TUPLE_H_

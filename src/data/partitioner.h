// Clustered distribution of the global table across peers (Sec. 5.2.2).
//
// The paper emphasizes that real P2P content is strongly clustered (peers in
// a neighborhood share genres). Its loader reproduces that: the dataset is
// sorted, a "cluster level" CL in [0,1] controls how much of the sorted order
// survives (CL=0 perfectly clustered, CL=1 random permutation), and tuples
// are then handed out to peers in breadth-first topology order so adjacent
// peers receive adjacent (hence similar) chunks.
#ifndef P2PAQP_DATA_PARTITIONER_H_
#define P2PAQP_DATA_PARTITIONER_H_

#include <cstddef>
#include <vector>

#include "data/local_database.h"
#include "data/tuple.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::data {

struct PartitionParams {
  // Cluster level: 0 = sorted then chunked (max correlation within peers),
  // 1 = fully shuffled (no correlation).
  double cluster_level = 0.25;
  // Peer database sizes. kUniform gives every peer floor(N/M) tuples (the
  // remainder spread one-each from the BFS root); kDegreeProportional sizes
  // a peer's share by its degree ("varying sizes" from the introduction).
  enum class SizePolicy { kUniform, kDegreeProportional };
  SizePolicy size_policy = SizePolicy::kUniform;
  // Root of the breadth-first placement order; kInvalidNode = random root.
  graph::NodeId bfs_root = graph::kInvalidNode;
  // Sort each peer's local table by value after placement — the physical
  // layout a clustered local index produces. Irrelevant to tuple-level
  // sampling, but it makes disk *blocks* internally correlated, which is
  // what block-level sub-sampling (Sec. 4) trades accuracy against.
  bool sort_local_tables = false;
};

// Distributes `table` over the peers of `graph`. Returns one LocalDatabase
// per node (index = NodeId). The multiset of all distributed tuples equals
// the input table exactly.
util::Result<std::vector<LocalDatabase>> PartitionAcrossPeers(
    const Table& table, const graph::Graph& graph,
    const PartitionParams& params, util::Rng& rng);

}  // namespace p2paqp::data

#endif  // P2PAQP_DATA_PARTITIONER_H_

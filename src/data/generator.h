// Synthetic dataset generation (Sec. 5.2.2).
#ifndef P2PAQP_DATA_GENERATOR_H_
#define P2PAQP_DATA_GENERATOR_H_

#include <cstddef>

#include "data/tuple.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::data {

struct DatasetParams {
  size_t num_tuples = 1000000;
  // Attribute domain [min_value, max_value]; the paper uses [1, 100].
  Value min_value = 1;
  Value max_value = 100;
  // Zipf skew Z; 0 = uniform frequencies, larger = more slanted.
  double skew = 0.2;
  // Secondary measure column B (0 = leave B at zero). B is drawn from the
  // same domain with skew `b_skew`, blended with A by `b_correlation` in
  // [0, 1]: 0 = independent, 1 = B == A.
  bool fill_b = false;
  double b_skew = 0.2;
  double b_correlation = 0.0;
};

// Draws `num_tuples` values i.i.d. Zipf(skew) over the domain. The Zipf rank
// r in [1, domain] maps to value min_value + r - 1, so low values are the
// frequent ones — matching the paper's skew semantics.
util::Result<Table> GenerateDataset(const DatasetParams& params,
                                    util::Rng& rng);

// Exact aggregates over a table, used for ground truth in tests/benches.
int64_t ExactCount(const Table& table, Value lo, Value hi);
int64_t ExactSum(const Table& table, Value lo, Value hi);

}  // namespace p2paqp::data

#endif  // P2PAQP_DATA_GENERATOR_H_

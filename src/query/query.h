// Aggregation query model:
//   SELECT Agg-Op(Col) FROM T WHERE selection-condition
// with a per-query required error threshold (Sec. 1, "Goal of Paper").
#ifndef P2PAQP_QUERY_QUERY_H_
#define P2PAQP_QUERY_QUERY_H_

#include <limits>
#include <optional>
#include <string>

#include "data/tuple.h"
#include "util/zipf.h"

namespace p2paqp::query {

enum class AggregateOp {
  kCount = 0,
  kSum,
  kAvg,
  kMedian,
  kQuantile,
  kDistinct,
};

const char* AggregateOpToString(AggregateOp op);

// WHERE value BETWEEN lo AND hi (inclusive), the paper's range selection.
struct RangePredicate {
  data::Value lo = 1;
  data::Value hi = 100;

  bool Matches(data::Value v) const { return v >= lo && v <= hi; }

  // Predicate matching every tuple (selectivity 1.0).
  static RangePredicate All() {
    return RangePredicate{std::numeric_limits<data::Value>::min(),
                          std::numeric_limits<data::Value>::max()};
  }
};

// The measure being aggregated: a column of T "or even an expression
// involving multiple columns" (Sec. 1).
enum class Expression {
  kColA = 0,  // The paper's single attribute (default).
  kColB,
  kAPlusB,
  kATimesB,
};

const char* ExpressionToString(Expression expr);

// Evaluates `expr` on one tuple.
double EvaluateExpression(Expression expr, const data::Tuple& tuple);

struct AggregateQuery {
  AggregateOp op = AggregateOp::kCount;
  RangePredicate predicate;  // On column A.
  // Optional conjunctive range on column B ("A BETWEEN .. AND B BETWEEN ..").
  std::optional<RangePredicate> predicate_b;
  // Measure fed to SUM/AVG/MEDIAN/QUANTILE (COUNT/DISTINCT ignore it).
  Expression expr = Expression::kColA;
  // Desired maximum relative error Delta_req, normalized to [0, 1].
  double required_error = 0.1;
  // Only for kQuantile: the target rank fraction phi in (0, 1).
  double quantile_phi = 0.5;

  bool Matches(const data::Tuple& tuple) const {
    return predicate.Matches(tuple.value) &&
           (!predicate_b.has_value() || predicate_b->Matches(tuple.b));
  }

  std::string ToSql() const;
};

// Builds a prefix range [min_value, A2] whose probability mass under the
// Zipf(value-domain) distribution is as close as possible to
// `target_selectivity`. Benches use this to hit the paper's selectivity
// knobs (2.5% ... 40%).
RangePredicate PredicateForSelectivity(const util::ZipfGenerator& zipf,
                                       data::Value min_value,
                                       double target_selectivity);

}  // namespace p2paqp::query

#endif  // P2PAQP_QUERY_QUERY_H_

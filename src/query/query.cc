#include "query/query.h"

#include <cmath>
#include <cstdio>

namespace p2paqp::query {

const char* AggregateOpToString(AggregateOp op) {
  switch (op) {
    case AggregateOp::kCount:
      return "COUNT";
    case AggregateOp::kSum:
      return "SUM";
    case AggregateOp::kAvg:
      return "AVG";
    case AggregateOp::kMedian:
      return "MEDIAN";
    case AggregateOp::kQuantile:
      return "QUANTILE";
    case AggregateOp::kDistinct:
      return "DISTINCT";
  }
  return "UNKNOWN";
}

const char* ExpressionToString(Expression expr) {
  switch (expr) {
    case Expression::kColA:
      return "A";
    case Expression::kColB:
      return "B";
    case Expression::kAPlusB:
      return "A+B";
    case Expression::kATimesB:
      return "A*B";
  }
  return "?";
}

double EvaluateExpression(Expression expr, const data::Tuple& tuple) {
  switch (expr) {
    case Expression::kColA:
      return static_cast<double>(tuple.value);
    case Expression::kColB:
      return static_cast<double>(tuple.b);
    case Expression::kAPlusB:
      return static_cast<double>(tuple.value) + static_cast<double>(tuple.b);
    case Expression::kATimesB:
      return static_cast<double>(tuple.value) * static_cast<double>(tuple.b);
  }
  return 0.0;
}

std::string AggregateQuery::ToSql() const {
  char buf[224];
  if (predicate_b.has_value()) {
    std::snprintf(buf, sizeof(buf),
                  "SELECT %s(%s) FROM T WHERE A BETWEEN %d AND %d "
                  "AND B BETWEEN %d AND %d",
                  AggregateOpToString(op), ExpressionToString(expr),
                  predicate.lo, predicate.hi, predicate_b->lo,
                  predicate_b->hi);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "SELECT %s(%s) FROM T WHERE A BETWEEN %d AND %d",
                  AggregateOpToString(op), ExpressionToString(expr),
                  predicate.lo, predicate.hi);
  }
  return buf;
}

RangePredicate PredicateForSelectivity(const util::ZipfGenerator& zipf,
                                       data::Value min_value,
                                       double target_selectivity) {
  double mass = 0.0;
  double best_gap = 2.0;
  uint32_t best_rank = 1;
  for (uint32_t rank = 1; rank <= zipf.n(); ++rank) {
    mass += zipf.Probability(rank);
    double gap = std::fabs(mass - target_selectivity);
    if (gap < best_gap) {
      best_gap = gap;
      best_rank = rank;
    }
    if (mass >= target_selectivity) break;
  }
  return RangePredicate{min_value,
                        min_value + static_cast<data::Value>(best_rank) - 1};
}

}  // namespace p2paqp::query

#include "query/local_executor.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace p2paqp::query {

namespace {

// Streaming accumulator for one local execution: count/sum of predicate
// matches, the all-tuples total for error normalization, and the evaluated
// measure of every processed row (quantile input). Evaluates the measure
// expression exactly once per row — the old copy-then-rescan path evaluated
// it twice.
struct RowAccumulator {
  const AggregateQuery& query;
  int64_t count = 0;
  double sum = 0.0;
  double total_sum = 0.0;
  // Borrowed from the caller's scratch so repeat visits reuse capacity.
  std::vector<double>& values;

  RowAccumulator(const AggregateQuery& q, size_t expected_rows,
                 std::vector<double>& buffer)
      : query(q), values(buffer) {
    values.clear();
    if (values.capacity() < expected_rows) values.reserve(expected_rows);
  }

  void Add(const data::Tuple& t) {
    double measure = EvaluateExpression(query.expr, t);
    total_sum += measure;
    if (query.Matches(t)) {
      ++count;
      sum += measure;
    }
    values.push_back(measure);
  }

  // phi-quantile of the processed rows' measures; 0 when nothing processed.
  double Quantile(double phi) {
    if (values.empty()) return 0.0;
    auto k = static_cast<size_t>(phi * static_cast<double>(values.size()));
    k = std::min(k, values.size() - 1);
    std::nth_element(values.begin(),
                     values.begin() + static_cast<ptrdiff_t>(k), values.end());
    return values[k];
  }
};

}  // namespace

LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query, uint64_t t,
                            util::Rng& rng) {
  return ExecuteLocal(db, query, SubSamplePolicy{.t = t}, rng);
}

LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query,
                            const SubSamplePolicy& policy, util::Rng& rng) {
  LocalExecScratch scratch;
  return ExecuteLocal(db, query, policy, rng, &scratch);
}

LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query,
                            const SubSamplePolicy& policy, util::Rng& rng,
                            LocalExecScratch* scratch) {
  const uint64_t t = policy.t;
  LocalAggregate result;
  result.local_tuples = db.size();
  if (db.empty()) return result;

  const bool subsample = t > 0 && db.size() > t;
  double phi = query.op == AggregateOp::kQuantile ? query.quantile_phi : 0.5;
  const data::Table& all = db.tuples();

  // Scan the selected rows in place — no per-visit Table materialization.
  // The sampled row order matches the old Sample()/SampleBlockLevel() copies
  // exactly (same RNG stream), so accumulation is bit-identical.
  RowAccumulator acc(query, subsample ? static_cast<size_t>(t) : all.size(),
                     scratch->values);
  if (!subsample) {
    for (const data::Tuple& tuple : all) acc.Add(tuple);
  } else if (policy.mode == SubSampleMode::kBlockLevel) {
    db.SampleBlockSpansInto(t, policy.block_size, rng, &scratch->sample,
                            &scratch->spans);
    for (auto [begin, end] : scratch->spans) {
      for (size_t i = begin; i < end; ++i) acc.Add(all[i]);
    }
  } else {
    db.SampleTupleIndicesInto(t, rng, &scratch->sample, &scratch->indices);
    for (size_t index : scratch->indices) acc.Add(all[index]);
  }

  result.processed_tuples = acc.values.size();
  // y(Curr) = (#tuples / #processedTuples) * result_of_Q.
  double scale = subsample ? static_cast<double>(db.size()) /
                                 static_cast<double>(result.processed_tuples)
                           : 1.0;
  result.count_value = static_cast<double>(acc.count) * scale;
  result.sum_value = acc.sum * scale;
  result.total_sum_value = acc.total_sum * scale;
  result.local_median = acc.Quantile(phi);
  return result;
}

}  // namespace p2paqp::query

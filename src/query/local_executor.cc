#include "query/local_executor.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace p2paqp::query {

namespace {

// Scans `rows` once, filling the unscaled count/sum of predicate matches.
// Sums evaluate the query's measure expression; the all-tuples total rides
// along for error normalization.
void ScanRows(const data::Table& rows, const AggregateQuery& query,
              int64_t* count, double* sum, double* total_sum) {
  *count = 0;
  *sum = 0.0;
  *total_sum = 0.0;
  for (const data::Tuple& t : rows) {
    double measure = EvaluateExpression(query.expr, t);
    *total_sum += measure;
    if (query.Matches(t)) {
      ++*count;
      *sum += measure;
    }
  }
}

double QuantileOfRows(const data::Table& rows, Expression expr, double phi) {
  if (rows.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(rows.size());
  for (const data::Tuple& t : rows) {
    values.push_back(EvaluateExpression(expr, t));
  }
  auto k = static_cast<size_t>(phi * static_cast<double>(values.size()));
  k = std::min(k, values.size() - 1);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(k), values.end());
  return values[k];
}

}  // namespace

LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query, uint64_t t,
                            util::Rng& rng) {
  return ExecuteLocal(db, query, SubSamplePolicy{.t = t}, rng);
}

LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query,
                            const SubSamplePolicy& policy, util::Rng& rng) {
  const uint64_t t = policy.t;
  LocalAggregate result;
  result.local_tuples = db.size();
  if (db.empty()) return result;

  const bool subsample = t > 0 && db.size() > t;
  double phi =
      query.op == AggregateOp::kQuantile ? query.quantile_phi : 0.5;
  int64_t count = 0;
  double sum = 0.0;
  double total_sum = 0.0;
  if (!subsample) {
    result.processed_tuples = db.size();
    ScanRows(db.tuples(), query, &count, &sum, &total_sum);
    result.count_value = static_cast<double>(count);
    result.sum_value = sum;
    result.total_sum_value = total_sum;
    result.local_median = QuantileOfRows(db.tuples(), query.expr, phi);
    return result;
  }

  data::Table rows =
      policy.mode == SubSampleMode::kBlockLevel
          ? db.SampleBlockLevel(t, policy.block_size, rng)
          : db.Sample(t, rng);
  result.processed_tuples = rows.size();
  // y(Curr) = (#tuples / #processedTuples) * result_of_Q.
  double scale =
      static_cast<double>(db.size()) / static_cast<double>(rows.size());
  ScanRows(rows, query, &count, &sum, &total_sum);
  result.count_value = static_cast<double>(count) * scale;
  result.sum_value = sum * scale;
  result.total_sum_value = total_sum * scale;
  result.local_median = QuantileOfRows(rows, query.expr, phi);
  return result;
}

}  // namespace p2paqp::query

// Text form of the paper's aggregation queries:
//
//   SELECT Agg-Op(Col) FROM T WHERE selection-condition
//
// Grammar (keywords case-insensitive, whitespace free-form):
//
//   query     := SELECT op '(' expr ')' FROM T [where] [within] [quantile]
//   op        := COUNT | SUM | AVG | MEDIAN | QUANTILE | DISTINCT
//   expr      := A | B | A+B | A*B | *          (* only for COUNT/DISTINCT)
//   where     := WHERE cond [AND cond]
//   cond      := A BETWEEN int AND int | B BETWEEN int AND int
//   within    := WITHIN number['%']             (required error, default 10%)
//   quantile  := AT number                      (phi for QUANTILE)
//
// Examples:
//   SELECT COUNT(*) FROM T WHERE A BETWEEN 1 AND 30 WITHIN 10%
//   SELECT SUM(A*B) FROM T WHERE A BETWEEN 1 AND 50 AND B BETWEEN 1 AND 10
//   SELECT QUANTILE(A) FROM T AT 0.75 WITHIN 5%
#ifndef P2PAQP_QUERY_PARSER_H_
#define P2PAQP_QUERY_PARSER_H_

#include <string>

#include "query/query.h"
#include "util/status.h"

namespace p2paqp::query {

// Parses `text` into a query; InvalidArgument with a readable message on
// syntax errors.
util::Result<AggregateQuery> ParseQuery(const std::string& text);

}  // namespace p2paqp::query

#endif  // P2PAQP_QUERY_PARSER_H_

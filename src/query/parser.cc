#include "query/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace p2paqp::query {

namespace {

// Whitespace-and-punctuation tokenizer: identifiers/numbers plus the single
// characters ( ) * + % kept as their own tokens. Keywords are upcased.
std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    auto c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      flush();
    } else if (c == '(' || c == ')' || c == '*' || c == '+' || c == '%') {
      flush();
      tokens.push_back(std::string(1, static_cast<char>(c)));
    } else if (std::isalnum(c) || c == '.' || c == '-' || c == '_') {
      current.push_back(
          static_cast<char>(std::isalpha(c) ? std::toupper(c) : c));
    } else {
      flush();
      tokens.push_back(std::string(1, static_cast<char>(c)));
    }
  }
  flush();
  return tokens;
}

// Cursor over the token stream with one-line error reporting.
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool Done() const { return pos_ >= tokens_.size(); }
  const std::string& Peek() const {
    static const std::string kEnd = "<end>";
    return Done() ? kEnd : tokens_[pos_];
  }
  std::string Take() {
    std::string token = Peek();
    if (!Done()) ++pos_;
    return token;
  }
  bool TakeIf(const std::string& expected) {
    if (Peek() == expected) {
      ++pos_;
      return true;
    }
    return false;
  }
  util::Status Expect(const std::string& expected) {
    if (TakeIf(expected)) return util::Status::Ok();
    return util::Status::InvalidArgument("expected '" + expected +
                                         "' but found '" + Peek() + "'");
  }

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

util::Result<int64_t> ParseInt(TokenCursor& cursor) {
  std::string token = cursor.Take();
  char* end = nullptr;
  long long value = std::strtoll(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("expected an integer, found '" +
                                         token + "'");
  }
  return static_cast<int64_t>(value);
}

util::Result<double> ParseNumber(TokenCursor& cursor) {
  std::string token = cursor.Take();
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return util::Status::InvalidArgument("expected a number, found '" +
                                         token + "'");
  }
  return value;
}

util::Result<AggregateOp> ParseOp(TokenCursor& cursor) {
  std::string token = cursor.Take();
  if (token == "COUNT") return AggregateOp::kCount;
  if (token == "SUM") return AggregateOp::kSum;
  if (token == "AVG") return AggregateOp::kAvg;
  if (token == "MEDIAN") return AggregateOp::kMedian;
  if (token == "QUANTILE") return AggregateOp::kQuantile;
  if (token == "DISTINCT") return AggregateOp::kDistinct;
  return util::Status::InvalidArgument("unknown aggregate '" + token + "'");
}

util::Result<Expression> ParseExpr(TokenCursor& cursor, AggregateOp op) {
  std::string token = cursor.Take();
  if (token == "*") {
    if (op == AggregateOp::kCount || op == AggregateOp::kDistinct) {
      return Expression::kColA;  // COUNT(*)/DISTINCT(*): measure unused.
    }
    return util::Status::InvalidArgument(
        "'*' is only valid for COUNT/DISTINCT");
  }
  if (token == "A") {
    if (cursor.TakeIf("+")) {
      util::Status tail = cursor.Expect("B");
      if (!tail.ok()) return tail;
      return Expression::kAPlusB;
    }
    if (cursor.TakeIf("*")) {
      util::Status tail = cursor.Expect("B");
      if (!tail.ok()) return tail;
      return Expression::kATimesB;
    }
    return Expression::kColA;
  }
  if (token == "B") return Expression::kColB;
  return util::Status::InvalidArgument("unknown column '" + token + "'");
}

// cond := (A|B) BETWEEN int AND int
util::Status ParseCondition(TokenCursor& cursor, AggregateQuery& query) {
  std::string column = cursor.Take();
  if (column != "A" && column != "B") {
    return util::Status::InvalidArgument("unknown predicate column '" +
                                         column + "'");
  }
  util::Status between = cursor.Expect("BETWEEN");
  if (!between.ok()) return between;
  auto lo = ParseInt(cursor);
  if (!lo.ok()) return lo.status();
  util::Status and_kw = cursor.Expect("AND");
  if (!and_kw.ok()) return and_kw;
  auto hi = ParseInt(cursor);
  if (!hi.ok()) return hi.status();
  if (*hi < *lo) {
    return util::Status::InvalidArgument("empty range in BETWEEN");
  }
  RangePredicate range{static_cast<data::Value>(*lo),
                       static_cast<data::Value>(*hi)};
  if (column == "A") {
    query.predicate = range;
  } else {
    query.predicate_b = range;
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<AggregateQuery> ParseQuery(const std::string& text) {
  TokenCursor cursor(Tokenize(text));
  util::Status select = cursor.Expect("SELECT");
  if (!select.ok()) return select;

  AggregateQuery query;
  query.predicate = RangePredicate::All();
  auto op = ParseOp(cursor);
  if (!op.ok()) return op.status();
  query.op = *op;

  util::Status open = cursor.Expect("(");
  if (!open.ok()) return open;
  auto expr = ParseExpr(cursor, query.op);
  if (!expr.ok()) return expr.status();
  query.expr = *expr;
  util::Status close = cursor.Expect(")");
  if (!close.ok()) return close;

  util::Status from = cursor.Expect("FROM");
  if (!from.ok()) return from;
  util::Status table = cursor.Expect("T");
  if (!table.ok()) return table;

  if (cursor.TakeIf("WHERE")) {
    do {
      util::Status cond = ParseCondition(cursor, query);
      if (!cond.ok()) return cond;
    } while (cursor.TakeIf("AND"));
  }

  while (!cursor.Done()) {
    if (cursor.TakeIf("WITHIN")) {
      auto number = ParseNumber(cursor);
      if (!number.ok()) return number.status();
      double error = *number;
      if (cursor.TakeIf("%")) error /= 100.0;
      if (error <= 0.0 || error >= 1.0) {
        return util::Status::InvalidArgument(
            "WITHIN must be in (0,1) or (0,100)%");
      }
      query.required_error = error;
    } else if (cursor.TakeIf("AT")) {
      auto number = ParseNumber(cursor);
      if (!number.ok()) return number.status();
      if (*number <= 0.0 || *number >= 1.0) {
        return util::Status::InvalidArgument("AT phi must be in (0,1)");
      }
      query.quantile_phi = *number;
    } else {
      return util::Status::InvalidArgument("unexpected trailing token '" +
                                           cursor.Peek() + "'");
    }
  }
  return query;
}

}  // namespace p2paqp::query

// Local (per-peer) query execution — the paper's Visit() pseudocode.
//
// A visited peer runs the query against its own partition. If the partition
// exceeds the sub-sampling budget t, the query runs on a uniform random
// t-subset and the aggregate is scaled by (#tuples / #processedTuples) so the
// reply estimates the peer's full local aggregate.
#ifndef P2PAQP_QUERY_LOCAL_EXECUTOR_H_
#define P2PAQP_QUERY_LOCAL_EXECUTOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/local_database.h"
#include "query/query.h"
#include "util/rng.h"

namespace p2paqp::query {

// What a visited peer ships back to the sink (plus its degree, which the
// transport layer attaches). Both COUNT and SUM components are always
// populated — they come from the same scan and AVG needs their ratio.
struct LocalAggregate {
  // Scaled local COUNT of predicate matches.
  double count_value = 0.0;
  // Scaled local SUM of matching values.
  double sum_value = 0.0;
  // Scaled local SUM over *all* tuples (no predicate). Ships in the same
  // reply; the sink uses it to normalize errors the way the paper does
  // (relative to the total aggregate, Sec. 3.4: "divide the variance by
  // N^2 ... the error of the relative count aggregate").
  double total_sum_value = 0.0;
  // phi-quantile of the processed tuples' values (phi = query.quantile_phi
  // for kQuantile, 0.5 otherwise); 0 when nothing was processed.
  double local_median = 0.0;
  // Size of the peer's full local database.
  uint64_t local_tuples = 0;
  // Tuples actually read (min(t, local size)).
  uint64_t processed_tuples = 0;

  // The y(p) relevant to `op` (count for kCount/kAvg denominators are taken
  // separately; sum for kSum).
  double ValueFor(AggregateOp op) const {
    return op == AggregateOp::kSum ? sum_value : count_value;
  }
};

// How a peer draws its local sub-sample.
enum class SubSampleMode {
  kUniformTuples = 0,  // t independent random tuples (paper's default).
  kBlockLevel,         // Whole random disk blocks until >= t tuples.
};

struct SubSamplePolicy {
  // Max tuples to process (0 = scan everything).
  uint64_t t = 25;
  SubSampleMode mode = SubSampleMode::kUniformTuples;
  // Tuples per disk block for kBlockLevel.
  size_t block_size = 8;
};

// Reusable working storage for ExecuteLocal. One visit needs the processed
// rows' measures (quantile input), the sampled tuple indices or block spans,
// and the sampler's own scratch; capacities plateau at the sub-sampling
// budget, so a warmed scratch makes every later visit allocation-free — the
// property the event-driven engine's zero-allocation steady state is built
// on (docs/PERFORMANCE.md).
struct LocalExecScratch {
  std::vector<double> values;
  std::vector<size_t> indices;
  std::vector<std::pair<size_t, size_t>> spans;
  util::SampleScratch sample;
};

// Executes `query` on `db` under the given sub-sampling policy.
LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query,
                            const SubSamplePolicy& policy, util::Rng& rng);

// Scratch-reusing variant: identical result from the identical RNG stream,
// with all working storage in `scratch`.
LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query,
                            const SubSamplePolicy& policy, util::Rng& rng,
                            LocalExecScratch* scratch);

// Convenience: uniform tuple sampling with budget `t` (t == 0 disables
// sub-sampling, i.e. always scans everything).
LocalAggregate ExecuteLocal(const data::LocalDatabase& db,
                            const AggregateQuery& query, uint64_t t,
                            util::Rng& rng);

}  // namespace p2paqp::query

#endif  // P2PAQP_QUERY_LOCAL_EXECUTOR_H_

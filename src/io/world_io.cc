#include "io/world_io.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "graph/builder.h"

namespace p2paqp::io {

namespace {

constexpr char kMagic[4] = {'P', '2', 'P', 'W'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

// Little-endian fixed-width writers/readers (the library targets
// little-endian hosts; asserted at compile time below).
static_assert(std::endian::native == std::endian::little,
              "world files are little-endian");

template <typename T>
bool WriteValue(std::FILE* file, T value) {
  return std::fwrite(&value, sizeof(T), 1, file) == 1;
}

template <typename T>
bool ReadValue(std::FILE* file, T* value) {
  return std::fread(value, sizeof(T), 1, file) == 1;
}

}  // namespace

util::Status SaveWorld(const std::string& path,
                       const net::SimulatedNetwork& network) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return util::Status::Unavailable("cannot open " + path + " for writing");
  }
  const graph::Graph& graph = network.graph();
  if (std::fwrite(kMagic, sizeof(kMagic), 1, file.get()) != 1 ||
      !WriteValue(file.get(), kVersion) ||
      !WriteValue(file.get(), static_cast<uint64_t>(graph.num_nodes())) ||
      !WriteValue(file.get(), static_cast<uint64_t>(graph.num_edges()))) {
    return util::Status::Internal("short write on header");
  }
  for (graph::NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (graph::NodeId v : graph.neighbors(u)) {
      if (u < v) {
        if (!WriteValue(file.get(), u) || !WriteValue(file.get(), v)) {
          return util::Status::Internal("short write on edges");
        }
      }
    }
  }
  for (graph::NodeId p = 0; p < network.num_peers(); ++p) {
    const net::Peer& peer = network.peer(p);
    auto alive = static_cast<uint8_t>(peer.alive() ? 1 : 0);
    auto count = static_cast<uint64_t>(peer.database().size());
    if (!WriteValue(file.get(), alive) || !WriteValue(file.get(), count)) {
      return util::Status::Internal("short write on peer header");
    }
    for (const data::Tuple& t : peer.database().tuples()) {
      if (!WriteValue(file.get(), t.value) || !WriteValue(file.get(), t.b)) {
        return util::Status::Internal("short write on tuples");
      }
    }
  }
  if (std::fflush(file.get()) != 0) {
    return util::Status::Internal("flush failed for " + path);
  }
  return util::Status::Ok();
}

util::Result<net::SimulatedNetwork> LoadWorld(
    const std::string& path, const net::NetworkParams& params,
    uint64_t seed) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::Status::NotFound("cannot open " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (std::fread(magic, sizeof(magic), 1, file.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(path + " is not a p2paqp world");
  }
  if (!ReadValue(file.get(), &version) || version != kVersion) {
    return util::Status::InvalidArgument("unsupported world version");
  }
  if (!ReadValue(file.get(), &num_nodes) ||
      !ReadValue(file.get(), &num_edges)) {
    return util::Status::InvalidArgument("truncated world header");
  }
  if (num_nodes == 0 || num_nodes > (1ULL << 32)) {
    return util::Status::InvalidArgument("implausible node count");
  }
  if (num_edges > num_nodes * (num_nodes - 1) / 2) {
    return util::Status::InvalidArgument("implausible edge count");
  }

  graph::GraphBuilder builder(static_cast<size_t>(num_nodes),
                              static_cast<size_t>(num_edges));
  for (uint64_t e = 0; e < num_edges; ++e) {
    graph::NodeId a = 0;
    graph::NodeId b = 0;
    if (!ReadValue(file.get(), &a) || !ReadValue(file.get(), &b)) {
      return util::Status::InvalidArgument("truncated edge list");
    }
    if (!builder.AddEdge(a, b)) {
      return util::Status::InvalidArgument("invalid or duplicate edge");
    }
  }

  std::vector<data::LocalDatabase> databases(
      static_cast<size_t>(num_nodes));
  std::vector<bool> alive(static_cast<size_t>(num_nodes), true);
  for (uint64_t p = 0; p < num_nodes; ++p) {
    uint8_t alive_flag = 1;
    uint64_t count = 0;
    if (!ReadValue(file.get(), &alive_flag) ||
        !ReadValue(file.get(), &count)) {
      return util::Status::InvalidArgument("truncated peer header");
    }
    alive[static_cast<size_t>(p)] = alive_flag != 0;
    data::Table table;
    table.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
      data::Tuple t;
      if (!ReadValue(file.get(), &t.value) || !ReadValue(file.get(), &t.b)) {
        return util::Status::InvalidArgument("truncated tuple data");
      }
      table.push_back(t);
    }
    databases[static_cast<size_t>(p)] = data::LocalDatabase(std::move(table));
  }

  auto network = net::SimulatedNetwork::Make(builder.Build(),
                                             std::move(databases), params,
                                             seed);
  if (!network.ok()) return network.status();
  for (graph::NodeId p = 0; p < network->num_peers(); ++p) {
    if (!alive[p]) network->SetAlive(p, false);
  }
  return network;
}

}  // namespace p2paqp::io

// Serialization of simulated worlds (overlay + per-peer data + liveness).
//
// Building a paper-scale world (22k-node calibrated crawl + 2.2M tuples)
// takes seconds and a seed; sharing *exactly* the same world across machines
//, experiments and bug reports is what this file format is for. The format
// is a little-endian binary stream:
//
//   magic "P2PW" | u32 version | u64 num_nodes | u64 num_edges
//   num_edges * (u32 a, u32 b)            edges, a < b
//   num_nodes * (u8 alive, u64 num_tuples, num_tuples * (i32 a, i32 b))
//
// Peer addresses/capabilities are regenerated from the load-time seed (they
// are simulation flavor, not experimental state).
#ifndef P2PAQP_IO_WORLD_IO_H_
#define P2PAQP_IO_WORLD_IO_H_

#include <string>

#include "net/network.h"
#include "util/status.h"

namespace p2paqp::io {

// Writes the network's overlay, liveness and local databases to `path`.
util::Status SaveWorld(const std::string& path,
                       const net::SimulatedNetwork& network);

// Reconstructs a network from `path`. `params`/`seed` configure the
// regenerated latency model and peer identities.
util::Result<net::SimulatedNetwork> LoadWorld(const std::string& path,
                                              const net::NetworkParams& params,
                                              uint64_t seed);

}  // namespace p2paqp::io

#endif  // P2PAQP_IO_WORLD_IO_H_

// Persisted compressed-CSR graphs: build once, mmap forever.
//
// A 10M-peer overlay takes minutes of generator + external-merge work to
// construct but its final delta/varint CSR is ~150 MB of flat bytes. This
// file format stores exactly those bytes, so benches and tests can map a
// built world read-only in microseconds instead of re-generating it — and N
// processes mapping the same file share one page-cache copy.
//
// Little-endian binary layout (asserted at compile time in the .cc):
//
//   magic "P2PG" | u32 version | u64 num_nodes | u64 num_edges
//   u32 min_degree | u32 max_degree | u64 encoded_bytes
//   (num_nodes + 1) * u32            byte offsets into the encoded stream
//   encoded_bytes * u8               delta/varint adjacency stream
//
// The header is 40 bytes, so the offset table lands 4-byte aligned within
// the (page-aligned) mapping. OpenMappedGraph validates sizes and the
// offset-table seal before handing the region to graph::Graph; the Graph
// (and every copy of it) keeps the mapping alive via shared ownership.
#ifndef P2PAQP_IO_GRAPH_IO_H_
#define P2PAQP_IO_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace p2paqp::io {

// Writes `graph`'s compressed CSR to `path` (overwriting).
util::Status SaveGraph(const std::string& path, const graph::Graph& graph);

// Maps `path` read-only and returns a Graph whose adjacency reads straight
// from the mapping (no copy). The returned Graph and all copies of it share
// the mapping; it is unmapped when the last copy dies.
util::Result<graph::Graph> OpenMappedGraph(const std::string& path);

// Touches one byte per 4 KiB page of the graph's offset table and encoded
// stream from static-partitioned lanes, so a mapped graph's page faults are
// taken by the lane (and on NUMA hosts, the node) that will keep reading
// that range — instead of serially on first traversal. Works on owned
// graphs too (pure cache warm). Returns a byte-sum checksum so the touches
// cannot be optimized away; the value is deterministic for a given graph.
uint64_t PrefaultGraph(const graph::Graph& graph);

}  // namespace p2paqp::io

#endif  // P2PAQP_IO_GRAPH_IO_H_

#include "io/graph_io.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>

#include "util/parallel.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace p2paqp::io {

namespace {

constexpr char kMagic[4] = {'P', '2', 'P', 'G'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 40;

static_assert(std::endian::native == std::endian::little,
              "graph files are little-endian");

struct FileCloser {
  void operator()(std::FILE* file) const {
    if (file != nullptr) std::fclose(file);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteValue(std::FILE* file, T value) {
  return std::fwrite(&value, sizeof(T), 1, file) == 1;
}

// Owns one read-only mapping; Graph copies share it via shared_ptr.
class MappedFile {
 public:
  MappedFile(void* data, size_t size) : data_(data), size_(size) {}
  ~MappedFile() { ::munmap(data_, size_); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }

 private:
  void* data_;
  size_t size_;
};

}  // namespace

util::Status SaveGraph(const std::string& path, const graph::Graph& graph) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return util::Status::Unavailable("cannot open " + path + " for writing");
  }
  const size_t n = graph.num_nodes();
  const uint64_t encoded_bytes = n > 0 ? graph.offsets()[n] : 0;
  if (std::fwrite(kMagic, sizeof(kMagic), 1, file.get()) != 1 ||
      !WriteValue(file.get(), kVersion) ||
      !WriteValue(file.get(), static_cast<uint64_t>(n)) ||
      !WriteValue(file.get(), static_cast<uint64_t>(graph.num_edges())) ||
      !WriteValue(file.get(), graph.min_degree()) ||
      !WriteValue(file.get(), graph.max_degree()) ||
      !WriteValue(file.get(), encoded_bytes)) {
    return util::Status::Internal("short write on graph header");
  }
  if (n > 0) {
    if (std::fwrite(graph.offsets(), sizeof(uint32_t), n + 1, file.get()) !=
        n + 1) {
      return util::Status::Internal("short write on offset table");
    }
    if (encoded_bytes > 0 &&
        std::fwrite(graph.encoded_bytes(), 1, encoded_bytes, file.get()) !=
            encoded_bytes) {
      return util::Status::Internal("short write on adjacency stream");
    }
  }
  if (std::fflush(file.get()) != 0) {
    return util::Status::Internal("flush failed for " + path);
  }
  return util::Status::Ok();
}

util::Result<graph::Graph> OpenMappedGraph(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::NotFound("cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return util::Status::Unavailable("cannot stat " + path);
  }
  const auto file_size = static_cast<size_t>(st.st_size);
  if (file_size < kHeaderBytes) {
    ::close(fd);
    return util::Status::InvalidArgument(path + " is not a p2paqp graph");
  }
  void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping holds its own reference.
  if (base == MAP_FAILED) {
    return util::Status::Unavailable("mmap failed for " + path);
  }
  auto mapping = std::make_shared<MappedFile>(base, file_size);

  const uint8_t* p = mapping->data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return util::Status::InvalidArgument(path + " is not a p2paqp graph");
  }
  uint32_t version;
  uint64_t num_nodes, num_edges, encoded_bytes;
  uint32_t min_degree, max_degree;
  std::memcpy(&version, p + 4, sizeof(version));
  std::memcpy(&num_nodes, p + 8, sizeof(num_nodes));
  std::memcpy(&num_edges, p + 16, sizeof(num_edges));
  std::memcpy(&min_degree, p + 24, sizeof(min_degree));
  std::memcpy(&max_degree, p + 28, sizeof(max_degree));
  std::memcpy(&encoded_bytes, p + 32, sizeof(encoded_bytes));
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported graph version");
  }
  if (num_nodes == 0 || num_nodes > (uint64_t{1} << 32)) {
    return util::Status::InvalidArgument("implausible node count");
  }
  const size_t offsets_bytes = (num_nodes + 1) * sizeof(uint32_t);
  if (file_size != kHeaderBytes + offsets_bytes + encoded_bytes) {
    return util::Status::InvalidArgument("truncated graph file");
  }
  const auto* offsets =
      reinterpret_cast<const uint32_t*>(p + kHeaderBytes);
  if (offsets[0] != 0 || offsets[num_nodes] != encoded_bytes) {
    return util::Status::InvalidArgument("corrupt offset table seal");
  }
  const uint8_t* encoded = p + kHeaderBytes + offsets_bytes;
  return graph::Graph(static_cast<size_t>(num_nodes),
                      static_cast<size_t>(num_edges), min_degree, max_degree,
                      encoded, offsets, std::move(mapping));
}

uint64_t PrefaultGraph(const graph::Graph& graph) {
  constexpr size_t kPage = 4096;
  const size_t n = graph.num_nodes();
  if (n == 0) return 0;
  const auto* offsets_bytes =
      reinterpret_cast<const uint8_t*>(graph.offsets());
  const size_t offsets_size = (n + 1) * sizeof(uint32_t);
  const uint8_t* encoded = graph.encoded_bytes();
  const size_t encoded_size = graph.offsets()[n];
  // One byte per page, summed per lane; the serial reduction keeps the
  // checksum independent of the thread count (the parallel contract).
  auto touch = [](const uint8_t* base, size_t size) {
    const size_t pages = (size + kPage - 1) / kPage;
    auto sums = util::ParallelMap(
        pages,
        [base, size](size_t p) {
          return static_cast<uint64_t>(base[std::min(p * kPage, size - 1)]);
        },
        {.threads = 0, .partition = util::Partition::kStatic});
    return std::accumulate(sums.begin(), sums.end(), uint64_t{0});
  };
  uint64_t sum = touch(offsets_bytes, offsets_size);
  if (encoded_size > 0) sum += touch(encoded, encoded_size);
  return sum;
}

}  // namespace p2paqp::io

#include "sampling/convergence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/spectral.h"
#include "util/statistics.h"

namespace p2paqp::sampling {

WalkTuning TuneWalk(const graph::Graph& graph, double epsilon,
                    size_t min_jump, util::Rng& rng) {
  WalkTuning tuning;
  tuning.lambda2 = graph::EstimateSecondEigenvalue(graph, 60, rng);
  tuning.burn_in = graph::MixingTimeBound(graph.num_nodes(), tuning.lambda2,
                                          epsilon);
  double gap = std::max(1.0 - tuning.lambda2, 1e-6);
  // Correlation between selections decays like lambda2^jump; jump = 3/gap
  // pushes it to ~e^-3, small enough for the cross-validation halves to be
  // treated as independent.
  auto jump = static_cast<size_t>(std::ceil(3.0 / gap));
  tuning.jump = std::clamp(jump, std::max<size_t>(1, min_jump),
                           std::max<size_t>(1, tuning.burn_in));
  return tuning;
}

double MeasureDegreeAutocorrelation(const graph::Graph& graph, size_t jump,
                                    size_t num_selections, util::Rng& rng) {
  if (graph.num_nodes() == 0 || num_selections < 3 || jump == 0) return 0.0;
  // Plain in-graph walk (no network layer) for preprocessing probes.
  auto current = static_cast<graph::NodeId>(rng.UniformIndex(
      graph.num_nodes()));
  std::vector<double> series;
  series.reserve(num_selections);
  while (series.size() < num_selections) {
    for (size_t h = 0; h < jump; ++h) {
      auto nbrs = graph.neighbors(current);
      if (nbrs.empty()) return 0.0;
      current = nbrs[rng.UniformIndex(nbrs.size())];
    }
    series.push_back(static_cast<double>(graph.degree(current)));
  }
  util::RunningStat stat;
  for (double x : series) stat.Add(x);
  double var = stat.variance();
  if (var <= 0.0) return 0.0;
  double mean = stat.mean();
  double cov = 0.0;
  for (size_t i = 0; i + 1 < series.size(); ++i) {
    cov += (series[i] - mean) * (series[i + 1] - mean);
  }
  cov /= static_cast<double>(series.size() - 2);
  return cov / var;
}

}  // namespace p2paqp::sampling

// Peer-sampling strategies behind one interface: the paper's random walk and
// the two naive baselines it is compared against in Fig. 7, plus an oracle
// uniform sampler used only for validation.
#ifndef P2PAQP_SAMPLING_SAMPLERS_H_
#define P2PAQP_SAMPLING_SAMPLERS_H_

#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/protocol.h"
#include "sampling/random_walk.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::sampling {

// Result of a fault-tolerant sampling pass: possibly fewer visits than
// requested plus the recovery work spent (mirrors sampling::WalkOutcome).
struct SampleOutcome {
  std::vector<PeerVisit> visits;
  size_t restarts = 0;
  // Walk-Not-Wait forks / breaker skips the walk performed (see WalkParams).
  size_t straggler_skips = 0;
  bool truncated = false;
  util::Status truncation;
};

// Strategy interface: produce `count` peer selections starting at `sink`.
class PeerSampler {
 public:
  virtual ~PeerSampler() = default;

  virtual util::Result<std::vector<PeerVisit>> SamplePeers(
      graph::NodeId sink, size_t count, util::Rng& rng) = 0;

  // Fault-tolerant sampling: returns the visits that could be gathered
  // under faults/churn instead of failing outright, flagging shortfalls via
  // `truncated`. Hard-fails only on non-retryable conditions (dead sink,
  // bad arguments). The default implementation wraps SamplePeers, mapping
  // retryable transport failures to an empty truncated outcome; walk-based
  // samplers override it with genuinely resilient collection.
  virtual util::Result<SampleOutcome> SamplePeersResilient(graph::NodeId sink,
                                                           size_t count,
                                                           util::Rng& rng);

  // Stationary weight the estimator should divide by for peers returned by
  // this sampler (see RandomWalk::StationaryWeight).
  virtual double StationaryWeight(graph::NodeId node) const = 0;

  virtual std::string name() const = 0;
};

// The paper's sampler: jump-thinned Markov random walk.
class RandomWalkSampler : public PeerSampler {
 public:
  RandomWalkSampler(net::SimulatedNetwork* network, const WalkParams& params)
      : walk_(network, params) {}

  util::Result<std::vector<PeerVisit>> SamplePeers(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  util::Result<SampleOutcome> SamplePeersResilient(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  double StationaryWeight(graph::NodeId node) const override {
    return walk_.StationaryWeight(node);
  }
  std::string name() const override { return "random_walk"; }

 private:
  RandomWalk walk_;
};

// Baseline: peers nearest to the sink, gathered by Gnutella-style flooding.
// Cheap but badly biased when data is clustered around the sink.
class BfsSampler : public PeerSampler {
 public:
  explicit BfsSampler(net::SimulatedNetwork* network)
      : network_(network), protocol_(network) {}

  util::Result<std::vector<PeerVisit>> SamplePeers(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  // BFS gathers a contiguous neighborhood; there is no importance weight
  // that can fix its bias, so the estimator treats peers uniformly.
  double StationaryWeight(graph::NodeId) const override { return 1.0; }
  std::string name() const override { return "bfs"; }

 private:
  net::SimulatedNetwork* network_;
  net::GnutellaProtocol protocol_;
};

// Baseline: random walk with no jump ("j = 0" in the paper): consecutive
// walk positions are selected, so selections are heavily correlated.
class DfsSampler : public PeerSampler {
 public:
  explicit DfsSampler(net::SimulatedNetwork* network);

  util::Result<std::vector<PeerVisit>> SamplePeers(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  util::Result<SampleOutcome> SamplePeersResilient(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  double StationaryWeight(graph::NodeId node) const override {
    return walk_.StationaryWeight(node);
  }
  std::string name() const override { return "dfs"; }

 private:
  RandomWalk walk_;
};

// Latency optimization: W independent walkers dispatched from the sink in
// parallel, each collecting count/W selections. Messages and hops are
// unchanged, but the end-to-end latency — the paper's primary cost metric
// (Sec. 3.2) — is the *slowest walker's* path instead of the sum of all
// hops. Stationary weighting is identical to the single walker's.
class ParallelWalkSampler : public PeerSampler {
 public:
  // `num_walkers` >= 1; each walker runs the given WalkParams.
  ParallelWalkSampler(net::SimulatedNetwork* network, const WalkParams& params,
                      size_t num_walkers);

  util::Result<std::vector<PeerVisit>> SamplePeers(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  util::Result<SampleOutcome> SamplePeersResilient(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  double StationaryWeight(graph::NodeId node) const override {
    return walk_.StationaryWeight(node);
  }
  std::string name() const override { return "parallel_walk"; }

 private:
  net::SimulatedNetwork* network_;
  RandomWalk walk_;
  size_t num_walkers_;
};

// Oracle: samples live peers uniformly using global knowledge no real peer
// has. Validation/testing only — quantifies the cost of *not* having it.
class UniformOracleSampler : public PeerSampler {
 public:
  explicit UniformOracleSampler(net::SimulatedNetwork* network)
      : network_(network) {}

  util::Result<std::vector<PeerVisit>> SamplePeers(graph::NodeId sink,
                                                   size_t count,
                                                   util::Rng& rng) override;
  double StationaryWeight(graph::NodeId) const override { return 1.0; }
  std::string name() const override { return "uniform_oracle"; }

 private:
  net::SimulatedNetwork* network_;
};

}  // namespace p2paqp::sampling

#endif  // P2PAQP_SAMPLING_SAMPLERS_H_

#include "sampling/samplers.h"

#include <algorithm>

namespace p2paqp::sampling {

namespace {

// Shared by the walk-based samplers: lift a WalkOutcome into a
// SampleOutcome.
util::Result<SampleOutcome> FromWalkOutcome(
    util::Result<WalkOutcome> outcome) {
  if (!outcome.ok()) return outcome.status();
  SampleOutcome out;
  out.visits = std::move(outcome->visits);
  out.restarts = outcome->stats.restarts;
  out.straggler_skips = outcome->stats.straggler_skips;
  out.truncated = outcome->truncated;
  out.truncation = outcome->truncation;
  return out;
}

}  // namespace

util::Result<SampleOutcome> PeerSampler::SamplePeersResilient(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  auto visits = SamplePeers(sink, count, rng);
  if (visits.ok()) {
    SampleOutcome out;
    out.visits = std::move(*visits);
    return out;
  }
  // Retryable transport failures degrade to an empty truncated outcome so
  // the caller's quorum logic decides; anything else stays a hard failure.
  util::StatusCode code = visits.status().code();
  if (code == util::StatusCode::kUnavailable ||
      code == util::StatusCode::kOutOfRange) {
    SampleOutcome out;
    out.truncated = true;
    out.truncation = visits.status();
    return out;
  }
  return visits.status();
}

util::Result<std::vector<PeerVisit>> RandomWalkSampler::SamplePeers(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  return walk_.Collect(sink, count, rng);
}

util::Result<SampleOutcome> RandomWalkSampler::SamplePeersResilient(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  return FromWalkOutcome(walk_.CollectResilient(sink, count, rng));
}

util::Result<std::vector<PeerVisit>> BfsSampler::SamplePeers(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  (void)rng;
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  std::vector<graph::NodeId> reached = protocol_.FloodCollect(sink, count);
  std::vector<PeerVisit> visits;
  visits.reserve(reached.size());
  for (graph::NodeId peer : reached) {
    visits.push_back(PeerVisit{peer, network_->AliveDegree(peer)});
  }
  if (visits.size() < count) {
    // Neighborhood exhausted: repeat from the start (with replacement) so
    // the caller still gets `count` observations, as a real BFS baseline
    // would re-query its neighborhood.
    if (visits.empty()) {
      return util::Status::Unavailable("sink has no reachable neighborhood");
    }
    size_t base = visits.size();
    while (visits.size() < count) {
      visits.push_back(visits[visits.size() % base]);
    }
  }
  return visits;
}

DfsSampler::DfsSampler(net::SimulatedNetwork* network)
    : walk_(network, WalkParams{.jump = 1,
                                .burn_in = 0,
                                .variant = WalkVariant::kSimple,
                                .max_hops = 0}) {}

util::Result<std::vector<PeerVisit>> DfsSampler::SamplePeers(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  return walk_.Collect(sink, count, rng);
}

util::Result<SampleOutcome> DfsSampler::SamplePeersResilient(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  return FromWalkOutcome(walk_.CollectResilient(sink, count, rng));
}

ParallelWalkSampler::ParallelWalkSampler(net::SimulatedNetwork* network,
                                         const WalkParams& params,
                                         size_t num_walkers)
    : network_(network), walk_(network, params), num_walkers_(num_walkers) {
  P2PAQP_CHECK_GE(num_walkers_, 1u);
}

util::Result<std::vector<PeerVisit>> ParallelWalkSampler::SamplePeers(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  std::vector<PeerVisit> visits;
  visits.reserve(count);
  // The walkers run concurrently in the simulated network; we execute them
  // sequentially and then collapse the latency ledger from the sum of all
  // walker paths to the slowest single path (messages/hops stay summed).
  double latency_sum = 0.0;
  double latency_max = 0.0;
  size_t remaining = count;
  for (size_t w = 0; w < num_walkers_ && remaining > 0; ++w) {
    size_t share = remaining / (num_walkers_ - w);
    if (share == 0) continue;
    remaining -= share;
    double before = network_->cost_snapshot().latency_ms;
    auto part = walk_.Collect(sink, share, rng);
    if (!part.ok()) return part.status();
    double elapsed = network_->cost_snapshot().latency_ms - before;
    latency_sum += elapsed;
    latency_max = std::max(latency_max, elapsed);
    visits.insert(visits.end(), part->begin(), part->end());
  }
  network_->cost().RecordLatency(latency_max - latency_sum);
  return visits;
}

util::Result<SampleOutcome> ParallelWalkSampler::SamplePeersResilient(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  SampleOutcome out;
  out.visits.reserve(count);
  double latency_sum = 0.0;
  double latency_max = 0.0;
  size_t remaining = count;
  for (size_t w = 0; w < num_walkers_ && remaining > 0; ++w) {
    size_t share = remaining / (num_walkers_ - w);
    if (share == 0) continue;
    remaining -= share;
    double before = network_->cost_snapshot().latency_ms;
    auto part = walk_.CollectResilient(sink, share, rng);
    if (!part.ok()) return part.status();
    double elapsed = network_->cost_snapshot().latency_ms - before;
    latency_sum += elapsed;
    latency_max = std::max(latency_max, elapsed);
    out.visits.insert(out.visits.end(), part->visits.begin(),
                      part->visits.end());
    out.restarts += part->stats.restarts;
    out.straggler_skips += part->stats.straggler_skips;
    if (part->truncated) {
      // Keep whatever the other walkers gather; report the first cause.
      if (!out.truncated) out.truncation = part->truncation;
      out.truncated = true;
    }
  }
  network_->cost().RecordLatency(latency_max - latency_sum);
  return out;
}

util::Result<std::vector<PeerVisit>> UniformOracleSampler::SamplePeers(
    graph::NodeId sink, size_t count, util::Rng& rng) {
  (void)sink;
  std::vector<graph::NodeId> alive;
  alive.reserve(network_->num_peers());
  for (graph::NodeId id = 0; id < network_->num_peers(); ++id) {
    if (network_->IsAlive(id)) alive.push_back(id);
  }
  if (alive.empty()) {
    return util::Status::Unavailable("no live peers");
  }
  std::vector<PeerVisit> visits;
  visits.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    graph::NodeId peer = alive[rng.UniformIndex(alive.size())];
    visits.push_back(PeerVisit{peer, network_->AliveDegree(peer)});
  }
  return visits;
}

}  // namespace p2paqp::sampling

#include "sampling/random_walk.h"

#include <algorithm>

namespace p2paqp::sampling {

const char* WalkVariantToString(WalkVariant variant) {
  switch (variant) {
    case WalkVariant::kSimple:
      return "simple";
    case WalkVariant::kLazy:
      return "lazy";
    case WalkVariant::kMetropolisHastings:
      return "metropolis_hastings";
  }
  return "unknown";
}

RandomWalk::RandomWalk(net::SimulatedNetwork* network,
                       const WalkParams& params)
    : network_(network), params_(params) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.jump, 1u) << "jump must be >= 1";
}

double RandomWalk::StationaryWeight(graph::NodeId node) const {
  switch (params_.variant) {
    case WalkVariant::kSimple:
    case WalkVariant::kLazy:
      return static_cast<double>(network_->AliveDegree(node));
    case WalkVariant::kMetropolisHastings:
      return 1.0;
  }
  return 0.0;
}

util::Result<graph::NodeId> RandomWalk::Step(graph::NodeId current,
                                             util::Rng& rng) {
  if (params_.variant == WalkVariant::kLazy && rng.Bernoulli(0.5)) {
    return current;  // Lazy self-loop: no traffic.
  }
  std::vector<graph::NodeId> neighbors = network_->AliveNeighbors(current);
  if (neighbors.empty()) {
    return util::Status::Unavailable("walker stranded: no live neighbors");
  }
  graph::NodeId next = neighbors[rng.UniformIndex(neighbors.size())];
  if (params_.variant == WalkVariant::kMetropolisHastings) {
    // Accept with min(1, deg(u)/deg(v)); rejection = stay (no traffic).
    double du = network_->AliveDegree(current);
    double dv = network_->AliveDegree(next);
    if (dv > du && !rng.Bernoulli(du / dv)) return current;
  }
  util::Status sent =
      network_->SendAlongEdge(net::MessageType::kWalker, current, next);
  if (!sent.ok()) return sent;
  return next;
}

util::Result<std::vector<PeerVisit>> RandomWalk::Collect(
    graph::NodeId sink, size_t num_selections, util::Rng& rng) {
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  size_t max_hops = params_.max_hops;
  if (max_hops == 0) {
    max_hops = 100 * (params_.burn_in + num_selections * params_.jump) + 1000;
  }

  std::vector<PeerVisit> visits;
  visits.reserve(num_selections);
  graph::NodeId current = sink;
  size_t hops = 0;
  size_t since_selection = 0;
  bool warm = params_.burn_in == 0;
  size_t burn_left = params_.burn_in;

  while (visits.size() < num_selections) {
    if (hops >= max_hops) {
      return util::Status::OutOfRange("walk exceeded hop budget");
    }
    auto next = Step(current, rng);
    if (!next.ok()) {
      if (next.status().code() == util::StatusCode::kUnavailable &&
          current != sink && network_->IsAlive(sink)) {
        // Stranded mid-walk (churn): the sink re-issues the walker.
        current = sink;
        ++hops;
        continue;
      }
      return next.status();
    }
    current = next.value();
    ++hops;
    if (!warm) {
      if (--burn_left == 0) warm = true;
      continue;
    }
    if (++since_selection >= params_.jump) {
      since_selection = 0;
      visits.push_back(PeerVisit{current, network_->AliveDegree(current)});
    }
  }
  return visits;
}

}  // namespace p2paqp::sampling

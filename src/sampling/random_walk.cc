#include "sampling/random_walk.h"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace p2paqp::sampling {

namespace {

size_t SaturatingAdd(size_t a, size_t b) {
  return a > SIZE_MAX - b ? SIZE_MAX : a + b;
}

size_t SaturatingMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  return a > SIZE_MAX / b ? SIZE_MAX : a * b;
}

}  // namespace

size_t AutoMaxHops(const WalkParams& params, size_t num_selections) {
  size_t nominal = SaturatingAdd(
      params.burn_in, SaturatingMul(num_selections, params.jump));
  if (params.variant != WalkVariant::kSimple) {
    // Lazy self-loops and Metropolis-Hastings rejections burn hops without
    // moving (~half the steps in expectation): double the room so those
    // variants are not starved relative to the simple walk.
    nominal = SaturatingMul(nominal, 2);
  }
  return SaturatingAdd(SaturatingMul(nominal, 100), 1000);
}

size_t AutoMaxRestarts(size_t num_selections) {
  return SaturatingAdd(SaturatingMul(num_selections, 2), 16);
}

const char* WalkVariantToString(WalkVariant variant) {
  switch (variant) {
    case WalkVariant::kSimple:
      return "simple";
    case WalkVariant::kLazy:
      return "lazy";
    case WalkVariant::kMetropolisHastings:
      return "metropolis_hastings";
  }
  return "unknown";
}

RandomWalk::RandomWalk(net::SimulatedNetwork* network,
                       const WalkParams& params)
    : network_(network), params_(params) {
  P2PAQP_CHECK(network_ != nullptr);
  P2PAQP_CHECK_GE(params_.jump, 1u) << "jump must be >= 1";
  P2PAQP_CHECK_GE(params_.batch, 1u) << "batch must be >= 1";
}

double RandomWalk::StationaryWeight(graph::NodeId node) const {
  switch (params_.variant) {
    case WalkVariant::kSimple:
    case WalkVariant::kLazy:
      return static_cast<double>(network_->AliveDegree(node));
    case WalkVariant::kMetropolisHastings:
      return 1.0;
  }
  return 0.0;
}

util::Result<graph::NodeId> RandomWalk::Step(graph::NodeId current,
                                             util::Rng& rng, bool allow_skip,
                                             bool* skipped) {
  if (params_.variant == WalkVariant::kLazy && rng.Bernoulli(0.5)) {
    return current;  // Lazy self-loop: no traffic.
  }
  std::vector<graph::NodeId>& neighbors = neighbor_scratch_;
  network_->AliveNeighborsInto(current, &neighbors);
  // An adversarial token holder may forward only to colluding neighbors
  // (walk hijack); the uniform draw below then picks among colluders. One
  // draw is consumed either way, so adversary-free runs are untouched.
  if (net::AdversaryInjector* adversary = network_->adversary()) {
    adversary->RestrictForwarding(current, &neighbors);
  }
  if (neighbors.empty()) {
    return util::Status::Unavailable("walker stranded: no live neighbors");
  }
  size_t choice = rng.UniformIndex(neighbors.size());
  graph::NodeId next = neighbors[choice];
  if (allow_skip && params_.straggler != nullptr &&
      params_.variant == WalkVariant::kSimple && neighbors.size() > 1) {
    const net::StragglerPolicy& sp = *params_.straggler;
    const bool tripped = sp.health_tracking && params_.health != nullptr &&
                         params_.health->Tripped(next);
    double wait_ms = 0.0;
    bool tardy = false;
    if (!tripped && sp.walk_not_wait) {
      double budget = sp.hop_budget_factor * network_->NominalHopLatencyMs();
      if (budget < sp.hop_budget_floor_ms) budget = sp.hop_budget_floor_ms;
      if (network_->DrawPeerTailDelay(next, rng) > budget) {
        // The holder only learns this transit is tardy by waiting the
        // budget out; breaker skips (known-bad peers) pay nothing.
        tardy = true;
        wait_ms = budget;
      }
    }
    if (tripped || tardy) {
      if (wait_ms > 0.0) network_->cost().RecordLatency(wait_ms);
      if (net::HistoryRecorder* history = network_->history()) {
        history->Record(net::HistoryEventKind::kStragglerSkip,
                        net::MessageType::kWalker, current, next);
      }
      if (skipped != nullptr) *skipped = true;
      // Fork past the straggler as a lazy self-loop: the holder keeps the
      // token and redraws on its next step. Self-loops preserve detailed
      // balance for the degree-stationary distribution, so forking never
      // conditions the trajectory on having avoided slow peers.
      return current;
    }
  }
  if (params_.variant == WalkVariant::kMetropolisHastings) {
    // Accept with min(1, deg(u)/deg(v)); rejection = stay (no traffic).
    double du = network_->AliveDegree(current);
    double dv = network_->AliveDegree(next);
    if (dv > du && !rng.Bernoulli(du / dv)) return current;
  }
  util::Status sent = network_->SendAlongEdge(net::MessageType::kWalker,
                                              current, next, params_.batch);
  if (!sent.ok()) return sent;
  return next;
}

util::Result<WalkOutcome> RandomWalk::CollectResilient(graph::NodeId sink,
                                                       size_t num_selections,
                                                       util::Rng& rng) {
  if (sink >= network_->num_peers() || !network_->IsAlive(sink)) {
    return util::Status::FailedPrecondition("sink peer is not live");
  }
  const size_t max_hops = params_.max_hops != 0
                              ? params_.max_hops
                              : AutoMaxHops(params_, num_selections);
  const size_t max_restarts = params_.max_restarts != 0
                                  ? params_.max_restarts
                                  : AutoMaxRestarts(num_selections);

  WalkOutcome outcome;
  outcome.visits.reserve(num_selections);
  graph::NodeId current = sink;
  size_t since_selection = 0;
  bool warm = params_.burn_in == 0;
  size_t burn_left = params_.burn_in;

  auto truncate = [&outcome](util::Status why) {
    outcome.truncated = true;
    outcome.truncation = std::move(why);
  };

  while (outcome.visits.size() < num_selections) {
    if (outcome.stats.hops >= max_hops) {
      truncate(util::Status::OutOfRange("walk exceeded hop budget"));
      break;
    }
    // Selection-due hops never fork: a tardy peer's probability of being
    // *selected* must stay exactly proportional to its degree.
    const bool selection_due =
        warm && since_selection + 1 >= params_.jump;
    bool skipped = false;
    auto next = Step(current, rng, /*allow_skip=*/!selection_due, &skipped);
    if (!next.ok()) {
      if (!network_->IsAlive(sink)) {
        truncate(util::Status::Unavailable("sink departed mid-walk"));
        break;
      }
      if (network_->IsAlive(current) && network_->AliveDegree(current) > 0) {
        // The holder still has the token and a live route: the hop was lost
        // in transit (dropped message or the chosen neighbor crashed on
        // receipt). Link-level retransmit: try again from the same peer.
        ++outcome.stats.hops;
        continue;
      }
      // The token itself is gone: its holder crashed or has no live
      // neighbor left. Only the sink can recover it — after a timeout it
      // re-issues the walker with a *fresh burn-in*, because a token
      // restarted at the sink is no longer stationary-distributed.
      if (network_->AliveDegree(sink) == 0) {
        truncate(util::Status::Unavailable(
            "walker stranded: sink has no live neighbors"));
        break;
      }
      if (outcome.stats.restarts >= max_restarts) {
        truncate(
            util::Status::Unavailable("walker restart budget exhausted"));
        break;
      }
      ++outcome.stats.restarts;
      current = sink;
      since_selection = 0;
      warm = params_.burn_in == 0;
      burn_left = params_.burn_in;
      continue;
    }
    current = next.value();
    ++outcome.stats.hops;
    if (skipped) {
      // Fork past a straggler: a lazy self-loop, so no counter resets — the
      // chain stays stationary-distributed (see Step).
      ++outcome.stats.straggler_skips;
      continue;
    }
    if (!warm) {
      if (--burn_left == 0) warm = true;
      continue;
    }
    if (++since_selection >= params_.jump) {
      since_selection = 0;
      outcome.visits.push_back(
          PeerVisit{current, network_->AliveDegree(current)});
    }
  }
  return outcome;
}

util::Result<std::vector<PeerVisit>> RandomWalk::Collect(
    graph::NodeId sink, size_t num_selections, util::Rng& rng) {
  auto outcome = CollectResilient(sink, num_selections, rng);
  if (!outcome.ok()) return outcome.status();
  if (outcome->truncated) return outcome->truncation;
  return std::move(outcome->visits);
}

}  // namespace p2paqp::sampling

// Markov-chain random walk over the live overlay (Sec. 3.3 / Sec. 4 Phase I).
//
// The walker message moves one uniformly chosen live neighbor per hop;
// every `jump`-th visited peer is *selected* into the sample and the peers in
// between are passed over, which decorrelates consecutive selections. An
// optional burn-in prefix lets the walk approach the stationary distribution
// before the first selection.
#ifndef P2PAQP_SAMPLING_RANDOM_WALK_H_
#define P2PAQP_SAMPLING_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::sampling {

enum class WalkVariant {
  // Uniform over live neighbors; stationary prob(p) = deg(p)/2|E|.
  kSimple = 0,
  // Stays put with probability 1/2 (aperiodicity guard); same stationary
  // distribution, lazy steps cost no network traffic.
  kLazy,
  // Metropolis-Hastings degree correction; *uniform* stationary
  // distribution. Used by the ablation benchmarks.
  kMetropolisHastings,
};

const char* WalkVariantToString(WalkVariant variant);

struct WalkParams {
  // Hops between consecutive selections (the paper's jump size j >= 1;
  // j = 1 selects every peer on the path, the paper's "DFS"/j=0 baseline).
  size_t jump = 10;
  // Hops taken before the first selection so the walk forgets the sink.
  size_t burn_in = 0;
  WalkVariant variant = WalkVariant::kSimple;
  // Abort guard: the walk fails after this many hops without completing
  // (0 = automatic: 100 * (burn_in + selections * jump) + 1000).
  size_t max_hops = 0;
};

// One selected peer. `degree` is the live degree observed at selection time,
// from which the sink reconstructs prob(p) in the stationary distribution.
struct PeerVisit {
  graph::NodeId peer = graph::kInvalidNode;
  uint32_t degree = 0;
};

class RandomWalk {
 public:
  // `network` must outlive the walk.
  RandomWalk(net::SimulatedNetwork* network, const WalkParams& params);

  // Runs the walker from `sink` until `num_selections` peers are selected.
  // Selection is with replacement (the same peer may appear repeatedly),
  // matching the paper's statistical model. Walker-hop messages are charged
  // to the network's cost tracker. Fails with FailedPrecondition if the sink
  // is dead, Unavailable if the walk strands (no live neighbors anywhere),
  // or OutOfRange if max_hops is exhausted.
  util::Result<std::vector<PeerVisit>> Collect(graph::NodeId sink,
                                               size_t num_selections,
                                               util::Rng& rng);

  // Stationary weight of `node` under this walk's variant; selections are
  // distributed proportionally to this (degree for simple/lazy, constant
  // for Metropolis-Hastings). Estimators divide by it.
  double StationaryWeight(graph::NodeId node) const;

  const WalkParams& params() const { return params_; }

 private:
  // One walker transition from `current`; returns the next peer (may equal
  // `current` for lazy/rejected steps). Charges message costs for real hops.
  util::Result<graph::NodeId> Step(graph::NodeId current, util::Rng& rng);

  net::SimulatedNetwork* network_;
  WalkParams params_;
};

}  // namespace p2paqp::sampling

#endif  // P2PAQP_SAMPLING_RANDOM_WALK_H_

// Markov-chain random walk over the live overlay (Sec. 3.3 / Sec. 4 Phase I).
//
// The walker message moves one uniformly chosen live neighbor per hop;
// every `jump`-th visited peer is *selected* into the sample and the peers in
// between are passed over, which decorrelates consecutive selections. An
// optional burn-in prefix lets the walk approach the stationary distribution
// before the first selection.
#ifndef P2PAQP_SAMPLING_RANDOM_WALK_H_
#define P2PAQP_SAMPLING_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "net/health.h"
#include "net/network.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::sampling {

enum class WalkVariant {
  // Uniform over live neighbors; stationary prob(p) = deg(p)/2|E|.
  kSimple = 0,
  // Stays put with probability 1/2 (aperiodicity guard); same stationary
  // distribution, lazy steps cost no network traffic.
  kLazy,
  // Metropolis-Hastings degree correction; *uniform* stationary
  // distribution. Used by the ablation benchmarks.
  kMetropolisHastings,
};

const char* WalkVariantToString(WalkVariant variant);

struct WalkParams {
  // Hops between consecutive selections (the paper's jump size j >= 1;
  // j = 1 selects every peer on the path, the paper's "DFS"/j=0 baseline).
  size_t jump = 10;
  // Hops taken before the first selection so the walk forgets the sink.
  size_t burn_in = 0;
  WalkVariant variant = WalkVariant::kSimple;
  // Abort guard: the walk fails after this many hops without completing
  // (0 = automatic, see AutoMaxHops). Lazy self-loops and in-place
  // retransmissions count as hops; sink-issued restarts do not.
  size_t max_hops = 0;
  // How many times the sink may re-issue a lost walker token (the holder
  // crashed or stranded with no live route) before giving up
  // (0 = automatic, see AutoMaxRestarts).
  size_t max_restarts = 0;
  // Number of queries the walker token multiplexes (core::QueryScheduler).
  // One hop still moves one token; > 1 widens the kWalker payload to carry
  // that many query bodies behind a single shared header. 1 = the paper's
  // per-query walker, bit-identical to the pre-batching transport.
  uint32_t batch = 1;
  // Straggler-resilience wiring (non-owning; both may be null = off; active
  // for the kSimple variant only). With walk_not_wait, a non-selection-due
  // hop whose chosen neighbor draws a tardy transit (tail delay above the
  // hop budget) is abandoned after waiting out the budget; with
  // health_tracking, hops toward breaker-tripped peers are abandoned
  // immediately. A fork is a *lazy self-loop* — the holder keeps the token
  // and redraws next step — which preserves detailed balance for the
  // degree-stationary distribution, and selection-due hops never fork (the
  // tardy peer stays exactly as selectable as its degree says), so
  // Horvitz-Thompson weights stay unbiased.
  const net::StragglerPolicy* straggler = nullptr;
  net::PeerHealthBoard* health = nullptr;
};

// Overflow-safe automatic hop budget: ~100x the nominal walk length, doubled
// for the lazy and Metropolis-Hastings variants whose self-loops burn hops
// without progress. Saturates at SIZE_MAX instead of wrapping for large
// num_selections * jump.
size_t AutoMaxHops(const WalkParams& params, size_t num_selections);

// Automatic walker-restart budget: 2 * num_selections + 16 (saturating).
size_t AutoMaxRestarts(size_t num_selections);

// One selected peer. `degree` is the live degree observed at selection time,
// from which the sink reconstructs prob(p) in the stationary distribution.
struct PeerVisit {
  graph::NodeId peer = graph::kInvalidNode;
  uint32_t degree = 0;
};

// Recovery work spent by one collection.
struct WalkStats {
  // Chain transitions taken, including lazy/rejected self-loops and failed
  // hop attempts that were retried in place.
  size_t hops = 0;
  // Times the sink re-issued a lost walker token.
  size_t restarts = 0;
  // Walk-Not-Wait forks and breaker skips (each a lazy self-loop hop).
  size_t straggler_skips = 0;
};

// Result of a fault-tolerant collection: possibly fewer selections than
// requested, plus the recovery work that was spent getting them.
struct WalkOutcome {
  std::vector<PeerVisit> visits;
  WalkStats stats;
  // True when a budget ran out (or the route died) before all selections
  // were gathered; `truncation` then says why.
  bool truncated = false;
  util::Status truncation;
};

class RandomWalk {
 public:
  // `network` must outlive the walk.
  RandomWalk(net::SimulatedNetwork* network, const WalkParams& params);

  // Runs the walker from `sink` until `num_selections` peers are selected.
  // Selection is with replacement (the same peer may appear repeatedly),
  // matching the paper's statistical model. Walker-hop messages are charged
  // to the network's cost tracker. Fails with FailedPrecondition if the sink
  // is dead, Unavailable if the walk strands (no live neighbors anywhere),
  // or OutOfRange if max_hops is exhausted.
  util::Result<std::vector<PeerVisit>> Collect(graph::NodeId sink,
                                               size_t num_selections,
                                               util::Rng& rng);

  // Fault-tolerant collection. A hop lost in transit (lossy transport) is
  // retried in place by its sender; a lost walker *token* (the holder
  // crashed, or stranded with no live neighbors) is re-issued by the sink
  // with a fresh burn-in, so recovered strands still select from the
  // stationary distribution. Fails hard only when the sink itself is dead
  // or isolated before anything was collected; budget exhaustion returns
  // what was collected with `truncated` set.
  util::Result<WalkOutcome> CollectResilient(graph::NodeId sink,
                                             size_t num_selections,
                                             util::Rng& rng);

  // Stationary weight of `node` under this walk's variant; selections are
  // distributed proportionally to this (degree for simple/lazy, constant
  // for Metropolis-Hastings). Estimators divide by it.
  double StationaryWeight(graph::NodeId node) const;

  const WalkParams& params() const { return params_; }

 private:
  // One walker transition from `current`; returns the next peer (may equal
  // `current` for lazy/rejected/forked steps). Charges message costs for
  // real hops. When `allow_skip`, a tardy/tripped choice is abandoned as a
  // lazy self-loop (`*skipped` set; no traffic, counters stay put).
  util::Result<graph::NodeId> Step(graph::NodeId current, util::Rng& rng,
                                   bool allow_skip, bool* skipped);

  net::SimulatedNetwork* network_;
  WalkParams params_;
  // Per-hop live-neighbor buffer, reused across every Step of every
  // collection: capacity plateaus at the walk's maximum live degree, so the
  // synchronous hop loop stops allocating once warm.
  std::vector<graph::NodeId> neighbor_scratch_;
};

}  // namespace p2paqp::sampling

#endif  // P2PAQP_SAMPLING_RANDOM_WALK_H_

// Preprocessing-time walk tuning (Sec. 3.3).
//
// The paper assumes slow-changing topology constants (peer count, edge
// count, connectivity) are estimated offline and shared with all peers.
// These helpers derive the walk's burn-in and jump parameters from the
// graph's spectral gap, plus an empirical autocorrelation probe that tests
// use to confirm the jump decorrelates consecutive selections.
#ifndef P2PAQP_SAMPLING_CONVERGENCE_H_
#define P2PAQP_SAMPLING_CONVERGENCE_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"

namespace p2paqp::sampling {

struct WalkTuning {
  double lambda2 = 0.0;   // Second eigenvalue of the walk matrix.
  size_t burn_in = 0;     // Hops to forget the sink.
  size_t jump = 1;        // Hops between selections.
};

// Derives tuning from the spectral gap: burn_in = mixing-time bound for the
// requested total-variation epsilon, jump = ceil(3 / (1 - lambda2)) clamped
// to [min_jump, burn_in] (consecutive-sample correlation decays like
// lambda2^jump, so 3/gap leaves ~e^-3 residual correlation).
WalkTuning TuneWalk(const graph::Graph& graph, double epsilon,
                    size_t min_jump, util::Rng& rng);

// Empirical lag-1 autocorrelation of deg(selected peer) along a walk with
// the given jump: near zero for well-tuned jumps, strongly positive when
// consecutive selections are neighbors in a clustered graph.
double MeasureDegreeAutocorrelation(const graph::Graph& graph, size_t jump,
                                    size_t num_selections, util::Rng& rng);

}  // namespace p2paqp::sampling

#endif  // P2PAQP_SAMPLING_CONVERGENCE_H_

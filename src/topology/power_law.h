// Power-law overlay generation via Barabasi-Albert preferential attachment.
//
// [12] (Faloutsos et al.) showed Internet topologies obey power laws and [2]
// (Adamic et al.) confirmed the same for P2P overlays; the paper's synthetic
// topologies are power-law graphs generated with JUNG. This generator is the
// C++ replacement.
#ifndef P2PAQP_TOPOLOGY_POWER_LAW_H_
#define P2PAQP_TOPOLOGY_POWER_LAW_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::topology {

// Barabasi-Albert graph: starts from a small seed clique and attaches each
// new node to `edges_per_node` existing nodes chosen proportionally to their
// current degree. Always connected. Final edge count is approximately
// edges_per_node * num_nodes.
//
// Returns InvalidArgument unless num_nodes > edges_per_node >= 1.
util::Result<graph::Graph> MakeBarabasiAlbert(size_t num_nodes,
                                              size_t edges_per_node,
                                              util::Rng& rng);

// Power-law graph with an explicit target edge count: runs Barabasi-Albert
// with floor(num_edges/num_nodes) attachments (which never overshoots), then
// adds degree-biased extra edges until exactly `num_edges` are present.
util::Result<graph::Graph> MakePowerLawWithEdgeCount(size_t num_nodes,
                                                     size_t num_edges,
                                                     util::Rng& rng);

}  // namespace p2paqp::topology

#endif  // P2PAQP_TOPOLOGY_POWER_LAW_H_

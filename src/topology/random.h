// Uniform random (Erdos-Renyi) overlays, used as a non-power-law control in
// ablation experiments and tests.
#ifndef P2PAQP_TOPOLOGY_RANDOM_H_
#define P2PAQP_TOPOLOGY_RANDOM_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::topology {

// G(n, m): exactly `num_edges` distinct uniform edges, then patched to a
// single connected component by re-wiring one edge per extra component
// (the final edge count stays exactly `num_edges`).
//
// Requires num_nodes >= 2 and num_edges in [num_nodes-1, n(n-1)/2].
util::Result<graph::Graph> MakeErdosRenyi(size_t num_nodes, size_t num_edges,
                                          util::Rng& rng);

}  // namespace p2paqp::topology

#endif  // P2PAQP_TOPOLOGY_RANDOM_H_

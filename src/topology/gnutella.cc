#include "topology/gnutella.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/algorithms.h"
#include "graph/builder.h"

namespace p2paqp::topology {

namespace {

// Draws one degree from the two-regime crawl distribution.
uint32_t DrawDegree(const GnutellaParams& params,
                    const std::vector<double>& tail_cdf, util::Rng& rng) {
  if (rng.Bernoulli(params.head_fraction)) {
    return static_cast<uint32_t>(
        rng.UniformInt(1, static_cast<int64_t>(params.head_max_degree)));
  }
  double u = rng.UniformDouble(0.0, 1.0);
  auto it = std::lower_bound(tail_cdf.begin(), tail_cdf.end(), u);
  return static_cast<uint32_t>(it - tail_cdf.begin()) + 1;
}

}  // namespace

util::Result<graph::Graph> MakeGnutellaSnapshot(const GnutellaParams& params,
                                                util::Rng& rng) {
  size_t n = params.num_nodes;
  size_t target_edges = params.num_edges;
  if (n < 2 || target_edges < n - 1 ||
      target_edges > n * (n - 1) / 2) {
    return util::Status::InvalidArgument("unachievable snapshot size");
  }
  if (params.head_fraction < 0.0 || params.head_fraction > 1.0 ||
      params.tail_exponent <= 1.0 || params.head_max_degree == 0) {
    return util::Status::InvalidArgument("bad degree-regime parameters");
  }

  // Power-law tail CDF over degrees [1, d_max].
  auto d_max = static_cast<uint32_t>(
      std::min<size_t>(n - 1, 2 * static_cast<size_t>(std::sqrt(n)) + 16));
  std::vector<double> tail_cdf(d_max);
  double total = 0.0;
  for (uint32_t d = 1; d <= d_max; ++d) {
    total += std::pow(static_cast<double>(d), -params.tail_exponent);
    tail_cdf[d - 1] = total;
  }
  for (double& c : tail_cdf) c /= total;
  tail_cdf[d_max - 1] = 1.0;

  // Degree sequence whose stub total undershoots 2*target_edges slightly;
  // the gap is filled by uniform top-up edges after wiring.
  size_t stub_budget = 2 * target_edges;
  size_t slack = std::max<size_t>(64, target_edges / 50);
  P2PAQP_CHECK_GT(stub_budget, 2 * slack);
  size_t usable = stub_budget - 2 * slack;
  std::vector<uint32_t> degree(n, 1);  // Everyone has at least one link.
  size_t stubs = n;
  P2PAQP_CHECK_GE(usable, n) << "edge budget below one stub per node";
  // Re-draw degrees round-robin until the usable budget is spent.
  size_t cursor = 0;
  while (stubs < usable) {
    uint32_t extra = DrawDegree(params, tail_cdf, rng);
    size_t room = usable - stubs;
    if (extra > room) extra = static_cast<uint32_t>(room);
    degree[cursor % n] += extra;
    stubs += extra;
    ++cursor;
  }
  if (stubs % 2 == 1) {
    ++degree[rng.UniformIndex(n)];
  }

  // Configuration-model pairing with self-loop/duplicate rejection.
  std::vector<graph::NodeId> stub_list;
  stub_list.reserve(stubs + 1);
  for (size_t v = 0; v < n; ++v) {
    stub_list.insert(stub_list.end(), degree[v],
                     static_cast<graph::NodeId>(v));
  }
  rng.Shuffle(stub_list);
  graph::GraphBuilder builder(n, stubs / 2);
  for (size_t i = 0; i + 1 < stub_list.size(); i += 2) {
    builder.AddEdge(stub_list[i], stub_list[i + 1]);  // Rejects dup/self.
  }

  // Connectivity repair: attach every secondary component to the largest one.
  {
    graph::Graph snapshot = builder.Build();
    auto component = graph::ConnectedComponents(snapshot);
    size_t num_components =
        component.empty()
            ? 0
            : *std::max_element(component.begin(), component.end()) + 1;
    // Rebuild the builder from the snapshot (Build() drained it).
    builder = graph::GraphBuilder(n, snapshot.num_edges());
    for (graph::NodeId u = 0; u < snapshot.num_nodes(); ++u) {
      for (graph::NodeId v : snapshot.neighbors(u)) {
        if (u < v) builder.AddEdge(u, v);
      }
    }
    if (num_components > 1) {
      std::vector<size_t> size(num_components, 0);
      for (uint32_t c : component) ++size[c];
      uint32_t giant = static_cast<uint32_t>(
          std::max_element(size.begin(), size.end()) - size.begin());
      std::vector<graph::NodeId> giant_nodes;
      std::vector<std::vector<graph::NodeId>> members(num_components);
      for (graph::NodeId v = 0; v < n; ++v) {
        members[component[v]].push_back(v);
        if (component[v] == giant) giant_nodes.push_back(v);
      }
      for (uint32_t c = 0; c < num_components; ++c) {
        if (c == giant) continue;
        graph::NodeId a = members[c][rng.UniformIndex(members[c].size())];
        graph::NodeId b = giant_nodes[rng.UniformIndex(giant_nodes.size())];
        builder.AddEdge(a, b);
      }
    }
  }

  // Top up to the exact edge count with uniform random edges.
  while (builder.num_edges() < target_edges) {
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(n));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(n));
    builder.AddEdge(a, b);
  }
  P2PAQP_CHECK_EQ(builder.num_edges(), target_edges)
      << "snapshot generation overshot the edge budget";
  return builder.Build();
}

}  // namespace p2paqp::topology

// Synthetic stand-in for the 2001 Gnutella crawl snapshot.
//
// The paper's "real-world" experiments use a topology captured by M. Ripeanu
// (U. Chicago) in 2001: 22,556 peers and 52,321 edges. That trace is not
// redistributable, so we synthesize a topology calibrated to its published
// statistics (Ripeanu, Foster, Iamnitchi, "Mapping the Gnutella Network",
// IEEE Internet Computing 2002):
//   * identical node and edge counts,
//   * a two-regime degree distribution — roughly uniform mass over small
//     degrees (the crawl found low-degree nodes far more common than a pure
//     power law predicts) and a power-law tail with exponent ~2.3,
//   * a single connected component with small diameter (~12).
// The aggregation algorithm only senses degree structure, connectivity and
// size, so this preserves the experimental behaviour (see DESIGN.md).
#ifndef P2PAQP_TOPOLOGY_GNUTELLA_H_
#define P2PAQP_TOPOLOGY_GNUTELLA_H_

#include <cstddef>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::topology {

// Node/edge counts of the 2001 crawl used throughout the paper.
inline constexpr size_t kGnutella2001Peers = 22556;
inline constexpr size_t kGnutella2001Edges = 52321;

struct GnutellaParams {
  size_t num_nodes = kGnutella2001Peers;
  size_t num_edges = kGnutella2001Edges;
  // Fraction of edge mass assigned by the flat low-degree regime; the rest
  // follows the power-law tail.
  double head_fraction = 0.5;
  double tail_exponent = 2.3;
  uint32_t head_max_degree = 5;
};

// Builds the calibrated snapshot: exact node and edge counts, connected.
util::Result<graph::Graph> MakeGnutellaSnapshot(const GnutellaParams& params,
                                                util::Rng& rng);

}  // namespace p2paqp::topology

#endif  // P2PAQP_TOPOLOGY_GNUTELLA_H_

#include "topology/power_law.h"

#include <algorithm>
#include <vector>

#include "graph/builder.h"

namespace p2paqp::topology {

namespace {

// Preferential-attachment core shared by both entry points. Builds the graph
// into `builder`. `repeated_nodes` holds one entry per edge endpoint, so a
// uniform draw from it is a degree-proportional draw over nodes.
void RunBarabasiAlbert(size_t num_nodes, size_t edges_per_node,
                       util::Rng& rng, graph::GraphBuilder& builder) {
  std::vector<graph::NodeId> repeated_nodes;
  repeated_nodes.reserve(num_nodes * edges_per_node * 2);
  // Seed: a (edges_per_node+1)-clique guarantees enough attachment targets.
  size_t seed_size = std::min(num_nodes, edges_per_node + 1);
  for (graph::NodeId a = 0; a < seed_size; ++a) {
    for (graph::NodeId b = a + 1; b < seed_size; ++b) {
      if (builder.AddEdge(a, b)) {
        repeated_nodes.push_back(a);
        repeated_nodes.push_back(b);
      }
    }
  }
  for (graph::NodeId u = static_cast<graph::NodeId>(seed_size); u < num_nodes;
       ++u) {
    size_t attached = 0;
    size_t attempts = 0;
    const size_t max_attempts = 50 * edges_per_node + 50;
    while (attached < edges_per_node && attempts < max_attempts) {
      ++attempts;
      graph::NodeId target =
          repeated_nodes[rng.UniformIndex(repeated_nodes.size())];
      if (builder.AddEdge(u, target)) {
        repeated_nodes.push_back(u);
        repeated_nodes.push_back(target);
        ++attached;
      }
    }
    if (attached == 0) {
      // Degenerate corner (tiny graphs): attach to the previous node.
      builder.AddEdge(u, u - 1);
      repeated_nodes.push_back(u);
      repeated_nodes.push_back(u - 1);
    }
  }
}

}  // namespace

util::Result<graph::Graph> MakeBarabasiAlbert(size_t num_nodes,
                                              size_t edges_per_node,
                                              util::Rng& rng) {
  if (edges_per_node < 1) {
    return util::Status::InvalidArgument("edges_per_node must be >= 1");
  }
  if (num_nodes <= edges_per_node) {
    return util::Status::InvalidArgument(
        "num_nodes must exceed edges_per_node");
  }
  graph::GraphBuilder builder(num_nodes, num_nodes * edges_per_node);
  RunBarabasiAlbert(num_nodes, edges_per_node, rng, builder);
  return builder.Build();
}

util::Result<graph::Graph> MakePowerLawWithEdgeCount(size_t num_nodes,
                                                     size_t num_edges,
                                                     util::Rng& rng) {
  if (num_nodes < 2) {
    return util::Status::InvalidArgument("need at least two nodes");
  }
  size_t min_edges = num_nodes - 1;  // Connectivity floor.
  size_t max_edges = num_nodes * (num_nodes - 1) / 2;
  if (num_edges < min_edges || num_edges > max_edges) {
    return util::Status::InvalidArgument("edge count unachievable");
  }
  size_t per_node = std::max<size_t>(1, num_edges / num_nodes);
  if (per_node >= num_nodes) per_node = num_nodes - 1;
  graph::GraphBuilder builder(num_nodes, num_edges);
  RunBarabasiAlbert(num_nodes, per_node, rng, builder);

  // Top up with degree-biased edges (preserves the power-law shape better
  // than uniform edges).
  std::vector<graph::NodeId> repeated;
  auto rebuild_repeated = [&]() {
    repeated.clear();
    for (graph::NodeId u = 0; u < num_nodes; ++u) {
      repeated.insert(repeated.end(), builder.degree(u), u);
    }
  };
  rebuild_repeated();
  size_t stall = 0;
  while (builder.num_edges() < num_edges) {
    graph::NodeId a = repeated[rng.UniformIndex(repeated.size())];
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(num_nodes));
    if (builder.AddEdge(a, b)) {
      repeated.push_back(a);
      repeated.push_back(b);
      stall = 0;
    } else if (++stall > 10000) {
      // Dense corner: fall back to uniform pairs.
      a = static_cast<graph::NodeId>(rng.UniformIndex(num_nodes));
      b = static_cast<graph::NodeId>(rng.UniformIndex(num_nodes));
      if (builder.AddEdge(a, b)) stall = 0;
    }
  }
  return builder.Build();
}

}  // namespace p2paqp::topology

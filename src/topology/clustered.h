// Clustered topologies: s power-law sub-graphs joined by a controlled number
// of cut edges (Sec. 5.2.1 of the paper). Small cuts slow random-walk mixing
// (Fig. 1 / Fig. 12); the cut size parameter `e` controls exactly that.
#ifndef P2PAQP_TOPOLOGY_CLUSTERED_H_
#define P2PAQP_TOPOLOGY_CLUSTERED_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::topology {

struct ClusteredParams {
  size_t num_nodes = 10000;
  size_t num_edges = 100000;   // Total, including cut edges.
  size_t num_subgraphs = 2;    // The paper's parameter s.
  size_t cut_edges = 1000;     // The paper's parameter e (inter-subgraph).
};

struct ClusteredTopology {
  graph::Graph graph;
  // partition[v] = sub-graph id in [0, num_subgraphs); drives clustered data
  // placement and cut-size verification.
  std::vector<uint32_t> partition;
};

// Splits nodes evenly into `num_subgraphs` power-law sub-graphs, spends
// `cut_edges` of the edge budget on uniform inter-sub-graph edges (at least
// one between consecutive sub-graphs so the overlay stays connected), and the
// rest inside sub-graphs.
//
// Returns InvalidArgument when the budget cannot satisfy connectivity
// (roughly: num_edges >= num_nodes + cut_edges and cut_edges >=
// num_subgraphs - 1).
util::Result<ClusteredTopology> MakeClustered(const ClusteredParams& params,
                                              util::Rng& rng);

}  // namespace p2paqp::topology

#endif  // P2PAQP_TOPOLOGY_CLUSTERED_H_

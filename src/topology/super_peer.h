// Super-peer / hierarchical overlay (the scale-era Gnutella shape).
//
// Post-2001 Gnutella and FastTrack moved from a flat random graph to a
// two-tier hierarchy: a small core of well-provisioned "ultrapeers" keeps
// the overlay mesh, and every ordinary leaf holds a handful of connections
// into that core only. For the paper's estimators this is the adversarial
// scenario axis: the stationary distribution concentrates on the core
// (leaves have tiny degree, supers huge), so jump-parameter walks and
// Horvitz-Thompson reweighting are stressed exactly where the analysis in
// Sec. 3.3 predicts. Generation streams through GraphBuilder in bounded
// memory: a preferential-attachment core over the supers, then one
// degree-biased home super plus uniform backup supers per leaf.
#ifndef P2PAQP_TOPOLOGY_SUPER_PEER_H_
#define P2PAQP_TOPOLOGY_SUPER_PEER_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::topology {

struct SuperPeerParams {
  size_t num_nodes = 100000;
  // Fraction of nodes promoted into the super-peer core (node ids
  // [0, round(fraction * num_nodes))).
  double super_fraction = 0.02;
  // Preferential-attachment edges per super within the core mesh.
  size_t core_edges_per_super = 4;
  // Connections per leaf: one degree-biased home super (rich-get-richer,
  // mirroring how real ultrapeers advertise capacity) plus uniform backups.
  size_t leaf_connections = 2;
};

struct SuperPeerTopology {
  graph::Graph graph;
  // Home super-peer id per node (supers map to themselves). Doubles as the
  // cluster partition for the data generator's clustered placement.
  std::vector<uint32_t> partition;
  // The core, i.e. node ids [0, num_supers).
  std::vector<graph::NodeId> super_peers;
};

util::Result<SuperPeerTopology> MakeSuperPeer(const SuperPeerParams& params,
                                              util::Rng& rng);

}  // namespace p2paqp::topology

#endif  // P2PAQP_TOPOLOGY_SUPER_PEER_H_

// Uniform entry point over every topology generator.
#ifndef P2PAQP_TOPOLOGY_FACTORY_H_
#define P2PAQP_TOPOLOGY_FACTORY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::topology {

enum class TopologyKind {
  kPowerLaw,    // Single Barabasi-Albert component.
  kClustered,   // s power-law sub-graphs + cut edges (paper's synthetic).
  kErdosRenyi,  // Uniform random control.
  kGnutella,    // Calibrated 2001 crawl stand-in.
  kSuperPeer,   // Two-tier ultrapeer core + leaves (scale-era hierarchy).
};

const char* TopologyKindToString(TopologyKind kind);

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kClustered;
  size_t num_nodes = 10000;
  size_t num_edges = 100000;
  // Only for kClustered:
  size_t num_subgraphs = 2;
  size_t cut_edges = 1000;
  // Only for kSuperPeer (core density is derived from num_edges):
  double super_fraction = 0.02;
  size_t leaf_connections = 2;
};

struct Topology {
  graph::Graph graph;
  // Sub-graph id per node; all-zero for non-clustered kinds.
  std::vector<uint32_t> partition;
};

// Builds the requested overlay. Deterministic given `rng` state.
util::Result<Topology> MakeTopology(const TopologyConfig& config,
                                    util::Rng& rng);

}  // namespace p2paqp::topology

#endif  // P2PAQP_TOPOLOGY_FACTORY_H_

#include "topology/factory.h"

#include <algorithm>

#include "topology/clustered.h"
#include "topology/gnutella.h"
#include "topology/power_law.h"
#include "topology/random.h"
#include "topology/super_peer.h"

namespace p2paqp::topology {

const char* TopologyKindToString(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kPowerLaw:
      return "power_law";
    case TopologyKind::kClustered:
      return "clustered";
    case TopologyKind::kErdosRenyi:
      return "erdos_renyi";
    case TopologyKind::kGnutella:
      return "gnutella";
    case TopologyKind::kSuperPeer:
      return "super_peer";
  }
  return "unknown";
}

util::Result<Topology> MakeTopology(const TopologyConfig& config,
                                    util::Rng& rng) {
  switch (config.kind) {
    case TopologyKind::kPowerLaw: {
      auto graph =
          MakePowerLawWithEdgeCount(config.num_nodes, config.num_edges, rng);
      if (!graph.ok()) return graph.status();
      return Topology{std::move(graph).value(),
                      std::vector<uint32_t>(config.num_nodes, 0)};
    }
    case TopologyKind::kClustered: {
      ClusteredParams params;
      params.num_nodes = config.num_nodes;
      params.num_edges = config.num_edges;
      params.num_subgraphs = config.num_subgraphs;
      params.cut_edges = config.cut_edges;
      auto result = MakeClustered(params, rng);
      if (!result.ok()) return result.status();
      return Topology{std::move(result.value().graph),
                      std::move(result.value().partition)};
    }
    case TopologyKind::kErdosRenyi: {
      auto graph = MakeErdosRenyi(config.num_nodes, config.num_edges, rng);
      if (!graph.ok()) return graph.status();
      return Topology{std::move(graph).value(),
                      std::vector<uint32_t>(config.num_nodes, 0)};
    }
    case TopologyKind::kGnutella: {
      GnutellaParams params;
      params.num_nodes = config.num_nodes;
      params.num_edges = config.num_edges;
      auto graph = MakeGnutellaSnapshot(params, rng);
      if (!graph.ok()) return graph.status();
      return Topology{std::move(graph).value(),
                      std::vector<uint32_t>(config.num_nodes, 0)};
    }
    case TopologyKind::kSuperPeer: {
      SuperPeerParams params;
      params.num_nodes = config.num_nodes;
      params.super_fraction = config.super_fraction;
      params.leaf_connections = config.leaf_connections;
      // Spend whatever num_edges leaves after the per-leaf connections on
      // the core mesh.
      auto num_supers = static_cast<size_t>(
          config.super_fraction * static_cast<double>(config.num_nodes));
      num_supers = std::max<size_t>(num_supers, 2);
      size_t leaf_edges =
          (config.num_nodes - num_supers) * config.leaf_connections;
      params.core_edges_per_super =
          config.num_edges > leaf_edges
              ? std::max<size_t>(1, (config.num_edges - leaf_edges) /
                                        num_supers)
              : 1;
      auto result = MakeSuperPeer(params, rng);
      if (!result.ok()) return result.status();
      return Topology{std::move(result.value().graph),
                      std::move(result.value().partition)};
    }
  }
  return util::Status::InvalidArgument("unknown topology kind");
}

}  // namespace p2paqp::topology

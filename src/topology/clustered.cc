#include "topology/clustered.h"

#include <algorithm>

#include "graph/builder.h"
#include "topology/power_law.h"

namespace p2paqp::topology {

util::Result<ClusteredTopology> MakeClustered(const ClusteredParams& params,
                                              util::Rng& rng) {
  size_t s = params.num_subgraphs;
  if (s == 0 || s > params.num_nodes) {
    return util::Status::InvalidArgument("bad sub-graph count");
  }
  if (params.cut_edges < s - 1) {
    return util::Status::InvalidArgument(
        "need at least num_subgraphs-1 cut edges for connectivity");
  }
  if (s == 1 && params.cut_edges > 0) {
    return util::Status::InvalidArgument(
        "cut edges require at least two sub-graphs");
  }
  if (params.num_edges < params.cut_edges + (params.num_nodes - s)) {
    return util::Status::InvalidArgument("edge budget too small");
  }

  // Node ranges per sub-graph: contiguous, near-even blocks.
  std::vector<size_t> block_start(s + 1, 0);
  for (size_t b = 0; b < s; ++b) {
    block_start[b + 1] =
        block_start[b] + params.num_nodes / s + (b < params.num_nodes % s);
  }
  std::vector<uint32_t> partition(params.num_nodes);
  for (size_t b = 0; b < s; ++b) {
    for (size_t v = block_start[b]; v < block_start[b + 1]; ++v) {
      partition[v] = static_cast<uint32_t>(b);
    }
  }

  size_t internal_budget = params.num_edges - params.cut_edges;
  graph::GraphBuilder builder(params.num_nodes, params.num_edges);

  // Internal edges: each block gets a power-law sub-graph sized by its share
  // of nodes. Remainders are distributed to the earliest blocks.
  size_t assigned = 0;
  for (size_t b = 0; b < s; ++b) {
    size_t block_nodes = block_start[b + 1] - block_start[b];
    size_t share = internal_budget * block_nodes / params.num_nodes;
    if (b + 1 == s) share = internal_budget - assigned;
    share = std::max(share, block_nodes > 0 ? block_nodes - 1 : 0);
    share = std::min(share, block_nodes * (block_nodes - 1) / 2);
    assigned += share;
    if (block_nodes < 2) continue;
    auto sub = MakePowerLawWithEdgeCount(block_nodes, share, rng);
    if (!sub.ok()) return sub.status();
    const graph::Graph& g = sub.value();
    auto base = static_cast<graph::NodeId>(block_start[b]);
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      for (graph::NodeId v : g.neighbors(u)) {
        if (u < v) builder.AddEdge(base + u, base + v);
      }
    }
  }

  // Cut edges. A chain of consecutive-block links guarantees connectivity;
  // the rest land on uniform cross-block pairs.
  auto random_in_block = [&](size_t b) {
    size_t span = block_start[b + 1] - block_start[b];
    return static_cast<graph::NodeId>(block_start[b] + rng.UniformIndex(span));
  };
  size_t cut_added = 0;
  for (size_t b = 0; b + 1 < s; ++b) {
    while (!builder.AddEdge(random_in_block(b), random_in_block(b + 1))) {
    }
    ++cut_added;
  }
  while (cut_added < params.cut_edges) {
    size_t b1 = rng.UniformIndex(s);
    size_t b2 = rng.UniformIndex(s);
    if (b1 == b2) continue;
    if (builder.AddEdge(random_in_block(b1), random_in_block(b2))) {
      ++cut_added;
    }
  }

  return ClusteredTopology{builder.Build(), std::move(partition)};
}

}  // namespace p2paqp::topology

#include "topology/random.h"

#include <vector>

#include "graph/builder.h"

namespace p2paqp::topology {

util::Result<graph::Graph> MakeErdosRenyi(size_t num_nodes, size_t num_edges,
                                          util::Rng& rng) {
  if (num_nodes < 2) {
    return util::Status::InvalidArgument("need at least two nodes");
  }
  size_t max_edges = num_nodes * (num_nodes - 1) / 2;
  if (num_edges < num_nodes - 1 || num_edges > max_edges) {
    return util::Status::InvalidArgument("edge count unachievable");
  }
  graph::GraphBuilder builder(num_nodes, num_edges);
  // Connectivity first: a uniform random recursive tree over a random node
  // relabeling, so low-index nodes carry no structural bias.
  std::vector<graph::NodeId> label(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    label[i] = static_cast<graph::NodeId>(i);
  }
  rng.Shuffle(label);
  for (size_t i = 1; i < num_nodes; ++i) {
    builder.AddEdge(label[i], label[rng.UniformIndex(i)]);
  }
  // Remaining edges uniform over non-present pairs (rejection sampling; fine
  // for the sparse graphs P2P overlays are).
  while (builder.num_edges() < num_edges) {
    auto a = static_cast<graph::NodeId>(rng.UniformIndex(num_nodes));
    auto b = static_cast<graph::NodeId>(rng.UniformIndex(num_nodes));
    builder.AddEdge(a, b);
  }
  return builder.Build();
}

}  // namespace p2paqp::topology

#include "topology/super_peer.h"

#include <algorithm>
#include <cmath>

#include "graph/builder.h"

namespace p2paqp::topology {

util::Result<SuperPeerTopology> MakeSuperPeer(const SuperPeerParams& params,
                                              util::Rng& rng) {
  const size_t n = params.num_nodes;
  if (n < 4) {
    return util::Status::InvalidArgument("need at least four nodes");
  }
  if (params.super_fraction <= 0.0 || params.super_fraction >= 1.0) {
    return util::Status::InvalidArgument("super_fraction must be in (0, 1)");
  }
  auto num_supers = static_cast<size_t>(
      std::llround(params.super_fraction * static_cast<double>(n)));
  num_supers = std::min(std::max<size_t>(num_supers, 2), n - 1);
  if (params.leaf_connections < 1 || params.leaf_connections > num_supers) {
    return util::Status::InvalidArgument(
        "leaf_connections must be in [1, num_supers]");
  }
  size_t core_per_super =
      std::min(std::max<size_t>(params.core_edges_per_super, 1),
               num_supers - 1);

  const size_t num_leaves = n - num_supers;
  const size_t expected_edges =
      num_supers * core_per_super + num_leaves * params.leaf_connections;
  graph::GraphBuilder builder(n, expected_edges);

  // Degree-proportional draw list over the CORE only: one entry per core
  // edge endpoint plus one per adopted leaf, so a busy super keeps
  // attracting both mesh edges and leaves. Leaves never enter the list.
  std::vector<graph::NodeId> weighted_supers;
  weighted_supers.reserve(2 * num_supers * core_per_super + num_leaves);

  // Core mesh: preferential attachment over the supers, seeded by a clique
  // large enough to provide attachment targets.
  size_t seed_size = std::min(num_supers, core_per_super + 1);
  for (graph::NodeId a = 0; a < seed_size; ++a) {
    for (graph::NodeId b = a + 1; b < seed_size; ++b) {
      if (builder.AddEdge(a, b)) {
        weighted_supers.push_back(a);
        weighted_supers.push_back(b);
      }
    }
  }
  for (auto u = static_cast<graph::NodeId>(seed_size); u < num_supers; ++u) {
    size_t attached = 0;
    size_t attempts = 0;
    const size_t max_attempts = 50 * core_per_super + 50;
    while (attached < core_per_super && attempts < max_attempts) {
      ++attempts;
      graph::NodeId target =
          weighted_supers[rng.UniformIndex(weighted_supers.size())];
      if (builder.AddEdge(u, target)) {
        weighted_supers.push_back(u);
        weighted_supers.push_back(target);
        ++attached;
      }
    }
    if (attached == 0) {
      builder.AddEdge(u, u - 1);
      weighted_supers.push_back(u);
      weighted_supers.push_back(u - 1);
    }
  }

  // Leaves: one degree-biased home super, then uniform backups. A rejected
  // home draw (already adopted this leaf — impossible for the first edge,
  // so only backups collide) retries uniformly, bounded.
  std::vector<uint32_t> partition(n, 0);
  for (graph::NodeId super = 0; super < num_supers; ++super) {
    partition[super] = super;
  }
  for (auto leaf = static_cast<graph::NodeId>(num_supers); leaf < n; ++leaf) {
    graph::NodeId home =
        weighted_supers[rng.UniformIndex(weighted_supers.size())];
    builder.AddEdge(leaf, home);
    weighted_supers.push_back(home);
    partition[leaf] = home;
    size_t attempts = 0;
    size_t backups = params.leaf_connections - 1;
    while (backups > 0 && attempts < 50 * params.leaf_connections + 50) {
      ++attempts;
      auto backup = static_cast<graph::NodeId>(rng.UniformIndex(num_supers));
      if (builder.AddEdge(leaf, backup)) --backups;
    }
  }

  SuperPeerTopology out;
  out.graph = builder.Build();
  out.partition = std::move(partition);
  out.super_peers.reserve(num_supers);
  for (graph::NodeId super = 0; super < num_supers; ++super) {
    out.super_peers.push_back(super);
  }
  return out;
}

}  // namespace p2paqp::topology

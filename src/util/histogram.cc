#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace p2paqp::util {

Result<Histogram> Histogram::Make(int64_t lo, int64_t hi,
                                  size_t num_buckets) {
  if (hi < lo) {
    return Status::InvalidArgument("empty histogram domain");
  }
  if (num_buckets == 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  auto domain = static_cast<uint64_t>(hi - lo + 1);
  if (num_buckets > domain) num_buckets = domain;
  return Histogram(lo, hi, num_buckets);
}

size_t Histogram::BucketFor(int64_t value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  auto bucket = static_cast<size_t>((value - lo_) / width_);
  return std::min(bucket, counts_.size() - 1);
}

void Histogram::Add(int64_t value, double weight) {
  counts_[BucketFor(value)] += weight;
}

void Histogram::Merge(const Histogram& other) {
  P2PAQP_CHECK_EQ(lo_, other.lo_);
  P2PAQP_CHECK_EQ(hi_, other.hi_);
  P2PAQP_CHECK_EQ(counts_.size(), other.counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
}

void Histogram::Scale(double factor) {
  for (double& c : counts_) c *= factor;
}

double Histogram::total() const {
  double t = 0.0;
  for (double c : counts_) t += c;
  return t;
}

std::pair<int64_t, int64_t> Histogram::BucketRange(size_t bucket) const {
  P2PAQP_CHECK(bucket < counts_.size()) << bucket;
  int64_t b_lo = lo_ + static_cast<int64_t>(bucket) * width_;
  int64_t b_hi =
      bucket + 1 == counts_.size() ? hi_ : b_lo + width_ - 1;
  return {b_lo, b_hi};
}

double Histogram::NormalizedL1Distance(const Histogram& other) const {
  P2PAQP_CHECK_EQ(counts_.size(), other.counts_.size());
  double mine = total();
  double theirs = other.total();
  if (mine == 0.0 || theirs == 0.0) {
    return (mine == 0.0 && theirs == 0.0) ? 0.0 : 2.0;
  }
  double distance = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    distance += std::fabs(counts_[b] / mine - other.counts_[b] / theirs);
  }
  return distance;
}

std::string Histogram::ToString() const {
  std::string out;
  for (size_t b = 0; b < counts_.size(); ++b) {
    auto [b_lo, b_hi] = BucketRange(b);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "[%lld,%lld]=%.1f ",
                  static_cast<long long>(b_lo), static_cast<long long>(b_hi),
                  counts_[b]);
    out += buf;
  }
  return out;
}

}  // namespace p2paqp::util

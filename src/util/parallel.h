// Deterministic multi-core execution for replicate loops and sweeps.
//
// The contract: ParallelFor/ParallelMap produce results that are
// bit-identical for ANY thread count, including 1. This works because
//   (a) every task derives all of its randomness from its own index (use
//       TaskRng or an explicitly index-keyed seed), never from shared state,
//   (b) results land in a preallocated slot vector indexed by task, and
//   (c) reductions run serially over the slots in index order on the caller.
// Parallelism then only changes *when* a task runs, never what it computes
// or where its result goes.
//
// The pool is deliberately work-stealing-free: workers claim indices from a
// single atomic counter, so scheduling is trivial to reason about and there
// is no per-task queue shuffling to introduce timing-dependent allocation
// patterns. Pools are ephemeral — one per parallel region — which keeps
// shutdown semantics obvious (the region's destructor joins everything) and
// costs microseconds against replicate tasks that each build worlds and run
// whole queries.
//
// Thread count comes from the P2PAQP_THREADS environment knob (unset or 0 =
// std::thread::hardware_concurrency). P2PAQP_THREADS=1 preserves today's
// exact single-threaded execution path: the loop runs inline on the caller,
// no pool is created. Nested parallel regions (a ParallelFor issued from
// inside a pool worker) also run inline, so sweeps-over-replicates cannot
// deadlock or oversubscribe.
#ifndef P2PAQP_UTIL_PARALLEL_H_
#define P2PAQP_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/rng.h"

namespace p2paqp::util {

// Resolved thread-count knob: P2PAQP_THREADS if set and > 0, else
// std::thread::hardware_concurrency() (minimum 1). Read per call, so tests
// can flip the environment between runs.
size_t ParallelThreads();

// True while executing inside a ThreadPool worker (thread_local); nested
// parallel regions consult this to run inline.
bool InParallelWorker();

// Fixed-size, work-stealing-free thread pool. Workers block on a condition
// variable until Run() publishes a batch, then claim indices from an atomic
// counter until the batch is exhausted. The destructor joins all workers.
//
// With `pin` (or the P2PAQP_PIN_THREADS env knob) each worker is pinned to
// one CPU at spawn: lane l of a static-partition region then always executes
// on the same core, so the PeerStore blocks and event-shard arenas a lane
// touches stay in that core's cache. On multi-socket hosts pinning engages
// automatically (unless P2PAQP_NUMA=0) and routes through
// util::NumaTopology: lanes split into contiguous per-node groups, so the
// pages a lane first-touches are allocated on the node that will keep
// scanning them. Pinning never changes results — only placement.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads, bool pin = false);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  // Executes fn(i) for every i in [0, n), blocking until all tasks finish.
  // If tasks throw, every remaining task still runs, and the exception from
  // the lowest-indexed throwing task is rethrown on the caller — so error
  // reporting is as deterministic as the results themselves.
  void Run(size_t n, const std::function<void(size_t)>& fn);

  // Static-lane variant: exactly `lanes` tasks, and lane l > 0 runs on
  // worker l-1 (lane 0 runs on the caller) — no atomic claiming, so the
  // lane -> thread mapping is identical on every call. The shard-affine
  // partition for PeerStore block scans: lane l always touches the same
  // contiguous blocks with the same (possibly pinned) worker.
  void RunStatic(size_t lanes, const std::function<void(size_t)>& fn);

  // Static-partition range loop: splits [0, n) into num_threads() + 1
  // contiguous lane ranges — lane l owns [l*n/L, (l+1)*n/L) — and invokes
  // fn(lane, begin, end) with RunStatic's fixed lane -> thread map. The
  // range derivation lives here, in the pool, so every static call site
  // shares one partition formula instead of re-deriving bounds inside its
  // lambda (and a region body needs no per-index division, which keeps the
  // steady-state allocation/arithmetic profile of hot block loops flat).
  // Lanes whose range is empty are still invoked with begin == end.
  void RunStaticRanges(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  struct Batch;
  void WorkerLoop(size_t worker_index);

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers wait here for a batch / stop.
  std::condition_variable idle_cv_;  // Run() waits here for batch completion.
  Batch* batch_ = nullptr;           // Current batch, guarded by mu_.
  size_t active_workers_ = 0;        // Workers inside Drain(), guarded by mu_.
  uint64_t next_batch_seq_ = 0;      // Batch identity, guarded by mu_.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

// How a parallel region maps indices onto lanes.
enum class Partition {
  // Workers claim indices dynamically from a shared counter (default;
  // best for irregular task costs).
  kDynamic = 0,
  // Lane l of L owns the contiguous range [l*n/L, (l+1)*n/L) and lanes map
  // to fixed threads, so the index -> thread assignment is stable across
  // every region with the same (n, L). Used for PeerStore block loops: the
  // blocks a lane initializes are the blocks it later scans, keeping each
  // shard's pages hot in one core's cache instead of strided across all of
  // them.
  kStatic,
};

struct ParallelOptions {
  // Explicit thread count; 0 defers to ParallelThreads() (the env knob).
  size_t threads = 0;
  Partition partition = Partition::kDynamic;
};

// True when the P2PAQP_PIN_THREADS env knob requests CPU-pinned workers.
bool PinThreadsEnabled();

// Order-independent parallel loop: fn(i) for i in [0, n). Runs inline, in
// index order, when the resolved thread count is 1, n < 2, or the caller is
// itself a pool worker. fn must not touch shared mutable state (see file
// comment); exceptions propagate with lowest-index-wins selection.
// Partition::kStatic only changes which thread runs which index — results
// are bit-identical either way, per the contract above.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 const ParallelOptions& options = {});

// Slot-vector map: out[i] = fn(i), deterministic for any thread count. The
// result type must be default-constructible (slots are preallocated).
template <typename Fn>
auto ParallelMap(size_t n, Fn&& fn, const ParallelOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, size_t>> {
  using T = std::invoke_result_t<Fn&, size_t>;
  std::vector<T> out(n);
  ParallelFor(
      n, [&](size_t i) { out[i] = fn(i); }, options);
  return out;
}

// Independent RNG stream for task `index`: the base seed is folded with a
// golden-ratio stride and MixSeed so neighboring indices decorrelate. The
// same (base_seed, index) pair always yields the same stream, on any thread.
Rng TaskRng(uint64_t base_seed, size_t index);

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_PARALLEL_H_

#include "util/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace p2paqp::util {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  // Pebay's single-pass update for the first four central moments.
  double n = static_cast<double>(count_);
  double delta = x - mean_;
  double delta_n = delta / n;
  double delta_n2 = delta_n * delta_n;
  double term1 = delta * delta_n * (n - 1.0);
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::standard_error() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStat::skewness() const {
  if (count_ < 3 || m2_ <= 0.0) return 0.0;
  double n = static_cast<double>(count_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningStat::excess_kurtosis() const {
  if (count_ < 4 || m2_ <= 0.0) return 0.0;
  double n = static_cast<double>(count_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return std::fabs(estimate);
  return std::fabs(estimate - truth) / std::fabs(truth);
}

double Percentile(std::vector<double> values, double p) {
  P2PAQP_CHECK(!values.empty());
  P2PAQP_CHECK(p >= 0.0 && p <= 1.0) << p;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = p * static_cast<double>(values.size() - 1);
  auto lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 0.5);
}

double WeightedQuantile(const std::vector<double>& values,
                        const std::vector<double>& weights, double phi) {
  P2PAQP_CHECK(!values.empty());
  P2PAQP_CHECK_EQ(values.size(), weights.size());
  P2PAQP_CHECK(phi > 0.0 && phi < 1.0) << phi;
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  double total = 0.0;
  for (double w : weights) {
    P2PAQP_CHECK_GE(w, 0.0);
    total += w;
  }
  P2PAQP_CHECK_GT(total, 0.0);
  double acc = 0.0;
  for (size_t index : order) {
    acc += weights[index];
    if (acc >= phi * total) return values[index];
  }
  return values[order.back()];
}

double WeightedMedian(const std::vector<double>& values,
                      const std::vector<double>& weights) {
  return WeightedQuantile(values, weights, 0.5);
}

double InverseNormalCdf(double p) {
  P2PAQP_CHECK(p > 0.0 && p < 1.0) << p;
  // Peter Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  const double p_high = 1.0 - p_low;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double ConfidenceHalfWidth(double stddev, size_t n, double confidence) {
  P2PAQP_CHECK(confidence > 0.0 && confidence < 1.0) << confidence;
  if (n == 0) return 0.0;
  double z = InverseNormalCdf(0.5 + confidence / 2.0);
  return z * stddev / std::sqrt(static_cast<double>(n));
}

}  // namespace p2paqp::util

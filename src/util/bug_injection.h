// Deliberate-bug seam for the protocol verification harness.
//
// Property-based testing is only trustworthy if the oracles demonstrably
// catch real protocol bugs. This seam lets a test re-introduce a specific,
// historically plausible defect (disable reply dedup, skip the observation
// quorum, double-count frame hits) without forking the production code, then
// assert that the chaos harness detects it and shrinks the failing plan to a
// minimal counterexample. Production behavior is bit-identical when no bug
// is armed (the default): every hook site reduces to one predicted branch.
//
// The armed bug is process-global and not thread-safe by design — tests that
// arm a bug run the simulation serially (ScopedInjectedBug guards scope).
#ifndef P2PAQP_UTIL_BUG_INJECTION_H_
#define P2PAQP_UTIL_BUG_INJECTION_H_

namespace p2paqp::util {

enum class InjectedBug {
  kNone = 0,
  // The sink counts every reply, including replayed duplicates, as a fresh
  // observation — inflates the effective sample and biases the estimate.
  kDisableReplyDedup,
  // The sink proceeds with however many observations arrived instead of
  // failing the query when delivery falls below the quorum floor.
  kSkipQuorumCheck,
  // The multi-query scheduler credits carried-over frame selections as hits
  // twice, corrupting the frame-accounting ledger.
  kDoubleCountFrameHits,
};

// Currently armed bug (kNone in production).
InjectedBug ArmedBug();
void ArmBug(InjectedBug bug);

// True when `bug` is armed; the hook sites call this.
inline bool BugArmed(InjectedBug bug) { return ArmedBug() == bug; }

// Arms a bug for one scope, restoring the previous state on exit.
class ScopedInjectedBug {
 public:
  explicit ScopedInjectedBug(InjectedBug bug) : previous_(ArmedBug()) {
    ArmBug(bug);
  }
  ~ScopedInjectedBug() { ArmBug(previous_); }
  ScopedInjectedBug(const ScopedInjectedBug&) = delete;
  ScopedInjectedBug& operator=(const ScopedInjectedBug&) = delete;

 private:
  InjectedBug previous_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_BUG_INJECTION_H_

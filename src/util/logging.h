// Lightweight CHECK/LOG macros.
//
// The library is exception-free (Google style); programmer errors and broken
// invariants abort with a message, recoverable errors travel through
// util::Status / util::Result.
#ifndef P2PAQP_UTIL_LOGGING_H_
#define P2PAQP_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace p2paqp::util {

namespace internal_logging {

// Accumulates a message and aborts the process when destroyed.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  [[noreturn]] ~FatalMessage() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows a streamed message when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

}  // namespace p2paqp::util

// Aborts with a diagnostic when `condition` is false. Extra context can be
// streamed: CHECK(x > 0) << "x=" << x;
#define P2PAQP_CHECK(condition)                                       \
  if (condition) {                                                    \
  } else /* NOLINT */                                                 \
    ::p2paqp::util::internal_logging::FatalMessage(__FILE__, __LINE__, \
                                                   #condition)        \
        .stream()

#define P2PAQP_CHECK_EQ(a, b) P2PAQP_CHECK((a) == (b))
#define P2PAQP_CHECK_NE(a, b) P2PAQP_CHECK((a) != (b))
#define P2PAQP_CHECK_LT(a, b) P2PAQP_CHECK((a) < (b))
#define P2PAQP_CHECK_LE(a, b) P2PAQP_CHECK((a) <= (b))
#define P2PAQP_CHECK_GT(a, b) P2PAQP_CHECK((a) > (b))
#define P2PAQP_CHECK_GE(a, b) P2PAQP_CHECK((a) >= (b))

#ifdef NDEBUG
#define P2PAQP_DCHECK(condition) \
  if (true) {                    \
  } else /* NOLINT */            \
    ::p2paqp::util::internal_logging::NullStream()
#else
#define P2PAQP_DCHECK(condition) P2PAQP_CHECK(condition)
#endif

#endif  // P2PAQP_UTIL_LOGGING_H_

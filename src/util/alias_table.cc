#include "util/alias_table.h"

#include <cmath>

#include "util/logging.h"

namespace p2paqp::util {

AliasTable::AliasTable(const std::vector<double>& weights) {
  P2PAQP_CHECK(!weights.empty()) << "AliasTable needs at least one weight";
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    P2PAQP_CHECK(std::isfinite(w) && w >= 0.0) << w;
    total += w;
  }
  P2PAQP_CHECK_GT(total, 0.0);

  // Scale so the average bucket holds probability 1; buckets below 1 borrow
  // their deficit from buckets above 1 (the classic two-stack construction).
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (size_t i = 0; i < n; ++i) alias_[i] = static_cast<uint32_t>(i);

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t deficit = small.back();
    small.pop_back();
    uint32_t donor = large.back();
    prob_[deficit] = scaled[deficit];
    alias_[deficit] = donor;
    scaled[donor] -= 1.0 - scaled[deficit];
    if (scaled[donor] < 1.0) {
      large.pop_back();
      small.push_back(donor);
    }
  }
  // Leftovers on either stack are exactly 1 modulo rounding; they accept
  // themselves (prob_ already 1, alias_ already identity).
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t n = prob_.size();
  double u = rng.UniformDouble(0.0, 1.0) * static_cast<double>(n);
  auto bucket = static_cast<size_t>(u);
  if (bucket >= n) bucket = n - 1;  // Guards the u == n edge after rounding.
  double frac = u - static_cast<double>(bucket);
  return frac < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace p2paqp::util

// Equi-width histograms over integer value domains.
//
// Used by the approximate-histogram estimator (core/histogram.h) — one of
// the "statistics computations such as medians, quantiles, histograms, and
// distinct values" the paper targets beyond plain SQL aggregates — and by
// the biased-walk synopses.
#ifndef P2PAQP_UTIL_HISTOGRAM_H_
#define P2PAQP_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace p2paqp::util {

// Fixed-bucket histogram over [lo, hi] with `num_buckets` equal-width
// buckets (the last bucket absorbs rounding remainder).
class Histogram {
 public:
  // Returns InvalidArgument for empty domains or zero buckets.
  static Result<Histogram> Make(int64_t lo, int64_t hi, size_t num_buckets);

  // Bucket index for `value`; values outside [lo, hi] clamp to the edge
  // buckets.
  size_t BucketFor(int64_t value) const;

  void Add(int64_t value, double weight = 1.0);
  // Merges another histogram with identical shape (checked).
  void Merge(const Histogram& other);
  void Scale(double factor);

  size_t num_buckets() const { return counts_.size(); }
  int64_t lo() const { return lo_; }
  int64_t hi() const { return hi_; }
  double count(size_t bucket) const { return counts_[bucket]; }
  double total() const;

  // Inclusive value range covered by a bucket.
  std::pair<int64_t, int64_t> BucketRange(size_t bucket) const;

  // L1 distance between the *normalized* (unit-mass) versions of the two
  // histograms, in [0, 2]. The standard histogram-estimation error metric.
  double NormalizedL1Distance(const Histogram& other) const;

  std::string ToString() const;

 private:
  Histogram(int64_t lo, int64_t hi, size_t num_buckets)
      : lo_(lo), hi_(hi), width_((hi - lo + 1 + static_cast<int64_t>(
                                      num_buckets) - 1) /
                                 static_cast<int64_t>(num_buckets)),
        counts_(num_buckets, 0.0) {}

  int64_t lo_;
  int64_t hi_;
  int64_t width_;
  std::vector<double> counts_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_HISTOGRAM_H_

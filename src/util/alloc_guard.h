// Allocation-counting test hook for the zero-allocation hot-path contract.
//
// alloc_guard.cc replaces the global operator new/delete family with a
// malloc-backed implementation that bumps a thread-local counter on every
// allocation. The counter makes "this code path performs zero heap
// allocations" a testable property instead of a code-review promise:
// tests/zero_alloc_test.cc asserts it for the event-driven engine's steady
// state, bench/scale_world.cc ships it to the BENCH telemetry as
// `steady_state_allocs_per_event`, and tools/bench_gate.py pins that metric
// to exactly 0 (docs/PERFORMANCE.md, "Zero-allocation message path").
//
// The hook is always linked (the replacement operators live in the main
// library), so release binaries pay one thread-local increment per
// allocation — noise against the cost of the allocation itself — and every
// build measures the same thing. Deallocation is not counted: the contract
// being enforced is "no allocation per event", and frees pair with the
// allocations that are already visible in the count.
#ifndef P2PAQP_UTIL_ALLOC_GUARD_H_
#define P2PAQP_UTIL_ALLOC_GUARD_H_

#include <cstdint>

namespace p2paqp::util {

// Heap allocations (operator new family) performed by the calling thread
// since it started. Monotone; wraps only after 2^64 allocations.
uint64_t ThreadAllocations();

// RAII window over the calling thread's allocation counter.
//
//   util::AllocGuard guard;
//   ... hot loop ...
//   EXPECT_EQ(guard.allocations(), 0u);
//
// Only counts the constructing thread; cross-thread allocations (the
// parallel layer's workers) are intentionally out of scope — the
// zero-allocation contract is about the serial event loop.
class AllocGuard {
 public:
  AllocGuard() : start_(ThreadAllocations()) {}

  // Restarts the window at the current count.
  void Reset() { start_ = ThreadAllocations(); }

  // Allocations on this thread since construction / the last Reset().
  uint64_t allocations() const { return ThreadAllocations() - start_; }

 private:
  uint64_t start_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_ALLOC_GUARD_H_

// Streaming and batch statistics helpers shared across the library.
#ifndef P2PAQP_UTIL_STATISTICS_H_
#define P2PAQP_UTIL_STATISTICS_H_

#include <cstddef>
#include <vector>

namespace p2paqp::util {

// Welford-style streaming moment accumulator (mean through fourth central
// moment, single pass, numerically stable).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  // Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  // stddev() / sqrt(n): the standard error of the mean, the yardstick the
  // verify harness measures bias against.
  double standard_error() const;
  // Population skewness m3 / m2^(3/2); 0 for fewer than three observations
  // or zero variance.
  double skewness() const;
  // Excess kurtosis n*m4/m2^2 - 3; 0 for fewer than four observations or
  // zero variance.
  double excess_kurtosis() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// |estimate - truth| / |truth|; returns |estimate| when truth == 0 (so a
// correct zero estimate reports zero error).
double RelativeError(double estimate, double truth);

// p-th percentile (p in [0,1]) with linear interpolation. Copies + sorts.
double Percentile(std::vector<double> values, double p);

// Exact median of a copied vector (convenience over Percentile 0.5).
double Median(std::vector<double> values);

// Weighted median: smallest value v such that the weight of items <= v is at
// least half the total weight. Weights must be non-negative with positive
// total. O(n log n).
double WeightedMedian(const std::vector<double>& values,
                      const std::vector<double>& weights);

// Weighted quantile (phi in (0,1)); WeightedMedian == WeightedQuantile(0.5).
double WeightedQuantile(const std::vector<double>& values,
                        const std::vector<double>& weights, double phi);

// Two-sided normal-approximation confidence interval half-width for a mean
// estimated from `n` samples with sample stddev `stddev`.
// confidence is e.g. 0.95.
double ConfidenceHalfWidth(double stddev, size_t n, double confidence);

// Inverse standard normal CDF (Acklam's rational approximation, ~1e-9 abs
// error); used for confidence intervals.
double InverseNormalCdf(double p);

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_STATISTICS_H_

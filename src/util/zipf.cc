#include "util/zipf.h"

#include <algorithm>
#include <cmath>

namespace p2paqp::util {

Result<ZipfGenerator> ZipfGenerator::Make(uint32_t n, double skew) {
  if (n == 0) {
    return Status::InvalidArgument("Zipf range must be non-empty");
  }
  if (skew < 0.0 || !std::isfinite(skew)) {
    return Status::InvalidArgument("Zipf skew must be finite and >= 0");
  }
  std::vector<double> cdf(n);
  double total = 0.0;
  for (uint32_t v = 1; v <= n; ++v) {
    total += 1.0 / std::pow(static_cast<double>(v), skew);
    cdf[v - 1] = total;
  }
  for (double& c : cdf) c /= total;
  cdf[n - 1] = 1.0;  // Guard against accumulated rounding.
  std::vector<double> pmf(n);
  for (uint32_t v = 1; v <= n; ++v) {
    // max() guards rounding residue from the cdf[n-1] = 1.0 clamp.
    pmf[v - 1] = std::max(0.0, cdf[v - 1] - (v == 1 ? 0.0 : cdf[v - 2]));
  }
  return ZipfGenerator(n, skew, std::move(cdf), AliasTable(pmf));
}

uint32_t ZipfGenerator::Sample(Rng& rng) const {
  return static_cast<uint32_t>(alias_.Sample(rng)) + 1;
}

double ZipfGenerator::Probability(uint32_t v) const {
  P2PAQP_CHECK(v >= 1 && v <= n_) << v;
  double below = (v == 1) ? 0.0 : cdf_[v - 2];
  return cdf_[v - 1] - below;
}

double ZipfGenerator::Mean() const {
  double mean = 0.0;
  for (uint32_t v = 1; v <= n_; ++v) {
    mean += static_cast<double>(v) * Probability(v);
  }
  return mean;
}

}  // namespace p2paqp::util

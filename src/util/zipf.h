// Zipf-distributed integer generation.
//
// The paper's synthetic databases draw single-attribute tuple values from a
// Zipf distribution over [1, 100] with skew parameter Z (Z = 0 is uniform).
#ifndef P2PAQP_UTIL_ZIPF_H_
#define P2PAQP_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/alias_table.h"
#include "util/rng.h"
#include "util/status.h"

namespace p2paqp::util {

// Samples values v in [1, n] with P(v) proportional to 1 / v^skew.
// Precomputes the CDF (for Probability/Mean) plus a Walker alias table, so
// each draw is O(1) and consumes exactly one uniform double.
class ZipfGenerator {
 public:
  // Returns InvalidArgument for n == 0 or negative skew.
  static Result<ZipfGenerator> Make(uint32_t n, double skew);

  // Next value in [1, n]. O(1) via the alias table.
  uint32_t Sample(Rng& rng) const;

  uint32_t n() const { return n_; }
  double skew() const { return skew_; }

  // P(value == v); v in [1, n].
  double Probability(uint32_t v) const;

  // Distribution mean, sum(v * P(v)).
  double Mean() const;

 private:
  ZipfGenerator(uint32_t n, double skew, std::vector<double> cdf,
                AliasTable alias)
      : n_(n), skew_(skew), cdf_(std::move(cdf)), alias_(std::move(alias)) {}

  uint32_t n_;
  double skew_;
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i + 1); cdf_[n-1] == 1.
  AliasTable alias_;         // O(1) draws; same pmf as cdf_.
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_ZIPF_H_

// Deterministic random number generation.
//
// Every stochastic component of the library takes an explicit Rng&, so whole
// simulations are reproducible from a single seed. Child generators (Fork)
// give independent streams for sub-components without sharing state.
#ifndef P2PAQP_UTIL_RNG_H_
#define P2PAQP_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace p2paqp::util {

class AliasTable;

// Mixes a 64-bit seed (splitmix64 finalizer); used for seed derivation.
uint64_t MixSeed(uint64_t seed);

// Reusable buffers for Rng::SampleIndicesInto (and the scratch-based
// sampling variants built on it). Capacities plateau at the largest n the
// holder ever samples from, so a warmed scratch makes repeated sampling
// allocation-free — the property the per-visit hot path in
// query::ExecuteLocal relies on.
struct SampleScratch {
  // Dense case: partial Fisher-Yates permutation buffer.
  std::vector<size_t> identity;
  // Sparse case: generation-stamped membership marks (stamp[i] ==
  // generation means index i was already drawn this call). Bumping the
  // generation resets membership in O(1) instead of clearing.
  std::vector<uint32_t> stamp;
  uint32_t generation = 0;
  // Spare index buffer for callers that layer one sample over another
  // (data::LocalDatabase::SampleBlockSpansInto).
  std::vector<size_t> draws;
};

// Seeded pseudo-random generator wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(MixSeed(seed)) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform size_t in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n);

  // Uniform double in [lo, hi).
  double UniformDouble(double lo = 0.0, double hi = 1.0);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Standard normal deviate.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  // Geometric: number of failures before first success, success prob p.
  int64_t Geometric(double p);

  // Uniformly chosen element index weighted by `weights` (all >= 0, sum > 0).
  // O(n) per draw: rebuilds the prefix scan every call. For repeated draws
  // from the same weights, prebuild a util::AliasTable and use the overload
  // below (O(1) per draw, same distribution).
  size_t WeightedIndex(const std::vector<double>& weights);

  // O(1) weighted draw from a prebuilt alias table.
  size_t WeightedIndex(const AliasTable& table);

  // Fisher-Yates shuffle of the whole container.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Shuffles only a random `fraction` of positions (partial Fisher-Yates):
  // fraction 0 leaves the vector untouched, fraction 1 is a full shuffle.
  // Used by the cluster-level data partitioner.
  template <typename T>
  void PartialShuffle(std::vector<T>& items, double fraction) {
    P2PAQP_CHECK(fraction >= 0.0 && fraction <= 1.0) << fraction;
    if (items.size() < 2 || fraction == 0.0) return;
    // Pick round(fraction*n) positions and randomly permute them among
    // themselves; expected displacement grows smoothly with `fraction`.
    size_t n = items.size();
    auto k = static_cast<size_t>(fraction * static_cast<double>(n) + 0.5);
    if (k < 2) return;
    std::vector<size_t> positions = SampleIndices(n, k);
    std::vector<size_t> shuffled = positions;
    Shuffle(shuffled);
    std::vector<T> tmp(k);
    for (size_t i = 0; i < k; ++i) tmp[i] = std::move(items[positions[i]]);
    for (size_t i = 0; i < k; ++i) items[shuffled[i]] = std::move(tmp[i]);
  }

  // k distinct indices uniformly from [0, n), in random order. Requires
  // k <= n. O(k) expected time for k << n, O(n) otherwise.
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  // Scratch-reusing SampleIndices: identical draws, identical output order,
  // but all working storage lives in `scratch` and `out` (cleared first), so
  // a warmed caller samples without allocating.
  void SampleIndicesInto(size_t n, size_t k, SampleScratch* scratch,
                         std::vector<size_t>* out);

  // Floyd's algorithm-backed sample of k elements without replacement.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(const std::vector<T>& items,
                                          size_t k) {
    std::vector<size_t> indices = SampleIndices(items.size(), k);
    std::vector<T> out;
    out.reserve(k);
    for (size_t index : indices) out.push_back(items[index]);
    return out;
  }

  // Independent generator derived from this one's stream.
  Rng Fork();

  // Raw 64 random bits.
  uint64_t Next64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace p2paqp::util

#endif  // P2PAQP_UTIL_RNG_H_
